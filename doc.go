// Package gpuvar reproduces "Not All GPUs Are Created Equal:
// Characterizing Variability in Large-Scale, Accelerator-Rich Systems"
// (SC 2022) as a Go library: a physics-based GPU fleet simulator (V/F
// curves, DVFS controllers, RC thermal models, manufacturing spread, and
// a defect taxonomy), the paper's five workloads, its six clusters, and
// the full characterization methodology (IQR variability, correlations,
// repeatability, day-of-week, power-limit sweeps, outlier triage).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and the examples/
// directory for runnable entry points. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the same
// generators are exposed interactively by cmd/figures.
//
// # Performance
//
// The experiment hot path is
//
//	fleet instantiate → steady-state solve → iteration synthesis → aggregation
//
// and each stage has a reuse layer in front of it:
//
//   - Fleet instantiation (internal/cluster) samples every chip and
//     thermal node of a cluster — 27,648 of each for Summit — and is a
//     pure function of (Spec, seed). cluster.FleetCache memoizes it by
//     (Spec fingerprint, seed); core.Run goes through the process-wide
//     cluster.DefaultFleetCache, so a session pays the cost once per
//     distinct fleet instead of once per experiment. The ablation knobs
//     (NoDefects, VariationOverride) rewrite the spec before the lookup
//     and therefore hash to their own entries: cached fleets are never
//     mutated. Jobs still receive private thermal-node copies, so runs
//     cannot leak heat into each other. core.RunFresh bypasses the cache;
//     the golden tests in internal/core assert both paths are
//     bit-identical.
//
//   - The steady-state solve (internal/sim) converges each device's
//     DVFS/thermal operating point per kernel class — the math.Exp-heavy
//     part of the profile. Devices memoize solved points keyed by
//     (workload, ambient offset, P-state dither, chip defect generation),
//     which collapses the benchmarking-campaign loop (the same GPU
//     re-benchmarked every coverage period) to one solve per GPU.
//
//   - Iteration synthesis (sim.RunSteady) addresses all per-kernel state
//     through a kernelIndex — kernel names interned to dense slice
//     indices once per run — instead of string-keyed maps, and
//     preallocates every accumulator to its exact final size.
//
//   - Figure regeneration (internal/figures) builds its ID→generator
//     registry once, deduplicates shared experiments through a
//     singleflight session cache, and offers GenerateAllParallel
//     (cmd/figures -parallel) to run independent generators concurrently
//     with byte-identical output order.
//
// Every layer is required to be bit-exact: golden-output tests in
// internal/core and internal/campaign pin the full measurement stream
// (IEEE-754 bit patterns) against the original implementation, and
// TestGenerateAllParallelMatchesSerial pins the parallel catalog against
// the serial one.
//
// To profile the pipeline:
//
//	go test -run '^$' -bench BenchmarkFig04SGEMMSummit -cpuprofile cpu.out .
//	go tool pprof -top cpu.out
//
// and to record the benchmark trajectory across PRs:
//
//	make bench            # full suite → BENCH_1.json (ns/op, B/op, allocs/op)
//	make verify           # tier-1 tests + vet + benchmark smoke run
package gpuvar
