// Package gpuvar reproduces "Not All GPUs Are Created Equal:
// Characterizing Variability in Large-Scale, Accelerator-Rich Systems"
// (SC 2022) as a Go library: a physics-based GPU fleet simulator (V/F
// curves, DVFS controllers, RC thermal models, manufacturing spread, and
// a defect taxonomy), the paper's five workloads, its six clusters, and
// the full characterization methodology (IQR variability, correlations,
// repeatability, day-of-week, power-limit sweeps, outlier triage).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and the examples/
// directory for runnable entry points. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the same
// generators are exposed interactively by cmd/figures.
package gpuvar
