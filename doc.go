// Package gpuvar reproduces "Not All GPUs Are Created Equal:
// Characterizing Variability in Large-Scale, Accelerator-Rich Systems"
// (SC 2022) as a Go library: a physics-based GPU fleet simulator (V/F
// curves, DVFS controllers, RC thermal models, manufacturing spread, and
// a defect taxonomy), the paper's five workloads, its six clusters, and
// the full characterization methodology (IQR variability, correlations,
// repeatability, day-of-week, power-limit sweeps, outlier triage).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and the examples/
// directory for runnable entry points. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the same
// generators are exposed interactively by cmd/figures.
//
// # Performance
//
// The experiment hot path is
//
//	fleet instantiate → steady-state solve → iteration synthesis → aggregation
//
// and each stage has a reuse layer in front of it:
//
//   - Fleet instantiation (internal/cluster) samples every chip and
//     thermal node of a cluster — 27,648 of each for Summit — and is a
//     pure function of (Spec, seed). cluster.FleetCache memoizes it by
//     (Spec fingerprint, seed); core.Run goes through the process-wide
//     cluster.DefaultFleetCache, so a session pays the cost once per
//     distinct fleet instead of once per experiment. The ablation knobs
//     (NoDefects, VariationOverride) rewrite the spec before the lookup
//     and therefore hash to their own entries: cached fleets are never
//     mutated. Jobs still receive private thermal-node copies, so runs
//     cannot leak heat into each other. core.RunFresh bypasses the cache;
//     the golden tests in internal/core assert both paths are
//     bit-identical.
//
//   - The steady-state solve (internal/sim) converges each device's
//     DVFS/thermal operating point per kernel class — the math.Exp-heavy
//     part of the profile. Devices memoize solved points keyed by
//     (workload, ambient offset, P-state dither, chip defect generation),
//     which collapses the benchmarking-campaign loop (the same GPU
//     re-benchmarked every coverage period) to one solve per GPU.
//
//   - Iteration synthesis (sim.RunSteady) addresses all per-kernel state
//     through a kernelIndex — kernel names interned to dense slice
//     indices once per run — instead of string-keyed maps, and
//     preallocates every accumulator to its exact final size.
//
//   - Figure regeneration (internal/figures) builds its ID→generator
//     registry once, deduplicates shared experiments through a
//     singleflight session cache, and offers GenerateAllParallel
//     (cmd/figures -parallel) to run independent generators concurrently
//     with byte-identical output order.
//
// Every layer is required to be bit-exact: golden-output tests in
// internal/core and internal/campaign pin the full measurement stream
// (IEEE-754 bit patterns) against the original implementation, and
// TestGenerateAllParallelMatchesSerial pins the parallel catalog against
// the serial one.
//
// # Execution engine
//
// All compute fan-out runs on one shared executor, internal/engine,
// instead of per-layer worker pools:
//
//	engine.Map(ctx, n, workers, fn)  — sharded job: bounded pool sized
//	                                   once, results in shard order,
//	                                   per-shard panic recovery,
//	                                   cooperative ctx checks between
//	                                   shards, progress counters
//	engine.Group[V].Do(ctx, key, fn) — cancellation-safe singleflight:
//	                                   the execution belongs to its set
//	                                   of waiters, not to the caller
//	                                   that started it
//
// core.RunCtx shards an experiment over its jobs; campaign.SimulateCtx
// shards each benchmarking day over its node slots (the monitor then
// folds measurements sequentially — EWMA state is order-sensitive);
// figures.GenerateAllParallel shards the catalog over generators; the
// week/power/spatial studies shard over their variants. Deterministic
// shard→result ordering is what keeps every one of these bit-identical
// to the serial loops they replaced.
//
// The cancellation contract: every entry point takes a context and
// returns ctx.Err() promptly when it ends — workers stop pulling shards,
// in-flight shards finish (they are ms-scale), and no goroutines leak.
// Cache layers only ever store complete results: a canceled
// singleflight leader hands the in-flight computation to the remaining
// waiters (engine.Group refcounts them) rather than poisoning the key,
// and a computation nobody waits for anymore is itself canceled. The
// fleet cache is the one deliberate exception — instantiation is a pure
// memoizable function, so once sampling has begun an abandoned
// instantiate runs to completion and is cached for the next request,
// while the abandoning caller still returns immediately. But an
// instantiate whose every waiter is gone before sampling begins is
// never started (the admission rule), and completed fleets live in an
// LRU bounded at gpuvard -fleet-cache (default 16) with eviction and
// admission-skip counters on /v1/healthz — so seed-scanning clients
// cannot grow the server's fleet working set without limit.
//
// To profile the pipeline:
//
//	go test -run '^$' -bench BenchmarkFig04SGEMMSummit -cpuprofile cpu.out .
//	go tool pprof -top cpu.out
//
// and to record the benchmark trajectory across PRs:
//
//	make bench            # full suite → BENCH_10.json (ns/op, B/op, allocs/op)
//	make verify           # tier-1 tests + vet + bench smoke + regression gate
//
// # Serving
//
// The same catalog is served concurrently over HTTP by internal/service
// (run it with cmd/gpuvard, default :8080):
//
//	GET    /v1/figures            catalog of figure/table generators
//	GET    /v1/figures/{id}       one rendered figure (config via query)
//	GET    /v1/experiments/{name} one experiment summary (params via query)
//	POST   /v1/campaign           one campaign simulation (params via body)
//	POST   /v1/sweep              a bounded variant-axis sweep as one
//	                              engine job graph (see below); accepts
//	                              adaptive: true for pre-screened sweeps
//	GET/POST /v1/estimate         the sweep request answered analytically
//	                              in microseconds, every point carrying
//	                              an error bound (see below)
//	GET    /v1/stream/sweep       the same sweep streamed as NDJSON,
//	                              one line per variant (see below)
//	GET    /v1/stream/experiments/{name}
//	                              an experiment streamed as NDJSON,
//	                              one line per shard
//	POST   /v1/jobs               async submission → 202 + poll URL
//	GET    /v1/jobs               list live jobs, in creation order
//	GET    /v1/jobs/{id}          job state + per-shard progress
//	GET    /v1/jobs/{id}/result   finished job's response (replayable)
//	DELETE /v1/jobs/{id}          cancel (active) / forget (terminal)
//	GET    /v1/stats              cache/session/engine/job counters,
//	                              per-class queues, budget occupancy
//	GET    /v1/healthz            liveness + the same counters
//	GET    /v1/                   discovery document: every route with
//	                              its stability marker and successor
//	GET    /v1/replicas           fleet membership + dispatch counters
//	                              (see Distribution below)
//
// # Variant-axis sweeps
//
// A sweep runs the same experiment once per value of one knob — its
// variant axis — as a single engine job graph (each value a shard, the
// values' own per-GPU jobs nested inside). The normalized request
// schema covers every axis the studies need:
//
//	{
//	  "workload":   "sgemm",         // default sgemm
//	  "cluster":    "CloudLab",      // default CloudLab
//	  "axis":       "powercap",      // powercap | seed | ambient | fraction
//	  "values":     [300, 250, 200], // ≤ 32 values, validated per axis
//	  "seed": 2022, "fraction": 1, "runs": 1, "iterations": 0
//	}
//
// powercap sweeps the administrative W cap (the paper's §VI-B study;
// 0 = TDP), seed sweeps fleet instantiation seeds (uncertainty bands),
// ambient sweeps inlet-temperature offsets in °C within ±25 (facility
// what-ifs), and fraction sweeps measurement coverage in (0, 1] (cost
// ladders). The legacy power-cap spelling {"caps_w": [...]} still
// works: it normalizes to axis=powercap, shares the same cache entry,
// and returns byte-identical bodies. core.VariantSweepCtx implements
// all four axes once; core.PowerLimitSweep remains as its golden-tested
// powercap façade.
//
// # Analytical estimator
//
// A full-simulation sweep costs milliseconds per value; exploring a
// design space costs thousands of values. The estimator tier
// (internal/estimate, surfaced as /v1/estimate and the adaptive sweep
// mode) answers the same sweep-shaped questions from a calibrated
// closed form instead: sim.EstimateNominalSteady solves the
// steady-state DVFS/thermal/power fixed point for the NOMINAL device —
// no per-iteration loop, no RNG — and a tiny per-(SKU, workload, axis)
// calibration maps that nominal curve onto the fleet the simulator
// would actually build. Calibration fits two numbers — a fleet scale
// factor and a run-to-run noise level — against a handful of
// full-simulation anchor runs (extremes plus interior points of the
// requested axis, -estimate-anchors tunes how many), memoized
// process-wide by the exact request fingerprint, so it is a pure
// function of the request and never of run history: the same request
// estimates identically forever.
//
// Every estimated point carries an honest relative error bound
// assembled from what calibration observed — a floor, the anchors'
// spread around the fitted scale (model misfit: Corona's coarse MI60
// P-states yield wide bounds, CloudLab's smooth V100 curve tight
// ones), and the measured noise level. The validation harness pins
// that the true error against full simulation stays within the bound
// across all four axes and every catalog SKU. Warm, /v1/estimate
// answers a 9-value axis in ~40µs (BenchmarkServiceEstimate gates
// ≤50µs) and accepts 1024 values per request against the plain sweep's
// 32.
//
// Adaptive sweeps splice the two tiers: {"adaptive": true,
// "threshold": t} screens the axis through the estimator and spends
// full simulation only where the model cannot vouch for a point within
// tolerance t — its calibration anchors, points whose bound exceeds t,
// and points flanking a sharp local gradient — clamped at 32 simulated
// values per request. Both kinds run through ONE engine job graph
// whose simulated shards execute the exact shard body of the plain
// sweep, so simulated points are byte-identical to the non-adaptive
// sweep's (golden tests pin this per point, down to the JSON numeric
// literals) and ordered sink streaming works unchanged. threshold: 0
// folds onto the plain sweep — same cache entry, same bytes. The
// gpuvar_estimate_* metrics families count estimator calls,
// calibrations, screened-out versus fully simulated variants, and the
// worst calibration residual ever observed.
//
// # Streaming results
//
// The engine completes shards in deterministic order, so the service
// does not have to buffer a whole computation before answering: the
// /v1/stream endpoints flush one NDJSON line per completed top-level
// shard — a sweep variant, a per-GPU measurement job — with the first
// byte on the wire in milliseconds even for Summit-scale runs. The
// mechanism is engine.WithSink: an ordered per-shard sink carried via
// context (like engine.Progress), consumed by the next Map to run,
// which emits each shard's value the moment it and every lower-indexed
// shard have completed while nested jobs compute silently.
//
// Every line is {"kind", "shard", "shards", "payload", ...}: "start"
// (the body's prefix, sent immediately), "shard" (one completed shard,
// in order), and a terminal "summary" (the closing chunk plus the
// body's length and sha256) or in-band "error". The payloads are a
// progressive encoding of the SYNCHRONOUS response: concatenated in
// order they are byte-identical to the corresponding POST /v1/sweep or
// GET /v1/experiments body — golden tests pin this for all four sweep
// axes and both endpoints, and a completed stream deposits its verified
// body into the response cache so the synchronous twin replays it as a
// hit. Streams run under the batch-length deadline (-job-timeout) and
// abort mid-shard on client disconnect; cmd/loadgen -stream reassembles
// them under load, asserts identity, and reports time-to-first-line.
//
// # Scheduling classes
//
// All elastic worker pools draw from one process-wide weighted token
// budget (gpuvard -budget, default GOMAXPROCS) instead of sizing
// per-job from GOMAXPROCS, so nested job graphs (sweep → experiment →
// per-GPU jobs) cannot oversubscribe the scheduler under heavy
// traffic. Every elastic Map runs one worker inline on its caller's
// goroutine — progress is guaranteed with zero tokens, which makes the
// scheduler deadlock-free under nesting — and recruits extra workers
// non-blockingly as shards complete, growing the pool the moment
// another job releases tokens.
//
// Work is classed interactive or batch (engine.WithClass, carried on
// the context): synchronous handlers and streams run interactive;
// async jobs default to batch, overridable per submission with
// {"class": "interactive"}. Interactive may occupy the whole budget;
// batch is capped below it (an interactive reserve of at least one
// token), and the jobs layer gives each class its own execution slots
// and queue — so an interactive request completes even while the batch
// side is saturated, a contract the engine and service test suites pin.
// Saturation is observable (/v1/healthz, /v1/stats: per-class queue
// depth and budget occupancy) and bounded: batch submissions past the
// queue bound (-max-queued-jobs) shed with 429 + Retry-After instead of
// growing an unbounded backlog.
//
// # Async jobs
//
// Summit-scale sweeps and long campaigns outlive any sane request
// deadline, so the service also accepts them asynchronously: POST
// /v1/jobs with {"kind": "sweep"|"campaign", "<kind>": <the sync
// endpoint's body>} answers 202 with a poll URL instead of holding the
// connection. The lifecycle (internal/jobs):
//
//	queued ──► running ──► done
//	   │          │    ├──► failed
//	   └──────────┴───────► canceled
//
// A job is queued until one of its class's execution slots frees
// (gpuvard -max-jobs bounds per-class concurrency so batch jobs cannot
// starve interactive ones), running while it computes under its
// own budget (-job-timeout, default 10m), and terminal afterwards.
// GET /v1/jobs/{id} reports the state plus per-shard progress —
// shards_done / shards_total, fed by the engine's shard counters
// through the job's context, with the total growing as nested jobs are
// discovered and both counters monotone while it runs. (A job that
// coalesces onto an identical in-flight computation, or replays a
// cached result, shows 0/0 — the work is not its own — and just
// completes when the shared flight does.) DELETE cancels:
// the engine stops dispatching the job's shards and its workers drain
// promptly.
//
// Retention: GET /v1/jobs/{id}/result replays the finished bytes on
// every fetch (fetching never consumes) until the job ages past its
// TTL (-job-ttl, default 10m) or the retained set exceeds its LRU cap,
// after which the job answers 404; canceled jobs answer 410, unfinished
// ones 409 + Retry-After. A job's computation runs through the same
// response cache and singleflight as the synchronous handlers, which
// guarantees its result is byte-identical to the held-connection
// response for the same body — and primes the cache for later
// synchronous requests. cmd/loadgen -jobs drives this whole lifecycle
// under load and asserts exactly that identity.
//
// A request descends through four reuse layers, each of which may
// short-circuit it: (1) the service's fingerprint-keyed LRU response
// cache with cancellation-safe singleflight coalescing — N concurrent
// identical requests cost one computation, and repeats replay stored
// bytes; (2) the figure session cache, which runs each shared
// experiment once per config; (3) the process-wide fleet cache, one
// instantiation per (spec, seed); (4) per-device steady-point
// memoization inside the simulator. The whole stack is deterministic,
// so identical requests are byte-identical no matter which layer
// answers — cmd/loadgen hammers a running server with concurrent
// workers and verifies exactly that while measuring req/s and p50/p99
// latency:
//
//	make serve                  # gpuvard on :8080
//	go run ./cmd/loadgen -c 32  # 32 workers, byte-identity + latency report
//
// Every handler bounds its computation with a per-request deadline
// (gpuvard -timeout, default 30s) and aborts it mid-run on client
// disconnect; the server answers 504 (deadline) or 499 (canceled), and
// loadgen reports such server-shed responses separately from failures.
//
// Concurrency model: cross-request shared state is confined to
// internally locked caches (response LRU, session pool, figures
// singleflight, fleet cache); every mutable simulation object
// (sim.Device, rng streams, thermal-node copies) is created inside the
// owning goroutine and never escapes it. go test -race covers the full
// stack, including a concurrent catalog run and an in-flight request
// cancellation through the server.
//
// # Multi-tenancy
//
// The front door attributes every request to a client: the X-API-Key
// header when sent (sanitized to 64 printable-ASCII chars), the remote
// address otherwise. Identity never changes response bytes — requests
// stay pure functions of their payload — it drives admission, fair
// scheduling, and accounting:
//
//   - Admission is double-bounded. Batch submissions shed with 429 when
//     the class-wide queue is full (gpuvard -max-queued-jobs; code
//     "queue_full") or when the submitting client's own backlog exceeds
//     its slice (-max-queued-per-client; code "client_queue_full",
//     naming the client) — a noisy tenant hits its own wall while quiet
//     tenants keep submitting.
//   - Dispatch is stride-scheduled fair sharing across clients inside
//     the class budget: each client's queue drains in proportion to its
//     weight (-client-weight team-a=4; default 1), a newly active
//     client enters at the class's virtual time (no starvation, no
//     banked credit), and ties break deterministically by client ID.
//   - Accounting rides /v1/stats (per-client queued/running/shed/served
//     and weight) and the dependency-free Prometheus text exposition at
//     GET /metrics (gpuvar_* counter/gauge families with per-class,
//     per-client, and per-fault-site labels).
//
// Every response carries X-Request-ID (echoed from the client if
// reasonable, generated otherwise), errors are a uniform JSON envelope
// with a stable machine-readable code, and the legacy /healthz spelling
// answers with Deprecation/Link headers pointing at /v1/healthz.
//
// Async jobs also record their stream: each job's NDJSON lines (the
// same schema and byte-identical payload chunks as the synchronous
// streaming endpoints) land in a bounded replayable line log, and GET
// /v1/jobs/{id}/stream attaches at ANY point in the job's life —
// replaying everything already emitted, then following live until the
// terminal line. A mid-run attach therefore delivers the identical
// bytes a from-the-start reader saw, and the concatenated payloads
// equal the job's result body exactly. GET /v1/jobs is paginated
// (limit/page_token over stable creation order) and filterable by
// client and state. API.md documents the full surface.
//
// # Resilience
//
// The serving stack is built to keep answering — with the right bytes —
// while individual shard executions misbehave, and to prove it on
// demand. internal/faults is a process-wide fault-injection registry
// with named sites compiled into the hot paths:
//
//	engine.shard.pre    before a shard attempt executes
//	engine.shard.post   after a shard attempt returns
//	cache.fleet.get     fleet-cache lookups
//	jobs.persist        job-journal appends
//
// Each site can be armed (gpuvard -faults, or $GPUVARD_FAULTS) with a
// behavior and probability — 'site=error:p', 'panic:p', 'stall:p'
// (block until the context ends), or 'slow:p:dur' — e.g.
//
//	gpuvard -faults 'engine.shard.pre=error:0.3,cache.fleet.get=slow:0.1:5ms'
//
// Injections draw from per-site RNG streams seeded by -fault-seed, so a
// chaos run is reproducible. A disarmed registry costs one atomic load
// per site check. Armed sites and their check/injection counters appear
// on /v1/healthz and /v1/stats.
//
// Failures are classified (engine.ClassifyError): context
// cancellation/deadline is Canceled, errors marked transient — by
// engine.MarkTransient or by implementing IsTransient() bool, as
// injected faults do — are Transient, everything else (including
// contained shard panics) is Permanent. Under a retry policy
// (engine.WithRetry on the context, or the process default from
// gpuvard -retries) a transiently failing shard re-executes up to
// MaxAttempts times with jittered doubling backoff, aborting promptly
// if the context ends; Permanent and Canceled failures never retry.
// A hedge policy (engine.WithHedge, gpuvard -hedge-after) additionally
// arms a per-shard watchdog: an attempt still running after the
// threshold is raced by a duplicate execution and the first result
// wins. Shards are pure functions of their inputs, so a duplicate's
// result is the original's, and responses stay byte-identical — the
// golden chaos tests pin exactly that: sweep and campaign bytes under
// 30% injected transient shard faults equal the fault-free bytes.
// Retry/hedge/fault counters surface in engine.Stats and on /v1/stats.
//
// Jobs survive crashes: with gpuvard -data-dir set, internal/jobs
// appends a write-ahead journal of JSON lines (submit records and
// terminal transitions, done results' bytes included) under the data
// directory, fsynced per -journal-sync (terminal fsyncs terminal
// records — the default; always and never trade durability against
// throughput). On boot the journal replays: finished jobs answer
// GET /v1/jobs/{id}/result with their exact pre-crash bytes, and jobs
// interrupted mid-run resolve to failed with an explicit interruption
// reason instead of vanishing. Recovery tolerates corruption — a torn
// or garbage tail is truncated at the last decodable record and
// counted (skipped_records, truncated_bytes on /v1/stats) — and each
// replay compacts the file to the retained set so it tracks retention
// instead of growing without bound.
//
// Degraded serving: when a synchronous computation fails server-side
// (5xx) and a previously evicted copy of that exact response is still
// held in the cache's stale store, the service answers 200 with the
// stale bytes and X-Degraded: stale (plus X-Cache: stale) instead of
// the error — responses are pure functions of the request fingerprint,
// so a stale copy is never wrong, merely evicted. Client errors (4xx)
// are never masked. /v1/healthz reports status "degraded" (with ok
// still true — liveness is unaffected) while faults are armed or
// within a minute of a stale serve; degraded_serves counts them.
//
// scripts/smoke.sh drives all of this against a real server: a chaos
// stage (30% injected shard faults, retries armed, byte-identity to
// the fault-free run with zero 5xx) and a crash stage (kill -9
// mid-jobs, reboot over the same -data-dir, journal replay asserted).
//
// # Distribution
//
// One replica's worker budget bounds one machine; internal/dispatch
// puts a seam under engine.Map so a fleet of gpuvard replicas shares
// the shard work instead. A Backend executes a contiguous run of a
// job's shards — LocalBackend runs them in-process (the identity
// path: zero overhead, byte-identical to plain Map), HTTPBackend
// POSTs them to a peer's internal /v1/internal/shards route, where
// the same shard function runs against the peer's own caches. The
// Dispatcher in front holds the replica set and picks a backend per
// shard group under a routing policy:
//
//	roundrobin    rotate over healthy members
//	leastloaded   lowest worker-budget occupancy from the last probe
//	affinity      rendezvous-hash the shard group's fleet-cache
//	              fingerprint (spec, seed, axis setting) over members
//
// affinity (the gpuvard default) is the placement policy that makes a
// fleet faster than its parts: repeat variants of the same
// (cluster, seed) land on the replica whose fleet cache is already
// warm, and rendezvous hashing keeps placements stable under
// membership churn — a leaving peer remaps only its own keys. Wire a
// fleet by handing every replica the same -peers list (each drops its
// own -self-url); a background prober (-peer-probe, default 2s)
// ejects failing peers and readmits recovered ones, a shard that
// fails remotely ejects its peer immediately and re-picks a survivor
// (or local execution) under the engine retry policy, and a fleet
// with every peer down degrades to exactly the single-process server.
// Responses are byte-identical from any replica and to single-process
// serving — golden tests pin the dispatched sweep, stream, and job
// bodies against the local ones, and the smoke's 3-replica stage
// re-proves it end to end while asserting affinity beats roundrobin
// on warm-shard placement and a kill -9'd replica costs zero 5xx.
// Clients can steer routing per request (X-GPUVar-Route: remote |
// affinity-strict; the strict form answers 421 wrong_replica naming
// the owner in X-GPUVar-Owner), GET /v1/replicas reports membership
// and the local/remote + warm/cold shard splits, and the same
// counters ride /metrics as the gpuvar_dispatch_* families.
//
// # Traffic
//
// Perf claims are only as good as the load they were measured under, so
// the serving stack records and replays its own traffic
// (internal/traffic) and synthesizes production-shaped workloads
// instead of relying on loadgen's uniform round-robin mix alone.
//
// A trace is versioned JSON lines — a header naming its source
// (recorded | generated) and seed, then one record per request carrying
// the microsecond offset from session start, client identity, endpoint
// kind, method/path/body, a request fingerprint, and the
// expected-response oracle (status + body sha256). gpuvard
// -record-trace captures every replayable request the server serves
// (observability and polling routes are classified out), flushing per
// record with the job journal's torn-tail tolerance: a capture that
// dies mid-line replays its intact prefix. loadgen -replay plays a
// trace back — at recorded offsets on a virtual clock, or wall-clock
// with -pace — verifies every response against its oracle (job
// submissions re-drive the whole submit/poll/result cycle; streams
// reassemble and hash the raw NDJSON), and reports per-phase p50/p99,
// stream time-to-first-line, and a run digest over every (status,
// sha256) pair: equal digests across runs are the replay-determinism
// contract.
//
// loadgen -generate emits seeded synthetic traces in the same format:
// a multi-period diurnal rate curve (sum of sinusoids over -gen-periods)
// modulates Poisson arrivals; client cohorts burst on/off with
// Pareto-tailed burst sizes (-gen-burst-alpha); request kinds draw from
// a weighted heavy-tailed mix over figures, sweeps, estimates, streams,
// and async jobs, with Zipf-skewed parameter pools so some variants are
// hot and most are cold. The same -gen-seed reproduces a trace
// byte-for-byte, and each record is phase-tagged (peak | offpeak) so
// replay reports latency under burst separately. The committed
// testdata/traces/burst.trace fixture (regenerable via go test -run
// TestReplayBurstFixture -update-trace) pins all of it:
// TestReplayBurstFixture replays it twice with zero oracle mismatches
// and equal digests, BenchmarkReplayBurst gates its p99 and stream-TTFL
// under burst in the benchmark trajectory, and the smoke's replay stage
// re-proves determinism against a live server process.
//
// # CI gates
//
// Every PR must clear .github/workflows/ci.yml: the verify job
// (scripts/verify.sh — build, gofmt check, vet, a pinned staticcheck
// pass, tests with a coverage-floor gate that fails if total coverage
// drops below the committed baseline, a short native-fuzz smoke of the
// request-normalization and trace-decode targets (FuzzSweepRequest,
// FuzzJobEnvelope, FuzzTraceDecode; the
// full sessions run via make fuzz), a benchmark smoke run, and the
// cmd/benchjson -compare regression gate, which re-measures the banked
// perf wins plus the sweep, async-job, streaming, and classed-engine
// serving paths — plus the retry-overhead guard (a fault-free run with
// retries armed must stay free), the replayable job-stream attach, the
// warm /v1/estimate microsecond path, and the cold pre-screened
// adaptive sweep — plus the dispatched-sweep overhead guard and the
// burst-trace replay (latency under production-shaped arrivals) — and
// fails on >25% ns/op or allocs/op growth against the committed
// BENCH_10.json), the race job (go test -race -short
// ./...), and the smoke job (make smoke — build gpuvard, boot it
// recording its own traffic, replay the committed burst trace twice
// asserting zero oracle mismatches and identical run digests, and
// drive a concurrent loadgen mix over figures, variant-axis sweeps, the
// async job lifecycle, and the streaming endpoints, asserting zero
// failures and byte-identity end to end, then an estimator stage (a
// 256-value /v1/estimate, the over-cap plain-sweep rejection, and
// loadgen -estimate verifying the adaptive mix), a multi-tenant stage
// (4 client identities through the job path, per-client accounting
// asserted on /v1/stats and /metrics, a job stream replayed through its
// summary line), the chaos and crash-recovery stages described under
// Resilience, and the 3-replica distributed stage described under
// Distribution). Superseded CI runs on the same ref are canceled
// (concurrency: cancel-in-progress).
package gpuvar
