// Package gpuvar reproduces "Not All GPUs Are Created Equal:
// Characterizing Variability in Large-Scale, Accelerator-Rich Systems"
// (SC 2022) as a Go library: a physics-based GPU fleet simulator (V/F
// curves, DVFS controllers, RC thermal models, manufacturing spread, and
// a defect taxonomy), the paper's five workloads, its six clusters, and
// the full characterization methodology (IQR variability, correlations,
// repeatability, day-of-week, power-limit sweeps, outlier triage).
//
// See DESIGN.md for the system inventory and the per-experiment index,
// EXPERIMENTS.md for paper-versus-measured results, and the examples/
// directory for runnable entry points. The benchmarks in bench_test.go
// regenerate every table and figure of the paper's evaluation; the same
// generators are exposed interactively by cmd/figures.
//
// # Performance
//
// The experiment hot path is
//
//	fleet instantiate → steady-state solve → iteration synthesis → aggregation
//
// and each stage has a reuse layer in front of it:
//
//   - Fleet instantiation (internal/cluster) samples every chip and
//     thermal node of a cluster — 27,648 of each for Summit — and is a
//     pure function of (Spec, seed). cluster.FleetCache memoizes it by
//     (Spec fingerprint, seed); core.Run goes through the process-wide
//     cluster.DefaultFleetCache, so a session pays the cost once per
//     distinct fleet instead of once per experiment. The ablation knobs
//     (NoDefects, VariationOverride) rewrite the spec before the lookup
//     and therefore hash to their own entries: cached fleets are never
//     mutated. Jobs still receive private thermal-node copies, so runs
//     cannot leak heat into each other. core.RunFresh bypasses the cache;
//     the golden tests in internal/core assert both paths are
//     bit-identical.
//
//   - The steady-state solve (internal/sim) converges each device's
//     DVFS/thermal operating point per kernel class — the math.Exp-heavy
//     part of the profile. Devices memoize solved points keyed by
//     (workload, ambient offset, P-state dither, chip defect generation),
//     which collapses the benchmarking-campaign loop (the same GPU
//     re-benchmarked every coverage period) to one solve per GPU.
//
//   - Iteration synthesis (sim.RunSteady) addresses all per-kernel state
//     through a kernelIndex — kernel names interned to dense slice
//     indices once per run — instead of string-keyed maps, and
//     preallocates every accumulator to its exact final size.
//
//   - Figure regeneration (internal/figures) builds its ID→generator
//     registry once, deduplicates shared experiments through a
//     singleflight session cache, and offers GenerateAllParallel
//     (cmd/figures -parallel) to run independent generators concurrently
//     with byte-identical output order.
//
// Every layer is required to be bit-exact: golden-output tests in
// internal/core and internal/campaign pin the full measurement stream
// (IEEE-754 bit patterns) against the original implementation, and
// TestGenerateAllParallelMatchesSerial pins the parallel catalog against
// the serial one.
//
// # Execution engine
//
// All compute fan-out runs on one shared executor, internal/engine,
// instead of per-layer worker pools:
//
//	engine.Map(ctx, n, workers, fn)  — sharded job: bounded pool sized
//	                                   once, results in shard order,
//	                                   per-shard panic recovery,
//	                                   cooperative ctx checks between
//	                                   shards, progress counters
//	engine.Group[V].Do(ctx, key, fn) — cancellation-safe singleflight:
//	                                   the execution belongs to its set
//	                                   of waiters, not to the caller
//	                                   that started it
//
// core.RunCtx shards an experiment over its jobs; campaign.SimulateCtx
// shards each benchmarking day over its node slots (the monitor then
// folds measurements sequentially — EWMA state is order-sensitive);
// figures.GenerateAllParallel shards the catalog over generators; the
// week/power/spatial studies shard over their variants. Deterministic
// shard→result ordering is what keeps every one of these bit-identical
// to the serial loops they replaced.
//
// The cancellation contract: every entry point takes a context and
// returns ctx.Err() promptly when it ends — workers stop pulling shards,
// in-flight shards finish (they are ms-scale), and no goroutines leak.
// Cache layers only ever store complete results: a canceled
// singleflight leader hands the in-flight computation to the remaining
// waiters (engine.Group refcounts them) rather than poisoning the key,
// and a computation nobody waits for anymore is itself canceled. The
// fleet cache is the one deliberate exception — instantiation is a pure
// memoizable function, so an abandoned instantiate runs to completion
// in the background and is cached for the next request, while the
// abandoning caller still returns immediately.
//
// To profile the pipeline:
//
//	go test -run '^$' -bench BenchmarkFig04SGEMMSummit -cpuprofile cpu.out .
//	go tool pprof -top cpu.out
//
// and to record the benchmark trajectory across PRs:
//
//	make bench            # full suite → BENCH_2.json (ns/op, B/op, allocs/op)
//	make verify           # tier-1 tests + vet + bench smoke + regression gate
//
// # Serving
//
// The same catalog is served concurrently over HTTP by internal/service
// (run it with cmd/gpuvard, default :8080):
//
//	GET  /v1/figures            catalog of figure/table generators
//	GET  /v1/figures/{id}       one rendered figure (config via query)
//	GET  /v1/experiments/{name} one experiment summary (params via query)
//	POST /v1/campaign           one campaign simulation (params via body)
//	POST /v1/sweep              a bounded batch of experiment variants
//	                            (power-cap sweep) as one engine job graph
//	GET  /v1/stats              cache/session/engine counters
//	GET  /v1/healthz            liveness + the same counters
//
// A request descends through four reuse layers, each of which may
// short-circuit it: (1) the service's fingerprint-keyed LRU response
// cache with cancellation-safe singleflight coalescing — N concurrent
// identical requests cost one computation, and repeats replay stored
// bytes; (2) the figure session cache, which runs each shared
// experiment once per config; (3) the process-wide fleet cache, one
// instantiation per (spec, seed); (4) per-device steady-point
// memoization inside the simulator. The whole stack is deterministic,
// so identical requests are byte-identical no matter which layer
// answers — cmd/loadgen hammers a running server with concurrent
// workers and verifies exactly that while measuring req/s and p50/p99
// latency:
//
//	make serve                  # gpuvard on :8080
//	go run ./cmd/loadgen -c 32  # 32 workers, byte-identity + latency report
//
// Every handler bounds its computation with a per-request deadline
// (gpuvard -timeout, default 30s) and aborts it mid-run on client
// disconnect; the server answers 504 (deadline) or 499 (canceled), and
// loadgen reports such server-shed responses separately from failures.
//
// Concurrency model: cross-request shared state is confined to
// internally locked caches (response LRU, session pool, figures
// singleflight, fleet cache); every mutable simulation object
// (sim.Device, rng streams, thermal-node copies) is created inside the
// owning goroutine and never escapes it. go test -race covers the full
// stack, including a concurrent catalog run and an in-flight request
// cancellation through the server.
//
// # CI gates
//
// Every PR must clear .github/workflows/ci.yml: the verify job
// (scripts/verify.sh — build, gofmt check, vet, tests, benchmark smoke
// run, and the cmd/benchjson -compare regression gate, which
// re-measures the banked perf wins and fails on >25% ns/op or allocs/op
// growth against the committed BENCH_3.json, then a coverage summary)
// and the race job (go test -race -short ./...). Superseded CI runs on
// the same ref are canceled (concurrency: cancel-in-progress).
package gpuvar
