// Quickstart: characterize SGEMM variability on a modeled GPU cluster.
//
// This is the minimal end-to-end use of the library: instantiate a
// cluster, run the paper's cross-cluster benchmark on every GPU, and
// print the variability numbers an operator would act on.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/report"
	"gpuvar/internal/workload"
)

func main() {
	// Longhorn: 416 air-cooled V100s (paper Table I).
	spec := cluster.Longhorn()

	// The paper's benchmark: 100 repetitions of a 25536x25536 SGEMM.
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = 25 // trimmed for a quick demo; the paper uses 100

	res, err := core.Run(core.Experiment{
		Cluster:  spec,
		Workload: wl,
		Seed:     2022, // any seed reproduces the same fleet
	})
	if err != nil {
		log.Fatal(err)
	}

	s := res.Summarize()
	fmt.Printf("%s on %s (%d GPUs)\n", s.Workload, s.Cluster, s.GPUs)
	fmt.Printf("  performance variation: %.1f%% (range/median, outliers excluded)\n", s.PerfVar*100)
	fmt.Printf("  frequency variation:   %.1f%%\n", s.FreqVar*100)
	fmt.Printf("  outliers flagged:      %d\n\n", s.NOutliers)

	// The same GPUs, same SKU, same configuration — and still a wide
	// spread. The kernel-duration box plot per cabinet:
	chart := report.BoxChart{Title: "SGEMM kernel duration by cabinet", Unit: " ms", ClipOutliers: true}
	grouped := map[string][]float64{}
	for _, m := range res.PerAG {
		grouped[m.Loc.Cabinet] = append(grouped[m.Loc.Cabinet], m.PerfMs)
	}
	for _, g := range res.GroupLabels() {
		if err := chart.Add(g, grouped[g]); err != nil {
			log.Fatal(err)
		}
	}
	if err := chart.Render(log.Writer()); err != nil {
		log.Fatal(err)
	}

	// Why it varies: performance tracks the DVFS frequency each chip
	// settles at under the shared 300 W power cap.
	c := res.Correlate()
	fmt.Printf("\n  rho(perf, freq) = %+.2f — frequency explains the spread\n", c.PerfFreq)
	fmt.Printf("  rho(perf, temp) = %+.2f — temperature couples in weakly (air cooling)\n", c.PerfTemp)
}
