// Pmexporter: the PM-information exposure standard the paper calls for
// (§VII "New Hardware and System Design"), end to end.
//
// A node agent benchmarks its fleet, publishes per-GPU PM state over
// HTTP/JSON (the uniform interface vendors do not provide today), and a
// fleet watcher consumes the feed to raise maintenance alerts — the
// automated version of the paper's early-warning workflow.
//
//	go run ./examples/pmexporter
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/pmexport"
	"gpuvar/internal/workload"
)

// exportResult converts an experiment's measurements into the exporter
// schema.
func exportResult(res *core.Result) []pmexport.Record {
	fleet := res.Exp.Cluster.Instantiate(res.Exp.Seed)
	pins := map[string]float64{}
	for _, m := range fleet.Members {
		pins[m.Chip.ID] = m.Chip.MaxUsableClockMHz()
	}
	now := time.Now()
	out := make([]pmexport.Record, 0, len(res.PerAG))
	for _, m := range res.PerAG {
		out = append(out, pmexport.Record{
			GPUID:            m.GPUID,
			NodeID:           m.Loc.NodeID(),
			FreqMHz:          m.FreqMHz,
			PowerW:           m.PowerW,
			TempC:            m.TempC,
			PerfMs:           m.PerfMs,
			PowerCapW:        res.Exp.Cluster.SKU().TDPWatts,
			MaxClockMHz:      pins[m.GPUID],
			ThermallyLimited: m.ThermallyLimited,
			CollectedAt:      now,
		})
	}
	return out
}

func main() {
	// Node agent side: run the periodic benchmark and load the exporter.
	spec := cluster.Longhorn()
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = 12
	res, err := core.Run(core.Experiment{Cluster: spec, Workload: wl, Seed: 2022})
	if err != nil {
		log.Fatal(err)
	}
	src := pmexport.NewStaticSource(exportResult(res))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: pmexport.Handler(src)}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Println("exporter:", err)
		}
	}()
	defer srv.Close()
	url := "http://" + ln.Addr().String()
	fmt.Printf("exporter serving %d GPUs at %s/v1/fleet\n\n", len(res.PerAG), url)

	// Operator side: the watcher polls the standard interface — no
	// vendor tools involved.
	client := pmexport.NewClient(url)
	sum, err := client.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet summary: %d GPUs, medians %.0f MHz / %.0f W / %.0f C, "+
		"%d thermally limited, %d below their power cap\n\n",
		sum.GPUs, sum.MedianFreqMHz, sum.MedianPowerW, sum.MedianTempC,
		sum.ThermallyLimited, sum.BelowCapCount)

	records, err := client.Fleet()
	if err != nil {
		log.Fatal(err)
	}
	alerts := pmexport.CheckFleet(records)
	fmt.Printf("maintenance alerts (%d):\n", len(alerts))
	for _, a := range alerts {
		fmt.Printf("  %-26s %s\n", a.GPUID, a.Reason)
	}
	fmt.Println("\nPaper §VII: \"we will need to design a standard for accelerators to expose " +
		"PM information from the hardware to the software and runtime.\"")
}
