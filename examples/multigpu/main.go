// Multigpu: bulk-synchronous straggler amplification and
// variability-aware placement (paper §V-A and §VII).
//
// A 4-GPU data-parallel training job advances at the pace of its slowest
// GPU. This example (1) quantifies how the slow-GPU lottery hits multi-
// GPU allocations, and (2) demonstrates the paper's proposed mitigation:
// schedule compute-bound jobs on low-variation nodes and memory-bound
// jobs on the rest.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"
	"sort"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/rng"
	"gpuvar/internal/sched"
	"gpuvar/internal/workload"
)

func main() {
	spec := cluster.Longhorn()
	seed := uint64(2022)

	// Step 1: benchmark the fleet with single-GPU SGEMM (the periodic
	// sweep an operator would already have).
	bench := workload.SGEMMForCluster(spec.SKU())
	bench.Iterations = 15
	single, err := core.Run(core.Experiment{Cluster: spec, Workload: bench, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	imp := single.Impact(0.06, 4)
	fmt.Printf("slow-GPU lottery on %s: %.0f%% of GPUs are >6%% slower than the fastest\n",
		spec.Name, imp.SlowFraction*100)
	fmt.Printf("  P(hit one) = %.0f%% for a 1-GPU job, %.0f%% for a 4-GPU job\n\n",
		imp.PSingleGPU*100, imp.PMultiGPU*100)

	// Step 2: run the multi-GPU training workload and show the
	// amplification: every GPU in a job reports the job's (slowest-GPU)
	// iteration time.
	resnet := workload.ResNet50(4, 64, spec.SKU())
	resnet.Iterations = 25
	multi, err := core.Run(core.Experiment{Cluster: spec, Workload: resnet, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-GPU ResNet-50: %.1f%% iteration-time variation across jobs "+
		"(vs %.1f%% for single-GPU SGEMM)\n\n",
		multi.Variation(core.Perf)*100, single.Variation(core.Perf)*100)

	// Step 3: variability-aware placement. Score each node by its
	// slowest benchmarked GPU and compare placement policies for a
	// compute-bound job stream.
	perfByNode := map[string]float64{}
	for _, m := range single.PerAG {
		if m.PerfMs > perfByNode[m.Loc.NodeID()] {
			perfByNode[m.Loc.NodeID()] = m.PerfMs
		}
	}
	var nodes []sched.Node
	fleet := spec.Instantiate(seed)
	for id, members := range fleet.Nodes() {
		var gpus []string
		for _, m := range members {
			gpus = append(gpus, m.Chip.ID)
		}
		sort.Strings(gpus)
		nodes = append(nodes, sched.Node{
			ID:   id,
			GPUs: gpus,
			// Higher score = faster node (invert the duration).
			PerfScore: -perfByNode[id],
		})
	}

	jobs := func() []sched.Job {
		out := make([]sched.Job, 40)
		for i := range out {
			out[i] = sched.Job{ID: i, GPUs: 4, SubmitS: float64(i) * 10, DurS: 300}
		}
		return out
	}

	for _, policy := range []sched.Policy{sched.Random, sched.BestPerf} {
		s := sched.New(nodes, policy, rng.New(1))
		scheduled := s.Schedule(jobs())
		slowHits := 0
		for _, j := range scheduled {
			for _, g := range j.GPUIDs {
				if isSlow(single, g) {
					slowHits++
					break
				}
			}
		}
		fmt.Printf("policy %-10s: %d of %d compute-bound jobs landed on a slow GPU\n",
			policy, slowHits, len(scheduled))
	}
	fmt.Println("\nPaper §VII: schedulers should place compute-intensive jobs on low-variation " +
		"nodes; memory-bound jobs tolerate the rest without penalty.")
}

// isSlow reports whether the GPU's benchmarked duration is >6% above the
// fleet's fastest.
func isSlow(res *core.Result, gpuID string) bool {
	fastest := res.PerAG[0].PerfMs
	for _, m := range res.PerAG {
		if m.PerfMs < fastest {
			fastest = m.PerfMs
		}
	}
	for _, m := range res.PerAG {
		if m.GPUID == gpuID {
			return m.PerfMs > fastest*1.06
		}
	}
	return false
}
