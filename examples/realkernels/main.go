// Realkernels: the computational substrates behind the workload models,
// running for real on the host.
//
// The simulator's workload signatures (FLOPs, bytes, compute fraction)
// come from these kernels rather than hard-coded constants. This example
// executes each one and prints its verified result next to the roofline
// signature the workload models consume.
//
//	go run ./examples/realkernels
package main

import (
	"fmt"
	"log"
	"time"

	"gpuvar/internal/graph"
	"gpuvar/internal/kernels"
	"gpuvar/internal/rng"
)

func main() {
	r := rng.New(42)

	// SGEMM — the paper's cross-cluster benchmark (scaled down for the
	// host; the signature math is size-exact).
	const n = 512
	a, b, c := kernels.NewMatrix(n, n), kernels.NewMatrix(n, n), kernels.NewMatrix(n, n)
	a.Fill(func(i, j int) float32 { return float32(r.Gaussian(0, 1)) })
	b.Fill(func(i, j int) float32 { return float32(r.Gaussian(0, 1)) })
	start := time.Now()
	kernels.SGEMM(a, b, c)
	fmt.Printf("SGEMM %dx%d: %.1f ms on host\n", n, n, float64(time.Since(start).Microseconds())/1000)
	sig := kernels.SGEMMSignature(25536)
	fmt.Printf("  paper-size signature: %s\n", sig)
	fmt.Printf("  V100 roofline: %.0f ms at max clock (93%% GEMM efficiency)\n\n",
		sig.NominalTimeMs(15.7, 900, 0.93))

	// PageRank on a rajat30-like circuit graph (scaled down).
	g := graph.CircuitGraph(50000, r.Split("graph"))
	st := g.Degrees()
	start = time.Now()
	pr := graph.PageRank(g, 0.85, 1e-8, 200)
	fmt.Printf("PageRank: %d vertices, %d edges (mean degree %.1f), converged in %d iterations (%.1f ms)\n",
		g.NumVertices, g.NumEdges(), st.Mean, pr.Iterations, float64(time.Since(start).Microseconds())/1000)
	var sum float64
	for _, rank := range pr.Ranks {
		sum += float64(rank)
	}
	fmt.Printf("  rank mass: %.6f (must be ~1)\n", sum)
	fmt.Printf("  paper-size signature: %s\n\n", kernels.SPMVSignature(graph.Rajat30Vertices, 6250000))

	// Molecular dynamics — the LAMMPS stand-in.
	md := kernels.NewMDSystem(4096, 0.8, r.Split("md"))
	md.ComputeForces()
	e0 := md.KineticEnergy()
	start = time.Now()
	var pe float64
	for i := 0; i < 20; i++ {
		pe = md.Step(0.002)
	}
	fmt.Printf("MD: 4096 LJ particles, 20 velocity-Verlet steps in %.1f ms\n",
		float64(time.Since(start).Microseconds())/1000)
	fmt.Printf("  energy: kinetic %.1f -> %.1f, potential %.1f (bounded drift = stable integrator)\n\n",
		e0, md.KineticEnergy(), pe)

	// Convolution — the ResNet building block.
	in := kernels.NewTensor4(2, 16, 32, 32)
	for i := range in.Data {
		in.Data[i] = float32(r.Gaussian(0, 1))
	}
	w := kernels.NewTensor4(32, 16, 3, 3)
	for i := range w.Data {
		w.Data[i] = float32(r.Gaussian(0, 0.1))
	}
	start = time.Now()
	out := kernels.ReLU(kernels.Conv2D(in, w))
	fmt.Printf("Conv2D+ReLU: %dx%dx%dx%d -> %dx%dx%dx%d in %.1f ms\n",
		in.N, in.C, in.H, in.W, out.N, out.C, out.H, out.W,
		float64(time.Since(start).Microseconds())/1000)
	convSig := kernels.Conv2DSignature(64, 256, 256, 14, 14, 3)
	fmt.Printf("  mid-ResNet layer signature: %s\n", convSig)

	if out.Data[0] < 0 {
		log.Fatal("ReLU failed") // unreachable; keeps the result observed
	}

	// Scaled dot-product attention — BERT's core kernel.
	const seq, dim = 256, 64
	mk := func() *kernels.Matrix {
		m := kernels.NewMatrix(seq, dim)
		for i := range m.Data {
			m.Data[i] = float32(r.Gaussian(0, 0.5))
		}
		return m
	}
	start = time.Now()
	attn := kernels.Attention(mk(), mk(), mk())
	fmt.Printf("\nAttention %dx%d: %.1f ms on host (out %dx%d)\n",
		seq, dim, float64(time.Since(start).Microseconds())/1000, attn.Rows, attn.Cols)
	fmt.Printf("  BERT-length signature: %s\n", kernels.AttentionSignature(512, 64))
}
