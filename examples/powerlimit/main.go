// Powerlimit: the paper's §VI-B study — how the administrative power
// limit shapes performance and variability (Fig. 22).
//
// On CloudLab (where the authors had root), SGEMM runs under caps from
// 300 W down to 100 W: kernels slow down as the cap drops, and the
// chip-to-chip spread widens (9% at 300 W → 18% at 150 W in the paper),
// because DVFS operating points diverge more on the steep low-power part
// of the V/F curve.
//
//	go run ./examples/powerlimit
package main

import (
	"fmt"
	"log"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/report"
	"gpuvar/internal/workload"
)

func main() {
	spec := cluster.CloudLab()
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = 20

	points, err := core.PowerLimitSweep(core.Experiment{
		Cluster:  spec,
		Workload: wl,
		Seed:     7,
		Runs:     4, // CloudLab is tiny; repeat runs firm up the statistics
	}, []float64{300, 250, 200, 150, 100})
	if err != nil {
		log.Fatal(err)
	}

	var t report.Table
	t.Header = []string{"Power cap (W)", "Median kernel (ms)", "Perf variation (%)", "Median clock (MHz)"}
	for _, p := range points {
		freqBox, err := p.Result.Box(core.Freq)
		if err != nil {
			log.Fatal(err)
		}
		t.AddRow(
			fmt.Sprintf("%.0f", p.CapW),
			fmt.Sprintf("%.0f", p.MedianMs),
			fmt.Sprintf("%.1f", p.PerfVar*100),
			fmt.Sprintf("%.0f", freqBox.Q2),
		)
	}
	if err := t.Render(log.Writer()); err != nil {
		log.Fatal(err)
	}

	base, low := points[0], points[3]
	fmt.Printf("\nAt %.0f W the fleet varies %.1f%%; at %.0f W it varies %.1f%% — "+
		"capping power amplifies manufacturing differences.\n",
		base.CapW, base.PerfVar*100, low.CapW, low.PerfVar*100)
	fmt.Println("Paper: \"variability and the number of outliers also increase with lower power limits.\"")
}
