// Fleetcheck: the administrator early-warning workflow of paper §VII
// ("Blacklisting, Maintenance").
//
// The paper's study let TACC operators identify and service problem
// nodes on Frontera and Longhorn. This example runs that workflow:
// a periodic SGEMM sweep across the fleet, outlier flagging on all four
// metrics, and a diagnosis per suspect — then verifies the flags against
// the simulation's planted ground truth.
//
//	go run ./examples/fleetcheck
package main

import (
	"fmt"
	"log"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/workload"
)

func sweep(spec cluster.Spec, seed uint64) []core.Suspect {
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = 15
	res, err := core.Run(core.Experiment{Cluster: spec, Workload: wl, Seed: seed, Runs: 2})
	if err != nil {
		log.Fatal(err)
	}
	return res.OutlierReport()
}

func main() {
	for _, spec := range []cluster.Spec{cluster.Frontera(), cluster.Corona(), cluster.Longhorn()} {
		fmt.Printf("=== %s maintenance sweep ===\n", spec.Name)
		suspects := sweep(spec, 2022)
		if len(suspects) == 0 {
			fmt.Println("fleet healthy: no outliers flagged")
			continue
		}
		fmt.Print(core.FormatSuspects(suspects))

		// In the simulator we know the ground truth, so the workflow's
		// hit rate is checkable — on a real cluster these flags are what
		// the operator takes to the machine room.
		hits, falseAlarms := 0, 0
		for _, s := range suspects {
			if s.TruthDefect != "none" {
				hits++
			} else {
				falseAlarms++
			}
		}
		planted := len(spec.Instantiate(2022).Defective())
		fmt.Printf("flagged %d suspects: %d with real planted defects (of %d planted), %d borderline-healthy\n\n",
			len(suspects), hits, planted, falseAlarms)
	}

	fmt.Println("Paper §VII: \"Performing periodic variability benchmarking can help automate this.\"")
}
