GO ?= go

.PHONY: build test verify bench bench-smoke figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate plus the cheap perf guards: vet and a
# one-iteration benchmark smoke run that catches harness regressions
# (a benchmark that panics or no longer compiles) without paying for a
# full timing pass. scripts/verify.sh is a thin wrapper over this
# target, so the command sequence lives only here.
verify: build
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) bench-smoke

# bench records the full benchmark suite into BENCH_1.json
# (name → ns/op, B/op, allocs/op). Pass BENCH='regexp' to restrict, e.g.
#   make bench BENCH='Fig04|ExtCampaign' COUNT=3
BENCH ?= .
COUNT ?= 1
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH)' -count $(COUNT) -out BENCH_1.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig01' -benchtime 1x .

figures:
	$(GO) run ./cmd/figures
