GO ?= go

.PHONY: help build vet test verify race bench bench-smoke bench-compare figures serve loadgen

# help lists the targets. Serving quick-reference:
#   make serve    starts cmd/gpuvard on :8080 — the experiment service.
#     A request passes through (1) the service's fingerprint-keyed LRU
#     response cache with singleflight coalescing, (2) the figures
#     session cache (one run per shared experiment), (3) the process-wide
#     fleet cache (one instantiation per (spec, seed)), and (4) per-device
#     steady-point memoization. Identical requests are byte-identical.
#   make loadgen  hammers a running gpuvard with concurrent identical
#     requests, checks byte-identity, and reports req/s + p50/p99.
# CI gates a PR must clear (.github/workflows/ci.yml):
#   make verify   build + vet + test + bench-smoke + bench-compare
#   make race     go test -race -short ./...
help:
	@awk '/^[a-z][a-z-]*:/ {sub(/:.*/,""); print "  make " $$0} /^# / {sub(/^# /,""); print}' $(MAKEFILE_LIST)

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate plus the cheap perf guards: vet, a
# one-iteration benchmark smoke run, and the benchmark-regression gate
# against the committed trajectory (BENCH_2.json). The stage sequence
# lives in scripts/verify.sh, which reports which stage failed.
verify:
	scripts/verify.sh

# race runs the race-detector pass CI runs: short mode skips the two
# full-catalog golden tests (see testing.Short guards) but still drives
# the whole stack — including the concurrent service catalog test —
# under the detector.
race:
	$(GO) test -race -short ./...

# bench records the full benchmark suite into BENCH_2.json with PR 1's
# BENCH_1.json embedded as the baseline (name → ns/op, B/op, allocs/op).
# Pass BENCH='regexp' to restrict, e.g.
#   make bench BENCH='Fig04|ExtCampaign' COUNT=3
BENCH ?= .
COUNT ?= 1
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH)' -count $(COUNT) -baseline BENCH_1.json -out BENCH_2.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig01' -benchtime 1x .

# bench-compare is the benchmark-regression gate: re-measure the gate
# benchmarks and fail if ns/op regressed past BENCH_TOLERANCE or
# allocs/op past BENCH_ALLOC_TOLERANCE against the committed
# BENCH_2.json. GATE_BENCH keeps the gate fast and focused on the two
# perf wins PR 1 banked. The alloc gate stays tight everywhere (alloc
# counts are machine-independent); CI loosens only BENCH_TOLERANCE
# because absolute ns/op is not comparable across host machines.
GATE_BENCH ?= Fig04SGEMMSummit|ExtCampaign
BENCH_TOLERANCE ?= 0.25
BENCH_ALLOC_TOLERANCE ?= 0.25
bench-compare:
	$(GO) run ./cmd/benchjson -bench '$(GATE_BENCH)' -count 3 -benchtime 30x \
		-out /tmp/bench_gate.json -compare BENCH_2.json \
		-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

figures:
	$(GO) run ./cmd/figures

# serve runs the experiment service (cmd/gpuvard) on :8080.
serve:
	$(GO) run ./cmd/gpuvard

# loadgen hammers a running gpuvard (start one with `make serve`).
loadgen:
	$(GO) run ./cmd/loadgen
