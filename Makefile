GO ?= go

.PHONY: help build fmt vet staticcheck test cover cover-summary cover-floor fuzz fuzz-smoke verify race bench bench-smoke bench-compare smoke figures serve loadgen

# help lists the targets. Serving quick-reference:
#   make serve    starts cmd/gpuvard on :8080 — the experiment service.
#     A request passes through (1) the service's fingerprint-keyed LRU
#     response cache with cancellation-safe singleflight coalescing,
#     (2) the figures session cache (one run per shared experiment),
#     (3) the LRU-bounded process-wide fleet cache (one instantiation
#     per (spec, seed), cap via gpuvard -fleet-cache), and (4)
#     per-device steady-point memoization. Identical requests are
#     byte-identical. Every computation runs on internal/engine under a
#     per-request deadline (gpuvard -timeout, default 30s); client
#     disconnects abort work mid-run. Elastic worker pools draw from a
#     process-wide weighted token budget (gpuvard -budget, default
#     GOMAXPROCS) with an interactive reserve, so batch floods cannot
#     starve interactive requests.
#     Long results stream instead of buffering — NDJSON, one line per
#     shard, payloads reassembling byte-identically to the sync body:
#       GET /v1/stream/sweep?axis=...&values=...   one line per variant
#       GET /v1/stream/experiments/{name}?...      one line per shard
#     Heavy work runs asynchronously instead of on a held connection:
#       POST /v1/jobs {"kind":"sweep","class":"batch","sweep":{...}}
#                                   -> 202 + poll URL (class defaults to
#                                      batch; "interactive" jumps ahead;
#                                      full batch queues shed with 429,
#                                      bound via gpuvard -max-queued-jobs)
#       GET  /v1/jobs/{id}          lifecycle + shards done/total
#       GET  /v1/jobs/{id}/result   finished bytes (identical to sync)
#       GET  /v1/jobs/{id}/stream   replayed + live NDJSON, attach any time
#       GET  /v1/jobs?limit=&page_token=&client=&state=  paginated listing
#       DELETE /v1/jobs/{id}        cancel
#     Requests are attributed to a client (X-API-Key header, else the
#     remote address). Batch queues are fair-shared across clients
#     (stride scheduling; gpuvard -client-weight team-a=4) with a
#     per-client depth bound (-max-queued-per-client) whose 429s name
#     the exhausted scope; per-client counters ride /v1/stats and the
#     Prometheus text exposition at GET /metrics.
#     Sweeps take a variant axis: {"axis":"powercap|seed|ambient|
#     fraction","values":[...]} (caps_w still answers as the legacy
#     powercap spelling but carries Deprecation + successor Link
#     headers).
#     Replicas federate: gpuvard -peers http://a:8080,http://b:8080
#     dispatches sweep shards across the fleet (-route-policy affinity
#     rendezvous-hashes shards onto warm fleet caches; roundrobin and
#     leastloaded too), with health-probe eject/readmit, retry onto
#     survivors, and byte-identical responses from any replica. GET /v1/
#     is the route discovery document; GET /v1/replicas shows membership
#     and dispatch counters.
#   make loadgen  hammers a running gpuvard with concurrent identical
#     requests, checks byte-identity, and reports req/s + p50/p99
#     (loadgen -duration 30s for time-based runs, -sweep '...' to mix in
#     POST /v1/sweep, -jobs to drive the async submit/poll/result path,
#     -stream to reassemble the streaming endpoints and require their
#     payloads to match the synchronous bytes while reporting
#     time-to-first-line).
#   make smoke    builds gpuvard, boots it, and runs a short loadgen mix
#     (figures + sweep + async jobs + streams) asserting zero failures
#     and byte-identity — the end-to-end serving gate CI runs — then a
#     chaos stage (30% injected shard faults, retries armed, responses
#     still byte-identical with zero 5xx), a crash stage (kill -9
#     mid-jobs, reboot, job journal replays finished results), and a
#     distributed stage (3 replicas wired with -peers: byte-identity
#     from any replica, affinity beating round-robin on warm-fleet
#     placement, kill-one-survive with zero 5xx).
#   make fuzz     full native-fuzz sessions (FUZZTIME each, default 60s)
#     over the service's request normalization — FuzzSweepRequest (body
#     decode + variant-axis parsing/validation) and FuzzJobEnvelope
#     (kind/class routing + payload normalization) — and the traffic
#     trace decoder, FuzzTraceDecode (torn-tail tolerance + canonical
#     re-encode round trip).
# CI gates a PR must clear (.github/workflows/ci.yml):
#   make verify   build + fmt + vet + staticcheck + test + cover-floor
#                 + fuzz-smoke + bench-smoke + bench-compare
#   make race     go test -race -short ./...
#   make smoke    end-to-end serving smoke (see above)
#   make cover    test suite with a coverage summary
help:
	@awk '/^[a-z][a-z-]*:/ {sub(/:.*/,""); print "  make " $$0} /^# / {sub(/^# /,""); print}' $(MAKEFILE_LIST)

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs the pinned honnef.co/go/tools linter. The version is
# pinned so CI and dev machines agree; `go run pkg@version` resolves
# through the module cache, so after the first download the stage is
# offline-friendly. On a dev machine with no network and no cached copy
# the stage skips with a notice; in CI ($CI set) an unresolvable
# staticcheck FAILS the stage — a silent skip there would disable the
# gate exactly where it matters.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck: $(STATICCHECK_VERSION) failed to resolve in CI; failing the stage" >&2; \
		exit 1; \
	else \
		echo "staticcheck: $(STATICCHECK_VERSION) unavailable (offline and not in the module cache); skipping"; \
	fi

# test runs the tier-1 suite. TESTFLAGS lets CI fold the coverage
# profile into this single run instead of running the suite twice
# (TESTFLAGS='-coverprofile /tmp/gpuvar_cover.out').
TESTFLAGS ?=
test:
	$(GO) test $(TESTFLAGS) ./...

# cover runs the test suite with coverage and prints the total coverage
# summary (profile left in /tmp/gpuvar_cover.out for
# `go tool cover -html`).
cover:
	$(GO) test -coverprofile /tmp/gpuvar_cover.out ./...
	$(GO) tool cover -func /tmp/gpuvar_cover.out | tail -1

# cover-summary prints the total from an existing profile (CI uses this
# after `make verify TESTFLAGS=-coverprofile...` so the suite runs once).
cover-summary:
	$(GO) tool cover -func /tmp/gpuvar_cover.out | tail -1

# cover-floor is the coverage-regression gate: it reads the profile the
# verify test stage wrote and fails if total coverage dropped below the
# committed baseline (78.6% when the gate landed, floored with ~1.5
# points of headroom for coverage jitter in concurrency-dependent
# paths). Raise the floor when coverage genuinely grows; never lower it
# to make a PR pass.
COVERAGE_FLOOR ?= 77.0
cover-floor:
	@total=$$($(GO) tool cover -func /tmp/gpuvar_cover.out | tail -1 | awk '{print $$NF}' | tr -d '%'); \
	awk -v t="$$total" -v f="$(COVERAGE_FLOOR)" 'BEGIN { \
		if (t+0 < f+0) { printf "coverage %.1f%% fell below the committed floor %.1f%%\n", t, f; exit 1 } \
		printf "coverage %.1f%% >= floor %.1f%%\n", t, f }'

# fuzz runs the full native-fuzz sessions (one -fuzz flag per package
# invocation, as go test requires). Corpus additions land in the build
# cache; crashers land in internal/service/testdata/fuzz and should be
# committed as regression seeds.
FUZZTIME ?= 60s
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzSweepRequest$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzJobEnvelope$$' -fuzztime $(FUZZTIME) ./internal/service
	$(GO) test -run '^$$' -fuzz '^FuzzTraceDecode$$' -fuzztime $(FUZZTIME) ./internal/traffic

# fuzz-smoke is the short per-verify pass: long enough to catch shallow
# normalization regressions, short enough for every CI run.
fuzz-smoke:
	$(MAKE) --no-print-directory fuzz FUZZTIME=5s

# verify is the tier-1 gate plus the cheap guards: gofmt, vet,
# staticcheck, tests with the coverage floor, a fuzz smoke, a
# one-iteration benchmark smoke run, and the benchmark-regression gate
# against the committed trajectory (BENCH_9.json). The stage sequence
# lives in scripts/verify.sh, which reports which stage failed.
verify:
	scripts/verify.sh

# race runs the race-detector pass CI runs: short mode skips the two
# full-catalog golden tests (see testing.Short guards) but still drives
# the whole stack — including the concurrent service catalog test —
# under the detector.
race:
	$(GO) test -race -short ./...

# bench records the full benchmark suite into BENCH_10.json with PR 9's
# BENCH_9.json embedded as the baseline (name → ns/op, B/op, allocs/op,
# plus custom units like ReplayBurst's p99-ms/ttfl-ms under "metrics").
# Pass BENCH='regexp' to restrict, e.g.
#   make bench BENCH='Fig04|ExtCampaign' COUNT=3
BENCH ?= .
COUNT ?= 1
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH)' -count $(COUNT) -baseline BENCH_9.json -out BENCH_10.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig01' -benchtime 1x .

# bench-compare is the benchmark-regression gate: re-measure the gate
# benchmarks and fail if ns/op regressed past BENCH_TOLERANCE or
# allocs/op past BENCH_ALLOC_TOLERANCE against the committed
# BENCH_10.json. GATE_BENCH keeps the gate fast and focused on the two
# perf wins PR 1 banked, the engine-backed sweep surfaces (both axis
# forms), the PR 4 async-job plumbing, the PR 5 streaming and
# classed-scheduler paths, the PR 6 retry plumbing (a fault-free run
# with a retry policy armed must stay free), the PR 7 replayable
# job-stream attach, the PR 8 estimator tier (the warm /v1/estimate
# microsecond path and the cold pre-screened adaptive sweep), the PR 9
# dispatch seam (a remote-forced sweep through a peer replica —
# routing, the internal shard hop, and reassembly on top of the
# computation), and the PR 10 latency-under-burst replay (the committed
# burst fixture verified record by record, reporting p99-ms/ttfl-ms).
# The alloc gate stays tight everywhere (alloc counts are
# machine-independent); CI loosens only BENCH_TOLERANCE because
# absolute ns/op is not comparable across host machines.
GATE_BENCH ?= Fig04SGEMMSummit|ExtCampaign|ServiceSweep|ServiceDispatchSweep|ServiceJobSubmitPoll|ServiceJobStreamAttach|ServiceStreamSweep|EngineClassedMap|EngineRetryOverhead|ServiceEstimate|AdaptiveSweep|ReplayBurst
BENCH_TOLERANCE ?= 0.25
BENCH_ALLOC_TOLERANCE ?= 0.25
# 100 iterations per sample (was 30x): on small or busy machines the
# short bursts had a heavy tail that flaked the ns/op gate; the longer
# sample keeps the gate's min-of-3 near steady state at a still-small
# wall cost.
bench-compare:
	$(GO) run ./cmd/benchjson -bench '$(GATE_BENCH)' -count 3 -benchtime 100x \
		-out /tmp/bench_gate.json -compare BENCH_10.json \
		-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

figures:
	$(GO) run ./cmd/figures

# serve runs the experiment service (cmd/gpuvard) on :8080.
serve:
	$(GO) run ./cmd/gpuvard

# loadgen hammers a running gpuvard (start one with `make serve`).
loadgen:
	$(GO) run ./cmd/loadgen

# smoke is the end-to-end serving gate: build gpuvard, boot it, drive a
# short loadgen mix (figures + variant-axis sweep + async jobs) against
# it, and fail on any response failure or byte divergence. It then runs
# the resilience stages: a chaos pass under 30% injected transient
# shard faults with retries armed (byte-identity to the fault-free run,
# zero 5xx, degraded health status), a crash pass (kill -9 mid-jobs,
# reboot over the same -data-dir, journal replay asserted), and a
# distributed pass (3 replicas with -peers: fleet-wide byte-identity,
# the affinity-vs-roundrobin warm-placement comparison, and a replica
# killed mid-run with zero 5xx).
smoke:
	scripts/smoke.sh
