GO ?= go

.PHONY: help build fmt vet staticcheck test cover cover-summary verify race bench bench-smoke bench-compare smoke figures serve loadgen

# help lists the targets. Serving quick-reference:
#   make serve    starts cmd/gpuvard on :8080 — the experiment service.
#     A request passes through (1) the service's fingerprint-keyed LRU
#     response cache with cancellation-safe singleflight coalescing,
#     (2) the figures session cache (one run per shared experiment),
#     (3) the LRU-bounded process-wide fleet cache (one instantiation
#     per (spec, seed), cap via gpuvard -fleet-cache), and (4)
#     per-device steady-point memoization. Identical requests are
#     byte-identical. Every computation runs on internal/engine under a
#     per-request deadline (gpuvard -timeout, default 30s); client
#     disconnects abort work mid-run.
#     Heavy work runs asynchronously instead of on a held connection:
#       POST /v1/jobs {"kind":"sweep","sweep":{...}}  -> 202 + poll URL
#       GET  /v1/jobs/{id}          lifecycle + shards done/total
#       GET  /v1/jobs/{id}/result   finished bytes (identical to sync)
#       DELETE /v1/jobs/{id}        cancel
#     Sweeps take a variant axis: {"axis":"powercap|seed|ambient|
#     fraction","values":[...]} (caps_w remains as the legacy powercap
#     spelling).
#   make loadgen  hammers a running gpuvard with concurrent identical
#     requests, checks byte-identity, and reports req/s + p50/p99
#     (loadgen -duration 30s for time-based runs, -sweep '...' to mix in
#     POST /v1/sweep, -jobs to drive the async submit/poll/result path
#     and require its bytes to match the synchronous sweep).
#   make smoke    builds gpuvard, boots it, and runs a short loadgen mix
#     (figures + sweep + async jobs) asserting zero failures and
#     byte-identity — the end-to-end serving gate CI runs.
# CI gates a PR must clear (.github/workflows/ci.yml):
#   make verify   build + fmt + vet + staticcheck + test + bench-smoke
#                 + bench-compare
#   make race     go test -race -short ./...
#   make smoke    end-to-end serving smoke (see above)
#   make cover    test suite with a coverage summary
help:
	@awk '/^[a-z][a-z-]*:/ {sub(/:.*/,""); print "  make " $$0} /^# / {sub(/^# /,""); print}' $(MAKEFILE_LIST)

build:
	$(GO) build ./...

# fmt fails (listing the offenders) if any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# staticcheck runs the pinned honnef.co/go/tools linter. The version is
# pinned so CI and dev machines agree; `go run pkg@version` resolves
# through the module cache, so after the first download the stage is
# offline-friendly. On a dev machine with no network and no cached copy
# the stage skips with a notice; in CI ($CI set) an unresolvable
# staticcheck FAILS the stage — a silent skip there would disable the
# gate exactly where it matters.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	@if $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./... ; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck: $(STATICCHECK_VERSION) failed to resolve in CI; failing the stage" >&2; \
		exit 1; \
	else \
		echo "staticcheck: $(STATICCHECK_VERSION) unavailable (offline and not in the module cache); skipping"; \
	fi

# test runs the tier-1 suite. TESTFLAGS lets CI fold the coverage
# profile into this single run instead of running the suite twice
# (TESTFLAGS='-coverprofile /tmp/gpuvar_cover.out').
TESTFLAGS ?=
test:
	$(GO) test $(TESTFLAGS) ./...

# cover runs the test suite with coverage and prints the total coverage
# summary (profile left in /tmp/gpuvar_cover.out for
# `go tool cover -html`).
cover:
	$(GO) test -coverprofile /tmp/gpuvar_cover.out ./...
	$(GO) tool cover -func /tmp/gpuvar_cover.out | tail -1

# cover-summary prints the total from an existing profile (CI uses this
# after `make verify TESTFLAGS=-coverprofile...` so the suite runs once).
cover-summary:
	$(GO) tool cover -func /tmp/gpuvar_cover.out | tail -1

# verify is the tier-1 gate plus the cheap perf guards: gofmt, vet, a
# one-iteration benchmark smoke run, and the benchmark-regression gate
# against the committed trajectory (BENCH_3.json). The stage sequence
# lives in scripts/verify.sh, which reports which stage failed.
verify:
	scripts/verify.sh

# race runs the race-detector pass CI runs: short mode skips the two
# full-catalog golden tests (see testing.Short guards) but still drives
# the whole stack — including the concurrent service catalog test —
# under the detector.
race:
	$(GO) test -race -short ./...

# bench records the full benchmark suite into BENCH_4.json with PR 3's
# BENCH_3.json embedded as the baseline (name → ns/op, B/op, allocs/op).
# Pass BENCH='regexp' to restrict, e.g.
#   make bench BENCH='Fig04|ExtCampaign' COUNT=3
BENCH ?= .
COUNT ?= 1
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH)' -count $(COUNT) -baseline BENCH_3.json -out BENCH_4.json

bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFig01' -benchtime 1x .

# bench-compare is the benchmark-regression gate: re-measure the gate
# benchmarks and fail if ns/op regressed past BENCH_TOLERANCE or
# allocs/op past BENCH_ALLOC_TOLERANCE against the committed
# BENCH_4.json. GATE_BENCH keeps the gate fast and focused on the two
# perf wins PR 1 banked, the engine-backed sweep surfaces (both axis
# forms), and the PR 4 async-job plumbing. The alloc gate stays tight
# everywhere (alloc counts are machine-independent); CI loosens only
# BENCH_TOLERANCE because absolute ns/op is not comparable across host
# machines.
GATE_BENCH ?= Fig04SGEMMSummit|ExtCampaign|ServiceSweep|ServiceJobSubmitPoll
BENCH_TOLERANCE ?= 0.25
BENCH_ALLOC_TOLERANCE ?= 0.25
bench-compare:
	$(GO) run ./cmd/benchjson -bench '$(GATE_BENCH)' -count 3 -benchtime 30x \
		-out /tmp/bench_gate.json -compare BENCH_4.json \
		-tolerance $(BENCH_TOLERANCE) -alloc-tolerance $(BENCH_ALLOC_TOLERANCE)

figures:
	$(GO) run ./cmd/figures

# serve runs the experiment service (cmd/gpuvard) on :8080.
serve:
	$(GO) run ./cmd/gpuvard

# loadgen hammers a running gpuvard (start one with `make serve`).
loadgen:
	$(GO) run ./cmd/loadgen

# smoke is the end-to-end serving gate: build gpuvard, boot it, drive a
# short loadgen mix (figures + variant-axis sweep + async jobs) against
# it, and fail on any response failure or byte divergence.
smoke:
	scripts/smoke.sh
