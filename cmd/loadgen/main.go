// Command loadgen hammers a running gpuvard with concurrent identical
// requests and verifies the service's core contract: every response for
// the same request is byte-identical regardless of which worker asked,
// whether it was computed, coalesced, or replayed from the cache.
//
// It reports throughput (req/s), latency percentiles (p50/p99), the
// cold-vs-warm latency ratio for the first path, and the server's
// X-Cache hit/miss split. It exits nonzero if any response diverges
// from the first response for its path or is not HTTP 200.
//
// Usage:
//
//	loadgen                                     # 32 workers, 512 reqs, /v1/figures/fig2
//	loadgen -c 64 -n 2048 -paths /v1/figures/fig2,/v1/experiments/sgemm?cluster=CloudLab
//	loadgen -url http://localhost:9090 -c 8
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type sample struct {
	path  string
	d     time.Duration
	cache string // X-Cache header: hit, miss, coalesced, or ""
}

// p50 returns the median of ds in milliseconds (ds must be sorted).
func p50ms(ds []time.Duration) float64 {
	return float64(ds[len(ds)/2].Microseconds()) / 1000
}

func main() {
	var (
		base  = flag.String("url", "http://localhost:8080", "server base URL")
		paths = flag.String("paths", "/v1/figures/fig2", "comma-separated request paths")
		conc  = flag.Int("c", 32, "concurrent workers")
		total = flag.Int("n", 512, "total requests (split across workers, round-robin over paths)")
	)
	flag.Parse()

	ps := strings.Split(*paths, ",")
	client := &http.Client{Timeout: 5 * time.Minute}

	// Cold pass: one priming request per path, timed separately. This
	// also pins the reference body every later response must match.
	ref := make(map[string][32]byte, len(ps))
	coldMs := make(map[string]float64, len(ps))
	for _, p := range ps {
		t0 := time.Now()
		body, cacheHdr, err := get(client, *base+p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		coldMs[p] = float64(time.Since(t0).Microseconds()) / 1000
		ref[p] = sha256.Sum256(body)
		fmt.Printf("prime %-60s %8.1f ms  (%d bytes, X-Cache: %s)\n", p, coldMs[p], len(body), cacheHdr)
	}

	// Hot pass: all workers, round-robin over paths, every body checked
	// against the reference hash.
	var (
		mu       sync.Mutex
		samples  = make([]sample, 0, *total)
		mismatch atomic.Int64
		next     atomic.Int64
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= *total {
					return
				}
				p := ps[i%len(ps)]
				t0 := time.Now()
				body, cacheHdr, err := get(client, *base+p)
				d := time.Since(t0)
				if err != nil {
					fmt.Fprintln(os.Stderr, "loadgen:", err)
					mismatch.Add(1)
					continue
				}
				if sha256.Sum256(body) != ref[p] {
					fmt.Fprintf(os.Stderr, "loadgen: response for %s diverged from reference\n", p)
					mismatch.Add(1)
					continue
				}
				mu.Lock()
				samples = append(samples, sample{path: p, d: d, cache: cacheHdr})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
	durs := make([]time.Duration, len(samples))
	byPath := make(map[string][]time.Duration, len(ps))
	hits := 0
	for i, s := range samples {
		durs[i] = s.d
		byPath[s.path] = append(byPath[s.path], s.d)
		if s.cache == "hit" {
			hits++
		}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Microseconds()) / 1000
	}
	reqs := float64(len(samples))
	fmt.Printf("\n%d requests, %d workers, %.2fs\n", len(samples), *conc, elapsed.Seconds())
	fmt.Printf("throughput: %.0f req/s\n", reqs/elapsed.Seconds())
	fmt.Printf("latency:    p50 %.2f ms  p99 %.2f ms\n", pct(0.50), pct(0.99))
	fmt.Printf("cache:      %d/%d hits (%.0f%%)\n", hits, len(samples), 100*float64(hits)/reqs)
	for _, p := range ps {
		ds := byPath[p]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		if warm := p50ms(ds); warm > 0 {
			fmt.Printf("cold/warm:  %-60s %.1fx (cold %.1f ms vs warm p50 %.2f ms)\n",
				p, coldMs[p]/warm, coldMs[p], warm)
		}
	}
	if n := mismatch.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d mismatched or failed responses\n", n)
		os.Exit(1)
	}
	fmt.Println("byte-identity: OK (every response matched its path's reference)")
}

// get fetches a URL, requiring HTTP 200, and returns the body and
// X-Cache header.
func get(client *http.Client, url string) ([]byte, string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("GET %s: %s: %s", url, resp.Status, firstLine(body))
	}
	return body, resp.Header.Get("X-Cache"), nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
