// Command loadgen hammers a running gpuvard with concurrent identical
// requests and verifies the service's core contract: every response for
// the same request is byte-identical regardless of which worker asked,
// whether it was computed, coalesced, or replayed from the cache.
//
// It reports throughput (req/s), latency percentiles (p50/p99), the
// cold-vs-warm latency ratio for the first path, and the server's
// X-Cache hit/miss split. Server-aborted responses — 504 (request
// deadline exceeded) and 499 (request canceled) — are counted
// separately from failures: under an aggressive -timeout they are the
// server shedding load as designed, not a bug. It exits nonzero if any
// response diverges from the first response for its path or fails
// outright.
//
// With -jobs, the -sweep body is additionally exercised through the
// async path: each such "request" is a full POST /v1/jobs submission
// (202 + job URL), a poll loop over GET /v1/jobs/{id} asserting the
// reported shard progress never goes backwards, and a GET of
// /v1/jobs/{id}/result — whose bytes must match the synchronous
// POST /v1/sweep reference exactly (the async path's core contract).
//
// With -stream, the streaming endpoints are verified against their
// synchronous twins: the -sweep body is replayed as GET
// /v1/stream/sweep (query-parameter spelling) and every -paths entry
// under /v1/experiments/ as GET /v1/stream/experiments/..., reading the
// NDJSON incrementally. The concatenated line payloads must hash
// identically to the synchronous reference, the terminal summary's
// declared sha256 must match, and the time to the first line is
// measured and reported — the stream's reason to exist.
//
// With -estimate, the -sweep body drives the analytical tier instead
// of the plain sweep (a wide axis is the point, and wide axes exceed
// the 32-value full-simulation cap by design — so -estimate excludes
// -jobs and -stream): it is POSTed to /v1/estimate and as an adaptive
// /v1/sweep (tolerance -threshold), both riding the same prime/hot
// byte-identity machinery — the estimator must be deterministic
// request over request. On top of that, the adaptive response's
// structure is verified once after priming against the pre-screened
// sweep's contract.
//
// # Traffic traces
//
// Two further modes speak the versioned trace format of
// internal/traffic (record with gpuvard -record-trace):
//
// With -replay, loadgen plays a trace file back instead of a synthetic
// mix: every record is sent at its recorded offset (virtual clock by
// default; -pace 1.0 replays at recorded wall-clock speed), as its
// recorded client identity, and the response is verified against the
// record's oracle status + sha256. Async job records drive the full
// submit/poll/result lifecycle; stream records reassemble the NDJSON.
// The run reports overall and per-phase p50/p99, stream
// time-to-first-line percentiles, and a digest — the sha256 of the
// observed (status, sha256) sequence in trace order, so two replay
// runs are comparable with a single string equality. -record-out
// writes the trace back with each record's oracle filled from this
// run's observations (how a generated trace becomes a fixture).
//
// With -generate, loadgen emits a seeded synthetic workload trace
// instead of running at all: a multi-period diurnal rate curve, bursty
// on/off client cohorts with heavy-tailed (Pareto) burst sizes, and a
// weighted heavy-tailed request mix over the five endpoint kinds
// (figures, sweep, estimate, stream, jobs). The same -gen-seed always
// produces a byte-identical file.
//
// Usage:
//
//	loadgen                                     # 32 workers, 512 reqs, /v1/figures/fig2
//	loadgen -c 64 -n 2048 -paths /v1/figures/fig2,/v1/experiments/sgemm?cluster=CloudLab
//	loadgen -duration 30s                       # time-based instead of count-based
//	loadgen -sweep '{"cluster":"CloudLab","axis":"powercap","values":[300,250,200,150]}'
//	loadgen -sweep '{"axis":"seed","values":[1,2,3]}' -jobs
//	loadgen -sweep '{"axis":"fraction","values":[0.5,1]}' -stream
//	loadgen -sweep '{"axis":"powercap","values":[100,150,200,250,300]}' -estimate
//	loadgen -url http://localhost:9090 -c 8
//	loadgen -url http://h1:8081,http://h2:8082,http://h3:8083 -sweep '...'
//	loadgen -clients 4 -api-key team -jobs -sweep '...'
//	loadgen -generate burst.trace -gen-seed 7 -gen-duration 30s -gen-rate 8
//	loadgen -replay burst.trace                 # virtual clock, verify oracles
//	loadgen -replay burst.trace -pace 1.0       # recorded wall-clock pacing
//	loadgen -replay burst.trace -record-out burst.oracle.trace
//
// -url accepts a comma-separated replica list: priming, streaming, and
// the adaptive verification hit the first replica (pinning the
// reference bytes), and the hot pass rotates requests across all of
// them — so one run asserts the distributed deployment's byte-identity
// contract: any replica, same request, same bytes.
//
// With -api-key, every request carries an X-API-Key header so the
// server attributes it to a client; -clients N spreads the workers
// across N derived identities (<key>-0 .. <key>-N-1), exercising the
// server's per-client fair queuing and per-client 429 shedding the way
// N separate tenants would.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpuvar/internal/loadgen"
	"gpuvar/internal/traffic"
)

func main() {
	var (
		base     = flag.String("url", "http://localhost:8080", "server base URL, or a comma-separated replica list (priming uses the first; the hot pass rotates over all)")
		paths    = flag.String("paths", "/v1/figures/fig2", "comma-separated GET request paths")
		sweep    = flag.String("sweep", "", "JSON body to POST to /v1/sweep as part of the mix (empty = no sweep requests)")
		jobsMode = flag.Bool("jobs", false, "also run the -sweep body through the async job path (submit, poll progress, fetch result) and require the result bytes to match the synchronous sweep response")
		stream   = flag.Bool("stream", false, "also verify the streaming endpoints: reassembled NDJSON payloads must be byte-identical to the synchronous responses; reports time-to-first-line")
		estimate = flag.Bool("estimate", false, "also drive the analytical tier: POST the -sweep body to /v1/estimate and as an adaptive sweep, verifying the mixed response's structure and that its simulated points match a plain sweep of the same values")
		thresh   = flag.Float64("threshold", 0.05, "relative error tolerance for the adaptive sweep driven by -estimate")
		conc     = flag.Int("c", 32, "concurrent workers (also the replay in-flight bound)")
		total    = flag.Int("n", 512, "total requests (split across workers, round-robin over paths)")
		duration = flag.Duration("duration", 0, "run for this long instead of a fixed -n (0 = use -n)")
		apiKey   = flag.String("api-key", "", "X-API-Key to send (empty = anonymous; the server falls back to the remote address)")
		clients  = flag.Int("clients", 1, "spread workers across this many derived client identities (<api-key>-0 .. <api-key>-N-1)")

		replayPath = flag.String("replay", "", "replay this traffic-trace file instead of a synthetic mix (see internal/traffic)")
		pace       = flag.Float64("pace", 0, "replay clock: 0 = virtual (as fast as ordering allows), 1.0 = recorded speed, 2.0 = twice recorded speed")
		recordOut  = flag.String("record-out", "", "after -replay, write the trace back here with each record's oracle (status+sha256) filled from this run")

		genOut      = flag.String("generate", "", "generate a seeded workload trace to this file and exit (no server needed)")
		genSeed     = flag.Uint64("gen-seed", 1, "generator seed (same seed = byte-identical trace)")
		genDuration = flag.Duration("gen-duration", time.Minute, "generated workload's virtual duration")
		genRate     = flag.Float64("gen-rate", 40, "mean request rate (req/s) at diurnal level 1.0")
		genPeriods  = flag.String("gen-periods", "", "diurnal curve terms as period:amplitude[:phase], comma-separated (e.g. 30s:0.5,7.5s:0.25:1.0; empty = defaults)")
		genCohorts  = flag.Int("gen-cohorts", 4, "independent on/off client cohorts")
		genClients  = flag.Int("gen-clients", 4, "client identities per cohort")
		genAlpha    = flag.Float64("gen-burst-alpha", 1.3, "Pareto tail index for burst sizes (closer to 1 = heavier tail)")
		genBurstMax = flag.Int("gen-burst-max", 64, "cap on a single burst's request count")
		genIntraGap = flag.Duration("gen-intra-gap", 4*time.Millisecond, "mean gap between consecutive requests inside one burst")
		genMix      = flag.String("gen-mix", "", "request-kind weights as kind=weight, comma-separated (e.g. figures=8,sweep=4,estimate=2,stream=1.5,jobs=0.5; empty = defaults)")
		genCluster  = flag.String("gen-cluster", "", "cluster the generated request templates target (default CloudLab)")
		genNote     = flag.String("gen-note", "", "free-form note stored in the generated trace's header")
	)
	flag.Parse()

	if *genOut != "" {
		os.Exit(runGenerate(*genOut, *genSeed, *genDuration, *genRate, *genPeriods,
			*genCohorts, *genClients, *genAlpha, *genBurstMax, *genIntraGap, *genMix, *genCluster, *genNote))
	}

	var bases []string
	for _, b := range strings.Split(*base, ",") {
		if b = strings.TrimSpace(strings.TrimSuffix(b, "/")); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -url must name at least one replica")
		os.Exit(1)
	}

	if *replayPath != "" {
		os.Exit(runReplay(*replayPath, bases, *conc, *pace, *recordOut))
	}

	os.Exit(runClassic(bases, *paths, *sweep, *jobsMode, *stream, *estimate, *thresh,
		*conc, *total, *duration, *apiKey, *clients))
}

// runGenerate emits a seeded workload trace (no server involved).
func runGenerate(out string, seed uint64, dur time.Duration, rate float64, periods string,
	cohorts, clientsPer int, alpha float64, burstMax int, intraGap time.Duration,
	mix, cluster, note string) int {
	spec := traffic.GenSpec{
		Seed:             seed,
		Duration:         dur,
		Rate:             rate,
		Cohorts:          cohorts,
		ClientsPerCohort: clientsPer,
		BurstAlpha:       alpha,
		BurstMax:         burstMax,
		IntraGap:         intraGap,
		Cluster:          cluster,
		Note:             note,
	}
	var err error
	if spec.Periods, err = parseGenPeriods(periods); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: -gen-periods:", err)
		return 1
	}
	if spec.Mix, err = parseGenMix(mix); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen: -gen-mix:", err)
		return 1
	}
	tr, err := traffic.Generate(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	if err := os.WriteFile(out, tr.Encode(), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	fmt.Printf("generated %s: %d records, seed %d, %s\n", out, len(tr.Records), seed, tr.Header.Note)
	for kind, n := range tr.Kinds() {
		fmt.Printf("  %-10s %d\n", kind, n)
	}
	fmt.Println("replay it (and fill the oracle) with: loadgen -replay", out, "-record-out", out)
	return 0
}

// parseGenPeriods parses "30s:0.5,7.5s:0.25:1.0" into diurnal terms.
func parseGenPeriods(s string) ([]traffic.Period, error) {
	if s == "" {
		return nil, nil
	}
	var out []traffic.Period
	for _, term := range strings.Split(s, ",") {
		parts := strings.Split(term, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("term %q: want period:amplitude[:phase]", term)
		}
		p, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("term %q: %v", term, err)
		}
		amp, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("term %q: amplitude: %v", term, err)
		}
		var phase float64
		if len(parts) == 3 {
			if phase, err = strconv.ParseFloat(parts[2], 64); err != nil {
				return nil, fmt.Errorf("term %q: phase: %v", term, err)
			}
		}
		out = append(out, traffic.Period{Period: p, Amplitude: amp, Phase: phase})
	}
	return out, nil
}

// parseGenMix parses "figures=8,sweep=4" into mix entries.
func parseGenMix(s string) ([]traffic.MixEntry, error) {
	if s == "" {
		return nil, nil
	}
	var out []traffic.MixEntry
	for _, term := range strings.Split(s, ",") {
		kind, val, ok := strings.Cut(term, "=")
		if !ok {
			return nil, fmt.Errorf("term %q: want kind=weight", term)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("term %q: weight: %v", term, err)
		}
		out = append(out, traffic.MixEntry{Kind: kind, Weight: w})
	}
	return out, nil
}

// runReplay plays a trace back and reports per-phase latency, stream
// TTFL, and the run digest.
func runReplay(path string, bases []string, conc int, pace float64, recordOut string) int {
	tr, stats, err := traffic.DecodeFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	if stats.SkippedRecords > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: note: %s has a torn tail (%d chunk(s), %d bytes dropped) — replaying the intact prefix\n",
			path, stats.SkippedRecords, stats.TruncatedBytes)
	}
	if len(tr.Records) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: trace has no records")
		return 1
	}
	clock := "virtual clock"
	if pace > 0 {
		clock = fmt.Sprintf("wall clock, pace %gx", pace)
	}
	fmt.Printf("replay %s: %d records (source %s, seed %d), %s, %d in flight\n",
		path, len(tr.Records), tr.Header.Source, tr.Header.Seed, clock, conc)

	c := &loadgen.Client{}
	res, err := c.Replay(tr, loadgen.ReplayOptions{Bases: bases, Concurrency: conc, Pace: pace, Verify: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}

	fmt.Printf("\n%d requests in %.2fs (%.0f req/s)\n",
		len(res.Records), res.Elapsed.Seconds(), float64(len(res.Records))/res.Elapsed.Seconds())
	all := res.Latencies("")
	fmt.Printf("latency:    p50 %.2f ms  p99 %.2f ms\n",
		loadgen.PercentileMS(all, 0.50), loadgen.PercentileMS(all, 0.99))
	for _, phase := range res.Phases() {
		if phase == "" {
			continue
		}
		ds := res.Latencies(phase)
		fmt.Printf("  %-9s p50 %.2f ms  p99 %.2f ms  (%d reqs)\n",
			phase, loadgen.PercentileMS(ds, 0.50), loadgen.PercentileMS(ds, 0.99), len(ds))
	}
	if ttfls := res.TTFLs(); len(ttfls) > 0 {
		fmt.Printf("stream TTFL: p50 %.2f ms  p99 %.2f ms  (%d streams)\n",
			loadgen.PercentileMS(ttfls, 0.50), loadgen.PercentileMS(ttfls, 0.99), len(ttfls))
	}
	if n := res.Aborts(); n > 0 {
		fmt.Printf("aborted:    %d responses shed by the server (deadline/cancel)\n", n)
	}
	fmt.Printf("digest: %s\n", res.Digest())

	if recordOut != "" {
		filled, err := res.FillOracle(tr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -record-out:", err)
			return 1
		}
		if err := os.WriteFile(recordOut, filled.Encode(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		fmt.Printf("wrote %s with the oracle filled from this run\n", recordOut)
	}
	if n := res.Mismatches(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d mismatched or failed records\n", n)
		if bad := res.FirstBad(); bad != nil {
			fmt.Fprintf(os.Stderr, "loadgen: first failure: record #%d (%s %s)\n", bad.Index, bad.Kind, tr.Records[bad.Index].Path)
			if bad.Err != nil {
				fmt.Fprintf(os.Stderr, "loadgen:   error: %v\n", bad.Err)
			} else {
				fmt.Fprintf(os.Stderr, "loadgen:   %s\n", bad.Mismatch)
			}
		}
		return 1
	}
	fmt.Println("replay verification: OK (every record matched its oracle)")
	return 0
}

// runClassic is the synthetic round-robin mix: prime, verify the
// stream/adaptive contracts, then the hot byte-identity pass.
func runClassic(bases []string, paths, sweep string, jobsMode, stream, estimate bool, thresh float64,
	conc, total int, duration time.Duration, apiKey string, clients int) int {
	if len(bases) > 1 {
		fmt.Printf("replicas: %d (%s reference; hot pass rotates)\n", len(bases), bases[0])
	}
	if estimate && stream {
		fmt.Fprintln(os.Stderr, "loadgen: -estimate routes -sweep to the analytical tier; run -jobs/-stream in a separate invocation")
		return 1
	}
	if clients < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -clients must be at least 1")
		return 1
	}
	// keyFor derives worker w's client identity. One identity total when
	// -clients is 1; N distinct suffixed keys otherwise ("tenant" stands
	// in as the prefix if -api-key was not given).
	keyFor := func(w int) string {
		if clients == 1 {
			return apiKey
		}
		prefix := apiKey
		if prefix == "" {
			prefix = "tenant"
		}
		return fmt.Sprintf("%s-%d", prefix, w%clients)
	}
	if clients > 1 {
		fmt.Printf("clients: %d identities (X-API-Key %s .. %s)\n", clients, keyFor(0), keyFor(clients-1))
	}

	targets, adaptiveBody, err := loadgen.BuildMix(loadgen.MixConfig{
		Paths:     strings.Split(paths, ","),
		Sweep:     sweep,
		Jobs:      jobsMode,
		Estimate:  estimate,
		Threshold: thresh,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	client := &loadgen.Client{}

	// Cold pass: one priming request per target, timed separately. This
	// also pins the reference body every later response must match.
	ref := make(map[string][32]byte, len(targets))
	coldMs := make(map[string]float64, len(targets))
	for _, tg := range targets {
		t0 := time.Now()
		body, cacheHdr, aborted, err := client.Do(bases[0], tg, keyFor(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		if aborted {
			fmt.Fprintf(os.Stderr, "loadgen: priming %s was server-aborted; raise the server -timeout or shrink the request\n", tg.Label)
			return 1
		}
		coldMs[tg.Label] = float64(time.Since(t0).Microseconds()) / 1000
		ref[tg.Label] = sha256.Sum256(body)
		fmt.Printf("prime %-60s %8.1f ms  (%d bytes, X-Cache: %s)\n", tg.Label, coldMs[tg.Label], len(body), cacheHdr)
	}
	// The async path must return the synchronous sweep's exact bytes.
	if jobsMode && ref[loadgen.JobLabel] != ref[loadgen.SweepLabel] {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: async job result diverged from the synchronous /v1/sweep response")
		return 1
	}

	// Structural verification of the adaptive tier: re-fetch the primed
	// adaptive response (a warm hit — also proving the estimator answers
	// deterministically) and hold it to the pre-screened contract.
	if estimate {
		simulated, estimated, err := client.VerifyAdaptive(bases[0], sweep, adaptiveBody, keyFor(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL: adaptive sweep:", err)
			return 1
		}
		fmt.Printf("adaptive: %d simulated + %d estimated variants; simulated points match a plain sweep literal-for-literal\n",
			simulated, estimated)
	}

	// Streaming verification: every stream must reassemble to its
	// synchronous reference, byte for byte, with the first line well
	// ahead of completion.
	if stream {
		type streamTarget struct {
			label string
			url   string
			ref   [32]byte
		}
		var sts []streamTarget
		if sweep != "" {
			u, err := loadgen.SweepStreamURL(bases[0], sweep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: -stream:", err)
				return 1
			}
			sts = append(sts, streamTarget{label: "STREAM /v1/stream/sweep", url: u, ref: ref[loadgen.SweepLabel]})
		}
		for _, p := range strings.Split(paths, ",") {
			if strings.HasPrefix(p, "/v1/experiments/") {
				sts = append(sts, streamTarget{
					label: "STREAM /v1/stream" + p[len("/v1"):],
					url:   bases[0] + strings.Replace(p, "/v1/experiments/", "/v1/stream/experiments/", 1),
					ref:   ref["GET "+p],
				})
			}
		}
		if len(sts) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -stream needs -sweep or a /v1/experiments/ path to stream")
			return 1
		}
		for _, st := range sts {
			sr, err := client.StreamVerify(st.url, st.ref, keyFor(0))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: FAIL: %s: %v\n", st.label, err)
				return 1
			}
			fmt.Printf("stream %-55s %d lines, first line %8.1f ms, done %8.1f ms, byte-identity OK\n",
				st.label, sr.Lines, float64(sr.TTFL.Microseconds())/1000, float64(sr.Total.Microseconds())/1000)
		}
	}

	// Hot pass: all workers, round-robin over targets, every completed
	// body checked against the reference hash. In duration mode workers
	// run until the deadline; otherwise until -n requests are done.
	var (
		mu       sync.Mutex
		stats    loadgen.Stats
		mismatch atomic.Int64
		aborts   atomic.Int64
		next     atomic.Int64
		// firstBad captures the first diverging or failed request for
		// triage: under chaos testing "1 of 512 mismatched" is useless
		// without knowing which request and how the bytes differed.
		firstBad atomic.Pointer[loadgen.MismatchReport]
	)
	recordBad := func(r *loadgen.MismatchReport) {
		firstBad.CompareAndSwap(nil, r)
		mismatch.Add(1)
	}
	deadline := time.Time{}
	if duration > 0 {
		deadline = time.Now().Add(duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		key := keyFor(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if deadline.IsZero() {
					if i >= total {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				tg := targets[i%len(targets)]
				t0 := time.Now()
				body, cacheHdr, aborted, err := client.Do(bases[i%len(bases)], tg, key)
				d := time.Since(t0)
				if aborted {
					aborts.Add(1)
					continue
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "loadgen:", err)
					recordBad(&loadgen.MismatchReport{Request: i, Label: tg.Label, Err: err})
					continue
				}
				if got := sha256.Sum256(body); got != ref[tg.Label] {
					fmt.Fprintf(os.Stderr, "loadgen: response for %s diverged from reference\n", tg.Label)
					recordBad(&loadgen.MismatchReport{
						Request: i, Label: tg.Label,
						WantSHA: ref[tg.Label], GotSHA: got,
						Body: body,
					})
					continue
				}
				mu.Lock()
				stats.Add(loadgen.Sample{Label: tg.Label, D: d, Cache: cacheHdr})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(stats.Samples) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		return 1
	}
	durs := stats.Durations()
	reqs := float64(len(stats.Samples))
	hits := stats.Hits()
	fmt.Printf("\n%d requests, %d workers, %.2fs\n", len(stats.Samples), conc, elapsed.Seconds())
	fmt.Printf("throughput: %.0f req/s\n", reqs/elapsed.Seconds())
	fmt.Printf("latency:    p50 %.2f ms  p99 %.2f ms\n",
		loadgen.PercentileMS(durs, 0.50), loadgen.PercentileMS(durs, 0.99))
	fmt.Printf("cache:      %d/%d hits (%.0f%%)\n", hits, len(stats.Samples), 100*float64(hits)/reqs)
	if n := aborts.Load(); n > 0 {
		fmt.Printf("aborted:    %d responses shed by the server (deadline/cancel), not counted as failures\n", n)
	}
	byLabel := stats.ByLabel()
	for _, tg := range targets {
		ds := byLabel[tg.Label]
		if len(ds) == 0 {
			continue
		}
		if warm := loadgen.PercentileMS(ds, 0.50); warm > 0 {
			fmt.Printf("cold/warm:  %-60s %.1fx (cold %.1f ms vs warm p50 %.2f ms)\n",
				tg.Label, coldMs[tg.Label]/warm, coldMs[tg.Label], warm)
		}
	}
	if n := mismatch.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d mismatched or failed responses\n", n)
		if r := firstBad.Load(); r != nil {
			r.Print(os.Stderr)
		}
		return 1
	}
	fmt.Println("byte-identity: OK (every response matched its target's reference)")
	return 0
}
