// Command loadgen hammers a running gpuvard with concurrent identical
// requests and verifies the service's core contract: every response for
// the same request is byte-identical regardless of which worker asked,
// whether it was computed, coalesced, or replayed from the cache.
//
// It reports throughput (req/s), latency percentiles (p50/p99), the
// cold-vs-warm latency ratio for the first path, and the server's
// X-Cache hit/miss split. Server-aborted responses — 504 (request
// deadline exceeded) and 499 (request canceled) — are counted
// separately from failures: under an aggressive -timeout they are the
// server shedding load as designed, not a bug. It exits nonzero if any
// response diverges from the first response for its path or fails
// outright.
//
// With -jobs, the -sweep body is additionally exercised through the
// async path: each such "request" is a full POST /v1/jobs submission
// (202 + job URL), a poll loop over GET /v1/jobs/{id} asserting the
// reported shard progress never goes backwards, and a GET of
// /v1/jobs/{id}/result — whose bytes must match the synchronous
// POST /v1/sweep reference exactly (the async path's core contract).
//
// With -stream, the streaming endpoints are verified against their
// synchronous twins: the -sweep body is replayed as GET
// /v1/stream/sweep (query-parameter spelling) and every -paths entry
// under /v1/experiments/ as GET /v1/stream/experiments/..., reading the
// NDJSON incrementally. The concatenated line payloads must hash
// identically to the synchronous reference, the terminal summary's
// declared sha256 must match, and the time to the first line is
// measured and reported — the stream's reason to exist.
//
// With -estimate, the -sweep body drives the analytical tier instead
// of the plain sweep (a wide axis is the point, and wide axes exceed
// the 32-value full-simulation cap by design — so -estimate excludes
// -jobs and -stream): it is POSTed to /v1/estimate and as an adaptive
// /v1/sweep (tolerance -threshold), both riding the same prime/hot
// byte-identity machinery — the estimator must be deterministic
// request over request. On top of
// that, the adaptive response's structure is verified once after
// priming: every variant carries a source, estimated points carry their
// error bound, at most 32 values full-simulated (and at most half, on
// axes of 64+ values), and a plain /v1/sweep of exactly the simulated
// values must agree with the adaptive response literal-for-literal —
// the pre-screened sweep's core contract.
//
// Usage:
//
//	loadgen                                     # 32 workers, 512 reqs, /v1/figures/fig2
//	loadgen -c 64 -n 2048 -paths /v1/figures/fig2,/v1/experiments/sgemm?cluster=CloudLab
//	loadgen -duration 30s                       # time-based instead of count-based
//	loadgen -sweep '{"cluster":"CloudLab","axis":"powercap","values":[300,250,200,150]}'
//	loadgen -sweep '{"axis":"seed","values":[1,2,3]}' -jobs
//	loadgen -sweep '{"axis":"fraction","values":[0.5,1]}' -stream
//	loadgen -sweep '{"axis":"powercap","values":[100,150,200,250,300]}' -estimate
//	loadgen -url http://localhost:9090 -c 8
//	loadgen -url http://h1:8081,http://h2:8082,http://h3:8083 -sweep '...'
//	loadgen -clients 4 -api-key team -jobs -sweep '...'
//
// -url accepts a comma-separated replica list: priming, streaming, and
// the adaptive verification hit the first replica (pinning the
// reference bytes), and the hot pass rotates requests across all of
// them — so one run asserts the distributed deployment's byte-identity
// contract: any replica, same request, same bytes.
//
// With -api-key, every request carries an X-API-Key header so the
// server attributes it to a client; -clients N spreads the workers
// across N derived identities (<key>-0 .. <key>-N-1), exercising the
// server's per-client fair queuing and per-client 429 shedding the way
// N separate tenants would.
package main

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// target is one request in the round-robin mix.
type target struct {
	label  string // method + path, used in reports and as reference key
	method string
	path   string
	body   string
}

type sample struct {
	label string
	d     time.Duration
	cache string // X-Cache header: hit, miss, coalesced, or ""
}

// p50 returns the median of ds in milliseconds (ds must be sorted).
func p50ms(ds []time.Duration) float64 {
	return float64(ds[len(ds)/2].Microseconds()) / 1000
}

func main() {
	var (
		base     = flag.String("url", "http://localhost:8080", "server base URL, or a comma-separated replica list (priming uses the first; the hot pass rotates over all)")
		paths    = flag.String("paths", "/v1/figures/fig2", "comma-separated GET request paths")
		sweep    = flag.String("sweep", "", "JSON body to POST to /v1/sweep as part of the mix (empty = no sweep requests)")
		jobsMode = flag.Bool("jobs", false, "also run the -sweep body through the async job path (submit, poll progress, fetch result) and require the result bytes to match the synchronous sweep response")
		stream   = flag.Bool("stream", false, "also verify the streaming endpoints: reassembled NDJSON payloads must be byte-identical to the synchronous responses; reports time-to-first-line")
		estimate = flag.Bool("estimate", false, "also drive the analytical tier: POST the -sweep body to /v1/estimate and as an adaptive sweep, verifying the mixed response's structure and that its simulated points match a plain sweep of the same values")
		thresh   = flag.Float64("threshold", 0.05, "relative error tolerance for the adaptive sweep driven by -estimate")
		conc     = flag.Int("c", 32, "concurrent workers")
		total    = flag.Int("n", 512, "total requests (split across workers, round-robin over paths)")
		duration = flag.Duration("duration", 0, "run for this long instead of a fixed -n (0 = use -n)")
		apiKey   = flag.String("api-key", "", "X-API-Key to send (empty = anonymous; the server falls back to the remote address)")
		clients  = flag.Int("clients", 1, "spread workers across this many derived client identities (<api-key>-0 .. <api-key>-N-1)")
	)
	flag.Parse()
	var bases []string
	for _, b := range strings.Split(*base, ",") {
		if b = strings.TrimSpace(strings.TrimSuffix(b, "/")); b != "" {
			bases = append(bases, b)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -url must name at least one replica")
		os.Exit(1)
	}
	if len(bases) > 1 {
		fmt.Printf("replicas: %d (%s reference; hot pass rotates)\n", len(bases), bases[0])
	}
	if *jobsMode && *sweep == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -jobs requires -sweep (the job payload)")
		os.Exit(1)
	}
	if *estimate && *sweep == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -estimate requires -sweep (the request to estimate)")
		os.Exit(1)
	}
	if *estimate && (*jobsMode || *stream) {
		fmt.Fprintln(os.Stderr, "loadgen: -estimate routes -sweep to the analytical tier; run -jobs/-stream in a separate invocation")
		os.Exit(1)
	}
	if *clients < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -clients must be at least 1")
		os.Exit(1)
	}
	// keyFor derives worker w's client identity. One identity total when
	// -clients is 1; N distinct suffixed keys otherwise ("tenant" stands
	// in as the prefix if -api-key was not given).
	keyFor := func(w int) string {
		if *clients == 1 {
			return *apiKey
		}
		prefix := *apiKey
		if prefix == "" {
			prefix = "tenant"
		}
		return fmt.Sprintf("%s-%d", prefix, w%*clients)
	}

	if *clients > 1 {
		fmt.Printf("clients: %d identities (X-API-Key %s .. %s)\n", *clients, keyFor(0), keyFor(*clients-1))
	}

	const sweepLabel = "POST /v1/sweep"
	const jobLabel = "JOB  /v1/jobs (sweep)"
	var targets []target
	for _, p := range strings.Split(*paths, ",") {
		targets = append(targets, target{label: "GET " + p, method: "GET", path: p})
	}
	if *sweep != "" && !*estimate {
		targets = append(targets, target{label: sweepLabel, method: "POST", path: "/v1/sweep", body: *sweep})
	}
	if *jobsMode {
		targets = append(targets, target{label: jobLabel, method: methodJob, path: "/v1/jobs",
			body: `{"kind":"sweep","sweep":` + *sweep + `}`})
	}
	const estimateLabel = "POST /v1/estimate"
	const adaptiveLabel = "POST /v1/sweep (adaptive)"
	var adaptiveBody string
	if *estimate {
		var err error
		if adaptiveBody, err = adaptiveSweepBody(*sweep, *thresh); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: -estimate:", err)
			os.Exit(1)
		}
		targets = append(targets,
			target{label: estimateLabel, method: "POST", path: "/v1/estimate", body: *sweep},
			target{label: adaptiveLabel, method: "POST", path: "/v1/sweep", body: adaptiveBody})
	}
	client := &http.Client{Timeout: 5 * time.Minute}

	// Cold pass: one priming request per target, timed separately. This
	// also pins the reference body every later response must match.
	ref := make(map[string][32]byte, len(targets))
	coldMs := make(map[string]float64, len(targets))
	for _, tg := range targets {
		t0 := time.Now()
		body, cacheHdr, aborted, err := do(client, bases[0], tg, keyFor(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		if aborted {
			fmt.Fprintf(os.Stderr, "loadgen: priming %s was server-aborted; raise the server -timeout or shrink the request\n", tg.label)
			os.Exit(1)
		}
		coldMs[tg.label] = float64(time.Since(t0).Microseconds()) / 1000
		ref[tg.label] = sha256.Sum256(body)
		fmt.Printf("prime %-60s %8.1f ms  (%d bytes, X-Cache: %s)\n", tg.label, coldMs[tg.label], len(body), cacheHdr)
	}
	// The async path must return the synchronous sweep's exact bytes.
	if *jobsMode && ref[jobLabel] != ref[sweepLabel] {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL: async job result diverged from the synchronous /v1/sweep response")
		os.Exit(1)
	}

	// Structural verification of the adaptive tier: re-fetch the primed
	// adaptive response (a warm hit — also proving the estimator answers
	// deterministically) and hold it to the pre-screened contract.
	if *estimate {
		simulated, estimated, err := verifyAdaptive(client, bases[0], *sweep, adaptiveBody, keyFor(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen: FAIL: adaptive sweep:", err)
			os.Exit(1)
		}
		fmt.Printf("adaptive: %d simulated + %d estimated variants; simulated points match a plain sweep literal-for-literal\n",
			simulated, estimated)
	}

	// Streaming verification: every stream must reassemble to its
	// synchronous reference, byte for byte, with the first line well
	// ahead of completion.
	if *stream {
		type streamTarget struct {
			label string
			url   string
			ref   [32]byte
		}
		var sts []streamTarget
		if *sweep != "" {
			u, err := sweepStreamURL(bases[0], *sweep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: -stream:", err)
				os.Exit(1)
			}
			sts = append(sts, streamTarget{label: "STREAM /v1/stream/sweep", url: u, ref: ref[sweepLabel]})
		}
		for _, p := range strings.Split(*paths, ",") {
			if strings.HasPrefix(p, "/v1/experiments/") {
				sts = append(sts, streamTarget{
					label: "STREAM /v1/stream" + p[len("/v1"):],
					url:   bases[0] + strings.Replace(p, "/v1/experiments/", "/v1/stream/experiments/", 1),
					ref:   ref["GET "+p],
				})
			}
		}
		if len(sts) == 0 {
			fmt.Fprintln(os.Stderr, "loadgen: -stream needs -sweep or a /v1/experiments/ path to stream")
			os.Exit(1)
		}
		for _, st := range sts {
			ttfl, total, lines, err := streamVerify(client, st.url, st.ref)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: FAIL: %s: %v\n", st.label, err)
				os.Exit(1)
			}
			fmt.Printf("stream %-55s %d lines, first line %8.1f ms, done %8.1f ms, byte-identity OK\n",
				st.label, lines, float64(ttfl.Microseconds())/1000, float64(total.Microseconds())/1000)
		}
	}

	// Hot pass: all workers, round-robin over targets, every completed
	// body checked against the reference hash. In duration mode workers
	// run until the deadline; otherwise until -n requests are done.
	var (
		mu       sync.Mutex
		samples  []sample
		mismatch atomic.Int64
		aborts   atomic.Int64
		next     atomic.Int64
		// firstBad captures the first diverging or failed request for
		// triage: under chaos testing "1 of 512 mismatched" is useless
		// without knowing which request and how the bytes differed.
		firstBad atomic.Pointer[mismatchReport]
	)
	recordBad := func(r *mismatchReport) {
		firstBad.CompareAndSwap(nil, r)
		mismatch.Add(1)
	}
	deadline := time.Time{}
	if *duration > 0 {
		deadline = time.Now().Add(*duration)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		key := keyFor(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if deadline.IsZero() {
					if i >= *total {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				tg := targets[i%len(targets)]
				t0 := time.Now()
				body, cacheHdr, aborted, err := do(client, bases[i%len(bases)], tg, key)
				d := time.Since(t0)
				if aborted {
					aborts.Add(1)
					continue
				}
				if err != nil {
					fmt.Fprintln(os.Stderr, "loadgen:", err)
					recordBad(&mismatchReport{request: i, label: tg.label, err: err})
					continue
				}
				if got := sha256.Sum256(body); got != ref[tg.label] {
					fmt.Fprintf(os.Stderr, "loadgen: response for %s diverged from reference\n", tg.label)
					recordBad(&mismatchReport{
						request: i, label: tg.label,
						wantSHA: ref[tg.label], gotSHA: got,
						body: body,
					})
					continue
				}
				mu.Lock()
				samples = append(samples, sample{label: tg.label, d: d, cache: cacheHdr})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no successful requests")
		os.Exit(1)
	}
	durs := make([]time.Duration, len(samples))
	byLabel := make(map[string][]time.Duration, len(targets))
	hits := 0
	for i, s := range samples {
		durs[i] = s.d
		byLabel[s.label] = append(byLabel[s.label], s.d)
		if s.cache == "hit" {
			hits++
		}
	}
	sort.Slice(durs, func(a, b int) bool { return durs[a] < durs[b] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Microseconds()) / 1000
	}
	reqs := float64(len(samples))
	fmt.Printf("\n%d requests, %d workers, %.2fs\n", len(samples), *conc, elapsed.Seconds())
	fmt.Printf("throughput: %.0f req/s\n", reqs/elapsed.Seconds())
	fmt.Printf("latency:    p50 %.2f ms  p99 %.2f ms\n", pct(0.50), pct(0.99))
	fmt.Printf("cache:      %d/%d hits (%.0f%%)\n", hits, len(samples), 100*float64(hits)/reqs)
	if n := aborts.Load(); n > 0 {
		fmt.Printf("aborted:    %d responses shed by the server (deadline/cancel), not counted as failures\n", n)
	}
	for _, tg := range targets {
		ds := byLabel[tg.label]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		if warm := p50ms(ds); warm > 0 {
			fmt.Printf("cold/warm:  %-60s %.1fx (cold %.1f ms vs warm p50 %.2f ms)\n",
				tg.label, coldMs[tg.label]/warm, coldMs[tg.label], warm)
		}
	}
	if n := mismatch.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: FAIL: %d mismatched or failed responses\n", n)
		if r := firstBad.Load(); r != nil {
			r.print(os.Stderr)
		}
		os.Exit(1)
	}
	fmt.Println("byte-identity: OK (every response matched its target's reference)")
}

// mismatchReport is the triage record for the first bad response of a
// run: which request diverged, the expected and observed hashes, and
// the head of the observed body (enough to tell a wrong result from an
// error envelope at a glance).
type mismatchReport struct {
	request int
	label   string
	err     error // request failed outright (mutually exclusive with a hash divergence)
	wantSHA [32]byte
	gotSHA  [32]byte
	body    []byte
}

func (r *mismatchReport) print(w io.Writer) {
	fmt.Fprintf(w, "loadgen: first failure: request #%d (%s)\n", r.request, r.label)
	if r.err != nil {
		fmt.Fprintf(w, "loadgen:   error: %v\n", r.err)
		return
	}
	fmt.Fprintf(w, "loadgen:   want sha256 %s\n", hex.EncodeToString(r.wantSHA[:]))
	fmt.Fprintf(w, "loadgen:   got  sha256 %s\n", hex.EncodeToString(r.gotSHA[:]))
	snippet := r.body
	const maxSnippet = 512
	truncated := ""
	if len(snippet) > maxSnippet {
		snippet = snippet[:maxSnippet]
		truncated = fmt.Sprintf(" ... (%d bytes total)", len(r.body))
	}
	fmt.Fprintf(w, "loadgen:   got body: %s%s\n", strings.TrimSpace(string(snippet)), truncated)
}

// methodJob marks a target that runs through the async job path
// instead of a single HTTP request.
const methodJob = "JOB"

// adaptiveSweepBody turns the -sweep body into its adaptive spelling.
// json.Marshal reorders the keys, but the body only needs to be
// self-consistent: every adaptive request in the run sends these exact
// bytes, so the byte-identity machinery still has a fixed reference.
func adaptiveSweepBody(body string, threshold float64) (string, error) {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return "", fmt.Errorf("parsing -sweep body: %v", err)
	}
	m["adaptive"] = true
	m["threshold"] = threshold
	out, err := json.Marshal(m)
	return string(out), err
}

// adaptiveVariant is the per-variant subset -estimate verifies, decoded
// with json.Number so numeric literals compare as the exact bytes the
// server sent, not as post-rounding floats.
type adaptiveVariant struct {
	Value    json.Number `json:"value"`
	MedianMs json.Number `json:"median_ms"`
	PerfVar  json.Number `json:"perf_variation"`
	GPUs     json.Number `json:"gpus"`
	Outliers json.Number `json:"outliers"`
	Source   string      `json:"source"`
	Bound    json.Number `json:"bound"`
}

func decodeAdaptiveVariants(body []byte) ([]adaptiveVariant, error) {
	var resp struct {
		Variants []json.RawMessage `json:"variants"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("decoding sweep response: %v", err)
	}
	out := make([]adaptiveVariant, len(resp.Variants))
	for i, raw := range resp.Variants {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&out[i]); err != nil {
			return nil, fmt.Errorf("decoding variant %d: %v", i, err)
		}
	}
	return out, nil
}

// verifyAdaptive checks the pre-screened sweep's contract on the warm
// adaptive response: every variant declares its source, estimated
// points carry an error bound, full simulation stays under the 32-value
// clamp (and under half the axis once it is 64+ values wide), and a
// plain /v1/sweep of exactly the simulated values agrees with the
// adaptive response literal-for-literal.
func verifyAdaptive(client *http.Client, base, sweepBody, adaptiveBody, key string) (simulated, estimated int, err error) {
	body, _, aborted, err := do(client, base,
		target{label: "verify adaptive", method: "POST", path: "/v1/sweep", body: adaptiveBody}, key)
	if err != nil || aborted {
		return 0, 0, fmt.Errorf("re-fetching the adaptive response: aborted=%t err=%v", aborted, err)
	}
	variants, err := decodeAdaptiveVariants(body)
	if err != nil {
		return 0, 0, err
	}
	var simVals []string
	byValue := make(map[string]adaptiveVariant, len(variants))
	for i, v := range variants {
		switch v.Source {
		case "simulated":
			simulated++
			simVals = append(simVals, v.Value.String())
			byValue[v.Value.String()] = v
		case "estimated":
			if v.Bound == "" {
				return 0, 0, fmt.Errorf("variant %d (value %s) is estimated but has no bound", i, v.Value)
			}
			estimated++
		default:
			return 0, 0, fmt.Errorf("variant %d (value %s) has source %q", i, v.Value, v.Source)
		}
	}
	if simulated == 0 {
		return 0, 0, fmt.Errorf("no simulated variants — the calibration anchors must always simulate")
	}
	if simulated > 32 {
		return 0, 0, fmt.Errorf("%d variants full-simulated, over the 32-value clamp", simulated)
	}
	if len(variants) >= 64 && (simulated*2 > len(variants) || estimated == 0) {
		return 0, 0, fmt.Errorf("a %d-value axis simulated %d values (want ≤ half, with an estimated remainder)", len(variants), simulated)
	}

	// Replay exactly the simulated values as a plain sweep; the adaptive
	// path runs the identical shard body, so each point must reproduce
	// its numeric literals.
	var m map[string]any
	if err := json.Unmarshal([]byte(sweepBody), &m); err != nil {
		return 0, 0, fmt.Errorf("parsing -sweep body: %v", err)
	}
	if _, legacy := m["caps_w"]; legacy {
		delete(m, "caps_w")
		m["axis"] = "powercap"
	}
	m["values"] = json.RawMessage("[" + strings.Join(simVals, ",") + "]")
	subset, err := json.Marshal(m)
	if err != nil {
		return 0, 0, err
	}
	plainBody, _, aborted, err := do(client, base,
		target{label: "verify subset", method: "POST", path: "/v1/sweep", body: string(subset)}, key)
	if err != nil || aborted {
		return 0, 0, fmt.Errorf("plain sweep of the simulated values: aborted=%t err=%v", aborted, err)
	}
	plain, err := decodeAdaptiveVariants(plainBody)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range plain {
		a, ok := byValue[p.Value.String()]
		if !ok {
			return 0, 0, fmt.Errorf("plain sweep returned value %s that the adaptive response did not simulate", p.Value)
		}
		if a.MedianMs != p.MedianMs || a.PerfVar != p.PerfVar || a.GPUs != p.GPUs || a.Outliers != p.Outliers {
			return 0, 0, fmt.Errorf("value %s: adaptive simulated point diverged from the plain sweep (%+v vs %+v)", p.Value, a, p)
		}
	}
	return simulated, estimated, nil
}

// sweepStreamURL converts the -sweep JSON body into the streaming
// endpoint's query-parameter spelling (values/caps_w comma-joined), so
// both spellings describe the identical normalized request.
func sweepStreamURL(base, body string) (string, error) {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return "", fmt.Errorf("parsing -sweep body: %v", err)
	}
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	q := url.Values{}
	for k, v := range m {
		switch vv := v.(type) {
		case string:
			q.Set(k, vv)
		case float64:
			q.Set(k, num(vv))
		case []any:
			parts := make([]string, len(vv))
			for i, e := range vv {
				f, ok := e.(float64)
				if !ok {
					return "", fmt.Errorf("-sweep field %q element %d is not a number", k, i)
				}
				parts[i] = num(f)
			}
			q.Set(k, strings.Join(parts, ","))
		default:
			return "", fmt.Errorf("-sweep field %q has unstreamable type %T", k, v)
		}
	}
	return base + "/v1/stream/sweep?" + q.Encode(), nil
}

// streamLine is the NDJSON line schema of the streaming endpoints (the
// subset loadgen verifies).
type streamLine struct {
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Payload string `json:"payload"`
	Bytes   int    `json:"bytes"`
	SHA256  string `json:"sha256"`
	Error   string `json:"error"`
}

// streamVerify reads one streaming response line by line as it arrives
// and checks the stream contract: a start line, ordered shard lines, a
// terminal summary whose declared sha256 matches the reassembled
// payload, and payload bytes hashing to the synchronous reference.
func streamVerify(client *http.Client, target string, ref [32]byte) (ttfl, total time.Duration, lines int, err error) {
	t0 := time.Now()
	resp, err := client.Get(target)
	if err != nil {
		return 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, 0, 0, fmt.Errorf("GET %s: %s: %s", target, resp.Status, firstLine(body))
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	h := sha256.New()
	var last streamLine
	nextShard := 0
	for {
		raw, rerr := br.ReadBytes('\n')
		if len(bytes.TrimSpace(raw)) > 0 {
			if lines == 0 {
				ttfl = time.Since(t0)
			}
			lines++
			var l streamLine
			if uerr := json.Unmarshal(raw, &l); uerr != nil {
				return ttfl, 0, lines, fmt.Errorf("line %d is not valid JSON: %v", lines, uerr)
			}
			switch l.Kind {
			case "error":
				return ttfl, 0, lines, fmt.Errorf("server reported in-band error: %s", l.Error)
			case "shard":
				if l.Shard != nextShard {
					return ttfl, 0, lines, fmt.Errorf("shard line out of order: got %d, want %d", l.Shard, nextShard)
				}
				nextShard++
			}
			h.Write([]byte(l.Payload))
			last = l
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return ttfl, 0, lines, rerr
		}
	}
	total = time.Since(t0)
	if last.Kind != "summary" {
		return ttfl, total, lines, fmt.Errorf("stream ended on %q, want a terminal summary line", last.Kind)
	}
	var got [32]byte
	h.Sum(got[:0])
	if hex.EncodeToString(got[:]) != last.SHA256 {
		return ttfl, total, lines, fmt.Errorf("summary sha256 does not match the reassembled payload")
	}
	if got != ref {
		return ttfl, total, lines, fmt.Errorf("reassembled stream diverged from the synchronous reference")
	}
	return ttfl, total, lines, nil
}

// doJob drives one submission through the whole async lifecycle:
// submit (202 + URL, honoring 429 + Retry-After backpressure by
// retrying — shedding is the server working as designed, not a
// failure), poll status until terminal (asserting progress
// monotonicity), fetch the result.
func doJob(client *http.Client, base string, tg target, key string) (body []byte, err error) {
	var sub []byte
	deadline := time.Now().Add(4 * time.Minute)
	for {
		req, err := http.NewRequest("POST", base+tg.path, strings.NewReader(tg.body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		sub, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("POST %s: still shed (429) after 4m", tg.path)
			}
			wait := 100 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("POST %s: %s: %s", tg.path, resp.Status, firstLine(sub))
		}
		break
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Done  int64  `json:"shards_done"`
		Total int64  `json:"shards_total"`
		URL   string `json:"url"`
	}
	if err := json.Unmarshal(sub, &job); err != nil {
		return nil, fmt.Errorf("POST %s: decoding 202 body: %v", tg.path, err)
	}

	// Poll until terminal; shard progress must never go backwards. The
	// submit deadline carries over: backpressure waits and polling
	// share one 4-minute budget.
	var lastDone, lastTotal int64
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not finish within 4m", job.ID)
		}
		resp, err := client.Get(base + job.URL)
		if err != nil {
			return nil, err
		}
		st, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %s: %s", job.URL, resp.Status, firstLine(st))
		}
		if err := json.Unmarshal(st, &job); err != nil {
			return nil, fmt.Errorf("GET %s: decoding status: %v", job.URL, err)
		}
		if job.Done < lastDone || job.Total < lastTotal {
			return nil, fmt.Errorf("job %s progress went backwards: %d/%d after %d/%d",
				job.ID, job.Done, job.Total, lastDone, lastTotal)
		}
		lastDone, lastTotal = job.Done, job.Total
		switch job.State {
		case "done":
			resp, err := client.Get(base + job.URL + "/result")
			if err != nil {
				return nil, err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET %s/result: %s: %s", job.URL, resp.Status, firstLine(body))
			}
			return body, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s ended %s", job.ID, job.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// do performs one request. aborted reports a server-shed response —
// 504 (deadline exceeded) or 499 (client canceled) — which callers
// account separately from failures.
func do(client *http.Client, base string, tg target, key string) (body []byte, cacheHdr string, aborted bool, err error) {
	if tg.method == methodJob {
		body, err := doJob(client, base, tg, key)
		return body, "job", false, err
	}
	var rd io.Reader
	if tg.body != "" {
		rd = strings.NewReader(tg.body)
	}
	req, err := http.NewRequest(tg.method, base+tg.path, rd)
	if err != nil {
		return nil, "", false, err
	}
	if tg.body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", false, err
	}
	if resp.StatusCode == http.StatusGatewayTimeout || resp.StatusCode == 499 {
		return nil, "", true, nil
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", false, fmt.Errorf("%s %s: %s: %s", tg.method, base+tg.path, resp.Status, firstLine(body))
	}
	return body, resp.Header.Get("X-Cache"), false, nil
}

func firstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}
