// Command figures regenerates the tables and figures of the paper's
// evaluation from the modeled clusters.
//
// Usage:
//
//	figures                 # everything, quick settings
//	figures -fig fig2       # one figure
//	figures -list           # available ids
//	figures -parallel -1    # everything, generators run concurrently
//	figures -full           # full-fidelity settings (slow): 100 SGEMM
//	                        # reps, all 27,648 Summit GPUs
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gpuvar/internal/figures"
)

func main() {
	var (
		fig      = flag.String("fig", "", "figure/table id to regenerate (empty = all)")
		list     = flag.Bool("list", false, "list available ids")
		seed     = flag.Uint64("seed", 2022, "fleet instantiation seed")
		full     = flag.Bool("full", false, "full-fidelity settings (paper-scale iterations and Summit coverage)")
		iters    = flag.Int("iterations", 0, "override SGEMM repetitions")
		parallel = flag.Int("parallel", 0, "regenerate figures concurrently with this many workers (-1 = GOMAXPROCS); output order is unchanged")
	)
	flag.Parse()

	if *list {
		for _, g := range figures.AllWithExtensions() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	cfg := figures.Config{Seed: *seed}
	if *full {
		cfg.SummitFraction = 1.0
		cfg.Iterations = 100
		cfg.MLIterations = 100
		cfg.Runs = 5
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	s := figures.NewSession(cfg)

	// Ctrl-C aborts the regeneration cooperatively: the engine stops
	// dispatching experiment shards and the command exits cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *fig != "":
		err = figures.Generate(ctx, *fig, s, os.Stdout)
	case *parallel != 0:
		err = figures.GenerateAllParallel(ctx, s, os.Stdout, *parallel)
	default:
		err = figures.GenerateAll(ctx, s, os.Stdout)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "figures: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
