// Command figures regenerates the tables and figures of the paper's
// evaluation from the modeled clusters.
//
// Usage:
//
//	figures                 # everything, quick settings
//	figures -fig fig2       # one figure
//	figures -list           # available ids
//	figures -full           # full-fidelity settings (slow): 100 SGEMM
//	                        # reps, all 27,648 Summit GPUs
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuvar/internal/figures"
)

func main() {
	var (
		fig   = flag.String("fig", "", "figure/table id to regenerate (empty = all)")
		list  = flag.Bool("list", false, "list available ids")
		seed  = flag.Uint64("seed", 2022, "fleet instantiation seed")
		full  = flag.Bool("full", false, "full-fidelity settings (paper-scale iterations and Summit coverage)")
		iters = flag.Int("iterations", 0, "override SGEMM repetitions")
	)
	flag.Parse()

	if *list {
		for _, g := range figures.AllWithExtensions() {
			fmt.Printf("%-8s %s\n", g.ID, g.Title)
		}
		return
	}

	cfg := figures.Config{Seed: *seed}
	if *full {
		cfg.SummitFraction = 1.0
		cfg.Iterations = 100
		cfg.MLIterations = 100
		cfg.Runs = 5
	}
	if *iters > 0 {
		cfg.Iterations = *iters
	}
	s := figures.NewSession(cfg)

	var err error
	if *fig == "" {
		err = figures.GenerateAll(s, os.Stdout)
	} else {
		err = figures.Generate(*fig, s, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
