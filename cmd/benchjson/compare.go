package main

import (
	"fmt"
	"io"
	"sort"
)

// Regression is one benchmark metric that got worse than the baseline
// by more than the tolerance.
type Regression struct {
	Name   string  // benchmark name
	Metric string  // "ns/op" or "allocs/op"
	Old    float64 // baseline value
	New    float64 // current value
	Ratio  float64 // New/Old
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s %.0f -> %.0f (%.2fx)", r.Name, r.Metric, r.Old, r.New, r.Ratio)
}

// compareSummaries returns every benchmark in cur whose ns/op exceeds
// its baseline value by more than nsTol, or whose allocs/op exceeds it
// by more than allocTol (0.25 = 25% worse fails). The tolerances are
// separate because the metrics have different noise profiles: allocs/op
// is machine-independent and deterministic, while ns/op varies with the
// host (CI loosens nsTol for cross-machine runs but keeps allocTol
// tight). Benchmarks present on only one side are ignored — a new
// benchmark has no baseline and a retired one no current value, and
// neither is a regression. Results are sorted by name for stable CI
// logs.
func compareSummaries(base, cur map[string]Entry, nsTol, allocTol float64) []Regression {
	var regs []Regression
	for name, c := range cur {
		b, ok := base[name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+nsTol) {
			regs = append(regs, Regression{
				Name: name, Metric: "ns/op",
				Old: b.NsPerOp, New: c.NsPerOp, Ratio: c.NsPerOp / b.NsPerOp,
			})
		}
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+allocTol) {
			regs = append(regs, Regression{
				Name: name, Metric: "allocs/op",
				Old: float64(b.AllocsPerOp), New: float64(c.AllocsPerOp),
				Ratio: float64(c.AllocsPerOp) / float64(b.AllocsPerOp),
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		if regs[i].Name != regs[j].Name {
			return regs[i].Name < regs[j].Name
		}
		return regs[i].Metric < regs[j].Metric
	})
	return regs
}

// reportComparison prints the gate's verdict and returns whether the
// current results pass (no regression beyond tolerance). compared is
// the number of benchmarks present on both sides; a zero overlap is a
// configuration error the caller should treat as a failure.
func reportComparison(w io.Writer, base, cur map[string]Entry, nsTol, allocTol float64) (pass bool, compared int) {
	for name := range cur {
		if _, ok := base[name]; ok {
			compared++
		}
	}
	regs := compareSummaries(base, cur, nsTol, allocTol)
	if len(regs) == 0 {
		fmt.Fprintf(w, "benchjson: %d benchmark(s) within tolerance (ns/op %.0f%%, allocs/op %.0f%%)\n",
			compared, nsTol*100, allocTol*100)
		return true, compared
	}
	fmt.Fprintf(w, "benchjson: %d regression(s) beyond tolerance (ns/op %.0f%%, allocs/op %.0f%%):\n",
		len(regs), nsTol*100, allocTol*100)
	for _, r := range regs {
		fmt.Fprintf(w, "  %s\n", r)
	}
	return false, compared
}
