// Command benchjson runs the repository benchmarks and writes a
// machine-readable summary (benchmark name → ns/op, B/op, allocs/op),
// so successive PRs accumulate a comparable performance trajectory.
//
// Usage:
//
//	go run ./cmd/benchjson                        # all benchmarks → BENCH.json
//	go run ./cmd/benchjson -bench 'Fig04|ExtCampaign' -count 3
//	go run ./cmd/benchjson -out BENCH_1.json -baseline seed_bench.json
//	go run ./cmd/benchjson -bench 'Fig04|ExtCampaign' -count 3 -benchtime 3x \
//	    -out /tmp/check.json -compare BENCH_2.json -tolerance 0.25
//
// With -baseline, the named file's "benchmarks" section is embedded
// under "baseline" for side-by-side before/after records.
//
// With -compare, the freshly measured results are additionally gated
// against the named summary: if any benchmark's ns/op or allocs/op is
// worse than its baseline value by more than -tolerance (default 0.25 =
// 25%), every regression is listed and the process exits nonzero. This
// is the benchmark-regression gate make verify and CI run against the
// committed trajectory file.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
)

// Entry is one benchmark's result. When -count > 1, values are the
// minimum across repetitions (the least-noise estimate).
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
}

// Summary is the file schema.
type Summary struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Bench      string           `json:"bench_regexp"`
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Baseline carries a previous run's benchmarks for before/after
	// comparison (populated via -baseline).
	Baseline map[string]Entry `json:"baseline,omitempty"`
}

// benchLine matches `go test -bench -benchmem` output rows, e.g.
// BenchmarkFig04SGEMMSummit  80  14103702 ns/op  2741793 B/op  48725 allocs/op
// The name is matched non-greedily so the -GOMAXPROCS suffix Go appends
// on multi-core machines is stripped, keeping keys machine-independent.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test")
		count     = flag.Int("count", 1, "repetitions per benchmark (minimum is kept)")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 10x, 2s)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH.json", "output file")
		baseline  = flag.String("baseline", "", "previous summary to embed under \"baseline\"")
		compare   = flag.String("compare", "", "summary file to gate the fresh results against")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before -compare fails")
		allocTol  = flag.Float64("alloc-tolerance", -1, "allowed fractional allocs/op growth (-1 = same as -tolerance)")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	sum := Summary{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Benchmarks: map[string]Entry{},
	}
	var echoed bytes.Buffer
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(&echoed, line)
		fmt.Println(line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		name := m[1]
		if prev, ok := sum.Benchmarks[name]; !ok || e.NsPerOp < prev.NsPerOp {
			sum.Benchmarks[name] = e
		}
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test failed: %w", err))
	}
	if len(sum.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed from output:\n%s", echoed.String()))
	}

	if *baseline != "" {
		sum.Baseline = readSummary(*baseline).Benchmarks
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(sum.Benchmarks))

	if *compare != "" {
		if *allocTol < 0 {
			*allocTol = *tolerance
		}
		gate := readSummary(*compare)
		pass, compared := reportComparison(os.Stderr, gate.Benchmarks, sum.Benchmarks, *tolerance, *allocTol)
		if compared == 0 {
			fatal(fmt.Errorf("no benchmarks in common with %s — wrong -bench regexp?", *compare))
		}
		if !pass {
			os.Exit(1)
		}
	}
}

// readSummary loads a summary file or dies.
func readSummary(path string) Summary {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
