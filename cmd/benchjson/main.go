// Command benchjson runs the repository benchmarks and writes a
// machine-readable summary (benchmark name → ns/op, B/op, allocs/op),
// so successive PRs accumulate a comparable performance trajectory.
//
// Usage:
//
//	go run ./cmd/benchjson                        # all benchmarks → BENCH.json
//	go run ./cmd/benchjson -bench 'Fig04|ExtCampaign' -count 3
//	go run ./cmd/benchjson -out BENCH_1.json -baseline seed_bench.json
//	go run ./cmd/benchjson -bench 'Fig04|ExtCampaign' -count 3 -benchtime 3x \
//	    -out /tmp/check.json -compare BENCH_2.json -tolerance 0.25
//
// With -baseline, the named file's "benchmarks" section is embedded
// under "baseline" for side-by-side before/after records.
//
// With -compare, the freshly measured results are additionally gated
// against the named summary: if any benchmark's ns/op or allocs/op is
// worse than its baseline value by more than -tolerance (default 0.25 =
// 25%), every regression is listed and the process exits nonzero. This
// is the benchmark-regression gate make verify and CI run against the
// committed trajectory file.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// Entry is one benchmark's result. When -count > 1, values are the
// minimum across repetitions (the least-noise estimate).
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	// Metrics holds custom b.ReportMetric units (e.g. "p99-ms",
	// "ttfl-ms"), recorded for the trajectory but not gated — custom
	// metrics are benchmark-defined, so their tolerance is too.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the file schema.
type Summary struct {
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Bench      string           `json:"bench_regexp"`
	Benchmarks map[string]Entry `json:"benchmarks"`
	// Baseline carries a previous run's benchmarks for before/after
	// comparison (populated via -baseline).
	Baseline map[string]Entry `json:"baseline,omitempty"`
}

// gomaxprocsSuffix is the -GOMAXPROCS suffix Go appends to benchmark
// names on multi-core machines; stripping it keeps keys
// machine-independent.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchLine parses one `go test -bench -benchmem` output row,
// e.g.
//
//	BenchmarkFig04SGEMMSummit-8  80  14103702 ns/op  2741793 B/op  48725 allocs/op
//
// Parsing is field-based rather than a fixed regexp because custom
// b.ReportMetric units sort between ns/op and B/op:
//
//	BenchmarkReplayBurst-8  36  32756939 ns/op  10.5 p99-ms  9.4 ttfl-ms  6049240 B/op  49204 allocs/op
//
// Any `value unit` pair after the iteration count is consumed: the
// standard units fill the typed fields, everything else lands in
// Entry.Metrics.
func parseBenchLine(line string) (name string, e Entry, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Entry{}, false
	}
	e.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = val
			sawNs = true
		case "B/op":
			e.BytesPerOp = int64(val)
		case "allocs/op":
			e.AllocsPerOp = int64(val)
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = val
		}
	}
	if !sawNs {
		return "", Entry{}, false
	}
	return gomaxprocsSuffix.ReplaceAllString(fields[0], ""), e, true
}

func main() {
	var (
		bench     = flag.String("bench", ".", "benchmark regexp passed to go test")
		count     = flag.Int("count", 1, "repetitions per benchmark (minimum is kept)")
		benchtime = flag.String("benchtime", "", "go test -benchtime value (e.g. 10x, 2s)")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH.json", "output file")
		baseline  = flag.String("baseline", "", "previous summary to embed under \"baseline\"")
		compare   = flag.String("compare", "", "summary file to gate the fresh results against")
		tolerance = flag.Float64("tolerance", 0.25, "allowed fractional ns/op growth before -compare fails")
		allocTol  = flag.Float64("alloc-tolerance", -1, "allowed fractional allocs/op growth (-1 = same as -tolerance)")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkg)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}

	sum := Summary{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Benchmarks: map[string]Entry{},
	}
	var echoed bytes.Buffer
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(&echoed, line)
		fmt.Println(line)
		name, e, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		if prev, seen := sum.Benchmarks[name]; !seen || e.NsPerOp < prev.NsPerOp {
			sum.Benchmarks[name] = e
		}
	}
	if err := cmd.Wait(); err != nil {
		fatal(fmt.Errorf("go test failed: %w", err))
	}
	if len(sum.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark results parsed from output:\n%s", echoed.String()))
	}

	if *baseline != "" {
		sum.Baseline = readSummary(*baseline).Benchmarks
	}

	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks)\n", *out, len(sum.Benchmarks))

	if *compare != "" {
		if *allocTol < 0 {
			*allocTol = *tolerance
		}
		gate := readSummary(*compare)
		pass, compared := reportComparison(os.Stderr, gate.Benchmarks, sum.Benchmarks, *tolerance, *allocTol)
		if compared == 0 {
			fatal(fmt.Errorf("no benchmarks in common with %s — wrong -bench regexp?", *compare))
		}
		if !pass {
			os.Exit(1)
		}
	}
}

// readSummary loads a summary file or dies.
func readSummary(path string) Summary {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		fatal(fmt.Errorf("parsing %s: %w", path, err))
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
