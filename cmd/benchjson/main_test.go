package main

import (
	"strings"
	"testing"
)

func TestBenchLineStripsGOMAXPROCSSuffix(t *testing.T) {
	cases := []struct {
		line, name string
	}{
		// Single-core machines emit no suffix.
		{"BenchmarkFig04SGEMMSummit \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		// Multi-core machines append -GOMAXPROCS; keys must stay
		// machine-independent.
		{"BenchmarkFig04SGEMMSummit-8 \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		{"BenchmarkExtCampaign-128 \t     135\t   9599982 ns/op",
			"BenchmarkExtCampaign"},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if m == nil {
			t.Fatalf("no match for %q", c.line)
		}
		if m[1] != c.name {
			t.Errorf("parsed name %q, want %q (line %q)", m[1], c.name, c.line)
		}
	}
}

// TestCompareCatchesInjectedSlowdown is the regression gate's
// acceptance check: a benchmark whose ns/op doubles against the
// baseline must be reported and fail the gate at 25% tolerance.
func TestCompareCatchesInjectedSlowdown(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkFig04SGEMMSummit": {NsPerOp: 13_000_000, AllocsPerOp: 49_000},
		"BenchmarkExtCampaign":      {NsPerOp: 9_200_000, AllocsPerOp: 78_000},
	}
	cur := map[string]Entry{
		"BenchmarkFig04SGEMMSummit": {NsPerOp: 26_000_000, AllocsPerOp: 49_000}, // injected 2x slowdown
		"BenchmarkExtCampaign":      {NsPerOp: 9_300_000, AllocsPerOp: 78_000},
	}
	regs := compareSummaries(base, cur, 0.25, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the injected slowdown", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkFig04SGEMMSummit" || r.Metric != "ns/op" || r.Ratio != 2.0 {
		t.Errorf("regression = %+v, want Fig04 ns/op at 2.0x", r)
	}

	var out strings.Builder
	pass, compared := reportComparison(&out, base, cur, 0.25, 0.25)
	if pass {
		t.Error("reportComparison passed a 2x slowdown")
	}
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("report does not show the 2x ratio:\n%s", out.String())
	}
}

// TestCompareCatchesAllocRegression: allocs/op is gated independently
// of ns/op (an alloc explosion can hide inside timing noise).
func TestCompareCatchesAllocRegression(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 100}}
	cur := map[string]Entry{"BenchmarkX": {NsPerOp: 1001, AllocsPerOp: 200}}
	regs := compareSummaries(base, cur, 0.25, 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v, want one allocs/op finding", regs)
	}
}

// TestComparePassesWithinTolerance: noise inside the band and
// benchmarks without a counterpart must not fail the gate.
func TestComparePassesWithinTolerance(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkX":       {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkRetired": {NsPerOp: 500, AllocsPerOp: 50},
	}
	cur := map[string]Entry{
		"BenchmarkX":   {NsPerOp: 1200, AllocsPerOp: 110}, // +20%, within 25%
		"BenchmarkNew": {NsPerOp: 9999, AllocsPerOp: 9999},
	}
	if regs := compareSummaries(base, cur, 0.25, 0.25); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	pass, compared := reportComparison(&strings.Builder{}, base, cur, 0.25, 0.25)
	if !pass || compared != 1 {
		t.Errorf("pass=%v compared=%d, want pass with 1 overlapping benchmark", pass, compared)
	}
}

// TestCompareImprovementPasses: getting faster is never a regression.
func TestCompareImprovementPasses(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 100}}
	cur := map[string]Entry{"BenchmarkX": {NsPerOp: 400, AllocsPerOp: 10}}
	if regs := compareSummaries(base, cur, 0.25, 0.25); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none for an improvement", regs)
	}
}
