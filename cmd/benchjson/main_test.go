package main

import "testing"

func TestBenchLineStripsGOMAXPROCSSuffix(t *testing.T) {
	cases := []struct {
		line, name string
	}{
		// Single-core machines emit no suffix.
		{"BenchmarkFig04SGEMMSummit \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		// Multi-core machines append -GOMAXPROCS; keys must stay
		// machine-independent.
		{"BenchmarkFig04SGEMMSummit-8 \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		{"BenchmarkExtCampaign-128 \t     135\t   9599982 ns/op",
			"BenchmarkExtCampaign"},
	}
	for _, c := range cases {
		m := benchLine.FindStringSubmatch(c.line)
		if m == nil {
			t.Fatalf("no match for %q", c.line)
		}
		if m[1] != c.name {
			t.Errorf("parsed name %q, want %q (line %q)", m[1], c.name, c.line)
		}
	}
}
