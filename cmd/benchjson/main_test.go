package main

import (
	"strings"
	"testing"
)

func TestParseBenchLineStripsGOMAXPROCSSuffix(t *testing.T) {
	cases := []struct {
		line, name string
	}{
		// Single-core machines emit no suffix.
		{"BenchmarkFig04SGEMMSummit \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		// Multi-core machines append -GOMAXPROCS; keys must stay
		// machine-independent.
		{"BenchmarkFig04SGEMMSummit-8 \t      80\t  14103702 ns/op\t 2741793 B/op\t   48725 allocs/op",
			"BenchmarkFig04SGEMMSummit"},
		{"BenchmarkExtCampaign-128 \t     135\t   9599982 ns/op",
			"BenchmarkExtCampaign"},
	}
	for _, c := range cases {
		name, e, ok := parseBenchLine(c.line)
		if !ok {
			t.Fatalf("no match for %q", c.line)
		}
		if name != c.name {
			t.Errorf("parsed name %q, want %q (line %q)", name, c.name, c.line)
		}
		if e.NsPerOp == 0 || e.Iterations == 0 {
			t.Errorf("entry %+v missing ns/op or iterations (line %q)", e, c.line)
		}
	}
}

// TestParseBenchLineCustomMetrics: custom b.ReportMetric units sort
// between ns/op and B/op in go test output; the parser must keep the
// standard fields AND collect the custom pairs.
func TestParseBenchLineCustomMetrics(t *testing.T) {
	line := "BenchmarkReplayBurst-8 \t      36\t  32756939 ns/op\t        10.47 p99-ms\t         9.370 ttfl-ms\t 6049240 B/op\t   49204 allocs/op"
	name, e, ok := parseBenchLine(line)
	if !ok {
		t.Fatalf("no match for %q", line)
	}
	if name != "BenchmarkReplayBurst" {
		t.Errorf("name = %q", name)
	}
	if e.NsPerOp != 32756939 || e.BytesPerOp != 6049240 || e.AllocsPerOp != 49204 || e.Iterations != 36 {
		t.Errorf("standard fields = %+v", e)
	}
	if e.Metrics["p99-ms"] != 10.47 || e.Metrics["ttfl-ms"] != 9.370 {
		t.Errorf("custom metrics = %v, want p99-ms 10.47 and ttfl-ms 9.370", e.Metrics)
	}

	if _, _, ok := parseBenchLine("ok  \tgpuvar\t12.3s"); ok {
		t.Error("non-benchmark line parsed")
	}
	if _, _, ok := parseBenchLine("BenchmarkX-8 garbage 123 ns/op"); ok {
		t.Error("malformed iteration count parsed")
	}
}

// TestCompareCatchesInjectedSlowdown is the regression gate's
// acceptance check: a benchmark whose ns/op doubles against the
// baseline must be reported and fail the gate at 25% tolerance.
func TestCompareCatchesInjectedSlowdown(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkFig04SGEMMSummit": {NsPerOp: 13_000_000, AllocsPerOp: 49_000},
		"BenchmarkExtCampaign":      {NsPerOp: 9_200_000, AllocsPerOp: 78_000},
	}
	cur := map[string]Entry{
		"BenchmarkFig04SGEMMSummit": {NsPerOp: 26_000_000, AllocsPerOp: 49_000}, // injected 2x slowdown
		"BenchmarkExtCampaign":      {NsPerOp: 9_300_000, AllocsPerOp: 78_000},
	}
	regs := compareSummaries(base, cur, 0.25, 0.25)
	if len(regs) != 1 {
		t.Fatalf("regressions = %v, want exactly the injected slowdown", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkFig04SGEMMSummit" || r.Metric != "ns/op" || r.Ratio != 2.0 {
		t.Errorf("regression = %+v, want Fig04 ns/op at 2.0x", r)
	}

	var out strings.Builder
	pass, compared := reportComparison(&out, base, cur, 0.25, 0.25)
	if pass {
		t.Error("reportComparison passed a 2x slowdown")
	}
	if compared != 2 {
		t.Errorf("compared = %d, want 2", compared)
	}
	if !strings.Contains(out.String(), "2.00x") {
		t.Errorf("report does not show the 2x ratio:\n%s", out.String())
	}
}

// TestCompareCatchesAllocRegression: allocs/op is gated independently
// of ns/op (an alloc explosion can hide inside timing noise).
func TestCompareCatchesAllocRegression(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 100}}
	cur := map[string]Entry{"BenchmarkX": {NsPerOp: 1001, AllocsPerOp: 200}}
	regs := compareSummaries(base, cur, 0.25, 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v, want one allocs/op finding", regs)
	}
}

// TestComparePassesWithinTolerance: noise inside the band and
// benchmarks without a counterpart must not fail the gate.
func TestComparePassesWithinTolerance(t *testing.T) {
	base := map[string]Entry{
		"BenchmarkX":       {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkRetired": {NsPerOp: 500, AllocsPerOp: 50},
	}
	cur := map[string]Entry{
		"BenchmarkX":   {NsPerOp: 1200, AllocsPerOp: 110}, // +20%, within 25%
		"BenchmarkNew": {NsPerOp: 9999, AllocsPerOp: 9999},
	}
	if regs := compareSummaries(base, cur, 0.25, 0.25); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none", regs)
	}
	pass, compared := reportComparison(&strings.Builder{}, base, cur, 0.25, 0.25)
	if !pass || compared != 1 {
		t.Errorf("pass=%v compared=%d, want pass with 1 overlapping benchmark", pass, compared)
	}
}

// TestCompareImprovementPasses: getting faster is never a regression.
func TestCompareImprovementPasses(t *testing.T) {
	base := map[string]Entry{"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 100}}
	cur := map[string]Entry{"BenchmarkX": {NsPerOp: 400, AllocsPerOp: 10}}
	if regs := compareSummaries(base, cur, 0.25, 0.25); len(regs) != 0 {
		t.Fatalf("regressions = %v, want none for an improvement", regs)
	}
}
