// Command clustergen instantiates a modeled cluster fleet and prints its
// composition: topology, sampled manufacturing spread, thermal
// environment, and planted defects. Useful to inspect exactly which
// hardware an experiment seed produces.
//
// Usage:
//
//	clustergen -cluster Summit -seed 2022
//	clustergen -cluster Longhorn -defects
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gpuvar/internal/cluster"
	"gpuvar/internal/report"
	"gpuvar/internal/stats"
)

func main() {
	var (
		name        = flag.String("cluster", "Longhorn", "cluster name")
		seed        = flag.Uint64("seed", 2022, "fleet instantiation seed")
		defectsOnly = flag.Bool("defects", false, "print only the planted defects")
	)
	flag.Parse()

	spec, ok := cluster.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "clustergen: unknown cluster %q\n", *name)
		os.Exit(2)
	}
	fleet := spec.Instantiate(*seed)

	if !*defectsOnly {
		fmt.Printf("%s: %d GPUs (%s) across %d nodes, %s cooled, seed %d\n",
			spec.Name, spec.NumGPUs(), spec.SKU().Name, spec.NumNodes(),
			spec.Cooling.Cooling, *seed)

		var volts, ambients, resists []float64
		for _, m := range fleet.Members {
			volts = append(volts, m.Chip.VoltFactor)
			ambients = append(ambients, m.Therm.AmbientC)
			resists = append(resists, m.Therm.ResistCPerW)
		}
		var t report.Table
		t.Header = []string{"Parameter", "Min", "Median", "Max"}
		t.AddRow("V/F quality factor",
			fmt.Sprintf("%.4f", stats.Min(volts)),
			fmt.Sprintf("%.4f", stats.Median(volts)),
			fmt.Sprintf("%.4f", stats.Max(volts)))
		t.AddRow("inlet temperature C",
			fmt.Sprintf("%.1f", stats.Min(ambients)),
			fmt.Sprintf("%.1f", stats.Median(ambients)),
			fmt.Sprintf("%.1f", stats.Max(ambients)))
		t.AddRow("thermal resistance C/W",
			fmt.Sprintf("%.3f", stats.Min(resists)),
			fmt.Sprintf("%.3f", stats.Median(resists)),
			fmt.Sprintf("%.3f", stats.Max(resists)))
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "clustergen:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	def := fleet.Defective()
	fmt.Printf("planted defects: %d GPU(s)\n", len(def))
	sort.Slice(def, func(i, j int) bool { return def[i].Chip.ID < def[j].Chip.ID })
	for _, m := range def {
		fmt.Printf("  %-26s %s\n", m.Chip.ID, m.Chip.Defect)
	}
}
