// Command gpuvar runs one variability characterization experiment: a
// workload across (nearly) every GPU of a modeled cluster, reporting the
// box-plot summaries, correlations, and flagged outliers of the paper's
// methodology.
//
// Usage:
//
//	gpuvar -cluster Longhorn -workload sgemm
//	gpuvar -cluster Summit -workload sgemm -fraction 0.1 -runs 3
//	gpuvar -cluster Longhorn -workload resnet-multi -seed 7
//	gpuvar -cluster CloudLab -workload sgemm -cap 150
package main

import (
	"flag"
	"fmt"
	"os"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/report"
	"gpuvar/internal/workload"
)

func main() {
	var (
		clusterName = flag.String("cluster", "Longhorn", "cluster: CloudLab, Longhorn, Frontera, Vortex, Summit, Corona")
		wlName      = flag.String("workload", "sgemm", "workload: sgemm, resnet-multi, resnet-single, bert, lammps, pagerank")
		seed        = flag.Uint64("seed", 2022, "fleet instantiation seed")
		fraction    = flag.Float64("fraction", 1.0, "fraction of observed GPUs to measure")
		runs        = flag.Int("runs", 1, "measurement repetitions per GPU")
		iters       = flag.Int("iterations", 0, "override workload iterations (0 = paper default)")
		capW        = flag.Float64("cap", 0, "administrative power limit in watts (0 = TDP)")
		transient   = flag.Bool("transient", false, "use the tick-level simulator (small fleets only)")
		outliers    = flag.Bool("outliers", true, "print the early-warning outlier report")
		csvPath     = flag.String("csv", "", "also write per-GPU measurements to this CSV file")
	)
	flag.Parse()

	spec, ok := cluster.ByName(*clusterName)
	if !ok {
		fmt.Fprintf(os.Stderr, "gpuvar: unknown cluster %q\n", *clusterName)
		os.Exit(2)
	}
	wl, err := workload.ByName(*wlName, spec.SKU())
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvar:", err)
		os.Exit(2)
	}
	if *iters > 0 {
		wl.Iterations = *iters
	}
	exp := core.Experiment{
		Cluster:   spec,
		Workload:  wl,
		Seed:      *seed,
		Fraction:  *fraction,
		Runs:      *runs,
		AdminCapW: *capW,
		Transient: *transient,
	}
	res, err := core.Run(exp)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvar:", err)
		os.Exit(1)
	}

	s := res.Summarize()
	fmt.Printf("%s on %s: %d GPUs measured (seed %d, %d run(s))\n",
		wl.Name, spec.Name, s.GPUs, *seed, *runs)
	fmt.Printf("performance: median %.1f ms, variation %.1f%%, %d outliers\n",
		s.MedianMs, s.PerfVar*100, s.NOutliers)
	fmt.Printf("variation:   freq %.1f%%  power %.1f%%  temp %.1f%%\n",
		s.FreqVar*100, s.PowerVar*100, s.TempVar*100)
	c := s.Corr
	fmt.Printf("correlation: perf-freq %+.2f  perf-temp %+.2f  perf-power %+.2f  power-temp %+.2f\n\n",
		c.PerfFreq, c.PerfTemp, c.PerfPower, c.PowerTemp)

	for _, m := range []core.Metric{core.Perf, core.Freq, core.Power, core.Temp} {
		chart := report.BoxChart{Title: m.String(), Width: 64}
		grouped := map[string][]float64{}
		for _, meas := range res.PerAG {
			grouped[meas.Loc.Group()] = append(grouped[meas.Loc.Group()], m.Of(meas))
		}
		for _, g := range res.GroupLabels() {
			if err := chart.Add(g, grouped[g]); err != nil {
				fmt.Fprintln(os.Stderr, "gpuvar:", err)
				os.Exit(1)
			}
		}
		if err := chart.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gpuvar:", err)
			os.Exit(1)
		}
		fmt.Println()
	}

	imp := res.Impact(0.06, 4)
	fmt.Printf("user impact: %.0f%% of GPUs are >6%% slower than the fastest; "+
		"P(slow GPU) = %.0f%% for 1-GPU jobs, %.0f%% for 4-GPU jobs\n\n",
		imp.SlowFraction*100, imp.PSingleGPU*100, imp.PMultiGPU*100)

	if *outliers {
		fmt.Print(core.FormatSuspects(res.OutlierReport()))
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gpuvar:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "gpuvar:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d rows to %s\n", len(res.PerAG), *csvPath)
	}
}
