// Command gpuvard serves the characterization suite over HTTP: the full
// figure/table catalog, ad-hoc experiments, and campaign simulations as
// JSON (see internal/service for the routes and caching layers).
//
// Usage:
//
//	gpuvard                         # listen on :8080, quick settings
//	gpuvard -addr :9090 -seed 7
//	gpuvard -summit-fraction 1.0    # full-scale Summit figures (slow)
//
// Probe it with curl or hammer it with cmd/loadgen:
//
//	curl localhost:8080/v1/figures
//	curl localhost:8080/v1/figures/fig2
//	curl 'localhost:8080/v1/experiments/sgemm?cluster=CloudLab&runs=3'
//	curl -X POST -d '{"cluster":"Vortex","injection":{"day":4,"node_id":"v003-n01","kind":"power-brake"}}' localhost:8080/v1/campaign
//	curl -X POST -d '{"cluster":"CloudLab","axis":"powercap","values":[300,250,200,150,100]}' localhost:8080/v1/sweep
//	curl localhost:8080/v1/stats
//	curl localhost:8080/v1/healthz
//
// The analytical estimator answers sweep-shaped questions in
// microseconds from a calibrated closed form instead of simulating —
// up to 1024 values per request, every point carrying an error bound —
// and "adaptive" sweeps pre-screen wide axes, simulating only the
// values the estimator cannot vouch for (-estimate-anchors tunes how
// many full-simulation anchors each calibration spends):
//
//	curl -X POST -d '{"cluster":"CloudLab","axis":"powercap","values":[300,250,200,150,100]}' localhost:8080/v1/estimate
//	curl 'localhost:8080/v1/estimate?cluster=CloudLab&axis=ambient&values=-8,-4,0,4,8'
//	curl -X POST -d '{"axis":"powercap","values":[300,290,280,270,260,250],"adaptive":true,"threshold":0.05}' localhost:8080/v1/sweep
//
// Long computations stream instead of buffering — NDJSON, one line per
// completed shard, whose concatenated payloads are byte-identical to
// the synchronous response:
//
//	curl -N 'localhost:8080/v1/stream/sweep?cluster=CloudLab&axis=powercap&values=300,250,200'
//	curl -N 'localhost:8080/v1/stream/experiments/sgemm?cluster=CloudLab'
//
// Heavy computations can be submitted asynchronously instead of held
// on the connection — 202 + a poll URL, progress, result, and cancel.
// "class" selects the scheduling class (batch by default; interactive
// jumps saturated batch queues):
//
//	curl -X POST -d '{"kind":"sweep","sweep":{"cluster":"Summit","axis":"fraction","values":[0.02,0.05,0.1]}}' localhost:8080/v1/jobs
//	curl localhost:8080/v1/jobs/<id>           # state + shards done/total
//	curl localhost:8080/v1/jobs/<id>/result    # the finished response
//	curl -X DELETE localhost:8080/v1/jobs/<id> # cancel
//	curl -N localhost:8080/v1/jobs/<id>/stream # attach any time: replay + live tail
//	curl 'localhost:8080/v1/jobs?limit=10&client=team-a&state=done'
//
// Multi-tenancy: requests are attributed to a client — the X-API-Key
// header if sent, the remote address otherwise. Batch job queues are
// fair-shared across clients (stride scheduling, -client-weight team-a=4
// to favor one), each client's queue depth is bounded separately from
// the class-wide bound (-max-queued-per-client), and 429 responses say
// which scope shed. Per-client counters ride /v1/stats and /metrics
// (Prometheus text format):
//
//	curl -H 'X-API-Key: team-a' -X POST -d '...' localhost:8080/v1/jobs
//	curl localhost:8080/metrics
//
// Every synchronous computation is deadline-bounded (-timeout, default
// 30s) and cancels mid-run when the client disconnects; async jobs and
// streams get the batch budget (-job-timeout, default 10m), jobs run
// with bounded per-class concurrency (-max-jobs) behind a bounded batch
// queue (-max-queued-jobs; past it, submissions shed with 429). All
// elastic worker pools draw from one process-wide weighted token budget
// (-budget, default GOMAXPROCS) with an interactive reserve, so nested
// job graphs cannot oversubscribe the scheduler. The fleet cache's LRU
// bound (-fleet-cache) caps how many distinct (spec, seed) fleets the
// server retains.
//
// Resilience (see the doc.go "Resilience" section for the full story):
//
//	-retries 3 -retry-backoff 1ms   per-shard retry of transient failures
//	-hedge-after 200ms              duplicate straggling shard attempts
//	-data-dir /var/lib/gpuvar       crash-safe async jobs: lifecycle +
//	                                results journaled and replayed on boot
//	-journal-sync terminal          journal fsync policy (terminal,
//	                                always, never)
//	-faults 'engine.shard.pre=error:0.3'
//	                                arm fault injection for chaos drills
//	                                (also $GPUVARD_FAULTS); sites and
//	                                trigger counts appear on /v1/healthz,
//	                                which reports status "degraded" while
//	                                armed
//
// Distributed serving: hand every replica the same fleet-wide -peers
// list (each drops its own -self-url) and sweep shards fan out across
// the fleet over POST /v1/internal/shards, byte-identical to local
// serving (see the doc.go "Distribution" section):
//
//	gpuvard -addr :8081 -self-url http://h1:8081 -peers http://h1:8081,http://h2:8082
//	-route-policy affinity          rendezvous-hash each shard onto the
//	                                replica whose fleet cache is warm
//	                                (roundrobin and leastloaded too)
//	-peer-probe 2s                  health-probe cadence: failing peers
//	                                are ejected, recovered ones readmitted
//	curl localhost:8081/v1/          # route discovery document
//	curl localhost:8081/v1/replicas  # membership + dispatch counters
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gpuvar/internal/cluster"
	"gpuvar/internal/engine"
	"gpuvar/internal/faults"
	"gpuvar/internal/figures"
	"gpuvar/internal/jobs"
	"gpuvar/internal/service"
)

func main() {
	var (
		addr            = flag.String("addr", ":8080", "listen address")
		seed            = flag.Uint64("seed", 2022, "default fleet instantiation seed")
		iters           = flag.Int("iterations", 0, "default SGEMM repetitions (0 = quick setting)")
		summit          = flag.Float64("summit-fraction", 0, "default Summit coverage fraction (0 = quick setting)")
		respLRU         = flag.Int("response-cache", 256, "response LRU size (entries)")
		sessLRU         = flag.Int("session-cache", 4, "figure-session LRU size (distinct configs)")
		fleetLRU        = flag.Int("fleet-cache", cluster.DefaultFleetCacheCap, "fleet LRU size (distinct (spec, seed) instantiations)")
		timeout         = flag.Duration("timeout", 30*time.Second, "per-request computation deadline (negative disables)")
		jobTimeout      = flag.Duration("job-timeout", 10*time.Minute, "per-async-job (and per-stream) computation deadline (negative disables)")
		maxJobs         = flag.Int("max-jobs", 2, "async jobs executing concurrently, per scheduling class")
		maxQueued       = flag.Int("max-queued-jobs", 16, "batch-class jobs queued before submissions shed with 429 (negative disables)")
		maxQueuedClient = flag.Int("max-queued-per-client", 8, "one client's queued batch jobs before its submissions shed with 429 (negative disables)")
		jobTTL          = flag.Duration("job-ttl", 10*time.Minute, "finished-job retention before results expire")
		budget          = flag.Int("budget", 0, "worker-token budget for elastic engine pools (0 = GOMAXPROCS)")
		estAnchors      = flag.Int("estimate-anchors", 0, "full-simulation anchors per estimator calibration, 2..5 (0 = default 3)")

		retries      = flag.Int("retries", 3, "total attempts per engine shard for transient failures (<=1 disables retry)")
		retryBackoff = flag.Duration("retry-backoff", time.Millisecond, "base backoff before a shard retry (jittered, doubling, capped at 100x)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "duplicate a shard attempt still running after this long (0 disables hedging)")
		dataDir      = flag.String("data-dir", "", "directory for the crash-safe job journal (empty = jobs are in-memory only)")
		journalSync  = flag.String("journal-sync", "terminal", "job-journal fsync policy: terminal, always, or never")
		faultSpec    = flag.String("faults", "", "fault-injection spec, e.g. 'engine.shard.pre=error:0.3' (also $GPUVARD_FAULTS)")
		faultSeed    = flag.Uint64("fault-seed", 1, "seed for the fault registry's per-site RNG streams")

		peers       = flag.String("peers", "", "comma-separated base URLs of peer replicas to dispatch sweep shards to")
		routePolicy = flag.String("route-policy", "", "shard routing policy: affinity (default), roundrobin, or leastloaded")
		selfURL     = flag.String("self-url", "", "this replica's own base URL, so it can drop itself from -peers lists shared fleet-wide")
		peerProbe   = flag.Duration("peer-probe", 2*time.Second, "peer health-probe interval (negative disables probing; peers then stay unused)")

		recordTrace = flag.String("record-trace", "", "record replayable traffic to this trace file (see internal/traffic; loadgen -replay plays it back)")
	)
	clientWeights := map[string]int{}
	flag.Func("client-weight", "per-client fair-share weight as client=N (repeatable; unlisted clients weigh 1)", func(v string) error {
		name, val, ok := strings.Cut(v, "=")
		if !ok || name == "" {
			return fmt.Errorf("want client=N, got %q", v)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return fmt.Errorf("weight %q: want a positive integer", val)
		}
		clientWeights[name] = w
		return nil
	})
	flag.Parse()

	cluster.DefaultFleetCache.SetCap(*fleetLRU)
	engine.SetBudgetCapacity(*budget)
	engine.SetRetryPolicy(engine.RetryPolicy{MaxAttempts: *retries, BaseBackoff: *retryBackoff})
	engine.SetHedgePolicy(engine.HedgePolicy{After: *hedgeAfter})

	spec := *faultSpec
	if spec == "" {
		spec = os.Getenv("GPUVARD_FAULTS")
	}
	faults.SetSeed(*faultSeed)
	if err := faults.Arm(spec); err != nil {
		fmt.Fprintln(os.Stderr, "gpuvard:", err)
		os.Exit(2)
	}
	if spec != "" {
		fmt.Fprintf(os.Stderr, "gpuvard: fault injection armed: %s\n", spec)
	}

	sync, err := jobs.ParseSyncPolicy(*journalSync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvard:", err)
		os.Exit(2)
	}
	srv, err := service.New(service.Options{
		Figures: figures.Config{
			Seed:           *seed,
			Iterations:     *iters,
			SummitFraction: *summit,
		},
		ResponseCacheSize:      *respLRU,
		SessionCacheSize:       *sessLRU,
		RequestTimeout:         *timeout,
		JobTimeout:             *jobTimeout,
		MaxRunningJobs:         *maxJobs,
		MaxQueuedJobs:          *maxQueued,
		MaxQueuedJobsPerClient: *maxQueuedClient,
		ClientWeights:          clientWeights,
		JobTTL:                 *jobTTL,
		DataDir:                *dataDir,
		JournalSync:            sync,
		EstimateAnchors:        *estAnchors,
		Peers:                  splitPeers(*peers),
		RoutePolicy:            *routePolicy,
		SelfURL:                *selfURL,
		PeerProbeInterval:      *peerProbe,
		RecordTrace:            *recordTrace,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gpuvard:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if *recordTrace != "" {
		fmt.Fprintf(os.Stderr, "gpuvard: recording replayable traffic to %s\n", *recordTrace)
	}
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "gpuvard: listening on %s\n", *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "gpuvard:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "gpuvard: shutdown:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "gpuvard: drained, bye")
	}
}

// splitPeers parses the -peers flag: comma-separated URLs, blanks
// dropped, so every replica can receive the identical fleet-wide list.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
