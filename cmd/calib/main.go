// Command calib prints the paper-vs-measured calibration summary used to
// populate EXPERIMENTS.md. It is a maintenance tool, not a deliverable.
package main

import (
	"fmt"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/gpu"
	"gpuvar/internal/stats"
	"gpuvar/internal/workload"
)

func main() {
	seed := uint64(2022)
	iters := 30
	for _, spec := range []cluster.Spec{cluster.Longhorn(), cluster.Summit(), cluster.Corona(), cluster.Vortex(), cluster.Frontera()} {
		wl := workload.SGEMMForCluster(spec.SKU())
		wl.Iterations = iters
		exp := core.Experiment{Cluster: spec, Workload: wl, Seed: seed}
		if spec.Name == "Summit" {
			exp.Fraction = 0.25
		}
		r, _ := core.Run(exp)
		s := r.Summarize()
		fb, _ := r.Box(core.Freq)
		tb, _ := r.Box(core.Temp)
		pb, _ := r.Box(core.Power)
		fmt.Printf("%s|perf=%.1f%%|freq=%.1f%% (%.0f-%.0f)|pow=%.1f%% (%.0f-%.0f)|tempRange=%.0fC (med %.0f)|out=%d|pf=%+.2f|pt=%+.2f|pp=%+.2f|powtemp=%+.2f|med=%.0fms\n",
			s.Cluster, s.PerfVar*100, s.FreqVar*100, fb.LowerWhisker, fb.UpperWhisker,
			s.PowerVar*100, pb.LowerWhisker, pb.UpperWhisker, tb.Range(), tb.Q2, s.NOutliers,
			s.Corr.PerfFreq, s.Corr.PerfTemp, s.Corr.PerfPower, s.Corr.PowerTemp, s.MedianMs)
	}
	// per-GPU variation
	for _, spec := range []cluster.Spec{cluster.Longhorn(), cluster.Summit(), cluster.Corona()} {
		wl := workload.SGEMMForCluster(spec.SKU())
		wl.Iterations = 12
		exp := core.Experiment{Cluster: spec, Workload: wl, Seed: seed, Runs: 4}
		if spec.Name == "Summit" {
			exp.Fraction = 0.06
		}
		r, _ := core.Run(exp)
		fmt.Printf("perGPU|%s|median=%.2f%%\n", spec.Name, stats.Median(r.PerGPUVariation())*100)
	}
	// apps
	sku := gpu.V100SXM2()
	mk := func(w workload.Workload, it int) workload.Workload { w.Iterations = it; w.WarmupIters = 1; return w }
	rows, _ := core.ApplicationStudy(core.Experiment{Cluster: cluster.Longhorn(), Seed: seed},
		[]workload.Workload{
			mk(workload.ResNet50(4, 64, sku), 60),
			mk(workload.ResNet50(1, 16, sku), 60),
			mk(workload.BERT(4, 64, sku), 60),
			mk(workload.LAMMPS(8, 16, 16, sku), 20),
			mk(workload.PageRank(643994, 6250000, sku), 30),
		})
	for _, row := range rows {
		fmt.Printf("app|%s|perf=%.1f%%|pow=%.1f%%|freq=%.1f%%|med=%.0fms|pf=%+.2f|class=%s\n",
			row.Workload, row.PerfVar*100, row.PowerVar*100, row.FreqVar*100, row.MedianMs, row.PerfFreq, row.Class)
	}
	// power sweep
	wl := workload.SGEMMForCluster(sku)
	wl.Iterations = 20
	points, _ := core.PowerLimitSweep(core.Experiment{Cluster: cluster.CloudLab(), Workload: wl, Seed: seed, Runs: 4},
		[]float64{300, 250, 200, 150, 100})
	for _, p := range points {
		fmt.Printf("sweep|%.0fW|var=%.1f%%|med=%.0fms\n", p.CapW, p.PerfVar*100, p.MedianMs)
	}
	// projection
	lh, _ := core.Run(core.Experiment{Cluster: cluster.Longhorn(), Workload: wl, Seed: seed})
	fmt.Printf("projection|longhorn=%.1f%%|atSummitScale=%.1f%%\n",
		lh.Variation(core.Perf)*100, lh.ProjectedVariationAt(27648)*100)
	// impact
	imp := lh.Impact(0.06, 4)
	fmt.Printf("impact|slowFrac=%.0f%%|p1=%.0f%%|p4=%.0f%%\n", imp.SlowFraction*100, imp.PSingleGPU*100, imp.PMultiGPU*100)
}
