package stats

import (
	"math"
	"testing"

	"gpuvar/internal/rng"
)

func gaussianSample(n int, mean, sd float64, seed uint64) []float64 {
	r := rng.New(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Gaussian(mean, sd)
	}
	return xs
}

func TestBootstrapCICoversTruth(t *testing.T) {
	// The CI for the mean of a known Gaussian should usually contain the
	// true mean and have width ~ 2·z·sd/sqrt(n).
	xs := gaussianSample(400, 2400, 50, 1)
	ci := BootstrapCI(xs, Mean, 500, 0.95, rng.New(2))
	if !ci.Contains(2400) {
		t.Fatalf("CI [%v, %v] misses the true mean", ci.Lo, ci.Hi)
	}
	wantWidth := 2 * 1.96 * 50 / math.Sqrt(400)
	if ci.Width() < wantWidth/2 || ci.Width() > wantWidth*2 {
		t.Fatalf("CI width %v, want ~%v", ci.Width(), wantWidth)
	}
	if ci.Point != Mean(xs) {
		t.Fatal("point estimate should be the full-sample statistic")
	}
}

func TestBootstrapCIOrdering(t *testing.T) {
	xs := gaussianSample(100, 10, 2, 3)
	ci := BootstrapCI(xs, Median, 300, 0.9, rng.New(4))
	if !(ci.Lo <= ci.Point && ci.Point <= ci.Hi) {
		t.Fatalf("interval [%v, %v] does not bracket point %v", ci.Lo, ci.Hi, ci.Point)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if ci := BootstrapCI(nil, Mean, 100, 0.95, rng.New(1)); !math.IsNaN(ci.Point) {
		t.Fatal("empty input should give NaN")
	}
	if ci := BootstrapCI([]float64{1, 2}, Mean, 1, 0.95, rng.New(1)); !math.IsNaN(ci.Lo) {
		t.Fatal("too few resamples should give NaN bounds")
	}
	if ci := BootstrapCI([]float64{1, 2}, Mean, 100, 0.95, nil); !math.IsNaN(ci.Point) {
		t.Fatal("nil rng should give NaN")
	}
}

func TestVariationCIOnFleetLikeData(t *testing.T) {
	// A fleet-like SGEMM distribution: the variation CI should be a
	// tightish band around the point estimate.
	xs := gaussianSample(416, 2500, 55, 5)
	ci := VariationCI(xs, 400, 0.95, rng.New(6))
	if math.IsNaN(ci.Point) || ci.Point <= 0 {
		t.Fatalf("point = %v", ci.Point)
	}
	if ci.Width() > ci.Point {
		t.Fatalf("CI width %v too wide relative to point %v", ci.Width(), ci.Point)
	}
}

func TestBootstrapDeterministic(t *testing.T) {
	xs := gaussianSample(50, 0, 1, 7)
	a := BootstrapCI(xs, Mean, 200, 0.95, rng.New(8))
	b := BootstrapCI(xs, Mean, 200, 0.95, rng.New(8))
	if a.Lo != b.Lo || a.Hi != b.Hi {
		t.Fatal("same seed should reproduce the interval")
	}
}

func TestCoV(t *testing.T) {
	xs := []float64{90, 100, 110}
	if c := CoV(xs); math.Abs(c-0.1) > 0.01 {
		t.Fatalf("CoV = %v", c)
	}
	if !math.IsNaN(CoV(nil)) || !math.IsNaN(CoV([]float64{0, 0})) {
		t.Fatal("degenerate CoV should be NaN")
	}
}

func TestTrimmedMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 1000}
	plain := Mean(xs)
	trimmed := TrimmedMean(xs, 0.1) // drops 1 and 1000
	if trimmed >= plain {
		t.Fatalf("trimming should remove the outlier's pull: %v vs %v", trimmed, plain)
	}
	if math.Abs(trimmed-5.5) > 1e-9 {
		t.Fatalf("trimmed mean = %v, want 5.5", trimmed)
	}
	if TrimmedMean(xs, 0) != plain {
		t.Fatal("zero trim should be the mean")
	}
	if TrimmedMean(xs, 0.5) != Median(xs) {
		t.Fatal("full trim should be the median")
	}
	if !math.IsNaN(TrimmedMean(nil, 0.1)) {
		t.Fatal("empty trimmed mean should be NaN")
	}
}

func TestBootstrapCIBufferReuse(t *testing.T) {
	// Pooled scratch: steady-state BootstrapCI rounds should not allocate
	// per call (the stat here, Mean, is allocation-free). A small bound
	// absorbs sync.Pool slow-path noise.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	r := rng.New(1)
	avg := testing.AllocsPerRun(50, func() {
		BootstrapCI(xs, Mean, 64, 0.95, r)
	})
	if avg > 2 {
		t.Fatalf("BootstrapCI allocates %.1f objects/call; scratch should be pooled", avg)
	}
}
