// Package stats implements the statistical machinery of the paper's
// analysis: quartiles, IQR box-and-whisker summaries with outlier
// classification, range/median variation, correlation coefficients, and
// the power-measurement sample-size methodology.
//
// The paper (§III "IQR & Variability") defines:
//
//	IQR     = Q3 − Q1
//	whiskers = [Q1 − 1.5·IQR, Q3 + 1.5·IQR], clamped to observed data
//	range   = upper whisker − lower whisker
//	variation = range / Q2 (median), outliers excluded
//	outliers = points beyond the whiskers
//
// All functions treat the input slice as read-only.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation needs at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or NaN if empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy default, and
// what the paper's matplotlib box plots use). Returns NaN on empty input.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return xs[0]
	}
	sorted := make([]float64, n)
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes a type-7 quantile on already-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the median of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// BoxPlot is the five-number summary plus outlier classification used
// throughout the paper's figures.
type BoxPlot struct {
	N        int     // number of samples
	Min, Max float64 // extreme observed values (including outliers)
	Q1       float64 // first quartile
	Q2       float64 // median
	Q3       float64 // third quartile
	IQR      float64 // Q3 − Q1
	// LowerWhisker and UpperWhisker are the most extreme data points
	// still within [Q1 − 1.5·IQR, Q3 + 1.5·IQR] (matplotlib convention).
	LowerWhisker float64
	UpperWhisker float64
	Outliers     []float64 // points beyond the whiskers, ascending
}

// NewBoxPlot computes the box-and-whisker summary of xs.
func NewBoxPlot(xs []float64) (BoxPlot, error) {
	if len(xs) == 0 {
		return BoxPlot{}, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	bp := BoxPlot{
		N:   len(sorted),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
		Q1:  quantileSorted(sorted, 0.25),
		Q2:  quantileSorted(sorted, 0.50),
		Q3:  quantileSorted(sorted, 0.75),
	}
	bp.IQR = bp.Q3 - bp.Q1
	loFence := bp.Q1 - 1.5*bp.IQR
	hiFence := bp.Q3 + 1.5*bp.IQR

	// Whiskers extend to the most extreme data point within the fences.
	bp.LowerWhisker = bp.Q1
	bp.UpperWhisker = bp.Q3
	for _, v := range sorted {
		if v >= loFence {
			bp.LowerWhisker = v
			break
		}
	}
	for i := len(sorted) - 1; i >= 0; i-- {
		if sorted[i] <= hiFence {
			bp.UpperWhisker = sorted[i]
			break
		}
	}
	// Whiskers extend outward from the box. At tiny sample sizes an
	// interpolated quartile can fall past the nearest in-fence data
	// point; clamp to the box edge, as drawn box plots do.
	if bp.LowerWhisker > bp.Q1 {
		bp.LowerWhisker = bp.Q1
	}
	if bp.UpperWhisker < bp.Q3 {
		bp.UpperWhisker = bp.Q3
	}
	for _, v := range sorted {
		if v < loFence || v > hiFence {
			bp.Outliers = append(bp.Outliers, v)
		}
	}
	return bp, nil
}

// Range returns the paper's "range": upper whisker − lower whisker.
func (b BoxPlot) Range() float64 { return b.UpperWhisker - b.LowerWhisker }

// Variation returns the paper's variability metric range/Q2. Outliers are
// excluded by construction since the range uses whiskers. Returns NaN if
// the median is zero.
func (b BoxPlot) Variation() float64 {
	if b.Q2 == 0 {
		return math.NaN()
	}
	return b.Range() / b.Q2
}

// Variation is a convenience that computes range/median directly from a
// sample. Returns NaN on empty input or zero median.
func Variation(xs []float64) float64 {
	bp, err := NewBoxPlot(xs)
	if err != nil {
		return math.NaN()
	}
	return bp.Variation()
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// Returns NaN if the lengths differ, n < 2, or either side is constant.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation coefficient, robust to
// the monotone-but-nonlinear relationships seen between frequency and
// runtime under coarse DVFS states.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks assigns average ranks (1-based) with ties averaged.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Histogram bins xs into nbins equal-width bins over [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram computes an equal-width histogram. nbins must be > 0.
func NewHistogram(xs []float64, nbins int) Histogram {
	h := Histogram{Counts: make([]int, nbins)}
	if len(xs) == 0 || nbins <= 0 {
		return h
	}
	h.Lo, h.Hi = Min(xs), Max(xs)
	if h.Hi == h.Lo {
		h.Counts[0] = len(xs)
		return h
	}
	w := (h.Hi - h.Lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - h.Lo) / w)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h
}

// RecommendedSampleSize implements the power-measurement methodology of
// Scogland et al. [31] as used in paper §III: the number of units to
// sample so that the mean is within fractional accuracy lambda of the
// population mean with the given confidence, for a finite population of
// size N with coefficient of variation cv.
//
// It is the standard finite-population-corrected formula
//
//	n0 = (z · cv / lambda)²       (infinite population)
//	n  = n0 / (1 + (n0 − 1)/N)    (finite correction)
//
// The paper used lambda = 0.5% accuracy at 95% confidence and observed a
// sample 2.9× larger than the worst-case recommendation.
func RecommendedSampleSize(population int, cv, lambda, confidence float64) int {
	if population <= 0 || cv <= 0 || lambda <= 0 {
		return 0
	}
	z := zScore(confidence)
	n0 := (z * cv / lambda) * (z * cv / lambda)
	n := n0 / (1 + (n0-1)/float64(population))
	out := int(math.Ceil(n))
	if out > population {
		out = population
	}
	if out < 1 {
		out = 1
	}
	return out
}

// zScore returns the two-sided standard normal critical value for the
// given confidence level via bisection on the normal CDF.
func zScore(confidence float64) float64 {
	if confidence <= 0 {
		return 0
	}
	if confidence >= 1 {
		return math.Inf(1)
	}
	target := 1 - (1-confidence)/2 // upper-tail quantile
	lo, hi := 0.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if normCDF(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// normCDF is the standard normal cumulative distribution function.
func normCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := -10.0, 10.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if normCDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ProjectedRangeAtScale projects the expected whisker-to-whisker range of
// a normal distribution fitted to xs when the sample size grows to n.
// Used by the paper (§IV-D) to compare Longhorn's spread scaled to a
// Summit-sized cluster: with larger n the whiskers creep closer to the
// 1.5·IQR fences, so the projected variation grows slightly (the paper
// projects Longhorn's 9% to 9.4% at Summit scale).
//
// The whisker is the largest observation that is still inside the fence,
// so its expectation is the (1 − 1/(m+1)) quantile of the fence-truncated
// normal, where m = n·P(X ≤ fence) is the expected count inside.
func ProjectedRangeAtScale(xs []float64, n int) float64 {
	if len(xs) < 2 || n < 2 {
		return math.NaN()
	}
	sigma := StdDev(xs)
	if sigma == 0 {
		return 0
	}
	// Standard-normal fence positions for a fitted normal.
	zQ1, zQ3 := NormalQuantile(0.25), NormalQuantile(0.75)
	zFence := zQ3 + 1.5*(zQ3-zQ1) // ≈ 2.698 sigma, symmetric
	pInside := normCDF(zFence)    // one-sided: P(X ≤ upper fence)
	m := float64(n) * pInside
	// Expected largest order statistic among the m points inside the
	// fence, expressed as an unconditional quantile.
	p := pInside * (1 - 1/(m+1))
	zWhisker := NormalQuantile(p)
	// Symmetric distribution: lower whisker mirrors the upper.
	return 2 * sigma * zWhisker
}

// ProjectedVariationAtScale is ProjectedRangeAtScale divided by the
// sample median, matching the paper's variation metric.
func ProjectedVariationAtScale(xs []float64, n int) float64 {
	med := Median(xs)
	if med == 0 {
		return math.NaN()
	}
	return ProjectedRangeAtScale(xs, n) / med
}

// Summary bundles the descriptive statistics most experiments report.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Q1, Median, Q3 float64
	Variation      float64 // range/median per the paper
	NumOutliers    int
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	bp, err := NewBoxPlot(xs)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		N:           bp.N,
		Mean:        Mean(xs),
		Std:         StdDev(xs),
		Min:         bp.Min,
		Max:         bp.Max,
		Q1:          bp.Q1,
		Median:      bp.Q2,
		Q3:          bp.Q3,
		Variation:   bp.Variation(),
		NumOutliers: len(bp.Outliers),
	}, nil
}

// Normalize returns xs divided by its median, the normalization used in
// paper Fig. 1 ("normalized to a median runtime of 1").
func Normalize(xs []float64) []float64 {
	med := Median(xs)
	out := make([]float64, len(xs))
	if med == 0 || math.IsNaN(med) {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / med
	}
	return out
}
