package stats

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvar/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanBasic(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestMeanEmptyNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// population variance is 4; sample variance is 32/7.
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {1, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileSingle(t *testing.T) {
	if q := Quantile([]float64{42}, 0.9); q != 42 {
		t.Fatalf("Quantile single = %v", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestMedianOdd(t *testing.T) {
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("Median = %v", m)
	}
}

func TestBoxPlotNoOutliers(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	bp, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if bp.Q2 != 3 {
		t.Errorf("Q2 = %v", bp.Q2)
	}
	if len(bp.Outliers) != 0 {
		t.Errorf("unexpected outliers %v", bp.Outliers)
	}
	if bp.LowerWhisker != 1 || bp.UpperWhisker != 5 {
		t.Errorf("whiskers %v %v", bp.LowerWhisker, bp.UpperWhisker)
	}
}

func TestBoxPlotDetectsOutlier(t *testing.T) {
	xs := []float64{10, 11, 12, 13, 14, 15, 16, 100}
	bp, err := NewBoxPlot(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Outliers) != 1 || bp.Outliers[0] != 100 {
		t.Fatalf("outliers = %v", bp.Outliers)
	}
	if bp.UpperWhisker != 16 {
		t.Fatalf("upper whisker = %v, want 16", bp.UpperWhisker)
	}
	if bp.Max != 100 {
		t.Fatalf("Max should include outliers, got %v", bp.Max)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if _, err := NewBoxPlot(nil); err != ErrEmpty {
		t.Fatalf("want ErrEmpty, got %v", err)
	}
}

func TestVariationExcludesOutliers(t *testing.T) {
	base := []float64{100, 101, 102, 103, 104, 105, 106, 107}
	withOutlier := append(append([]float64{}, base...), 1000)
	v1 := Variation(base)
	v2 := Variation(withOutlier)
	// Adding a far outlier must not blow up the variation metric,
	// because outliers are beyond the whiskers.
	if v2 > 2*v1+0.05 {
		t.Fatalf("outlier leaked into variation: %v vs %v", v2, v1)
	}
}

func TestVariationZeroMedianNaN(t *testing.T) {
	if !math.IsNaN(Variation([]float64{0, 0, 0})) {
		t.Fatal("zero median should give NaN variation")
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("Pearson = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("Pearson = %v", r)
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	r := rng.New(99)
	n := 5000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm()
	}
	if rho := Pearson(xs, ys); math.Abs(rho) > 0.05 {
		t.Fatalf("independent draws correlate: %v", rho)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("constant series should give NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1})) {
		t.Fatal("length mismatch should give NaN")
	}
}

func TestSpearmanMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // nonlinear but monotone
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("Spearman = %v", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{1, 2, 2, 3}
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("Spearman with ties = %v", r)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0}
	h := NewHistogram(xs, 2)
	if h.Counts[0]+h.Counts[1] != 5 {
		t.Fatalf("histogram lost samples: %v", h.Counts)
	}
	// Bins over [0,1] with width 0.5: {0, 0.1} in bin 0; {0.5, 0.9, 1.0}
	// in bin 1 (the top edge clamps into the last bin).
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("histogram bins = %v", h.Counts)
	}
}

func TestHistogramConstant(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 4)
	if h.Counts[0] != 3 {
		t.Fatalf("constant data should land in bin 0: %v", h.Counts)
	}
}

func TestRecommendedSampleSize(t *testing.T) {
	// Small cv and tight accuracy on a modest population: must recommend
	// a subset, monotone in population size and in cv.
	n1 := RecommendedSampleSize(416, 0.01, 0.005, 0.95)
	if n1 < 1 || n1 > 416 {
		t.Fatalf("n1 = %d out of range", n1)
	}
	n2 := RecommendedSampleSize(416, 0.05, 0.005, 0.95)
	if n2 < n1 {
		t.Fatalf("larger cv should need more samples: %d < %d", n2, n1)
	}
	if RecommendedSampleSize(0, 0.01, 0.005, 0.95) != 0 {
		t.Fatal("zero population should return 0")
	}
}

func TestZScore95(t *testing.T) {
	if z := zScore(0.95); !almost(z, 1.959964, 1e-4) {
		t.Fatalf("z(0.95) = %v", z)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		x := NormalQuantile(p)
		if got := normCDF(x); !almost(got, p, 1e-6) {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestProjectedRangeGrowsWithScale(t *testing.T) {
	r := rng.New(7)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Gaussian(2400, 50)
	}
	small := ProjectedRangeAtScale(xs, 400)
	big := ProjectedRangeAtScale(xs, 27648)
	if !(big > small) {
		t.Fatalf("projection should widen with n: %v vs %v", big, small)
	}
	// But fences cap growth: projecting to an absurd scale stays finite
	// and bounded by the 1.5 IQR fences (≈ 4·sigma·1.349/2... just check
	// against a loose multiple of sigma).
	huge := ProjectedRangeAtScale(xs, 1<<40)
	if huge > 6*50 {
		t.Fatalf("projection should be fence-capped: %v", huge)
	}
}

func TestProjectedVariation(t *testing.T) {
	r := rng.New(8)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = r.Gaussian(2400, 50)
	}
	v := ProjectedVariationAtScale(xs, 27648)
	if v <= 0 || v > 0.3 {
		t.Fatalf("projected variation implausible: %v", v)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3, 4, 100})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Median != 3 || s.NumOutliers != 1 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestNormalizeMedianOne(t *testing.T) {
	xs := []float64{2, 4, 6}
	norm := Normalize(xs)
	if norm[1] != 1 {
		t.Fatalf("median should normalize to 1: %v", norm)
	}
	if xs[0] != 2 {
		t.Fatal("Normalize mutated input")
	}
}

// Property: quartiles are ordered and bounded by min/max for any sample.
func TestBoxPlotOrderingProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%200) + 1
		r := rng.New(seed)
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = r.Gaussian(0, 10)
		}
		bp, err := NewBoxPlot(xs)
		if err != nil {
			return false
		}
		return bp.Min <= bp.LowerWhisker &&
			bp.LowerWhisker <= bp.Q1 &&
			bp.Q1 <= bp.Q2 && bp.Q2 <= bp.Q3 &&
			bp.Q3 <= bp.UpperWhisker &&
			bp.UpperWhisker <= bp.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
			ys[i] = 0.5*xs[i] + r.Norm()
		}
		a := Pearson(xs, ys)
		b := Pearson(ys, xs)
		return a >= -1-1e-9 && a <= 1+1e-9 && almost(a, b, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: outliers plus in-whisker points partition the sample.
func TestOutlierPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Norm()
			if r.Bernoulli(0.05) {
				xs[i] *= 50 // inject outliers
			}
		}
		bp, err := NewBoxPlot(xs)
		if err != nil {
			return false
		}
		in := 0
		for _, v := range xs {
			if v >= bp.LowerWhisker-1e-12 && v <= bp.UpperWhisker+1e-12 {
				in++
			}
		}
		return in+len(bp.Outliers) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkBoxPlot1000(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = NewBoxPlot(xs)
	}
}

func BenchmarkPearson1000(b *testing.B) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	ys := make([]float64, 1000)
	for i := range xs {
		xs[i] = r.Norm()
		ys[i] = r.Norm()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pearson(xs, ys)
	}
}
