package stats

import (
	"math"
	"sort"
	"sync"

	"gpuvar/internal/rng"
)

// Bootstrap resampling for confidence intervals on the paper's
// variability metric. The paper argues statistical significance via the
// sample-size methodology of [31]; bootstrap intervals give per-number
// error bars without distributional assumptions, which matters when the
// statistic (whisker range over median) has no closed-form variance.

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Point      float64
	Lo, Hi     float64
	Confidence float64
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// Width returns Hi − Lo.
func (c CI) Width() float64 { return c.Hi - c.Lo }

// bootstrapBuf holds the resample scratch and estimate accumulator for
// one BootstrapCI call. Pooled so that repeated bootstrap rounds (the
// figure generators compute one CI per group per metric) reuse the same
// two allocations instead of paying them per call.
type bootstrapBuf struct {
	scratch   []float64
	estimates []float64
}

var bootstrapPool = sync.Pool{New: func() any { return &bootstrapBuf{} }}

// grow returns the buffers sized for n samples and r resamples, reusing
// pooled capacity when it suffices.
func (b *bootstrapBuf) grow(n, r int) (scratch, estimates []float64) {
	if cap(b.scratch) < n {
		b.scratch = make([]float64, n)
	}
	if cap(b.estimates) < r {
		b.estimates = make([]float64, 0, r)
	}
	return b.scratch[:n], b.estimates[:0]
}

// BootstrapCI estimates a confidence interval for stat over xs using
// the percentile bootstrap with resamples draws from r. stat must be
// scale-free or otherwise well-defined on resamples of xs (it receives
// a scratch slice it may not retain). Returns a NaN interval when xs is
// empty or resamples < 2.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, confidence float64, r *rng.Source) CI {
	out := CI{Point: math.NaN(), Lo: math.NaN(), Hi: math.NaN(), Confidence: confidence}
	if len(xs) == 0 || resamples < 2 || r == nil {
		return out
	}
	out.Point = stat(xs)
	buf := bootstrapPool.Get().(*bootstrapBuf)
	defer bootstrapPool.Put(buf)
	scratch, estimates := buf.grow(len(xs), resamples)
	for b := 0; b < resamples; b++ {
		for i := range scratch {
			scratch[i] = xs[r.Intn(len(xs))]
		}
		if v := stat(scratch); !math.IsNaN(v) {
			estimates = append(estimates, v)
		}
	}
	buf.estimates = estimates // retain any growth for the next round
	if len(estimates) < 2 {
		return out
	}
	sort.Float64s(estimates)
	alpha := (1 - confidence) / 2
	lo := int(alpha * float64(len(estimates)))
	hi := int((1 - alpha) * float64(len(estimates)))
	if hi >= len(estimates) {
		hi = len(estimates) - 1
	}
	out.Lo, out.Hi = estimates[lo], estimates[hi]
	return out
}

// VariationCI bootstraps the paper's range/median variation metric.
func VariationCI(xs []float64, resamples int, confidence float64, r *rng.Source) CI {
	return BootstrapCI(xs, Variation, resamples, confidence, r)
}

// CoV returns the coefficient of variation (stddev/mean), the quantity
// the sample-size methodology consumes. NaN for empty or zero-mean data.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return StdDev(xs) / m
}

// TrimmedMean returns the mean of xs after discarding the given fraction
// from each tail (e.g. 0.05 drops the top and bottom 5%). It is the
// robust location estimate operators use when one-off profiler glitches
// contaminate a series.
func TrimmedMean(xs []float64, trimFrac float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if trimFrac <= 0 {
		return Mean(xs)
	}
	if trimFrac >= 0.5 {
		return Median(xs)
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	k := int(trimFrac * float64(len(s)))
	s = s[k : len(s)-k]
	return Mean(s)
}
