package dvfs

import (
	"sort"
	"testing"
	"testing/quick"

	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
)

var sgemmAct = gpu.Activity{Compute: 1.0, Memory: 0.6}

func healthyV100() *gpu.Chip {
	return gpu.NewChip(gpu.V100SXM2(), "g", gpu.VariationModel{}, nil)
}

// runToEquilibrium ticks the controller with a self-consistent power and
// thermal loop, then returns the median clock, power, and temperature
// over the final quarter of the run — the same median-of-samples
// aggregation the paper's profilers use, robust to the controller's
// probe oscillations around coarse P-states.
func runToEquilibrium(c *Controller, chip *gpu.Chip, node *thermal.Node, act gpu.Activity, seconds float64) (fMHz, powerW, tempC float64) {
	const dtMs = 1.0
	f := c.FreqMHz()
	settleMs := seconds * 1000 * 0.75
	var fs, ps, ts []float64
	for t := 0.0; t < seconds*1000; t += dtMs {
		p := chip.TotalPower(f, node.TempC, act)
		node.Step(dtMs/1000, p, chip.ThermalResistFactor)
		f = c.Tick(dtMs, p, node.TempC, true)
		if t >= settleMs {
			fs = append(fs, f)
			ps = append(ps, p)
			ts = append(ts, node.TempC)
		}
	}
	return median(fs), median(ps), median(ts)
}

func TestStartsAtIdleClock(t *testing.T) {
	chip := healthyV100()
	c := New(chip, DefaultConfig(), 0)
	if c.FreqMHz() != chip.SKU.IdleClockMHz {
		t.Fatalf("initial clock = %v", c.FreqMHz())
	}
}

func TestParksWhenIdle(t *testing.T) {
	chip := healthyV100()
	c := New(chip, DefaultConfig(), 0)
	c.freqMHz = 1500
	c.Tick(10, 250, 50, false)
	if c.FreqMHz() != chip.SKU.IdleClockMHz {
		t.Fatalf("idle GPU should park: %v", c.FreqMHz())
	}
}

func TestBoostsUnderLightLoad(t *testing.T) {
	// A light kernel never hits the cap, so the clock must climb to max
	// (paper §V: ResNet/LAMMPS/PageRank run pinned at 1530 MHz).
	chip := healthyV100()
	node := thermal.NewNode(thermal.WaterParams(), 0.5, nil)
	c := New(chip, DefaultConfig(), 0)
	act := gpu.Activity{Compute: 0.25, Memory: 0.85}
	f, p, _ := runToEquilibrium(c, chip, node, act, 30)
	if f != chip.SKU.MaxClockMHz {
		t.Fatalf("light load should pin at max clock: %v", f)
	}
	if p >= c.CapW() {
		t.Fatalf("light load should stay under cap: %v", p)
	}
}

func TestThrottlesSGEMMToPaperBand(t *testing.T) {
	// Fig. 2/9/11: V100 SGEMM settles at 1300–1460 MHz just under 300 W.
	chip := healthyV100()
	node := thermal.NewNode(thermal.AirParams(), 0.5, nil)
	c := New(chip, DefaultConfig(), 0)
	f, p, _ := runToEquilibrium(c, chip, node, sgemmAct, 120)
	if f < 1300 || f > 1460 {
		t.Fatalf("SGEMM equilibrium clock %v MHz outside paper band", f)
	}
	if p > c.CapW()+3 {
		t.Fatalf("settled power %v W above cap", p)
	}
	if p < 0.93*c.CapW() {
		t.Fatalf("settled power %v W too far below cap; should ride the limit", p)
	}
}

func TestWorseChipSettlesLowerTransient(t *testing.T) {
	bad := healthyV100()
	bad.VoltFactor = 1.05
	good := healthyV100()
	nodeA := thermal.NewNode(thermal.WaterParams(), 0.5, nil)
	nodeB := thermal.NewNode(thermal.WaterParams(), 0.5, nil)
	fGood, _, _ := runToEquilibrium(New(good, DefaultConfig(), 0), good, nodeA, sgemmAct, 60)
	fBad, _, _ := runToEquilibrium(New(bad, DefaultConfig(), 0), bad, nodeB, sgemmAct, 60)
	if fBad >= fGood {
		t.Fatalf("worse chip should settle lower: %v vs %v", fBad, fGood)
	}
}

func TestAdminPowerLimitLowersClock(t *testing.T) {
	// Paper §VI-B: lowering the limit with nvidia-smi lowers clocks.
	chip := healthyV100()
	nodeA := thermal.NewNode(thermal.AirParams(), 0.5, nil)
	nodeB := thermal.NewNode(thermal.AirParams(), 0.5, nil)
	f300, _, _ := runToEquilibrium(New(chip, DefaultConfig(), 0), chip, nodeA, sgemmAct, 60)
	f150, p150, _ := runToEquilibrium(New(chip, DefaultConfig(), 150), chip, nodeB, sgemmAct, 60)
	if f150 >= f300 {
		t.Fatalf("150 W admin cap should lower clock: %v vs %v", f150, f300)
	}
	if p150 > 155 {
		t.Fatalf("150 W cap violated: %v W", p150)
	}
}

func TestPowerBrakeDefectRespected(t *testing.T) {
	// Summit row-H signature: board cap below TDP pins the chip lower.
	chip := healthyV100()
	chip.InjectDefect(gpu.DefectPowerBrake, rng.New(11))
	node := thermal.NewNode(thermal.WaterParams(), 0.5, nil)
	c := New(chip, DefaultConfig(), 0)
	f, p, tempC := runToEquilibrium(c, chip, node, sgemmAct, 60)
	if p > chip.BoardCapW+2 {
		t.Fatalf("braked chip exceeded board cap: %v > %v", p, chip.BoardCapW)
	}
	if f >= 1400 {
		t.Fatalf("braked chip clock %v too high", f)
	}
	// Water-cooled braked chips show NO temperature anomaly (paper
	// Appendix B: nodes 10 & 11 had power outliers but no temp outliers).
	if tempC > 55 {
		t.Fatalf("braked chip temperature %v implausibly high under water", tempC)
	}
}

func TestThermalSlowdownOnHotNode(t *testing.T) {
	// Corona c115 signature: broken cooling drives the die toward the
	// slowdown temperature and the controller throttles hard, cutting
	// power far below the cap (165 W observed on a 300 W part).
	chip := gpu.NewChip(gpu.MI60(), "c115", gpu.VariationModel{}, nil)
	chip.InjectDefect(gpu.DefectCooling, rng.New(5))
	// Pin a severe blockage for a deterministic assertion (the sampled
	// severity range is 1.7–2.4×).
	chip.ThermalResistFactor = 2.3
	node := thermal.NewNode(thermal.AirParams(), 0.9, nil)
	c := New(chip, DefaultConfig(), 0)
	f, p, tempC := runToEquilibrium(c, chip, node, sgemmAct, 240)
	if tempC < chip.SKU.SlowdownTempC-8 {
		t.Fatalf("cooling-defect chip should run near slowdown: %v °C", tempC)
	}
	if tempC > chip.SKU.ShutdownTempC {
		t.Fatalf("chip exceeded shutdown: %v °C", tempC)
	}
	healthy := gpu.NewChip(gpu.MI60(), "h", gpu.VariationModel{}, nil)
	nodeH := thermal.NewNode(thermal.AirParams(), 0.5, nil)
	fH, pH, _ := runToEquilibrium(New(healthy, DefaultConfig(), 0), healthy, nodeH, sgemmAct, 240)
	if f >= fH {
		t.Fatalf("hot chip should clock below healthy: %v vs %v", f, fH)
	}
	if p >= pH {
		t.Fatalf("hot chip should draw less power than healthy: %v vs %v", p, pH)
	}
}

func TestCoronaNeverReachesMaxPower(t *testing.T) {
	// Paper §IV-D: "Corona's nodes never reach the max power of 300W"
	// because coarse P-states park below the cap-crossing point. Every
	// chip must stay under the cap and the typical chip must park with
	// real headroom (Fig. 6c shows most GPUs in the 260–290 W band).
	parent := rng.New(77)
	var powers []float64
	for i := 0; i < 30; i++ {
		chip := gpu.NewChip(gpu.MI60(), "g", gpu.DefaultVariation(), parent.SplitIndex("c", i))
		node := thermal.NewNode(thermal.AirParams(), parent.SplitIndex("t", i).Float64(), parent.SplitIndex("n", i))
		_, p, _ := runToEquilibrium(New(chip, DefaultConfig(), 0), chip, node, sgemmAct, 120)
		if p >= 300 {
			t.Fatalf("MI60 %d reached %v W; must stay under the 300 W cap", i, p)
		}
		powers = append(powers, p)
	}
	if med := median(powers); med > 295 {
		t.Fatalf("median MI60 power %v W; coarse states should park with headroom", med)
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func TestSteadyStateMatchesTransient(t *testing.T) {
	// The analytic steady-state solver must agree with the transient
	// controller's converged operating point.
	parent := rng.New(99)
	for i := 0; i < 12; i++ {
		chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.SplitIndex("c", i))
		p := thermal.AirParams()
		node := thermal.NewNode(p, float64(i)/11, parent.SplitIndex("n", i))
		nodeCopy := *node

		ctl := New(chip, DefaultConfig(), 0)
		fT, pT, tT := runToEquilibrium(ctl, chip, node, sgemmAct, 180)

		ctl2 := New(chip, DefaultConfig(), 0)
		fS, pS, tS := ctl2.SteadyState(sgemmAct, func(powerW float64) float64 {
			return nodeCopy.SteadyTempC(powerW, chip.ThermalResistFactor)
		})
		if d := fT - fS; d > 20 || d < -20 {
			t.Errorf("chip %d: transient clock %v vs steady %v", i, fT, fS)
		}
		if d := pT - pS; d > 8 || d < -8 {
			t.Errorf("chip %d: transient power %v vs steady %v", i, pT, pS)
		}
		if d := tT - tS; d > 2.5 || d < -2.5 {
			t.Errorf("chip %d: transient temp %v vs steady %v", i, tT, tS)
		}
	}
}

func TestSteadyStateRespectsClockStuck(t *testing.T) {
	chip := gpu.NewChip(gpu.RTX5000(), "g", gpu.VariationModel{}, nil)
	chip.InjectDefect(gpu.DefectClockStuck, rng.New(8))
	ctl := New(chip, DefaultConfig(), 0)
	node := thermal.NewNode(thermal.OilParams(), 0.5, nil)
	f, p, tempC := ctl.SteadyState(sgemmAct, func(powerW float64) float64 {
		return node.SteadyTempC(powerW, 1)
	})
	if f > chip.ClockCapMHz {
		t.Fatalf("steady state above stuck clock: %v > %v", f, chip.ClockCapMHz)
	}
	healthy := gpu.NewChip(gpu.RTX5000(), "h", gpu.VariationModel{}, nil)
	nodeH := thermal.NewNode(thermal.OilParams(), 0.5, nil)
	_, pH, tH := New(healthy, DefaultConfig(), 0).SteadyState(sgemmAct, func(powerW float64) float64 {
		return nodeH.SteadyTempC(powerW, 1)
	})
	// Frontera c197 signature: slower, cooler, lower power.
	if !(p < pH && tempC < tH) {
		t.Fatalf("stuck chip should be cooler and lower power: p %v vs %v, T %v vs %v", p, pH, tempC, tH)
	}
}

// Property: for any healthy chip and sane environment, the steady-state
// power never exceeds the effective cap when the clock is above floor.
func TestSteadyStateCapProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), r)
		adminCap := 0.0
		if r.Bernoulli(0.5) {
			adminCap = 120 + r.Float64()*180
		}
		node := thermal.NewNode(thermal.AirParams(), r.Float64(), r)
		ctl := New(chip, DefaultConfig(), adminCap)
		fMHz, p, _ := ctl.SteadyState(sgemmAct, func(powerW float64) float64 {
			return node.SteadyTempC(powerW, chip.ThermalResistFactor)
		})
		if fMHz > chip.SKU.ClockFloorMHz() {
			return p <= ctl.CapW()+1e-6
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSteadyState(b *testing.B) {
	chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), rng.New(1))
	node := thermal.NewNode(thermal.AirParams(), 0.5, rng.New(2))
	ctl := New(chip, DefaultConfig(), 0)
	steady := func(powerW float64) float64 { return node.SteadyTempC(powerW, 1) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = ctl.SteadyState(sgemmAct, steady)
	}
}

func BenchmarkTransientTick(b *testing.B) {
	chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), rng.New(1))
	node := thermal.NewNode(thermal.AirParams(), 0.5, rng.New(2))
	ctl := New(chip, DefaultConfig(), 0)
	f := ctl.FreqMHz()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := chip.TotalPower(f, node.TempC, sgemmAct)
		node.Step(0.001, p, 1)
		f = ctl.Tick(1, p, node.TempC, true)
	}
}
