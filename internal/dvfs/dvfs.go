// Package dvfs implements the GPU power-management controllers that the
// paper identifies as the root of performance variability (§II-B,
// Fig. 11): local, per-GPU feedback loops that adjust clock frequency to
// keep power at or below the cap and temperature below the slowdown
// threshold.
//
// Neither AMD nor NVIDIA disclose their controllers; the model here
// reproduces the externally observable behaviour the paper measured:
//
//   - on kernel launch the clock boosts toward maximum,
//   - as power crosses the cap the clock steps down until the draw
//     stabilizes just below the cap (Fig. 11: V100s settle 1327–1440 MHz
//     on a 300 W budget),
//   - per-chip V/F-curve quality determines each chip's equilibrium,
//   - nearing the slowdown temperature forces additional throttling
//     regardless of power (Corona's hot MI60s, §IV-D),
//   - NVIDIA parts move in fine steps, AMD parts in coarse P-states.
package dvfs

import "gpuvar/internal/gpu"

// Config tunes controller dynamics. Defaults reproduce the ~1 s settle
// visible in paper Fig. 11.
type Config struct {
	// IntervalMs is the controller's decision period. Vendor controllers
	// run at O(100 Hz); 10 ms reproduces the observed ramp shapes.
	IntervalMs float64
	// Hysteresis is the fractional power headroom below the cap required
	// before the controller steps back up, preventing limit cycling.
	Hysteresis float64
	// ThermalMarginC is how far below the slowdown temperature the
	// controller starts thermal throttling.
	ThermalMarginC float64
	// BoostStepsPerDecision is how many clock states the controller may
	// climb per decision while boosting (descent is always at least as
	// fast as ascent).
	BoostStepsPerDecision int
	// ProbeIntervalMs is how long the controller waits after a cap
	// violation before re-probing a higher clock. This prevents limit
	// cycling between adjacent coarse P-states (one above the cap, one
	// below) while still tracking slow thermal drift.
	ProbeIntervalMs float64
	// ThermalStepIntervalMs rate-limits thermal throttling below the
	// shutdown emergency: die temperature moves on the multi-second RC
	// time scale, so reacting every controller period would crash the
	// clock to the floor long before the die cools.
	ThermalStepIntervalMs float64
}

// DefaultConfig returns the controller tuning used for all paper
// reproductions.
func DefaultConfig() Config {
	return Config{
		IntervalMs:            10,
		Hysteresis:            0.015,
		ThermalMarginC:        2.0,
		BoostStepsPerDecision: 20,
		ProbeIntervalMs:       1000,
		ThermalStepIntervalMs: 400,
	}
}

// Controller is one GPU's PM feedback loop. It is not safe for
// concurrent use.
type Controller struct {
	chip *gpu.Chip
	cfg  Config

	// adminCapW is the nvidia-smi-style administrative power limit
	// (0 = none); the effective cap also honors the board cap, which a
	// DefectPowerBrake may have lowered.
	adminCapW float64

	freqMHz     float64
	accumMs     float64
	thermalHold bool // currently limited by temperature, not power

	// ceilingMHz is the learned highest safe clock: lowered whenever a
	// clock violates the cap, slowly re-probed upward. Zero means
	// "unlearned" (no violation seen yet).
	ceilingMHz         float64
	sinceProbeMs       float64
	sinceThermalStepMs float64
}

// New returns a controller for chip starting at the idle clock.
func New(chip *gpu.Chip, cfg Config, adminCapW float64) *Controller {
	return &Controller{
		chip:      chip,
		cfg:       cfg,
		adminCapW: adminCapW,
		freqMHz:   chip.SKU.QuantizeClock(chip.SKU.IdleClockMHz),
	}
}

// FreqMHz returns the currently selected clock.
func (c *Controller) FreqMHz() float64 { return c.freqMHz }

// CapW returns the effective power cap the controller enforces.
func (c *Controller) CapW() float64 { return c.chip.PowerCapW(c.adminCapW) }

// ThermallyLimited reports whether the last decision was forced by
// temperature rather than power.
func (c *Controller) ThermallyLimited() bool { return c.thermalHold }

// Park drops the clock to idle (no kernel resident). The learned ceiling
// is retained: the next kernel on this GPU hits the cap at the same
// clock, and real controllers warm-start similarly.
func (c *Controller) Park() {
	c.freqMHz = c.chip.SKU.QuantizeClock(c.chip.SKU.IdleClockMHz)
	c.thermalHold = false
}

// Tick advances the controller by dtMs given the instantaneous power
// draw and die temperature, and returns the (possibly updated) clock.
// busy indicates whether a kernel is resident; an idle GPU parks.
func (c *Controller) Tick(dtMs, powerW, tempC float64, busy bool) float64 {
	if !busy {
		c.Park()
		return c.freqMHz
	}
	c.accumMs += dtMs
	c.sinceProbeMs += dtMs
	c.sinceThermalStepMs += dtMs
	if c.accumMs < c.cfg.IntervalMs {
		return c.freqMHz
	}
	c.accumMs = 0
	c.decide(powerW, tempC)
	return c.freqMHz
}

// decide performs one control decision.
func (c *Controller) decide(powerW, tempC float64) {
	sku := c.chip.SKU
	capW := c.CapW()
	maxClock := c.chip.MaxUsableClockMHz()
	slowdownStart := sku.SlowdownTempC - c.cfg.ThermalMarginC

	// Thermal protection dominates: approach of the slowdown threshold
	// forces the clock down no matter the power budget. Throttle one
	// state per period near the threshold (temperature moves on the
	// multi-second RC time scale, so gentle steps settle just below the
	// threshold rather than undershooting) and harder once past it.
	if tempC >= slowdownStart {
		c.thermalHold = true
		// Past the slowdown point itself is an emergency: throttle every
		// period. Inside the pre-slowdown margin, throttle one state per
		// thermal interval and let the die cool.
		emergency := tempC >= sku.SlowdownTempC
		if emergency || c.sinceThermalStepMs >= c.cfg.ThermalStepIntervalMs {
			steps := 1
			if emergency {
				steps += int(tempC - sku.SlowdownTempC + 1)
			}
			for i := 0; i < steps; i++ {
				c.freqMHz = sku.StepDown(c.freqMHz)
			}
			c.sinceThermalStepMs = 0
			// Learn the thermal ceiling too, so boosting doesn't rush
			// back over the threshold between probes.
			c.ceilingMHz = c.freqMHz
			c.sinceProbeMs = 0
		}
		return
	}
	c.thermalHold = false

	switch {
	case powerW > capW:
		// Over budget: descend proportionally to the overshoot so large
		// excursions (kernel launch at boost clocks) correct in a few
		// periods, as in the Fig. 11 timelines. Remember that the
		// current clock is unsafe so boosting doesn't cycle back.
		over := (powerW - capW) / capW
		steps := 1 + int(over*20)
		for i := 0; i < steps; i++ {
			c.freqMHz = sku.StepDown(c.freqMHz)
		}
		c.ceilingMHz = c.freqMHz
		c.sinceProbeMs = 0
	case powerW < capW*(1-c.cfg.Hysteresis) && c.freqMHz < maxClock:
		// Headroom: boost, but not above the learned ceiling until the
		// probe timer allows trying one state higher again.
		limit := maxClock
		if c.ceilingMHz > 0 && c.ceilingMHz < limit {
			if c.sinceProbeMs >= c.cfg.ProbeIntervalMs {
				c.ceilingMHz = sku.StepUp(c.ceilingMHz)
				c.sinceProbeMs = 0
			}
			if c.ceilingMHz < limit {
				limit = c.ceilingMHz
			}
		}
		for i := 0; i < c.cfg.BoostStepsPerDecision && c.freqMHz < limit; i++ {
			c.freqMHz = sku.StepUp(c.freqMHz)
		}
		if c.freqMHz > limit {
			c.freqMHz = sku.QuantizeClock(limit)
		}
	}
	// Within the hysteresis band: hold.
}

// SteadyState computes the equilibrium operating point the controller
// converges to for a sustained activity level, by jointly solving the
// power cap, the thermal-slowdown constraint, and the leakage↔
// temperature fixed point. steadyTempC must be a function returning the
// equilibrium die temperature at a given sustained power.
//
// This is the fast path used for fleet-scale experiments; the transient
// Tick path is validated against it (see sim package tests).
func (c *Controller) SteadyState(act gpu.Activity, steadyTempC func(powerW float64) float64) (fMHz, powerW, tempC float64) {
	sku := c.chip.SKU
	capW := c.CapW()
	slowdownStart := sku.SlowdownTempC - c.cfg.ThermalMarginC
	// Clamp the modeled temperature: a real part cannot run past its
	// shutdown threshold (it powers off), and an unclamped
	// leakage↔temperature loop diverges for severely degraded cooling.
	clamp := func(t float64) float64 {
		limit := sku.ShutdownTempC + 10
		if t > limit {
			return limit
		}
		return t
	}

	// Fixed-point iteration: temperature ← power ← clock ← temperature.
	tempC = clamp(steadyTempC(capW * 0.9)) // reasonable starting guess
	fMHz = c.chip.MaxUsableClockMHz()
	for i := 0; i < 60; i++ {
		f, p := c.chip.MaxClockUnderCap(capW, tempC, act)
		// Thermal constraint: step down until the steady temperature at
		// the resulting power clears the slowdown margin (or the clock
		// floors out).
		for clamp(steadyTempC(p)) >= slowdownStart {
			next := sku.StepDown(f)
			if next >= f {
				break
			}
			f = next
			p = c.chip.TotalPower(f, tempC, act)
		}
		t := clamp(steadyTempC(p))
		// Damped update for stability of the leakage feedback.
		newTemp := tempC + 0.6*(t-tempC)
		done := abs(newTemp-tempC) < 0.01 && f == fMHz
		fMHz, powerW, tempC = f, p, newTemp
		if done {
			break
		}
	}
	return fMHz, powerW, tempC
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
