package graph

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvar/internal/rng"
)

func TestFromEdgesBasic(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 2}, {1, 2}})
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.OutDegree(1) != 1 || g.OutDegree(2) != 0 {
		t.Fatalf("degrees wrong")
	}
	nb := g.Neighbors(0)
	if len(nb) != 2 || nb[0] != 1 || nb[1] != 2 {
		t.Fatalf("neighbors(0) = %v", nb)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 2}, {1, 2}})
	gt := g.Transpose()
	if gt.OutDegree(0) != 0 || gt.OutDegree(1) != 1 || gt.OutDegree(2) != 2 {
		t.Fatalf("transpose degrees wrong")
	}
	if err := gt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeInvolution(t *testing.T) {
	r := rng.New(1)
	var edges [][2]int32
	const n = 50
	for i := 0; i < 300; i++ {
		edges = append(edges, [2]int32{int32(r.Intn(n)), int32(r.Intn(n))})
	}
	g := FromEdges(n, edges)
	gtt := g.Transpose().Transpose()
	if gtt.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", gtt.NumEdges(), g.NumEdges())
	}
	for v := 0; v < n; v++ {
		a, b := g.Neighbors(v), gtt.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree changed at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("neighbors changed at %d", v)
			}
		}
	}
}

func TestCircuitGraphShape(t *testing.T) {
	g := CircuitGraph(10000, rng.New(2))
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	st := g.Degrees()
	// rajat30-like: mean degree near 9-10, few isolated vertices, and
	// high-fanout bus hubs.
	if st.Mean < 6 || st.Mean > 14 {
		t.Errorf("mean degree %v outside circuit-like range", st.Mean)
	}
	if st.Max < 80 {
		t.Errorf("max degree %v; expected high-fanout bus nets", st.Max)
	}
	if st.Isolated > g.NumVertices/100 {
		t.Errorf("%d isolated vertices", st.Isolated)
	}
}

func TestCircuitGraphSymmetric(t *testing.T) {
	// The circuit matrix is structurally symmetric: transpose must have
	// identical degree sequence.
	g := CircuitGraph(2000, rng.New(3))
	gt := g.Transpose()
	for v := 0; v < g.NumVertices; v++ {
		if g.OutDegree(v) != gt.OutDegree(v) {
			t.Fatalf("asymmetric at vertex %d: %d vs %d", v, g.OutDegree(v), gt.OutDegree(v))
		}
	}
}

func TestCircuitGraphDeterministic(t *testing.T) {
	a := CircuitGraph(1000, rng.New(7))
	b := CircuitGraph(1000, rng.New(7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every vertex has the same rank: 1/n.
	const n = 10
	var edges [][2]int32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % n)})
	}
	g := FromEdges(n, edges)
	res := PageRank(g, 0.85, 1e-9, 500)
	if !res.Converged {
		t.Fatal("cycle PageRank did not converge")
	}
	for v, r := range res.Ranks {
		if math.Abs(float64(r)-1.0/n) > 1e-4 {
			t.Fatalf("rank[%d] = %v, want %v", v, r, 1.0/n)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := CircuitGraph(5000, rng.New(4))
	res := PageRank(g, 0.85, 1e-8, 200)
	if !res.Converged {
		t.Fatal("did not converge")
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += float64(r)
	}
	if math.Abs(sum-1) > 1e-2 {
		t.Fatalf("ranks sum to %v", sum)
	}
}

func TestPageRankHubOutranksLeaf(t *testing.T) {
	// A vertex with many in-links must outrank one with a single
	// in-link.
	var edges [][2]int32
	// Vertices 1..8 all point at 0; vertex 9 pointed at only by 0.
	for i := 1; i <= 8; i++ {
		edges = append(edges, [2]int32{int32(i), 0})
	}
	edges = append(edges, [2]int32{0, 9})
	g := FromEdges(10, edges)
	res := PageRank(g, 0.85, 1e-9, 500)
	if res.Ranks[0] <= res.Ranks[9] {
		t.Fatalf("hub rank %v <= leaf rank %v", res.Ranks[0], res.Ranks[9])
	}
}

func TestPageRankDanglingMassConserved(t *testing.T) {
	// Graph with dangling vertices must still sum to ~1.
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 3}}) // 2 and 3 dangle
	res := PageRank(g, 0.85, 1e-9, 500)
	var sum float64
	for _, r := range res.Ranks {
		sum += float64(r)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("dangling graph ranks sum to %v", sum)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	res := PageRank(&Graph{NumVertices: 0, RowPtr: []int32{0}}, 0.85, 1e-9, 10)
	if !res.Converged {
		t.Fatal("empty graph should trivially converge")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}})
	g.ColIdx[0] = 99
	if g.Validate() == nil {
		t.Fatal("out-of-range target not caught")
	}
	g2 := FromEdges(3, [][2]int32{{0, 1}})
	g2.RowPtr[1] = 7
	if g2.Validate() == nil {
		t.Fatal("broken RowPtr not caught")
	}
}

// Property: PageRank ranks are a probability distribution for arbitrary
// random graphs.
func TestPageRankDistributionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(60)
		var edges [][2]int32
		m := r.Intn(4 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]int32{int32(r.Intn(n)), int32(r.Intn(n))})
		}
		res := PageRank(FromEdges(n, edges), 0.85, 1e-8, 300)
		var sum float64
		for _, rank := range res.Ranks {
			if rank < 0 {
				return false
			}
			sum += float64(rank)
		}
		return math.Abs(sum-1) < 5e-2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPageRankCircuit(b *testing.B) {
	g := CircuitGraph(20000, rng.New(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRank(g, 0.85, 1e-6, 100)
	}
}
