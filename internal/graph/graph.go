// Package graph provides sparse graphs in CSR form, a synthetic
// generator standing in for the rajat30 circuit-simulation matrix the
// paper uses for PageRank (643,994 vertices, SuiteSparse collection),
// and the pull-based PageRank algorithm itself (Pannotia-style SpMV
// formulation, paper §V-D).
package graph

import (
	"fmt"
	"sort"

	"gpuvar/internal/kernels"
	"gpuvar/internal/rng"
)

// Graph is an adjacency structure in CSR form: for vertex v, the
// out-neighbors are ColIdx[RowPtr[v]:RowPtr[v+1]].
type Graph struct {
	NumVertices int
	RowPtr      []int32
	ColIdx      []int32
}

// NumEdges returns the number of stored directed edges.
func (g *Graph) NumEdges() int { return len(g.ColIdx) }

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Neighbors returns vertex v's out-neighbor slice (shared storage; do
// not mutate).
func (g *Graph) Neighbors(v int) []int32 {
	return g.ColIdx[g.RowPtr[v]:g.RowPtr[v+1]]
}

// FromEdges builds a CSR graph from a directed edge list; duplicate
// edges are kept (CSR is a multigraph here, matching matrix semantics).
func FromEdges(n int, edges [][2]int32) *Graph {
	deg := make([]int32, n)
	for _, e := range edges {
		deg[e[0]]++
	}
	rowPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i]
	}
	col := make([]int32, len(edges))
	cursor := make([]int32, n)
	copy(cursor, rowPtr[:n])
	for _, e := range edges {
		col[cursor[e[0]]] = e[1]
		cursor[e[0]]++
	}
	// Sort each adjacency list for locality and determinism.
	for v := 0; v < n; v++ {
		seg := col[rowPtr[v]:rowPtr[v+1]]
		sort.Slice(seg, func(a, b int) bool { return seg[a] < seg[b] })
	}
	return &Graph{NumVertices: n, RowPtr: rowPtr, ColIdx: col}
}

// Transpose returns the reverse graph (in-edges become out-edges),
// needed by pull-based PageRank.
func (g *Graph) Transpose() *Graph {
	n := g.NumVertices
	deg := make([]int32, n)
	for _, c := range g.ColIdx {
		deg[c]++
	}
	rowPtr := make([]int32, n+1)
	for i := 0; i < n; i++ {
		rowPtr[i+1] = rowPtr[i] + deg[i]
	}
	col := make([]int32, len(g.ColIdx))
	cursor := make([]int32, n)
	copy(cursor, rowPtr[:n])
	for v := 0; v < n; v++ {
		for _, c := range g.Neighbors(v) {
			col[cursor[c]] = int32(v)
			cursor[c]++
		}
	}
	return &Graph{NumVertices: n, RowPtr: rowPtr, ColIdx: col}
}

// DegreeStats summarizes the out-degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Isolated int // vertices with out-degree 0 (dangling)
}

// Degrees computes the out-degree statistics.
func (g *Graph) Degrees() DegreeStats {
	st := DegreeStats{Min: 1 << 30}
	for v := 0; v < g.NumVertices; v++ {
		d := g.OutDegree(v)
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
	}
	if g.NumVertices > 0 {
		st.Mean = float64(g.NumEdges()) / float64(g.NumVertices)
	} else {
		st.Min = 0
	}
	return st
}

// CircuitGraph generates a rajat30-like circuit-simulation graph:
// mostly short-range, banded connectivity (components wired to physical
// neighbors) plus a small fraction of long-range "bus" nets with high
// fan-out, and symmetric structure (undirected, as rajat30 is). The
// result has ~9-10 edges per vertex like the original matrix.
func CircuitGraph(n int, r *rng.Source) *Graph {
	if n < 8 {
		n = 8
	}
	var edges [][2]int32
	addUndirected := func(a, b int32) {
		if a == b {
			return
		}
		edges = append(edges, [2]int32{a, b}, [2]int32{b, a})
	}
	// Banded local wiring: each component connects to 3-5 nearby ones.
	for v := 0; v < n; v++ {
		k := 3 + r.Intn(3)
		for i := 0; i < k; i++ {
			span := 1 + r.Intn(50)
			u := v + span
			if u >= n {
				u -= n
			}
			addUndirected(int32(v), int32(u))
		}
	}
	// Bus nets: ~0.1% of vertices fan out widely (power/clock rails).
	buses := n / 1000
	if buses < 1 {
		buses = 1
	}
	for b := 0; b < buses; b++ {
		hub := int32(r.Intn(n))
		fanout := 100 + r.Intn(400)
		if fanout > n/2 {
			fanout = n / 2
		}
		for i := 0; i < fanout; i++ {
			addUndirected(hub, int32(r.Intn(n)))
		}
	}
	return FromEdges(n, edges)
}

// Rajat30Vertices is the vertex count of the original rajat30 matrix
// (paper Table II: 643994 × 643994).
const Rajat30Vertices = 643994

// PageRankResult carries the converged ranks and iteration count.
type PageRankResult struct {
	Ranks      []float32
	Iterations int
	Converged  bool
}

// PageRank runs pull-based PageRank with the given damping until the
// L1 delta falls below tol or maxIter is reached. The pull formulation
// is one SpMV per iteration over the transposed, degree-normalized
// adjacency matrix — exactly the paper's SPMV characterization (§V-D).
func PageRank(g *Graph, damping float32, tol float64, maxIter int) PageRankResult {
	n := g.NumVertices
	if n == 0 {
		return PageRankResult{Converged: true}
	}
	// Build M^T with values 1/outdeg(u) for edge u→v, as CSR over
	// destinations: rank_new(v) = damping·Σ rank(u)/outdeg(u) + base.
	gt := g.Transpose()
	m := &kernels.CSR{
		NumRows: n,
		NumCols: n,
		RowPtr:  gt.RowPtr,
		ColIdx:  gt.ColIdx,
		Vals:    make([]float32, gt.NumEdges()),
	}
	for v := 0; v < n; v++ {
		for p := gt.RowPtr[v]; p < gt.RowPtr[v+1]; p++ {
			src := gt.ColIdx[p]
			m.Vals[p] = 1 / float32(g.OutDegree(int(src)))
		}
	}
	ranks := make([]float32, n)
	next := make([]float32, n)
	for i := range ranks {
		ranks[i] = 1 / float32(n)
	}
	base := (1 - damping) / float32(n)
	res := PageRankResult{}
	for it := 0; it < maxIter; it++ {
		// Dangling mass: rank of zero-out-degree vertices redistributes
		// uniformly (standard correction).
		var dangling float32
		for v := 0; v < n; v++ {
			if g.OutDegree(v) == 0 {
				dangling += ranks[v]
			}
		}
		kernels.SpMV(m, ranks, next)
		redistribute := damping * dangling / float32(n)
		var delta float64
		for i := range next {
			next[i] = damping*next[i] + base + redistribute
			d := float64(next[i] - ranks[i])
			if d < 0 {
				d = -d
			}
			delta += d
		}
		ranks, next = next, ranks
		res.Iterations = it + 1
		if delta < tol {
			res.Converged = true
			break
		}
	}
	res.Ranks = ranks
	return res
}

// Validate checks CSR structural invariants, returning a descriptive
// error for the first violation found.
func (g *Graph) Validate() error {
	if len(g.RowPtr) != g.NumVertices+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.NumVertices+1)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d", g.RowPtr[0])
	}
	for v := 0; v < g.NumVertices; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", v)
		}
	}
	if int(g.RowPtr[g.NumVertices]) != len(g.ColIdx) {
		return fmt.Errorf("graph: RowPtr end %d != edges %d", g.RowPtr[g.NumVertices], len(g.ColIdx))
	}
	for i, c := range g.ColIdx {
		if c < 0 || int(c) >= g.NumVertices {
			return fmt.Errorf("graph: edge %d target %d out of range", i, c)
		}
	}
	return nil
}
