// Package testutil holds helpers shared by the test suites of the
// concurrent layers (engine, jobs, service). Production packages must
// not import it.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the current goroutine count and returns a check
// function that fails t if the count has not returned to the baseline
// (plus slack) within 5 seconds. It is the goroutine-leak assertion
// behind every cancellation, streaming, and mid-stream-disconnect test:
//
//	leak := testutil.LeakCheck(t, 0)
//	... spawn and cancel work ...
//	leak()
//
// slack allows for goroutines that legitimately outlive the scenario
// for a moment (e.g. an http.Server's per-connection goroutine draining
// after the client went away). On failure the full stack dump of every
// live goroutine is included, so the leaked one is identifiable.
func LeakCheck(t testing.TB, slack int) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before+slack {
				return
			}
			runtime.Gosched()
			time.Sleep(time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d before, %d after (slack %d)\n%s",
			before, runtime.NumGoroutine(), slack, buf[:runtime.Stack(buf, true)])
	}
}
