package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestBoxChartRender(t *testing.T) {
	var c BoxChart
	c.Title = "SGEMM kernel duration"
	c.Unit = "ms"
	if err := c.Add("c002", []float64{2400, 2450, 2500, 2550, 2600}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add("c003", []float64{2380, 2420, 2480, 2520, 3100}); err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.Contains(out, "SGEMM kernel duration") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "c002") || !strings.Contains(out, "c003") {
		t.Fatal("missing labels")
	}
	if !strings.Contains(out, "[") || !strings.Contains(out, "|") || !strings.Contains(out, "]") {
		t.Fatal("missing box glyphs")
	}
	if !strings.Contains(out, "o") {
		t.Fatal("outlier glyph missing (3100 is an outlier)")
	}
}

func TestBoxChartEmpty(t *testing.T) {
	var c BoxChart
	c.Title = "empty"
	if out := c.String(); !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestBoxChartAddEmptyFails(t *testing.T) {
	var c BoxChart
	if err := c.Add("x", nil); err == nil {
		t.Fatal("adding empty series should fail")
	}
}

func TestBoxChartConstantSeries(t *testing.T) {
	var c BoxChart
	if err := c.Add("flat", []float64{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if out := c.String(); !strings.Contains(out, "flat") {
		t.Fatalf("constant series not rendered: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	var tb Table
	tb.Header = []string{"Cluster", "GPUs", "Variation"}
	tb.AddRow("Longhorn", 416, 0.09)
	tb.AddRow("Summit", 27648, 0.08)
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Cluster") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator missing: %q", lines[1])
	}
	if !strings.Contains(out, "27648") {
		t.Fatal("row data missing")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteSeriesCSV(&buf, map[string][]float64{
		"b": {1, 2, 3},
		"a": {10},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "a,b" {
		t.Fatalf("header = %q (want sorted)", lines[0])
	}
	if lines[1] != "10,1" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != ",2" {
		t.Fatalf("ragged padding wrong: %q", lines[2])
	}
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestScatterSummary(t *testing.T) {
	s := ScatterSummary("perf vs freq", []float64{1, 2, 3}, []float64{3, 2, 1})
	if !strings.Contains(s, "rho=-1.00") {
		t.Fatalf("summary = %q", s)
	}
	if !strings.Contains(s, "3 points") {
		t.Fatalf("summary = %q", s)
	}
}
