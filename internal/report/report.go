// Package report renders experiment results as text: ASCII box plots
// (the format of nearly every figure in the paper), aligned tables, and
// CSV series for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"gpuvar/internal/stats"
)

// BoxPlotRow is one labeled box plot in a chart.
type BoxPlotRow struct {
	Label string
	Box   stats.BoxPlot
}

// BoxChart renders horizontal ASCII box plots on a shared axis:
//
//	label |----[   |   ]-----|   o oo
//
// with '-' whiskers, '[ ]' the IQR box, '|' the median, and 'o' outliers.
type BoxChart struct {
	Title string
	Unit  string
	Rows  []BoxPlotRow
	// Width is the plot area width in characters (default 60).
	Width int
	// ClipOutliers bounds the axis by the whisker extremes (plus 20%
	// margin) instead of the raw min/max, so one extreme outlier cannot
	// compress every box into a sliver. Clipped outliers render at the
	// axis edge.
	ClipOutliers bool
}

// Add appends a labeled distribution to the chart.
func (c *BoxChart) Add(label string, xs []float64) error {
	bp, err := stats.NewBoxPlot(xs)
	if err != nil {
		return fmt.Errorf("report: %s: %w", label, err)
	}
	c.Rows = append(c.Rows, BoxPlotRow{Label: label, Box: bp})
	return nil
}

// Render writes the chart.
func (c *BoxChart) Render(w io.Writer) error {
	if len(c.Rows) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return err
	}
	width := c.Width
	if width <= 0 {
		width = 60
	}
	lo, hi := c.Rows[0].Box.Min, c.Rows[0].Box.Max
	for _, r := range c.Rows[1:] {
		if r.Box.Min < lo {
			lo = r.Box.Min
		}
		if r.Box.Max > hi {
			hi = r.Box.Max
		}
	}
	if c.ClipOutliers {
		wLo, wHi := c.Rows[0].Box.LowerWhisker, c.Rows[0].Box.UpperWhisker
		for _, r := range c.Rows[1:] {
			if r.Box.LowerWhisker < wLo {
				wLo = r.Box.LowerWhisker
			}
			if r.Box.UpperWhisker > wHi {
				wHi = r.Box.UpperWhisker
			}
		}
		margin := 0.2 * (wHi - wLo)
		if v := wLo - margin; v > lo {
			lo = v
		}
		if v := wHi + margin; v < hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	span := hi - lo
	pos := func(v float64) int {
		p := int(float64(width-1) * (v - lo) / span)
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	labelW := 0
	for _, r := range c.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
		return err
	}
	for _, r := range c.Rows {
		line := make([]byte, width)
		for i := range line {
			line[i] = ' '
		}
		b := r.Box
		for i := pos(b.LowerWhisker); i <= pos(b.UpperWhisker); i++ {
			line[i] = '-'
		}
		for i := pos(b.Q1); i <= pos(b.Q3); i++ {
			line[i] = '='
		}
		line[pos(b.Q1)] = '['
		line[pos(b.Q3)] = ']'
		line[pos(b.Q2)] = '|'
		for _, o := range b.Outliers {
			line[pos(o)] = 'o'
		}
		if _, err := fmt.Fprintf(w, "  %-*s %s\n", labelW, r.Label, string(line)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  %-*s %-12s%*s\n", labelW, "",
		fmt.Sprintf("%.4g%s", lo, c.Unit), width-12, fmt.Sprintf("%.4g%s", hi, c.Unit))
	return err
}

// String renders the chart to a string, ignoring write errors (strings
// cannot fail).
func (c *BoxChart) String() string {
	var b strings.Builder
	_ = c.Render(&b)
	return b.String()
}

// Table renders aligned columns.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 5, 64)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// WriteSeriesCSV writes labeled float series as CSV columns (ragged
// series are padded with empty cells).
func WriteSeriesCSV(w io.Writer, series map[string][]float64) error {
	labels := make([]string, 0, len(series))
	for l := range series {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	cw := csv.NewWriter(w)
	if err := cw.Write(labels); err != nil {
		return err
	}
	maxLen := 0
	for _, xs := range series {
		if len(xs) > maxLen {
			maxLen = len(xs)
		}
	}
	for i := 0; i < maxLen; i++ {
		row := make([]string, len(labels))
		for j, l := range labels {
			if i < len(series[l]) {
				row[j] = strconv.FormatFloat(series[l][i], 'g', 8, 64)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScatterSummary describes a metric-pair relationship the way the
// paper's scatter captions do: the correlation plus the axis ranges.
func ScatterSummary(name string, xs, ys []float64) string {
	rho := stats.Pearson(xs, ys)
	return fmt.Sprintf("%s: rho=%+.2f over %d points (x %.4g..%.4g, y %.4g..%.4g)",
		name, rho, len(xs), stats.Min(xs), stats.Max(xs), stats.Min(ys), stats.Max(ys))
}
