package pmexport

import (
	"net/http/httptest"
	"testing"
	"time"
)

func sampleRecords() []Record {
	now := time.Date(2022, 11, 9, 12, 0, 0, 0, time.UTC)
	return []Record{
		{GPUID: "c002-n01-g0", NodeID: "c002-n01", FreqMHz: 1380, PowerW: 299, TempC: 66, PerfMs: 2500, PowerCapW: 300, MaxClockMHz: 1530, CollectedAt: now},
		{GPUID: "c002-n01-g1", NodeID: "c002-n01", FreqMHz: 1312, PowerW: 262, TempC: 48, PerfMs: 2700, PowerCapW: 300, MaxClockMHz: 1312, CollectedAt: now},
		{GPUID: "c003-n02-g0", NodeID: "c003-n02", FreqMHz: 1095, PowerW: 180, TempC: 97, PerfMs: 3400, PowerCapW: 300, MaxClockMHz: 1530, ThermallyLimited: true, CollectedAt: now},
		{GPUID: "c003-n02-g1", NodeID: "c003-n02", FreqMHz: 1372, PowerW: 298, TempC: 62, PerfMs: 2510, PowerCapW: 300, MaxClockMHz: 1530, CollectedAt: now},
	}
}

func newServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(Handler(NewStaticSource(sampleRecords())))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL)
}

func TestFleetEndpoint(t *testing.T) {
	_, c := newServer(t)
	recs, err := c.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("fleet = %d records", len(recs))
	}
	// StaticSource sorts by GPU id.
	if recs[0].GPUID != "c002-n01-g0" || recs[3].GPUID != "c003-n02-g1" {
		t.Fatalf("ordering wrong: %v", recs)
	}
	if recs[1].MaxClockMHz != 1312 {
		t.Fatal("PM state (clock pin) did not round-trip")
	}
}

func TestGPUEndpoint(t *testing.T) {
	_, c := newServer(t)
	rec, err := c.GPU("c002-n01-g1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.PowerW != 262 || rec.FreqMHz != 1312 {
		t.Fatalf("record = %+v", rec)
	}
	if _, err := c.GPU("nope"); err == nil {
		t.Fatal("unknown GPU should 404")
	}
}

func TestSummaryEndpoint(t *testing.T) {
	_, c := newServer(t)
	s, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.GPUs != 4 {
		t.Fatalf("summary GPUs = %d", s.GPUs)
	}
	if s.ThermallyLimited != 1 {
		t.Fatalf("thermally limited = %d", s.ThermallyLimited)
	}
	if s.BelowCapCount != 2 { // 262 W and 180 W on 300 W caps
		t.Fatalf("below cap = %d", s.BelowCapCount)
	}
	if s.MedianFreqMHz != 1342 { // (1312+1372)/2
		t.Fatalf("median freq = %v", s.MedianFreqMHz)
	}
}

func TestStaticSourceUpdate(t *testing.T) {
	src := NewStaticSource(sampleRecords())
	src.Update(sampleRecords()[:1])
	if n := len(src.Snapshot()); n != 1 {
		t.Fatalf("after update: %d records", n)
	}
	// Snapshot is a copy: mutating it must not corrupt the source.
	snap := src.Snapshot()
	snap[0].GPUID = "mutated"
	if src.Snapshot()[0].GPUID == "mutated" {
		t.Fatal("snapshot aliases internal storage")
	}
}

func TestSourceFunc(t *testing.T) {
	calls := 0
	src := SourceFunc(func() []Record {
		calls++
		return sampleRecords()
	})
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()
	c := NewClient(srv.URL)
	if _, err := c.Fleet(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("source never called")
	}
}

func TestCheckFleetFlagsSignatures(t *testing.T) {
	alerts := CheckFleet(sampleRecords())
	byID := map[string]string{}
	for _, a := range alerts {
		byID[a.GPUID] = a.Reason
	}
	if _, ok := byID["c003-n02-g0"]; !ok {
		t.Error("thermal throttler not flagged")
	}
	if reason, ok := byID["c002-n01-g1"]; !ok {
		t.Error("power brake not flagged")
	} else if reason == "" {
		t.Error("empty reason")
	}
	if _, ok := byID["c002-n01-g0"]; ok {
		t.Error("healthy GPU flagged")
	}
}

func TestCheckFleetEmpty(t *testing.T) {
	if alerts := CheckFleet(nil); len(alerts) != 0 {
		t.Fatal("empty fleet should produce no alerts")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.GPUs != 0 || s.MedianPowerW != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestClientBadURL(t *testing.T) {
	c := NewClient("http://127.0.0.1:0")
	if _, err := c.Fleet(); err == nil {
		t.Fatal("unreachable exporter should error")
	}
}
