// Package pmexport prototypes the PM-information standard the paper
// calls for (§VII "New Hardware and System Design"): a uniform,
// vendor-neutral way for accelerators to expose power-management state
// to runtimes and operators. Today that information is scattered across
// nvidia-smi, rocm-smi, and board firmware; the paper argues the lack of
// a standard is "a major limiter to further improving efficiency".
//
// The package defines the record schema, an HTTP/JSON exporter a node
// agent would run, and a client plus fleet watcher that consumes it —
// the plumbing behind the periodic variability benchmarking the paper
// recommends.
package pmexport

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Record is the per-GPU PM snapshot: the paper's four metrics plus the
// PM controller state that today's tools do not expose uniformly.
type Record struct {
	GPUID  string `json:"gpu_id"`
	NodeID string `json:"node_id"`

	FreqMHz float64 `json:"freq_mhz"`
	PowerW  float64 `json:"power_w"`
	TempC   float64 `json:"temp_c"`
	// PerfMs is the most recent benchmark kernel duration, if the node
	// agent runs the periodic variability benchmark.
	PerfMs float64 `json:"perf_ms,omitempty"`

	// PM controller state — the part vendors do not expose today.
	PowerCapW        float64 `json:"power_cap_w"`
	MaxClockMHz      float64 `json:"max_clock_mhz"`
	ThermallyLimited bool    `json:"thermally_limited"`

	CollectedAt time.Time `json:"collected_at"`
}

// Source supplies fleet snapshots to an exporter.
type Source interface {
	Snapshot() []Record
}

// SourceFunc adapts a function to Source.
type SourceFunc func() []Record

// Snapshot implements Source.
func (f SourceFunc) Snapshot() []Record { return f() }

// StaticSource serves a fixed snapshot (e.g. a completed experiment's
// measurements), safe for concurrent use.
type StaticSource struct {
	mu      sync.RWMutex
	records []Record
}

// NewStaticSource returns a source pre-loaded with records.
func NewStaticSource(records []Record) *StaticSource {
	s := &StaticSource{}
	s.Update(records)
	return s
}

// Update replaces the snapshot.
func (s *StaticSource) Update(records []Record) {
	cp := append([]Record(nil), records...)
	sort.Slice(cp, func(i, j int) bool { return cp[i].GPUID < cp[j].GPUID })
	s.mu.Lock()
	s.records = cp
	s.mu.Unlock()
}

// Snapshot implements Source.
func (s *StaticSource) Snapshot() []Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Record(nil), s.records...)
}

// Handler serves the exporter API:
//
//	GET /v1/fleet        → JSON array of all Records
//	GET /v1/gpu/{id}     → one Record (404 if unknown)
//	GET /v1/summary      → fleet aggregate (count, medians, flags)
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, src.Snapshot())
	})
	mux.HandleFunc("/v1/gpu/", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Path[len("/v1/gpu/"):]
		for _, rec := range src.Snapshot() {
			if rec.GPUID == id {
				writeJSON(w, rec)
				return
			}
		}
		http.Error(w, fmt.Sprintf("unknown gpu %q", id), http.StatusNotFound)
	})
	mux.HandleFunc("/v1/summary", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, Summarize(src.Snapshot()))
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Summary is the fleet aggregate served at /v1/summary.
type Summary struct {
	GPUs             int     `json:"gpus"`
	MedianFreqMHz    float64 `json:"median_freq_mhz"`
	MedianPowerW     float64 `json:"median_power_w"`
	MedianTempC      float64 `json:"median_temp_c"`
	ThermallyLimited int     `json:"thermally_limited"`
	BelowCapCount    int     `json:"below_cap_count"` // >5% under their cap while busy
}

// Summarize aggregates a snapshot.
func Summarize(records []Record) Summary {
	s := Summary{GPUs: len(records)}
	if len(records) == 0 {
		return s
	}
	var freqs, powers, temps []float64
	for _, r := range records {
		freqs = append(freqs, r.FreqMHz)
		powers = append(powers, r.PowerW)
		temps = append(temps, r.TempC)
		if r.ThermallyLimited {
			s.ThermallyLimited++
		}
		if r.PowerCapW > 0 && r.PowerW < 0.95*r.PowerCapW {
			s.BelowCapCount++
		}
	}
	s.MedianFreqMHz = median(freqs)
	s.MedianPowerW = median(powers)
	s.MedianTempC = median(temps)
	return s
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Client fetches exporter data.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for the exporter at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{Timeout: 10 * time.Second}}
}

// Fleet fetches all records.
func (c *Client) Fleet() ([]Record, error) {
	var out []Record
	if err := c.get("/v1/fleet", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// GPU fetches one record.
func (c *Client) GPU(id string) (Record, error) {
	var out Record
	err := c.get("/v1/gpu/"+id, &out)
	return out, err
}

// Summary fetches the fleet aggregate.
func (c *Client) Summary() (Summary, error) {
	var out Summary
	err := c.get("/v1/summary", &out)
	return out, err
}

func (c *Client) get(path string, v interface{}) error {
	resp, err := c.HTTP.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("pmexport: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("pmexport: %s returned %s", path, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		return fmt.Errorf("pmexport: decode %s: %w", path, err)
	}
	return nil
}

// Alert is one watcher finding.
type Alert struct {
	GPUID  string
	Reason string
}

// CheckFleet applies the paper's early-warning heuristics to a snapshot.
// The rules are fleet-relative (the paper's point: aberrations only show
// against the population, which is why cluster-wide benchmarking is
// needed): thermal limiting, power draw well under the fleet's while
// slower than the median (power brakes), clocks settling far below the
// fleet's (bad V/F health), and benchmark times far off the median.
func CheckFleet(records []Record) []Alert {
	var alerts []Alert
	if len(records) == 0 {
		return alerts
	}
	var perfs, powers, freqs []float64
	for _, r := range records {
		if r.PerfMs > 0 {
			perfs = append(perfs, r.PerfMs)
		}
		powers = append(powers, r.PowerW)
		freqs = append(freqs, r.FreqMHz)
	}
	medPerf, medPower, medFreq := median(perfs), median(powers), median(freqs)
	for _, r := range records {
		switch {
		case r.ThermallyLimited:
			alerts = append(alerts, Alert{r.GPUID, "thermal throttling: inspect cooling path"})
		case r.PowerW < medPower-10 && r.PerfMs > 0 && medPerf > 0 && r.PerfMs > 1.015*medPerf:
			alerts = append(alerts, Alert{r.GPUID, "slow and below fleet power: possible power brake"})
		case medFreq > 0 && r.FreqMHz < 0.95*medFreq:
			alerts = append(alerts, Alert{r.GPUID, "clock settles far below fleet median: verify V/F health"})
		case medPerf > 0 && r.PerfMs > 1.12*medPerf:
			alerts = append(alerts, Alert{r.GPUID, "benchmark far above fleet median: investigate"})
		}
	}
	sort.Slice(alerts, func(i, j int) bool { return alerts[i].GPUID < alerts[j].GPUID })
	return alerts
}
