package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gpuvar/internal/engine"
)

// The journal's value type in these tests is a plain string; the codec
// is the identity on its bytes.
func strEnc(v string) ([]byte, error) { return []byte(v), nil }
func strDec(b []byte) (string, error) { return string(b), nil }
func journalPath(t *testing.T) string { return filepath.Join(t.TempDir(), "jobs.journal") }
func openJ(t *testing.T, p string) *Journal {
	t.Helper()
	j, err := OpenJournal(p, SyncTerminal)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// newJournaled returns a manager journaling to path.
func newJournaled(t *testing.T, path string, opts Options) *Manager[string] {
	t.Helper()
	m := New[string](opts)
	if err := m.AttachJournal(openJ(t, path), strEnc, strDec); err != nil {
		t.Fatal(err)
	}
	return m
}

// submitWait submits fn and waits for the job to go terminal.
func submitWait(t *testing.T, m *Manager[string], fn func(ctx context.Context) (string, error)) Snapshot {
	t.Helper()
	id, err := m.Submit("test", engine.Batch, fn)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if snap, ok := m.Get(id); ok && snap.State.Terminal() {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never went terminal", id)
	return Snapshot{}
}

func TestParseSyncPolicy(t *testing.T) {
	for spec, want := range map[string]SyncPolicy{
		"": SyncTerminal, "terminal": SyncTerminal, "always": SyncAlways, "never": SyncNever,
	} {
		got, err := ParseSyncPolicy(spec)
		if err != nil || got != want {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want %v", spec, got, err, want)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("ParseSyncPolicy accepted an unknown policy")
	}
}

// TestJournalReplayTerminalStates: done (with result bytes), failed,
// and canceled jobs all survive a restart with their exact outcomes.
func TestJournalReplayTerminalStates(t *testing.T) {
	path := journalPath(t)
	m := newJournaled(t, path, Options{})

	doneSnap := submitWait(t, m, func(context.Context) (string, error) { return "the result bytes", nil })
	failSnap := submitWait(t, m, func(context.Context) (string, error) { return "", errors.New("sim exploded") })
	cancelSnap := submitWait(t, m, func(ctx context.Context) (string, error) { return "", context.Canceled })

	// "Reboot": a fresh manager over the same journal file.
	m2 := newJournaled(t, path, Options{})
	if v, snap, ok := m2.Result(doneSnap.ID); !ok || snap.State != StateDone || v != "the result bytes" {
		t.Fatalf("done job after replay = (%q, %+v, %v), want the original result", v, snap, ok)
	}
	if snap, ok := m2.Get(failSnap.ID); !ok || snap.State != StateFailed || !strings.Contains(snap.Error, "sim exploded") {
		t.Fatalf("failed job after replay = (%+v, %v)", snap, ok)
	}
	if snap, ok := m2.Get(cancelSnap.ID); !ok || snap.State != StateCanceled {
		t.Fatalf("canceled job after replay = (%+v, %v)", snap, ok)
	}
	st := m2.Stats()
	if st.Journal == nil || st.Journal.RecoveredTerminal != 3 {
		t.Fatalf("journal stats after replay = %+v, want 3 recovered terminal jobs", st.Journal)
	}
}

// TestJournalInterruptedJobFailsExplicitly: a submit record with no
// terminal record — the signature of a crash mid-job — replays as a
// failed job naming the restart, not as a vanished ID.
func TestJournalInterruptedJobFailsExplicitly(t *testing.T) {
	path := journalPath(t)
	j := openJ(t, path)
	rec, _ := json.Marshal(journalRecord{Op: "submit", ID: "jdeadbeef", Class: "batch", T: time.Now().UTC()})
	if err := os.WriteFile(path, append(rec, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	m := New[string](Options{})
	if err := m.AttachJournal(j, strEnc, strDec); err != nil {
		t.Fatal(err)
	}
	snap, ok := m.Get("jdeadbeef")
	if !ok || snap.State != StateFailed || !strings.Contains(snap.Error, "interrupted") {
		t.Fatalf("interrupted job = (%+v, %v), want failed with an interruption reason", snap, ok)
	}
	if st := m.Stats(); st.Journal.RecoveredInterrupted != 1 {
		t.Fatalf("journal stats = %+v, want 1 recovered interrupted", st.Journal)
	}
}

// TestJournalTornTailTruncated: a crash mid-write leaves a half line;
// recovery keeps every complete record, truncates the tear, and counts
// it.
func TestJournalTornTailTruncated(t *testing.T) {
	path := journalPath(t)
	m := newJournaled(t, path, Options{})
	snap := submitWait(t, m, func(context.Context) (string, error) { return "kept", nil })

	// Tear the file: append half a record with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"done","id":"jtrunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newJournaled(t, path, Options{})
	if v, s, ok := m2.Result(snap.ID); !ok || s.State != StateDone || v != "kept" {
		t.Fatalf("intact record lost to the torn tail: (%q, %+v, %v)", v, s, ok)
	}
	st := m2.Stats()
	if st.Journal.SkippedRecords != 1 || st.Journal.TruncatedBytes == 0 {
		t.Fatalf("journal stats = %+v, want 1 skipped record and truncated bytes > 0", st.Journal)
	}
	// The truncation is physical: a third boot sees a clean file.
	m3 := newJournaled(t, path, Options{})
	if st := m3.Stats(); st.Journal.SkippedRecords != 0 {
		t.Fatalf("third boot still skipping records: %+v", st.Journal)
	}
}

// TestJournalGarbageTailTruncated: undecodable bytes (not just a torn
// line) also truncate, dropping everything after the last good record.
func TestJournalGarbageTailTruncated(t *testing.T) {
	path := journalPath(t)
	m := newJournaled(t, path, Options{})
	snap := submitWait(t, m, func(context.Context) (string, error) { return "good", nil })
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("\x00\x01 not json\n{\"also\":\"bad\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	m2 := newJournaled(t, path, Options{})
	if _, s, ok := m2.Result(snap.ID); !ok || s.State != StateDone {
		t.Fatalf("good record lost: (%+v, %v)", s, ok)
	}
	if st := m2.Stats(); st.Journal.SkippedRecords != 2 {
		t.Fatalf("journal stats = %+v, want 2 skipped records", st.Journal)
	}
}

// TestJournalCompaction: replay rewrites the journal to exactly the
// retained set, so the file tracks retention instead of growing without
// bound across restarts.
func TestJournalCompaction(t *testing.T) {
	path := journalPath(t)
	m := newJournaled(t, path, Options{MaxRetained: 2})
	for i := 0; i < 6; i++ {
		submitWait(t, m, func(context.Context) (string, error) { return "r", nil })
	}
	grown, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Reboot: replay + evict to MaxRetained + compact.
	m2 := newJournaled(t, path, Options{MaxRetained: 2})
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(compacted) >= len(grown) {
		t.Fatalf("compaction did not shrink the journal: %d -> %d bytes", len(grown), len(compacted))
	}
	if got := len(m2.Snapshots()); got != 2 {
		t.Fatalf("replay retained %d jobs, want MaxRetained=2", got)
	}
	// The compacted journal is itself replayable.
	m3 := newJournaled(t, path, Options{MaxRetained: 2})
	if got := len(m3.Snapshots()); got != 2 {
		t.Fatalf("compacted journal replayed %d jobs, want 2", got)
	}
}

// TestJournalReplayRespectsTTL: replayed jobs age out exactly like live
// ones — a journal full of ancient jobs does not resurrect them.
func TestJournalReplayRespectsTTL(t *testing.T) {
	path := journalPath(t)
	now := time.Now()
	m := newJournaled(t, path, Options{})
	snap := submitWait(t, m, func(context.Context) (string, error) { return "old", nil })

	// Reboot with a clock far in the future: the job is past TTL.
	m2 := New[string](Options{
		TTL: time.Minute,
		Now: func() time.Time { return now.Add(time.Hour) },
	})
	if err := m2.AttachJournal(openJ(t, path), strEnc, strDec); err != nil {
		t.Fatal(err)
	}
	if _, ok := m2.Get(snap.ID); ok {
		t.Fatal("a job an hour past its TTL survived replay")
	}
}

// TestJournalSyncPolicies smoke-tests each fsync policy end to end.
func TestJournalSyncPolicies(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncTerminal, SyncAlways, SyncNever} {
		path := journalPath(t)
		j, err := OpenJournal(path, policy)
		if err != nil {
			t.Fatal(err)
		}
		m := New[string](Options{})
		if err := m.AttachJournal(j, strEnc, strDec); err != nil {
			t.Fatal(err)
		}
		snap := submitWait(t, m, func(context.Context) (string, error) { return "v", nil })
		j.Close()

		m2 := newJournaled(t, path, Options{})
		if v, s, ok := m2.Result(snap.ID); !ok || s.State != StateDone || v != "v" {
			t.Fatalf("policy %v: replay = (%q, %+v, %v)", policy, v, s, ok)
		}
	}
}
