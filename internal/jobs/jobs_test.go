package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuvar/internal/engine"
	"gpuvar/internal/testutil"
)

// mustSubmit submits a job and fails the test on a shed (tests that
// exercise shedding call Submit directly).
func mustSubmit(t *testing.T, m *Manager[string], class engine.Class, fn func(ctx context.Context) (string, error)) string {
	t.Helper()
	id, err := m.Submit("test", class, fn)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return id
}

// waitFor polls cond for up to 10s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}

// await polls until the job reaches a terminal state and returns its
// snapshot.
func await(t *testing.T, m *Manager[string], id string) Snapshot {
	t.Helper()
	var snap Snapshot
	waitFor(t, func() bool {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while awaited", id)
		}
		snap = s
		return s.State.Terminal()
	})
	return snap
}

// TestLifecycleSubmitPollFetch pins the happy path: queued → running →
// done, engine progress visible, result fetchable twice with the same
// value.
func TestLifecycleSubmitPollFetch(t *testing.T) {
	m := New[string](Options{})
	id := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, 8, 2, func(context.Context, int) (int, error) { return 0, nil })
		return "payload", err
	})
	snap := await(t, m, id)
	if snap.State != StateDone || snap.Error != "" {
		t.Fatalf("terminal snapshot = %+v, want done", snap)
	}
	if snap.ShardsDone != 8 || snap.ShardsTotal != 8 {
		t.Fatalf("progress = %d/%d, want 8/8", snap.ShardsDone, snap.ShardsTotal)
	}
	if snap.CreatedAt.IsZero() || snap.StartedAt.IsZero() || snap.FinishedAt.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", snap)
	}
	for i := 0; i < 2; i++ { // double fetch replays, never consumes
		v, s, ok := m.Result(id)
		if !ok || s.State != StateDone || v != "payload" {
			t.Fatalf("Result fetch %d = (%q, %+v, %v), want the retained payload", i, v, s, ok)
		}
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.Retained != 1 {
		t.Fatalf("stats = %+v, want 1 submitted/done/retained", st)
	}
}

// TestProgressMonotonicWhilePolling gates shards one by one and
// asserts every observed snapshot's progress is non-decreasing.
func TestProgressMonotonicWhilePolling(t *testing.T) {
	m := New[string](Options{})
	const shards = 5
	step := make(chan struct{})
	id := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, shards, 1, func(context.Context, int) (int, error) {
			<-step
			return 0, nil
		})
		return "ok", err
	})
	var lastDone, lastTotal int64
	for i := 0; i < shards; i++ {
		step <- struct{}{}
		waitFor(t, func() bool {
			s, _ := m.Get(id)
			return s.ShardsDone >= int64(i) // shard i's completion lands
		})
		s, _ := m.Get(id)
		if s.ShardsDone < lastDone || s.ShardsTotal < lastTotal {
			t.Fatalf("progress went backwards: %d/%d after %d/%d", s.ShardsDone, s.ShardsTotal, lastDone, lastTotal)
		}
		lastDone, lastTotal = s.ShardsDone, s.ShardsTotal
	}
	snap := await(t, m, id)
	if snap.ShardsDone != shards || snap.ShardsTotal != shards {
		t.Fatalf("final progress = %d/%d, want %d/%d", snap.ShardsDone, snap.ShardsTotal, shards, shards)
	}
}

// TestCancelMidRunFreesWorkers: canceling a running job ends its
// context, the engine under it drains, the job turns canceled, and no
// goroutines leak.
func TestCancelMidRunFreesWorkers(t *testing.T) {
	leak := testutil.LeakCheck(t, 2)
	m := New[string](Options{})
	running := make(chan struct{})
	var once sync.Once
	id := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, 64, 4, func(ctx context.Context, _ int) (int, error) {
			once.Do(func() { close(running) })
			<-ctx.Done() // a long shard that honors cancellation
			return 0, ctx.Err()
		})
		return "", err
	})
	<-running
	if _, ok := m.Cancel(id); !ok {
		t.Fatal("Cancel: job not found")
	}
	snap := await(t, m, id)
	if snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}
	if !strings.Contains(snap.Error, "canceled") {
		t.Fatalf("snapshot error %q does not name the cancellation", snap.Error)
	}
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
	// Goroutine-leak check: everything spawned for the job unwinds.
	leak()
	if st := m.Stats(); st.Canceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled", st)
	}
}

// TestCancelQueuedNeverRuns: with one execution slot occupied, a
// second job is canceled while still queued and its function never
// executes.
func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New[string](Options{MaxRunning: 1})
	block := make(chan struct{})
	first := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		<-block
		return "first", nil
	})
	waitFor(t, func() bool { s, _ := m.Get(first); return s.State == StateRunning })
	var ran atomic.Bool
	second := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		ran.Store(true)
		return "second", nil
	})
	if s, _ := m.Get(second); s.State != StateQueued {
		t.Fatalf("second job state = %s, want queued behind the slot", s.State)
	}
	m.Cancel(second)
	if snap := await(t, m, second); snap.State != StateCanceled {
		t.Fatalf("second job state = %s, want canceled", snap.State)
	}
	if ran.Load() {
		t.Fatal("canceled queued job must never run")
	}
	close(block)
	if snap := await(t, m, first); snap.State != StateDone {
		t.Fatalf("first job state = %s, want done", snap.State)
	}
}

// TestFailureClassification: a non-context error fails the job; the
// error is retained for result mapping.
func TestFailureClassification(t *testing.T) {
	m := New[string](Options{})
	boom := errors.New("boom")
	id := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "", boom })
	snap := await(t, m, id)
	if snap.State != StateFailed || snap.Error != "boom" {
		t.Fatalf("snapshot = %+v, want failed/boom", snap)
	}
	if err := m.Err(id); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want the retained boom", err)
	}
}

// TestTimeoutFailsJob: a job exceeding Options.Timeout fails with
// DeadlineExceeded instead of running forever.
func TestTimeoutFailsJob(t *testing.T) {
	m := New[string](Options{Timeout: 5 * time.Millisecond})
	id := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	})
	snap := await(t, m, id)
	if snap.State != StateFailed || !errors.Is(m.Err(id), context.DeadlineExceeded) {
		t.Fatalf("snapshot = %+v (err %v), want failed with DeadlineExceeded", snap, m.Err(id))
	}
}

// fakeClock is a manual clock for retention tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestTTLEviction: terminal jobs age out after TTL; active jobs are
// untouched.
func TestTTLEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New[string](Options{TTL: time.Minute, Now: clk.Now})
	id := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "v", nil })
	await(t, m, id)

	clk.Advance(30 * time.Second)
	if _, ok := m.Get(id); !ok {
		t.Fatal("job evicted before its TTL")
	}
	clk.Advance(31 * time.Second)
	if _, ok := m.Get(id); ok {
		t.Fatal("job still pollable past its TTL")
	}
	if st := m.Stats(); st.Evicted != 1 || st.Retained != 0 {
		t.Fatalf("stats = %+v, want 1 evicted, 0 retained", st)
	}
}

// TestRetentionCap: the oldest-finished terminal jobs are evicted past
// MaxRetained.
func TestRetentionCap(t *testing.T) {
	m := New[string](Options{MaxRetained: 2})
	ids := make([]string, 3)
	for i := range ids {
		i := i
		ids[i] = mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return fmt.Sprint(i), nil })
		await(t, m, ids[i]) // serialize so finish order is deterministic
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job survived past the retention cap")
	}
	for _, id := range ids[1:] {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("recent job %s evicted while under the cap", id)
		}
	}
	if st := m.Stats(); st.Evicted != 1 || st.Retained != 2 {
		t.Fatalf("stats = %+v, want 1 evicted, 2 retained", st)
	}
}

// TestDeleteForgetsTerminal: Delete drops a finished job so its result
// is no longer fetchable.
func TestDeleteForgetsTerminal(t *testing.T) {
	m := New[string](Options{})
	id := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "v", nil })
	await(t, m, id)
	if snap, ok := m.Delete(id); !ok || snap.State != StateDone {
		t.Fatalf("Delete = (%+v, %v), want the done snapshot", snap, ok)
	}
	if _, _, ok := m.Result(id); ok {
		t.Fatal("deleted job still fetchable")
	}
}

// TestSnapshotsOrdered pins the listing's wire contract: deterministic
// creation order (oldest first), with the ID breaking ties — never map
// iteration order. The fake clock freezes time across a batch of
// submissions so the ID tiebreak is actually exercised.
func TestSnapshotsOrdered(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New[string](Options{Now: clk.Now})
	var ids []string
	for i := 0; i < 3; i++ {
		id := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "", nil })
		await(t, m, id)
		ids = append(ids, id)
		clk.Advance(time.Second)
	}
	snaps := m.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, id := range ids {
		if snaps[i].ID != id {
			t.Fatalf("snapshots[%d] = %s, want %s (creation order, oldest first)", i, snaps[i].ID, id)
		}
	}
}

// TestSnapshotsTiebreakByID: jobs created at the identical instant are
// ordered by ID — the listing stays deterministic even when the clock
// cannot distinguish them. Repeated rounds would flush out any reliance
// on map iteration order.
func TestSnapshotsTiebreakByID(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)} // never advanced: all CreatedAt equal
	m := New[string](Options{Now: clk.Now})
	var ids []string
	for i := 0; i < 8; i++ {
		id := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "", nil })
		await(t, m, id)
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for round := 0; round < 5; round++ {
		snaps := m.Snapshots()
		if len(snaps) != len(ids) {
			t.Fatalf("round %d: got %d snapshots, want %d", round, len(snaps), len(ids))
		}
		for i, id := range ids {
			if snaps[i].ID != id {
				t.Fatalf("round %d: snapshots[%d] = %s, want %s (ID tiebreak)", round, i, snaps[i].ID, id)
			}
		}
	}
}

// TestPerClassSlotsAndShedding pins the priority scheduling contract:
// with every batch slot busy and the batch queue at its bound, (a) a
// further batch submission is shed with ErrQueueFull, and (b) an
// interactive job still starts and completes — batch saturation never
// blocks the interactive class.
func TestPerClassSlotsAndShedding(t *testing.T) {
	m := New[string](Options{MaxRunning: 1, MaxQueuedBatch: 1})
	block := make(chan struct{})
	runningBatch := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "batch-1", nil
	})
	waitFor(t, func() bool { s, _ := m.Get(runningBatch); return s.State == StateRunning })
	queuedBatch := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "batch-2", nil })
	if s, _ := m.Get(queuedBatch); s.State != StateQueued {
		t.Fatalf("second batch job state = %s, want queued", s.State)
	}

	// The batch queue is full: the next batch submission is shed — with
	// the class-wide error, since the aggregate bound is the one hit.
	if _, err := m.Submit("test", engine.Batch, func(context.Context) (string, error) { return "", nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit past the batch queue bound = %v, want ErrQueueFull", err)
	}
	st := m.Stats()
	if st.Shed != 1 || st.QueuedBatch != 1 || st.RunningBatch != 1 {
		t.Fatalf("stats = %+v, want shed=1, queued_batch=1, running_batch=1", st)
	}

	// Interactive has its own slots and is never shed: it runs to
	// completion while batch is saturated.
	inter := mustSubmit(t, m, engine.Interactive, func(ctx context.Context) (string, error) {
		if engine.ClassFrom(ctx) != engine.Interactive {
			return "", errors.New("job context lost its class")
		}
		return "priority", nil
	})
	snap := await(t, m, inter)
	if snap.State != StateDone || snap.Class != "interactive" {
		t.Fatalf("interactive job = %+v, want done with class interactive", snap)
	}
	if v, _, _ := m.Result(inter); v != "priority" {
		t.Fatalf("interactive result = %q", v)
	}

	close(block)
	await(t, m, runningBatch)
	if snap := await(t, m, queuedBatch); snap.State != StateDone || snap.Class != "batch" {
		t.Fatalf("queued batch job = %+v, want done with class batch", snap)
	}
}

// TestShedQueueReopensAfterDrain: shedding is a transient signal — once
// the queued batch job gets its slot, submissions are accepted again.
func TestShedQueueReopensAfterDrain(t *testing.T) {
	m := New[string](Options{MaxRunning: 1, MaxQueuedBatch: 1})
	block := make(chan struct{})
	first := mustSubmit(t, m, engine.Batch, func(ctx context.Context) (string, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "", nil
	})
	waitFor(t, func() bool { s, _ := m.Get(first); return s.State == StateRunning })
	second := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "", nil })
	if _, err := m.Submit("test", engine.Batch, func(context.Context) (string, error) { return "", nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull while the queue is at its bound, got %v", err)
	}
	close(block)
	await(t, m, first)
	await(t, m, second)
	third := mustSubmit(t, m, engine.Batch, func(context.Context) (string, error) { return "", nil })
	if snap := await(t, m, third); snap.State != StateDone {
		t.Fatalf("post-drain submission ended %s, want done", snap.State)
	}
}
