package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpuvar/internal/engine"
)

// waitFor polls cond for up to 10s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}

// await polls until the job reaches a terminal state and returns its
// snapshot.
func await(t *testing.T, m *Manager[string], id string) Snapshot {
	t.Helper()
	var snap Snapshot
	waitFor(t, func() bool {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished while awaited", id)
		}
		snap = s
		return s.State.Terminal()
	})
	return snap
}

// TestLifecycleSubmitPollFetch pins the happy path: queued → running →
// done, engine progress visible, result fetchable twice with the same
// value.
func TestLifecycleSubmitPollFetch(t *testing.T) {
	m := New[string](Options{})
	id := m.Submit(func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, 8, 2, func(context.Context, int) (int, error) { return 0, nil })
		return "payload", err
	})
	snap := await(t, m, id)
	if snap.State != StateDone || snap.Error != "" {
		t.Fatalf("terminal snapshot = %+v, want done", snap)
	}
	if snap.ShardsDone != 8 || snap.ShardsTotal != 8 {
		t.Fatalf("progress = %d/%d, want 8/8", snap.ShardsDone, snap.ShardsTotal)
	}
	if snap.CreatedAt.IsZero() || snap.StartedAt.IsZero() || snap.FinishedAt.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", snap)
	}
	for i := 0; i < 2; i++ { // double fetch replays, never consumes
		v, s, ok := m.Result(id)
		if !ok || s.State != StateDone || v != "payload" {
			t.Fatalf("Result fetch %d = (%q, %+v, %v), want the retained payload", i, v, s, ok)
		}
	}
	st := m.Stats()
	if st.Submitted != 1 || st.Done != 1 || st.Retained != 1 {
		t.Fatalf("stats = %+v, want 1 submitted/done/retained", st)
	}
}

// TestProgressMonotonicWhilePolling gates shards one by one and
// asserts every observed snapshot's progress is non-decreasing.
func TestProgressMonotonicWhilePolling(t *testing.T) {
	m := New[string](Options{})
	const shards = 5
	step := make(chan struct{})
	id := m.Submit(func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, shards, 1, func(context.Context, int) (int, error) {
			<-step
			return 0, nil
		})
		return "ok", err
	})
	var lastDone, lastTotal int64
	for i := 0; i < shards; i++ {
		step <- struct{}{}
		waitFor(t, func() bool {
			s, _ := m.Get(id)
			return s.ShardsDone >= int64(i) // shard i's completion lands
		})
		s, _ := m.Get(id)
		if s.ShardsDone < lastDone || s.ShardsTotal < lastTotal {
			t.Fatalf("progress went backwards: %d/%d after %d/%d", s.ShardsDone, s.ShardsTotal, lastDone, lastTotal)
		}
		lastDone, lastTotal = s.ShardsDone, s.ShardsTotal
	}
	snap := await(t, m, id)
	if snap.ShardsDone != shards || snap.ShardsTotal != shards {
		t.Fatalf("final progress = %d/%d, want %d/%d", snap.ShardsDone, snap.ShardsTotal, shards, shards)
	}
}

// TestCancelMidRunFreesWorkers: canceling a running job ends its
// context, the engine under it drains, the job turns canceled, and no
// goroutines leak.
func TestCancelMidRunFreesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	m := New[string](Options{})
	running := make(chan struct{})
	var once sync.Once
	id := m.Submit(func(ctx context.Context) (string, error) {
		_, err := engine.Map(ctx, 64, 4, func(ctx context.Context, _ int) (int, error) {
			once.Do(func() { close(running) })
			<-ctx.Done() // a long shard that honors cancellation
			return 0, ctx.Err()
		})
		return "", err
	})
	<-running
	if _, ok := m.Cancel(id); !ok {
		t.Fatal("Cancel: job not found")
	}
	snap := await(t, m, id)
	if snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}
	if !strings.Contains(snap.Error, "canceled") {
		t.Fatalf("snapshot error %q does not name the cancellation", snap.Error)
	}
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
	// Goroutine-leak check: everything spawned for the job unwinds.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
	if st := m.Stats(); st.Canceled != 1 {
		t.Fatalf("stats = %+v, want 1 canceled", st)
	}
}

// TestCancelQueuedNeverRuns: with one execution slot occupied, a
// second job is canceled while still queued and its function never
// executes.
func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New[string](Options{MaxRunning: 1})
	block := make(chan struct{})
	first := m.Submit(func(ctx context.Context) (string, error) {
		<-block
		return "first", nil
	})
	waitFor(t, func() bool { s, _ := m.Get(first); return s.State == StateRunning })
	var ran atomic.Bool
	second := m.Submit(func(ctx context.Context) (string, error) {
		ran.Store(true)
		return "second", nil
	})
	if s, _ := m.Get(second); s.State != StateQueued {
		t.Fatalf("second job state = %s, want queued behind the slot", s.State)
	}
	m.Cancel(second)
	if snap := await(t, m, second); snap.State != StateCanceled {
		t.Fatalf("second job state = %s, want canceled", snap.State)
	}
	if ran.Load() {
		t.Fatal("canceled queued job must never run")
	}
	close(block)
	if snap := await(t, m, first); snap.State != StateDone {
		t.Fatalf("first job state = %s, want done", snap.State)
	}
}

// TestFailureClassification: a non-context error fails the job; the
// error is retained for result mapping.
func TestFailureClassification(t *testing.T) {
	m := New[string](Options{})
	boom := errors.New("boom")
	id := m.Submit(func(context.Context) (string, error) { return "", boom })
	snap := await(t, m, id)
	if snap.State != StateFailed || snap.Error != "boom" {
		t.Fatalf("snapshot = %+v, want failed/boom", snap)
	}
	if err := m.Err(id); !errors.Is(err, boom) {
		t.Fatalf("Err = %v, want the retained boom", err)
	}
}

// TestTimeoutFailsJob: a job exceeding Options.Timeout fails with
// DeadlineExceeded instead of running forever.
func TestTimeoutFailsJob(t *testing.T) {
	m := New[string](Options{Timeout: 5 * time.Millisecond})
	id := m.Submit(func(ctx context.Context) (string, error) {
		<-ctx.Done()
		return "", ctx.Err()
	})
	snap := await(t, m, id)
	if snap.State != StateFailed || !errors.Is(m.Err(id), context.DeadlineExceeded) {
		t.Fatalf("snapshot = %+v (err %v), want failed with DeadlineExceeded", snap, m.Err(id))
	}
}

// fakeClock is a manual clock for retention tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestTTLEviction: terminal jobs age out after TTL; active jobs are
// untouched.
func TestTTLEviction(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New[string](Options{TTL: time.Minute, Now: clk.Now})
	id := m.Submit(func(context.Context) (string, error) { return "v", nil })
	await(t, m, id)

	clk.Advance(30 * time.Second)
	if _, ok := m.Get(id); !ok {
		t.Fatal("job evicted before its TTL")
	}
	clk.Advance(31 * time.Second)
	if _, ok := m.Get(id); ok {
		t.Fatal("job still pollable past its TTL")
	}
	if st := m.Stats(); st.Evicted != 1 || st.Retained != 0 {
		t.Fatalf("stats = %+v, want 1 evicted, 0 retained", st)
	}
}

// TestRetentionCap: the oldest-finished terminal jobs are evicted past
// MaxRetained.
func TestRetentionCap(t *testing.T) {
	m := New[string](Options{MaxRetained: 2})
	ids := make([]string, 3)
	for i := range ids {
		i := i
		ids[i] = m.Submit(func(context.Context) (string, error) { return fmt.Sprint(i), nil })
		await(t, m, ids[i]) // serialize so finish order is deterministic
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Fatal("oldest job survived past the retention cap")
	}
	for _, id := range ids[1:] {
		if _, ok := m.Get(id); !ok {
			t.Fatalf("recent job %s evicted while under the cap", id)
		}
	}
	if st := m.Stats(); st.Evicted != 1 || st.Retained != 2 {
		t.Fatalf("stats = %+v, want 1 evicted, 2 retained", st)
	}
}

// TestDeleteForgetsTerminal: Delete drops a finished job so its result
// is no longer fetchable.
func TestDeleteForgetsTerminal(t *testing.T) {
	m := New[string](Options{})
	id := m.Submit(func(context.Context) (string, error) { return "v", nil })
	await(t, m, id)
	if snap, ok := m.Delete(id); !ok || snap.State != StateDone {
		t.Fatalf("Delete = (%+v, %v), want the done snapshot", snap, ok)
	}
	if _, _, ok := m.Result(id); ok {
		t.Fatal("deleted job still fetchable")
	}
}

// TestSnapshotsOrdered: the listing is newest-first.
func TestSnapshotsOrdered(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := New[string](Options{Now: clk.Now})
	var ids []string
	for i := 0; i < 3; i++ {
		id := m.Submit(func(context.Context) (string, error) { return "", nil })
		await(t, m, id)
		ids = append(ids, id)
		clk.Advance(time.Second)
	}
	snaps := m.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("got %d snapshots, want 3", len(snaps))
	}
	for i, id := range []string{ids[2], ids[1], ids[0]} {
		if snaps[i].ID != id {
			t.Fatalf("snapshots[%d] = %s, want %s (newest first)", i, snaps[i].ID, id)
		}
	}
}
