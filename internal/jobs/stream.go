package jobs

import "sync"

// Log is a bounded, replayable append-only line log — the backing store
// of a job's live stream (GET /v1/jobs/{id}/stream). The producer (the
// job's engine sink and its finalizer) appends rendered NDJSON lines;
// any number of followers replay from an offset and then block for
// more, so a client attaching mid-run sees every previously emitted
// line before following live.
//
// The log is bounded (max lines): a producer that outruns the bound —
// impossible for the service's sweep streams, whose shard count is
// capped far below the default — truncates the buffered history
// instead of growing without bound. A truncated log can no longer
// replay a byte-identical prefix, so followers check Truncated and
// fall back to serving the finished body whole.
type Log struct {
	mu        sync.Mutex
	max       int
	lines     []string
	truncated bool
	closed    bool
	waiters   []chan struct{}
}

// NewLog returns a log bounded to max lines (min 1).
func NewLog(max int) *Log {
	if max < 1 {
		max = 1
	}
	return &Log{max: max}
}

// Append adds one line and wakes blocked followers. Appending past the
// bound (or to a closed log) drops the history and marks the log
// truncated rather than blocking the producer — the producer is an
// engine worker holding budget tokens.
func (l *Log) Append(line string) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if len(l.lines) >= l.max {
		l.lines = nil
		l.truncated = true
	}
	if !l.truncated {
		l.lines = append(l.lines, line)
	}
	l.broadcastLocked()
	l.mu.Unlock()
}

// Close marks the log complete: followers drain the remaining lines and
// stop. Idempotent.
func (l *Log) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.broadcastLocked()
	}
	l.mu.Unlock()
}

// Truncated reports whether the bound was exceeded and the buffered
// history dropped.
func (l *Log) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Closed reports whether the log is complete.
func (l *Log) Closed() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.closed
}

// Next returns the lines from offset `from` onward, whether the log is
// closed, and — when nothing new is available yet — a channel that is
// closed on the next append or Close. The follower loop is:
//
//	for from := 0; ; {
//		lines, done, more := log.Next(from)
//		emit(lines); from += len(lines)
//		if done { break }
//		if more != nil { select { case <-more: case <-ctx.Done(): return } }
//	}
func (l *Log) Next(from int) (lines []string, done bool, more <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from < len(l.lines) {
		return append([]string(nil), l.lines[from:]...), l.closed, nil
	}
	if l.closed {
		return nil, true, nil
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ch)
	return nil, false, ch
}

// broadcastLocked wakes every blocked follower. Caller holds l.mu.
func (l *Log) broadcastLocked() {
	for _, ch := range l.waiters {
		close(ch)
	}
	l.waiters = nil
}
