// Package jobs turns engine-backed computations into asynchronous,
// pollable jobs: submit a function, get back an ID, poll its lifecycle
// state and per-shard progress, fetch the result when it is done, and
// cancel it at any point. It exists because the heaviest computations
// of the suite (full campaigns, Summit-scale variant sweeps) outlive
// any reasonable HTTP request deadline — the service exposes this
// manager as POST /v1/jobs (202 + poll URL) instead of holding the
// connection.
//
// Lifecycle:
//
//	queued ──► running ──► done
//	   │          │    ├──► failed
//	   └──────────┴───────► canceled
//
// A job is queued until one of its class's MaxRunning slots frees,
// running while its function executes, and terminal afterwards.
// Cancellation is cooperative and prompt: Cancel ends the job's
// context, the engine under it stops dispatching shards, and the
// workers drain; a job canceled while still queued never runs at all.
//
// Scheduling classes: every job carries an engine.Class. Each class has
// its own execution slots and queue, so saturated batch work never
// blocks an interactive job from starting, and the job's context
// carries the class down to the engine, where elastic worker pools draw
// from the class's share of the process-wide token budget. The batch
// queue is bounded (MaxQueuedBatch): a submission past the bound is
// shed with ErrQueueFull instead of growing an unbounded backlog — the
// service maps that to 429 + Retry-After.
//
// Progress comes from the engine's existing shard counters: the job's
// context carries an engine.Progress (engine.WithProgress), so every
// engine.Map in the job's call tree — including nested jobs — reports
// shards scheduled and shards completed, and a poller watches
// done/total advance while the job runs.
//
// Retention: terminal jobs are kept for polling until they age past
// TTL or the retained set exceeds MaxRetained (oldest-finished evicted
// first, LRU-style); active jobs are never evicted. Fetching a result
// does not consume it — repeated fetches replay the same value until
// the job is evicted or deleted.
package jobs

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"

	"gpuvar/internal/engine"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrQueueFull reports a shed submission: the batch queue is at its
// bound and the job was rejected rather than enqueued.
var ErrQueueFull = errors.New("jobs: batch queue is saturated")

// Options configures a Manager. The zero value gets modest defaults.
type Options struct {
	// MaxRunning bounds concurrently executing jobs per class (default
	// 2); queued jobs wait for a slot in submission order of slot
	// acquisition. Classes have independent slot sets, so batch
	// saturation never delays an interactive job.
	MaxRunning int
	// MaxQueuedBatch bounds batch-class jobs waiting for a slot
	// (default 16; negative disables shedding). A batch submission past
	// the bound fails with ErrQueueFull. Interactive submissions are
	// never shed — the interactive queue only grows as fast as clients
	// ask for priority work.
	MaxQueuedBatch int
	// MaxRetained bounds terminal jobs kept for polling (default 64).
	MaxRetained int
	// TTL bounds how long a terminal job stays pollable (default 10
	// minutes; negative disables age-based eviction).
	TTL time.Duration
	// Timeout bounds one job's computation (0 = no per-job deadline; a
	// job that exceeds it fails with context.DeadlineExceeded).
	Timeout time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
}

// Snapshot is a point-in-time view of one job, shaped for the service's
// status endpoint.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Class is the job's scheduling class ("interactive" or "batch").
	Class string `json:"class"`
	// ShardsDone / ShardsTotal are the engine's per-job progress:
	// shards completed vs shards scheduled so far across the job's
	// whole call tree. Total grows as nested jobs are discovered.
	ShardsDone  int64     `json:"shards_done"`
	ShardsTotal int64     `json:"shards_total"`
	CreatedAt   time.Time `json:"created_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
}

// Stats is the manager's counter snapshot, folded into the service's
// /v1/stats and /v1/healthz.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Evicted counts terminal jobs dropped from retention (TTL, the
	// MaxRetained cap, or an explicit Delete).
	Evicted uint64 `json:"evicted"`
	// Shed counts batch submissions rejected because the batch queue
	// was at its bound (the service's 429s).
	Shed     uint64 `json:"shed"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Retained int    `json:"retained"`
	// Per-class queue depth and occupancy — the saturation signals the
	// service exports via /v1/healthz and /v1/stats.
	QueuedInteractive  int `json:"queued_interactive"`
	QueuedBatch        int `json:"queued_batch"`
	RunningInteractive int `json:"running_interactive"`
	RunningBatch       int `json:"running_batch"`
	// Journal is the write-ahead journal's counters (appends, write
	// errors, boot recovery); nil when the manager runs without one.
	Journal *JournalStats `json:"journal,omitempty"`
}

// job is one submission's record.
type job[V any] struct {
	id       string
	state    State
	class    engine.Class
	progress engine.Progress
	cancel   context.CancelFunc
	val      V
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	el       *list.Element // retention-list position once terminal
}

// Manager owns a set of jobs. Create with New; safe for concurrent use.
type Manager[V any] struct {
	opts Options
	sem  [engine.NumClasses]chan struct{} // per-class execution slots

	mu      sync.Mutex
	jobs    map[string]*job[V]
	done    *list.List // terminal jobs, front = most recently finished
	queued  [engine.NumClasses]int
	running [engine.NumClasses]int
	stats   Stats
	journal *journalState[V] // nil until AttachJournal
}

// New returns a manager with the given options.
func New[V any](opts Options) *Manager[V] {
	if opts.MaxRunning < 1 {
		opts.MaxRunning = 2
	}
	if opts.MaxQueuedBatch == 0 {
		opts.MaxQueuedBatch = 16
	}
	if opts.MaxRetained < 1 {
		opts.MaxRetained = 64
	}
	if opts.TTL == 0 {
		opts.TTL = 10 * time.Minute
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	m := &Manager[V]{
		opts: opts,
		jobs: map[string]*job[V]{},
		done: list.New(),
	}
	for c := range m.sem {
		m.sem[c] = make(chan struct{}, opts.MaxRunning)
	}
	return m
}

// newID returns a fresh, unguessable job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobs: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

// Submit registers fn as a new job of the given scheduling class and
// returns its ID immediately. fn runs on its own goroutine under a
// context that carries the job's class and progress sink and is
// canceled by Cancel (and bounded by Options.Timeout, if set). fn's
// error classifies the terminal state: nil → done, a context
// cancellation → canceled, anything else → failed.
//
// A batch submission is shed with ErrQueueFull when the batch queue is
// already at MaxQueuedBatch — backpressure instead of unbounded
// backlog; the caller should retry later.
func (m *Manager[V]) Submit(class engine.Class, fn func(ctx context.Context) (V, error)) (string, error) {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job[V]{id: newID(), state: StateQueued, class: class, cancel: cancel}
	ctx = engine.WithClass(engine.WithProgress(ctx, &j.progress), class)

	m.mu.Lock()
	m.pruneLocked()
	if class == engine.Batch && m.opts.MaxQueuedBatch > 0 && m.queued[engine.Batch] >= m.opts.MaxQueuedBatch {
		m.stats.Shed++
		m.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
	j.created = m.opts.Now()
	m.jobs[j.id] = j
	m.queued[class]++
	m.stats.Submitted++
	jr := m.journal
	m.mu.Unlock()

	// Journal the submission before the job runs, so a crash between
	// here and the terminal record replays as an explicit "interrupted"
	// failure rather than a vanished ID. Outside the manager lock: an
	// fsyncing journal must not serialize the whole manager.
	if jr != nil {
		_ = jr.j.append(journalRecord{Op: "submit", ID: j.id, Class: class.String(), T: j.created}, false)
	}

	go m.run(ctx, j, fn)
	return j.id, nil
}

// run waits for the class's execution slot, runs fn, and records the
// outcome.
func (m *Manager[V]) run(ctx context.Context, j *job[V], fn func(ctx context.Context) (V, error)) {
	var zero V
	select {
	case m.sem[j.class] <- struct{}{}:
	case <-ctx.Done():
		// Canceled while queued: terminal without ever running.
		m.finish(j, zero, ctx.Err())
		return
	}
	defer func() { <-m.sem[j.class] }()

	m.mu.Lock()
	m.queued[j.class]--
	m.running[j.class]++
	j.state = StateRunning
	j.started = m.opts.Now()
	m.mu.Unlock()

	if t := m.opts.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	v, err := fn(ctx)
	m.finish(j, v, err)
}

// finish records the terminal state and moves the job into retention.
func (m *Manager[V]) finish(j *job[V], v V, err error) {
	m.mu.Lock()
	switch j.state {
	case StateQueued:
		m.queued[j.class]--
	case StateRunning:
		m.running[j.class]--
	}
	j.finished = m.opts.Now()
	switch {
	case err == nil:
		j.state, j.val = StateDone, v
		m.stats.Done++
	case errors.Is(err, context.Canceled):
		j.state, j.err = StateCanceled, err
		m.stats.Canceled++
	default:
		j.state, j.err = StateFailed, err
		m.stats.Failed++
	}
	j.el = m.done.PushFront(j)
	m.evictLocked()
	jr := m.journal
	m.mu.Unlock()
	// Release the context's resources; the engine under it has already
	// returned.
	j.cancel()
	// Journal the terminal transition (with the result bytes for done
	// jobs) outside the lock; the terminal record is the one the sync
	// policy fsyncs by default.
	if jr != nil {
		m.journalFinish(jr, j)
	}
}

// Get returns the job's snapshot.
func (m *Manager[V]) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Result returns the job's value alongside its snapshot. The value is
// meaningful only when the snapshot's state is StateDone; callers
// branch on the state (and on snap.Error for failures). Fetching does
// not consume the result — repeats replay the same value until the job
// ages out or is deleted.
func (m *Manager[V]) Result(id string) (V, Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		var zero V
		return zero, Snapshot{}, false
	}
	return j.val, m.snapshotLocked(j), true
}

// Err returns the terminal error of a failed or canceled job (nil
// otherwise), so callers can classify failures beyond the snapshot's
// string form.
func (m *Manager[V]) Err(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j.err
	}
	return nil
}

// Cancel requests cancellation of an active job — the job's context
// ends, the engine stops dispatching its shards, and the job turns
// canceled once its workers drain (poll Get to observe the
// transition). Canceling a terminal job is a no-op. The returned
// snapshot is the state at call time.
func (m *Manager[V]) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	snap := m.snapshotLocked(j)
	m.mu.Unlock()
	j.cancel()
	return snap, true
}

// Delete cancels the job if active and drops it from retention if
// terminal, freeing its result. It reports whether the ID existed.
func (m *Manager[V]) Delete(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	snap := m.snapshotLocked(j)
	if j.state.Terminal() {
		m.removeLocked(j)
	}
	m.mu.Unlock()
	j.cancel()
	return snap, true
}

// Snapshots lists every live job in deterministic creation order:
// oldest first, ID as the tiebreak for equal timestamps. The listing
// order is a wire contract (GET /v1/jobs) pinned by tests — it must
// never depend on map iteration order or sort instability.
func (m *Manager[V]) Snapshots() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.Before(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Stats snapshots the counters.
func (m *Manager[V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	s := m.stats
	s.QueuedInteractive = m.queued[engine.Interactive]
	s.QueuedBatch = m.queued[engine.Batch]
	s.RunningInteractive = m.running[engine.Interactive]
	s.RunningBatch = m.running[engine.Batch]
	s.Queued = s.QueuedInteractive + s.QueuedBatch
	s.Running = s.RunningInteractive + s.RunningBatch
	s.Retained = m.done.Len()
	if m.journal != nil {
		js := m.journal.j.Stats()
		s.Journal = &js
	}
	return s
}

// snapshotLocked builds a Snapshot. Caller holds m.mu.
func (m *Manager[V]) snapshotLocked(j *job[V]) Snapshot {
	done, total := j.progress.Snapshot()
	s := Snapshot{
		ID:          j.id,
		State:       j.state,
		Class:       j.class.String(),
		ShardsDone:  done,
		ShardsTotal: total,
		CreatedAt:   j.created,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// pruneLocked drops terminal jobs older than TTL. Caller holds m.mu.
func (m *Manager[V]) pruneLocked() {
	if m.opts.TTL <= 0 {
		return
	}
	cutoff := m.opts.Now().Add(-m.opts.TTL)
	for el := m.done.Back(); el != nil; el = m.done.Back() {
		j := el.Value.(*job[V])
		if j.finished.After(cutoff) {
			break
		}
		m.removeLocked(j)
	}
}

// evictLocked enforces the MaxRetained cap. Caller holds m.mu.
func (m *Manager[V]) evictLocked() {
	for m.done.Len() > m.opts.MaxRetained {
		m.removeLocked(m.done.Back().Value.(*job[V]))
	}
}

// removeLocked drops one terminal job from retention. Caller holds m.mu.
func (m *Manager[V]) removeLocked(j *job[V]) {
	m.done.Remove(j.el)
	delete(m.jobs, j.id)
	m.stats.Evicted++
}
