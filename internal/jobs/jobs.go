// Package jobs turns engine-backed computations into asynchronous,
// pollable jobs: submit a function, get back an ID, poll its lifecycle
// state and per-shard progress, fetch the result when it is done, and
// cancel it at any point. It exists because the heaviest computations
// of the suite (full campaigns, Summit-scale variant sweeps) outlive
// any reasonable HTTP request deadline — the service exposes this
// manager as POST /v1/jobs (202 + poll URL) instead of holding the
// connection.
//
// Lifecycle:
//
//	queued ──► running ──► done
//	   │          │    ├──► failed
//	   └──────────┴───────► canceled
//
// A job is queued until the dispatcher grants it one of its class's
// MaxRunning slots, running while its function executes, and terminal
// afterwards. Cancellation is cooperative and prompt: Cancel ends the
// job's context, the engine under it stops dispatching shards, and the
// workers drain; a job canceled while still queued never runs at all.
//
// Scheduling classes: every job carries an engine.Class. Each class has
// its own execution slots and queues, so saturated batch work never
// blocks an interactive job from starting, and the job's context
// carries the class down to the engine, where elastic worker pools draw
// from the class's share of the process-wide token budget. The batch
// queue is bounded (MaxQueuedBatch): a submission past the bound is
// shed with ErrQueueFull instead of growing an unbounded backlog — the
// service maps that to 429 + Retry-After.
//
// Multi-tenant fairness: every job also carries a client identity, and
// each class's queue is really a set of per-client FIFO queues drained
// by stride scheduling — each client accumulates "pass" in proportion
// to 1/weight (Options.ClientWeights) as its jobs are dispatched, and
// the dispatcher always picks the backlogged client with the lowest
// pass. A client that floods the queue therefore delays only itself:
// other clients' jobs keep dispatching at their weighted share no
// matter how deep the flooder's backlog grows. A client re-entering
// after idling starts at the scheduler's current virtual time, so
// idleness banks no credit. On top of the class-wide bound, each
// client's batch backlog is individually bounded (MaxQueuedPerClient):
// exceeding it sheds with ErrClientQueueFull, which the service
// reports as a 429 scoped to the client rather than the class.
//
// Progress comes from the engine's existing shard counters: the job's
// context carries an engine.Progress (engine.WithProgress), so every
// engine.Map in the job's call tree — including nested jobs — reports
// shards scheduled and shards completed, and a poller watches
// done/total advance while the job runs.
//
// Retention: terminal jobs are kept for polling until they age past
// TTL or the retained set exceeds MaxRetained (oldest-finished evicted
// first, LRU-style); active jobs are never evicted. Fetching a result
// does not consume it — repeated fetches replay the same value until
// the job is evicted or deleted.
package jobs

import (
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sort"
	"sync"
	"time"

	"gpuvar/internal/engine"
)

// State is a job's lifecycle state.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ErrQueueFull reports a shed submission: the class-wide batch queue is
// at its bound and the job was rejected rather than enqueued.
var ErrQueueFull = errors.New("jobs: batch queue is saturated")

// ErrClientQueueFull reports a shed submission scoped to one client:
// the class-wide queue still has room, but this client's own batch
// backlog is at its bound. Other clients can still submit.
var ErrClientQueueFull = errors.New("jobs: client batch queue is saturated")

// strideScale is the stride numerator: a client's pass advances by
// strideScale/weight per dispatched job, so higher weights dispatch
// proportionally more often.
const strideScale = 1 << 20

// maxTrackedClients bounds the per-client accounting map. Client
// identities can be remote addresses, so the set is unbounded in
// principle; past the bound, idle clients (nothing queued or running)
// are evicted oldest-activity first, forfeiting their counters.
const maxTrackedClients = 512

// Options configures a Manager. The zero value gets modest defaults.
type Options struct {
	// MaxRunning bounds concurrently executing jobs per class (default
	// 2); queued jobs wait for a slot in weighted-fair client order
	// (FIFO within one client). Classes have independent slot sets, so
	// batch saturation never delays an interactive job.
	MaxRunning int
	// MaxQueuedBatch bounds batch-class jobs waiting for a slot across
	// all clients (default 16; negative disables shedding). A batch
	// submission past the bound fails with ErrQueueFull. Interactive
	// submissions are never shed — the interactive queue only grows as
	// fast as clients ask for priority work.
	MaxQueuedBatch int
	// MaxQueuedPerClient bounds one client's batch-class backlog
	// (default 8; negative disables the per-client bound). A submission
	// past it fails with ErrClientQueueFull while other clients keep
	// their share of the class-wide queue.
	MaxQueuedPerClient int
	// ClientWeights assigns stride-scheduling weights per client ID
	// (default 1): a weight-3 client's backlog dispatches three jobs for
	// every one of a weight-1 client's when both are saturated.
	ClientWeights map[string]int
	// MaxRetained bounds terminal jobs kept for polling (default 64).
	MaxRetained int
	// TTL bounds how long a terminal job stays pollable (default 10
	// minutes; negative disables age-based eviction).
	TTL time.Duration
	// Timeout bounds one job's computation (0 = no per-job deadline; a
	// job that exceeds it fails with context.DeadlineExceeded).
	Timeout time.Duration
	// Now is the clock (default time.Now; tests inject a fake).
	Now func() time.Time
}

// Snapshot is a point-in-time view of one job, shaped for the service's
// status endpoint.
type Snapshot struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Class is the job's scheduling class ("interactive" or "batch").
	Class string `json:"class"`
	// Client is the submitting client's identity (API key or remote
	// address, as derived by the service).
	Client string `json:"client,omitempty"`
	// ShardsDone / ShardsTotal are the engine's per-job progress:
	// shards completed vs shards scheduled so far across the job's
	// whole call tree. Total grows as nested jobs are discovered.
	ShardsDone  int64     `json:"shards_done"`
	ShardsTotal int64     `json:"shards_total"`
	CreatedAt   time.Time `json:"created_at"`
	StartedAt   time.Time `json:"started_at,omitzero"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	Error       string    `json:"error,omitempty"`
}

// ClientStats is one client's queue accounting, exported via Stats for
// /v1/stats and /metrics.
type ClientStats struct {
	Client  string `json:"client"`
	Weight  int    `json:"weight"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	// Shed counts this client's rejected submissions (either scope:
	// class-wide or per-client bound).
	Shed uint64 `json:"shed"`
	// Served counts this client's jobs that finished in state done.
	Served uint64 `json:"served"`
}

// Stats is the manager's counter snapshot, folded into the service's
// /v1/stats and /v1/healthz.
type Stats struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// Evicted counts terminal jobs dropped from retention (TTL, the
	// MaxRetained cap, or an explicit Delete).
	Evicted uint64 `json:"evicted"`
	// Shed counts submissions rejected at either bound (the service's
	// 429s); ShedClient is the subset rejected by the per-client bound.
	Shed       uint64 `json:"shed"`
	ShedClient uint64 `json:"shed_client"`
	Queued     int    `json:"queued"`
	Running    int    `json:"running"`
	Retained   int    `json:"retained"`
	// Per-class queue depth and occupancy — the saturation signals the
	// service exports via /v1/healthz and /v1/stats.
	QueuedInteractive  int `json:"queued_interactive"`
	QueuedBatch        int `json:"queued_batch"`
	RunningInteractive int `json:"running_interactive"`
	RunningBatch       int `json:"running_batch"`
	// Clients is the per-client accounting, sorted by client ID.
	Clients []ClientStats `json:"clients,omitempty"`
	// Journal is the write-ahead journal's counters (appends, write
	// errors, boot recovery); nil when the manager runs without one.
	Journal *JournalStats `json:"journal,omitempty"`
}

// job is one submission's record.
type job[V any] struct {
	id       string
	state    State
	class    engine.Class
	client   string
	progress engine.Progress
	cancel   context.CancelFunc
	start    chan struct{} // closed by the dispatcher when a slot is granted
	done     chan struct{} // closed on the terminal transition
	qel      *list.Element // client-queue position while queued
	val      V
	err      error
	created  time.Time
	started  time.Time
	finished time.Time
	el       *list.Element // retention-list position once terminal
}

// clientState is one client's queues and stride-scheduler position.
type clientState[V any] struct {
	id         string
	weight     int
	pass       [engine.NumClasses]uint64
	queue      [engine.NumClasses]*list.List // waiting jobs, front = next
	queued     [engine.NumClasses]int
	running    [engine.NumClasses]int
	shed       uint64
	served     uint64
	lastActive time.Time
}

// Manager owns a set of jobs. Create with New; safe for concurrent use.
type Manager[V any] struct {
	opts Options

	mu      sync.Mutex
	jobs    map[string]*job[V]
	clients map[string]*clientState[V]
	done    *list.List // terminal jobs, front = most recently finished
	queued  [engine.NumClasses]int
	running [engine.NumClasses]int
	vtime   [engine.NumClasses]uint64 // pass of the last dispatched client
	stats   Stats
	journal *journalState[V] // nil until AttachJournal
}

// New returns a manager with the given options.
func New[V any](opts Options) *Manager[V] {
	if opts.MaxRunning < 1 {
		opts.MaxRunning = 2
	}
	if opts.MaxQueuedBatch == 0 {
		opts.MaxQueuedBatch = 16
	}
	if opts.MaxQueuedPerClient == 0 {
		opts.MaxQueuedPerClient = 8
	}
	if opts.MaxRetained < 1 {
		opts.MaxRetained = 64
	}
	if opts.TTL == 0 {
		opts.TTL = 10 * time.Minute
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Manager[V]{
		opts:    opts,
		jobs:    map[string]*job[V]{},
		clients: map[string]*clientState[V]{},
		done:    list.New(),
	}
}

// newID returns a fresh, unguessable job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobs: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}

// clientLocked returns (creating if needed) the client's state. Caller
// holds m.mu.
func (m *Manager[V]) clientLocked(id string) *clientState[V] {
	cl, ok := m.clients[id]
	if !ok {
		w := m.opts.ClientWeights[id]
		if w < 1 {
			w = 1
		}
		cl = &clientState[V]{id: id, weight: w}
		for c := range cl.queue {
			cl.queue[c] = list.New()
		}
		m.clients[id] = cl
		m.evictClientsLocked()
	}
	cl.lastActive = m.opts.Now()
	return cl
}

// evictClientsLocked bounds the client map: past maxTrackedClients,
// idle clients (nothing queued or running) are dropped oldest-activity
// first. Caller holds m.mu.
func (m *Manager[V]) evictClientsLocked() {
	if len(m.clients) <= maxTrackedClients {
		return
	}
	idle := make([]*clientState[V], 0, len(m.clients))
	for _, cl := range m.clients {
		active := false
		for c := 0; c < engine.NumClasses; c++ {
			if cl.queued[c] > 0 || cl.running[c] > 0 {
				active = true
				break
			}
		}
		if !active {
			idle = append(idle, cl)
		}
	}
	sort.Slice(idle, func(i, k int) bool { return idle[i].lastActive.Before(idle[k].lastActive) })
	for _, cl := range idle {
		if len(m.clients) <= maxTrackedClients {
			break
		}
		delete(m.clients, cl.id)
	}
}

// Submit registers fn as a new job for the given client and scheduling
// class and returns its ID immediately. fn runs on its own goroutine
// under a context that carries the job's class and progress sink and is
// canceled by Cancel (and bounded by Options.Timeout, if set). fn's
// error classifies the terminal state: nil → done, a context
// cancellation → canceled, anything else → failed.
//
// A batch submission is shed with ErrQueueFull when the class-wide
// batch queue is at MaxQueuedBatch, and with ErrClientQueueFull when
// the submitting client's own backlog is at MaxQueuedPerClient —
// backpressure instead of unbounded backlog; the caller should retry
// later.
func (m *Manager[V]) Submit(client string, class engine.Class, fn func(ctx context.Context) (V, error)) (string, error) {
	if client == "" {
		client = "anonymous"
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job[V]{
		id: newID(), state: StateQueued, class: class, client: client,
		cancel: cancel, start: make(chan struct{}), done: make(chan struct{}),
	}
	ctx = engine.WithClass(engine.WithProgress(ctx, &j.progress), class)

	m.mu.Lock()
	m.pruneLocked()
	cl := m.clientLocked(client)
	if class == engine.Batch {
		if m.opts.MaxQueuedBatch > 0 && m.queued[engine.Batch] >= m.opts.MaxQueuedBatch {
			m.stats.Shed++
			cl.shed++
			m.mu.Unlock()
			cancel()
			return "", ErrQueueFull
		}
		if m.opts.MaxQueuedPerClient > 0 && cl.queued[engine.Batch] >= m.opts.MaxQueuedPerClient {
			m.stats.Shed++
			m.stats.ShedClient++
			cl.shed++
			m.mu.Unlock()
			cancel()
			return "", ErrClientQueueFull
		}
	}
	j.created = m.opts.Now()
	m.jobs[j.id] = j
	if cl.queue[class].Len() == 0 && cl.running[class] == 0 && cl.pass[class] < m.vtime[class] {
		// Re-entering after idling: start at the scheduler's current
		// virtual time so idleness banks no dispatch credit.
		cl.pass[class] = m.vtime[class]
	}
	j.qel = cl.queue[class].PushBack(j)
	cl.queued[class]++
	m.queued[class]++
	m.stats.Submitted++
	m.dispatchLocked(class)
	jr := m.journal
	m.mu.Unlock()

	// Journal the submission before the job runs, so a crash between
	// here and the terminal record replays as an explicit "interrupted"
	// failure rather than a vanished ID. Outside the manager lock: an
	// fsyncing journal must not serialize the whole manager.
	if jr != nil {
		_ = jr.j.append(journalRecord{Op: "submit", ID: j.id, Class: class.String(), Client: j.client, T: j.created}, false)
	}

	go m.run(ctx, j, fn)
	return j.id, nil
}

// dispatchLocked grants free execution slots of the class to queued
// jobs: repeatedly pick the backlogged client with the lowest stride
// pass (ties break on client ID for determinism), pop its oldest job,
// and signal the job's goroutine. Caller holds m.mu.
func (m *Manager[V]) dispatchLocked(class engine.Class) {
	for m.running[class] < m.opts.MaxRunning {
		var pick *clientState[V]
		for _, cl := range m.clients {
			if cl.queue[class].Len() == 0 {
				continue
			}
			if pick == nil || cl.pass[class] < pick.pass[class] ||
				(cl.pass[class] == pick.pass[class] && cl.id < pick.id) {
				pick = cl
			}
		}
		if pick == nil {
			return
		}
		el := pick.queue[class].Front()
		j := el.Value.(*job[V])
		pick.queue[class].Remove(el)
		j.qel = nil
		m.vtime[class] = pick.pass[class]
		pick.pass[class] += strideScale / uint64(pick.weight)
		pick.queued[class]--
		m.queued[class]--
		pick.running[class]++
		m.running[class]++
		j.state = StateRunning
		j.started = m.opts.Now()
		close(j.start)
	}
}

// run waits for the dispatcher's slot grant, runs fn, and records the
// outcome.
func (m *Manager[V]) run(ctx context.Context, j *job[V], fn func(ctx context.Context) (V, error)) {
	var zero V
	select {
	case <-j.start:
	case <-ctx.Done():
		// Canceled while queued: terminal without ever running. (If the
		// dispatcher granted the slot in the same instant, finish sees
		// StateRunning and releases it — either way the accounting holds.)
		m.finish(j, zero, ctx.Err())
		return
	}

	if t := m.opts.Timeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	v, err := fn(ctx)
	m.finish(j, v, err)
}

// finish records the terminal state, moves the job into retention, and
// re-dispatches the freed slot.
func (m *Manager[V]) finish(j *job[V], v V, err error) {
	m.mu.Lock()
	cl := m.clients[j.client]
	switch j.state {
	case StateQueued:
		m.queued[j.class]--
		if cl != nil {
			cl.queued[j.class]--
			if j.qel != nil {
				cl.queue[j.class].Remove(j.qel)
				j.qel = nil
			}
		}
	case StateRunning:
		m.running[j.class]--
		if cl != nil {
			cl.running[j.class]--
		}
	}
	j.finished = m.opts.Now()
	switch {
	case err == nil:
		j.state, j.val = StateDone, v
		m.stats.Done++
		if cl != nil {
			cl.served++
		}
	case errors.Is(err, context.Canceled):
		j.state, j.err = StateCanceled, err
		m.stats.Canceled++
	default:
		j.state, j.err = StateFailed, err
		m.stats.Failed++
	}
	j.el = m.done.PushFront(j)
	m.evictLocked()
	m.dispatchLocked(j.class)
	jr := m.journal
	m.mu.Unlock()
	// Release the context's resources; the engine under it has already
	// returned.
	j.cancel()
	// Wake stream followers and other terminal-state watchers.
	close(j.done)
	// Journal the terminal transition (with the result bytes for done
	// jobs) outside the lock; the terminal record is the one the sync
	// policy fsyncs by default.
	if jr != nil {
		m.journalFinish(jr, j)
	}
}

// Get returns the job's snapshot.
func (m *Manager[V]) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return m.snapshotLocked(j), true
}

// Done returns a channel that is closed when the job reaches a terminal
// state — the wait primitive for stream followers. The channel of an
// already-terminal job is already closed.
func (m *Manager[V]) Done(id string) (<-chan struct{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, false
	}
	return j.done, true
}

// Result returns the job's value alongside its snapshot. The value is
// meaningful only when the snapshot's state is StateDone; callers
// branch on the state (and on snap.Error for failures). Fetching does
// not consume the result — repeats replay the same value until the job
// ages out or is deleted.
func (m *Manager[V]) Result(id string) (V, Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	j, ok := m.jobs[id]
	if !ok {
		var zero V
		return zero, Snapshot{}, false
	}
	return j.val, m.snapshotLocked(j), true
}

// Err returns the terminal error of a failed or canceled job (nil
// otherwise), so callers can classify failures beyond the snapshot's
// string form.
func (m *Manager[V]) Err(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j, ok := m.jobs[id]; ok {
		return j.err
	}
	return nil
}

// Cancel requests cancellation of an active job — the job's context
// ends, the engine stops dispatching its shards, and the job turns
// canceled once its workers drain (poll Get to observe the
// transition). Canceling a terminal job is a no-op. The returned
// snapshot is the state at call time.
func (m *Manager[V]) Cancel(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	snap := m.snapshotLocked(j)
	m.mu.Unlock()
	j.cancel()
	return snap, true
}

// Delete cancels the job if active and drops it from retention if
// terminal, freeing its result. It reports whether the ID existed.
func (m *Manager[V]) Delete(id string) (Snapshot, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return Snapshot{}, false
	}
	snap := m.snapshotLocked(j)
	if j.state.Terminal() {
		m.removeLocked(j)
	}
	m.mu.Unlock()
	j.cancel()
	return snap, true
}

// Snapshots lists every live job in deterministic creation order:
// oldest first, ID as the tiebreak for equal timestamps. The listing
// order is a wire contract (GET /v1/jobs) pinned by tests — it must
// never depend on map iteration order or sort instability.
func (m *Manager[V]) Snapshots() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.snapshotLocked(j))
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].CreatedAt.Equal(out[k].CreatedAt) {
			return out[i].CreatedAt.Before(out[k].CreatedAt)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Stats snapshots the counters.
func (m *Manager[V]) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pruneLocked()
	s := m.stats
	s.QueuedInteractive = m.queued[engine.Interactive]
	s.QueuedBatch = m.queued[engine.Batch]
	s.RunningInteractive = m.running[engine.Interactive]
	s.RunningBatch = m.running[engine.Batch]
	s.Queued = s.QueuedInteractive + s.QueuedBatch
	s.Running = s.RunningInteractive + s.RunningBatch
	s.Retained = m.done.Len()
	if len(m.clients) > 0 {
		s.Clients = make([]ClientStats, 0, len(m.clients))
		for _, cl := range m.clients {
			cs := ClientStats{Client: cl.id, Weight: cl.weight, Shed: cl.shed, Served: cl.served}
			for c := 0; c < engine.NumClasses; c++ {
				cs.Queued += cl.queued[c]
				cs.Running += cl.running[c]
			}
			s.Clients = append(s.Clients, cs)
		}
		sort.Slice(s.Clients, func(i, k int) bool { return s.Clients[i].Client < s.Clients[k].Client })
	}
	if m.journal != nil {
		js := m.journal.j.Stats()
		s.Journal = &js
	}
	return s
}

// snapshotLocked builds a Snapshot. Caller holds m.mu.
func (m *Manager[V]) snapshotLocked(j *job[V]) Snapshot {
	done, total := j.progress.Snapshot()
	s := Snapshot{
		ID:          j.id,
		State:       j.state,
		Class:       j.class.String(),
		Client:      j.client,
		ShardsDone:  done,
		ShardsTotal: total,
		CreatedAt:   j.created,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// pruneLocked drops terminal jobs older than TTL. Caller holds m.mu.
func (m *Manager[V]) pruneLocked() {
	if m.opts.TTL <= 0 {
		return
	}
	cutoff := m.opts.Now().Add(-m.opts.TTL)
	for el := m.done.Back(); el != nil; el = m.done.Back() {
		j := el.Value.(*job[V])
		if j.finished.After(cutoff) {
			break
		}
		m.removeLocked(j)
	}
}

// evictLocked enforces the MaxRetained cap. Caller holds m.mu.
func (m *Manager[V]) evictLocked() {
	for m.done.Len() > m.opts.MaxRetained {
		m.removeLocked(m.done.Back().Value.(*job[V]))
	}
}

// removeLocked drops one terminal job from retention. Caller holds m.mu.
func (m *Manager[V]) removeLocked(j *job[V]) {
	m.done.Remove(j.el)
	delete(m.jobs, j.id)
	m.stats.Evicted++
}
