package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"

	"gpuvar/internal/engine"
)

// submitAs submits for an explicit client, failing the test on a shed.
func submitAs(t *testing.T, m *Manager[string], client string, class engine.Class, fn func(ctx context.Context) (string, error)) string {
	t.Helper()
	id, err := m.Submit(client, class, fn)
	if err != nil {
		t.Fatalf("Submit(%s): %v", client, err)
	}
	return id
}

// recorder collects job completion labels in execution order.
type recorder struct {
	mu    sync.Mutex
	order []string
}

func (r *recorder) add(label string) {
	r.mu.Lock()
	r.order = append(r.order, label)
	r.mu.Unlock()
}

func (r *recorder) snapshot() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// record returns a job fn that appends label when it runs.
func (r *recorder) record(label string) func(context.Context) (string, error) {
	return func(context.Context) (string, error) {
		r.add(label)
		return label, nil
	}
}

// TestFairDispatchInterleavesClients is the jobs-layer fairness proof:
// one client floods the batch queue while another submits a small
// backlog, and the dispatcher interleaves them instead of draining the
// flooder FIFO. With MaxRunning=1 every dispatch is serialized, so the
// completion order is exactly the dispatch order and fully
// deterministic (stride scheduling with the ID tiebreak).
func TestFairDispatchInterleavesClients(t *testing.T) {
	m := New[string](Options{MaxRunning: 1, MaxQueuedBatch: 64})
	rec := &recorder{}
	block := make(chan struct{})
	blocker, err := m.Submit("flood", engine.Batch, func(ctx context.Context) (string, error) {
		<-block
		rec.add("F0")
		return "F0", nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, func() bool { s, _ := m.Get(blocker); return s.State == StateRunning })

	// While the slot is held: flood queues a deep backlog, quiet queues
	// two jobs AFTER the entire flood backlog exists.
	var ids []string
	for _, label := range []string{"F1", "F2", "F3", "F4"} {
		ids = append(ids, submitAs(t, m, "flood", engine.Batch, rec.record(label)))
	}
	for _, label := range []string{"Q0", "Q1"} {
		ids = append(ids, submitAs(t, m, "quiet", engine.Batch, rec.record(label)))
	}

	close(block)
	for _, id := range append([]string{blocker}, ids...) {
		if snap := await(t, m, id); snap.State != StateDone {
			t.Fatalf("job %s ended %s, want done", id, snap.State)
		}
	}

	// F0's dispatch advanced flood's pass one stride, so quiet (entering
	// at the scheduler's virtual time) wins the next slot despite the
	// four flood jobs queued ahead of it, then the two clients alternate
	// until quiet drains.
	want := []string{"F0", "Q0", "F1", "Q1", "F2", "F3", "F4"}
	got := rec.snapshot()
	if len(got) != len(want) {
		t.Fatalf("completion order %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("completion order %v, want %v (stride interleave)", got, want)
		}
	}
}

// TestWeightedShares: a weight-2 client's backlog dispatches twice as
// often as a weight-1 client's.
func TestWeightedShares(t *testing.T) {
	m := New[string](Options{
		MaxRunning:     1,
		MaxQueuedBatch: 64,
		ClientWeights:  map[string]int{"heavy": 2, "light": 1},
	})
	rec := &recorder{}
	block := make(chan struct{})
	blocker, err := m.Submit("z", engine.Batch, func(ctx context.Context) (string, error) {
		<-block
		return "", nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, func() bool { s, _ := m.Get(blocker); return s.State == StateRunning })

	var ids []string
	for _, label := range []string{"H0", "H1", "H2", "H3"} {
		ids = append(ids, submitAs(t, m, "heavy", engine.Batch, rec.record(label)))
	}
	for _, label := range []string{"L0", "L1"} {
		ids = append(ids, submitAs(t, m, "light", engine.Batch, rec.record(label)))
	}
	close(block)
	for _, id := range ids {
		await(t, m, id)
	}

	// Stride trace (stride ∝ 1/weight, ties break on client ID):
	// heavy dispatches twice for every light dispatch.
	want := []string{"H0", "L0", "H1", "H2", "L1", "H3"}
	got := rec.snapshot()
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("completion order %v, want %v (2:1 weighted shares)", got, want)
		}
	}
}

// TestPerClientQueueBound: the per-client bound sheds one client's
// overflow with ErrClientQueueFull while the class-wide queue still
// has room for other clients, and the per-client counters attribute
// the shed to the offender.
func TestPerClientQueueBound(t *testing.T) {
	m := New[string](Options{MaxRunning: 1, MaxQueuedBatch: 16, MaxQueuedPerClient: 2})
	block := make(chan struct{})
	blocker, err := m.Submit("flood", engine.Batch, func(ctx context.Context) (string, error) {
		<-block
		return "", nil
	})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	waitFor(t, func() bool { s, _ := m.Get(blocker); return s.State == StateRunning })

	var queued []string
	for i := 0; i < 2; i++ {
		queued = append(queued, submitAs(t, m, "flood", engine.Batch, func(context.Context) (string, error) { return "", nil }))
	}
	// The flooder's own backlog is at its bound: shed, client scope.
	if _, err := m.Submit("flood", engine.Batch, func(context.Context) (string, error) { return "", nil }); !errors.Is(err, ErrClientQueueFull) {
		t.Fatalf("flood overflow = %v, want ErrClientQueueFull", err)
	}
	// Another client still has the class-wide queue's room.
	quiet := submitAs(t, m, "quiet", engine.Batch, func(context.Context) (string, error) { return "ok", nil })

	st := m.Stats()
	if st.Shed != 1 || st.ShedClient != 1 {
		t.Fatalf("stats shed=%d shed_client=%d, want 1/1", st.Shed, st.ShedClient)
	}
	var flood, quietStats *ClientStats
	for i := range st.Clients {
		switch st.Clients[i].Client {
		case "flood":
			flood = &st.Clients[i]
		case "quiet":
			quietStats = &st.Clients[i]
		}
	}
	if flood == nil || quietStats == nil {
		t.Fatalf("per-client stats missing: %+v", st.Clients)
	}
	if flood.Shed != 1 || flood.Queued != 2 || flood.Running != 1 {
		t.Fatalf("flood stats = %+v, want shed=1 queued=2 running=1", *flood)
	}
	if quietStats.Shed != 0 || quietStats.Queued != 1 {
		t.Fatalf("quiet stats = %+v, want shed=0 queued=1", *quietStats)
	}

	close(block)
	await(t, m, blocker)
	for _, id := range append(queued, quiet) {
		await(t, m, id)
	}
	st = m.Stats()
	for _, cs := range st.Clients {
		if cs.Queued != 0 || cs.Running != 0 {
			t.Fatalf("client %s accounting leaked after drain: %+v", cs.Client, cs)
		}
	}
}

// TestDoneChannel: Done is closed on the terminal transition —
// including for a job canceled while still queued — and is already
// closed for terminal jobs.
func TestDoneChannel(t *testing.T) {
	m := New[string](Options{MaxRunning: 1})
	block := make(chan struct{})
	first := submitAs(t, m, "test", engine.Batch, func(ctx context.Context) (string, error) {
		<-block
		return "", nil
	})
	waitFor(t, func() bool { s, _ := m.Get(first); return s.State == StateRunning })
	second := submitAs(t, m, "test", engine.Batch, func(context.Context) (string, error) { return "", nil })

	ch, ok := m.Done(second)
	if !ok {
		t.Fatal("Done: job not found")
	}
	select {
	case <-ch:
		t.Fatal("done channel closed while the job is queued")
	default:
	}
	m.Cancel(second)
	<-ch // closed by the queued-cancel path
	if snap, _ := m.Get(second); snap.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", snap.State)
	}

	close(block)
	await(t, m, first)
	if ch, ok := m.Done(first); !ok {
		t.Fatal("Done: finished job not found")
	} else {
		<-ch // already closed
	}
	if _, ok := m.Done("nope"); ok {
		t.Fatal("Done found an unknown job")
	}
}

// TestLogReplayAndFollow: a follower attaching mid-stream replays the
// buffered prefix and then blocks for live appends until Close.
func TestLogReplayAndFollow(t *testing.T) {
	l := NewLog(16)
	l.Append("a")
	l.Append("b")

	lines, done, more := l.Next(0)
	if len(lines) != 2 || lines[0] != "a" || lines[1] != "b" || done || more != nil {
		t.Fatalf("Next(0) = (%v, %v, %v), want the buffered prefix", lines, done, more)
	}
	_, done, more = l.Next(2)
	if done || more == nil {
		t.Fatalf("Next(2) should block: done=%v more=%v", done, more)
	}
	l.Append("c")
	<-more // woken by the append
	lines, done, _ = l.Next(2)
	if len(lines) != 1 || lines[0] != "c" || done {
		t.Fatalf("Next(2) after append = (%v, %v), want [c]", lines, done)
	}
	_, _, more = l.Next(3)
	l.Close()
	<-more
	if _, done, _ := l.Next(3); !done {
		t.Fatal("Next past the end of a closed log must report done")
	}
	if l.Truncated() {
		t.Fatal("log truncated within its bound")
	}
}

// TestLogTruncation: appending past the bound drops the history and
// marks the log truncated instead of growing or blocking.
func TestLogTruncation(t *testing.T) {
	l := NewLog(2)
	l.Append("a")
	l.Append("b")
	l.Append("c") // over the bound
	if !l.Truncated() {
		t.Fatal("log not marked truncated past its bound")
	}
	lines, _, _ := l.Next(0)
	if len(lines) != 0 {
		t.Fatalf("truncated log replayed %v, want nothing", lines)
	}
	l.Close()
	if _, done, _ := l.Next(0); !done {
		t.Fatal("closed truncated log must report done")
	}
}
