package jobs

// Crash safety: without persistence, a gpuvard restart silently
// discards every async job — a client holding a poll URL gets a 404 for
// work the server finished seconds before dying. The Journal is a
// write-ahead log of job lifecycle transitions (JSON lines, one file
// under the server's data directory):
//
//	{"op":"submit","id":"j...","class":"batch","t":"..."}
//	{"op":"done","id":"j...","t":"...","result":"<base64>"}
//	{"op":"failed","id":"j...","t":"...","error":"..."}
//	{"op":"canceled","id":"j...","t":"..."}
//
// Submissions are journaled before the job runs; terminal transitions
// are journaled with the encoded result bytes (done) or the error. On
// boot the manager replays the journal (AttachJournal): terminal jobs
// are restored into retention with their exact result bytes, and a
// submit with no terminal record — a job the crash interrupted — is
// restored as failed with an explicit "interrupted by server restart"
// reason instead of vanishing. After replay the journal is compacted to
// just the restored jobs, so the file tracks retention instead of
// growing forever.
//
// Recovery is corruption-tolerant: a torn tail (the crash hit mid-write)
// or any undecodable record truncates the journal at the first bad
// byte, counting the skipped records and truncated bytes in
// JournalStats rather than refusing to boot. Every append passes the
// jobs.persist fault site first, so a failing data directory is
// rehearsable; append errors degrade persistence (counted, job
// unaffected) rather than failing the job.
//
// Fsync policy: SyncTerminal (the default) syncs terminal records only
// — the submit record of a job lost to an ill-timed crash reconstructs
// as "interrupted", which is exactly what it was; SyncAlways syncs
// every record; SyncNever leaves durability to the OS.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gpuvar/internal/engine"
	"gpuvar/internal/faults"
)

// SyncPolicy selects when the journal fsyncs.
type SyncPolicy int

const (
	// SyncTerminal fsyncs terminal records (the ones carrying results)
	// and leaves submit records to the OS — the default.
	SyncTerminal SyncPolicy = iota
	// SyncAlways fsyncs every record.
	SyncAlways
	// SyncNever never fsyncs explicitly.
	SyncNever
)

// ParseSyncPolicy resolves the wire/flag spelling ("" = terminal).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "terminal":
		return SyncTerminal, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("jobs: unknown journal sync policy %q (want terminal, always, or never)", s)
}

// JournalStats counts the journal's work, folded into the manager's
// Stats (and from there /v1/stats and /v1/healthz).
type JournalStats struct {
	// Appended counts records written this process lifetime.
	Appended uint64 `json:"appended"`
	// WriteErrors counts appends that failed (injected jobs.persist
	// faults included); the affected job still completes in memory.
	WriteErrors uint64 `json:"write_errors"`
	// RecoveredTerminal counts terminal jobs restored on boot with their
	// result bytes; RecoveredInterrupted counts submitted-but-unfinished
	// jobs restored as failed("interrupted by server restart").
	RecoveredTerminal    uint64 `json:"recovered_terminal"`
	RecoveredInterrupted uint64 `json:"recovered_interrupted"`
	// SkippedRecords and TruncatedBytes describe corruption recovery:
	// records dropped (torn tail, undecodable lines, undecodable result
	// payloads) and the bytes cut from the file's tail.
	SkippedRecords uint64 `json:"skipped_records"`
	TruncatedBytes int64  `json:"truncated_bytes"`
}

// journalRecord is one JSON line.
type journalRecord struct {
	Op     string    `json:"op"` // submit | done | failed | canceled
	ID     string    `json:"id"`
	Class  string    `json:"class,omitempty"`
	Client string    `json:"client,omitempty"`
	T      time.Time `json:"t"`
	Error  string    `json:"error,omitempty"`
	// Result is the codec-encoded value of a done job (base64 in the
	// JSON encoding).
	Result []byte `json:"result,omitempty"`
}

// Journal is the append-only lifecycle log. Open one with OpenJournal
// and hand it to Manager.AttachJournal; safe for concurrent appends.
type Journal struct {
	path string
	sync SyncPolicy

	mu    sync.Mutex
	f     *os.File
	stats JournalStats
}

// OpenJournal opens (creating if needed) the journal file at path,
// creating parent directories as required.
func OpenJournal(path string, policy SyncPolicy) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating journal directory: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening journal: %w", err)
	}
	return &Journal{path: path, sync: policy, f: f}, nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// append writes one record. Errors (and injected jobs.persist faults)
// are counted and returned; callers treat them as degraded persistence,
// not job failure.
func (j *Journal) append(rec journalRecord, terminal bool) error {
	line, err := json.Marshal(rec)
	if err != nil {
		j.mu.Lock()
		j.stats.WriteErrors++
		j.mu.Unlock()
		return err
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := faults.Inject(context.Background(), faults.SiteJobsPersist); err != nil {
		j.stats.WriteErrors++
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		j.stats.WriteErrors++
		return err
	}
	if j.sync == SyncAlways || (j.sync == SyncTerminal && terminal) {
		if err := j.f.Sync(); err != nil {
			j.stats.WriteErrors++
			return err
		}
	}
	j.stats.Appended++
	return nil
}

// replay reads every decodable record from the start of the file. At
// the first undecodable line — a torn tail from a crash mid-write, or
// plain corruption — the file is truncated there: everything after the
// last good record is dropped and counted, because a journal suffix of
// unknown integrity is worse than an honest gap.
func (j *Journal) replay() ([]journalRecord, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	data, err := os.ReadFile(j.path)
	if err != nil {
		return nil, fmt.Errorf("jobs: reading journal: %w", err)
	}
	var (
		recs []journalRecord
		good int // byte offset past the last decodable record
	)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// No trailing newline: a torn final record.
			break
		}
		line := data[off : off+nl]
		var rec journalRecord
		if len(bytes.TrimSpace(line)) > 0 {
			if err := json.Unmarshal(line, &rec); err != nil || rec.ID == "" || rec.Op == "" {
				break
			}
			recs = append(recs, rec)
		}
		off += nl + 1
		good = off
	}
	if good < len(data) {
		// Count the dropped suffix: its newline-separated chunks are the
		// records we are abandoning.
		tail := data[good:]
		skipped := uint64(0)
		for _, chunk := range bytes.Split(tail, []byte{'\n'}) {
			if len(bytes.TrimSpace(chunk)) > 0 {
				skipped++
			}
		}
		j.stats.SkippedRecords += skipped
		j.stats.TruncatedBytes += int64(len(data) - good)
		if err := j.f.Truncate(int64(good)); err != nil {
			return nil, fmt.Errorf("jobs: truncating torn journal tail: %w", err)
		}
	}
	if _, err := j.f.Seek(0, io.SeekEnd); err != nil {
		return nil, err
	}
	return recs, nil
}

// rewrite atomically replaces the journal's contents with the given
// records (the post-replay compaction): write a temp file, fsync,
// rename over the journal.
func (j *Journal) rewrite(recs []journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := os.Rename(tmp, j.path); err != nil {
		f.Close()
		return err
	}
	old := j.f
	j.f = f
	old.Close()
	return nil
}

// journalState is the manager's journaling hook-up (nil when detached).
type journalState[V any] struct {
	j   *Journal
	enc func(V) ([]byte, error)
}

// AttachJournal wires j into the manager and replays its records:
// terminal jobs are restored into retention with their decoded results,
// interrupted jobs (submit without terminal) are restored as failed
// with an explicit reason, and the journal is compacted to the restored
// set. enc and dec translate the manager's value type to and from the
// journal's result bytes. Attach before the first Submit; replayed jobs
// respect TTL and MaxRetained exactly like jobs that finished in this
// process.
func (m *Manager[V]) AttachJournal(j *Journal, enc func(V) ([]byte, error), dec func([]byte) (V, error)) error {
	recs, err := j.replay()
	if err != nil {
		return err
	}

	// Fold records into per-job state, preserving first-seen order.
	type folded struct {
		submit   *journalRecord
		terminal *journalRecord
	}
	byID := map[string]*folded{}
	var order []string
	for i := range recs {
		rec := &recs[i]
		f, ok := byID[rec.ID]
		if !ok {
			f = &folded{}
			byID[rec.ID] = f
			order = append(order, rec.ID)
		}
		if rec.Op == "submit" {
			f.submit = rec
		} else {
			f.terminal = rec
		}
	}

	now := m.opts.Now()
	var restored []*job[V]
	for _, id := range order {
		f := byID[id]
		jb := &job[V]{id: id, cancel: func() {}, done: make(chan struct{})}
		// Replayed jobs are terminal: their done channel starts closed so
		// stream followers and other watchers never block on them.
		close(jb.done)
		switch {
		case f.submit != nil:
			jb.created = f.submit.T
			jb.client = f.submit.Client
			if c, err := engine.ParseClass(f.submit.Class); err == nil {
				jb.class = c
			}
		case f.terminal != nil:
			jb.created = f.terminal.T
		}
		if f.terminal == nil {
			// The crash interrupted this job between submit and finish:
			// surface that instead of silently dropping it.
			jb.state = StateFailed
			jb.err = fmt.Errorf("interrupted by server restart before completing")
			jb.finished = now
			j.mu.Lock()
			j.stats.RecoveredInterrupted++
			j.mu.Unlock()
		} else {
			jb.finished = f.terminal.T
			jb.started = jb.created
			switch f.terminal.Op {
			case "done":
				v, err := dec(f.terminal.Result)
				if err != nil {
					j.mu.Lock()
					j.stats.SkippedRecords++
					j.mu.Unlock()
					continue
				}
				jb.state, jb.val = StateDone, v
			case "failed":
				jb.state = StateFailed
				jb.err = fmt.Errorf("%s", f.terminal.Error)
			case "canceled":
				jb.state = StateCanceled
				jb.err = context.Canceled
			default:
				j.mu.Lock()
				j.stats.SkippedRecords++
				j.mu.Unlock()
				continue
			}
			j.mu.Lock()
			j.stats.RecoveredTerminal++
			j.mu.Unlock()
		}
		restored = append(restored, jb)
	}

	// Insert oldest-finished first so the retention list's back is the
	// eviction end, exactly as live finishes maintain it.
	sort.SliceStable(restored, func(a, b int) bool {
		return restored[a].finished.Before(restored[b].finished)
	})
	m.mu.Lock()
	for _, jb := range restored {
		if _, exists := m.jobs[jb.id]; exists {
			continue
		}
		m.jobs[jb.id] = jb
		jb.el = m.done.PushFront(jb)
	}
	m.evictLocked()
	m.pruneLocked()

	// Compact: the journal restarts as exactly the records that
	// reconstruct the retained set.
	compacted := make([]journalRecord, 0, 2*m.done.Len())
	for el := m.done.Back(); el != nil; el = el.Prev() {
		jb := el.Value.(*job[V])
		compacted = append(compacted, journalRecord{Op: "submit", ID: jb.id, Class: jb.class.String(), Client: jb.client, T: jb.created})
		rec := journalRecord{ID: jb.id, T: jb.finished}
		switch jb.state {
		case StateDone:
			rec.Op = "done"
			if b, err := enc(jb.val); err == nil {
				rec.Result = b
			}
		case StateCanceled:
			rec.Op = "canceled"
		default:
			rec.Op = "failed"
			if jb.err != nil {
				rec.Error = jb.err.Error()
			}
		}
		compacted = append(compacted, rec)
	}
	m.journal = &journalState[V]{j: j, enc: enc}
	m.mu.Unlock()
	return j.rewrite(compacted)
}

// journalFinish logs a terminal transition with its result bytes
// (best-effort: errors degrade persistence, counted in JournalStats,
// and never affect the in-memory job).
func (m *Manager[V]) journalFinish(jr *journalState[V], j *job[V]) {
	rec := journalRecord{ID: j.id, T: j.finished}
	switch j.state {
	case StateDone:
		rec.Op = "done"
		b, err := jr.enc(j.val)
		if err != nil {
			// An unencodable result persists as a failure: replaying it as
			// "done" with no bytes would be a lie a client can fetch.
			rec.Op = "failed"
			rec.Error = "journal: result not persistable: " + err.Error()
		} else {
			rec.Result = b
		}
	case StateCanceled:
		rec.Op = "canceled"
	default:
		rec.Op = "failed"
		if j.err != nil {
			rec.Error = j.err.Error()
		}
	}
	_ = jr.j.append(rec, true)
}
