// Package thermal models the cooling path between a GPU die and its
// environment for the three cooling technologies studied in the paper:
// forced air (Longhorn, Corona, CloudLab), facility water (Vortex,
// Summit), and immersion mineral oil (Frontera).
//
// Each GPU gets a first-order RC thermal node:
//
//	C · dT/dt = P − (T − T_ambient)/R
//
// so the steady-state die temperature is T_ambient + P·R and transients
// settle with time constant R·C. Cooling technology determines the
// distribution of R and ambient (inlet) temperature across the fleet:
// air has both a large mean spread and position-dependent gradients,
// water is tight, oil sits between with a high baseline (paper
// Takeaway 3 and §IV-F).
package thermal

import (
	"fmt"
	"math"

	"gpuvar/internal/rng"
)

// Cooling identifies the heat-removal technology.
type Cooling int

// Cooling technologies from paper Table I.
const (
	Air Cooling = iota
	Water
	MineralOil
)

// String returns the cooling name as used in paper Table I.
func (c Cooling) String() string {
	switch c {
	case Air:
		return "air"
	case Water:
		return "water"
	case MineralOil:
		return "mineral oil"
	default:
		return fmt.Sprintf("Cooling(%d)", int(c))
	}
}

// Params describes the fleet-level distribution of thermal conditions
// for one cluster. Individual nodes are sampled from these.
type Params struct {
	Cooling Cooling

	// ResistCPerW is the mean die-to-ambient thermal resistance.
	ResistCPerW float64
	// ResistSpread is the lognormal coefficient of variation of the
	// resistance (heatsink seating, airflow shadowing, pump balance).
	ResistSpread float64

	// AmbientC is the mean inlet/coolant temperature at the GPU.
	AmbientC float64
	// AmbientSpreadC is the Gaussian stddev of inlet temperature across
	// the fleet (hot aisles, rack position, loop order).
	AmbientSpreadC float64
	// PositionGradientC biases ambient temperature by normalized fleet
	// position (0..1), modeling hot rows / top-of-rack effects in
	// air-cooled rooms. Zero for liquid cooling.
	PositionGradientC float64

	// TimeConstantS is the R·C settling time constant.
	TimeConstantS float64

	// RunDriftC is the Gaussian stddev of run-to-run inlet temperature
	// drift at one GPU (facility load, time of day). It drives the
	// repeat-measurement variation of paper Fig. 8 — and is the knob
	// that makes coarse-P-state parts (Corona) flip states between
	// runs.
	RunDriftC float64
}

// AirParams returns calibrated air-cooling parameters. Air-cooled
// clusters show a ≥30 °C fleet temperature range (paper Takeaway 1).
func AirParams() Params {
	return Params{
		Cooling:           Air,
		ResistCPerW:       0.115,
		ResistSpread:      0.12,
		AmbientC:          33,
		AmbientSpreadC:    4.8,
		PositionGradientC: 7,
		TimeConstantS:     18,
		RunDriftC:         1.3,
	}
}

// WaterParams returns calibrated facility-water parameters. Water keeps
// both the mean and the spread low (Vortex median 46 °C, Summit
// 40–62 °C).
func WaterParams() Params {
	return Params{
		Cooling:           Water,
		ResistCPerW:       0.082,
		ResistSpread:      0.06,
		AmbientC:          22,
		AmbientSpreadC:    1.8,
		PositionGradientC: 0,
		TimeConstantS:     10,
		RunDriftC:         0.35,
	}
}

// OilParams returns calibrated mineral-oil immersion parameters: a high
// baseline (Frontera median 76 °C) with a narrow spread
// (Q3−Q1 = 4 °C, paper §IV-F).
func OilParams() Params {
	return Params{
		Cooling:           MineralOil,
		ResistCPerW:       0.225,
		ResistSpread:      0.035,
		AmbientC:          26,
		AmbientSpreadC:    1.2,
		PositionGradientC: 0,
		TimeConstantS:     35,
		RunDriftC:         0.5,
	}
}

// ParamsFor returns the default parameters for a cooling technology.
func ParamsFor(c Cooling) Params {
	switch c {
	case Air:
		return AirParams()
	case Water:
		return WaterParams()
	case MineralOil:
		return OilParams()
	default:
		panic(fmt.Sprintf("thermal: unknown cooling %d", int(c)))
	}
}

// Node is one GPU's sampled thermal environment plus its transient
// state. The zero value is not useful; create with NewNode.
type Node struct {
	// ResistCPerW is this node's die-to-ambient resistance (before any
	// chip-level cooling-defect multiplier).
	ResistCPerW float64
	// AmbientC is this node's inlet temperature.
	AmbientC float64
	// CapJPerC is the thermal capacitance (J/°C).
	CapJPerC float64

	// TempC is the current die temperature.
	TempC float64
}

// NewNode samples a thermal node for a GPU at normalized fleet position
// pos (0..1). The node starts at its idle-equilibrium temperature for
// zero power (= ambient).
func NewNode(p Params, pos float64, r *rng.Source) *Node {
	amb := p.AmbientC + p.PositionGradientC*(pos-0.5)
	if r != nil {
		if p.AmbientSpreadC > 0 {
			amb += r.Gaussian(0, p.AmbientSpreadC)
		}
	}
	res := p.ResistCPerW
	if r != nil && p.ResistSpread > 0 {
		res = r.LogNormalMeanSpread(p.ResistCPerW, p.ResistSpread)
	}
	capacity := 150.0
	if res > 0 && p.TimeConstantS > 0 {
		capacity = p.TimeConstantS / res
	}
	return &Node{
		ResistCPerW: res,
		AmbientC:    amb,
		CapJPerC:    capacity,
		TempC:       amb,
	}
}

// SteadyTempC returns the equilibrium die temperature at sustained power
// p (watts) with an extra resistance multiplier (1 for healthy cooling).
func (n *Node) SteadyTempC(powerW, resistFactor float64) float64 {
	return n.AmbientC + powerW*n.ResistCPerW*resistFactor
}

// Step advances the die temperature by dtS seconds at power powerW with
// the given resistance multiplier, using the exact exponential solution
// of the RC equation over the step (stable for any dt).
func (n *Node) Step(dtS, powerW, resistFactor float64) {
	target := n.SteadyTempC(powerW, resistFactor)
	tau := n.ResistCPerW * resistFactor * n.CapJPerC
	if tau <= 0 {
		n.TempC = target
		return
	}
	// Exact first-order decay toward the target over dt.
	n.TempC = target + (n.TempC-target)*math.Exp(-dtS/tau)
}
