package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvar/internal/rng"
	"gpuvar/internal/stats"
)

func TestCoolingString(t *testing.T) {
	if Air.String() != "air" || Water.String() != "water" || MineralOil.String() != "mineral oil" {
		t.Fatal("cooling names wrong")
	}
}

func TestParamsFor(t *testing.T) {
	for _, c := range []Cooling{Air, Water, MineralOil} {
		p := ParamsFor(c)
		if p.Cooling != c {
			t.Errorf("ParamsFor(%v) has cooling %v", c, p.Cooling)
		}
		if p.ResistCPerW <= 0 || p.TimeConstantS <= 0 {
			t.Errorf("ParamsFor(%v) implausible: %+v", c, p)
		}
	}
}

func TestSteadyTemp(t *testing.T) {
	n := &Node{ResistCPerW: 0.1, AmbientC: 30, CapJPerC: 100, TempC: 30}
	if got := n.SteadyTempC(300, 1); got != 60 {
		t.Fatalf("steady = %v, want 60", got)
	}
	if got := n.SteadyTempC(300, 2); got != 90 {
		t.Fatalf("steady with defect = %v, want 90", got)
	}
}

func TestStepConvergesToSteady(t *testing.T) {
	n := &Node{ResistCPerW: 0.1, AmbientC: 30, CapJPerC: 100, TempC: 30}
	for i := 0; i < 20000; i++ {
		n.Step(0.01, 250, 1)
	}
	want := n.SteadyTempC(250, 1)
	if math.Abs(n.TempC-want) > 0.01 {
		t.Fatalf("did not converge: %v vs %v", n.TempC, want)
	}
}

func TestStepMonotoneApproach(t *testing.T) {
	n := &Node{ResistCPerW: 0.1, AmbientC: 30, CapJPerC: 100, TempC: 30}
	prev := n.TempC
	for i := 0; i < 100; i++ {
		n.Step(0.1, 250, 1)
		if n.TempC < prev-1e-12 {
			t.Fatalf("temperature decreased while heating at step %d", i)
		}
		prev = n.TempC
	}
	// Never overshoots the steady state regardless of dt.
	n2 := &Node{ResistCPerW: 0.1, AmbientC: 30, CapJPerC: 100, TempC: 30}
	n2.Step(1e6, 250, 1)
	if n2.TempC > n.SteadyTempC(250, 1)+1e-9 {
		t.Fatalf("huge dt overshot steady state: %v", n2.TempC)
	}
}

func TestStepCoolsWhenIdle(t *testing.T) {
	n := &Node{ResistCPerW: 0.1, AmbientC: 30, CapJPerC: 100, TempC: 80}
	n.Step(1000, 0, 1)
	if math.Abs(n.TempC-30) > 0.01 {
		t.Fatalf("idle GPU should cool to ambient: %v", n.TempC)
	}
}

func TestNewNodeStartsAtAmbient(t *testing.T) {
	n := NewNode(WaterParams(), 0.5, rng.New(1))
	if n.TempC != n.AmbientC {
		t.Fatalf("node should start at ambient: %v vs %v", n.TempC, n.AmbientC)
	}
}

func TestNewNodeDeterministic(t *testing.T) {
	a := NewNode(AirParams(), 0.3, rng.New(9))
	b := NewNode(AirParams(), 0.3, rng.New(9))
	if a.ResistCPerW != b.ResistCPerW || a.AmbientC != b.AmbientC {
		t.Fatal("same seed should sample same node")
	}
}

func TestPositionGradient(t *testing.T) {
	p := AirParams()
	p.AmbientSpreadC = 0 // isolate the gradient
	cold := NewNode(p, 0, nil)
	hot := NewNode(p, 1, nil)
	if hot.AmbientC-cold.AmbientC != p.PositionGradientC {
		t.Fatalf("gradient = %v, want %v", hot.AmbientC-cold.AmbientC, p.PositionGradientC)
	}
}

// fleetTempSpread samples a fleet at the given sustained power and
// returns the box-plot of steady temperatures.
func fleetTempSpread(t *testing.T, p Params, powerW float64, n int) stats.BoxPlot {
	t.Helper()
	parent := rng.New(1234)
	temps := make([]float64, n)
	for i := range temps {
		node := NewNode(p, float64(i)/float64(n-1), parent.SplitIndex("n", i))
		temps[i] = node.SteadyTempC(powerW, 1)
	}
	bp, err := stats.NewBoxPlot(temps)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func TestCoolingOrderingMatchesPaper(t *testing.T) {
	// Paper Takeaway 3 + §IV-F: air has the widest temperature spread,
	// water the narrowest, oil in between; oil has the hottest median,
	// water the coolest.
	const power = 295
	air := fleetTempSpread(t, AirParams(), power, 400)
	water := fleetTempSpread(t, WaterParams(), power, 400)
	oil := fleetTempSpread(t, OilParams(), power, 400)

	if !(air.Range() > oil.Range() && oil.Range() > water.Range()) {
		t.Fatalf("spread ordering wrong: air %v, oil %v, water %v",
			air.Range(), oil.Range(), water.Range())
	}
	if !(oil.Q2 > air.Q2 && air.Q2 > water.Q2) {
		t.Fatalf("median ordering wrong: oil %v, air %v, water %v",
			oil.Q2, air.Q2, water.Q2)
	}
}

func TestAirSpreadMagnitude(t *testing.T) {
	// Paper Fig 2: air-cooled Longhorn has a ≥30 °C temperature range at
	// SGEMM power, with medians in the 60s.
	bp := fleetTempSpread(t, AirParams(), 295, 400)
	if bp.Range() < 30 {
		t.Errorf("air range %v °C, want ≥ 30", bp.Range())
	}
	if bp.Q2 < 55 || bp.Q2 > 75 {
		t.Errorf("air median %v °C, want around 66", bp.Q2)
	}
}

func TestWaterSpreadMagnitude(t *testing.T) {
	// Paper Fig 9: Vortex (water) median ~46 °C, Q3−Q1 ≈ 10 °C or less.
	bp := fleetTempSpread(t, WaterParams(), 297, 400)
	if bp.Q2 < 40 || bp.Q2 > 55 {
		t.Errorf("water median %v °C, want around 46", bp.Q2)
	}
	if iqr := bp.Q3 - bp.Q1; iqr > 11 {
		t.Errorf("water IQR %v °C too wide", iqr)
	}
}

func TestOilSpreadMagnitude(t *testing.T) {
	// Paper §IV-F: Frontera (oil) median 76 °C at ~225 W with
	// Q3−Q1 = 4 °C.
	bp := fleetTempSpread(t, OilParams(), 222, 400)
	if bp.Q2 < 70 || bp.Q2 > 82 {
		t.Errorf("oil median %v °C, want around 76", bp.Q2)
	}
	if iqr := bp.Q3 - bp.Q1; iqr > 6.5 {
		t.Errorf("oil IQR %v °C too wide, want ~4", iqr)
	}
}

// Property: Step never crosses the steady-state target from either side.
func TestStepNoOvershootProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := &Node{
			ResistCPerW: 0.05 + r.Float64()*0.3,
			AmbientC:    15 + r.Float64()*25,
			CapJPerC:    50 + r.Float64()*300,
		}
		n.TempC = n.AmbientC + r.Float64()*60
		power := r.Float64() * 320
		target := n.SteadyTempC(power, 1)
		for i := 0; i < 50; i++ {
			before := n.TempC
			n.Step(r.Float64()*5, power, 1)
			// Must move toward target, never past it.
			if (before <= target && (n.TempC < before-1e-9 || n.TempC > target+1e-9)) ||
				(before >= target && (n.TempC > before+1e-9 || n.TempC < target-1e-9)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkStep(b *testing.B) {
	n := NewNode(AirParams(), 0.5, rng.New(1))
	for i := 0; i < b.N; i++ {
		n.Step(0.001, 290, 1)
	}
}
