package service

// GET /metrics renders the /v1/stats snapshot in the Prometheus text
// exposition format (version 0.0.4) — hand-rolled, no client library.
// Counters that only ever grow are exported as `counter` families with
// the conventional _total suffix; instantaneous depths and occupancies
// are `gauge`s. Per-class, per-client, and per-site series carry
// labels, so one scrape shows which tenant is queuing, which class is
// saturated, and which fault sites are firing. Families appear in a
// fixed order and label values are escaped per the format, so the
// output is deterministic for a given snapshot and lintable by
// exposition-format checkers.

import (
	"fmt"
	"net/http"
	"strings"

	"gpuvar/internal/dispatch"
)

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.snapshot()
	var b strings.Builder

	family := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	sample := func(name, labels string, v float64) {
		if labels != "" {
			labels = "{" + labels + "}"
		}
		// %g, but integers (the overwhelming majority) print without an
		// exponent; Prometheus parses either.
		fmt.Fprintf(&b, "%s%s %g\n", name, labels, v)
	}
	label := func(k, v string) string { return k + `="` + promEscape(v) + `"` }

	family("gpuvar_uptime_seconds", "gauge", "Seconds since the server started.")
	sample("gpuvar_uptime_seconds", "", snap.UptimeSeconds)

	family("gpuvar_sessions", "gauge", "Live figure sessions held by the session LRU.")
	sample("gpuvar_sessions", "", float64(snap.Sessions))

	family("gpuvar_degraded_serves_total", "counter", "Responses served stale from the degraded store after a compute failure.")
	sample("gpuvar_degraded_serves_total", "", float64(snap.DegradedServes))

	// Response cache.
	c := snap.Cache
	family("gpuvar_response_cache_entries", "gauge", "Rendered responses held by the response LRU.")
	sample("gpuvar_response_cache_entries", "", float64(c.Entries))
	family("gpuvar_response_cache_in_flight", "gauge", "Response computations currently in flight.")
	sample("gpuvar_response_cache_in_flight", "", float64(c.InFlight))
	family("gpuvar_response_cache_stale_entries", "gauge", "Evicted responses retained for degraded serving.")
	sample("gpuvar_response_cache_stale_entries", "", float64(c.StaleEntries))
	family("gpuvar_response_cache_events_total", "counter", "Response cache events by kind.")
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"hit", c.Hits}, {"miss", c.Misses}, {"coalesced", c.Coalesced},
		{"aborted", c.Aborted}, {"eviction", c.Evictions}, {"stale_served", c.StaleServed},
	} {
		sample("gpuvar_response_cache_events_total", label("kind", kv.kind), float64(kv.v))
	}

	// Execution engine.
	e := snap.Engine
	family("gpuvar_engine_jobs_total", "counter", "Engine jobs by terminal state (started counts launches).")
	for _, kv := range []struct {
		state string
		v     uint64
	}{
		{"started", e.JobsStarted}, {"completed", e.JobsCompleted},
		{"canceled", e.JobsCanceled}, {"failed", e.JobsFailed},
	} {
		sample("gpuvar_engine_jobs_total", label("state", kv.state), float64(kv.v))
	}
	family("gpuvar_engine_in_flight_jobs", "gauge", "Engine jobs currently executing.")
	sample("gpuvar_engine_in_flight_jobs", "", float64(e.InFlightJobs))
	family("gpuvar_engine_shards_completed_total", "counter", "Engine shards completed.")
	sample("gpuvar_engine_shards_completed_total", "", float64(e.ShardsCompleted))
	family("gpuvar_engine_transient_shard_errors_total", "counter", "Shard attempts that failed with a retryable error.")
	sample("gpuvar_engine_transient_shard_errors_total", "", float64(e.TransientShardErrors))
	family("gpuvar_engine_retries_total", "counter", "Shard re-executions spent by the retry policy.")
	sample("gpuvar_engine_retries_total", "", float64(e.Retries))
	family("gpuvar_engine_hedges_total", "counter", "Straggler duplicates launched by the hedge watchdog.")
	sample("gpuvar_engine_hedges_total", "", float64(e.Hedges))
	family("gpuvar_engine_hedge_wins_total", "counter", "Hedged duplicates whose result was used.")
	sample("gpuvar_engine_hedge_wins_total", "", float64(e.HedgeWins))
	family("gpuvar_engine_budget_tokens", "gauge", "Worker-budget capacity and per-class occupancy.")
	sample("gpuvar_engine_budget_tokens", label("kind", "capacity"), float64(e.Budget.Capacity))
	sample("gpuvar_engine_budget_tokens", label("kind", "batch_cap"), float64(e.Budget.BatchCap))
	sample("gpuvar_engine_budget_tokens", label("kind", "in_use_interactive"), float64(e.Budget.InUseInteractive))
	sample("gpuvar_engine_budget_tokens", label("kind", "in_use_batch"), float64(e.Budget.InUseBatch))

	// Async job manager.
	j := snap.Jobs
	family("gpuvar_jobs_total", "counter", "Async jobs by lifecycle event.")
	for _, kv := range []struct {
		event string
		v     uint64
	}{
		{"submitted", j.Submitted}, {"done", j.Done}, {"failed", j.Failed},
		{"canceled", j.Canceled}, {"evicted", j.Evicted},
	} {
		sample("gpuvar_jobs_total", label("event", kv.event), float64(kv.v))
	}
	family("gpuvar_jobs_shed_total", "counter", "Async submissions rejected at an admission bound, by scope.")
	// Shed counts both scopes; export disjoint series so they sum.
	sample("gpuvar_jobs_shed_total", label("scope", "class"), float64(j.Shed-j.ShedClient))
	sample("gpuvar_jobs_shed_total", label("scope", "client"), float64(j.ShedClient))
	family("gpuvar_jobs_queued", "gauge", "Async jobs waiting to run, by class.")
	sample("gpuvar_jobs_queued", label("class", "interactive"), float64(j.QueuedInteractive))
	sample("gpuvar_jobs_queued", label("class", "batch"), float64(j.QueuedBatch))
	family("gpuvar_jobs_running", "gauge", "Async jobs currently running, by class.")
	sample("gpuvar_jobs_running", label("class", "interactive"), float64(j.RunningInteractive))
	sample("gpuvar_jobs_running", label("class", "batch"), float64(j.RunningBatch))
	family("gpuvar_jobs_retained", "gauge", "Terminal jobs retained for polling.")
	sample("gpuvar_jobs_retained", "", float64(j.Retained))

	// Per-client fairness accounting (jobs.Stats sorts by client ID, so
	// series order is stable across scrapes).
	family("gpuvar_client_weight", "gauge", "Configured fair-share weight per client.")
	family("gpuvar_client_queued", "gauge", "Queued async jobs per client.")
	family("gpuvar_client_running", "gauge", "Running async jobs per client.")
	family("gpuvar_client_shed_total", "counter", "Rejected submissions per client (both scopes).")
	family("gpuvar_client_served_total", "counter", "Jobs finished in state done per client.")
	for _, cl := range j.Clients {
		l := label("client", cl.Client)
		sample("gpuvar_client_weight", l, float64(cl.Weight))
		sample("gpuvar_client_queued", l, float64(cl.Queued))
		sample("gpuvar_client_running", l, float64(cl.Running))
		sample("gpuvar_client_shed_total", l, float64(cl.Shed))
		sample("gpuvar_client_served_total", l, float64(cl.Served))
	}

	// Job journal (absent when persistence is off).
	if j.Journal != nil {
		jn := j.Journal
		family("gpuvar_journal_appended_total", "counter", "Journal records written this process lifetime.")
		sample("gpuvar_journal_appended_total", "", float64(jn.Appended))
		family("gpuvar_journal_write_errors_total", "counter", "Journal appends that failed.")
		sample("gpuvar_journal_write_errors_total", "", float64(jn.WriteErrors))
		family("gpuvar_journal_recovered_total", "counter", "Jobs recovered from the journal on boot, by disposition.")
		sample("gpuvar_journal_recovered_total", label("disposition", "terminal"), float64(jn.RecoveredTerminal))
		sample("gpuvar_journal_recovered_total", label("disposition", "interrupted"), float64(jn.RecoveredInterrupted))
		family("gpuvar_journal_skipped_records_total", "counter", "Corrupt journal records dropped during recovery.")
		sample("gpuvar_journal_skipped_records_total", "", float64(jn.SkippedRecords))
		family("gpuvar_journal_truncated_bytes_total", "counter", "Bytes cut from the journal tail during recovery.")
		sample("gpuvar_journal_truncated_bytes_total", "", float64(jn.TruncatedBytes))
	}

	// Fleet cache.
	f := snap.FleetCache
	family("gpuvar_fleet_cache_entries", "gauge", "Cached fleets plus in-flight instantiations.")
	sample("gpuvar_fleet_cache_entries", "", float64(f.Entries))
	family("gpuvar_fleet_cache_in_flight", "gauge", "Fleet instantiations currently in flight.")
	sample("gpuvar_fleet_cache_in_flight", "", float64(f.InFlight))
	family("gpuvar_fleet_cache_events_total", "counter", "Fleet cache events by kind.")
	for _, kv := range []struct {
		kind string
		v    uint64
	}{
		{"hit", f.Hits}, {"miss", f.Misses},
		{"eviction", f.Evictions}, {"admission_skip", f.AdmissionSkips},
	} {
		sample("gpuvar_fleet_cache_events_total", label("kind", kv.kind), float64(kv.v))
	}

	// Analytical estimator.
	est := snap.Estimate
	family("gpuvar_estimate_calls_total", "counter", "Closed-form estimator point evaluations (no simulation).")
	sample("gpuvar_estimate_calls_total", "", float64(est.Calls))
	family("gpuvar_estimate_calibrations_total", "counter", "Estimator calibrations fitted from full-simulation anchor runs.")
	sample("gpuvar_estimate_calibrations_total", "", float64(est.Calibrations))
	family("gpuvar_estimate_screened_out_total", "counter", "Adaptive-sweep variants answered analytically instead of simulated.")
	sample("gpuvar_estimate_screened_out_total", "", float64(est.ScreenedOut))
	family("gpuvar_estimate_full_sim_total", "counter", "Adaptive-sweep variants that fell back to full simulation.")
	sample("gpuvar_estimate_full_sim_total", "", float64(est.FullSim))
	family("gpuvar_estimate_max_calibration_residual", "gauge", "Largest relative anchor residual any calibration has observed.")
	sample("gpuvar_estimate_max_calibration_residual", "", est.MaxResidual)

	// Replica dispatch (absent in single-process serving). The warm/cold
	// split is the affinity policy's scoreboard: warm shards landed on a
	// replica whose fleet cache already held their fleet.
	if d := snap.Dispatch; d != nil {
		family("gpuvar_dispatch_shards_total", "counter", "Dispatched sweep shards by where they executed.")
		sample("gpuvar_dispatch_shards_total", label("target", "local"), float64(d.ShardsLocal))
		sample("gpuvar_dispatch_shards_total", label("target", "remote"), float64(d.ShardsRemote))
		family("gpuvar_dispatch_warm_shards_total", "counter", "Shards executed where the fleet cache was already warm, by warmth.")
		sample("gpuvar_dispatch_warm_shards_total", label("warmth", "warm"), float64(d.WarmShards))
		sample("gpuvar_dispatch_warm_shards_total", label("warmth", "cold"), float64(d.ColdShards))
		family("gpuvar_dispatch_remote_errors_total", "counter", "Remote shard executions that failed (each ejects its peer).")
		sample("gpuvar_dispatch_remote_errors_total", "", float64(d.RemoteErrors))
		family("gpuvar_dispatch_local_fallbacks_total", "counter", "Shard picks forced local because every peer was ejected.")
		sample("gpuvar_dispatch_local_fallbacks_total", "", float64(d.LocalFallbacks))
		// Each per-peer family emits its header and then all its samples:
		// the exposition format keeps a metric's lines in one group.
		perPeer := func(name, typ, help string, v func(dispatch.PeerStats) float64) {
			family(name, typ, help)
			for _, p := range d.Peers {
				sample(name, label("peer", p.URL), v(p))
			}
		}
		perPeer("gpuvar_dispatch_peer_healthy", "gauge", "Peer health (1 = routing candidate) by peer URL.", func(p dispatch.PeerStats) float64 {
			if p.Healthy {
				return 1
			}
			return 0
		})
		perPeer("gpuvar_dispatch_peer_load", "gauge", "Peer worker-budget occupancy at its last successful probe.", func(p dispatch.PeerStats) float64 { return float64(p.Load) })
		perPeer("gpuvar_dispatch_peer_dispatched_total", "counter", "Shards dispatched per peer.", func(p dispatch.PeerStats) float64 { return float64(p.Dispatched) })
		perPeer("gpuvar_dispatch_peer_probe_failures_total", "counter", "Failed health probes per peer.", func(p dispatch.PeerStats) float64 { return float64(p.ProbeFailures) })
		perPeer("gpuvar_dispatch_peer_ejections_total", "counter", "Times each peer left the routing candidate set.", func(p dispatch.PeerStats) float64 { return float64(p.Ejections) })
		perPeer("gpuvar_dispatch_peer_readmissions_total", "counter", "Times each peer rejoined the routing candidate set.", func(p dispatch.PeerStats) float64 { return float64(p.Readmissions) })
	}

	// Fault-injection sites (absent in normal serving; faults.Snapshot
	// sorts by site name).
	if len(snap.Faults) > 0 {
		family("gpuvar_fault_checks_total", "counter", "Times an armed fault site was evaluated.")
		family("gpuvar_fault_injected_total", "counter", "Times an armed fault site fired.")
		for _, site := range snap.Faults {
			l := label("site", site.Site) + "," + label("behavior", site.Behavior)
			sample("gpuvar_fault_checks_total", l, float64(site.Checks))
			sample("gpuvar_fault_injected_total", l, float64(site.Injected))
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// promEscape escapes a label value per the exposition format: backslash,
// double quote, and newline.
func promEscape(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`).Replace(s)
}
