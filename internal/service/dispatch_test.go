package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuvar/internal/figures"
)

// newReplicaPair boots a peer replica (a real Server behind httptest)
// and a front replica dispatching to it, with the prober disabled and
// one synchronous probe run so membership is deterministic.
func newReplicaPair(t *testing.T, policy string) (front *Server, peerURL string) {
	t.Helper()
	peer := testServer()
	ts := httptest.NewServer(peer)
	t.Cleanup(ts.Close)
	t.Cleanup(func() { peer.Close() })

	front = mustNew(Options{
		Figures:           figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		Peers:             []string{ts.URL},
		RoutePolicy:       policy,
		SelfURL:           "http://front.test:8080",
		PeerProbeInterval: -1,
	})
	t.Cleanup(func() { front.Close() })
	front.dispatcher.ProbeNow(context.Background())
	if front.dispatcher.HealthyPeers() != 1 {
		t.Fatal("peer replica did not pass its health probe")
	}
	return front, ts.URL
}

const dispatchSweepBody = `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300,250,200]}`

// TestDispatchedSweepByteIdentity is the golden test of the PR: the
// same sweep served single-process and served with every shard executed
// on a peer replica must produce byte-identical bodies.
func TestDispatchedSweepByteIdentity(t *testing.T) {
	single := testServer()
	defer single.Close()
	want := doReq(t, single, "POST", "/v1/sweep", dispatchSweepBody)
	if want.Code != 200 {
		t.Fatalf("single-process sweep: %d %s", want.Code, want.Body)
	}

	front, _ := newReplicaPair(t, "roundrobin")
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(dispatchSweepBody))
	req.Header.Set(routeDirectiveHeader, routeRemote) // force every shard onto the peer
	rr := httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("dispatched sweep: %d %s", rr.Code, rr.Body)
	}
	if rr.Body.String() != want.Body.String() {
		t.Fatalf("dispatched body diverges from single-process body:\n%s\nvs\n%s", rr.Body, want.Body)
	}
	st := front.dispatcher.Stats()
	if st.ShardsRemote != 3 || st.ShardsLocal != 0 {
		t.Fatalf("shards local/remote = %d/%d, want 0/3 under the remote directive", st.ShardsLocal, st.ShardsRemote)
	}
}

// TestDispatchedStreamByteIdentity: the streamed spelling dispatches
// shard-by-shard and still reassembles to the synchronous bytes.
func TestDispatchedStreamByteIdentity(t *testing.T) {
	single := testServer()
	defer single.Close()
	want := doReq(t, single, "POST", "/v1/sweep", dispatchSweepBody)
	if want.Code != 200 {
		t.Fatalf("single-process sweep: %d %s", want.Code, want.Body)
	}

	front, _ := newReplicaPair(t, "affinity")
	req := httptest.NewRequest("GET", "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=300,250,200", nil)
	req.Header.Set(routeDirectiveHeader, routeRemote)
	rr := httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("stream: %d %s", rr.Code, rr.Body)
	}
	var body strings.Builder
	dec := json.NewDecoder(rr.Body)
	for dec.More() {
		var line struct {
			Kind    string `json:"kind"`
			Payload string `json:"payload"`
			Error   string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Kind == "error" {
			t.Fatalf("stream failed in-band: %s", line.Error)
		}
		body.WriteString(line.Payload)
	}
	if body.String() != want.Body.String() {
		t.Fatalf("reassembled dispatched stream diverges from single-process body")
	}
	if st := front.dispatcher.Stats(); st.ShardsRemote != 3 {
		t.Fatalf("shards_remote = %d, want 3", st.ShardsRemote)
	}
}

// TestDispatchedJobByteIdentity: the async job path re-attaches the
// dispatcher under the manager's context, so jobs fan out too.
func TestDispatchedJobByteIdentity(t *testing.T) {
	jobSweep := `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[280,230]}`
	single := testServer()
	defer single.Close()
	want := doReq(t, single, "POST", "/v1/sweep", jobSweep)
	if want.Code != 200 {
		t.Fatalf("single-process sweep: %d %s", want.Code, want.Body)
	}

	front, _ := newReplicaPair(t, "roundrobin")
	rr := doReq(t, front, "POST", "/v1/jobs", `{"kind":"sweep","class":"interactive","sweep":`+jobSweep+`}`)
	if rr.Code != 202 {
		t.Fatalf("submit: %d %s", rr.Code, rr.Body)
	}
	loc := rr.Header().Get("Location")
	deadline := time.Now().Add(30 * time.Second)
	for {
		res := doReq(t, front, "GET", loc+"/result", "")
		if res.Code == 200 {
			if res.Body.String() != want.Body.String() {
				t.Fatalf("job result diverges from single-process body")
			}
			break
		}
		if res.Code != 409 {
			t.Fatalf("result: %d %s", res.Code, res.Body)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := front.dispatcher.Stats()
	if st.ShardsLocal+st.ShardsRemote != 2 {
		t.Fatalf("dispatched %d+%d shards, want 2 total", st.ShardsLocal, st.ShardsRemote)
	}
}

func TestRemoteOnlyAllPeersDownAnswers502(t *testing.T) {
	front := mustNew(Options{
		Figures:           figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		Peers:             []string{"http://127.0.0.1:9"}, // never probed, never healthy
		SelfURL:           "http://front.test:8080",
		PeerProbeInterval: -1,
	})
	defer front.Close()

	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(dispatchSweepBody))
	req.Header.Set(routeDirectiveHeader, routeRemote)
	rr := httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 502 {
		t.Fatalf("status = %d, want 502; body %s", rr.Code, rr.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "replica_unavailable" {
		t.Fatalf("code = %q, want replica_unavailable", eb.Code)
	}
	// Without the remote directive the same request degrades gracefully
	// to local execution instead.
	rr2 := doReq(t, front, "POST", "/v1/sweep", dispatchSweepBody)
	if rr2.Code != 200 {
		t.Fatalf("local fallback: %d %s", rr2.Code, rr2.Body)
	}
	if st := front.dispatcher.Stats(); st.LocalFallbacks == 0 {
		t.Fatal("local fallbacks not counted")
	}
}

func TestStrictAffinityWrongReplica(t *testing.T) {
	front, peerURL := newReplicaPair(t, "affinity")

	// Scan seeds until we find one sweep the peer owns and one this
	// replica owns — rendezvous hashing guarantees both exist nearby.
	ownedBySelf, ownedByPeer := "", ""
	for seed := 1; seed <= 64 && (ownedBySelf == "" || ownedByPeer == ""); seed++ {
		body := fmt.Sprintf(`{"cluster":"CloudLab","iterations":2,"seed":%d,"axis":"powercap","values":[300]}`, seed)
		req := sweepRequest{}
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		key, _, _, err := sweepComputation(&req)
		if err != nil {
			t.Fatal(err)
		}
		if _, self := front.dispatcher.Owner(key); self {
			ownedBySelf = body
		} else {
			ownedByPeer = body
		}
	}
	if ownedBySelf == "" || ownedByPeer == "" {
		t.Fatal("could not find both placements in 64 seeds")
	}

	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(ownedByPeer))
	req.Header.Set(routeDirectiveHeader, routeStrictAffinity)
	rr := httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 421 {
		t.Fatalf("peer-owned strict request: %d, want 421; body %s", rr.Code, rr.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "wrong_replica" {
		t.Fatalf("code = %q, want wrong_replica", eb.Code)
	}
	if got := rr.Header().Get(ownerHeader); got != peerURL {
		t.Fatalf("%s = %q, want the owner %q", ownerHeader, got, peerURL)
	}

	req = httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(ownedBySelf))
	req.Header.Set(routeDirectiveHeader, routeStrictAffinity)
	rr = httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("self-owned strict request: %d, want 200; body %s", rr.Code, rr.Body)
	}
}

func TestBadRouteDirective(t *testing.T) {
	srv := testServer()
	defer srv.Close()
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(dispatchSweepBody))
	req.Header.Set(routeDirectiveHeader, "everywhere")
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 400 || !strings.Contains(rr.Body.String(), routeDirectiveHeader) {
		t.Fatalf("bad directive: %d %s, want 400 naming the header", rr.Code, rr.Body)
	}
}

func TestInternalRouteRefusesExternalClients(t *testing.T) {
	srv := testServer()
	defer srv.Close()

	// No dispatch marker: refused.
	rr := doReq(t, srv, "POST", "/v1/internal/shards", `{"sweep":{"values":[300]},"indices":[0]}`)
	if rr.Code != 403 {
		t.Fatalf("unmarked request: %d, want 403; body %s", rr.Code, rr.Body)
	}
	var eb errorBody
	if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "forbidden" {
		t.Fatalf("code = %q, want forbidden", eb.Code)
	}

	// Marker plus an external client identity: still refused — tenants
	// are not peers.
	req := httptest.NewRequest("POST", "/v1/internal/shards",
		strings.NewReader(`{"sweep":{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300]},"indices":[0]}`))
	req.Header.Set("X-GPUVar-Internal", "dispatch")
	req.Header.Set("X-API-Key", "tenant-a")
	rr2 := httptest.NewRecorder()
	srv.ServeHTTP(rr2, req)
	if rr2.Code != 403 {
		t.Fatalf("client-identified request: %d, want 403; body %s", rr2.Code, rr2.Body)
	}
}

func TestInternalRouteExecutesShards(t *testing.T) {
	srv := testServer()
	defer srv.Close()
	req := httptest.NewRequest("POST", "/v1/internal/shards",
		strings.NewReader(`{"sweep":{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300,250,200]},"indices":[2,0]}`))
	req.Header.Set("X-GPUVar-Internal", "dispatch")
	rr := httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("shards: %d %s", rr.Code, rr.Body)
	}
	var out struct {
		Points []struct {
			Index    int     `json:"index"`
			Value    float64 `json:"value"`
			MedianMs float64 `json:"median_ms"`
		} `json:"points"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 2 || out.Points[0].Index != 2 || out.Points[1].Index != 0 {
		t.Fatalf("points = %+v, want indices [2 0] in request order", out.Points)
	}
	if out.Points[0].Value != 200 || out.Points[1].Value != 300 {
		t.Fatalf("points carry wrong values: %+v", out.Points)
	}

	// Adaptive sweeps never dispatch, so the internal route rejects them.
	req = httptest.NewRequest("POST", "/v1/internal/shards",
		strings.NewReader(`{"sweep":{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300],"adaptive":true,"threshold":0.5},"indices":[0]}`))
	req.Header.Set("X-GPUVar-Internal", "dispatch")
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 400 || !strings.Contains(rr.Body.String(), "adaptive") {
		t.Fatalf("adaptive shard request: %d %s, want 400", rr.Code, rr.Body)
	}

	// Out-of-range indices are the dispatcher's bug, not a panic.
	req = httptest.NewRequest("POST", "/v1/internal/shards",
		strings.NewReader(`{"sweep":{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300]},"indices":[3]}`))
	req.Header.Set("X-GPUVar-Internal", "dispatch")
	rr = httptest.NewRecorder()
	srv.ServeHTTP(rr, req)
	if rr.Code != 400 || !strings.Contains(rr.Body.String(), "out of range") {
		t.Fatalf("bad index: %d %s, want 400 out of range", rr.Code, rr.Body)
	}
}

func TestDiscoveryDocument(t *testing.T) {
	srv := testServer()
	defer srv.Close()
	rr := doReq(t, srv, "GET", "/v1/", "")
	if rr.Code != 200 {
		t.Fatalf("discovery: %d %s", rr.Code, rr.Body)
	}
	var doc struct {
		Service string `json:"service"`
		API     string `json:"api_version"`
		Routes  []struct {
			Method    string `json:"method"`
			Path      string `json:"path"`
			Stability string `json:"stability"`
			Successor string `json:"successor"`
		} `json:"routes"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Service != "gpuvard" || doc.API != "v1" {
		t.Fatalf("doc header = %s/%s", doc.Service, doc.API)
	}
	byRoute := map[string]struct{ stability, successor string }{}
	for _, rt := range doc.Routes {
		byRoute[rt.Method+" "+rt.Path] = struct{ stability, successor string }{rt.Stability, rt.Successor}
	}
	for route, want := range map[string]struct{ stability, successor string }{
		"GET /v1/":                   {"stable", ""},
		"POST /v1/sweep":             {"stable", ""},
		"GET /healthz":               {"deprecated", "/v1/healthz"},
		"POST /v1/internal/shards":   {"internal", ""},
		"GET /v1/replicas":           {"stable", ""},
		"GET /v1/jobs/{id}/stream":   {"stable", ""},
		"DELETE /v1/jobs/{id}":       {"stable", ""},
		"GET /v1/stream/sweep":       {"stable", ""},
		"GET /metrics":               {"stable", ""},
		"GET /v1/experiments/{name}": {"stable", ""},
	} {
		got, ok := byRoute[route]
		if !ok {
			t.Fatalf("discovery document is missing %s", route)
		}
		if got.stability != want.stability || got.successor != want.successor {
			t.Fatalf("%s = %+v, want %+v", route, got, want)
		}
	}
	// The exact-match registration must not shadow unrouted /v1/* paths.
	if rr := doReq(t, srv, "GET", "/v1/nonsense", ""); rr.Code != 404 {
		t.Fatalf("GET /v1/nonsense = %d, want 404", rr.Code)
	}
}

func TestLegacyCapsWDeprecationHeaders(t *testing.T) {
	srv := testServer()
	defer srv.Close()

	legacy := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"caps_w":[300,250]}`)
	if legacy.Code != 200 {
		t.Fatalf("legacy sweep: %d %s", legacy.Code, legacy.Body)
	}
	if legacy.Header().Get("Deprecation") != "true" {
		t.Fatal("caps_w response must carry Deprecation: true")
	}
	if link := legacy.Header().Get("Link"); !strings.Contains(link, `rel="successor-version"`) {
		t.Fatalf("caps_w Link header = %q, want a successor-version relation", link)
	}

	modern := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300,250]}`)
	if modern.Code != 200 {
		t.Fatalf("modern sweep: %d %s", modern.Code, modern.Body)
	}
	if modern.Header().Get("Deprecation") != "" {
		t.Fatal("axis spelling must not carry a Deprecation header")
	}
	// Both spellings share one cache entry and byte-identical bodies —
	// the deprecation is headers-only.
	if legacy.Body.String() != modern.Body.String() {
		t.Fatal("legacy and modern spellings must serve byte-identical bodies")
	}
	if modern.Header().Get("X-Cache") != "hit" {
		t.Fatalf("modern spelling should hit the legacy spelling's cache entry, got %q", modern.Header().Get("X-Cache"))
	}

	est := doReq(t, srv, "GET", "/v1/estimate?cluster=CloudLab&iterations=2&caps_w=300,250,200", "")
	if est.Code != 200 {
		t.Fatalf("legacy estimate: %d %s", est.Code, est.Body)
	}
	if est.Header().Get("Deprecation") != "true" {
		t.Fatal("caps_w estimate must carry Deprecation: true")
	}

	job := doReq(t, srv, "POST", "/v1/jobs", `{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"caps_w":[290]}}`)
	if job.Code != 202 {
		t.Fatalf("legacy job submit: %d %s", job.Code, job.Body)
	}
	if job.Header().Get("Deprecation") != "true" {
		t.Fatal("caps_w job submission must carry Deprecation: true")
	}
}

func TestReplicasEndpoint(t *testing.T) {
	single := testServer()
	defer single.Close()
	rr := doReq(t, single, "GET", "/v1/replicas", "")
	if rr.Code != 200 {
		t.Fatalf("replicas: %d %s", rr.Code, rr.Body)
	}
	var solo struct {
		Distributed bool `json:"distributed"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &solo); err != nil {
		t.Fatal(err)
	}
	if solo.Distributed {
		t.Fatal("single-process server must report distributed: false")
	}

	front, peerURL := newReplicaPair(t, "affinity")
	rr = doReq(t, front, "GET", "/v1/replicas", "")
	var dist struct {
		Distributed bool   `json:"distributed"`
		Policy      string `json:"policy"`
		Peers       []struct {
			URL     string `json:"url"`
			Healthy bool   `json:"healthy"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &dist); err != nil {
		t.Fatal(err)
	}
	if !dist.Distributed || dist.Policy != "affinity" {
		t.Fatalf("replicas = %+v, want distributed affinity", dist)
	}
	if len(dist.Peers) != 1 || dist.Peers[0].URL != peerURL || !dist.Peers[0].Healthy {
		t.Fatalf("peers = %+v, want the healthy probed peer", dist.Peers)
	}
}

func TestDispatchMetricsExposed(t *testing.T) {
	front, _ := newReplicaPair(t, "roundrobin")
	req := httptest.NewRequest("POST", "/v1/sweep", strings.NewReader(dispatchSweepBody))
	req.Header.Set(routeDirectiveHeader, routeRemote)
	rr := httptest.NewRecorder()
	front.ServeHTTP(rr, req)
	if rr.Code != 200 {
		t.Fatalf("sweep: %d %s", rr.Code, rr.Body)
	}

	metrics := doReq(t, front, "GET", "/metrics", "").Body.String()
	for _, want := range []string{
		`gpuvar_dispatch_shards_total{target="remote"} 3`,
		"gpuvar_dispatch_warm_shards_total",
		`gpuvar_dispatch_peer_healthy{peer="`,
		"gpuvar_dispatch_local_fallbacks_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics exposition missing %q", want)
		}
	}

	// Single-process servers omit the whole family.
	single := testServer()
	defer single.Close()
	if m := doReq(t, single, "GET", "/metrics", "").Body.String(); strings.Contains(m, "gpuvar_dispatch_") {
		t.Fatal("single-process metrics must omit gpuvar_dispatch_* families")
	}
}

func TestNewRejectsBadRoutePolicy(t *testing.T) {
	_, err := New(Options{Peers: []string{"http://b:8080"}, RoutePolicy: "fastest"})
	if err == nil || !strings.Contains(err.Error(), "fastest") {
		t.Fatalf("err = %v, want unknown-policy error naming the input", err)
	}
}

// TestDispatchWarmShardAccounting: the seed axis gives every shard its
// own fleet (spec+seed), so a first pass is all cold and a re-sweep of
// the same seeds (under a different response key) is all warm. The
// affinity-vs-roundrobin warm-ratio comparison lives in the 3-process
// smoke stage — in-process replicas share one fleet cache, which erases
// the placement signal this counter exists to surface.
func TestDispatchWarmShardAccounting(t *testing.T) {
	front, _ := newReplicaPair(t, "affinity")
	pass1 := `{"cluster":"CloudLab","iterations":2,"axis":"seed","values":[9911,9912,9913,9914,9915,9916]}`
	pass2 := `{"cluster":"CloudLab","iterations":2,"runs":2,"axis":"seed","values":[9911,9912,9913,9914,9915,9916]}`
	for _, body := range []string{pass1, pass2} {
		rr := doReq(t, front, "POST", "/v1/sweep", body)
		if rr.Code != 200 {
			t.Fatalf("sweep: %d %s", rr.Code, rr.Body)
		}
	}
	st := front.dispatcher.Stats()
	if st.ColdShards != 6 || st.WarmShards != 6 {
		t.Fatalf("cold/warm = %d/%d, want 6/6 (pass 1 cold, pass 2 warm)", st.ColdShards, st.WarmShards)
	}
}
