package service

// Replayable job streams: every async job records the NDJSON lines it
// would have streamed — the same streamLine schema and byte-identical
// payload chunks as GET /v1/stream/sweep — into a bounded, replayable
// line log (jobs.Log). GET /v1/jobs/{id}/stream attaches at any point
// in the job's life: it first replays every previously emitted line,
// then follows live appends until the terminal summary/error line.
// Concatenating the payloads of a completed job stream reproduces the
// job's result body (and therefore the synchronous endpoint's body)
// byte for byte.
//
// Line production has three sources, stitched so the invariant holds on
// every path:
//
//   - Submit appends the start line (the body prefix — everything of
//     the response known before any shard completes), so a follower
//     attaching immediately after the 202 replays real content.
//   - A sweep job's computation runs with a shard sink on its context
//     (the same engine.WithSink channel the streaming endpoint uses):
//     each completed variant appends its ordered body chunk. A job that
//     COALESCES onto an in-flight identical computation — or replays a
//     cached result — emits no shard lines; the shards belong to the
//     flight that started first.
//   - A finalizer goroutine wakes on the job's terminal transition and
//     appends the closing line: the body suffix when the shard lines
//     assembled the full body, the whole remaining body when they did
//     not (coalesced/cached sweeps, campaign jobs — whose simulation
//     has no top-level shard structure to stream), or an in-band error
//     line for failed/canceled jobs. Then it closes the log, ending
//     every follower.
//
// Journal-replayed jobs predate their process and have no log; the
// stream handler synthesizes the two-line whole-body form from the
// replayed result instead.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gpuvar/internal/core"
	"gpuvar/internal/engine"
	"gpuvar/internal/jobs"
)

// jobStreamLogLines sizes one job's line log: start + one line per
// top-level shard + terminal, with generous headroom. Adaptive sweeps
// can carry up to maxEstimateVariants shards, so the bound scales with
// the job instead of assuming the plain-sweep cap. A producer exceeding
// it truncates the log (jobs.Log) and the stream falls back to an
// in-band error — it can no longer replay a byte-identical prefix.
func jobStreamLogLines(shards int) int {
	if n := 2*shards + 16; n > 4*maxSweepVariants {
		return n
	}
	return 4 * maxSweepVariants
}

// jobStream is one job's recorded stream. The unsynchronized fields
// (assembled, emittedShards, broken) are written strictly in
// happens-before order: the submit handler (start line) → the engine's
// serialized sink calls → the finalizer (which runs after the job's
// done channel closes, itself after the computation returned).
type jobStream struct {
	kind   string // "sweep" | "estimate" | "campaign"
	prefix string
	axis   core.VariantAxis // sweep only
	shards int              // expected top-level shard count (sweep only)
	marked bool             // adaptive sweep: chunks carry source/bound
	log    *jobs.Log

	assembled     bytes.Buffer // concatenation of every emitted payload
	emittedShards int
	broken        bool // a line failed to render; fall back, never mix
}

// newJobStream builds the stream for a VALIDATED job request (the
// payloads are normalized in place by jobComputation) and appends its
// start line. A nil return (a marshal failure — not reachable for our
// own structs) means the job runs streamless; the handler then serves
// the synthesized whole-body form.
func (s *Server) newJobStream(req *jobRequest) *jobStream {
	switch req.Kind {
	case "sweep":
		prefix, err := sweepStreamPrefix(*req.Sweep)
		if err != nil {
			return nil
		}
		axis, err := core.ParseVariantAxis(req.Sweep.Axis)
		if err != nil {
			return nil
		}
		st := &jobStream{
			kind:   "sweep",
			prefix: prefix,
			axis:   axis,
			shards: len(req.Sweep.Values),
			marked: req.Sweep.Adaptive,
			log:    jobs.NewLog(jobStreamLogLines(len(req.Sweep.Values))),
		}
		st.emit(streamLine{Kind: "start", Shards: st.shards, Shard: -1, Payload: prefix})
		return st
	case "estimate":
		// An estimate computes in one piece (no top-level engine shards
		// to stream), so the job records only the start line; the
		// finalizer's whole-body branch closes it.
		prefix, err := sweepStreamPrefix(*req.Estimate)
		if err != nil {
			return nil
		}
		st := &jobStream{kind: "estimate", prefix: prefix, log: jobs.NewLog(jobStreamLogLines(0))}
		st.emit(streamLine{Kind: "start", Shards: 0, Shard: -1, Payload: prefix})
		return st
	case "campaign":
		prefix, err := campaignStreamPrefix(*req.Campaign)
		if err != nil {
			return nil
		}
		st := &jobStream{kind: "campaign", prefix: prefix, log: jobs.NewLog(jobStreamLogLines(0))}
		st.emit(streamLine{Kind: "start", Shards: 0, Shard: -1, Payload: prefix})
		return st
	}
	return nil
}

// campaignStreamPrefix is the request section of the synchronous
// campaign body — everything known before the simulation runs (the
// campaign analogue of experimentStreamPrefix).
func campaignStreamPrefix(req campaignRequest) (string, error) {
	reqJSON, err := marshalSection(req)
	return "{\n  \"request\": " + reqJSON + ",\n", err
}

// emit renders one line into the log and folds its payload into the
// assembled-body check.
func (st *jobStream) emit(l streamLine) {
	b, err := json.Marshal(l)
	if err != nil {
		st.broken = true
		return
	}
	st.log.Append(string(b))
	st.assembled.WriteString(l.Payload)
	if l.Kind == "shard" {
		st.emittedShards++
	}
}

// sinkContext attaches the stream's shard sink to a sweep job's
// computation context. The engine serializes sink calls in shard order,
// so the emitted chunks concatenate into the variants section exactly
// as the streaming endpoint's do.
func (st *jobStream) sinkContext(ctx context.Context) context.Context {
	if st.kind != "sweep" {
		return ctx
	}
	sink := engine.ShardSink(func(shard, total int, v any) {
		if st.broken {
			return // a lost chunk must not be followed by later shards
		}
		p := v.(core.VariantPoint)
		chunk, err := sweepVariantChunk(st.axis, st.marked, p, shard, total)
		if err != nil {
			st.broken = true
			return
		}
		val := p.Value
		st.emit(streamLine{Kind: "shard", Shards: total, Shard: shard, Value: &val, Payload: chunk})
	})
	return engine.WithSink(ctx, sink)
}

// registerJobStream publishes a job's stream for followers and starts
// its finalizer. Stale entries (jobs the manager has since evicted) are
// pruned once the table outgrows the retention bound.
func (s *Server) registerJobStream(id string, st *jobStream) {
	s.streams.mu.Lock()
	if s.streams.byID == nil {
		s.streams.byID = make(map[string]*jobStream)
	}
	if len(s.streams.byID) > s.opts.MaxRetainedJobs {
		for old := range s.streams.byID {
			if _, ok := s.jobs.Get(old); !ok {
				delete(s.streams.byID, old)
			}
		}
	}
	s.streams.byID[id] = st
	s.streams.mu.Unlock()
	if done, ok := s.jobs.Done(id); ok {
		go s.finalizeJobStream(id, st, done)
	}
}

func (s *Server) jobStream(id string) *jobStream {
	s.streams.mu.Lock()
	defer s.streams.mu.Unlock()
	return s.streams.byID[id]
}

// finalizeJobStream appends the job's terminal line once it finishes
// and closes the log. For a done job it verifies the invariant first:
// the lines already emitted plus the closing chunk must equal the
// result body exactly — if the shard lines assembled the variants
// section, the suffix closes it; if no shards were emitted (coalesced,
// cached, campaign), the whole remaining body is the closing chunk.
func (s *Server) finalizeJobStream(id string, st *jobStream, done <-chan struct{}) {
	<-done
	defer st.log.Close()
	res, snap, ok := s.jobs.Result(id)
	if !ok {
		st.emit(streamLine{Kind: "error", Shards: st.shards, Shard: -1,
			Error: fmt.Sprintf("job %s was evicted before its stream completed; its result is gone", id)})
		return
	}
	switch snap.State {
	case jobs.StateDone:
		body := res.body
		if !st.broken && !st.log.Truncated() {
			if st.kind == "sweep" && st.emittedShards == st.shards &&
				bytes.Equal(append(append([]byte{}, st.assembled.Bytes()...), sweepStreamSuffix...), body) {
				st.emitSummary(sweepStreamSuffix, body)
				return
			}
			if st.emittedShards == 0 && bytes.HasPrefix(body, []byte(st.prefix)) {
				st.emitSummary(string(body[len(st.prefix):]), body)
				return
			}
		}
		// Defensive: the emitted lines cannot extend to the result body
		// (a render failure, a truncated log, or schema drift). Followers
		// get an explicit in-band error instead of a corrupt reassembly.
		st.emit(streamLine{Kind: "error", Shards: st.shards, Shard: -1,
			Error: fmt.Sprintf("internal: stream diverged from the job result; fetch %s/result", jobURL(id))})
	case jobs.StateCanceled:
		st.emit(streamLine{Kind: "error", Shards: st.shards, Shard: -1,
			Error: fmt.Sprintf("job %s was canceled", id)})
	default: // failed
		st.emit(streamLine{Kind: "error", Shards: st.shards, Shard: -1,
			Error: fmt.Sprintf("job %s failed: %s", id, snap.Error)})
	}
}

// emitSummary appends the terminal summary line: the closing payload
// chunk plus the full body's length and sha256, exactly as the
// streaming endpoints' summaries describe their reassembled bodies.
func (st *jobStream) emitSummary(payload string, body []byte) {
	sum := sha256.Sum256(body)
	st.emit(streamLine{
		Kind:    "summary",
		Shards:  st.shards,
		Shard:   -1,
		Payload: payload,
		Bytes:   len(body),
		SHA256:  hex.EncodeToString(sum[:]),
	})
}

// handleJobStream serves GET /v1/jobs/{id}/stream: replay the job's
// buffered lines from the beginning, then follow live appends until the
// log closes (the job's terminal line) or the client disconnects. The
// producer never blocks on this connection — lines come from the log,
// not from engine workers.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	st := s.jobStream(id)
	if st == nil {
		s.serveSynthesizedJobStream(w, r, id)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for from := 0; ; {
		lines, done, more := st.log.Next(from)
		for _, ln := range lines {
			if _, err := io.WriteString(w, ln+"\n"); err != nil {
				return // client gone; the producer is unaffected
			}
		}
		if len(lines) > 0 {
			flush()
		}
		from += len(lines)
		if done {
			break
		}
		if more != nil {
			select {
			case <-more:
			case <-ctx.Done():
				return
			}
		}
	}
	if st.log.Truncated() {
		// The bound was exceeded and the buffered history dropped — no
		// byte-identical replay is possible. In-band error, like every
		// other mid-stream failure.
		_ = enc.Encode(streamLine{Kind: "error", Shards: st.shards, Shard: -1,
			Error: fmt.Sprintf("stream history truncated; fetch %s/result for the complete body", jobURL(id))})
		flush()
	}
}

// serveSynthesizedJobStream streams a job that has no recorded log — a
// journal-replayed job from a previous process — as the two-line
// whole-body form: an empty start line and a summary carrying the
// entire result body. Non-terminal states cannot occur here (replayed
// jobs are terminal by construction), but the wait is honored anyway.
func (s *Server) serveSynthesizedJobStream(w http.ResponseWriter, r *http.Request, id string) {
	done, ok := s.jobs.Done(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	select {
	case <-done:
	case <-r.Context().Done():
		return
	}
	res, snap, ok := s.jobs.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	sw := newStreamWriter(w)
	sw.queue(streamLine{Kind: "start", Shards: 0, Shard: -1, Payload: ""})
	switch snap.State {
	case jobs.StateDone:
		// The pump computes Bytes/SHA256 over the accumulated payloads —
		// here exactly the result body.
		sw.wait(streamLine{Kind: "summary", Shards: 0, Shard: -1, Payload: string(res.body)})
	case jobs.StateCanceled:
		sw.fail(0, fmt.Errorf("job %s was canceled", id))
	default:
		sw.fail(0, fmt.Errorf("job %s failed: %s", id, snap.Error))
	}
}
