package service

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gpuvar/internal/core"
	"gpuvar/internal/engine"
	"gpuvar/internal/testutil"
)

// decodeStream parses an NDJSON body into lines and the concatenated
// payload, verifying the framing invariants every stream must satisfy:
// a start line first, shard lines strictly ordered 0..shards-1, exactly
// one terminal line (summary or error) last, and a summary checksum
// that matches the reassembled payload.
func decodeStream(t *testing.T, body []byte) (lines []streamLine, payload []byte) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // experiment summary payloads can be MBs
	var concat bytes.Buffer
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Bytes(), err)
		}
		lines = append(lines, l)
		concat.WriteString(l.Payload)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanning stream: %v", err)
	}
	if len(lines) < 2 {
		t.Fatalf("stream has %d lines, want at least start + terminal", len(lines))
	}
	if lines[0].Kind != "start" {
		t.Fatalf("first line kind = %q, want start", lines[0].Kind)
	}
	last := lines[len(lines)-1]
	if last.Kind != "summary" && last.Kind != "error" {
		t.Fatalf("last line kind = %q, want summary or error", last.Kind)
	}
	next := 0
	for _, l := range lines[1 : len(lines)-1] {
		if l.Kind != "shard" || l.Shard != next {
			t.Fatalf("mid-stream line = %+v, want shard %d in order", l, next)
		}
		next++
	}
	if last.Kind == "summary" {
		if last.Bytes != concat.Len() {
			t.Fatalf("summary bytes = %d, payload reassembles to %d", last.Bytes, concat.Len())
		}
		sum := sha256.Sum256(concat.Bytes())
		if last.SHA256 != hex.EncodeToString(sum[:]) {
			t.Fatal("summary sha256 does not match the reassembled payload")
		}
	}
	return lines, concat.Bytes()
}

// TestStreamSweepByteIdentityAllAxes is the golden byte-identity
// contract of the streaming tentpole: for every variant axis, the
// concatenated stream payloads are byte-identical to the synchronous
// POST /v1/sweep response for the same request — computed on separate
// servers, so neither can replay the other's cache.
func TestStreamSweepByteIdentityAllAxes(t *testing.T) {
	cases := []struct {
		axis string
		sync string // POST /v1/sweep body
		qs   string // GET /v1/stream/sweep query
	}{
		{"powercap",
			`{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[250,200]}`,
			"cluster=CloudLab&iterations=2&axis=powercap&values=250,200"},
		{"seed",
			`{"cluster":"CloudLab","iterations":2,"axis":"seed","values":[7,8]}`,
			"cluster=CloudLab&iterations=2&axis=seed&values=7,8"},
		{"ambient",
			`{"cluster":"CloudLab","iterations":2,"axis":"ambient","values":[-2,0,2]}`,
			"cluster=CloudLab&iterations=2&axis=ambient&values=-2,0,2"},
		{"fraction",
			`{"cluster":"CloudLab","iterations":2,"axis":"fraction","values":[0.5,1]}`,
			"cluster=CloudLab&iterations=2&axis=fraction&values=0.5,1"},
	}
	for _, tt := range cases {
		t.Run(tt.axis, func(t *testing.T) {
			sync := doReq(t, testServer(), "POST", "/v1/sweep", tt.sync)
			if sync.Code != 200 {
				t.Fatalf("sync sweep: %d: %s", sync.Code, sync.Body.String())
			}
			stream := doReq(t, testServer(), "GET", "/v1/stream/sweep?"+tt.qs, "")
			if stream.Code != 200 {
				t.Fatalf("stream sweep: %d: %s", stream.Code, stream.Body.String())
			}
			if ct := stream.Header().Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("stream Content-Type = %q", ct)
			}
			lines, payload := decodeStream(t, stream.Body.Bytes())
			if !bytes.Equal(payload, sync.Body.Bytes()) {
				t.Fatalf("concatenated stream payloads diverge from the synchronous body:\nstream: %q\nsync:   %q",
					payload, sync.Body.Bytes())
			}
			wantShards := strings.Count(tt.qs[strings.Index(tt.qs, "values="):], ",") + 1
			if got := len(lines) - 2; got != wantShards {
				t.Fatalf("stream has %d shard lines, want %d (one per variant)", got, wantShards)
			}
			for i, l := range lines[1 : len(lines)-1] {
				if l.Value == nil || l.Shards != wantShards {
					t.Fatalf("shard line %d missing value/shards: %+v", i, l)
				}
			}
		})
	}
}

// TestStreamSweepLegacyCapsWSpelling: the caps_w query spelling streams
// the same bytes as the axis form (both normalize onto one fingerprint).
func TestStreamSweepLegacyCapsWSpelling(t *testing.T) {
	axisForm := doReq(t, testServer(), "GET", "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=240", "")
	legacy := doReq(t, testServer(), "GET", "/v1/stream/sweep?cluster=CloudLab&iterations=2&caps_w=240", "")
	if axisForm.Code != 200 || legacy.Code != 200 {
		t.Fatalf("status %d / %d", axisForm.Code, legacy.Code)
	}
	_, p1 := decodeStream(t, axisForm.Body.Bytes())
	_, p2 := decodeStream(t, legacy.Body.Bytes())
	if !bytes.Equal(p1, p2) {
		t.Fatal("caps_w spelling streamed different bytes than the axis form")
	}
	if !strings.Contains(string(p1), `"cap_w"`) {
		t.Fatal("powercap stream lost the legacy cap_w response field")
	}
}

// TestStreamExperimentByteIdentity: both detail levels of the
// experiment endpoint stream payloads that reassemble into the
// synchronous GET body, with one ordered shard line per engine shard.
func TestStreamExperimentByteIdentity(t *testing.T) {
	for _, q := range []string{
		"cluster=CloudLab&iterations=2",
		"cluster=CloudLab&iterations=2&detail=gpus",
	} {
		t.Run(q, func(t *testing.T) {
			sync := doReq(t, testServer(), "GET", "/v1/experiments/sgemm?"+q, "")
			if sync.Code != 200 {
				t.Fatalf("sync experiment: %d: %s", sync.Code, sync.Body.String())
			}
			stream := doReq(t, testServer(), "GET", "/v1/stream/experiments/sgemm?"+q, "")
			if stream.Code != 200 {
				t.Fatalf("stream experiment: %d: %s", stream.Code, stream.Body.String())
			}
			lines, payload := decodeStream(t, stream.Body.Bytes())
			if !bytes.Equal(payload, sync.Body.Bytes()) {
				t.Fatal("concatenated stream payloads diverge from the synchronous body")
			}
			shards := len(lines) - 2
			if shards < 1 {
				t.Fatalf("stream has %d shard lines, want one per measurement job", shards)
			}
			for i, l := range lines[1 : len(lines)-1] {
				if l.GPUs < 1 || l.Shards != shards {
					t.Fatalf("shard line %d = %+v, want gpus >= 1 and shards = %d", i, l, shards)
				}
			}
		})
	}
}

// TestStreamPrimesResponseCache: a completed stream deposits the
// verified body, so the synchronous twin replays it as a cache hit with
// identical bytes — and vice-versa stays consistent.
func TestStreamPrimesResponseCache(t *testing.T) {
	srv := testServer()
	stream := doReq(t, srv, "GET", "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=230", "")
	if stream.Code != 200 {
		t.Fatalf("stream: %d", stream.Code)
	}
	_, payload := decodeStream(t, stream.Body.Bytes())
	sync := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[230]}`)
	if sync.Code != 200 || sync.Header().Get("X-Cache") != "hit" {
		t.Fatalf("sync after stream: %d, X-Cache %q; want a 200 hit", sync.Code, sync.Header().Get("X-Cache"))
	}
	if !bytes.Equal(payload, sync.Body.Bytes()) {
		t.Fatal("primed cache entry diverges from the streamed payload")
	}
}

// TestStreamBadRequests: normalization errors surface as real HTTP
// errors before any NDJSON is written.
func TestStreamBadRequests(t *testing.T) {
	srv := testServer()
	for _, tt := range []struct {
		target string
		status int
		wantIn string
	}{
		{"/v1/stream/sweep?axis=voltage&values=1", 400, "unknown sweep axis"},
		{"/v1/stream/sweep?values=250&iteration=12", 400, "unknown parameter"}, // typo must fail, like the POST body's DisallowUnknownFields
		{"/v1/stream/sweep?cluster=CloudLab", 400, "values is required"},
		{"/v1/stream/sweep?values=1,banana", 400, "not a number"},
		{"/v1/stream/sweep?cluster=Atlantis&values=250", 404, "unknown cluster"},
		{"/v1/stream/sweep?axis=fraction&values=2", 400, "bad fraction"},
		{"/v1/stream/sweep?seed=x&values=1", 400, "bad seed"},
		{"/v1/stream/sweep?fraction=NaN&values=250", 400, "bad fraction"}, // query strings can spell NaN; must be a 400, not a marshal 500
		{"/v1/stream/experiments/sgemm?cluster=CloudLab&fraction=NaN", 400, "bad fraction"},
		{"/v1/stream/experiments/doom", 404, "unknown workload"},
		{"/v1/stream/experiments/sgemm?cluster=CloudLab&runs=-1", 400, "bad runs"},
	} {
		rr := doReq(t, srv, "GET", tt.target, "")
		if rr.Code != tt.status || !strings.Contains(rr.Body.String(), tt.wantIn) {
			t.Errorf("GET %s = %d %q, want %d containing %q", tt.target, rr.Code, rr.Body.String(), tt.status, tt.wantIn)
		}
	}
}

// gatedSweepRun swaps the stream seam for an engine-backed fake whose
// shards past the first block on gate (or the context). It returns
// plausible variant points so the response renders normally.
func gatedSweepRun(t *testing.T, gate chan struct{}) (restore func()) {
	t.Helper()
	prev := streamSweepRun
	streamSweepRun = func(ctx context.Context, exp core.Experiment, axis core.VariantAxis, values []float64) ([]core.VariantPoint, error) {
		return engine.Map(ctx, len(values), 1, func(ctx context.Context, i int) (core.VariantPoint, error) {
			if i > 0 {
				select {
				case <-gate:
				case <-ctx.Done():
					return core.VariantPoint{}, ctx.Err()
				}
			}
			return core.VariantPoint{Axis: axis, Value: values[i], Result: &core.Result{}}, nil
		})
	}
	return func() { streamSweepRun = prev }
}

// TestStreamFirstLineBeforeCompletion is the gated-shard acceptance
// test: over a real HTTP server, the start line and shard 0's line are
// readable while shard 1 is still blocked mid-computation — the stream
// delivers results before the job completes, not after.
func TestStreamFirstLineBeforeCompletion(t *testing.T) {
	gate := make(chan struct{})
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=300,250,200")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	br := bufio.NewReader(resp.Body)
	readLine := func() streamLine {
		t.Helper()
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading stream line: %v", err)
		}
		var l streamLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
		return l
	}

	// Both lines arrive while shard 1 is still gated: the job cannot
	// have completed.
	if l := readLine(); l.Kind != "start" || l.Shards != 3 {
		t.Fatalf("first line = %+v, want the start line for 3 shards", l)
	}
	if l := readLine(); l.Kind != "shard" || l.Shard != 0 || l.Payload == "" {
		t.Fatalf("second line = %+v, want shard 0 with its body chunk", l)
	}

	close(gate)
	var rest []streamLine
	for {
		raw, err := br.ReadBytes('\n')
		if len(bytes.TrimSpace(raw)) > 0 {
			var l streamLine
			if uerr := json.Unmarshal(raw, &l); uerr != nil {
				t.Fatalf("decoding %q: %v", raw, uerr)
			}
			rest = append(rest, l)
		}
		if err != nil {
			break
		}
	}
	if len(rest) != 3 || rest[0].Shard != 1 || rest[1].Shard != 2 || rest[2].Kind != "summary" {
		t.Fatalf("remaining lines = %+v, want shards 1, 2 and the summary", rest)
	}
}

// TestStreamClientDisconnectUnwinds: a client abandoning the stream
// mid-computation cancels the work — the engine drains and no
// goroutines leak (the leak assertion streaming handlers must satisfy).
func TestStreamClientDisconnectUnwinds(t *testing.T) {
	leak := testutil.LeakCheck(t, 2) // the http server's conn goroutine drains asynchronously
	gate := make(chan struct{})      // never closed: only the disconnect can release shard 1
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=300,250")
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadBytes('\n'); err != nil { // start line
		t.Fatal(err)
	}
	if _, err := br.ReadBytes('\n'); err != nil { // shard 0
		t.Fatal(err)
	}
	// Disconnect mid-stream: shard 1 is blocked on the gate and must be
	// torn down by the request context, not the gate.
	resp.Body.Close()

	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
	ts.Close()
	leak()
}

// TestStreamErrorMidStream: a shard failure after lines have gone out
// terminates the stream with an in-band error line, and nothing is
// cached.
func TestStreamErrorMidStream(t *testing.T) {
	prev := streamSweepRun
	streamSweepRun = func(ctx context.Context, exp core.Experiment, axis core.VariantAxis, values []float64) ([]core.VariantPoint, error) {
		return engine.Map(ctx, len(values), 1, func(_ context.Context, i int) (core.VariantPoint, error) {
			if i == 1 {
				return core.VariantPoint{}, fmt.Errorf("variant %d exploded", i)
			}
			return core.VariantPoint{Axis: axis, Value: values[i], Result: &core.Result{}}, nil
		})
	}
	defer func() { streamSweepRun = prev }()

	srv := testServer()
	rr := doReq(t, srv, "GET", "/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=300,250", "")
	if rr.Code != 200 { // status already committed when the failure hit
		t.Fatalf("status %d", rr.Code)
	}
	lines, _ := decodeStream(t, rr.Body.Bytes())
	last := lines[len(lines)-1]
	if last.Kind != "error" || !strings.Contains(last.Error, "variant 1 exploded") {
		t.Fatalf("terminal line = %+v, want the in-band error", last)
	}
	if s := srv.CacheStats(); s.Entries != 0 {
		t.Fatalf("failed stream left %d cache entries", s.Entries)
	}
}

// TestJobClassSheddingAndPriority pins the service-level scheduling
// acceptance scenario: with the single batch slot held and the batch
// queue full, a further batch submission answers 429 + Retry-After,
// while an interactive-class job completes end to end.
func TestJobClassSheddingAndPriority(t *testing.T) {
	srv := mustNew(Options{
		Figures:        testServer().opts.Figures,
		MaxRunningJobs: 1,
		MaxQueuedJobs:  1,
	})
	// Two slow batch campaigns: one takes the batch slot, one fills the
	// one-deep batch queue.
	heavy := `{"kind":"campaign","campaign":{"cluster":"Vortex","days":3650,"plan":{"overhead_frac":0.05,"bench_seconds":600}}}`
	running := submitJob(t, srv, heavy)
	waitFor(t, func() bool {
		s, ok := srv.jobs.Get(running.ID)
		return ok && s.State == "running"
	})
	queued := submitJob(t, srv, `{"kind":"campaign","campaign":{"cluster":"Vortex","days":3650,"seed":7,"plan":{"overhead_frac":0.05,"bench_seconds":600}}}`)
	if queued.Snapshot.Class != "batch" {
		t.Fatalf("default job class = %q, want batch", queued.Snapshot.Class)
	}

	// The batch queue is at its bound: the next batch submission sheds.
	shed := doReq(t, srv, "POST", "/v1/jobs",
		`{"kind":"campaign","campaign":{"cluster":"Vortex","days":3650,"seed":9,"plan":{"overhead_frac":0.05,"bench_seconds":600}}}`)
	if shed.Code != http.StatusTooManyRequests {
		t.Fatalf("submission past the batch bound: status %d, want 429; body %s", shed.Code, shed.Body.String())
	}
	if shed.Header().Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	// An interactive-class job jumps the saturation and completes.
	inter := submitJob(t, srv, `{"kind":"sweep","class":"interactive","sweep":{"cluster":"CloudLab","iterations":2,"values":[260]}}`)
	if inter.Snapshot.Class != "interactive" {
		t.Fatalf("class = %q, want interactive", inter.Snapshot.Class)
	}
	final := pollJob(t, srv, inter.URL)
	if final.State != "done" {
		t.Fatalf("interactive job ended %s (%s), want done while batch was saturated", final.State, final.Error)
	}
	if rr := doReq(t, srv, "GET", final.ResultURL, ""); rr.Code != 200 {
		t.Fatalf("interactive result: %d", rr.Code)
	}

	// Saturation shows up in the observability surface — /v1/healthz
	// and /v1/stats carry the same counters.
	if body := doReq(t, srv, "GET", "/v1/healthz", "").Body.String(); !strings.Contains(body, `"queued_batch"`) ||
		!strings.Contains(body, `"in_use_batch"`) {
		t.Errorf("healthz missing per-class queue depth / budget occupancy:\n%s", body)
	}
	var stats statsResponse
	if err := json.Unmarshal(doReq(t, srv, "GET", "/v1/stats", "").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Shed != 1 || stats.Jobs.QueuedBatch != 1 || stats.Jobs.RunningBatch != 1 {
		t.Fatalf("job stats = %+v, want shed=1, queued_batch=1, running_batch=1", stats.Jobs)
	}
	if stats.Engine.Budget.Capacity < 1 {
		t.Fatalf("engine budget missing from stats: %+v", stats.Engine.Budget)
	}

	// Unwind: cancel the heavy batch jobs and drain.
	doReq(t, srv, "DELETE", "/v1/jobs/"+running.ID, "")
	doReq(t, srv, "DELETE", "/v1/jobs/"+queued.ID, "")
	pollJob(t, srv, "/v1/jobs/"+running.ID)
	pollJob(t, srv, "/v1/jobs/"+queued.ID)
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
}

// TestJobListDeterministicOrder pins GET /v1/jobs's wire ordering:
// jobs appear in creation order (oldest first), stable across repeated
// listings.
func TestJobListDeterministicOrder(t *testing.T) {
	srv := testServer()
	var ids []string
	for _, cap := range []string{"300", "290", "280"} {
		view := submitJob(t, srv,
			`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[`+cap+`]}}`)
		pollJob(t, srv, view.URL)
		ids = append(ids, view.ID)
	}
	for round := 0; round < 3; round++ {
		rr := doReq(t, srv, "GET", "/v1/jobs", "")
		var listing struct {
			Jobs []jobView `json:"jobs"`
		}
		if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
			t.Fatal(err)
		}
		if len(listing.Jobs) != len(ids) {
			t.Fatalf("round %d: listed %d jobs, want %d", round, len(listing.Jobs), len(ids))
		}
		for i, id := range ids {
			if listing.Jobs[i].ID != id {
				t.Fatalf("round %d: jobs[%d] = %s, want %s (creation order)", round, i, listing.Jobs[i].ID, id)
			}
		}
	}
}
