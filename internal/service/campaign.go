package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"gpuvar/internal/campaign"
	"gpuvar/internal/cluster"
	"gpuvar/internal/gpu"
)

// maxCampaignBody bounds the request body; campaign requests are a few
// hundred bytes of JSON.
const maxCampaignBody = 1 << 16

// campaignRequest is the POST /v1/campaign body. Zero-valued knobs take
// the same defaults the campaign package applies, and the normalized
// struct (defaults filled in) is the cache fingerprint, so two requests
// that spell the same campaign differently share one simulation.
type campaignRequest struct {
	Cluster string `json:"cluster"`
	Seed    uint64 `json:"seed"`
	Days    int    `json:"days"`
	Plan    struct {
		OverheadFrac float64 `json:"overhead_frac"`
		BenchSeconds float64 `json:"bench_seconds"`
		DaySeconds   float64 `json:"day_seconds"`
	} `json:"plan"`
	Monitor struct {
		Alpha         float64 `json:"alpha"`
		DriftFrac     float64 `json:"drift_frac"`
		Confirmations int     `json:"confirmations"`
	} `json:"monitor"`
	Injection struct {
		Day    int    `json:"day"`
		NodeID string `json:"node_id"`
		Kind   string `json:"kind"`
	} `json:"injection"`
}

// alertView is one drift detection.
type alertView struct {
	GPUID      string  `json:"gpu_id"`
	Day        int     `json:"day"`
	BaselineMs float64 `json:"baseline_ms"`
	ObservedMs float64 `json:"observed_ms"`
	Exceedance float64 `json:"exceedance"`
}

// campaignResponse is one completed campaign simulation.
type campaignResponse struct {
	Request              campaignRequest `json:"request"`
	Days                 int             `json:"days"`
	CoveragePeriodDays   int             `json:"coverage_period_days"`
	Slots                int             `json:"slots"`
	OverheadFrac         float64         `json:"overhead_frac"`
	DetectionDay         int             `json:"detection_day"`
	DetectionLatencyDays int             `json:"detection_latency_days"`
	FalseAlerts          int             `json:"false_alerts"`
	Alerts               []alertView     `json:"alerts"`
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxCampaignBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	var req campaignRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: %v", err)
		return
	}
	key, compute, status, err := campaignComputation(&req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	s.serveCached(w, r, key, compute)
}

// campaignComputation normalizes the request and returns the cache key
// plus the computation that renders the response — shared by the
// synchronous handler and the async job path.
func campaignComputation(reqp *campaignRequest) (string, func(ctx context.Context) (*cachedResponse, error), int, error) {
	spec, kind, status, err := normalizeCampaign(reqp)
	if err != nil {
		return "", nil, status, err
	}
	req := *reqp
	inj := campaign.Injection{Day: req.Injection.Day, NodeID: req.Injection.NodeID, Kind: kind}
	// The fingerprint is the normalized struct, not the raw body:
	// reordered keys or omitted defaults coalesce onto one entry.
	key := fmt.Sprintf("campaign|%+v", req)
	compute := func(ctx context.Context) (*cachedResponse, error) {
		rep, err := campaign.SimulateCtx(ctx, spec, req.Seed, req.Days,
			campaign.PlanConfig{
				OverheadFrac: req.Plan.OverheadFrac,
				BenchSeconds: req.Plan.BenchSeconds,
				DaySeconds:   req.Plan.DaySeconds,
			},
			campaign.MonitorConfig{
				Alpha:         req.Monitor.Alpha,
				DriftFrac:     req.Monitor.DriftFrac,
				Confirmations: req.Monitor.Confirmations,
			}, inj)
		if errors.Is(err, campaign.ErrUnknownNode) {
			return nil, &statusError{status: http.StatusBadRequest, err: err}
		}
		if err != nil {
			return nil, err
		}
		out := campaignResponse{
			Request:              req,
			Days:                 rep.Days,
			CoveragePeriodDays:   rep.CoveragePeriod,
			Slots:                rep.Slots,
			OverheadFrac:         rep.OverheadFrac,
			DetectionDay:         rep.DetectionDay,
			DetectionLatencyDays: rep.DetectionLatencyDays(inj),
			FalseAlerts:          rep.FalseAlerts,
			Alerts:               make([]alertView, len(rep.Alerts)),
		}
		for i, a := range rep.Alerts {
			out.Alerts[i] = alertView{
				GPUID:      a.GPUID,
				Day:        a.Day,
				BaselineMs: a.BaselineMs,
				ObservedMs: a.ObservedMs,
				Exceedance: a.Exceedance(),
			}
		}
		return jsonResponse(out)
	}
	return key, compute, 0, nil
}

// normalizeCampaign validates the request and fills every defaulted
// field so the struct is a canonical fingerprint. It resolves the
// cluster and defect kind (the two name-typed fields) up front, where a
// bad value is a client error, not a simulation failure.
func normalizeCampaign(req *campaignRequest) (cluster.Spec, gpu.DefectKind, int, error) {
	if req.Cluster == "" {
		req.Cluster = "Vortex"
	}
	spec, ok := cluster.ByName(req.Cluster)
	if !ok {
		return cluster.Spec{}, 0, http.StatusNotFound,
			fmt.Errorf("unknown cluster %q (known: %v)", req.Cluster, cluster.Names())
	}
	if req.Seed == 0 {
		req.Seed = 2022
	}
	if req.Days <= 0 {
		req.Days = 12
	}
	if req.Days > 3650 {
		return cluster.Spec{}, 0, http.StatusBadRequest,
			fmt.Errorf("days %d too large (max 3650)", req.Days)
	}
	if req.Plan.OverheadFrac <= 0 {
		req.Plan.OverheadFrac = 0.02
	}
	if req.Plan.BenchSeconds <= 0 {
		req.Plan.BenchSeconds = 600
	}
	if req.Plan.DaySeconds <= 0 {
		req.Plan.DaySeconds = 86400
	}
	if req.Monitor.Alpha <= 0 || req.Monitor.Alpha > 1 {
		req.Monitor.Alpha = 0.3
	}
	if req.Monitor.DriftFrac <= 0 {
		req.Monitor.DriftFrac = 0.05
	}
	if req.Monitor.Confirmations < 1 {
		req.Monitor.Confirmations = 1
	}
	kind := gpu.DefectNone
	if req.Injection.Kind != "" {
		var err error
		kind, err = campaign.ParseDefectKind(req.Injection.Kind)
		if err != nil {
			return cluster.Spec{}, 0, http.StatusBadRequest, err
		}
	}
	req.Injection.Kind = kind.String()
	return spec, kind, 0, nil
}
