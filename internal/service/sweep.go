package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/dispatch"
	"gpuvar/internal/workload"
)

// The sweep endpoint runs a bounded batch of experiment variants as ONE
// engine job graph: each variant is a shard of a core.VariantSweepCtx
// job, the variants' own per-GPU jobs nest inside, and variants that
// leave the fleet untouched share one cached instantiation. The request
// names the knob being varied — its "variant axis" — and the values to
// run it at:
//
//	axis: powercap   administrative power caps in W (the paper's §VI-B
//	                 study, Fig. 22; 0 = TDP)
//	axis: seed       fleet instantiation seeds (uncertainty bands)
//	axis: ambient    inlet-temperature offsets in °C (facility what-ifs)
//	axis: fraction   coverage fractions in (0, 1] (cost ladders)
//
// The legacy power-cap-only spelling (caps_w) is still accepted and
// normalizes to axis=powercap, so both spellings share one cache entry
// and return byte-identical bodies. A sweep is deadline-bounded,
// cancelable mid-variant, coalesced like every other response — and,
// since the sweep body is also a job payload (POST /v1/jobs), the same
// computation can run asynchronously with polling instead of a held
// connection.
//
// With "adaptive": true plus a "threshold" tolerance, the sweep is
// pre-screened by the analytical estimator (see estimate.go): values
// whose error bound and local gradient sit inside the tolerance are
// answered in microseconds, the rest run full simulation — and stay
// byte-identical to the plain sweep's points, because both paths share
// one shard body (core.runVariant).

// maxSweepVariants bounds one request's batch; a sweep is a study, not
// a denial of service.
const maxSweepVariants = 32

// maxEstimateVariants bounds /v1/estimate and adaptive sweeps instead:
// estimator points cost microseconds, and an adaptive sweep's
// full-simulation fallbacks are separately clamped to maxSweepVariants
// (core.DefaultMaxFullSim), so a much wider axis is safe.
const maxEstimateVariants = 1024

// maxSweepBody bounds the request body (a value list plus a few knobs).
const maxSweepBody = 1 << 16

// sweepRequest is the POST /v1/sweep body (and the "sweep" payload of
// POST /v1/jobs). The normalized struct (defaults filled, names
// resolved, caps_w folded into axis/values) is the cache fingerprint.
type sweepRequest struct {
	Workload   string  `json:"workload"`
	Cluster    string  `json:"cluster"`
	Seed       uint64  `json:"seed"`
	Fraction   float64 `json:"fraction"`
	Runs       int     `json:"runs"`
	Iterations int     `json:"iterations"`
	// Axis names the knob the sweep varies; Values are the settings to
	// run it at, in response order.
	Axis   string    `json:"axis,omitempty"`
	Values []float64 `json:"values,omitempty"`
	// CapsW is the legacy power-cap-only spelling, normalized into
	// Axis="powercap" + Values before fingerprinting.
	CapsW []float64 `json:"caps_w,omitempty"`
	// Adaptive pre-screens the axis with the analytical estimator and
	// spends full simulation only where the estimator's error bound or
	// the curve's local gradient exceeds Threshold (a relative
	// tolerance in (0, 1]). adaptive with threshold 0 — zero tolerance
	// — IS the plain sweep, and normalizes onto it so both spellings
	// share one cache entry and byte-identical bodies. Ignored (and
	// rejected) on /v1/estimate, where every point is estimated.
	Adaptive  bool    `json:"adaptive,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
}

// sweepVariant is one axis value's outcome. CapW duplicates Value on
// powercap sweeps only: it is the response field's pre-generalization
// name, kept so clients written against the caps_w-era schema keep
// parsing (both request spellings share one cache entry, so the field
// must appear for the axis, not per spelling).
type sweepVariant struct {
	Value    float64  `json:"value"`
	CapW     *float64 `json:"cap_w,omitempty"`
	GPUs     int      `json:"gpus"`
	MedianMs float64  `json:"median_ms"`
	PerfVar  float64  `json:"perf_variation"`
	Outliers int      `json:"outliers"`
	// Source appears on estimate/adaptive responses only:
	// "estimated" (closed-form point, Bound = the estimator's relative
	// error bound on median_ms) or "simulated" (full simulation,
	// byte-identical to the plain sweep's variant). Plain sweeps omit
	// both fields, keeping their bodies unchanged.
	Source string   `json:"source,omitempty"`
	Bound  *float64 `json:"bound,omitempty"`
}

// sweepResponse is one completed sweep.
type sweepResponse struct {
	Request  sweepRequest   `json:"request"`
	Variants []sweepVariant `json:"variants"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	directive, err := parseRouteDirective(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: %v", err)
		return
	}
	legacy := len(req.CapsW) > 0 // before normalization folds the spelling away
	key, compute, status, err := sweepComputation(&req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	if s.redirectAffinityMiss(w, directive, key) {
		return
	}
	markLegacySweep(w, legacy)
	s.serveCached(w, r, key, compute)
}

// markLegacySweep advertises the caps_w spelling's deprecation on any
// response produced from it — the same Deprecation+Link mechanism the
// legacy /healthz route uses (RFC 8594 style). Only the headers differ:
// the body stays byte-identical to the axis spelling's, since both
// normalize onto one cache entry.
func markLegacySweep(w http.ResponseWriter, legacy bool) {
	if !legacy {
		return
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/sweep>; rel="successor-version"; title="axis=powercap with values"`)
}

// sweepCacheKey fingerprints a NORMALIZED sweep request. The
// synchronous handler, the async job path, and the streaming handler
// all key the response cache with it, so any of them primes the others.
func sweepCacheKey(r sweepRequest) string { return fmt.Sprintf("sweep|%+v", r) }

// sweepVariantView projects one variant point into the wire schema —
// shared by the synchronous renderer and the streaming handler's
// per-shard chunks, which is one half of the stream's byte-identity
// guarantee.
// marked selects the estimate/adaptive envelope: every variant carries
// source, and estimated ones their bound. Plain sweeps pass false and
// keep their pre-estimator bytes.
func sweepVariantView(axis core.VariantAxis, marked bool, p core.VariantPoint) sweepVariant {
	v := sweepVariant{
		Value:    p.Value,
		GPUs:     p.GPUs,
		MedianMs: p.MedianMs,
		PerfVar:  p.PerfVar,
		Outliers: p.NOutliers,
	}
	if axis == core.AxisPowerCap {
		val := p.Value
		v.CapW = &val
	}
	if marked {
		if p.Estimated {
			v.Source = "estimated"
			b := p.Bound
			v.Bound = &b
		} else {
			v.Source = "simulated"
		}
	}
	return v
}

// renderSweep marshals a completed sweep into the synchronous response
// body.
func renderSweep(req sweepRequest, axis core.VariantAxis, marked bool, points []core.VariantPoint) (*cachedResponse, error) {
	out := sweepResponse{Request: req, Variants: make([]sweepVariant, len(points))}
	for i, p := range points {
		out.Variants[i] = sweepVariantView(axis, marked, p)
	}
	return jsonResponse(out)
}

// sweepComputation normalizes the request and returns the cache key
// plus the computation that renders the response — shared verbatim by
// the synchronous handler and the async job path, which is what makes
// a job's result byte-identical to the held-connection response.
func sweepComputation(req *sweepRequest) (key string, compute func(ctx context.Context) (*cachedResponse, error), status int, err error) {
	exp, axis, status, err := normalizeSweep(req)
	if err != nil {
		return "", nil, status, err
	}
	r := *req
	key = sweepCacheKey(r)
	// The run goes through the streamSweepRun / adaptiveSweepRun seams
	// (core.VariantSweepCtx / core.AdaptiveSweepCtx in production) so
	// the gated-shard tests can control shard timing on the job path
	// exactly as they do on the streaming path.
	compute = func(ctx context.Context) (*cachedResponse, error) {
		var points []core.VariantPoint
		var err error
		if r.Adaptive {
			points, err = adaptiveSweepRun(ctx, exp, axis, r.Values, r.Threshold)
		} else {
			points, err = dispatchedSweepRun(ctx, exp, axis, &r)
		}
		if err != nil {
			if errors.Is(err, dispatch.ErrNoReplicas) {
				return nil, &statusError{status: http.StatusBadGateway, err: withCode("replica_unavailable", err)}
			}
			return nil, err
		}
		return renderSweep(r, axis, r.Adaptive, points)
	}
	return key, compute, 0, nil
}

// dispatchedSweepRun routes a plain sweep through the replica
// dispatcher when the compute context carries one, and otherwise runs
// the process-local engine path. Adaptive sweeps always run locally:
// their estimator pre-screen is already near-free, and the calibrator
// is process-wide state. The context arrives through the singleflight's
// detached flight context (which preserves values), so coalesced
// requests dispatch exactly like direct ones.
func dispatchedSweepRun(ctx context.Context, exp core.Experiment, axis core.VariantAxis, r *sweepRequest) ([]core.VariantPoint, error) {
	d := dispatch.FromContext(ctx)
	if d == nil {
		return streamSweepRun(ctx, exp, axis, r.Values)
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, err
	}
	return d.Sweep(ctx, dispatch.Job{Payload: payload, Exp: exp, Axis: axis, Values: r.Values})
}

// sweepRequestFromQuery builds a sweep request from URL query
// parameters — the GET /v1/stream/sweep spelling of the POST body.
// Validation and defaulting happen in normalizeSweep, exactly as for
// the synchronous endpoint, so both spellings share one fingerprint —
// and unknown parameters are rejected with the same strictness the
// POST body gets from DisallowUnknownFields (a typoed knob must fail,
// not silently compute with the default).
func sweepRequestFromQuery(q url.Values) (sweepRequest, error) {
	var req sweepRequest
	for k := range q {
		switch k {
		case "workload", "cluster", "axis", "seed", "fraction", "runs", "iterations", "values", "caps_w", "adaptive", "threshold":
		default:
			return req, fmt.Errorf("unknown parameter %q", k)
		}
	}
	req.Workload = q.Get("workload")
	req.Cluster = q.Get("cluster")
	req.Axis = q.Get("axis")
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("bad seed %q: %v", v, err)
		}
		req.Seed = n
	}
	if v := q.Get("fraction"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		// Unlike JSON bodies, query strings can spell NaN/Inf — reject
		// them here as the client error they are.
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return req, fmt.Errorf("bad fraction %q: want a finite number", v)
		}
		req.Fraction = f
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"runs", &req.Runs}, {"iterations", &req.Iterations}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return req, fmt.Errorf("bad %s %q: %v", p.name, v, err)
			}
			*p.dst = n
		}
	}
	if v := q.Get("adaptive"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("bad adaptive %q: %v", v, err)
		}
		req.Adaptive = b
	}
	if v := q.Get("threshold"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return req, fmt.Errorf("bad threshold %q: want a finite number", v)
		}
		req.Threshold = f
	}
	var err error
	if req.Values, err = parseFloatList(q.Get("values")); err != nil {
		return req, fmt.Errorf("bad values: %v", err)
	}
	if req.CapsW, err = parseFloatList(q.Get("caps_w")); err != nil {
		return req, fmt.Errorf("bad caps_w: %v", err)
	}
	return req, nil
}

// parseFloatList parses a comma-separated float list ("" = nil).
func parseFloatList(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("element %d %q is not a number", i, p)
		}
		out[i] = f
	}
	return out, nil
}

// normalizeSweep validates the request, resolves names, folds the
// legacy caps_w spelling into axis/values (and adaptive+threshold-0
// onto the plain sweep), and fills every defaulted field so the struct
// is a canonical fingerprint.
func normalizeSweep(req *sweepRequest) (core.Experiment, core.VariantAxis, int, error) {
	if err := normalizeAdaptive(req); err != nil {
		return core.Experiment{}, "", http.StatusBadRequest, err
	}
	limit, tier := maxSweepVariants, "full-simulation"
	if req.Adaptive {
		limit, tier = maxEstimateVariants, "adaptive"
	}
	return normalizeSweepBounded(req, limit, tier)
}

// normalizeEstimate is normalizeSweep for /v1/estimate: the wider
// estimator cap applies, and the adaptive knobs are rejected — every
// point of an estimate is estimated, so there is nothing to adapt.
func normalizeEstimate(req *sweepRequest) (core.Experiment, core.VariantAxis, int, error) {
	if req.Adaptive || req.Threshold != 0 {
		return core.Experiment{}, "", http.StatusBadRequest,
			fmt.Errorf("adaptive/threshold do not apply to /v1/estimate (every point is estimated); use POST /v1/sweep for adaptive sweeps")
	}
	return normalizeSweepBounded(req, maxEstimateVariants, "estimator")
}

// normalizeAdaptive canonicalizes the adaptive knobs. Zero threshold
// means zero tolerance — every point must be exact, which IS the plain
// sweep — so adaptive+threshold-0 folds onto the non-adaptive spelling
// (one cache entry, byte-identical bodies). A threshold without
// adaptive is a contradiction worth a 400, not a silent ignore.
func normalizeAdaptive(req *sweepRequest) error {
	t := req.Threshold
	if math.IsNaN(t) || t < 0 || t > 1 {
		return fmt.Errorf("bad threshold %v: want a relative tolerance in [0, 1]", t)
	}
	if !req.Adaptive && t != 0 {
		return fmt.Errorf("threshold requires adaptive: true")
	}
	if req.Adaptive && t == 0 {
		req.Adaptive = false
	}
	return nil
}

func normalizeSweepBounded(req *sweepRequest, limit int, tier string) (core.Experiment, core.VariantAxis, int, error) {
	if len(req.CapsW) > 0 {
		if req.Axis != "" && req.Axis != string(core.AxisPowerCap) {
			return core.Experiment{}, "", http.StatusBadRequest,
				fmt.Errorf("caps_w is the legacy spelling of axis=powercap and cannot combine with axis %q", req.Axis)
		}
		if len(req.Values) > 0 {
			return core.Experiment{}, "", http.StatusBadRequest,
				fmt.Errorf("give either caps_w or values, not both")
		}
		req.Axis, req.Values, req.CapsW = string(core.AxisPowerCap), req.CapsW, nil
	}
	if req.Axis == "" {
		req.Axis = string(core.AxisPowerCap)
	}
	axis, err := core.ParseVariantAxis(req.Axis)
	if err != nil {
		return core.Experiment{}, "", http.StatusBadRequest, withCode("bad_axis", err)
	}
	if len(req.Values) == 0 {
		return core.Experiment{}, "", http.StatusBadRequest,
			fmt.Errorf("values is required: the list of %s settings to sweep", axis)
	}
	if len(req.Values) > limit {
		return core.Experiment{}, "", http.StatusBadRequest, withCode("bad_values",
			fmt.Errorf("values has %d variants, over the %s limit of %d (plain sweeps simulate every value, max %d; /v1/estimate and adaptive sweeps accept up to %d)",
				len(req.Values), tier, limit, maxSweepVariants, maxEstimateVariants))
	}
	for _, v := range req.Values {
		if err := axis.Validate(v); err != nil {
			return core.Experiment{}, "", http.StatusBadRequest, withCode("bad_axis", err)
		}
	}
	if req.Cluster == "" {
		req.Cluster = "CloudLab" // the paper had root (and power-cap rights) here
	}
	spec, ok := cluster.ByName(req.Cluster)
	if !ok {
		return core.Experiment{}, "", http.StatusNotFound,
			fmt.Errorf("unknown cluster %q (known: %v)", req.Cluster, cluster.Names())
	}
	if req.Workload == "" {
		req.Workload = "sgemm"
	}
	wl, err := workload.ByName(req.Workload, spec.SKU())
	if err != nil {
		return core.Experiment{}, "", http.StatusNotFound, err
	}
	req.Workload = wl.Name
	if req.Seed == 0 {
		req.Seed = 2022
	}
	if !(req.Fraction > 0 && req.Fraction <= 1) { // written so NaN folds to the default too
		req.Fraction = 1
	}
	if req.Runs < 1 {
		req.Runs = 1
	}
	if req.Iterations < 0 {
		return core.Experiment{}, "", http.StatusBadRequest,
			fmt.Errorf("bad iterations %d: want >= 0 (0 = workload default)", req.Iterations)
	}
	if req.Iterations > 0 {
		wl.Iterations = req.Iterations
	}
	req.Iterations = wl.Iterations
	return core.Experiment{
		Cluster:  spec,
		Workload: wl,
		Seed:     req.Seed,
		Fraction: req.Fraction,
		Runs:     req.Runs,
	}, axis, 0, nil
}
