package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/workload"
)

// The sweep endpoint runs a bounded batch of experiment variants — a
// power-cap sweep, the paper's §VI-B study (Fig. 22) — as ONE engine
// job graph: each cap is a shard of a core.PowerLimitSweepCtx job, the
// variants' own per-GPU jobs nest inside, and every variant shares one
// cached fleet instantiation (the cap applies at simulation time, not
// fleet-sampling time). Before the engine existed this was too
// expensive to expose: N caps ran as N sequential full experiments on a
// request goroutine with no way to abort. Now a sweep is
// deadline-bounded, cancelable mid-variant, and coalesced like every
// other response.

// maxSweepVariants bounds one request's batch; a sweep is a study, not
// a denial of service.
const maxSweepVariants = 32

// maxSweepBody bounds the request body (a cap list plus a few knobs).
const maxSweepBody = 1 << 16

// sweepRequest is the POST /v1/sweep body. The normalized struct
// (defaults filled, names resolved) is the cache fingerprint.
type sweepRequest struct {
	Workload   string    `json:"workload"`
	Cluster    string    `json:"cluster"`
	Seed       uint64    `json:"seed"`
	Fraction   float64   `json:"fraction"`
	Runs       int       `json:"runs"`
	Iterations int       `json:"iterations"`
	CapsW      []float64 `json:"caps_w"`
}

// sweepVariant is one cap's outcome.
type sweepVariant struct {
	CapW     float64 `json:"cap_w"`
	GPUs     int     `json:"gpus"`
	MedianMs float64 `json:"median_ms"`
	PerfVar  float64 `json:"perf_variation"`
	Outliers int     `json:"outliers"`
}

// sweepResponse is one completed sweep.
type sweepResponse struct {
	Request  sweepRequest   `json:"request"`
	Variants []sweepVariant `json:"variants"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding body: %v", err)
		return
	}
	exp, status, err := normalizeSweep(&req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	key := fmt.Sprintf("sweep|%+v", req)
	s.serveCached(w, r, key, func(ctx context.Context) (*cachedResponse, error) {
		points, err := core.PowerLimitSweepCtx(ctx, exp, req.CapsW)
		if err != nil {
			return nil, err
		}
		out := sweepResponse{Request: req, Variants: make([]sweepVariant, len(points))}
		for i, p := range points {
			out.Variants[i] = sweepVariant{
				CapW:     p.CapW,
				GPUs:     len(p.Result.PerAG),
				MedianMs: p.MedianMs,
				PerfVar:  p.PerfVar,
				Outliers: p.NOutliers,
			}
		}
		return jsonResponse(out)
	})
}

// normalizeSweep validates the request, resolves names, and fills every
// defaulted field so the struct is a canonical fingerprint.
func normalizeSweep(req *sweepRequest) (core.Experiment, int, error) {
	if len(req.CapsW) == 0 {
		return core.Experiment{}, http.StatusBadRequest,
			fmt.Errorf("caps_w is required: the list of power caps (W) to sweep")
	}
	if len(req.CapsW) > maxSweepVariants {
		return core.Experiment{}, http.StatusBadRequest,
			fmt.Errorf("caps_w has %d variants (max %d per sweep)", len(req.CapsW), maxSweepVariants)
	}
	for _, c := range req.CapsW {
		if c < 0 {
			return core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad cap %v: want >= 0 (0 = TDP)", c)
		}
	}
	if req.Cluster == "" {
		req.Cluster = "CloudLab" // the paper had root (and power-cap rights) here
	}
	spec, ok := cluster.ByName(req.Cluster)
	if !ok {
		return core.Experiment{}, http.StatusNotFound,
			fmt.Errorf("unknown cluster %q (known: %v)", req.Cluster, cluster.Names())
	}
	if req.Workload == "" {
		req.Workload = "sgemm"
	}
	wl, err := workload.ByName(req.Workload, spec.SKU())
	if err != nil {
		return core.Experiment{}, http.StatusNotFound, err
	}
	req.Workload = wl.Name
	if req.Seed == 0 {
		req.Seed = 2022
	}
	if req.Fraction <= 0 || req.Fraction > 1 {
		req.Fraction = 1
	}
	if req.Runs < 1 {
		req.Runs = 1
	}
	if req.Iterations < 0 {
		return core.Experiment{}, http.StatusBadRequest,
			fmt.Errorf("bad iterations %d: want >= 0 (0 = workload default)", req.Iterations)
	}
	if req.Iterations > 0 {
		wl.Iterations = req.Iterations
	}
	req.Iterations = wl.Iterations
	return core.Experiment{
		Cluster:  spec,
		Workload: wl,
		Seed:     req.Seed,
		Fraction: req.Fraction,
		Runs:     req.Runs,
	}, 0, nil
}
