package service

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"gpuvar/internal/engine"
	"gpuvar/internal/faults"
	"gpuvar/internal/figures"
	"gpuvar/internal/jobs"
)

// armFaults arms the process-global fault registry for one test and
// restores disarmed serving (and the default seed) afterwards.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	faults.SetSeed(2022)
	if err := faults.Arm(spec); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		faults.Reset()
		faults.SetSeed(1)
	})
}

// withRetries installs a process-default retry policy and removes it at
// cleanup (the policy is what gpuvard -retries would set).
func withRetries(t *testing.T, attempts int) {
	t.Helper()
	engine.SetRetryPolicy(engine.RetryPolicy{MaxAttempts: attempts, BaseBackoff: time.Microsecond})
	t.Cleanup(func() { engine.SetRetryPolicy(engine.RetryPolicy{}) })
}

// TestChaosByteIdentity is the PR's golden bar at the service level:
// sweep and campaign responses computed under 30% injected transient
// shard faults (with retries armed) are byte-identical to the fault-free
// responses, and none of the chaos requests answers 5xx.
func TestChaosByteIdentity(t *testing.T) {
	requests := []struct{ name, method, target, body string }{
		{"sweep", "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"caps_w":[300,250]}`},
		{"campaign", "POST", "/v1/campaign", campaignBody},
	}

	// Fault-free baselines on a pristine server.
	clean := map[string]string{}
	srv := testServer()
	for _, req := range requests {
		rr := doReq(t, srv, req.method, req.target, req.body)
		if rr.Code != 200 {
			t.Fatalf("%s baseline: status %d: %s", req.name, rr.Code, rr.Body.String())
		}
		clean[req.name] = rr.Body.String()
	}

	// The same requests on a fresh server (cold response cache — the
	// computations must actually re-run) under 30% shard faults.
	withRetries(t, 12)
	armFaults(t, "engine.shard.pre=error:0.3")
	chaos := testServer()
	for _, req := range requests {
		rr := doReq(t, chaos, req.method, req.target, req.body)
		if rr.Code != 200 {
			t.Fatalf("%s under faults: status %d (5xx under 30%% transient faults means retry failed): %s",
				req.name, rr.Code, rr.Body.String())
		}
		if rr.Body.String() != clean[req.name] {
			t.Fatalf("%s response under faults is not byte-identical to the fault-free run", req.name)
		}
	}

	// The drill must have injected something, and the stats must show it.
	var stats statsResponse
	rr := doReq(t, chaos, "GET", "/v1/stats", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Faults) != 1 || stats.Faults[0].Injected == 0 {
		t.Fatalf("stats faults = %+v, want the armed site with injections", stats.Faults)
	}
	if stats.Engine.Retries == 0 || stats.Engine.TransientShardErrors == 0 {
		t.Fatalf("engine stats %+v recorded no retries under 30%% faults", stats.Engine)
	}
}

// TestDegradedServingFromStale: when a recompute fails server-side, a
// previously evicted copy of the response answers with X-Degraded:
// stale instead of a 5xx, and healthz reports degraded — both while the
// registry is armed and for the window after the stale serve.
func TestDegradedServingFromStale(t *testing.T) {
	srv := mustNew(Options{
		Figures:           figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		ResponseCacheSize: 1, // every new key evicts the previous one into the stale store
	})
	const (
		bodyA = `{"cluster":"CloudLab","iterations":2,"caps_w":[300,250]}`
		bodyB = `{"cluster":"CloudLab","iterations":2,"caps_w":[200,150]}`
	)
	rr := doReq(t, srv, "POST", "/v1/sweep", bodyA)
	if rr.Code != 200 {
		t.Fatalf("warm A: %d: %s", rr.Code, rr.Body.String())
	}
	wantBody := rr.Body.String()
	if rr = doReq(t, srv, "POST", "/v1/sweep", bodyB); rr.Code != 200 {
		t.Fatalf("warm B: %d: %s", rr.Code, rr.Body.String())
	}
	if s := srv.CacheStats(); s.StaleEntries != 1 {
		t.Fatalf("cache stats %+v, want A's response demoted to 1 stale entry", s)
	}

	// Every shard attempt now fails and nothing retries: recomputing A
	// is guaranteed to fail server-side.
	armFaults(t, "engine.shard.pre=error:1")
	rr = doReq(t, srv, "POST", "/v1/sweep", bodyA)
	if rr.Code != 200 || rr.Header().Get("X-Degraded") != "stale" || rr.Header().Get("X-Cache") != "stale" {
		t.Fatalf("degraded serve: status %d, X-Degraded %q, X-Cache %q; body: %s",
			rr.Code, rr.Header().Get("X-Degraded"), rr.Header().Get("X-Cache"), rr.Body.String())
	}
	if rr.Body.String() != wantBody {
		t.Fatal("stale bytes differ from the originally cached response")
	}

	var hz healthzResponse
	rr = doReq(t, srv, "GET", "/v1/healthz", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if !hz.OK || hz.Status != "degraded" {
		t.Fatalf("healthz armed = ok:%v status:%q, want ok:true status:degraded", hz.OK, hz.Status)
	}
	if hz.DegradedServes != 1 {
		t.Fatalf("degraded_serves = %d, want 1", hz.DegradedServes)
	}

	// Disarm: the recent stale serve keeps status degraded for the
	// window even with no faults armed.
	faults.Reset()
	rr = doReq(t, srv, "GET", "/v1/healthz", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" {
		t.Fatalf("healthz right after a stale serve = %q, want degraded for the %s window", hz.Status, degradedWindow)
	}

	// A fresh server with nothing armed and no stale history is ok.
	var cleanHz healthzResponse
	rr = doReq(t, testServer(), "GET", "/v1/healthz", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &cleanHz); err != nil {
		t.Fatal(err)
	}
	if cleanHz.Status != "ok" {
		t.Fatalf("pristine healthz status = %q, want ok", cleanHz.Status)
	}
}

// TestNoStaleForClientErrors: 4xx failures are the client's, not the
// server's — a stale copy must never mask them.
func TestNoStaleForClientErrors(t *testing.T) {
	srv := mustNew(Options{
		Figures:           figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		ResponseCacheSize: 1,
	})
	// A bad cluster name is a 404 from the computation; no amount of
	// stale data should change that.
	rr := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"Atlantis","iterations":2,"caps_w":[300]}`)
	if rr.Code/100 != 4 {
		t.Fatalf("bad cluster: status %d, want a 4xx", rr.Code)
	}
	if rr.Header().Get("X-Degraded") != "" {
		t.Fatal("client error answered with a degraded header")
	}
}

// TestJobJournalAcrossRestart is the crash-safety acceptance path via
// the HTTP surface: finish a job on one server, build a second server
// over the same data dir, and fetch the same result bytes from it.
func TestJobJournalAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Figures: figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		DataDir: dir,
	}
	srv1 := mustNew(opts)
	view := submitJob(t, srv1, `{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"caps_w":[300,250]}}`)
	waitFor(t, func() bool {
		s, ok := srv1.jobs.Get(view.ID)
		return ok && s.State == jobs.StateDone
	})
	rr := doReq(t, srv1, "GET", view.URL+"/result", "")
	if rr.Code != 200 {
		t.Fatalf("result on srv1: %d: %s", rr.Code, rr.Body.String())
	}
	want := rr.Body.String()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Reboot": a second server over the same data dir replays the
	// journal; the job ID, its state, and its exact bytes all survive.
	srv2 := mustNew(opts)
	defer srv2.Close()
	rr = doReq(t, srv2, "GET", view.URL, "")
	if rr.Code != 200 {
		t.Fatalf("status on srv2: %d: %s", rr.Code, rr.Body.String())
	}
	rr = doReq(t, srv2, "GET", view.URL+"/result", "")
	if rr.Code != 200 {
		t.Fatalf("result on srv2: %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Body.String() != want {
		t.Fatal("replayed result bytes differ from the original")
	}
	var stats statsResponse
	rr = doReq(t, srv2, "GET", "/v1/stats", "")
	if err := json.Unmarshal(rr.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Journal == nil || stats.Jobs.Journal.RecoveredTerminal != 1 {
		t.Fatalf("journal stats on srv2 = %+v, want 1 recovered terminal job", stats.Jobs.Journal)
	}
}

// TestErrorEnvelopeConsistency pins the satellite fix: every 404 on the
// API — unknown job IDs on all three job routes, and entirely unknown
// routes — answers the same JSON envelope, never net/http's plain text.
func TestErrorEnvelopeConsistency(t *testing.T) {
	srv := testServer()
	cases := []struct{ name, method, target, wantIn string }{
		{"job status", "GET", "/v1/jobs/jnope", "unknown job"},
		{"job result", "GET", "/v1/jobs/jnope/result", "unknown job"},
		{"job delete", "DELETE", "/v1/jobs/jnope", "unknown job"},
		{"unknown route", "GET", "/v1/nope", "unknown route"},
		{"root", "GET", "/", "unknown route"},
	}
	for _, c := range cases {
		rr := doReq(t, srv, c.method, c.target, "")
		if rr.Code != 404 {
			t.Errorf("%s: status %d, want 404", c.name, rr.Code)
			continue
		}
		if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", c.name, ct)
		}
		var body errorBody
		if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
			t.Errorf("%s: body is not the JSON envelope: %s", c.name, rr.Body.String())
			continue
		}
		if !strings.Contains(body.Error, c.wantIn) {
			t.Errorf("%s: error %q does not mention %q", c.name, body.Error, c.wantIn)
		}
	}
	// The three job-route 404s must carry the same message (the TTL
	// hint included), so clients see one contract, not three.
	msgs := map[string]bool{}
	for _, target := range []string{"/v1/jobs/jnope", "/v1/jobs/jnope/result"} {
		var body errorBody
		rr := doReq(t, srv, "GET", target, "")
		_ = json.Unmarshal(rr.Body.Bytes(), &body)
		msgs[body.Error] = true
	}
	var del errorBody
	rr := doReq(t, srv, "DELETE", "/v1/jobs/jnope", "")
	_ = json.Unmarshal(rr.Body.Bytes(), &del)
	msgs[del.Error] = true
	if len(msgs) != 1 {
		t.Errorf("job 404 messages diverge: %v", msgs)
	}
}
