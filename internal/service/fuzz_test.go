package service

// Native Go fuzz targets for the service's request-normalization
// surface — the code every untrusted byte hits first. Both targets are
// pure validation (no simulation runs), so the seed corpus executes in
// microseconds under plain `go test` and the fuzzing engine can explore
// deeply under `make fuzz` (scripts/verify.sh runs a short -fuzz smoke
// of each on every verify).
//
// The invariants fuzzed:
//   - normalization never panics, whatever the bytes;
//   - an error is always classified with a 4xx client status;
//   - a success leaves the request in canonical form: axis parsed,
//     caps_w folded away, every value valid for its axis, all defaults
//     filled;
//   - normalization is idempotent — re-normalizing a normalized request
//     is a fixed point with a stable cache fingerprint (the property
//     the response cache's coalescing correctness rests on).

import (
	"bytes"
	"encoding/json"
	"testing"

	"gpuvar/internal/core"
)

// decodeStrict mirrors the handlers' decoding: DisallowUnknownFields
// over the raw body.
func decodeStrict(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// FuzzSweepRequest fuzzes POST /v1/sweep's body through the same
// decode + normalize path the handler uses, including the variant-axis
// parsing and per-axis value validation.
func FuzzSweepRequest(f *testing.F) {
	// Seed corpus: every axis, the legacy spelling, defaulted fields,
	// and representative malformed shapes (bad axis, mixed spellings,
	// out-of-range values, truncated JSON).
	for _, seed := range []string{
		`{"cluster":"CloudLab","axis":"powercap","values":[300,250,200]}`,
		`{"axis":"seed","values":[1,2,3]}`,
		`{"axis":"ambient","values":[-2,0,2]}`,
		`{"axis":"fraction","values":[0.25,0.5,1]}`,
		`{"caps_w":[250]}`,
		`{"workload":"resnet","cluster":"Summit","seed":7,"fraction":0.1,"runs":2,"iterations":4,"axis":"powercap","values":[0]}`,
		`{"axis":"voltage","values":[1]}`,
		`{"axis":"seed","caps_w":[250]}`,
		`{"caps_w":[250],"values":[250]}`,
		`{"axis":"seed","values":[1.5]}`,
		`{"axis":"fraction","values":[2]}`,
		`{"axis":"ambient","values":[40]}`,
		`{"values":[]}`,
		`{"iterations":-1,"values":[250]}`,
		`{"cluster":"Atlantis","values":[250]}`,
		`{"workload":"doom","values":[250]}`,
		`{"caps_w":`,
		`{"unknown_field":1,"values":[250]}`,
		`{"values":[250,200],"adaptive":true,"threshold":0.05}`,
		`{"values":[250],"adaptive":true,"threshold":0}`,
		`{"values":[250],"threshold":0.1}`,
		`{"values":[250],"adaptive":true,"threshold":1.5}`,
		`{"values":[250],"adaptive":true,"threshold":-1}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var req sweepRequest
		if decodeStrict(body, &req) != nil {
			return // handler answers 400 before normalization
		}
		_, axis, status, err := normalizeSweep(&req)
		if err != nil {
			if status < 400 || status > 499 {
				t.Errorf("normalizeSweep error %v carries status %d, want a 4xx client error", err, status)
			}
			return
		}
		// Canonical-form invariants on success.
		if req.Axis != string(axis) {
			t.Errorf("normalized axis field %q does not match parsed axis %q", req.Axis, axis)
		}
		if len(req.CapsW) != 0 {
			t.Error("caps_w survived normalization; it must fold into axis/values")
		}
		limit := maxSweepVariants
		if req.Adaptive {
			limit = maxEstimateVariants
		}
		if len(req.Values) == 0 || len(req.Values) > limit {
			t.Errorf("normalized values length %d outside (0, %d]", len(req.Values), limit)
		}
		// Knob canonicalization: adaptive implies a usable tolerance
		// (threshold 0 folds back to the plain sweep), and a threshold
		// never survives without adaptive.
		if req.Adaptive && !(req.Threshold > 0 && req.Threshold <= 1) {
			t.Errorf("adaptive request normalized with threshold %v outside (0, 1]", req.Threshold)
		}
		if !req.Adaptive && req.Threshold != 0 {
			t.Errorf("threshold %v survived normalization without adaptive", req.Threshold)
		}
		for _, v := range req.Values {
			if verr := axis.Validate(v); verr != nil {
				t.Errorf("normalized value %v fails its own axis validation: %v", v, verr)
			}
		}
		if req.Runs < 1 || req.Fraction <= 0 || req.Fraction > 1 || req.Iterations < 1 || req.Seed == 0 {
			t.Errorf("defaults not canonical after normalization: %+v", req)
		}
		// Idempotence: the normalized form is a fixed point with a
		// stable fingerprint.
		again := req
		if _, axis2, _, err2 := normalizeSweep(&again); err2 != nil || axis2 != axis {
			t.Errorf("re-normalizing the normalized request failed: axis %q, %v", axis2, err2)
		}
		if sweepCacheKey(again) != sweepCacheKey(req) {
			t.Errorf("fingerprint unstable across re-normalization:\n%s\n%s", sweepCacheKey(req), sweepCacheKey(again))
		}
	})
}

// FuzzJobEnvelope fuzzes POST /v1/jobs' envelope — kind and class
// routing plus the nested payload normalization — through the exact
// helper the submit handler uses.
func FuzzJobEnvelope(f *testing.F) {
	for _, seed := range []string{
		`{"kind":"sweep","sweep":{"cluster":"CloudLab","axis":"powercap","values":[250]}}`,
		`{"kind":"sweep","class":"interactive","sweep":{"axis":"seed","values":[7]}}`,
		`{"kind":"sweep","class":"batch","sweep":{"caps_w":[300,200]}}`,
		`{"kind":"campaign","campaign":{"cluster":"CloudLab","days":3}}`,
		`{"kind":"campaign","campaign":{"cluster":"Vortex","injection":{"day":4,"node_id":"v003-n01","kind":"power-brake"}}}`,
		`{"kind":"mine-bitcoin"}`,
		`{"kind":"sweep"}`,
		`{"kind":"campaign"}`,
		`{"kind":"sweep","class":"realtime","sweep":{"values":[250]}}`,
		`{"kind":"sweep","sweep":{"cluster":"Atlantis","values":[1]}}`,
		`{"kind":"campaign","campaign":{"days":-4}}`,
		`{"kind":"campaign","campaign":{"cluster":"CloudLab","days":9999}}`,
		`{"kind":"estimate","estimate":{"cluster":"CloudLab","axis":"powercap","values":[100,200,300]}}`,
		`{"kind":"estimate","estimate":{"values":[250],"adaptive":true,"threshold":0.1}}`,
		`{"kind":"estimate"}`,
		`{"kind":"sweep","sweep":{"values":[250,200],"adaptive":true,"threshold":0.05}}`,
		`{"kind":`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		var req jobRequest
		if decodeStrict(body, &req) != nil {
			return
		}
		key, class, compute, status, err := jobComputation(&req)
		if err != nil {
			if status < 400 || status > 499 {
				t.Errorf("jobComputation error %v carries status %d, want a 4xx client error", err, status)
			}
			return
		}
		if key == "" || compute == nil {
			t.Error("successful jobComputation returned an empty key or nil computation")
		}
		if s := class.String(); s != "interactive" && s != "batch" {
			t.Errorf("successful jobComputation returned unprintable class %v", class)
		}
		// The payload reached canonical form: its fingerprint is stable
		// under a second pass.
		switch req.Kind {
		case "sweep":
			again := *req.Sweep
			key2, _, _, err2 := sweepComputation(&again)
			if err2 != nil || key2 != key {
				t.Errorf("sweep payload fingerprint unstable: %q vs %q (%v)", key, key2, err2)
			}
		case "estimate":
			again := *req.Estimate
			key2, _, _, err2 := estimateComputation(&again)
			if err2 != nil || key2 != key {
				t.Errorf("estimate payload fingerprint unstable: %q vs %q (%v)", key, key2, err2)
			}
		case "campaign":
			again := *req.Campaign
			key2, _, _, err2 := campaignComputation(&again)
			if err2 != nil || key2 != key {
				t.Errorf("campaign payload fingerprint unstable: %q vs %q (%v)", key, key2, err2)
			}
		}
	})
}

// TestFuzzSeedsAreValidJSONCoverage sanity-checks that the "valid"
// seeds actually exercise the success path (a broken seed corpus would
// silently fuzz only the error path).
func TestFuzzSeedsAreValidJSONCoverage(t *testing.T) {
	var req sweepRequest
	if err := decodeStrict([]byte(`{"cluster":"CloudLab","axis":"powercap","values":[300,250,200]}`), &req); err != nil {
		t.Fatal(err)
	}
	if _, axis, _, err := normalizeSweep(&req); err != nil || axis != core.AxisPowerCap {
		t.Fatalf("canonical seed fails normalization: %v", err)
	}
	var env jobRequest
	if err := decodeStrict([]byte(`{"kind":"sweep","class":"interactive","sweep":{"axis":"seed","values":[7]}}`), &env); err != nil {
		t.Fatal(err)
	}
	if _, class, _, _, err := jobComputation(&env); err != nil || class.String() != "interactive" {
		t.Fatalf("canonical envelope seed fails: class %v, %v", class, err)
	}
}
