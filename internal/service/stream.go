package service

// Streaming per-shard results: instead of buffering a whole sweep or
// experiment and answering in one body, the streaming endpoints flush
// one NDJSON line per completed shard, first byte in milliseconds even
// for Summit-scale runs:
//
//	GET /v1/stream/sweep              the POST /v1/sweep body as query
//	                                  params (values/caps_w comma-
//	                                  separated); one line per variant
//	GET /v1/stream/experiments/{name} the GET /v1/experiments/{name}
//	                                  query; one line per engine shard
//	                                  (a per-GPU measurement job)
//
// Each line is a JSON object with a "kind" ("start", "shard",
// "summary", or "error") and a "payload" string. The payload carries a
// chunk of the SYNCHRONOUS response body: concatenating every line's
// payload, in order, reproduces the synchronous endpoint's bytes
// exactly — the stream is a progressive encoding of the same response,
// not a second schema. The terminal summary line carries the closing
// chunk plus the body's total length and sha256, so a client can verify
// the reassembly; on failure an "error" line replaces it.
//
// The shard lines ride the engine's ordered per-shard sink
// (engine.WithSink): the top-level job's shards — sweep variants,
// per-GPU measurement jobs — are emitted in shard order the moment each
// contiguous prefix completes, while nested jobs compute silently. A
// sweep shard's payload is its variant's JSON entry; an experiment
// shard's payload is empty (the summary section needs every
// measurement), so its lines serve as ordered progress beacons and the
// terminal line carries the body's remainder.
//
// Streams run under the interactive scheduling class (a held connection
// with a client watching) but get the batch-length deadline
// (Options.JobTimeout): streaming exists precisely for computations
// that outlive RequestTimeout. A client disconnect cancels the
// computation mid-shard exactly like the synchronous path. Streams
// bypass the response cache on the way in (replaying a stored body
// would defeat per-shard liveness) but verify and deposit their
// assembled body on the way out, so a later synchronous request is a
// cache hit; the compute layers below (fleet cache, steady-point
// memoization, figure sessions) dedupe repeated streams.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"gpuvar/internal/core"
	"gpuvar/internal/engine"
)

// streamSweepRun and streamExperimentRun are seams for the streaming
// tests: the gated-shard and mid-stream-disconnect tests swap in
// engine-backed fakes to control shard timing deterministically.
var (
	streamSweepRun      = core.VariantSweepCtx
	adaptiveSweepRun    = core.AdaptiveSweepCtx
	streamExperimentRun = core.RunCtx
)

// streamLine is one NDJSON line of a streamed response.
type streamLine struct {
	// Kind is "start" (headers written, job submitted), "shard" (one
	// completed shard), "summary" (terminal, successful), or "error"
	// (terminal, failed).
	Kind string `json:"kind"`
	// Shards is the job's top-level shard count (0 on the start line of
	// an experiment stream, where the count is discovered at fan-out).
	Shards int `json:"shards"`
	// Shard is the completed shard's index (-1 on non-shard lines).
	Shard int `json:"shard"`
	// Value is the variant's axis value (sweep shard lines only).
	Value *float64 `json:"value,omitempty"`
	// GPUs is the number of GPUs the shard measured (experiment shard
	// lines only).
	GPUs int `json:"gpus,omitempty"`
	// Payload is this line's chunk of the synchronous response body.
	Payload string `json:"payload"`
	// Bytes and SHA256 describe the fully reassembled body (summary
	// lines only).
	Bytes  int    `json:"bytes,omitempty"`
	SHA256 string `json:"sha256,omitempty"`
	// Error is the failure, when Kind is "error".
	Error string `json:"error,omitempty"`
}

// streamWriter emits NDJSON lines, flushing after each so shard results
// reach the client immediately, and accumulates the payload bytes for
// the terminal checksum and the cache deposit.
//
// Writes run on a dedicated pump goroutine (start/wait), fed through a
// queue: engine workers must never block on a slow client's socket —
// they hold worker-budget tokens, and a stalled reader pinning the
// process-wide budget would defeat the scheduler. queue() is a cheap
// mutex append; only the pump blocks on the wire. The queue is bounded
// in practice by the job's shard count (its contents are the very
// chunks the writer also accumulates in body).
type streamWriter struct {
	enc   *json.Encoder
	flush func()
	body  bytes.Buffer // concatenated payloads == the synchronous body

	mu     sync.Mutex
	cond   *sync.Cond
	lines  []streamLine
	closed bool
	done   chan struct{}
}

// newStreamWriter writes the stream headers and starts the write pump.
// Callers must end the stream with wait() (after queueing the terminal
// line) so the pump drains and the payload buffer is complete.
func newStreamWriter(w http.ResponseWriter) *streamWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not re-buffer the stream
	w.WriteHeader(http.StatusOK)
	sw := &streamWriter{enc: json.NewEncoder(w), flush: func() {}, done: make(chan struct{})}
	if f, ok := w.(http.Flusher); ok {
		sw.flush = f.Flush
	}
	sw.cond = sync.NewCond(&sw.mu)
	go sw.pump()
	return sw
}

// queue hands one line to the pump without ever blocking on the wire.
func (sw *streamWriter) queue(l streamLine) {
	sw.mu.Lock()
	sw.lines = append(sw.lines, l)
	sw.mu.Unlock()
	sw.cond.Signal()
}

// wait queues the terminal line, closes the queue, and blocks until the
// pump has written everything (or the connection died — write errors
// are ignored; the computation's context, not the write path, is what
// tears a stream down).
func (sw *streamWriter) wait(terminal streamLine) {
	sw.mu.Lock()
	sw.lines = append(sw.lines, terminal)
	sw.closed = true
	sw.mu.Unlock()
	sw.cond.Signal()
	<-sw.done
}

// pump drains the queue to the client, one flushed line at a time.
func (sw *streamWriter) pump() {
	defer close(sw.done)
	next := 0
	for {
		sw.mu.Lock()
		for next >= len(sw.lines) && !sw.closed {
			sw.cond.Wait()
		}
		if next >= len(sw.lines) {
			sw.mu.Unlock()
			return
		}
		l := sw.lines[next]
		next++
		sw.mu.Unlock()

		sw.body.WriteString(l.Payload)
		if l.Kind == "summary" {
			l.Bytes = sw.body.Len()
			sum := sha256.Sum256(sw.body.Bytes())
			l.SHA256 = hex.EncodeToString(sum[:])
		}
		_ = sw.enc.Encode(l)
		sw.flush()
	}
}

// fail terminates the stream with an error line carrying the failure
// (the HTTP status itself went out as 200 with the start line — NDJSON
// errors are in-band) and waits for the pump.
func (sw *streamWriter) fail(shards int, err error) {
	sw.wait(streamLine{Kind: "error", Shards: shards, Shard: -1, Error: err.Error()})
}

// streamContext bounds a stream's computation: the client's context
// (disconnect cancels mid-shard) under the batch-length JobTimeout,
// carrying the replica dispatcher when one is configured — streamed
// sweeps dispatch shard-by-shard exactly like synchronous ones.
func (s *Server) streamContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := s.dispatchContext(r)
	if s.opts.JobTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.opts.JobTimeout)
}

// marshalSection renders v as it appears nested one level deep in a
// jsonResponse body (MarshalIndent with two-space indent).
func marshalSection(v any) (string, error) {
	b, err := json.MarshalIndent(v, "  ", "  ")
	return string(b), err
}

// sweepStreamPrefix is everything of the synchronous sweep body that
// precedes variant 0 — known before any shard completes, so the start
// line carries real content immediately.
func sweepStreamPrefix(req sweepRequest) (string, error) {
	reqJSON, err := marshalSection(req)
	return "{\n  \"request\": " + reqJSON + ",\n  \"variants\": [\n", err
}

// sweepVariantChunk is variant i's slice of the synchronous body: its
// indented JSON entry plus the separator its position demands. marked
// mirrors renderSweep's: true on adaptive sweeps, where every variant
// carries its source.
func sweepVariantChunk(axis core.VariantAxis, marked bool, p core.VariantPoint, i, n int) (string, error) {
	vJSON, err := json.MarshalIndent(sweepVariantView(axis, marked, p), "    ", "  ")
	if err != nil {
		return "", err
	}
	sep := ","
	if i == n-1 {
		sep = ""
	}
	return "    " + string(vJSON) + sep + "\n", nil
}

// sweepStreamSuffix closes the body (jsonResponse appends the trailing
// newline to the synchronous form; the stream must reproduce it).
const sweepStreamSuffix = "  ]\n}\n"

func (s *Server) handleStreamSweep(w http.ResponseWriter, r *http.Request) {
	directive, err := parseRouteDirective(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	req, err := sweepRequestFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	legacy := len(req.CapsW) > 0
	exp, axis, status, err := normalizeSweep(&req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	if s.redirectAffinityMiss(w, directive, sweepCacheKey(req)) {
		return
	}
	markLegacySweep(w, legacy)
	n := len(req.Values)
	prefix, err := sweepStreamPrefix(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}

	ctx, cancel := s.streamContext(r)
	defer cancel()
	sw := newStreamWriter(w)
	sw.queue(streamLine{Kind: "start", Shards: n, Shard: -1, Payload: prefix})

	// chunkErr needs no lock: the engine serializes sink calls, and the
	// run's return happens-after the last of them.
	var chunkErr error
	sink := engine.ShardSink(func(shard, total int, v any) {
		if chunkErr != nil {
			return // a lost chunk must not be followed by later shards
		}
		p := v.(core.VariantPoint)
		chunk, err := sweepVariantChunk(axis, req.Adaptive, p, shard, total)
		if err != nil {
			chunkErr = err // surfaces after the run; rendering our own structs cannot fail
			return
		}
		val := p.Value
		sw.queue(streamLine{Kind: "shard", Shards: total, Shard: shard, Value: &val, Payload: chunk})
	})
	var points []core.VariantPoint
	if req.Adaptive {
		// The adaptive run streams through the same sink: estimated
		// shards land near-instantly, simulated ones as they finish (the
		// calibration's anchor runs are sink-stripped inside core).
		points, err = adaptiveSweepRun(engine.WithSink(ctx, sink), exp, axis, req.Values, req.Threshold)
	} else {
		points, err = dispatchedSweepRun(engine.WithSink(ctx, sink), exp, axis, &req)
	}
	if err == nil {
		err = chunkErr
	}
	if err != nil {
		sw.fail(n, err)
		return
	}
	sw.wait(streamLine{Kind: "summary", Shards: n, Shard: -1, Payload: sweepStreamSuffix})

	// Verify the progressive encoding against the synchronous renderer
	// before depositing it: the cache must only ever hold bytes the
	// synchronous endpoint would serve.
	if sync, err := renderSweep(req, axis, req.Adaptive, points); err == nil && bytes.Equal(sw.body.Bytes(), sync.body) {
		s.cache.prime(sweepCacheKey(req), sync)
	}
}

// experimentStreamPrefix is the request section of the synchronous
// experiment body — everything known before the fan-out.
func experimentStreamPrefix(req experimentRequest) (string, error) {
	reqJSON, err := marshalSection(req)
	return "{\n  \"request\": " + reqJSON + ",\n", err
}

func (s *Server) handleStreamExperiment(w http.ResponseWriter, r *http.Request) {
	req, exp, status, err := parseExperiment(r)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	prefix, err := experimentStreamPrefix(req)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}

	ctx, cancel := s.streamContext(r)
	defer cancel()
	sw := newStreamWriter(w)
	// Shard count is discovered at fan-out (it depends on fleet size
	// and coverage fraction); the shard lines carry it.
	sw.queue(streamLine{Kind: "start", Shards: 0, Shard: -1, Payload: prefix})

	shards := 0
	sink := engine.ShardSink(func(shard, total int, v any) {
		shards = total
		ms := v.([]core.Measurement)
		// The summary section aggregates every measurement, so no body
		// chunk is renderable yet: shard lines are ordered progress
		// beacons, and the terminal line carries the body's remainder.
		sw.queue(streamLine{Kind: "shard", Shards: total, Shard: shard, GPUs: len(ms)})
	})
	res, err := streamExperimentRun(engine.WithSink(ctx, sink), exp)
	if err != nil {
		sw.fail(shards, err)
		return
	}
	full, err := jsonResponse(renderExperiment(req, res))
	if err != nil {
		sw.fail(shards, err)
		return
	}
	if !bytes.HasPrefix(full.body, []byte(prefix)) {
		// Defensive: the prefix is derived from the same struct the
		// renderer marshals, so divergence means a schema bug — tell the
		// client rather than emit a corrupt reassembly.
		sw.fail(shards, fmt.Errorf("internal: streamed prefix diverged from the synchronous body"))
		return
	}
	sw.wait(streamLine{Kind: "summary", Shards: shards, Shard: -1, Payload: string(full.body[len(prefix):])})
	s.cache.prime(experimentCacheKey(req), full)
}
