package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"

	"gpuvar/internal/cluster"
	"gpuvar/internal/core"
	"gpuvar/internal/gpu"
	"gpuvar/internal/workload"
)

// experimentRequest is the normalized form of one experiment query —
// the response-cache fingerprint is derived from it, so every field
// must be in canonical form (workload name resolved through
// workload.ByName, defaults applied) before keying.
type experimentRequest struct {
	Workload   string  `json:"workload"`
	Cluster    string  `json:"cluster"`
	Seed       uint64  `json:"seed"`
	Fraction   float64 `json:"fraction"`
	Runs       int     `json:"runs"`
	Iterations int     `json:"iterations"`
	AdminCapW  float64 `json:"admin_cap_w"`
	Day        int     `json:"day"`
	Detail     string  `json:"detail"`
}

// summaryView is core.Summary with a stable snake_case wire schema.
type summaryView struct {
	GPUs      int     `json:"gpus"`
	MedianMs  float64 `json:"median_ms"`
	PerfVar   float64 `json:"perf_variation"`
	FreqVar   float64 `json:"freq_variation"`
	PowerVar  float64 `json:"power_variation"`
	TempVar   float64 `json:"temp_variation"`
	Outliers  int     `json:"outliers"`
	PerfFreq  float64 `json:"corr_perf_freq"`
	PerfTemp  float64 `json:"corr_perf_temp"`
	PerfPower float64 `json:"corr_perf_power"`
	PowerTemp float64 `json:"corr_power_temp"`
}

// groupView is one box-plot group (cabinet or Summit row).
type groupView struct {
	Group    string  `json:"group"`
	N        int     `json:"n"`
	Q1       float64 `json:"q1_ms"`
	MedianMs float64 `json:"median_ms"`
	Q3       float64 `json:"q3_ms"`
	Outliers int     `json:"outliers"`
}

// gpuView is one per-GPU measurement row (detail=gpus).
type gpuView struct {
	GPUID   string  `json:"gpu_id"`
	Group   string  `json:"group"`
	PerfMs  float64 `json:"perf_ms"`
	FreqMHz float64 `json:"freq_mhz"`
	PowerW  float64 `json:"power_w"`
	TempC   float64 `json:"temp_c"`
	Defect  string  `json:"defect,omitempty"`
}

// experimentResponse is one completed experiment.
type experimentResponse struct {
	Request experimentRequest `json:"request"`
	Summary summaryView       `json:"summary"`
	Groups  []groupView       `json:"groups,omitempty"`
	GPUs    []gpuView         `json:"gpus,omitempty"`
}

// experimentCacheKey fingerprints a normalized experiment request —
// shared by the synchronous handler and the streaming handler so either
// primes the other's cache entry.
func experimentCacheKey(req experimentRequest) string {
	return fmt.Sprintf("experiment|%+v", req)
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	req, exp, status, err := parseExperiment(r)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	key := experimentCacheKey(req)
	s.serveCached(w, r, key, func(ctx context.Context) (*cachedResponse, error) {
		res, err := core.RunCtx(ctx, exp)
		if err != nil {
			return nil, err
		}
		return jsonResponse(renderExperiment(req, res))
	})
}

// parseExperiment resolves the request's workload/cluster and
// normalizes every knob. The returned status is the HTTP code to use
// when err != nil (404 for unknown names, 400 for malformed values).
func parseExperiment(r *http.Request) (experimentRequest, core.Experiment, int, error) {
	req := experimentRequest{
		Cluster:  "Longhorn",
		Seed:     2022,
		Fraction: 1,
		Runs:     1,
		Detail:   "summary",
	}
	q := r.URL.Query()
	if v := q.Get("cluster"); v != "" {
		req.Cluster = v
	}
	spec, ok := cluster.ByName(req.Cluster)
	if !ok {
		return req, core.Experiment{}, http.StatusNotFound,
			fmt.Errorf("unknown cluster %q (known: %v)", req.Cluster, cluster.Names())
	}
	wl, err := workload.ByName(r.PathValue("name"), spec.SKU())
	if err != nil {
		return req, core.Experiment{}, http.StatusNotFound, err
	}
	req.Workload = wl.Name

	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return req, core.Experiment{}, http.StatusBadRequest, fmt.Errorf("bad seed %q", v)
		}
		req.Seed = n
	}
	if v := q.Get("fraction"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		// !(f > 0 && f <= 1) so NaN — which query strings can spell,
		// unlike JSON bodies — fails too.
		if err != nil || !(f > 0 && f <= 1) {
			return req, core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad fraction %q: want 0 < f <= 1", v)
		}
		req.Fraction = f
	}
	if v := q.Get("runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return req, core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad runs %q: want a positive integer", v)
		}
		req.Runs = n
	}
	if v := q.Get("iterations"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return req, core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad iterations %q: want a positive integer", v)
		}
		wl.Iterations = n
	}
	req.Iterations = wl.Iterations
	if v := q.Get("cap"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return req, core.Experiment{}, http.StatusBadRequest, fmt.Errorf("bad cap %q", v)
		}
		req.AdminCapW = f
	}
	req.Day = -1
	if v := q.Get("day"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 6 {
			return req, core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad day %q: want 0 (Monday) .. 6 (Sunday)", v)
		}
		req.Day = n
	}
	if v := q.Get("detail"); v != "" {
		if v != "summary" && v != "groups" && v != "gpus" {
			return req, core.Experiment{}, http.StatusBadRequest,
				fmt.Errorf("bad detail %q: want summary, groups, or gpus", v)
		}
		req.Detail = v
	}

	exp := core.Experiment{
		Cluster:   spec,
		Workload:  wl,
		Seed:      req.Seed,
		Fraction:  req.Fraction,
		Runs:      req.Runs,
		AdminCapW: req.AdminCapW,
		Day:       req.Day,
	}
	return req, exp, 0, nil
}

// renderExperiment projects a result into the wire schema at the
// requested detail level.
func renderExperiment(req experimentRequest, res *core.Result) experimentResponse {
	sum := res.Summarize()
	out := experimentResponse{
		Request: req,
		Summary: summaryView{
			GPUs:      sum.GPUs,
			MedianMs:  sum.MedianMs,
			PerfVar:   sum.PerfVar,
			FreqVar:   sum.FreqVar,
			PowerVar:  sum.PowerVar,
			TempVar:   sum.TempVar,
			Outliers:  sum.NOutliers,
			PerfFreq:  sum.Corr.PerfFreq,
			PerfTemp:  sum.Corr.PerfTemp,
			PerfPower: sum.Corr.PerfPower,
			PowerTemp: sum.Corr.PowerTemp,
		},
	}
	switch req.Detail {
	case "groups":
		byGroup := res.BoxByGroup(core.Perf)
		for _, g := range res.GroupLabels() {
			bp, ok := byGroup[g]
			if !ok {
				continue
			}
			out.Groups = append(out.Groups, groupView{
				Group:    g,
				N:        bp.N,
				Q1:       bp.Q1,
				MedianMs: bp.Q2,
				Q3:       bp.Q3,
				Outliers: len(bp.Outliers),
			})
		}
	case "gpus":
		out.GPUs = make([]gpuView, len(res.PerAG))
		for i, m := range res.PerAG {
			v := gpuView{
				GPUID:   m.GPUID,
				Group:   m.Loc.Group(),
				PerfMs:  m.PerfMs,
				FreqMHz: m.FreqMHz,
				PowerW:  m.PowerW,
				TempC:   m.TempC,
			}
			if m.Defect != gpu.DefectNone {
				v.Defect = m.Defect.String()
			}
			out.GPUs[i] = v
		}
	}
	return out
}
