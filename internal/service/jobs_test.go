package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpuvar/internal/engine"
	"gpuvar/internal/jobs"
)

// submitJob posts a job envelope and decodes the 202 response.
func submitJob(t *testing.T, h http.Handler, body string) jobView {
	t.Helper()
	rr := doReq(t, h, "POST", "/v1/jobs", body)
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202; body: %s", rr.Code, rr.Body.String())
	}
	var view jobView
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatalf("submit: decoding 202 body: %v", err)
	}
	if loc := rr.Header().Get("Location"); loc != "/v1/jobs/"+view.ID {
		t.Fatalf("submit: Location %q does not match job id %q", loc, view.ID)
	}
	if view.URL != "/v1/jobs/"+view.ID {
		t.Fatalf("submit: url %q does not match job id %q", view.URL, view.ID)
	}
	return view
}

// pollJob polls the status endpoint until the job is terminal,
// asserting progress monotonicity along the way.
func pollJob(t *testing.T, h http.Handler, url string) jobView {
	t.Helper()
	var lastDone, lastTotal int64
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("job at %s did not reach a terminal state within 30s", url)
		}
		rr := doReq(t, h, "GET", url, "")
		if rr.Code != 200 {
			t.Fatalf("poll %s: status %d: %s", url, rr.Code, rr.Body.String())
		}
		var view jobView
		if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
			t.Fatalf("poll %s: %v", url, err)
		}
		if view.ShardsDone < lastDone || view.ShardsTotal < lastTotal {
			t.Fatalf("progress went backwards: %d/%d after %d/%d",
				view.ShardsDone, view.ShardsTotal, lastDone, lastTotal)
		}
		lastDone, lastTotal = view.ShardsDone, view.ShardsTotal
		if view.State.Terminal() {
			return view
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobSweepByteIdenticalToSync is the acceptance contract of the
// async path: the same sweep computed synchronously on one server and
// as a cold async job on another (so neither run can replay the
// other's cache) yields byte-identical bodies, the job reports
// per-shard progress, and double-fetching the result replays the same
// bytes.
func TestJobSweepByteIdenticalToSync(t *testing.T) {
	const sweepBody = `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[250,200]}`

	sync := doReq(t, testServer(), "POST", "/v1/sweep", sweepBody)
	if sync.Code != 200 {
		t.Fatalf("sync sweep: status %d: %s", sync.Code, sync.Body.String())
	}

	srv := testServer() // fresh response cache: the job computes cold
	view := submitJob(t, srv, `{"kind":"sweep","sweep":`+sweepBody+`}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	if final.ShardsTotal == 0 || final.ShardsDone != final.ShardsTotal {
		t.Fatalf("final progress = %d/%d, want complete and nonzero", final.ShardsDone, final.ShardsTotal)
	}
	if final.ResultURL != view.URL+"/result" {
		t.Fatalf("result_url = %q, want %q", final.ResultURL, view.URL+"/result")
	}

	res1 := doReq(t, srv, "GET", final.ResultURL, "")
	res2 := doReq(t, srv, "GET", final.ResultURL, "")
	if res1.Code != 200 || res2.Code != 200 {
		t.Fatalf("result fetches: %d, %d", res1.Code, res2.Code)
	}
	if !bytes.Equal(res1.Body.Bytes(), res2.Body.Bytes()) {
		t.Fatal("double-fetching the result returned different bytes")
	}
	if !bytes.Equal(res1.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatal("async job result diverged from the synchronous /v1/sweep response")
	}
}

// TestJobPrimesResponseCache: a finished job's computation went through
// the shared response cache, so the equivalent synchronous request —
// including the legacy caps_w spelling of the same sweep — replays it
// as a hit with identical bytes.
func TestJobPrimesResponseCache(t *testing.T) {
	srv := testServer()
	view := submitJob(t, srv,
		`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[240]}}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	res := doReq(t, srv, "GET", final.ResultURL, "")

	legacy := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"caps_w":[240]}`)
	if legacy.Code != 200 || legacy.Header().Get("X-Cache") != "hit" {
		t.Fatalf("legacy-spelling sweep after job: status %d, X-Cache %q; want a 200 hit",
			legacy.Code, legacy.Header().Get("X-Cache"))
	}
	if !bytes.Equal(legacy.Body.Bytes(), res.Body.Bytes()) {
		t.Fatal("legacy caps_w spelling returned different bytes than the axis-form job result")
	}
}

// TestJobCampaign: the campaign payload works through the async path
// and matches its synchronous twin.
func TestJobCampaign(t *testing.T) {
	srv := testServer()
	sync := doReq(t, srv, "POST", "/v1/campaign", campaignBody)
	if sync.Code != 200 {
		t.Fatalf("sync campaign: %d: %s", sync.Code, sync.Body.String())
	}
	view := submitJob(t, srv, `{"kind":"campaign","campaign":`+campaignBody+`}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	res := doReq(t, srv, "GET", final.ResultURL, "")
	if !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatal("async campaign result diverged from the synchronous response")
	}
}

// TestJobResultBeforeDone: fetching an unfinished job's result answers
// 409 with a Retry-After hint, not a broken body.
func TestJobResultBeforeDone(t *testing.T) {
	srv := testServer()
	// A multi-second campaign (184 Vortex GPUs × 3650 days) that cannot
	// finish before we probe.
	view := submitJob(t, srv,
		`{"kind":"campaign","campaign":{"cluster":"Vortex","days":3650,"plan":{"overhead_frac":0.05,"bench_seconds":600}}}`)
	rr := doReq(t, srv, "GET", view.URL+"/result", "")
	if rr.Code != http.StatusConflict {
		t.Fatalf("result while %s: status %d, want 409; body %s", view.State, rr.Code, rr.Body.String())
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("409 result response missing Retry-After")
	}
	// Clean up: cancel and wait out the job so it does not leak into
	// other tests' engine-drain assertions.
	doReq(t, srv, "DELETE", view.URL, "")
	pollJob(t, srv, view.URL)
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
}

// TestJobCancelMidRunDrainsEngine cancels a heavy job mid-computation
// over a real HTTP server and asserts the whole stack unwinds: the job
// turns canceled, its result answers 410, and the engine drains to
// zero in-flight jobs.
func TestJobCancelMidRunDrainsEngine(t *testing.T) {
	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A multi-second campaign: progress appears within tens of
	// milliseconds, leaving seconds of runtime for the cancel to land
	// mid-computation.
	body := `{"kind":"campaign","campaign":{"cluster":"Vortex","days":3650,"plan":{"overhead_frac":0.05,"bench_seconds":600}}}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var view jobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}

	// Wait until the job is computing, then cancel it.
	waitFor(t, func() bool {
		s, ok := srv.jobs.Get(view.ID)
		return ok && s.State == jobs.StateRunning && s.ShardsDone > 0
	})
	req, err := http.NewRequest("DELETE", ts.URL+view.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("cancel: %s", resp.Status)
	}

	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", final.State)
	}
	if rr := doReq(t, srv, "GET", view.URL+"/result", ""); rr.Code != http.StatusGone {
		t.Fatalf("result of canceled job: status %d, want 410", rr.Code)
	}
	// The compute stack must fully unwind.
	waitFor(t, func() bool { return srv.CacheStats().InFlight == 0 })
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
	// And nothing about the canceled computation was cached.
	if s := srv.CacheStats(); s.Entries != 0 {
		t.Errorf("canceled job left %d cache entries", s.Entries)
	}
}

// TestJobSummitSweepProgress pins the acceptance scenario end to end
// over a real HTTP server: a Summit-scale variant sweep submitted as a
// job reports advancing per-shard progress while it runs — the
// variants' nested per-GPU jobs grow shards_total well past the
// variant count — and completes with done == total.
func TestJobSummitSweepProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("Summit-scale sweep is too heavy for -short")
	}
	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := `{"kind":"sweep","sweep":{"cluster":"Summit","iterations":6,"runs":2,"axis":"fraction","values":[0.1,0.2,0.3]}}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var view jobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}

	sawPartial := false
	var lastDone, lastTotal int64
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("Summit sweep job did not finish within 60s")
		}
		resp, err := ts.Client().Get(ts.URL + view.URL)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(raw, &view); err != nil {
			t.Fatal(err)
		}
		if view.ShardsDone < lastDone || view.ShardsTotal < lastTotal {
			t.Fatalf("progress went backwards: %d/%d after %d/%d",
				view.ShardsDone, view.ShardsTotal, lastDone, lastTotal)
		}
		lastDone, lastTotal = view.ShardsDone, view.ShardsTotal
		if view.State == jobs.StateRunning && view.ShardsDone > 0 && view.ShardsDone < view.ShardsTotal {
			sawPartial = true
		}
		if view.State.Terminal() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if view.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", view.State, view.Error)
	}
	if !sawPartial {
		t.Error("never observed partial progress while the sweep ran")
	}
	// The two fraction variants fan out nested per-GPU jobs: total must
	// be far beyond the 2 top-level shards, and fully done.
	if view.ShardsTotal <= 2 || view.ShardsDone != view.ShardsTotal {
		t.Fatalf("final progress = %d/%d, want complete with nested shards counted",
			view.ShardsDone, view.ShardsTotal)
	}
	if rr := doReq(t, srv, "GET", view.URL+"/result", ""); rr.Code != 200 {
		t.Fatalf("result: status %d: %s", rr.Code, rr.Body.String())
	}
}

// TestJobDeleteTerminalForgets: DELETE on a finished job frees it, so
// its status and result answer 404 afterwards.
func TestJobDeleteTerminalForgets(t *testing.T) {
	srv := testServer()
	view := submitJob(t, srv,
		`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[230]}}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s)", final.State, final.Error)
	}
	if rr := doReq(t, srv, "DELETE", view.URL, ""); rr.Code != 200 {
		t.Fatalf("delete: status %d", rr.Code)
	}
	if rr := doReq(t, srv, "GET", view.URL, ""); rr.Code != 404 {
		t.Fatalf("status after delete: %d, want 404", rr.Code)
	}
	if rr := doReq(t, srv, "GET", view.URL+"/result", ""); rr.Code != 404 {
		t.Fatalf("result after delete: %d, want 404", rr.Code)
	}
}

// TestJobListAndStats: submitted jobs show up in the listing and the
// stats counters.
func TestJobListAndStats(t *testing.T) {
	srv := testServer()
	view := submitJob(t, srv,
		`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[220]}}`)
	pollJob(t, srv, view.URL)

	rr := doReq(t, srv, "GET", "/v1/jobs", "")
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 1 || listing.Jobs[0].ID != view.ID {
		t.Fatalf("listing = %+v, want the submitted job", listing.Jobs)
	}

	var stats statsResponse
	if err := json.Unmarshal(doReq(t, srv, "GET", "/v1/stats", "").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("job stats = %+v, want 1 submitted, 1 done", stats.Jobs)
	}
}
