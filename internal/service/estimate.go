package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gpuvar/internal/core"
)

// GET/POST /v1/estimate answers a variant sweep analytically: the same
// request schema as /v1/sweep (minus the adaptive knobs), the same
// response schema with every variant marked source: "estimated" and
// carrying the estimator's relative error bound. A cold calibration
// spends a handful of full-simulation anchor runs; after that the
// endpoint is the suite's first microsecond-latency product surface —
// a warm request is a bare response-cache hit, and even a cache miss
// only evaluates the closed form once per value.

// estimateSweepRun is the seam tests use to intercept the estimator
// run, mirroring streamSweepRun.
var estimateSweepRun = core.EstimateSweepCtx

// estimateCacheKey fingerprints a NORMALIZED estimate request. Distinct
// from the sweep key: an estimate's body differs from the same sweep's
// (source/bound fields), so they must never share a cache entry.
func estimateCacheKey(r sweepRequest) string { return fmt.Sprintf("estimate|%+v", r) }

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: %v", err)
		return
	}
	s.serveEstimate(w, r, &req)
}

// handleEstimateGet accepts the sweep query-parameter spelling, so an
// estimate is one curl away: GET /v1/estimate?axis=powercap&values=...
func (s *Server) handleEstimateGet(w http.ResponseWriter, r *http.Request) {
	req, err := sweepRequestFromQuery(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.serveEstimate(w, r, &req)
}

func (s *Server) serveEstimate(w http.ResponseWriter, r *http.Request, req *sweepRequest) {
	legacy := len(req.CapsW) > 0
	key, compute, status, err := estimateComputation(req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	markLegacySweep(w, legacy)
	s.serveCached(w, r, key, compute)
}

// estimateComputation normalizes the request and returns the cache key
// plus the computation — shared by both HTTP spellings and the async
// job path ("kind": "estimate"), so all three serve byte-identical
// bodies from one cache entry.
func estimateComputation(req *sweepRequest) (key string, compute func(ctx context.Context) (*cachedResponse, error), status int, err error) {
	exp, axis, status, err := normalizeEstimate(req)
	if err != nil {
		return "", nil, status, err
	}
	r := *req
	key = estimateCacheKey(r)
	compute = func(ctx context.Context) (*cachedResponse, error) {
		points, err := estimateSweepRun(ctx, exp, axis, r.Values)
		if err != nil {
			return nil, err
		}
		return renderSweep(r, axis, true, points)
	}
	return key, compute, 0, nil
}
