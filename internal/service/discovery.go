package service

import (
	"net/http"
	"strings"

	"gpuvar/internal/dispatch"
)

// The discovery document: GET /v1/ enumerates every route the server
// answers, each with its method, stability class, and — for deprecated
// routes — its successor. The same table registers the mux patterns in
// New, so the served surface and its self-description cannot drift: a
// route exists exactly when the document lists it.
//
// Stability classes:
//
//	stable      the supported API surface
//	deprecated  still served, but carries Deprecation+Link successor
//	            headers and a sunset note in API.md
//	internal    replica-to-replica plumbing; refuses requests that do
//	            not carry the dispatch marker header or that carry an
//	            external client identity (X-API-Key)

// routeDef is one route: the mux registration plus its discovery row.
type routeDef struct {
	method    string
	path      string
	stability string // "stable" | "deprecated" | "internal"
	successor string // deprecated routes name their replacement
	desc      string
	handler   http.HandlerFunc
}

// muxPattern renders the ServeMux pattern. Paths ending in "/" would
// register as subtree matches, so they get the {$} exact-match suffix —
// GET /v1/ must answer only /v1/, not shadow every unrouted /v1/*.
func (rt routeDef) muxPattern() string {
	p := rt.method + " " + rt.path
	if strings.HasSuffix(rt.path, "/") {
		p += "{$}"
	}
	return p
}

// routes is the server's complete surface, in documentation order.
func (s *Server) routes() []routeDef {
	return []routeDef{
		{"GET", "/v1/", "stable", "", "this discovery document", s.handleDiscovery},
		{"GET", "/v1/figures", "stable", "", "catalog of figure/table generators", s.handleFigureList},
		{"GET", "/v1/figures/{id}", "stable", "", "one rendered figure (config via query)", s.handleFigure},
		{"GET", "/v1/experiments/{name}", "stable", "", "one experiment summary (params via query)", s.handleExperiment},
		{"POST", "/v1/campaign", "stable", "", "one campaign simulation (params via body)", s.handleCampaign},
		{"POST", "/v1/sweep", "stable", "", "bounded variant-axis sweep (the caps_w spelling is deprecated: use axis=powercap with values)", s.handleSweep},
		{"GET", "/v1/estimate", "stable", "", "analytical sweep estimate (query spelling)", s.handleEstimateGet},
		{"POST", "/v1/estimate", "stable", "", "analytical sweep estimate (body spelling)", s.handleEstimate},
		{"GET", "/v1/stream/sweep", "stable", "", "sweep streamed as NDJSON, one line per variant", s.handleStreamSweep},
		{"GET", "/v1/stream/experiments/{name}", "stable", "", "experiment streamed as NDJSON, one line per shard", s.handleStreamExperiment},
		{"POST", "/v1/jobs", "stable", "", "async submission of a sweep/estimate/campaign", s.handleJobSubmit},
		{"GET", "/v1/jobs", "stable", "", "list live jobs (paginated, filterable)", s.handleJobList},
		{"GET", "/v1/jobs/{id}", "stable", "", "job state + per-shard progress", s.handleJobStatus},
		{"GET", "/v1/jobs/{id}/result", "stable", "", "finished job's response (replayable)", s.handleJobResult},
		{"GET", "/v1/jobs/{id}/stream", "stable", "", "job's NDJSON stream: replayed prefix + live tail", s.handleJobStream},
		{"DELETE", "/v1/jobs/{id}", "stable", "", "cancel or forget a job", s.handleJobDelete},
		{"GET", "/v1/stats", "stable", "", "cache/engine/job/dispatch counters", s.handleStats},
		{"GET", "/v1/replicas", "stable", "", "replica-dispatch membership, health, and counters", s.handleReplicas},
		{"GET", "/v1/healthz", "stable", "", "liveness + the same counters", s.handleHealthz},
		{"GET", "/healthz", "deprecated", "/v1/healthz", "legacy unversioned liveness path", s.handleHealthz},
		{"GET", "/metrics", "stable", "", "counters in Prometheus text exposition format", s.handleMetrics},
		{"POST", dispatch.ShardsPath, "internal", "", "replica-to-replica shard-batch execution", s.handleInternalShards},
	}
}

// routeInfo is one discovery-document row.
type routeInfo struct {
	Method      string `json:"method"`
	Path        string `json:"path"`
	Stability   string `json:"stability"`
	Successor   string `json:"successor,omitempty"`
	Description string `json:"description"`
}

// discoveryResponse is the GET /v1/ body.
type discoveryResponse struct {
	Service string      `json:"service"`
	API     string      `json:"api_version"`
	Routes  []routeInfo `json:"routes"`
}

func (s *Server) handleDiscovery(w http.ResponseWriter, r *http.Request) {
	out := discoveryResponse{Service: "gpuvard", API: "v1"}
	for _, rt := range s.routes() {
		out.Routes = append(out.Routes, routeInfo{
			Method:      rt.method,
			Path:        rt.path,
			Stability:   rt.stability,
			Successor:   rt.successor,
			Description: rt.desc,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
