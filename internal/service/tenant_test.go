package service

// Tests for the multi-tenant front door: client identity and request
// IDs, per-client fair queuing proven over real HTTP, replayable
// mid-run job streams, /v1/jobs pagination, the /metrics exposition,
// and the /healthz deprecation signal.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"gpuvar/internal/engine"
	"gpuvar/internal/figures"
	"gpuvar/internal/jobs"
)

// doReqH is doReq with request headers — the multi-tenant tests need
// X-API-Key and X-Request-ID on the wire.
func doReqH(t *testing.T, h http.Handler, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

// decodeError unmarshals the JSON error envelope.
func decodeError(t *testing.T, body []byte) errorBody {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", body, err)
	}
	return e
}

// TestRequestID: every response carries X-Request-ID — the client's own
// (echoed) when it sent a reasonable one, a generated one otherwise —
// including error and unknown-route responses.
func TestRequestID(t *testing.T) {
	srv := testServer()

	rr := doReqH(t, srv, "GET", "/v1/figures", "", map[string]string{"X-Request-ID": "req-abc-123"})
	if got := rr.Header().Get("X-Request-ID"); got != "req-abc-123" {
		t.Errorf("echoed request id = %q, want req-abc-123", got)
	}

	rr = doReq(t, srv, "GET", "/v1/figures", "")
	gen := rr.Header().Get("X-Request-ID")
	if gen == "" {
		t.Error("response without a client request id is missing a generated X-Request-ID")
	}

	// Unprintable and oversized ids are replaced, not echoed (header
	// injection and log-poisoning hygiene).
	rr = doReqH(t, srv, "GET", "/v1/figures", "", map[string]string{"X-Request-ID": "bad\x7fid"})
	if got := rr.Header().Get("X-Request-ID"); got == "bad\x7fid" || got == "" {
		t.Errorf("unprintable request id handled as %q, want a generated replacement", got)
	}

	// Error responses carry the id too.
	rr = doReq(t, srv, "GET", "/no/such/route", "")
	if rr.Code != 404 || rr.Header().Get("X-Request-ID") == "" {
		t.Errorf("unknown route: status %d, X-Request-ID %q; want 404 with an id",
			rr.Code, rr.Header().Get("X-Request-ID"))
	}
}

// TestErrorEnvelopeCodes: error responses are the uniform JSON envelope
// with a stable machine-readable code alongside the human message.
func TestErrorEnvelopeCodes(t *testing.T) {
	srv := testServer()
	for _, tt := range []struct {
		method, target, body string
		status               int
		code                 string
	}{
		{"GET", "/no/such/route", "", 404, "unknown_route"},
		{"DELETE", "/v1/figures/tab1", "", 405, "method_not_allowed"},
		{"GET", "/v1/figures/fig99", "", 404, "unknown_figure"},
		{"GET", "/v1/experiments/doom", "", 404, "not_found"},
		{"POST", "/v1/sweep", `{"values":[1],"axis":"warp"}`, 400, "bad_axis"},
		{"POST", "/v1/sweep", `{"bogus":1}`, 400, "bad_request"},
		{"GET", "/v1/jobs/nope", "", 404, "job_not_found"},
		{"GET", "/v1/jobs/nope/stream", "", 404, "job_not_found"},
		{"GET", "/v1/jobs?limit=0", "", 400, "bad_request"},
		{"GET", "/v1/jobs?page_token=%21%21", "", 400, "bad_page_token"},
	} {
		rr := doReq(t, srv, tt.method, tt.target, tt.body)
		if rr.Code != tt.status {
			t.Errorf("%s %s = %d, want %d; body %s", tt.method, tt.target, rr.Code, tt.status, rr.Body.String())
			continue
		}
		if e := decodeError(t, rr.Body.Bytes()); e.Code != tt.code || e.Error == "" {
			t.Errorf("%s %s envelope = %+v, want code %q with a message", tt.method, tt.target, e, tt.code)
		}
	}
}

// TestHealthzDeprecation: the legacy unversioned /healthz carries the
// deprecation headers pointing at its successor; /v1/healthz does not.
func TestHealthzDeprecation(t *testing.T) {
	srv := testServer()
	legacy := doReq(t, srv, "GET", "/healthz", "")
	if legacy.Header().Get("Deprecation") != "true" {
		t.Error("/healthz is missing the Deprecation header")
	}
	if link := legacy.Header().Get("Link"); !strings.Contains(link, "/v1/healthz") {
		t.Errorf("/healthz Link = %q, want the /v1/healthz successor", link)
	}
	v1 := doReq(t, srv, "GET", "/v1/healthz", "")
	if v1.Header().Get("Deprecation") != "" {
		t.Error("/v1/healthz must not be marked deprecated")
	}
	if !bytes.Equal(legacy.Body.Bytes()[:20], v1.Body.Bytes()[:20]) {
		t.Error("legacy and /v1 healthz bodies diverge")
	}
}

// TestServiceFairnessTwoClients is the fairness acceptance test at the
// service layer, over a real HTTP server: a noisy tenant saturates its
// own per-client bound (429 scoped to the CLIENT, naming it), a quiet
// tenant still submits fine, and when capacity frees the quiet tenant's
// job is dispatched ahead of the noisy backlog. Counters account for
// both tenants.
func TestServiceFairnessTwoClients(t *testing.T) {
	gate := make(chan struct{}) // one token releases one job's gated shard
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := mustNew(Options{
		Figures:                figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		MaxRunningJobs:         1,
		MaxQueuedJobs:          8,
		MaxQueuedJobsPerClient: 2,
		ClientWeights:          map[string]int{"quiet": 4},
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	submit := func(apiKey string, seed int) (jobView, *http.Response, []byte) {
		t.Helper()
		// Distinct seeds keep the jobs from coalescing onto one cache
		// flight, so each consumes its own gate token.
		body := fmt.Sprintf(
			`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"seed":%d,"axis":"powercap","values":[300,250]}}`, seed)
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", apiKey)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var view jobView
		if resp.StatusCode == http.StatusAccepted {
			if err := json.Unmarshal(raw, &view); err != nil {
				t.Fatal(err)
			}
		}
		return view, resp, raw
	}

	// Noisy fills its slice: one running (blocked on the gate) plus its
	// full per-client queue allowance.
	var noisy []jobView
	for i := 0; i < 3; i++ {
		view, resp, raw := submit("noisy", 100+i)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("noisy submit %d: %s: %s", i, resp.Status, raw)
		}
		noisy = append(noisy, view)
	}

	// The next noisy submission trips the PER-CLIENT bound: 429, coded
	// and worded for the client scope, with a retry hint.
	_, resp, raw := submit("noisy", 103)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("noisy overflow: %s, want 429; body %s", resp.Status, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("per-client 429 is missing Retry-After")
	}
	e := decodeError(t, raw)
	if e.Code != "client_queue_full" || !strings.Contains(e.Error, "noisy") {
		t.Fatalf("per-client 429 envelope = %+v, want code client_queue_full naming the client", e)
	}

	// The quiet tenant is unaffected: the class queue has headroom and
	// its own per-client queue is empty.
	quiet, resp, raw := submit("quiet", 200)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("quiet submit rejected alongside the noisy tenant: %s: %s", resp.Status, raw)
	}

	// Release exactly one job: noisy's running job finishes, freeing the
	// only slot. Fair scheduling hands it to quiet — one queued job,
	// higher weight, fresh pass — not to noisy's older backlog.
	gate <- struct{}{}
	waitFor(t, func() bool {
		s, ok := srv.jobs.Get(quiet.ID)
		return ok && s.State != jobs.StateQueued
	})
	for _, v := range noisy[1:] {
		if s, ok := srv.jobs.Get(v.ID); !ok || s.State != jobs.StateQueued {
			t.Fatalf("noisy job %s left the queue before the quiet tenant's job was served", v.ID)
		}
	}

	// The per-client filter sees each tenant's own jobs.
	rr := doReq(t, srv, "GET", "/v1/jobs?client=noisy", "")
	var listing jobListResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Jobs) != 3 {
		t.Errorf("client=noisy listing has %d jobs, want 3", len(listing.Jobs))
	}

	// Drain everything and check the per-client accounting.
	close(gate)
	for _, v := range append(noisy, quiet) {
		pollJob(t, srv, v.URL)
	}
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })

	stats := srv.jobs.Stats()
	if stats.Shed != 1 || stats.ShedClient != 1 {
		t.Errorf("shed counters = %d/%d (total/client), want 1/1", stats.Shed, stats.ShedClient)
	}
	byClient := map[string]jobs.ClientStats{}
	for _, c := range stats.Clients {
		byClient[c.Client] = c
	}
	if c := byClient["noisy"]; c.Served != 3 || c.Shed != 1 || c.Queued != 0 {
		t.Errorf("noisy stats = %+v, want 3 served, 1 shed, empty queue", c)
	}
	if c := byClient["quiet"]; c.Served != 1 || c.Shed != 0 || c.Weight != 4 {
		t.Errorf("quiet stats = %+v, want 1 served, 0 shed, weight 4", c)
	}
}

// TestServiceClassQueueStillSheds: the class-wide bound keeps its own
// 429 scope — a tenant with an empty per-client queue is still refused
// when the whole batch queue is full, and the envelope says so.
func TestServiceClassQueueStillSheds(t *testing.T) {
	gate := make(chan struct{})
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := mustNew(Options{
		Figures:        figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		MaxRunningJobs: 1,
		MaxQueuedJobs:  1,
	})
	body := func(seed int) string {
		return fmt.Sprintf(`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"seed":%d,"values":[300,250]}}`, seed)
	}
	a1 := submitJob(t, srv, body(1)) // runs, blocked on the gate
	a2 := submitJob(t, srv, body(2)) // fills the one-slot class queue

	rr := doReqH(t, srv, "POST", "/v1/jobs", body(3), map[string]string{"X-API-Key": "someone-else"})
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("class overflow: %d, want 429; body %s", rr.Code, rr.Body.String())
	}
	if e := decodeError(t, rr.Body.Bytes()); e.Code != "queue_full" {
		t.Fatalf("class 429 envelope = %+v, want code queue_full (class scope)", e)
	}

	close(gate)
	pollJob(t, srv, a1.URL)
	pollJob(t, srv, a2.URL)
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
}

// TestJobStreamMidRunAttach is the replayable-stream acceptance test:
// attach to a running job's stream over real HTTP while a gated shard
// holds it mid-run, observe the replayed prefix (start + shard 0), let
// the job finish, and verify the concatenated payloads are
// byte-identical to the synchronous POST /v1/sweep body. A second
// attach after completion replays the identical stream.
func TestJobStreamMidRunAttach(t *testing.T) {
	gate := make(chan struct{})
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const sweepBody = `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[300,250,200]}`
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sweep","sweep":`+sweepBody+`}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, raw)
	}
	var view jobView
	if err := json.Unmarshal(raw, &view); err != nil {
		t.Fatal(err)
	}
	if view.StreamURL != view.URL+"/stream" {
		t.Fatalf("stream_url = %q, want %q", view.StreamURL, view.URL+"/stream")
	}

	// Attach mid-run: shard 0 computes freely, shards 1 and 2 are gated,
	// so the job cannot be terminal while we read the prefix.
	stream, err := ts.Client().Get(ts.URL + view.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != 200 {
		t.Fatalf("stream attach: %d", stream.StatusCode)
	}
	if ct := stream.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	var streamBuf bytes.Buffer
	br := bufio.NewReader(io.TeeReader(stream.Body, &streamBuf))
	readLine := func() streamLine {
		t.Helper()
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading stream line: %v", err)
		}
		var l streamLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("decoding %q: %v", raw, err)
		}
		return l
	}
	if l := readLine(); l.Kind != "start" || l.Shards != 3 || l.Payload == "" {
		t.Fatalf("first line = %+v, want the start line carrying the body prefix", l)
	}
	if l := readLine(); l.Kind != "shard" || l.Shard != 0 || l.Payload == "" {
		t.Fatalf("second line = %+v, want shard 0's chunk", l)
	}
	if snap, ok := srv.jobs.Get(view.ID); !ok || snap.State.Terminal() {
		t.Fatal("job already terminal while its later shards are gated — the attach was not mid-run")
	}

	// Let the job finish and drain the live tail.
	close(gate)
	if _, err := io.Copy(io.Discard, br); err != nil {
		t.Fatal(err)
	}
	lines, payload := decodeStream(t, streamBuf.Bytes())
	if got := len(lines) - 2; got != 3 {
		t.Fatalf("stream has %d shard lines, want 3", got)
	}

	// Byte identity: the reassembled payload equals the synchronous body
	// for the same request, computed cold on a separate server.
	sync := doReq(t, testServer(), "POST", "/v1/sweep", sweepBody)
	if sync.Code != 200 {
		t.Fatalf("sync sweep: %d: %s", sync.Code, sync.Body.String())
	}
	if !bytes.Equal(payload, sync.Body.Bytes()) {
		t.Fatalf("mid-run attached stream payload diverges from the synchronous body:\nstream: %q\nsync:   %q",
			payload, sync.Body.Bytes())
	}

	// And the job's own result replays the same bytes.
	final := pollJob(t, srv, view.URL)
	res := doReq(t, srv, "GET", final.ResultURL, "")
	if !bytes.Equal(payload, res.Body.Bytes()) {
		t.Fatal("stream payload diverges from the job result body")
	}

	// A late attach — after completion — replays the whole identical
	// stream from the log.
	replay := doReq(t, srv, "GET", view.StreamURL, "")
	if replay.Code != 200 {
		t.Fatalf("replay attach: %d", replay.Code)
	}
	if !bytes.Equal(replay.Body.Bytes(), streamBuf.Bytes()) {
		t.Fatal("post-completion replay is not byte-identical to the mid-run attached stream")
	}
}

// TestJobStreamCanceled: a canceled job's stream terminates with an
// in-band error line, like the synchronous streaming endpoints.
func TestJobStreamCanceled(t *testing.T) {
	gate := make(chan struct{}) // never released; only cancel ends the job
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := testServer()
	view := submitJob(t, srv, `{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[300,250]}}`)
	waitFor(t, func() bool {
		s, ok := srv.jobs.Get(view.ID)
		return ok && s.State == jobs.StateRunning
	})
	doReq(t, srv, "DELETE", view.URL, "")
	pollJob(t, srv, view.URL)

	rr := doReq(t, srv, "GET", view.StreamURL, "")
	if rr.Code != 200 {
		t.Fatalf("stream of canceled job: %d", rr.Code)
	}
	lines, _ := decodeStream(t, rr.Body.Bytes())
	last := lines[len(lines)-1]
	if last.Kind != "error" || !strings.Contains(last.Error, "canceled") {
		t.Fatalf("terminal line = %+v, want an in-band cancel error", last)
	}
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })
}

// TestJobListPagination: limit/page_token walk the listing in stable
// creation order without duplicates or gaps, filters compose, and the
// unpaginated listing is unchanged.
func TestJobListPagination(t *testing.T) {
	srv := testServer()
	var ids []string
	for i := 0; i < 5; i++ {
		key := "alpha"
		if i >= 3 {
			key = "beta"
		}
		rr := doReqH(t, srv, "POST", "/v1/jobs",
			fmt.Sprintf(`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[%d]}}`, 200+i),
			map[string]string{"X-API-Key": key})
		if rr.Code != http.StatusAccepted {
			t.Fatalf("submit %d: %d: %s", i, rr.Code, rr.Body.String())
		}
		var view jobView
		if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
			t.Fatal(err)
		}
		pollJob(t, srv, view.URL)
		ids = append(ids, view.ID)
	}

	list := func(target string) jobListResponse {
		t.Helper()
		rr := doReq(t, srv, "GET", target, "")
		if rr.Code != 200 {
			t.Fatalf("GET %s: %d: %s", target, rr.Code, rr.Body.String())
		}
		var out jobListResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Unpaginated: all five, creation order, no token.
	full := list("/v1/jobs")
	if len(full.Jobs) != 5 || full.NextPageToken != "" {
		t.Fatalf("unpaginated listing = %d jobs, token %q; want 5 and none", len(full.Jobs), full.NextPageToken)
	}
	for i, v := range full.Jobs {
		if v.ID != ids[i] {
			t.Fatalf("listing order diverges from creation order at %d: %s != %s", i, v.ID, ids[i])
		}
	}

	// Paginated walk: 2 + 2 + 1, concatenating to the full listing.
	var walked []string
	token := ""
	pages := 0
	for {
		target := "/v1/jobs?limit=2"
		if token != "" {
			target += "&page_token=" + token
		}
		page := list(target)
		if len(page.Jobs) > 2 {
			t.Fatalf("page has %d jobs, limit was 2", len(page.Jobs))
		}
		for _, v := range page.Jobs {
			walked = append(walked, v.ID)
		}
		pages++
		if page.NextPageToken == "" {
			break
		}
		token = page.NextPageToken
	}
	if pages != 3 || strings.Join(walked, ",") != strings.Join(ids, ",") {
		t.Fatalf("paginated walk = %d pages %v, want 3 pages reproducing %v", pages, walked, ids)
	}

	// Filters: per-client and per-state, composable with limit.
	if got := list("/v1/jobs?client=alpha"); len(got.Jobs) != 3 {
		t.Errorf("client=alpha listing has %d jobs, want 3", len(got.Jobs))
	}
	if got := list("/v1/jobs?state=done"); len(got.Jobs) != 5 {
		t.Errorf("state=done listing has %d jobs, want 5", len(got.Jobs))
	}
	if got := list("/v1/jobs?state=queued"); len(got.Jobs) != 0 {
		t.Errorf("state=queued listing has %d jobs, want 0", len(got.Jobs))
	}
	page := list("/v1/jobs?client=beta&limit=1")
	if len(page.Jobs) != 1 || page.NextPageToken == "" {
		t.Fatalf("client=beta&limit=1 = %d jobs, token %q; want 1 and a token", len(page.Jobs), page.NextPageToken)
	}
	rest := list("/v1/jobs?client=beta&limit=1&page_token=" + page.NextPageToken)
	if len(rest.Jobs) != 1 || rest.Jobs[0].ID == page.Jobs[0].ID {
		t.Fatalf("second beta page = %+v, want the other beta job", rest.Jobs)
	}

	// Malformed knobs fail loudly.
	for _, target := range []string{
		"/v1/jobs?limit=-3",
		"/v1/jobs?limit=x",
		"/v1/jobs?state=pending",
		"/v1/jobs?sort=asc",
		"/v1/jobs?page_token=@@@",
	} {
		if rr := doReq(t, srv, "GET", target, ""); rr.Code != 400 {
			t.Errorf("GET %s = %d, want 400", target, rr.Code)
		}
	}
}

// promSampleRe matches one exposition-format sample line.
var promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)

// TestMetricsExposition lints GET /metrics against the Prometheus text
// format: every sample belongs to a family announced by HELP and TYPE
// lines, counter families end in _total, and the multi-tenant series
// (per-client, per-class) are present after a job runs.
func TestMetricsExposition(t *testing.T) {
	srv := testServer()
	rr := doReqH(t, srv, "POST", "/v1/jobs",
		`{"kind":"sweep","sweep":{"cluster":"CloudLab","iterations":2,"values":[240]}}`,
		map[string]string{"X-API-Key": "tenant-a"})
	if rr.Code != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", rr.Code, rr.Body.String())
	}
	var view jobView
	if err := json.Unmarshal(rr.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	pollJob(t, srv, view.URL)

	metrics := doReq(t, srv, "GET", "/metrics", "")
	if metrics.Code != 200 {
		t.Fatalf("/metrics: %d", metrics.Code)
	}
	if ct := metrics.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}

	types := map[string]string{} // family -> counter|gauge
	helped := map[string]bool{}
	samples := map[string]float64{}
	for i, line := range strings.Split(strings.TrimRight(metrics.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("line %d: HELP without text: %q", i+1, line)
			}
			helped[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge") {
				t.Fatalf("line %d: bad TYPE line %q", i+1, line)
			}
			if !helped[f[2]] {
				t.Fatalf("line %d: TYPE for %s precedes its HELP", i+1, f[2])
			}
			types[f[2]] = f[3]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d is not a valid sample: %q", i+1, line)
		}
		name := m[1]
		if !strings.HasPrefix(name, "gpuvar_") {
			t.Fatalf("line %d: family %s lacks the gpuvar_ prefix", i+1, name)
		}
		typ, ok := types[name]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", i+1, name)
		}
		if strings.HasSuffix(name, "_total") != (typ == "counter") {
			t.Fatalf("line %d: family %s is a %s (counters and only counters end in _total)", i+1, name, typ)
		}
		samples[m[1]+m[2]] = 1
	}
	for _, want := range []string{
		`gpuvar_uptime_seconds`,
		`gpuvar_jobs_total{event="submitted"}`,
		`gpuvar_jobs_total{event="done"}`,
		`gpuvar_jobs_shed_total{scope="client"}`,
		`gpuvar_jobs_queued{class="batch"}`,
		`gpuvar_engine_budget_tokens{kind="capacity"}`,
		`gpuvar_client_served_total{client="tenant-a"}`,
		`gpuvar_client_weight{client="tenant-a"}`,
		`gpuvar_response_cache_events_total{kind="miss"}`,
		`gpuvar_fleet_cache_events_total{kind="hit"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("/metrics is missing the %s series", want)
		}
	}
}
