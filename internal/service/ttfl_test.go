package service

import (
	"net/http/httptest"
	"testing"
	"time"

	"gpuvar/internal/loadgen"
)

// TestStreamFetchTTFLAccounting pins the time-to-first-line metric the
// replay reports: over a real HTTP server whose shards past the first
// are gated, the loadgen stream reader must observe a TTFL far ahead of
// the stream's total duration — proving TTFL measures first-line
// arrival, not completion.
func TestStreamFetchTTFLAccounting(t *testing.T) {
	gate := make(chan struct{})
	restore := gatedSweepRun(t, gate)
	defer restore()

	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const hold = 300 * time.Millisecond
	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(hold)
		close(gate)
	}()

	c := &loadgen.Client{HTTP: ts.Client()}
	res, err := c.StreamFetch(ts.URL+"/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=300,250,200", "")
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if res.Lines < 5 { // start + 3 shards + summary
		t.Fatalf("stream had %d lines, want at least 5", res.Lines)
	}
	// The gate held shards 1..2 for `hold`, so the stream's total is at
	// least that long — but the first line (and shard 0) flushed
	// immediately. Allow generous slack for scheduler noise while still
	// distinguishing "first line" from "completion".
	if res.Total < hold {
		t.Fatalf("total %v is shorter than the %v gate hold — the harness did not gate", res.Total, hold)
	}
	if res.TTFL >= hold/2 {
		t.Errorf("TTFL %v is not well ahead of the gated total %v — TTFL must measure first-line arrival, not completion", res.TTFL, res.Total)
	}
}
