package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"gpuvar/internal/figures"
)

// testServer returns a server with cheap settings: tiny iteration
// counts and minimal Summit coverage keep every handler affordable in
// unit tests while exercising the full pipeline.
func testServer() *Server {
	return mustNew(Options{
		Figures: figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
	})
}

// mustNew wraps New for tests whose options cannot fail (no data dir).
func mustNew(opts Options) *Server {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// campaignBody is a small, fast campaign request (CloudLab has 6 nodes).
const campaignBody = `{"cluster":"CloudLab","days":3,"plan":{"overhead_frac":0.05,"bench_seconds":600},"injection":{"day":1,"node_id":"cl0-n01","kind":"power-brake"}}`

func doReq(t *testing.T, h http.Handler, method, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr
}

func TestRoutes(t *testing.T) {
	srv := testServer()
	tests := []struct {
		name       string
		method     string
		target     string
		body       string
		wantStatus int
		wantIn     string // substring the response body must contain
	}{
		{"figure list", "GET", "/v1/figures", "", 200, `"tab1"`},
		{"figure list wrong method", "POST", "/v1/figures", "", 405, ""},
		{"figure ok", "GET", "/v1/figures/tab1", "", 200, "Table I"},
		{"figure with config", "GET", "/v1/figures/tab2?seed=7", "", 200, "Table II"},
		{"figure unknown id", "GET", "/v1/figures/fig99", "", 404, "unknown figure id"},
		{"figure bad seed", "GET", "/v1/figures/tab1?seed=x", "", 400, "bad seed"},
		{"figure bad fraction", "GET", "/v1/figures/tab1?summit_fraction=2", "", 400, "summit_fraction"},
		{"figure wrong method", "DELETE", "/v1/figures/tab1", "", 405, ""},
		{"experiment ok", "GET", "/v1/experiments/sgemm?cluster=CloudLab&iterations=2", "", 200, `"summary"`},
		{"experiment groups", "GET", "/v1/experiments/sgemm?cluster=CloudLab&iterations=2&detail=groups", "", 200, `"groups"`},
		{"experiment gpus", "GET", "/v1/experiments/sgemm?cluster=CloudLab&iterations=2&detail=gpus", "", 200, `"gpu_id"`},
		{"experiment unknown workload", "GET", "/v1/experiments/doom", "", 404, "unknown workload"},
		{"experiment unknown cluster", "GET", "/v1/experiments/sgemm?cluster=Atlantis", "", 404, "unknown cluster"},
		{"experiment bad fraction", "GET", "/v1/experiments/sgemm?cluster=CloudLab&fraction=0", "", 400, "bad fraction"},
		{"experiment bad runs", "GET", "/v1/experiments/sgemm?cluster=CloudLab&runs=-1", "", 400, "bad runs"},
		{"experiment bad detail", "GET", "/v1/experiments/sgemm?cluster=CloudLab&detail=everything", "", 400, "bad detail"},
		{"experiment wrong method", "POST", "/v1/experiments/sgemm", "", 405, ""},
		{"campaign ok", "POST", "/v1/campaign", campaignBody, 200, `"detection_day"`},
		{"campaign defaults", "POST", "/v1/campaign", `{"cluster":"CloudLab","days":2}`, 200, `"coverage_period_days"`},
		{"campaign bad json", "POST", "/v1/campaign", `{"cluster":`, 400, "decoding body"},
		{"campaign unknown field", "POST", "/v1/campaign", `{"clutser":"CloudLab"}`, 400, "decoding body"},
		{"campaign unknown cluster", "POST", "/v1/campaign", `{"cluster":"Atlantis"}`, 404, "unknown cluster"},
		{"campaign unknown kind", "POST", "/v1/campaign", `{"cluster":"CloudLab","days":2,"injection":{"kind":"rust"}}`, 400, "unknown defect kind"},
		{"campaign unknown node", "POST", "/v1/campaign", `{"cluster":"CloudLab","days":2,"injection":{"day":1,"node_id":"nope-n99","kind":"stall"}}`, 400, "unknown injection node"},
		{"campaign wrong method", "GET", "/v1/campaign", "", 405, ""},
		{"sweep ok", "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"caps_w":[300,200]}`, 200, `"variants"`},
		{"sweep defaults", "POST", "/v1/sweep", `{"caps_w":[250]}`, 200, `"value"`},
		{"sweep missing values", "POST", "/v1/sweep", `{"cluster":"CloudLab"}`, 400, "values is required"},
		{"sweep too many values", "POST", "/v1/sweep", `{"caps_w":[` + strings.Repeat("100,", 33) + `100]}`, 400, "max 32"},
		{"sweep negative cap", "POST", "/v1/sweep", `{"caps_w":[-5]}`, 400, "bad powercap"},
		{"sweep unknown cluster", "POST", "/v1/sweep", `{"cluster":"Atlantis","caps_w":[250]}`, 404, "unknown cluster"},
		{"sweep unknown workload", "POST", "/v1/sweep", `{"workload":"doom","caps_w":[250]}`, 404, "unknown workload"},
		{"sweep bad json", "POST", "/v1/sweep", `{"caps_w":`, 400, "decoding body"},
		{"sweep wrong method", "GET", "/v1/sweep", "", 405, ""},
		{"sweep axis seed", "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"seed","values":[7,8]}`, 200, `"variants"`},
		{"sweep axis ambient", "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"ambient","values":[-2,0,2]}`, 200, `"variants"`},
		{"sweep axis fraction", "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"fraction","values":[0.5,1]}`, 200, `"variants"`},
		{"sweep unknown axis", "POST", "/v1/sweep", `{"axis":"voltage","values":[1]}`, 400, "unknown sweep axis"},
		{"sweep fractional seed", "POST", "/v1/sweep", `{"axis":"seed","values":[1.5]}`, 400, "bad seed"},
		{"sweep bad fraction value", "POST", "/v1/sweep", `{"axis":"fraction","values":[2]}`, 400, "bad fraction"},
		{"sweep bad ambient value", "POST", "/v1/sweep", `{"axis":"ambient","values":[40]}`, 400, "bad ambient"},
		{"sweep caps_w with other axis", "POST", "/v1/sweep", `{"axis":"seed","caps_w":[250]}`, 400, "legacy spelling"},
		{"sweep caps_w and values", "POST", "/v1/sweep", `{"caps_w":[250],"values":[250]}`, 400, "not both"},
		{"jobs bad kind", "POST", "/v1/jobs", `{"kind":"mine-bitcoin"}`, 400, "bad kind"},
		{"jobs missing payload", "POST", "/v1/jobs", `{"kind":"sweep"}`, 400, `payload (the POST /v1/sweep body)`},
		{"jobs invalid payload", "POST", "/v1/jobs", `{"kind":"sweep","sweep":{"cluster":"Atlantis","values":[1]}}`, 404, "unknown cluster"},
		{"jobs bad json", "POST", "/v1/jobs", `{"kind":`, 400, "decoding body"},
		{"jobs unknown id", "GET", "/v1/jobs/nope", "", 404, "unknown job"},
		{"jobs unknown result", "GET", "/v1/jobs/nope/result", "", 404, "unknown job"},
		{"jobs unknown delete", "DELETE", "/v1/jobs/nope", "", 404, "unknown job"},
		{"jobs list", "GET", "/v1/jobs", "", 200, `"jobs"`},
		{"stats job counters", "GET", "/v1/stats", "", 200, `"jobs"`},
		{"health fleet cache", "GET", "/v1/healthz", "", 200, `"admission_skips"`},
		{"stats", "GET", "/v1/stats", "", 200, `"cache"`},
		{"stats engine counters", "GET", "/v1/stats", "", 200, `"in_flight_jobs"`},
		{"health", "GET", "/healthz", "", 200, `"ok"`},
		{"health v1", "GET", "/v1/healthz", "", 200, `"in_flight_jobs"`},
		{"unknown route", "GET", "/v1/nope", "", 404, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rr := doReq(t, srv, tt.method, tt.target, tt.body)
			if rr.Code != tt.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s", rr.Code, tt.wantStatus, rr.Body.String())
			}
			if tt.wantIn != "" && !strings.Contains(rr.Body.String(), tt.wantIn) {
				t.Errorf("body does not contain %q:\n%s", tt.wantIn, rr.Body.String())
			}
		})
	}
}

// TestSweepLegacyCapWField pins the pre-generalization response schema:
// powercap sweeps still carry cap_w per variant (old clients parse it),
// other axes do not.
func TestSweepLegacyCapWField(t *testing.T) {
	srv := testServer()
	pc := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"caps_w":[250]}`)
	if pc.Code != 200 || !strings.Contains(pc.Body.String(), `"cap_w": 250`) {
		t.Fatalf("powercap sweep lost the legacy cap_w field: %d %s", pc.Code, pc.Body.String())
	}
	fr := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"fraction","values":[1]}`)
	if fr.Code != 200 || strings.Contains(fr.Body.String(), `"cap_w"`) {
		t.Fatalf("non-powercap sweep emitted cap_w: %d %s", fr.Code, fr.Body.String())
	}
}

// TestCacheHitMissAndByteIdentity pins the caching contract: the first
// request computes (X-Cache: miss), the repeat replays (X-Cache: hit),
// and the bodies are byte-identical. A config change misses again.
func TestCacheHitMissAndByteIdentity(t *testing.T) {
	srv := testServer()
	const target = "/v1/experiments/sgemm?cluster=CloudLab&iterations=2&runs=2"

	first := doReq(t, srv, "GET", target, "")
	if first.Code != 200 || first.Header().Get("X-Cache") != "miss" {
		t.Fatalf("first request: status %d, X-Cache %q; want 200 miss", first.Code, first.Header().Get("X-Cache"))
	}
	second := doReq(t, srv, "GET", target, "")
	if second.Code != 200 || second.Header().Get("X-Cache") != "hit" {
		t.Fatalf("second request: status %d, X-Cache %q; want 200 hit", second.Code, second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cache hit returned different bytes than the original computation")
	}
	third := doReq(t, srv, "GET", target+"&seed=7", "")
	if third.Code != 200 || third.Header().Get("X-Cache") != "miss" {
		t.Fatalf("changed-config request: status %d, X-Cache %q; want 200 miss", third.Code, third.Header().Get("X-Cache"))
	}
	if bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
		t.Fatal("different seed produced identical measurements — fingerprint too coarse")
	}

	s := srv.CacheStats()
	if s.Misses != 2 || s.Hits != 1 {
		t.Errorf("stats = %+v, want 2 misses and 1 hit", s)
	}
}

// TestCampaignFingerprintNormalization: two spellings of the same
// campaign (explicit defaults vs omitted) must share one cache entry.
func TestCampaignFingerprintNormalization(t *testing.T) {
	srv := testServer()
	explicit := `{"cluster":"CloudLab","seed":2022,"days":2,"plan":{"overhead_frac":0.02,"bench_seconds":600,"day_seconds":86400},"monitor":{"alpha":0.3,"drift_frac":0.05,"confirmations":1}}`
	omitted := `{"cluster":"CloudLab","days":2}`

	first := doReq(t, srv, "POST", "/v1/campaign", explicit)
	if first.Code != 200 {
		t.Fatalf("explicit: status %d: %s", first.Code, first.Body.String())
	}
	second := doReq(t, srv, "POST", "/v1/campaign", omitted)
	if second.Code != 200 {
		t.Fatalf("omitted: status %d: %s", second.Code, second.Body.String())
	}
	if second.Header().Get("X-Cache") != "hit" {
		t.Errorf("equivalent campaign request did not hit the cache (X-Cache %q)", second.Header().Get("X-Cache"))
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Error("equivalent campaign spellings returned different bytes")
	}
}

// TestCoalescing launches a wave of identical concurrent requests and
// asserts the singleflight contract: exactly one computation, identical
// bytes for every waiter, and every non-leader either coalesced onto
// the in-flight call or hit the stored result.
func TestCoalescing(t *testing.T) {
	srv := testServer()
	const workers = 16
	const target = "/v1/experiments/sgemm?cluster=CloudLab&iterations=2&runs=3"

	bodies := make([][]byte, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rr := doReq(t, srv, "GET", target, "")
			if rr.Code != 200 {
				t.Errorf("worker %d: status %d: %s", i, rr.Code, rr.Body.String())
				return
			}
			bodies[i] = rr.Body.Bytes()
		}(i)
	}
	wg.Wait()

	for i := 1; i < workers; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("worker %d received different bytes than worker 0", i)
		}
	}
	s := srv.CacheStats()
	if s.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 computation for %d identical requests", s.Misses, workers)
	}
	if s.Hits+s.Coalesced != workers-1 {
		t.Errorf("hits (%d) + coalesced (%d) = %d, want %d", s.Hits, s.Coalesced, s.Hits+s.Coalesced, workers-1)
	}
}

// TestConcurrentCatalog drives a representative slice of the catalog —
// figures, experiments, campaigns, stats — through the server from many
// goroutines at once. Its real assertion is go test -race: it proves the
// whole stack (response cache, session pool, figures singleflight, fleet
// cache, per-job devices) is data-race-free under concurrent traffic.
func TestConcurrentCatalog(t *testing.T) {
	srv := testServer()
	paths := []string{
		"/v1/figures",
		"/v1/figures/tab1",
		"/v1/figures/tab2",
		"/v1/figures/fig2",
		"/v1/figures/fig3", // shares fig2's experiment through the session singleflight
		"/v1/experiments/sgemm?cluster=CloudLab&iterations=2",
		"/v1/experiments/sgemm?cluster=CloudLab&iterations=2&detail=gpus",
		"/v1/stats",
	}
	const rounds = 3
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, p := range paths {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				rr := doReq(t, srv, "GET", p, "")
				if rr.Code != 200 {
					t.Errorf("GET %s: status %d: %s", p, rr.Code, rr.Body.String())
				}
			}(p)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := doReq(t, srv, "POST", "/v1/campaign", campaignBody)
			if rr.Code != 200 {
				t.Errorf("POST /v1/campaign: status %d: %s", rr.Code, rr.Body.String())
			}
		}()
	}
	wg.Wait()
}

// TestStatsEndpoint sanity-checks the observability schema.
func TestStatsEndpoint(t *testing.T) {
	srv := testServer()
	doReq(t, srv, "GET", "/v1/figures/tab1", "")
	doReq(t, srv, "GET", "/v1/figures/tab1", "")
	rr := doReq(t, srv, "GET", "/v1/stats", "")
	var got statsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("stats unmarshal: %v", err)
	}
	if got.Cache.Misses != 1 || got.Cache.Hits != 1 || got.Sessions != 1 {
		t.Errorf("stats = %+v, want 1 miss, 1 hit, 1 session", got)
	}
}

// TestResultCacheLRU pins the eviction policy: capacity 2, three keys,
// the least recently used entry is evicted and recomputed on return.
func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	var mu sync.Mutex
	computes := map[string]int{}
	get := func(key string) {
		t.Helper()
		res, _, err := c.do(context.Background(), key, func(context.Context) (*cachedResponse, error) {
			mu.Lock()
			computes[key]++
			mu.Unlock()
			return &cachedResponse{status: 200, body: []byte(key)}, nil
		})
		if err != nil || string(res.body) != key {
			t.Fatalf("do(%q) = %q, %v", key, res.body, err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a; b is now LRU
	get("c") // evicts b
	get("a") // still cached
	get("b") // recomputed
	if computes["a"] != 1 || computes["b"] != 2 || computes["c"] != 1 {
		t.Errorf("computes = %v, want a:1 b:2 c:1", computes)
	}
	s := c.Stats()
	if s.Evictions != 2 {
		t.Errorf("evictions = %d, want 2 (b then a or c)", s.Evictions)
	}
}

// TestResultCacheErrorNotCached: failed computations must be retried,
// not replayed.
func TestResultCacheErrorNotCached(t *testing.T) {
	c := newResultCache(4)
	var calls atomic.Int64
	fail := func(context.Context) (*cachedResponse, error) {
		return nil, fmt.Errorf("boom %d", calls.Add(1))
	}
	if _, _, err := c.do(context.Background(), "k", fail); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := c.do(context.Background(), "k", fail); err == nil || !strings.Contains(err.Error(), "boom 2") {
		t.Fatalf("second call err = %v, want fresh boom 2", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (errors not cached)", calls.Load())
	}
}
