package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"testing"

	"gpuvar/internal/figures"
	"gpuvar/internal/traffic"
)

// TestRecordTraceCapturesReplayableTraffic drives a recording server
// through every surface class and checks the trace on disk: replayable
// requests land as records whose oracle hashes match the bytes the
// client actually received, observability requests are counted but not
// recorded, and the file decodes cleanly (no torn tail on a graceful
// close).
func TestRecordTraceCapturesReplayableTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.trace")
	srv, err := New(Options{
		Figures:     figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		RecordTrace: path,
	})
	if err != nil {
		t.Fatal(err)
	}

	fig := doReq(t, srv, "GET", "/v1/figures/fig2", "")
	if fig.Code != 200 {
		t.Fatalf("figure: status %d: %s", fig.Code, fig.Body)
	}
	sweep := doReq(t, srv, "POST", "/v1/sweep", `{"axis":"seed","values":[1,2]}`)
	if sweep.Code != 200 {
		t.Fatalf("sweep: status %d: %s", sweep.Code, sweep.Body)
	}
	if rr := doReq(t, srv, "GET", "/v1/stats", ""); rr.Code != 200 {
		t.Fatalf("stats: status %d", rr.Code)
	} else {
		var got statsResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
			t.Fatal(err)
		}
		if got.Traffic == nil || got.Traffic.Recorded != 2 || got.Traffic.Skipped < 1 {
			t.Errorf("stats traffic snapshot = %+v, want 2 recorded and the stats call itself skipped", got.Traffic)
		}
	}
	// An unknown route is skipped too — nothing to replay.
	doReq(t, srv, "GET", "/v1/nope", "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	tr, stats, err := traffic.DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedRecords != 0 || stats.TruncatedBytes != 0 {
		t.Errorf("graceful close left a torn tail: %+v", stats)
	}
	if tr.Header.Source != "recorded" {
		t.Errorf("header source = %q, want recorded", tr.Header.Source)
	}
	if len(tr.Records) != 2 {
		t.Fatalf("trace has %d records, want 2: %+v", len(tr.Records), tr.Records)
	}
	figSum := sha256.Sum256(fig.Body.Bytes())
	sweepSum := sha256.Sum256(sweep.Body.Bytes())
	wants := []struct {
		kind, path, sha string
		status          int
	}{
		{traffic.KindFigures, "/v1/figures/fig2", hex.EncodeToString(figSum[:]), 200},
		{traffic.KindSweep, "/v1/sweep", hex.EncodeToString(sweepSum[:]), 200},
	}
	for i, want := range wants {
		rec := tr.Records[i]
		if rec.Kind != want.kind || rec.Path != want.path || rec.Status != want.status || rec.SHA256 != want.sha {
			t.Errorf("record %d = %+v, want kind %s path %s status %d sha %s", i, rec, want.kind, want.path, want.status, want.sha)
		}
		if rec.FP != traffic.Fingerprint(rec.Method, rec.Path, rec.Body) {
			t.Errorf("record %d fingerprint does not match its own fields", i)
		}
		if rec.OffsetUS < 0 {
			t.Errorf("record %d offset %d < 0", i, rec.OffsetUS)
		}
	}
	if tr.Records[1].Body != `{"axis":"seed","values":[1,2]}` {
		t.Errorf("sweep body = %q", tr.Records[1].Body)
	}
}

// TestRecordTraceJobsOmitOracle checks the async-submission special
// case: the 202 body carries a random job ID, so the record keeps the
// status but not a body hash — the replayer drives the job lifecycle
// and hashes the result instead.
func TestRecordTraceJobsOmitOracle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.trace")
	srv, err := New(Options{
		Figures:     figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		RecordTrace: path,
	})
	if err != nil {
		t.Fatal(err)
	}
	rr := doReq(t, srv, "POST", "/v1/jobs", `{"kind":"sweep","sweep":{"axis":"seed","values":[1]}}`)
	if rr.Code != 202 {
		t.Fatalf("job submit: status %d: %s", rr.Code, rr.Body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &sub); err != nil || sub.ID == "" {
		t.Fatalf("job submit body = %s (err %v)", rr.Body, err)
	}
	// Poll requests embed the random ID; they must not be recorded.
	doReq(t, srv, "GET", "/v1/jobs/"+sub.ID, "")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	tr, _, err := traffic.DecodeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Records) != 1 {
		t.Fatalf("trace has %d records, want just the submission: %+v", len(tr.Records), tr.Records)
	}
	rec := tr.Records[0]
	if rec.Kind != traffic.KindJobs || rec.Status != 202 || rec.SHA256 != "" {
		t.Errorf("job record = %+v, want kind jobs, status 202, empty sha256", rec)
	}
}
