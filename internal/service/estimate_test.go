package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"gpuvar/internal/jobs"
)

// estimateValuesCSV builds an n-value powercap axis spanning [100, 300]
// in both spellings (JSON array / comma-separated query).
func estimateValues(n int) (jsonArr, csv string) {
	var a, c strings.Builder
	for i := 0; i < n; i++ {
		v := 100 + float64(i)*200/float64(n-1)
		s := fmt.Sprintf("%g", v)
		if i > 0 {
			a.WriteString(",")
			c.WriteString(",")
		}
		a.WriteString(s)
		c.WriteString(s)
	}
	return "[" + a.String() + "]", c.String()
}

// estimateVariant decodes a response variant with json.Number fields,
// so numeric literals compare byte-for-byte, not post-rounding.
type estimateVariant struct {
	Value    json.Number `json:"value"`
	CapW     json.Number `json:"cap_w"`
	GPUs     json.Number `json:"gpus"`
	MedianMs json.Number `json:"median_ms"`
	PerfVar  json.Number `json:"perf_variation"`
	Outliers json.Number `json:"outliers"`
	Source   string      `json:"source"`
	Bound    json.Number `json:"bound"`
}

func decodeVariants(t *testing.T, body []byte) []estimateVariant {
	t.Helper()
	var resp struct {
		Variants []json.RawMessage `json:"variants"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, body)
	}
	out := make([]estimateVariant, len(resp.Variants))
	for i, raw := range resp.Variants {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&out[i]); err != nil {
			t.Fatalf("decoding variant %d: %v", i, err)
		}
	}
	return out
}

// TestEstimateEndpoint pins the new surface: a 256-value axis (8× the
// full-sim cap) answers 200 with every point marked estimated and
// carrying a bound; the GET spelling shares the POST's cache entry and
// bytes; a repeat is a warm hit.
func TestEstimateEndpoint(t *testing.T) {
	srv := testServer()
	arr, csv := estimateValues(256)

	post := doReq(t, srv, "POST", "/v1/estimate", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":`+arr+`}`)
	if post.Code != 200 || post.Header().Get("X-Cache") != "miss" {
		t.Fatalf("POST estimate: status %d, X-Cache %q: %s", post.Code, post.Header().Get("X-Cache"), post.Body.String())
	}
	variants := decodeVariants(t, post.Body.Bytes())
	if len(variants) != 256 {
		t.Fatalf("got %d variants, want 256", len(variants))
	}
	for i, v := range variants {
		if v.Source != "estimated" {
			t.Fatalf("variant %d source = %q, want estimated", i, v.Source)
		}
		if v.Bound == "" {
			t.Fatalf("variant %d has no bound", i)
		}
	}

	get := doReq(t, srv, "GET", "/v1/estimate?cluster=CloudLab&iterations=2&axis=powercap&values="+csv, "")
	if get.Code != 200 || get.Header().Get("X-Cache") != "hit" {
		t.Fatalf("GET estimate: status %d, X-Cache %q; want a warm hit of the POST's entry", get.Code, get.Header().Get("X-Cache"))
	}
	if !bytes.Equal(get.Body.Bytes(), post.Body.Bytes()) {
		t.Fatal("GET estimate bytes diverge from POST estimate bytes")
	}
}

// TestEstimateSweepCapTiers pins the satellite fix: plain sweeps keep
// the 32-value full-simulation cap, estimate and adaptive requests get
// the wider one, and both rejections carry the bad_values code naming
// the limits.
func TestEstimateSweepCapTiers(t *testing.T) {
	srv := testServer()
	arr64, _ := estimateValues(64)
	arr1025, _ := estimateValues(1025)

	plain := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","axis":"powercap","values":`+arr64+`}`)
	if plain.Code != 400 || !strings.Contains(plain.Body.String(), `"bad_values"`) ||
		!strings.Contains(plain.Body.String(), "full-simulation limit of 32") {
		t.Fatalf("64-value plain sweep: status %d: %s", plain.Code, plain.Body.String())
	}

	est := doReq(t, srv, "POST", "/v1/estimate", `{"cluster":"CloudLab","axis":"powercap","values":`+arr1025+`}`)
	if est.Code != 400 || !strings.Contains(est.Body.String(), `"bad_values"`) ||
		!strings.Contains(est.Body.String(), "estimator limit of 1024") {
		t.Fatalf("1025-value estimate: status %d: %s", est.Code, est.Body.String())
	}

	adaptive := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":`+arr64+`,"adaptive":true,"threshold":0.5}`)
	if adaptive.Code != 200 {
		t.Fatalf("64-value adaptive sweep: status %d: %s", adaptive.Code, adaptive.Body.String())
	}
}

// TestEstimateAdaptiveValidation pins the knob contracts: threshold
// without adaptive, out-of-range thresholds, and adaptive on
// /v1/estimate are client errors.
func TestEstimateAdaptiveValidation(t *testing.T) {
	srv := testServer()
	cases := []struct {
		name, target, body, wantIn string
	}{
		{"threshold without adaptive", "/v1/sweep", `{"values":[250],"threshold":0.1}`, "threshold requires adaptive"},
		{"threshold over 1", "/v1/sweep", `{"values":[250],"adaptive":true,"threshold":1.5}`, "bad threshold"},
		{"negative threshold", "/v1/sweep", `{"values":[250],"adaptive":true,"threshold":-0.1}`, "bad threshold"},
		{"adaptive on estimate", "/v1/estimate", `{"values":[250],"adaptive":true,"threshold":0.1}`, "do not apply to /v1/estimate"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			rr := doReq(t, srv, "POST", tt.target, tt.body)
			if rr.Code != 400 || !strings.Contains(rr.Body.String(), tt.wantIn) {
				t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
			}
		})
	}
}

// TestAdaptiveThresholdZeroByteIdentity is the golden degenerate case:
// adaptive with threshold 0 normalizes onto the plain sweep — same
// cache entry (the second request is a hit) and byte-identical body,
// with no source/bound fields.
func TestAdaptiveThresholdZeroByteIdentity(t *testing.T) {
	srv := testServer()
	plain := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[250,200]}`)
	if plain.Code != 200 {
		t.Fatalf("plain sweep: %d: %s", plain.Code, plain.Body.String())
	}
	adaptive := doReq(t, srv, "POST", "/v1/sweep", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[250,200],"adaptive":true,"threshold":0}`)
	if adaptive.Code != 200 || adaptive.Header().Get("X-Cache") != "hit" {
		t.Fatalf("adaptive(0) sweep: status %d, X-Cache %q; want a hit of the plain entry",
			adaptive.Code, adaptive.Header().Get("X-Cache"))
	}
	if !bytes.Equal(adaptive.Body.Bytes(), plain.Body.Bytes()) {
		t.Fatal("adaptive threshold-0 body diverged from the plain sweep")
	}
	if strings.Contains(adaptive.Body.String(), `"source"`) {
		t.Fatal("threshold-0 response carries source markers; it must be the plain body")
	}
}

// TestAdaptiveSweepGolden is the acceptance golden: a 64-value powercap
// adaptive sweep simulates at most half the axis, marks every point's
// source, and every simulated point's numeric literals are
// byte-identical to a plain sweep of those same values (json.Number
// comparison: the decimal strings themselves, not rounded floats).
func TestAdaptiveSweepGolden(t *testing.T) {
	arr, _ := estimateValues(64)
	body := `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":` + arr + `,"adaptive":true,"threshold":0.05}`

	srv := testServer()
	rr := doReq(t, srv, "POST", "/v1/sweep", body)
	if rr.Code != 200 {
		t.Fatalf("adaptive sweep: %d: %s", rr.Code, rr.Body.String())
	}
	variants := decodeVariants(t, rr.Body.Bytes())
	if len(variants) != 64 {
		t.Fatalf("got %d variants, want 64", len(variants))
	}
	var simulated []string
	estimated := 0
	for i, v := range variants {
		switch v.Source {
		case "simulated":
			if v.Bound != "" {
				t.Fatalf("variant %d: simulated point carries a bound", i)
			}
			simulated = append(simulated, v.Value.String())
		case "estimated":
			if v.Bound == "" {
				t.Fatalf("variant %d: estimated point has no bound", i)
			}
			estimated++
		default:
			t.Fatalf("variant %d: source %q", i, v.Source)
		}
	}
	if len(simulated) == 0 || estimated == 0 {
		t.Fatalf("adaptive mix degenerate: %d simulated, %d estimated", len(simulated), estimated)
	}
	if len(simulated)*2 > len(variants) {
		t.Fatalf("adaptive sweep simulated %d of %d values (> 50%%)", len(simulated), len(variants))
	}

	// Repeat determinism: same request, fresh server, same bytes.
	again := doReq(t, testServer(), "POST", "/v1/sweep", body)
	if again.Code != 200 || !bytes.Equal(again.Body.Bytes(), rr.Body.Bytes()) {
		t.Fatal("adaptive sweep is not byte-deterministic across servers")
	}

	// The simulated subset, swept plainly on a cold server, must agree
	// literal-for-literal with the adaptive response's simulated points.
	plainBody := `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[` + strings.Join(simulated, ",") + `]}`
	plain := doReq(t, testServer(), "POST", "/v1/sweep", plainBody)
	if plain.Code != 200 {
		t.Fatalf("plain sweep of simulated subset: %d: %s", plain.Code, plain.Body.String())
	}
	plainVars := decodeVariants(t, plain.Body.Bytes())
	byValue := make(map[string]estimateVariant, len(plainVars))
	for _, v := range plainVars {
		byValue[v.Value.String()] = v
	}
	for _, v := range variants {
		if v.Source != "simulated" {
			continue
		}
		p, ok := byValue[v.Value.String()]
		if !ok {
			t.Fatalf("value %s missing from the plain subset sweep", v.Value)
		}
		if v.MedianMs != p.MedianMs || v.PerfVar != p.PerfVar || v.GPUs != p.GPUs ||
			v.Outliers != p.Outliers || v.CapW != p.CapW {
			t.Fatalf("value %s: simulated point diverged from plain sweep:\nadaptive: %+v\nplain:    %+v", v.Value, v, p)
		}
	}
}

// TestJobEstimate runs the estimate payload through the async path: the
// job's result is byte-identical to the synchronous POST /v1/estimate,
// and its stream replays the whole body.
func TestJobEstimate(t *testing.T) {
	const body = `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[100,150,200,250,300]}`
	sync := doReq(t, testServer(), "POST", "/v1/estimate", body)
	if sync.Code != 200 {
		t.Fatalf("sync estimate: %d: %s", sync.Code, sync.Body.String())
	}

	srv := testServer()
	view := submitJob(t, srv, `{"kind":"estimate","estimate":`+body+`}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	res := doReq(t, srv, "GET", final.ResultURL, "")
	if res.Code != 200 || !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("estimate job result diverged from the synchronous response (status %d)", res.Code)
	}

	stream := doReq(t, srv, "GET", view.URL+"/stream", "")
	if stream.Code != 200 {
		t.Fatalf("estimate job stream: %d: %s", stream.Code, stream.Body.String())
	}
	_, payload := decodeStream(t, stream.Body.Bytes())
	if !bytes.Equal(payload, sync.Body.Bytes()) {
		t.Fatal("estimate job stream payloads do not reassemble the synchronous body")
	}
}

// TestJobAdaptiveSweepStream runs an adaptive sweep as an async job and
// as a live stream: result, reassembled job stream, and reassembled
// /v1/stream/sweep body all equal the synchronous adaptive response.
func TestJobAdaptiveSweepStream(t *testing.T) {
	const body = `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[100,120,140,160,180,200,220,240,260,280,300],"adaptive":true,"threshold":0.05}`
	sync := doReq(t, testServer(), "POST", "/v1/sweep", body)
	if sync.Code != 200 {
		t.Fatalf("sync adaptive sweep: %d: %s", sync.Code, sync.Body.String())
	}
	if !strings.Contains(sync.Body.String(), `"source"`) {
		t.Fatalf("adaptive sweep response has no source markers: %s", sync.Body.String())
	}

	srv := testServer()
	view := submitJob(t, srv, `{"kind":"sweep","sweep":`+body+`}`)
	final := pollJob(t, srv, view.URL)
	if final.State != jobs.StateDone {
		t.Fatalf("job ended %s (%s), want done", final.State, final.Error)
	}
	res := doReq(t, srv, "GET", final.ResultURL, "")
	if res.Code != 200 || !bytes.Equal(res.Body.Bytes(), sync.Body.Bytes()) {
		t.Fatalf("adaptive job result diverged from the synchronous response (status %d)", res.Code)
	}
	jobStream := doReq(t, srv, "GET", view.URL+"/stream", "")
	if jobStream.Code != 200 {
		t.Fatalf("adaptive job stream: %d", jobStream.Code)
	}
	_, payload := decodeStream(t, jobStream.Body.Bytes())
	if !bytes.Equal(payload, sync.Body.Bytes()) {
		t.Fatal("adaptive job stream payloads do not reassemble the synchronous body")
	}

	live := doReq(t, testServer(), "GET",
		"/v1/stream/sweep?cluster=CloudLab&iterations=2&axis=powercap&values=100,120,140,160,180,200,220,240,260,280,300&adaptive=true&threshold=0.05", "")
	if live.Code != 200 {
		t.Fatalf("adaptive stream sweep: %d: %s", live.Code, live.Body.String())
	}
	_, livePayload := decodeStream(t, live.Body.Bytes())
	if !bytes.Equal(livePayload, sync.Body.Bytes()) {
		t.Fatal("adaptive /v1/stream/sweep payloads diverge from the synchronous body")
	}
}

// TestEstimateStats: serving estimates moves the estimator counters on
// /v1/stats and the gpuvar_estimate_* families on /metrics.
func TestEstimateStats(t *testing.T) {
	srv := testServer()
	rr := doReq(t, srv, "POST", "/v1/estimate", `{"cluster":"CloudLab","iterations":2,"axis":"powercap","values":[100,200,300]}`)
	if rr.Code != 200 {
		t.Fatalf("estimate: %d: %s", rr.Code, rr.Body.String())
	}
	stats := doReq(t, srv, "GET", "/v1/stats", "")
	var snap struct {
		Estimate struct {
			Calls        uint64 `json:"calls"`
			Calibrations uint64 `json:"calibrations"`
		} `json:"estimate"`
	}
	if err := json.Unmarshal(stats.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Estimate.Calls == 0 || snap.Estimate.Calibrations == 0 {
		t.Fatalf("estimator counters flat after an estimate: %+v", snap.Estimate)
	}
	metrics := doReq(t, srv, "GET", "/metrics", "")
	for _, fam := range []string{
		"gpuvar_estimate_calls_total",
		"gpuvar_estimate_calibrations_total",
		"gpuvar_estimate_screened_out_total",
		"gpuvar_estimate_full_sim_total",
		"gpuvar_estimate_max_calibration_residual",
	} {
		if !strings.Contains(metrics.Body.String(), fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}
}
