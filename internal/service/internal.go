package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"gpuvar/internal/dispatch"
	"gpuvar/internal/engine"
)

// The replica-facing half of distributed dispatch (see internal/dispatch
// for the routing side):
//
//	POST /v1/internal/shards  execute a batch of sweep shards for a peer
//	GET  /v1/replicas         membership, health, and dispatch counters
//
// plus the routing-directive header clients use to steer placement:
//
//	X-GPUVar-Route: remote           every shard must execute on a peer
//	                                 (502 replica_unavailable when none
//	                                 is healthy — never silently local)
//	X-GPUVar-Route: affinity-strict  refuse with 421 wrong_replica when
//	                                 this replica is not the rendezvous
//	                                 owner of the request's fingerprint
//	                                 (the owner rides X-GPUVar-Owner)

const (
	// routeDirectiveHeader is the client-facing routing directive.
	routeDirectiveHeader = "X-GPUVar-Route"
	routeRemote          = "remote"
	routeStrictAffinity  = "affinity-strict"
	// ownerHeader carries the owning replica's URL on 421 responses.
	ownerHeader = "X-GPUVar-Owner"
)

// parseRouteDirective validates the optional routing directive; an
// unknown value is a client error, not a silent default.
func parseRouteDirective(r *http.Request) (string, error) {
	v := r.Header.Get(routeDirectiveHeader)
	switch v {
	case "", routeRemote, routeStrictAffinity:
		return v, nil
	}
	return "", fmt.Errorf("bad %s %q: want %q or %q", routeDirectiveHeader, v, routeRemote, routeStrictAffinity)
}

// redirectAffinityMiss answers 421 wrong_replica when the request
// demands strict affinity placement and this replica is not the
// rendezvous owner of the request's cache fingerprint. The owner's URL
// rides the X-GPUVar-Owner header and the message, so a cache-topology-
// aware client can re-aim. Reports whether the request was answered.
func (s *Server) redirectAffinityMiss(w http.ResponseWriter, directive, key string) bool {
	if directive != routeStrictAffinity || s.dispatcher == nil {
		return false
	}
	owner, self := s.dispatcher.Owner(key)
	if self {
		return false
	}
	w.Header().Set(ownerHeader, owner)
	writeError(w, http.StatusMisdirectedRequest, "wrong_replica",
		"this replica does not own the request's affinity placement; retry at %s", owner)
	return true
}

// handleInternalShards executes a batch of sweep shards on behalf of a
// peer replica's dispatcher. The route is internal: it requires the
// dispatch marker header and refuses any request carrying an external
// client identity — peers are not tenants, and tenants are not peers.
func (s *Server) handleInternalShards(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(dispatch.InternalHeader) == "" || r.Header.Get("X-API-Key") != "" {
		writeError(w, http.StatusForbidden, "forbidden",
			"%s is replica-to-replica only: requests must carry %s and no external client identity",
			dispatch.ShardsPath, dispatch.InternalHeader)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSweepBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	var sreq dispatch.ShardsRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sreq); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: %v", err)
		return
	}
	var req sweepRequest
	dec = json.NewDecoder(bytes.NewReader(sreq.Sweep))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding sweep payload: %v", err)
		return
	}
	// The dispatching replica sends its normalized request; normalization
	// is idempotent (the fingerprint-stability contract the fuzz targets
	// pin), so re-normalizing here just re-derives the experiment.
	exp, axis, status, err := normalizeSweep(&req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	if req.Adaptive {
		writeError(w, http.StatusBadRequest, "bad_request",
			"adaptive sweeps do not dispatch: the estimator pre-screen runs on the serving replica")
		return
	}
	if len(sreq.Indices) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "indices is required: which shards of values to execute")
		return
	}
	for _, idx := range sreq.Indices {
		if idx < 0 || idx >= len(req.Values) {
			writeError(w, http.StatusBadRequest, "bad_request",
				"shard index %d out of range (sweep has %d values)", idx, len(req.Values))
			return
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// The batch runs as one engine job graph under this replica's own
	// worker budget — exactly the resource treatment a local sweep shard
	// gets, so dispatched and local shards contend identically.
	points, err := engine.Map(ctx, len(sreq.Indices), 0, func(ctx context.Context, i int) (dispatch.ShardPoint, error) {
		idx := sreq.Indices[i]
		p, warm, err := dispatch.LocalBackend{}.Exec(ctx, dispatch.Job{Exp: exp, Axis: axis, Values: req.Values}, idx)
		if err != nil {
			return dispatch.ShardPoint{}, err
		}
		return dispatch.NewShardPoint(idx, p, warm), nil
	})
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = statusClientClosedRequest
		}
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, dispatch.ShardsResponse{Points: points})
}

// replicasResponse is the GET /v1/replicas body. Distributed is false —
// and the dispatch fields absent — in single-process serving.
type replicasResponse struct {
	Distributed bool `json:"distributed"`
	*dispatch.Stats
}

func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) {
	out := replicasResponse{}
	if s.dispatcher != nil {
		st := s.dispatcher.Stats()
		out.Distributed, out.Stats = true, &st
	}
	writeJSON(w, http.StatusOK, out)
}
