package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuvar/internal/engine"
	"gpuvar/internal/figures"
)

// TestCacheCanceledLeaderHandsOff pins the PR-3 coalescing contract at
// the cache layer: the request that started a computation canceling
// must not poison the coalesced followers — they still receive the
// complete result, and the complete result (only) is cached.
func TestCacheCanceledLeaderHandsOff(t *testing.T) {
	c := newResultCache(8)
	computing := make(chan struct{})
	gate := make(chan struct{})
	var calls atomic.Int64
	compute := func(fctx context.Context) (*cachedResponse, error) {
		calls.Add(1)
		close(computing)
		select {
		case <-gate:
			return &cachedResponse{status: 200, body: []byte("complete")}, nil
		case <-fctx.Done():
			return nil, fctx.Err()
		}
	}

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.do(leaderCtx, "k", compute)
		leaderDone <- err
	}()
	<-computing

	followerDone := make(chan struct {
		body  string
		state string
		err   error
	}, 1)
	go func() {
		res, state, err := c.do(context.Background(), "k", compute)
		body := ""
		if res != nil {
			body = string(res.body)
		}
		followerDone <- struct {
			body  string
			state string
			err   error
		}{body, state, err}
	}()
	// The follower must have joined the flight before the leader bails.
	waitFor(t, func() bool { return c.flight.Waiters("k") >= 2 })

	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}

	close(gate)
	f := <-followerDone
	if f.err != nil || f.body != "complete" || f.state != "coalesced" {
		t.Fatalf("follower got (%q, %q, %v), want the complete coalesced result", f.body, f.state, f.err)
	}
	if calls.Load() != 1 {
		t.Fatalf("compute ran %d times, want 1 (handoff, not restart)", calls.Load())
	}
	// The complete result was cached: a third request replays it.
	res, state, err := c.do(context.Background(), "k", compute)
	if err != nil || state != "hit" || string(res.body) != "complete" {
		t.Fatalf("post-handoff request = (%v, %q, %v), want cached hit", res, state, err)
	}
}

// TestCacheCanceledFlightNotCached: when every waiter abandons a
// computation it is canceled, nothing is cached, and the next request
// computes afresh instead of replaying ctx.Err() forever.
func TestCacheCanceledFlightNotCached(t *testing.T) {
	c := newResultCache(8)
	var calls atomic.Int64
	blockUntilCanceled := func(fctx context.Context) (*cachedResponse, error) {
		calls.Add(1)
		<-fctx.Done()
		return nil, fctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.do(ctx, "k", blockUntilCanceled)
		done <- err
	}()
	waitFor(t, func() bool { return c.flight.Len() > 0 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitFor(t, func() bool { return c.flight.Len() == 0 })
	if s := c.Stats(); s.Entries != 0 || s.Aborted != 1 {
		t.Fatalf("stats after abandoned flight = %+v, want 0 entries, 1 aborted", s)
	}
	// Fresh request: computes (and this time completes).
	res, state, err := c.do(context.Background(), "k", func(context.Context) (*cachedResponse, error) {
		return &cachedResponse{status: 200, body: []byte("fresh")}, nil
	})
	if err != nil || state != "miss" || string(res.body) != "fresh" {
		t.Fatalf("retry = (%v, %q, %v), want a fresh miss", res, state, err)
	}
}

// TestRequestDeadlineAborts drives the deadline through the real
// handler stack: a server whose request budget is 1ns must answer 504 —
// the engine refuses to dispatch shards under a dead context — and must
// not cache the aborted computation, so a patient server later computes
// the same request fine.
func TestRequestDeadlineAborts(t *testing.T) {
	impatient := mustNew(Options{
		Figures:        figures.Config{Iterations: 2, MLIterations: 2, Runs: 2, SummitFraction: 0.01},
		RequestTimeout: time.Nanosecond,
	})
	const target = "/v1/experiments/sgemm?cluster=CloudLab&iterations=2"
	rr := doReq(t, impatient, "GET", target, "")
	if rr.Code != 504 {
		t.Fatalf("status = %d, want 504; body: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "deadline") {
		t.Errorf("504 body does not mention the deadline: %s", rr.Body.String())
	}
	if s := impatient.CacheStats(); s.Entries != 0 {
		t.Errorf("aborted computation was cached: %+v", s)
	}
	// The request itself was fine — a server with the default budget
	// computes it.
	patient := testServer()
	if rr := doReq(t, patient, "GET", target, ""); rr.Code != 200 {
		t.Fatalf("patient server: status = %d: %s", rr.Code, rr.Body.String())
	}
}

// TestCancelInFlightServiceRequest cancels a request mid-computation
// through a real HTTP server and asserts the service's whole compute
// stack unwinds: the client returns promptly, the abandoned flight is
// canceled, and the engine drains to zero in-flight jobs.
func TestCancelInFlightServiceRequest(t *testing.T) {
	srv := testServer()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A 3650-day campaign is far too slow to finish before the cancel
	// below; its per-day measurement batches all run through the engine.
	const heavy = `{"cluster":"CloudLab","days":3650,"plan":{"overhead_frac":0.05,"bench_seconds":600}}`
	ctx, cancel := context.WithCancel(context.Background())
	reqDone := make(chan error, 1)
	go func() {
		req, err := newPost(ctx, ts.URL+"/v1/campaign", heavy)
		if err != nil {
			reqDone <- err
			return
		}
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
			err = errors.New("request completed despite cancellation")
		}
		reqDone <- err
	}()

	// Wait until the computation is actually in flight, then cancel.
	waitFor(t, func() bool { return srv.CacheStats().InFlight > 0 })
	cancel()
	select {
	case err := <-reqDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("client err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled request did not return")
	}

	// The server must unwind: no flights, no in-flight engine jobs.
	waitFor(t, func() bool { return srv.CacheStats().InFlight == 0 })
	waitFor(t, func() bool { return engine.Snapshot().InFlightJobs == 0 })

	// And it still serves fresh work afterwards.
	if rr := doReq(t, srv, "POST", "/v1/campaign", campaignBody); rr.Code != 200 {
		t.Fatalf("post-cancel request: status %d: %s", rr.Code, rr.Body.String())
	}
	if s := srv.CacheStats(); s.Aborted == 0 {
		t.Errorf("aborted counter not incremented: %+v", s)
	}
}

// newPost builds a context-bound POST with a JSON body.
func newPost(ctx context.Context, url, body string) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, "POST", url, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return req, nil
}

// waitFor polls cond for up to 10s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 10s")
}
