package service

import (
	"container/list"
	"context"
	"sync"

	"gpuvar/internal/engine"
)

// cachedResponse is one fully rendered response body, ready to replay to
// any client that asks the same question. Bodies are immutable once
// stored; handlers must not append to them.
type cachedResponse struct {
	status      int
	contentType string
	body        []byte
}

// CacheStats is a point-in-time snapshot of a cache's counters, exposed
// by GET /v1/stats and /v1/healthz and asserted by the coalescing tests.
type CacheStats struct {
	Entries   int    `json:"entries"`
	InFlight  int    `json:"in_flight"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Aborted   uint64 `json:"aborted"`
	Evictions uint64 `json:"evictions"`
	// StaleEntries counts evicted responses still held for degraded
	// serving; StaleServed counts the times one stood in for a failed
	// recompute (the X-Degraded: stale responses).
	StaleEntries int    `json:"stale_entries"`
	StaleServed  uint64 `json:"stale_served"`
}

// resultCache is a fingerprint-keyed LRU of rendered responses with
// cancellation-safe singleflight coalescing (engine.Group): N concurrent
// requests for the same fingerprint cost one computation, later requests
// replay the stored bytes, and a caller abandoning the wait (deadline,
// client disconnect) neither kills the computation for the others nor
// poisons the key — the flight is canceled only when nobody is waiting,
// and only complete results are inserted. Errors are never cached (a
// failed computation should be retryable); every waiter of a failing
// flight gets its error.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *lruEntry
	// The stale store holds responses the primary LRU evicted, for
	// degraded serving: when a recompute fails server-side, the last
	// known-good bytes (which were correct when cached — every response
	// here is a pure function of its fingerprint) beat a 5xx. Bounded by
	// the same cap as the primary; a key promoted back into the primary
	// leaves the stale store.
	staleLL *list.List
	stale   map[string]*list.Element
	flight  engine.Group[*cachedResponse]
	stats   CacheStats
}

type lruEntry struct {
	key string
	res *cachedResponse
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		staleLL: list.New(),
		stale:   make(map[string]*list.Element),
	}
}

// lookup probes the LRU without touching the flight layer — the serving
// hot path for warm keys, kept free of context construction so a cache
// hit costs a lock and a list splice.
func (c *resultCache) lookup(key string) (*cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*lruEntry).res, true
	}
	return nil, false
}

// do returns the cached response for key, computing it at most once no
// matter how many goroutines ask concurrently. state reports how the
// response was obtained — "hit" (replayed from the LRU), "coalesced"
// (waited on another request's in-flight computation), or "miss"
// (computation started for this call). compute receives the flight's
// context: it outlives any single request and is canceled only when
// every interested request has gone.
func (c *resultCache) do(ctx context.Context, key string, compute func(ctx context.Context) (*cachedResponse, error)) (res *cachedResponse, state string, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		res = el.Value.(*lruEntry).res
		c.mu.Unlock()
		return res, "hit", nil
	}
	c.mu.Unlock()

	res, shared, err := c.flight.Do(ctx, key, func(fctx context.Context) (*cachedResponse, error) {
		r, err := compute(fctx)
		if err == nil {
			// Insert before the flight completes so a request arriving in
			// the done/release window finds the LRU entry, never a gap.
			c.mu.Lock()
			c.insert(key, r)
			c.mu.Unlock()
		}
		return r, err
	})

	state = "miss"
	if shared {
		state = "coalesced"
	}
	c.mu.Lock()
	if shared {
		c.stats.Coalesced++
	} else {
		c.stats.Misses++
	}
	if err != nil && ctx.Err() != nil {
		c.stats.Aborted++
	}
	c.mu.Unlock()
	return res, state, err
}

// insert adds an entry and evicts from the tail past capacity. Caller
// holds c.mu.
func (c *resultCache) insert(key string, res *cachedResponse) {
	if el, ok := c.entries[key]; ok { // lost a benign race with a re-add
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	// A fresh primary entry supersedes any stale copy of the same key.
	if el, ok := c.stale[key]; ok {
		c.staleLL.Remove(el)
		delete(c.stale, key)
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		e := tail.Value.(*lruEntry)
		c.ll.Remove(tail)
		delete(c.entries, e.key)
		c.stats.Evictions++
		// Demote to the stale store instead of discarding: the bytes stay
		// correct forever (pure computation), so they remain a valid
		// degraded answer if the recompute ever fails.
		c.stale[e.key] = c.staleLL.PushFront(e)
		for c.staleLL.Len() > c.max {
			st := c.staleLL.Back()
			c.staleLL.Remove(st)
			delete(c.stale, st.Value.(*lruEntry).key)
		}
	}
}

// staleLookup probes the stale store — the degraded-serving path taken
// only after a compute failure, so a hit counts as a stale serve.
func (c *resultCache) staleLookup(key string) (*cachedResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.stale[key]
	if !ok {
		return nil, false
	}
	c.staleLL.MoveToFront(el)
	c.stats.StaleServed++
	return el.Value.(*lruEntry).res, true
}

// prime inserts a complete response that was assembled outside the
// flight layer — the streaming handlers build their bodies
// incrementally and deposit the verified result here, so a later
// synchronous request for the same fingerprint replays it as a hit.
func (c *resultCache) prime(key string, res *cachedResponse) {
	c.mu.Lock()
	c.insert(key, res)
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.InFlight = c.flight.Len()
	s.StaleEntries = c.staleLL.Len()
	return s
}
