package service

import (
	"container/list"
	"sync"
)

// cachedResponse is one fully rendered response body, ready to replay to
// any client that asks the same question. Bodies are immutable once
// stored; handlers must not append to them.
type cachedResponse struct {
	status      int
	contentType string
	body        []byte
}

// flightCall is one in-progress computation that concurrent identical
// requests wait on instead of recomputing.
type flightCall struct {
	wg  sync.WaitGroup
	res *cachedResponse
	err error
}

// CacheStats is a point-in-time snapshot of a cache's counters, exposed
// by GET /v1/stats and asserted by the coalescing tests.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
}

// resultCache is a fingerprint-keyed LRU of rendered responses with
// singleflight request coalescing: N concurrent requests for the same
// fingerprint cost one computation — the leader computes, the followers
// block on its flightCall — and later requests replay the stored bytes.
// Errors are never cached (a failed computation should be retryable),
// and a follower that joined a failing flight gets the leader's error.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key → element whose Value is *lruEntry
	flight  map[string]*flightCall
	stats   CacheStats
}

type lruEntry struct {
	key string
	res *cachedResponse
}

func newResultCache(max int) *resultCache {
	if max < 1 {
		max = 1
	}
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		flight:  make(map[string]*flightCall),
	}
}

// do returns the cached response for key, computing it at most once no
// matter how many goroutines ask concurrently. state reports how the
// response was obtained — "hit" (replayed from the LRU), "coalesced"
// (waited on another request's in-flight computation), or "miss"
// (computed by this call).
func (c *resultCache) do(key string, compute func() (*cachedResponse, error)) (res *cachedResponse, state string, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		res = el.Value.(*lruEntry).res
		c.mu.Unlock()
		return res, "hit", nil
	}
	if fc, ok := c.flight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		fc.wg.Wait()
		return fc.res, "coalesced", fc.err
	}
	fc := &flightCall{}
	fc.wg.Add(1)
	c.flight[key] = fc
	c.stats.Misses++
	c.mu.Unlock()

	fc.res, fc.err = compute()

	c.mu.Lock()
	delete(c.flight, key)
	if fc.err == nil {
		c.insert(key, fc.res)
	}
	c.mu.Unlock()
	fc.wg.Done()
	return fc.res, "miss", fc.err
}

// insert adds an entry and evicts from the tail past capacity. Caller
// holds c.mu.
func (c *resultCache) insert(key string, res *cachedResponse) {
	if el, ok := c.entries[key]; ok { // lost a benign race with a re-add
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*lruEntry).key)
		c.stats.Evictions++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}
