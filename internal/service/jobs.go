package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"gpuvar/internal/dispatch"
	"gpuvar/internal/engine"
	"gpuvar/internal/jobs"
)

// Async jobs: the heaviest computations of the suite (Summit-scale
// variant sweeps, long campaigns) outlive any reasonable request
// deadline, so instead of a held connection the service accepts the
// same payloads as asynchronous jobs:
//
//	POST   /v1/jobs              submit → 202 + poll URL
//	GET    /v1/jobs              list live jobs (paginated/filtered)
//	GET    /v1/jobs/{id}         lifecycle state + per-shard progress
//	GET    /v1/jobs/{id}/result  the finished response (replayable)
//	GET    /v1/jobs/{id}/stream  the job's NDJSON stream (jobstream.go)
//	DELETE /v1/jobs/{id}         cancel (active) / forget (terminal)
//
// A job's computation is the synchronous handler's computation, run
// through the same response cache and singleflight under the job's own
// context instead of a request deadline. That sharing is the
// byte-identity guarantee: a finished job's result is exactly the body
// the synchronous endpoint would have returned (and the job primes the
// cache, so a later synchronous request replays it as a hit). Progress
// comes from the engine's shard counters via the job's context, with
// one consequence of the sharing: a job that COALESCES onto an
// already-in-flight identical computation (or replays a cached result)
// reports 0/0 progress — the shards belong to the flight that started
// first — and simply completes when that flight does. Its state, not
// its shard counters, is the liveness signal.

// maxJobBody bounds the submission body (an envelope around one of the
// POST payloads).
const maxJobBody = 1 << 16

// jobRequest is the POST /v1/jobs envelope: the kind of computation
// plus its payload, which uses the exact schema of the corresponding
// synchronous endpoint.
type jobRequest struct {
	// Kind selects the payload: "sweep" (POST /v1/sweep's body),
	// "estimate" (POST /v1/estimate's body — the sweep schema, every
	// point answered analytically), or "campaign" (POST /v1/campaign's
	// body).
	Kind string `json:"kind"`
	// Class selects the scheduling class: "batch" (the default — async
	// jobs are throughput work) or "interactive" to jump ahead of
	// saturated batch queues and draw from the interactive share of the
	// engine's worker budget.
	Class    string           `json:"class,omitempty"`
	Sweep    *sweepRequest    `json:"sweep,omitempty"`
	Estimate *sweepRequest    `json:"estimate,omitempty"`
	Campaign *campaignRequest `json:"campaign,omitempty"`
}

// jobComputation validates and normalizes a job envelope into its cache
// key, scheduling class, and computation — shared by the submit handler
// and the envelope fuzz target so they can never drift. status is the
// HTTP code to use when err != nil.
func jobComputation(req *jobRequest) (key string, class engine.Class, compute func(ctx context.Context) (*cachedResponse, error), status int, err error) {
	// Async jobs default to the batch class; the empty spelling of
	// ParseClass means interactive, so map it explicitly.
	class = engine.Batch
	if req.Class != "" {
		class, err = engine.ParseClass(req.Class)
		if err != nil {
			return "", 0, nil, http.StatusBadRequest, err
		}
	}
	switch req.Kind {
	case "sweep":
		if req.Sweep == nil {
			return "", 0, nil, http.StatusBadRequest,
				errors.New(`kind "sweep" requires a "sweep" payload (the POST /v1/sweep body)`)
		}
		key, compute, status, err = sweepComputation(req.Sweep)
	case "estimate":
		if req.Estimate == nil {
			return "", 0, nil, http.StatusBadRequest,
				errors.New(`kind "estimate" requires an "estimate" payload (the POST /v1/estimate body)`)
		}
		key, compute, status, err = estimateComputation(req.Estimate)
	case "campaign":
		if req.Campaign == nil {
			return "", 0, nil, http.StatusBadRequest,
				errors.New(`kind "campaign" requires a "campaign" payload (the POST /v1/campaign body)`)
		}
		key, compute, status, err = campaignComputation(req.Campaign)
	default:
		return "", 0, nil, http.StatusBadRequest,
			fmt.Errorf(`bad kind %q: want "sweep", "estimate", or "campaign"`, req.Kind)
	}
	if err != nil {
		return "", 0, nil, status, err
	}
	return key, class, compute, 0, nil
}

// jobView is one job in wire form: the manager's snapshot plus the
// URLs a client polls, streams, and fetches.
type jobView struct {
	jobs.Snapshot
	URL       string `json:"url"`
	StreamURL string `json:"stream_url,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

func jobURL(id string) string { return "/v1/jobs/" + id }

func (s *Server) jobView(snap jobs.Snapshot) jobView {
	v := jobView{Snapshot: snap, URL: jobURL(snap.ID), StreamURL: jobURL(snap.ID) + "/stream"}
	if snap.State == jobs.StateDone {
		v.ResultURL = jobURL(snap.ID) + "/result"
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	var req jobRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decoding body: %v", err)
		return
	}
	legacy := (req.Sweep != nil && len(req.Sweep.CapsW) > 0) ||
		(req.Estimate != nil && len(req.Estimate.CapsW) > 0)

	// Validation and normalization happen synchronously, so a malformed
	// submission is rejected with 400/404 up front; only well-formed
	// computations become jobs.
	key, class, compute, status, err := jobComputation(&req)
	if err != nil {
		writeError(w, status, errCode(err, status), "%v", err)
		return
	}

	// The job's replayable stream: the start line (carrying the body
	// prefix) is appended before submission, so even a follower that
	// attaches instantly replays a complete prefix (see jobstream.go).
	st := s.newJobStream(&req)

	// The job runs the computation through the response cache: it
	// coalesces with identical synchronous requests and other jobs, and
	// its complete result lands in the LRU for both paths to replay.
	// The stream's shard sink rides the job's context; a job that
	// coalesces onto another flight emits no shard lines and its stream
	// falls back to the whole finished body.
	client := requestClient(r.Context())
	id, err := s.jobs.Submit(client, class, func(ctx context.Context) (*cachedResponse, error) {
		// The job manager runs computations under its own context, so the
		// request-scoped dispatcher attachment must be re-applied here for
		// async sweeps to fan out across replicas like synchronous ones.
		if s.dispatcher != nil {
			ctx = dispatch.NewContext(ctx, s.dispatcher)
		}
		if st != nil {
			ctx = st.sinkContext(ctx)
		}
		res, _, err := s.cache.do(ctx, key, compute)
		return res, err
	})
	if errors.Is(err, jobs.ErrClientQueueFull) {
		// Per-client shedding: this client's own backlog is at its bound
		// while the class-wide queue still has room for other tenants.
		// The scope in the message and code tells the client that backing
		// off (or spreading keys) is on them specifically.
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusTooManyRequests, "client_queue_full",
			"client %q's batch job queue is full (%d of this client's jobs queued); retry later or submit with class \"interactive\"",
			client, s.clientQueued(client))
		return
	}
	if errors.Is(err, jobs.ErrQueueFull) {
		// Class-wide shedding: the whole batch queue is saturated. 429 +
		// Retry-After is backpressure, not failure — the client should
		// resubmit (or use class "interactive" for genuinely urgent work).
		w.Header().Set("Retry-After", "2")
		writeError(w, http.StatusTooManyRequests, "queue_full",
			"batch job queue is full (%d queued); retry later or submit with class \"interactive\"",
			s.jobs.Stats().QueuedBatch)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	if st != nil {
		s.registerJobStream(id, st)
	}
	snap, _ := s.jobs.Get(id)
	markLegacySweep(w, legacy)
	w.Header().Set("Location", jobURL(id))
	writeJSON(w, http.StatusAccepted, s.jobView(snap))
}

// clientQueued reads one client's current batch queue depth from the
// manager's per-client stats (0 if the client is unknown).
func (s *Server) clientQueued(client string) int {
	for _, cs := range s.jobs.Stats().Clients {
		if cs.Client == client {
			return cs.Queued
		}
	}
	return 0
}

// jobListResponse is the GET /v1/jobs body. NextPageToken appears only
// on paginated listings that have more pages.
type jobListResponse struct {
	Jobs          []jobView `json:"jobs"`
	NextPageToken string    `json:"next_page_token,omitempty"`
}

// handleJobList lists jobs in creation order (CreatedAt, then ID — the
// manager's deterministic snapshot order). Without parameters the
// behavior is the original unpaginated listing; ?limit= and
// ?page_token= paginate it deterministically, and ?client= / ?state=
// filter before pagination so a page token remains valid within one
// filtered view.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	for k := range q {
		switch k {
		case "limit", "page_token", "client", "state":
		default:
			// The same strictness the POST bodies get from
			// DisallowUnknownFields: a typoed knob must fail, not silently
			// list everything.
			writeError(w, http.StatusBadRequest, "bad_request", "unknown parameter %q", k)
			return
		}
	}
	limit := 0
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "bad_request", "bad limit %q: want a positive integer", v)
			return
		}
		limit = n
	}
	var afterCreated int64
	var afterID string
	usingToken := false
	if tok := q.Get("page_token"); tok != "" {
		var err error
		afterCreated, afterID, err = decodePageToken(tok)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_page_token", "bad page_token %q: %v", tok, err)
			return
		}
		usingToken = true
	}
	client := q.Get("client")
	state := q.Get("state")
	if state != "" {
		switch jobs.State(state) {
		case jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
		default:
			writeError(w, http.StatusBadRequest, "bad_request",
				"bad state %q: want queued, running, done, failed, or canceled", state)
			return
		}
	}

	out := jobListResponse{Jobs: []jobView{}}
	for _, snap := range s.jobs.Snapshots() {
		if client != "" && snap.Client != client {
			continue
		}
		if state != "" && string(snap.State) != state {
			continue
		}
		if usingToken && !afterToken(snap, afterCreated, afterID) {
			continue
		}
		if limit > 0 && len(out.Jobs) == limit {
			// One more matching job exists past the page: hand out the
			// token that resumes right after the page's last entry.
			last := out.Jobs[len(out.Jobs)-1]
			out.NextPageToken = encodePageToken(last.CreatedAt.UnixNano(), last.ID)
			break
		}
		out.Jobs = append(out.Jobs, s.jobView(snap))
	}
	writeJSON(w, http.StatusOK, out)
}

// Page tokens are an opaque encoding of the last-listed job's position
// in creation order (created-at nanos + ID, the snapshot sort key), so
// a page boundary stays stable as jobs finish, expire, or arrive.
func encodePageToken(createdUnixNano int64, id string) string {
	return base64.RawURLEncoding.EncodeToString([]byte(strconv.FormatInt(createdUnixNano, 10) + ":" + id))
}

func decodePageToken(tok string) (createdUnixNano int64, id string, err error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, "", errors.New("not a page token")
	}
	created, id, ok := strings.Cut(string(raw), ":")
	if !ok {
		return 0, "", errors.New("not a page token")
	}
	n, err := strconv.ParseInt(created, 10, 64)
	if err != nil {
		return 0, "", errors.New("not a page token")
	}
	return n, id, nil
}

// afterToken reports whether snap sorts strictly after the token's
// position in creation order.
func afterToken(snap jobs.Snapshot, created int64, id string) bool {
	c := snap.CreatedAt.UnixNano()
	if c != created {
		return c > created
	}
	return snap.ID > id
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(snap))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, snap, ok := s.jobs.Result(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	switch snap.State {
	case jobs.StateDone:
		// Replay the stored bytes — the same bytes the synchronous
		// endpoint serves, replayable on every fetch until the job
		// expires.
		w.Header().Set("Content-Type", res.contentType)
		w.Header().Set("X-Cache", "job")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
	case jobs.StateCanceled:
		writeError(w, http.StatusGone, "job_canceled", "job %s was canceled", id)
	case jobs.StateFailed:
		err := s.jobs.Err(id)
		var se *statusError
		switch {
		case errors.As(err, &se):
			writeError(w, se.status, errCode(err, se.status), "%v", se.err)
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "job %s exceeded the job deadline (%s)", id, s.opts.JobTimeout)
		default:
			writeError(w, http.StatusInternalServerError, "internal", "job %s failed: %s", id, snap.Error)
		}
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job_not_ready", "job %s is %s; poll %s until it is done", id, snap.State, jobURL(id))
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobs.Delete(id)
	if !ok {
		// Same envelope and message as the status/result 404s: a client
		// cleaning up an expired job learns why the ID is gone.
		writeError(w, http.StatusNotFound, "job_not_found", "unknown job %q (finished jobs expire after their TTL)", id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobView(snap))
}
