// Package service exposes the characterization suite as a long-running
// HTTP service: the full figure/table catalog, ad-hoc experiments, and
// campaign simulations, all as JSON.
//
// Routes (all under /v1; see API.md for the full reference):
//
//	GET    /v1/                   discovery document: every route with
//	                              its method, stability class (stable,
//	                              deprecated, internal), and successor
//	GET    /v1/figures            catalog of figure/table generators
//	GET    /v1/figures/{id}       one rendered figure (config via query)
//	GET    /v1/experiments/{name} one experiment summary (params via query)
//	POST   /v1/campaign           one campaign simulation (params via body)
//	POST   /v1/sweep              a bounded variant-axis sweep (powercap,
//	                              seed, ambient, or fraction)
//	GET    /v1/stream/sweep       the same sweep streamed as NDJSON, one
//	                              line per variant (see stream.go)
//	GET    /v1/stream/experiments/{name}
//	                              an experiment streamed as NDJSON, one
//	                              line per shard
//	POST   /v1/jobs               async submission of a sweep/campaign →
//	                              202 + poll URL (see jobs.go); "class"
//	                              selects interactive or batch (default)
//	                              scheduling, and saturated batch queues
//	                              shed with 429 + Retry-After
//	GET    /v1/jobs               list live jobs (creation order;
//	                              ?limit/?page_token paginate,
//	                              ?client/?state filter)
//	GET    /v1/jobs/{id}          job state + per-shard progress
//	GET    /v1/jobs/{id}/result   finished job's response (replayable)
//	GET    /v1/jobs/{id}/stream   the job's NDJSON stream: replayed
//	                              prefix + live tail (see jobstream.go)
//	DELETE /v1/jobs/{id}          cancel / forget a job
//	GET    /v1/stats              cache/session/engine/job counters,
//	                              per-class queue depth, budget occupancy,
//	                              per-client queue accounting
//	GET    /v1/healthz            liveness + the same counters
//	GET    /v1/replicas           replica-dispatch membership + counters
//	POST   /v1/internal/shards    replica-to-replica shard execution
//	                              (internal: refuses external clients)
//	GET    /metrics               the same counters in Prometheus text
//	                              exposition format (see metrics.go)
//
// Multi-tenancy: every request carries a client identity — the
// X-API-Key header when present, else the remote address — and the
// async job queue schedules batch jobs across clients with weighted
// fair (stride) scheduling plus a per-client queue bound, so one
// flooding tenant cannot starve or crowd out another (see
// internal/jobs). Every response echoes or generates an X-Request-ID,
// and every non-2xx body is the one JSON error envelope
// {"error": ..., "code": ...} with a stable machine-readable code.
//
// Every expensive response is produced through a fingerprint-keyed LRU
// result cache with cancellation-safe singleflight coalescing
// (resultCache): the fingerprint canonicalizes the request (route +
// normalized parameters), identical concurrent requests share one
// computation, and repeats replay stored bytes. Below the response
// cache sit the reuse layers PR 1 built — the figures session
// singleflight, the process-wide fleet cache, and per-device
// steady-point memoization — so even a cache-miss request pays only for
// what no earlier request has computed.
//
// Cancellation contract (PR 3): every handler derives a per-request
// deadline (Options.RequestTimeout, default 30s) from the client's
// context, and the whole compute stack under it — figures, core,
// campaign, sweeps — runs on the shared execution engine
// (internal/engine), which stops dispatching work shards the moment the
// context ends. A client disconnect or deadline therefore aborts the
// computation mid-run. Coalescing survives cancellation: a computation
// belongs to the set of requests waiting on it, not to the request that
// started it — the first requester canceling hands the flight to the
// remaining waiters, the last waiter canceling aborts it, and only
// complete results are ever cached.
//
// Concurrency audit (the contract go test -race enforces end to end):
// cross-request shared state is confined to internally locked caches
// (resultCache, sessionPool, figures.Session, cluster.FleetCache); all
// mutable simulation state (sim.Device, rng streams, thermal-node
// copies) is created per job inside the owning goroutine and never
// escapes it. Handlers therefore run with no global lock.
package service

import (
	"bytes"
	"container/list"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gpuvar/internal/cluster"
	"gpuvar/internal/dispatch"
	"gpuvar/internal/engine"
	"gpuvar/internal/estimate"
	"gpuvar/internal/faults"
	"gpuvar/internal/figures"
	"gpuvar/internal/jobs"
	"gpuvar/internal/traffic"
)

// Options configures a server. The zero value serves the quick-settings
// catalog with modest cache bounds.
type Options struct {
	// Figures is the default figure configuration; per-request query
	// parameters override individual fields.
	Figures figures.Config
	// ResponseCacheSize bounds the rendered-response LRU (default 256).
	ResponseCacheSize int
	// SessionCacheSize bounds the number of live figure sessions, one
	// per distinct config (default 4). Sessions hold experiment results,
	// so this is the server's main memory knob.
	SessionCacheSize int
	// RequestTimeout bounds each request's computation (default 30s;
	// negative disables). The deadline composes with the client's own
	// context, so a disconnect aborts even earlier.
	RequestTimeout time.Duration
	// JobTimeout bounds one async job's computation (default 10m;
	// negative disables). Async jobs exist precisely because heavy
	// computations outlive RequestTimeout, so this budget is the
	// longer, batch-class one.
	JobTimeout time.Duration
	// MaxRunningJobs bounds concurrently executing async jobs per
	// scheduling class (default 2). Classes have independent slots, so
	// batch saturation never delays an interactive-class job.
	MaxRunningJobs int
	// MaxQueuedJobs bounds batch-class jobs waiting for an execution
	// slot (default 16; negative disables shedding). A batch submission
	// past the bound answers 429 + Retry-After instead of growing an
	// unbounded backlog.
	MaxQueuedJobs int
	// MaxQueuedJobsPerClient bounds one client's queued batch jobs
	// (default 8; negative disables). A single client past its own
	// bound sheds with 429 naming the client scope while the class-wide
	// queue still has room for everyone else.
	MaxQueuedJobsPerClient int
	// ClientWeights sets per-client fair-share weights for the batch
	// queue (default weight 1). A weight-2 client's backlog dispatches
	// twice as often as a weight-1 client's.
	ClientWeights map[string]int
	// MaxRetainedJobs bounds finished jobs kept for polling (default
	// 256; oldest evicted first). The default leaves generous headroom
	// so a submitter briefly descheduled between its 202 and its first
	// poll cannot have its job evicted out from under it by a burst of
	// faster jobs.
	MaxRetainedJobs int
	// JobTTL bounds how long a finished job's result stays fetchable
	// (default 10m; negative disables age-based expiry).
	JobTTL time.Duration
	// DataDir, when set, makes async jobs crash-safe: lifecycle
	// transitions and result bytes are journaled to
	// <DataDir>/jobs.journal and replayed on the next boot, so finished
	// jobs survive a restart (and interrupted ones resurface as explicit
	// failures instead of vanished IDs). Empty keeps jobs in-memory only.
	DataDir string
	// JournalSync selects the journal's fsync policy (default
	// jobs.SyncTerminal). Only meaningful with DataDir.
	JournalSync jobs.SyncPolicy
	// EstimateAnchors sets how many full-simulation anchor runs each
	// estimator calibration performs (clamped to [2, 5]; 0 keeps the
	// process default of 3). The setting is process-wide: the
	// calibrator, like the fleet cache, is shared state.
	EstimateAnchors int
	// Peers lists sibling gpuvard replicas' base URLs. Non-empty turns
	// on distributed dispatch: plain sweep shards route across the
	// replica set under RoutePolicy, with health-probe-driven eject/
	// readmit and graceful local fallback (see internal/dispatch).
	Peers []string
	// RoutePolicy selects the shard-routing policy: "roundrobin",
	// "leastloaded", or "affinity" (the default — rendezvous-hash the
	// shard's fleet fingerprint so repeat variants land where the fleet
	// cache is warm). Only meaningful with Peers.
	RoutePolicy string
	// SelfURL is this replica's advertised base URL — its name in the
	// rendezvous hash. Set it to the same string the peers' -peers
	// lists use, so the whole fleet agrees on affinity owners.
	SelfURL string
	// PeerProbeInterval is the peer health-probe cadence (default 1s;
	// negative disables the prober — tests drive probes directly).
	PeerProbeInterval time.Duration
	// RecordTrace, when set, records every replayable request to the
	// named traffic-trace file (see internal/traffic): offsets from
	// server start, client identity, request bytes, and the response
	// status + sha256. Observability routes and job polls are counted
	// but not recorded. The file is truncated on boot — one process
	// run is one recording session.
	RecordTrace string
}

// Server answers catalog queries. Create with New; it is an
// http.Handler.
type Server struct {
	opts     Options
	cache    *resultCache
	sessions *sessionPool
	jobs     *jobs.Manager[*cachedResponse]
	journal  *jobs.Journal // nil without Options.DataDir
	mux      *http.ServeMux
	started  time.Time
	// streams holds each live job's replayable NDJSON line log, keyed
	// by job ID (see jobstream.go); pruned against the job manager.
	streams struct {
		mu   sync.Mutex
		byID map[string]*jobStream
	}
	// degradedServes counts responses answered from the stale store
	// after a compute failure; lastDegraded (unix nanos) drives the
	// healthz ok|degraded status.
	degradedServes atomic.Uint64
	lastDegraded   atomic.Int64
	// dispatcher routes sweep shards across the replica set; nil when
	// Options.Peers is empty (single-process serving).
	dispatcher *dispatch.Dispatcher
	// recorder appends replayable requests to a traffic trace; nil
	// without Options.RecordTrace (see record.go).
	recorder *traffic.Recorder
}

// New assembles a server. It errors only when Options.DataDir is set
// and the job journal there cannot be opened or replayed.
func New(opts Options) (*Server, error) {
	if opts.ResponseCacheSize <= 0 {
		opts.ResponseCacheSize = 256
	}
	if opts.SessionCacheSize <= 0 {
		opts.SessionCacheSize = 4
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 30 * time.Second
	}
	if opts.JobTimeout == 0 {
		opts.JobTimeout = 10 * time.Minute
	}
	if opts.JobTimeout < 0 {
		opts.JobTimeout = 0 // jobs.Options reads 0 as "no deadline"
	}
	if opts.MaxRunningJobs <= 0 {
		opts.MaxRunningJobs = 2
	}
	if opts.MaxQueuedJobs == 0 {
		opts.MaxQueuedJobs = 16
	}
	if opts.MaxRetainedJobs <= 0 {
		opts.MaxRetainedJobs = 256
	}
	if opts.JobTTL == 0 {
		opts.JobTTL = 10 * time.Minute
	}
	if opts.EstimateAnchors > 0 {
		estimate.SetAnchorCount(opts.EstimateAnchors)
	}
	opts.Figures = opts.Figures.Normalized()
	s := &Server{
		opts:     opts,
		cache:    newResultCache(opts.ResponseCacheSize),
		sessions: newSessionPool(opts.SessionCacheSize),
		jobs: jobs.New[*cachedResponse](jobs.Options{
			MaxRunning:         opts.MaxRunningJobs,
			MaxQueuedBatch:     opts.MaxQueuedJobs,
			MaxQueuedPerClient: opts.MaxQueuedJobsPerClient,
			ClientWeights:      opts.ClientWeights,
			MaxRetained:        opts.MaxRetainedJobs,
			TTL:                opts.JobTTL,
			Timeout:            opts.JobTimeout,
		}),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if opts.DataDir != "" {
		j, err := jobs.OpenJournal(filepath.Join(opts.DataDir, "jobs.journal"), opts.JournalSync)
		if err != nil {
			return nil, err
		}
		if err := s.jobs.AttachJournal(j, encodeCachedResponse, decodeCachedResponse); err != nil {
			j.Close()
			return nil, err
		}
		s.journal = j
	}
	if opts.RecordTrace != "" {
		rec, err := traffic.NewRecorder(opts.RecordTrace, "gpuvard live capture")
		if err != nil {
			if s.journal != nil {
				s.journal.Close()
			}
			return nil, err
		}
		s.recorder = rec
	}
	if len(opts.Peers) > 0 {
		pol, err := dispatch.ParsePolicy(opts.RoutePolicy)
		if err != nil {
			return nil, err
		}
		d, err := dispatch.New(dispatch.Options{
			Self:          opts.SelfURL,
			Peers:         opts.Peers,
			Policy:        pol,
			ProbeInterval: opts.PeerProbeInterval,
		})
		if err != nil {
			return nil, err
		}
		s.dispatcher = d
		d.Start()
	}
	// Routes register from the same table the GET /v1/ discovery
	// document renders, so the served surface and its self-description
	// cannot drift (see discovery.go).
	for _, rt := range s.routes() {
		s.mux.HandleFunc(rt.muxPattern(), rt.handler)
	}
	return s, nil
}

// Close releases the server's persistent resources (the job journal,
// the traffic recorder, and the peer health prober). Safe on a server
// with none of them.
func (s *Server) Close() error {
	if s.dispatcher != nil {
		s.dispatcher.Close()
	}
	var err error
	if s.recorder != nil {
		err = s.recorder.Close()
	}
	if s.journal != nil {
		if jerr := s.journal.Close(); err == nil {
			err = jerr
		}
	}
	return err
}

// journaledResponse is cachedResponse's persistent form (the job
// journal's result payload).
type journaledResponse struct {
	Status      int    `json:"status"`
	ContentType string `json:"content_type"`
	Body        []byte `json:"body"`
}

func encodeCachedResponse(res *cachedResponse) ([]byte, error) {
	if res == nil {
		return nil, errors.New("service: nil response")
	}
	return json.Marshal(journaledResponse{Status: res.status, ContentType: res.contentType, Body: res.body})
}

func decodeCachedResponse(b []byte) (*cachedResponse, error) {
	var jr journaledResponse
	if err := json.Unmarshal(b, &jr); err != nil {
		return nil, err
	}
	if jr.Status == 0 {
		return nil, errors.New("service: journaled response missing status")
	}
	return &cachedResponse{status: jr.Status, contentType: jr.ContentType, body: jr.Body}, nil
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every response — routed or not — carries the request's ID (echoed
	// when the client sent a well-formed one, generated otherwise) and
	// runs with the derived client identity on its context.
	w.Header().Set("X-Request-ID", requestID(r))
	r = r.WithContext(withClientID(r.Context(), deriveClient(r)))
	if s.recorder != nil {
		s.serveRecorded(w, r)
		return
	}
	s.serveRouted(w, r)
}

// serveRouted dispatches to the route table, answering unmatched
// requests with the API's JSON error envelope.
func (s *Server) serveRouted(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		// No route matched: net/http would answer plain text. Run the
		// mux's own fallback against a throwaway recorder to learn what it
		// decided (404, or 405 with an Allow set), then answer with that
		// status in the same JSON error envelope as every other non-2xx
		// response on this API.
		h, _ := s.mux.Handler(r)
		var rec statusRecorder
		rec.h = http.Header{}
		h.ServeHTTP(&rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusNotFound
		}
		if allow := rec.h.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		if status == http.StatusMethodNotAllowed {
			writeError(w, status, "method_not_allowed", "method %s not allowed for %s", r.Method, r.URL.Path)
		} else {
			writeError(w, status, "unknown_route", "unknown route %s %s", r.Method, r.URL.Path)
		}
		return
	}
	s.mux.ServeHTTP(w, r)
}

// clientIDKey carries the request's derived client identity through the
// context to the job queue and the per-client counters.
type clientIDKey struct{}

func withClientID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, clientIDKey{}, id)
}

// requestClient returns the context's client identity ("anonymous" when
// the request did not pass through ServeHTTP, e.g. in direct handler
// tests).
func requestClient(ctx context.Context) string {
	if id, ok := ctx.Value(clientIDKey{}).(string); ok && id != "" {
		return id
	}
	return "anonymous"
}

// deriveClient maps a request to its client identity: the X-API-Key
// header when present (the multi-tenant spelling), else the remote
// host. The identity is a fairness and accounting key, not an
// authentication boundary.
func deriveClient(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return sanitizeClientID(key)
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil && host != "" {
		return host
	}
	if r.RemoteAddr != "" {
		return r.RemoteAddr
	}
	return "anonymous"
}

// sanitizeClientID bounds an API key's length and character set so it
// is safe as a JSON value, a Prometheus label, and a log token.
func sanitizeClientID(key string) string {
	const maxLen = 64
	var b strings.Builder
	for _, r := range key {
		if b.Len() >= maxLen {
			break
		}
		if r > 0x20 && r < 0x7f {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "anonymous"
	}
	return b.String()
}

// requestID echoes a well-formed client-supplied X-Request-ID (ASCII
// printable, at most 128 bytes) or mints a fresh one, so every response
// is traceable whether or not the client participates.
func requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-ID"); id != "" && len(id) <= 128 {
		ok := true
		for i := 0; i < len(id); i++ {
			if id[i] <= 0x20 || id[i] >= 0x7f {
				ok = false
				break
			}
		}
		if ok {
			return id
		}
	}
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "r-unavailable"
	}
	return "r" + hex.EncodeToString(buf[:])
}

// statusRecorder captures the status and headers the mux's fallback
// handler would have sent, discarding its plain-text body.
type statusRecorder struct {
	h      http.Header
	status int
}

func (r *statusRecorder) Header() http.Header { return r.h }
func (r *statusRecorder) WriteHeader(status int) {
	if r.status == 0 {
		r.status = status
	}
}
func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return len(b), nil
}

// CacheStats exposes the response-cache counters (used by tests and the
// stats endpoint).
func (s *Server) CacheStats() CacheStats { return s.cache.Stats() }

// errorBody is the JSON error envelope of every non-2xx response: a
// human-readable message plus a stable machine-readable code clients
// can branch on without parsing prose.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// writeError is the single writer of every non-2xx response body. Codes
// are part of the API surface — stable snake_case identifiers such as
// queue_full, client_queue_full, job_not_found, job_not_ready, bad_axis,
// bad_request, not_found, method_not_allowed, unknown_route,
// deadline_exceeded, canceled, gone, internal.
func writeError(w http.ResponseWriter, status int, code string, format string, args ...any) {
	if code == "" {
		code = codeForStatus(status)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(errorBody{Error: fmt.Sprintf(format, args...), Code: code})
}

// codeForStatus maps an HTTP status to its default error code, for
// paths where no more specific code applies.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMisdirectedRequest:
		return "wrong_replica"
	case http.StatusBadGateway:
		return "replica_unavailable"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusGone:
		return "gone"
	case http.StatusTooManyRequests:
		return "queue_full"
	case statusClientClosedRequest:
		return "canceled"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "error"
	}
}

// codedError attaches a stable error code to a validation failure so
// the handler that eventually writes it can surface a more specific
// code than the status default (e.g. bad_axis instead of bad_request).
type codedError struct {
	code string
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

func withCode(code string, err error) error { return &codedError{code: code, err: err} }

// errCode resolves an error's code: an explicit codedError wins, else
// the status default.
func errCode(err error, status int) string {
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return codeForStatus(status)
}

// statusError carries an HTTP status through the cache's error path,
// letting a computation classify its own failure (e.g. a bad injection
// node is the client's mistake, not a server fault).
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer" — no standard code exists. loadgen
// counts it (and 504) as aborted rather than failed.
const statusClientClosedRequest = 499

// requestContext derives the per-request compute context: the client's
// context (so a disconnect cancels the work) bounded by the server's
// request timeout, carrying the replica dispatcher when one is
// configured.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := s.dispatchContext(r)
	if s.opts.RequestTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.opts.RequestTimeout)
}

// dispatchContext attaches the replica dispatcher — and the request's
// remote-only routing directive — to the compute context. Context
// values survive into the singleflight's detached flight context and
// the streaming path, so coalesced and streamed computations dispatch
// exactly like direct ones. (Async jobs run under the job manager's own
// context; handleJobSubmit re-attaches at the compute closure.)
func (s *Server) dispatchContext(r *http.Request) context.Context {
	ctx := r.Context()
	if s.dispatcher == nil {
		return ctx
	}
	ctx = dispatch.NewContext(ctx, s.dispatcher)
	if r.Header.Get(routeDirectiveHeader) == routeRemote {
		ctx = dispatch.WithRemoteOnly(ctx)
	}
	return ctx
}

// serveCached runs one computation through the response cache and
// replays the result, tagging it with an X-Cache header (hit, miss, or
// coalesced) so clients and the load generator can tell the layers
// apart. The computation runs under the request's deadline-bounded
// context; if it is cut short, the request answers 504 (deadline) or
// 499 (client disconnect) while the shared flight lives on for any
// remaining waiters. A compute error returning a *statusError keeps its
// status; anything else is a 500.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key string, compute func(ctx context.Context) (*cachedResponse, error)) {
	// Warm keys replay without paying for a deadline context.
	if res, ok := s.cache.lookup(key); ok {
		w.Header().Set("Content-Type", res.contentType)
		w.Header().Set("X-Cache", "hit")
		w.WriteHeader(res.status)
		_, _ = w.Write(res.body)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	res, state, err := s.cache.do(ctx, key, compute)
	if err != nil {
		status := http.StatusInternalServerError
		msg := err.Error()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
			msg = fmt.Sprintf("computation exceeded the request deadline (%s)", s.opts.RequestTimeout)
		case errors.Is(err, context.Canceled):
			status = statusClientClosedRequest
			msg = "request canceled"
		default:
			var se *statusError
			if errors.As(err, &se) {
				status, msg = se.status, se.err.Error()
			}
		}
		code := errCode(err, status)
		// Degraded serving: a server-side failure (5xx) of a key whose
		// last good bytes still sit in the stale store answers those bytes
		// instead — the computation is pure, so "stale" is merely
		// "evicted", not "wrong". Client errors (4xx) and cancellations
		// (499) stay errors: the stale bytes are not what that client is
		// owed.
		if status >= 500 {
			if stale, ok := s.cache.staleLookup(key); ok {
				s.degradedServes.Add(1)
				s.lastDegraded.Store(time.Now().UnixNano())
				w.Header().Set("Content-Type", stale.contentType)
				w.Header().Set("X-Cache", "stale")
				w.Header().Set("X-Degraded", "stale")
				w.WriteHeader(stale.status)
				_, _ = w.Write(stale.body)
				return
			}
		}
		writeError(w, status, code, "%s", msg)
		return
	}
	w.Header().Set("Content-Type", res.contentType)
	w.Header().Set("X-Cache", state)
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// jsonResponse marshals v into a cacheable 200 response.
func jsonResponse(v any) (*cachedResponse, error) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return &cachedResponse{
		status:      http.StatusOK,
		contentType: "application/json",
		body:        append(body, '\n'),
	}, nil
}

// figureInfo is one catalog row.
type figureInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

func (s *Server) handleFigureList(w http.ResponseWriter, r *http.Request) {
	s.serveCached(w, r, "figures-list", func(context.Context) (*cachedResponse, error) {
		gens := figures.AllWithExtensions()
		out := make([]figureInfo, len(gens))
		for i, g := range gens {
			out[i] = figureInfo{ID: g.ID, Title: g.Title}
		}
		return jsonResponse(struct {
			Figures []figureInfo `json:"figures"`
		}{out})
	})
}

// figureResponse is one rendered figure.
type figureResponse struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Config figures.Config `json:"config"`
	Output string         `json:"output"`
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	g, ok := figures.Lookup(id)
	if !ok {
		known := figures.IDs()
		sort.Strings(known)
		writeError(w, http.StatusNotFound, "unknown_figure", "unknown figure id %q (known: %v)", id, known)
		return
	}
	cfg, err := s.figureConfig(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	key := fmt.Sprintf("figure|%s|%+v", id, cfg)
	s.serveCached(w, r, key, func(ctx context.Context) (*cachedResponse, error) {
		var buf bytes.Buffer
		if err := figures.Generate(ctx, id, s.sessions.get(cfg), &buf); err != nil {
			return nil, err
		}
		return jsonResponse(figureResponse{
			ID:     id,
			Title:  g.Title,
			Config: cfg,
			Output: buf.String(),
		})
	})
}

// figureConfig builds the request's normalized figure config: server
// defaults overridden field-by-field from the query string.
func (s *Server) figureConfig(r *http.Request) (figures.Config, error) {
	cfg := s.opts.Figures
	q := r.URL.Query()
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("bad seed %q: %v", v, err)
		}
		cfg.Seed = n
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{
		{"iterations", &cfg.Iterations},
		{"ml_iterations", &cfg.MLIterations},
		{"runs", &cfg.Runs},
	} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("bad %s %q: want a positive integer", p.name, v)
			}
			*p.dst = n
		}
	}
	if v := q.Get("summit_fraction"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 || f > 1 {
			return cfg, fmt.Errorf("bad summit_fraction %q: want 0 < f <= 1", v)
		}
		cfg.SummitFraction = f
	}
	return cfg.Normalized(), nil
}

// statsResponse is the observability snapshot: response-cache counters
// (hit/miss/coalesced/aborted, in-flight flights), live sessions, the
// execution engine's job/shard progress, the async-job manager's
// lifecycle counters, and the fleet cache's occupancy/eviction counters
// — enough for loadgen and ops to see what the server is computing
// right now and what memory the caches hold.
type statsResponse struct {
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Cache         CacheStats              `json:"cache"`
	Sessions      int                     `json:"sessions"`
	Engine        engine.Stats            `json:"engine"`
	Jobs          jobs.Stats              `json:"jobs"`
	FleetCache    cluster.FleetCacheStats `json:"fleet_cache"`
	Estimate      estimate.Stats          `json:"estimate"`
	// DegradedServes counts responses answered from the stale store
	// after a compute failure (the X-Degraded: stale responses); Faults
	// lists the armed fault-injection sites with their trigger counters
	// (absent in normal serving).
	DegradedServes uint64             `json:"degraded_serves"`
	Faults         []faults.SiteStats `json:"faults,omitempty"`
	// Dispatch is the replica-dispatch counter snapshot (absent in
	// single-process serving).
	Dispatch *dispatch.Stats `json:"dispatch,omitempty"`
	// Traffic is the trace recorder's counter snapshot (absent unless
	// the server was started with -record-trace).
	Traffic *traffic.RecorderStats `json:"traffic,omitempty"`
}

func (s *Server) snapshot() statsResponse {
	out := statsResponse{
		UptimeSeconds:  time.Since(s.started).Seconds(),
		Cache:          s.cache.Stats(),
		Sessions:       s.sessions.len(),
		Engine:         engine.Snapshot(),
		Jobs:           s.jobs.Stats(),
		FleetCache:     cluster.DefaultFleetCache.Stats(),
		Estimate:       estimate.Snapshot(),
		DegradedServes: s.degradedServes.Load(),
		Faults:         faults.Snapshot(),
	}
	if s.dispatcher != nil {
		ds := s.dispatcher.Stats()
		out.Dispatch = &ds
	}
	if s.recorder != nil {
		ts := s.recorder.Stats()
		out.Traffic = &ts
	}
	return out
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.snapshot())
}

// healthzResponse wraps the counters with a liveness bit and the
// serving status: "ok" in normal operation, "degraded" while the
// fault-injection registry is armed (chaos is by definition not normal
// serving) or within degradedWindow of a stale-store serve. Degraded is
// still alive — OK stays true, so orchestration liveness probes do not
// restart a server that is successfully riding out failures.
type healthzResponse struct {
	OK     bool   `json:"ok"`
	Status string `json:"status"`
	statsResponse
}

// degradedWindow is how long a stale serve keeps healthz reporting
// degraded — long enough for a scraper on a coarse interval to see it.
const degradedWindow = 60 * time.Second

func (s *Server) healthStatus() string {
	if faults.Armed() {
		return "degraded"
	}
	if last := s.lastDegraded.Load(); last != 0 && time.Since(time.Unix(0, last)) < degradedWindow {
		return "degraded"
	}
	return "ok"
}

// handleHealthz answers liveness probes and exposes the same counters
// as /v1/stats, so a single probe shows both that the server is up and
// whether the engine is draining or wedged. The legacy unversioned
// /healthz spelling still answers but advertises its successor via the
// Deprecation and Link headers (RFC 8594 style).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/healthz>; rel="successor-version"`)
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(healthzResponse{OK: true, Status: s.healthStatus(), statsResponse: s.snapshot()})
}

// sessionPool is the LRU of live figure sessions, keyed by normalized
// config. Sessions are where experiment results accumulate, so bounding
// them bounds the server's working set; the process-wide fleet cache
// (cluster.DefaultFleetCache) persists across evictions, so a re-created
// session re-runs experiments but never re-instantiates fleets.
type sessionPool struct {
	mu    sync.Mutex
	max   int
	ll    *list.List               // front = most recently used
	byKey map[string]*list.Element // key → element holding *sessionSlot
}

type sessionSlot struct {
	key     string
	session *figures.Session
}

func newSessionPool(max int) *sessionPool {
	if max < 1 {
		max = 1
	}
	return &sessionPool{max: max, ll: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the session for a normalized config, creating (and
// possibly evicting) under the lock — session construction is cheap;
// the expensive work happens inside the session's own singleflight.
func (p *sessionPool) get(cfg figures.Config) *figures.Session {
	key := fmt.Sprintf("%+v", cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.byKey[key]; ok {
		p.ll.MoveToFront(el)
		return el.Value.(*sessionSlot).session
	}
	slot := &sessionSlot{key: key, session: figures.NewSession(cfg)}
	p.byKey[key] = p.ll.PushFront(slot)
	for p.ll.Len() > p.max {
		tail := p.ll.Back()
		p.ll.Remove(tail)
		delete(p.byKey, tail.Value.(*sessionSlot).key)
	}
	return slot.session
}

func (p *sessionPool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}
