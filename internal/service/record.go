package service

import (
	"bytes"
	"io"
	"net/http"

	"gpuvar/internal/traffic"
)

// serveRecorded wraps one request's dispatch with the traffic recorder:
// the request body is captured (and restored for the handler), the
// response flows through a hashing tap, and the finished exchange is
// appended to the trace as one record. Non-replayable routes —
// observability, job polls, the discovery document — are counted but
// not recorded: a trace must replay against a fresh server, and those
// routes' responses depend on run-specific state.
func (s *Server) serveRecorded(w http.ResponseWriter, r *http.Request) {
	kind, replayable := traffic.Classify(r.Method, r.URL.Path)
	if !replayable {
		s.recorder.Skip()
		s.serveRouted(w, r)
		return
	}
	offset := s.recorder.Offset(s.started)
	var body string
	if r.Body != nil {
		b, err := io.ReadAll(r.Body)
		if err != nil {
			// The body never fully arrived; the exchange is not
			// replayable. Serve what we have and skip the record.
			s.recorder.Skip()
			r.Body = io.NopCloser(bytes.NewReader(b))
			s.serveRouted(w, r)
			return
		}
		body = string(b)
		r.Body = io.NopCloser(bytes.NewReader(b))
	}
	tap := traffic.NewTap(w)
	s.serveRouted(tap, r)
	status, sha := tap.Result()
	rec := traffic.Record{
		OffsetUS: offset,
		Client:   requestClient(r.Context()),
		Kind:     kind,
		Method:   r.Method,
		Path:     r.URL.RequestURI(),
		Body:     body,
		Status:   status,
	}
	// The oracle hash only holds for deterministic 200 bodies. A job
	// submission's 202 carries a random job ID (the replayer drives the
	// async lifecycle and hashes the result instead), and error bodies
	// are not worth pinning — the replayer still verifies their status.
	if status == http.StatusOK && kind != traffic.KindJobs {
		rec.SHA256 = sha
	}
	s.recorder.Observe(rec)
}
