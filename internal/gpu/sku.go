// Package gpu models GPU devices at the level that matters for
// power-management variability studies: clock domains, voltage/frequency
// curves, dynamic and leakage power, memory bandwidth, and the per-chip
// manufacturing spread and defect taxonomy that make "identical" SKUs
// behave differently.
//
// The model is deliberately physical rather than curve-fitted: per-chip
// parameters are sampled once (from a seeded stream), and all observable
// variation — equilibrium DVFS frequency under a power cap, temperature,
// power draw — emerges from the interaction of those parameters with the
// controller and cooling models in sibling packages.
package gpu

import "fmt"

// Vendor identifies the GPU vendor, which selects the DVFS style
// (fine-grained stepping for NVIDIA, coarse P-states for AMD).
type Vendor int

// Vendors studied in the paper.
const (
	NVIDIA Vendor = iota
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// SKU describes a GPU product: the nominal, datasheet-level parameters
// shared by every chip of that model. Per-chip deviations live in Chip.
type SKU struct {
	Name   string
	Vendor Vendor

	// Compute configuration.
	NumSMs       int     // streaming multiprocessors / compute units
	MaxClockMHz  float64 // maximum boost clock
	BaseClockMHz float64 // guaranteed base clock
	IdleClockMHz float64 // clock when no kernel is resident
	ClockStepMHz float64 // DVFS granularity for fine-grained vendors

	// PeakSPTFLOPS is the single-precision peak at MaxClockMHz, used to
	// convert kernel FLOP counts into nominal durations.
	PeakSPTFLOPS float64

	// Memory system.
	MemBWGBs float64 // peak DRAM bandwidth
	MemGiB   float64 // device memory capacity

	// Power.
	TDPWatts     float64 // thermal design power (the PM cap)
	IdleWatts    float64 // floor power with clocks parked
	LeakRefWatts float64 // leakage at the 25 °C reference point

	// Voltage curve endpoints: V(f) interpolates VoltMinV at IdleClockMHz
	// to VoltMaxV at MaxClockMHz (chips deviate via Chip.VoltFactor).
	VoltMinV float64
	VoltMaxV float64

	// DynCoeffW is the dynamic-power coefficient A in
	// P_dyn = A · activity · (f/fmax) · (V/Vmax)², expressed in watts at
	// full activity, max clock, max voltage. Chosen above TDP headroom so
	// that compute-saturating kernels are power-limited, as observed on
	// every cluster in the paper.
	DynCoeffW float64

	// VFExponent shapes the V/F curve: V = Vmin + ΔV·frac^e. Real curves
	// are convex (e ≥ 2); Turing's boost region is steeper than Volta's.
	// Zero means the default exponent of 2.
	VFExponent float64

	// Thermal thresholds (°C) from paper §III.
	SlowdownTempC     float64
	ShutdownTempC     float64
	MaxOperatingTempC float64

	// ClockStatesMHz, when non-empty, restricts DVFS to these discrete
	// states (AMD-style coarse P-states). When empty the controller uses
	// ClockStepMHz increments between IdleClockMHz and MaxClockMHz.
	ClockStatesMHz []float64
}

// V100SXM2 returns the NVIDIA Volta V100-SXM2 16 GB SKU used by
// Longhorn, Vortex, Summit, and CloudLab (paper Table I).
//
// Calibration notes: max SM clock 1530 MHz, TDP 300 W, slowdown 87 °C,
// shutdown 90 °C, max operating 83 °C. DynCoeffW is set so a fully
// FU-saturating kernel (SGEMM) exceeds the TDP at max clock and settles
// near 1300–1440 MHz, the range in paper Figs. 2 and 9.
func V100SXM2() *SKU {
	return &SKU{
		Name:              "V100-SXM2",
		Vendor:            NVIDIA,
		NumSMs:            80,
		MaxClockMHz:       1530,
		BaseClockMHz:      1290,
		IdleClockMHz:      135,
		ClockStepMHz:      7.5,
		PeakSPTFLOPS:      15.7,
		MemBWGBs:          900,
		MemGiB:            16,
		TDPWatts:          300,
		IdleWatts:         28,
		LeakRefWatts:      15,
		VoltMinV:          0.712,
		VoltMaxV:          1.043,
		DynCoeffW:         331,
		SlowdownTempC:     87,
		ShutdownTempC:     90,
		MaxOperatingTempC: 83,
	}
}

// MI60 returns the AMD Radeon Instinct MI60 SKU used by Corona.
//
// Max engine clock 1800 MHz, TDP 300 W, coarse P-states (the paper notes
// "the MI60s have coarser frequency levels than the NVIDIA V100s").
// Slowdown 100 °C, shutdown 105 °C, max memory operating 99 °C.
func MI60() *SKU {
	return &SKU{
		Name:         "MI60",
		Vendor:       AMD,
		NumSMs:       64,
		MaxClockMHz:  1800,
		BaseClockMHz: 1200,
		IdleClockMHz: 300,
		ClockStepMHz: 0, // uses ClockStatesMHz
		ClockStatesMHz: []float64{
			300, 700, 930, 1090, 1200, 1283, 1370, 1440, 1530, 1630, 1700, 1800,
		},
		PeakSPTFLOPS:      14.7,
		MemBWGBs:          1024,
		MemGiB:            32,
		TDPWatts:          300,
		IdleWatts:         27,
		LeakRefWatts:      14,
		VoltMinV:          0.725,
		VoltMaxV:          1.081,
		DynCoeffW:         390,
		SlowdownTempC:     100,
		ShutdownTempC:     105,
		MaxOperatingTempC: 99,
	}
}

// RTX5000 returns the NVIDIA Turing Quadro RTX 5000 SKU used by Frontera.
//
// Turing boosts higher than Volta (paper: "Quadro RTX GPUs have a faster
// boost clock") with a lower 230 W TDP. Slowdown 93 °C, shutdown 96 °C,
// max operating 89 °C.
func RTX5000() *SKU {
	return &SKU{
		Name:              "RTX5000",
		Vendor:            NVIDIA,
		NumSMs:            48,
		MaxClockMHz:       1815,
		BaseClockMHz:      1620,
		IdleClockMHz:      300,
		ClockStepMHz:      15,
		PeakSPTFLOPS:      11.2,
		MemBWGBs:          448,
		MemGiB:            16,
		TDPWatts:          230,
		IdleWatts:         22,
		LeakRefWatts:      16,
		VoltMinV:          0.706,
		VoltMaxV:          1.068,
		DynCoeffW:         314,
		VFExponent:        3.5,
		SlowdownTempC:     93,
		ShutdownTempC:     96,
		MaxOperatingTempC: 89,
	}
}

// A100SXM4 returns the NVIDIA Ampere A100-SXM4 40 GB SKU. It is NOT part
// of the paper's clusters; it backs the forward-looking extension study
// motivated by the paper's closing remark that variability "may change
// in future as thermal performance degrades below 14nm": the 7 nm A100
// carries a larger leakage share at a higher 400 W TDP, so the
// temperature↔leakage↔DVFS coupling strengthens relative to the 12 nm
// V100.
func A100SXM4() *SKU {
	return &SKU{
		Name:              "A100-SXM4",
		Vendor:            NVIDIA,
		NumSMs:            108,
		MaxClockMHz:       1410,
		BaseClockMHz:      1095,
		IdleClockMHz:      210,
		ClockStepMHz:      7.5,
		PeakSPTFLOPS:      19.5,
		MemBWGBs:          1555,
		MemGiB:            40,
		TDPWatts:          400,
		IdleWatts:         32,
		LeakRefWatts:      34, // 7 nm: roughly twice the V100's leakage share
		VoltMinV:          0.700,
		VoltMaxV:          1.000,
		DynCoeffW:         492,
		SlowdownTempC:     85,
		ShutdownTempC:     92,
		MaxOperatingTempC: 80,
	}
}

// ClockFloorMHz returns the lowest clock DVFS may select.
func (s *SKU) ClockFloorMHz() float64 {
	if len(s.ClockStatesMHz) > 0 {
		return s.ClockStatesMHz[0]
	}
	return s.IdleClockMHz
}

// QuantizeClock snaps a requested frequency onto the SKU's clock grid:
// the nearest discrete state for coarse-state parts, or the nearest
// step multiple for fine-grained parts. The result is clamped to
// [ClockFloorMHz, MaxClockMHz].
func (s *SKU) QuantizeClock(fMHz float64) float64 {
	if fMHz > s.MaxClockMHz {
		fMHz = s.MaxClockMHz
	}
	if len(s.ClockStatesMHz) > 0 {
		best := s.ClockStatesMHz[0]
		bestDist := abs(fMHz - best)
		for _, st := range s.ClockStatesMHz[1:] {
			if d := abs(fMHz - st); d < bestDist {
				best, bestDist = st, d
			}
		}
		return best
	}
	floor := s.ClockFloorMHz()
	if fMHz < floor {
		return floor
	}
	steps := (fMHz - floor) / s.ClockStepMHz
	return floor + float64(int(steps+0.5))*s.ClockStepMHz
}

// StepDown returns the next clock state strictly below fMHz, or the
// floor if already at or below it.
func (s *SKU) StepDown(fMHz float64) float64 {
	if len(s.ClockStatesMHz) > 0 {
		prev := s.ClockStatesMHz[0]
		for _, st := range s.ClockStatesMHz {
			if st >= fMHz-1e-9 {
				break
			}
			prev = st
		}
		return prev
	}
	f := s.QuantizeClock(fMHz) - s.ClockStepMHz
	if floor := s.ClockFloorMHz(); f < floor {
		return floor
	}
	return f
}

// StepUp returns the next clock state strictly above fMHz, or
// MaxClockMHz if already at or above it.
func (s *SKU) StepUp(fMHz float64) float64 {
	if len(s.ClockStatesMHz) > 0 {
		for _, st := range s.ClockStatesMHz {
			if st > fMHz+1e-9 {
				return st
			}
		}
		return s.ClockStatesMHz[len(s.ClockStatesMHz)-1]
	}
	f := s.QuantizeClock(fMHz) + s.ClockStepMHz
	if f > s.MaxClockMHz {
		return s.MaxClockMHz
	}
	return f
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
