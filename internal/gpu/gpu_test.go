package gpu

import (
	"math"
	"testing"
	"testing/quick"

	"gpuvar/internal/rng"
)

var sgemmAct = Activity{Compute: 1.0, Memory: 0.6}

func TestSKUCatalog(t *testing.T) {
	for _, s := range []*SKU{V100SXM2(), MI60(), RTX5000()} {
		if s.TDPWatts <= 0 || s.MaxClockMHz <= s.IdleClockMHz {
			t.Errorf("%s: implausible datasheet values %+v", s.Name, s)
		}
		if s.SlowdownTempC >= s.ShutdownTempC {
			t.Errorf("%s: slowdown %v >= shutdown %v", s.Name, s.SlowdownTempC, s.ShutdownTempC)
		}
	}
}

func TestPaperThermalThresholds(t *testing.T) {
	// Paper §III: V100 shutdown/slowdown/max-operating = 90/87/83 °C,
	// MI60 = 105/100/99, RTX 5000 = 96/93/89.
	v := V100SXM2()
	if v.ShutdownTempC != 90 || v.SlowdownTempC != 87 || v.MaxOperatingTempC != 83 {
		t.Errorf("V100 thresholds wrong: %v/%v/%v", v.ShutdownTempC, v.SlowdownTempC, v.MaxOperatingTempC)
	}
	m := MI60()
	if m.ShutdownTempC != 105 || m.SlowdownTempC != 100 {
		t.Errorf("MI60 thresholds wrong: %v/%v", m.ShutdownTempC, m.SlowdownTempC)
	}
	r := RTX5000()
	if r.ShutdownTempC != 96 || r.SlowdownTempC != 93 {
		t.Errorf("RTX5000 thresholds wrong: %v/%v", r.ShutdownTempC, r.SlowdownTempC)
	}
}

func TestPaperClockAndTDP(t *testing.T) {
	// Paper §III: 1530 MHz / 300 W for V100, 1800 MHz / 300 W for MI60,
	// 230 W TDP for RTX 5000.
	if v := V100SXM2(); v.MaxClockMHz != 1530 || v.TDPWatts != 300 {
		t.Errorf("V100 = %v MHz / %v W", v.MaxClockMHz, v.TDPWatts)
	}
	if m := MI60(); m.MaxClockMHz != 1800 || m.TDPWatts != 300 {
		t.Errorf("MI60 = %v MHz / %v W", m.MaxClockMHz, m.TDPWatts)
	}
	if r := RTX5000(); r.TDPWatts != 230 {
		t.Errorf("RTX5000 TDP = %v W", r.TDPWatts)
	}
}

func TestQuantizeClockFine(t *testing.T) {
	s := V100SXM2()
	if f := s.QuantizeClock(1337); math.Mod(f-s.IdleClockMHz, s.ClockStepMHz) != 0 {
		t.Errorf("quantized clock %v not on step grid", f)
	}
	if f := s.QuantizeClock(99999); f != s.MaxClockMHz {
		t.Errorf("over-max not clamped: %v", f)
	}
	if f := s.QuantizeClock(0); f != s.IdleClockMHz {
		t.Errorf("under-floor not clamped: %v", f)
	}
}

func TestQuantizeClockCoarse(t *testing.T) {
	s := MI60()
	if f := s.QuantizeClock(1400); f != 1370 && f != 1440 {
		t.Errorf("coarse quantize gave %v, want a neighbor state", f)
	}
	if f := s.QuantizeClock(5000); f != 1800 {
		t.Errorf("over-max coarse: %v", f)
	}
}

func TestStepDownUp(t *testing.T) {
	s := V100SXM2()
	f := s.MaxClockMHz
	down := s.StepDown(f)
	if down >= f {
		t.Fatalf("StepDown(%v) = %v", f, down)
	}
	if up := s.StepUp(down); up != f {
		t.Fatalf("StepUp(StepDown(max)) = %v, want %v", up, f)
	}
	// At floor, StepDown stays at floor.
	if d := s.StepDown(s.ClockFloorMHz()); d != s.ClockFloorMHz() {
		t.Fatalf("StepDown at floor moved to %v", d)
	}
	// At max, StepUp stays at max.
	if u := s.StepUp(s.MaxClockMHz); u != s.MaxClockMHz {
		t.Fatalf("StepUp at max moved to %v", u)
	}
}

func TestStepDownUpCoarse(t *testing.T) {
	s := MI60()
	if d := s.StepDown(1440); d != 1370 {
		t.Fatalf("MI60 StepDown(1440) = %v", d)
	}
	if u := s.StepUp(1370); u != 1440 {
		t.Fatalf("MI60 StepUp(1370) = %v", u)
	}
	if d := s.StepDown(300); d != 300 {
		t.Fatalf("MI60 StepDown at floor = %v", d)
	}
}

func TestNewChipNoSpread(t *testing.T) {
	c := NewChip(V100SXM2(), "g0", VariationModel{}, rng.New(1))
	if c.VoltFactor != 1 || c.LeakFactor != 1 || c.MemBWFac != 1 {
		t.Fatalf("zero spread should give unit factors: %+v", c)
	}
	if !c.Healthy() {
		t.Fatal("new chip should be healthy")
	}
}

func TestNewChipDeterministic(t *testing.T) {
	vm := DefaultVariation()
	a := NewChip(V100SXM2(), "g0", vm, rng.New(42))
	b := NewChip(V100SXM2(), "g0", vm, rng.New(42))
	if a.VoltFactor != b.VoltFactor || a.LeakFactor != b.LeakFactor {
		t.Fatal("same seed should give same chip")
	}
}

func TestChipSpreadStatistics(t *testing.T) {
	vm := DefaultVariation()
	parent := rng.New(7)
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		c := NewChip(V100SXM2(), "g", vm, parent.SplitIndex("chip", i))
		sum += c.VoltFactor
		sumSq += c.VoltFactor * c.VoltFactor
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-1) > 0.005 {
		t.Errorf("VoltFactor mean = %v", mean)
	}
	if math.Abs(sd-vm.VoltSpread) > 0.005 {
		t.Errorf("VoltFactor spread = %v, want ~%v", sd, vm.VoltSpread)
	}
}

func TestVoltageMonotoneInFreq(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	prev := -1.0
	for f := c.SKU.IdleClockMHz; f <= c.SKU.MaxClockMHz; f += 100 {
		v := c.Voltage(f)
		if v <= prev {
			t.Fatalf("voltage not increasing at %v MHz: %v <= %v", f, v, prev)
		}
		prev = v
	}
}

func TestWorseChipNeedsMoreVoltage(t *testing.T) {
	good := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	bad := NewChip(V100SXM2(), "b", VariationModel{}, nil)
	bad.VoltFactor = 1.05
	if bad.Voltage(1400) <= good.Voltage(1400) {
		t.Fatal("higher VoltFactor should need more voltage")
	}
	if bad.DynamicPower(1400, sgemmAct) <= good.DynamicPower(1400, sgemmAct) {
		t.Fatal("worse chip should draw more dynamic power at same clock")
	}
}

func TestDynamicPowerMonotone(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	if c.DynamicPower(1000, sgemmAct) >= c.DynamicPower(1500, sgemmAct) {
		t.Fatal("dynamic power should grow with frequency")
	}
	lowAct := Activity{Compute: 0.2, Memory: 0.2}
	if c.DynamicPower(1500, lowAct) >= c.DynamicPower(1500, sgemmAct) {
		t.Fatal("dynamic power should grow with activity")
	}
}

func TestLeakageGrowsWithTemp(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	if c.LeakagePower(80) <= c.LeakagePower(40) {
		t.Fatal("leakage should grow with temperature")
	}
	if c.LeakagePower(25) != c.SKU.LeakRefWatts {
		t.Fatalf("leakage at 25C should be the reference: %v", c.LeakagePower(25))
	}
}

func TestSGEMMIsPowerLimitedOnV100(t *testing.T) {
	// A fully compute-saturating kernel must exceed the TDP at max clock
	// (otherwise no DVFS throttling, contradicting every figure in §IV).
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	p := c.TotalPower(c.SKU.MaxClockMHz, 60, sgemmAct)
	if p <= c.SKU.TDPWatts {
		t.Fatalf("SGEMM at max clock draws %v W <= TDP %v W; must be power-limited", p, c.SKU.TDPWatts)
	}
}

func TestMemoryBoundStaysUnderTDP(t *testing.T) {
	// LAMMPS-like activity: high DRAM, low FU. Paper §V-C: median power
	// ≤ 180 W on a 300 W V100.
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	act := Activity{Compute: 0.22, Memory: 0.9}
	p := c.TotalPower(c.SKU.MaxClockMHz, 55, act)
	if p > 220 {
		t.Fatalf("memory-bound power %v W too high; should sit well under TDP", p)
	}
	if p < 100 {
		t.Fatalf("memory-bound power %v W implausibly low", p)
	}
}

func TestMaxClockUnderCapEquilibriumRange(t *testing.T) {
	// The nominal V100 running SGEMM at typical air-cooled temperature
	// must settle in the paper's observed 1300–1460 MHz band (Fig. 2).
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	f, p := c.MaxClockUnderCap(300, 66, sgemmAct)
	if f < 1300 || f > 1460 {
		t.Fatalf("SGEMM equilibrium clock %v MHz outside paper band", f)
	}
	if p > 300 {
		t.Fatalf("equilibrium power %v exceeds cap", p)
	}
	if p < 280 {
		t.Fatalf("equilibrium power %v too far below cap; DVFS should run near TDP", p)
	}
}

func TestHotterChipSettlesLower(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	fCool, _ := c.MaxClockUnderCap(300, 45, sgemmAct)
	fHot, _ := c.MaxClockUnderCap(300, 80, sgemmAct)
	if fHot >= fCool {
		t.Fatalf("hot chip should throttle lower: hot %v vs cool %v", fHot, fCool)
	}
}

func TestWorseChipSettlesLower(t *testing.T) {
	good := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	bad := NewChip(V100SXM2(), "b", VariationModel{}, nil)
	bad.VoltFactor = 1.05
	fGood, _ := good.MaxClockUnderCap(300, 60, sgemmAct)
	fBad, _ := bad.MaxClockUnderCap(300, 60, sgemmAct)
	if fBad >= fGood {
		t.Fatalf("worse chip should settle lower: %v vs %v", fBad, fGood)
	}
}

func TestLowerCapSettlesLower(t *testing.T) {
	// Paper §VI-B: lowering the power limit lowers clocks and increases
	// variability.
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	f300, _ := c.MaxClockUnderCap(300, 55, sgemmAct)
	f150, _ := c.MaxClockUnderCap(150, 55, sgemmAct)
	if f150 >= f300 {
		t.Fatalf("150 W cap should clock lower than 300 W: %v vs %v", f150, f300)
	}
}

func TestMaxClockUnderCapFloorBehavior(t *testing.T) {
	// With an absurdly low cap the clock hits the floor and power may
	// exceed the cap (the part cannot halt); must not loop forever.
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	f, _ := c.MaxClockUnderCap(5, 60, sgemmAct)
	if f != c.SKU.ClockFloorMHz() {
		t.Fatalf("tiny cap should pin at floor, got %v", f)
	}
}

func TestDefectStall(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	c.InjectDefect(DefectStall, rng.New(3))
	if c.VoltFactor < 1.03 || c.VoltFactor > 1.10 {
		t.Fatalf("stall V/F penalty out of range: %v", c.VoltFactor)
	}
	if c.Healthy() {
		t.Fatal("defective chip reports healthy")
	}
	// The sick chip stays ON the frequency-performance line: it settles
	// at a visibly lower clock under the power cap than a healthy chip.
	healthy := NewChip(V100SXM2(), "h", VariationModel{}, nil)
	fSick, _ := c.MaxClockUnderCap(300, 60, Activity{Compute: 1, Memory: 0.6})
	fOK, _ := healthy.MaxClockUnderCap(300, 60, Activity{Compute: 1, Memory: 0.6})
	if fSick >= fOK-30 {
		t.Fatalf("sick chip clock %v not visibly below healthy %v", fSick, fOK)
	}
}

func TestDefectPowerBrake(t *testing.T) {
	// Summit row-H signature (Appendix B): the brake pins the clock near
	// 1312 MHz; power then varies per chip (250–285 W on a 300 W part)
	// while runtime is nearly identical across braked chips.
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	c.InjectDefect(DefectPowerBrake, rng.New(4))
	pin := c.MaxUsableClockMHz()
	if pin < 1290 || pin > 1345 {
		t.Fatalf("brake pin %v MHz outside the ~1312 MHz band", pin)
	}
	f, p := c.MaxClockUnderCap(c.PowerCapW(0), 50, sgemmAct)
	if f != pin {
		t.Fatalf("braked chip should sit at its pin: %v vs %v", f, pin)
	}
	if p < 240 || p > 295 {
		t.Fatalf("braked chip power %v outside the 250-285 W outlier band", p)
	}
	healthy := NewChip(V100SXM2(), "h", VariationModel{}, nil)
	fh, _ := healthy.MaxClockUnderCap(300, 50, sgemmAct)
	if f >= fh {
		t.Fatalf("braked chip should clock below healthy: %v vs %v", f, fh)
	}
}

func TestDefectClockStuck(t *testing.T) {
	c := NewChip(RTX5000(), "g", VariationModel{}, nil)
	c.InjectDefect(DefectClockStuck, rng.New(5))
	if c.MaxUsableClockMHz() >= 0.75*c.SKU.MaxClockMHz {
		t.Fatalf("stuck clock too high: %v", c.MaxUsableClockMHz())
	}
	// Frontera c197 signature: slower AND lower power AND cooler.
	healthy := NewChip(RTX5000(), "h", VariationModel{}, nil)
	pStuck := c.TotalPower(c.MaxUsableClockMHz(), 60, sgemmAct)
	pHealthy := healthy.TotalPower(healthy.SKU.MaxClockMHz, 60, sgemmAct)
	if pStuck >= pHealthy {
		t.Fatalf("stuck chip should draw less power: %v vs %v", pStuck, pHealthy)
	}
}

func TestDefectCooling(t *testing.T) {
	c := NewChip(MI60(), "g", VariationModel{}, nil)
	c.InjectDefect(DefectCooling, rng.New(6))
	if c.ThermalResistFactor < 1.5 {
		t.Fatalf("cooling defect too mild: %v", c.ThermalResistFactor)
	}
}

func TestDefectReset(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	c.InjectDefect(DefectPowerBrake, rng.New(7))
	c.InjectDefect(DefectNone, rng.New(7))
	if c.BoardCapW != c.SKU.TDPWatts || !c.Healthy() {
		t.Fatal("DefectNone should reset the chip")
	}
}

func TestPowerCapAdminLimit(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	if got := c.PowerCapW(0); got != 300 {
		t.Fatalf("default cap = %v", got)
	}
	if got := c.PowerCapW(150); got != 150 {
		t.Fatalf("admin cap ignored: %v", got)
	}
	if got := c.PowerCapW(500); got != 300 {
		t.Fatalf("admin cap above TDP should not raise the limit: %v", got)
	}
}

func TestActivityClamped(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	p1 := c.DynamicPower(1500, Activity{Compute: 5, Memory: 5})
	p2 := c.DynamicPower(1500, Activity{Compute: 1, Memory: 1})
	if p1 != p2 {
		t.Fatal("activity above 1 should clamp")
	}
	if p := c.DynamicPower(1500, Activity{Compute: -1, Memory: -1}); p != 0 {
		t.Fatalf("negative activity should clamp to zero power: %v", p)
	}
}

// Property: quantized clocks round-trip (quantizing a quantized value is
// the identity) for both fine and coarse SKUs.
func TestQuantizeIdempotentProperty(t *testing.T) {
	skus := []*SKU{V100SXM2(), MI60(), RTX5000()}
	f := func(seed uint64, which uint8) bool {
		s := skus[int(which)%len(skus)]
		r := rng.New(seed)
		fMHz := r.Float64() * 2200
		q := s.QuantizeClock(fMHz)
		return s.QuantizeClock(q) == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MaxClockUnderCap respects the cap whenever the returned clock
// is above the floor.
func TestCapRespectedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := NewChip(V100SXM2(), "g", DefaultVariation(), r)
		capW := 100 + r.Float64()*250
		temp := 30 + r.Float64()*50
		fMHz, p := c.MaxClockUnderCap(capW, temp, sgemmAct)
		if fMHz > c.SKU.ClockFloorMHz() {
			return p <= capW+1e-9
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkMaxClockUnderCap(b *testing.B) {
	c := NewChip(V100SXM2(), "g", DefaultVariation(), rng.New(1))
	for i := 0; i < b.N; i++ {
		_, _ = c.MaxClockUnderCap(300, 60, sgemmAct)
	}
}

func TestA100SKU(t *testing.T) {
	a := A100SXM4()
	if a.TDPWatts != 400 || a.MaxClockMHz != 1410 {
		t.Fatalf("A100 datasheet wrong: %v W / %v MHz", a.TDPWatts, a.MaxClockMHz)
	}
	// The 7nm part's leakage share exceeds the 12nm V100's.
	v := V100SXM2()
	if a.LeakRefWatts/a.TDPWatts <= v.LeakRefWatts/v.TDPWatts {
		t.Fatal("A100 should carry a larger leakage share than V100")
	}
	// SGEMM must be power-limited on it too.
	c := NewChip(a, "g", VariationModel{}, nil)
	if p := c.TotalPower(a.MaxClockMHz, 60, sgemmAct); p <= a.TDPWatts {
		t.Fatalf("A100 SGEMM at max clock draws %v W <= TDP", p)
	}
}
