package gpu

import (
	"fmt"

	"gpuvar/internal/rng"
)

// DefectKind classifies the rare per-chip pathologies that produce the
// outlier signatures observed in the paper's clusters. DefectNone chips
// still vary through the continuous manufacturing spread.
type DefectKind int

// Defect taxonomy, each mapped to the cluster where the paper observed
// its signature.
const (
	// DefectNone: only the continuous V/F-curve, leakage, and bandwidth
	// spread that every chip has.
	DefectNone DefectKind = iota

	// DefectStall: a chronically sick node — far-bad-tail V/F quality
	// (low power-capped clocks) plus a starved host input pipeline
	// (Longhorn cabinet c002; the ResNet-50 stragglers at 76 W and
	// 1530 MHz, paper §V-A).
	DefectStall

	// DefectPowerBrake: firmware/board-level power cap below TDP. The
	// chip pins at a reduced clock, draws well under the cap, and shows
	// no temperature anomaly (Summit row-H outliers: 2510 ms at
	// 250–285 W, frequency locked near 1312 MHz, paper Appendix B).
	DefectPowerBrake

	// DefectCooling: degraded thermal path (clogged heatsink, failed
	// airflow). Runs hot, thermally throttles (Corona node c115 at
	// 99 °C and 165 W, paper §IV-D).
	DefectCooling

	// DefectClockStuck: clock locked at a low state — slower, cooler,
	// and lower power all at once (Frontera cabinet c197: 1100–1600 ms
	// slower, 16 °C cooler, 59 W below median, paper §IV-F).
	DefectClockStuck
)

// String returns a short label for the defect kind.
func (d DefectKind) String() string {
	switch d {
	case DefectNone:
		return "none"
	case DefectStall:
		return "stall"
	case DefectPowerBrake:
		return "power-brake"
	case DefectCooling:
		return "cooling"
	case DefectClockStuck:
		return "clock-stuck"
	default:
		return fmt.Sprintf("DefectKind(%d)", int(d))
	}
}

// VariationModel holds the distribution parameters for the continuous
// manufacturing spread. Zero value means "no spread" (useful in tests).
type VariationModel struct {
	// VoltSpread is the coefficient of variation of the chip-quality
	// factor that scales the voltage needed for a given frequency.
	// This is the dominant knob: it sets the spread of power-capped
	// equilibrium frequencies (~2.5% → ~100 MHz on V100).
	VoltSpread float64
	// LeakSpread is the coefficient of variation of leakage power.
	LeakSpread float64
	// MemBWSpread is the coefficient of variation of effective memory
	// bandwidth; it bounds the perf variation of memory-bound workloads
	// (paper: ~1% for LAMMPS and PageRank).
	MemBWSpread float64
}

// DefaultVariation returns the calibration used for all paper
// reproductions (DESIGN.md §4).
func DefaultVariation() VariationModel {
	return VariationModel{
		VoltSpread:  0.016,
		LeakSpread:  0.10,
		MemBWSpread: 0.004,
	}
}

// Chip is one physical GPU: a SKU plus its manufacturing deviations and
// (rarely) a defect. Chips are immutable after creation; runtime state
// lives in the simulator.
type Chip struct {
	SKU *SKU
	ID  string

	// Continuous manufacturing spread (all ~1.0).
	VoltFactor float64 // scales the V(f) curve; >1 is a "worse" chip
	LeakFactor float64 // scales leakage power
	MemBWFac   float64 // scales effective memory bandwidth

	// Defect state.
	Defect DefectKind
	// ComputeEff scales effective compute throughput (<1 for
	// DefectStall; 1 otherwise).
	ComputeEff float64
	// BoardCapW is the enforced power cap; equals SKU.TDPWatts unless
	// DefectPowerBrake lowers it.
	BoardCapW float64
	// ClockCapMHz bounds the highest clock DVFS may select; equals
	// SKU.MaxClockMHz unless DefectClockStuck lowers it.
	ClockCapMHz float64
	// ThermalResistFactor scales the cooling model's thermal resistance;
	// >1 for DefectCooling.
	ThermalResistFactor float64

	// defectGen counts InjectDefect applications. Steady-state caches
	// keyed on a chip use it to invalidate solutions when a defect lands
	// mid-stream (campaign injections).
	defectGen uint32
}

// NewChip samples a chip from the SKU's manufacturing distribution.
// The same (SKU, id, stream) always produces the same chip.
func NewChip(sku *SKU, id string, vm VariationModel, r *rng.Source) *Chip {
	c := &Chip{
		SKU:                 sku,
		ID:                  id,
		VoltFactor:          1,
		LeakFactor:          1,
		MemBWFac:            1,
		ComputeEff:          1,
		BoardCapW:           sku.TDPWatts,
		ClockCapMHz:         sku.MaxClockMHz,
		ThermalResistFactor: 1,
	}
	if r != nil {
		if vm.VoltSpread > 0 {
			c.VoltFactor = r.LogNormalMeanSpread(1, vm.VoltSpread)
		}
		if vm.LeakSpread > 0 {
			c.LeakFactor = r.LogNormalMeanSpread(1, vm.LeakSpread)
		}
		if vm.MemBWSpread > 0 {
			c.MemBWFac = r.LogNormalMeanSpread(1, vm.MemBWSpread)
		}
	}
	return c
}

// InjectDefect applies a defect with severity sampled from r. Severity
// ranges are calibrated to the outlier magnitudes reported in the paper.
func (c *Chip) InjectDefect(kind DefectKind, r *rng.Source) {
	c.Defect = kind
	c.defectGen++
	switch kind {
	case DefectNone:
		// Reset to healthy.
		c.ComputeEff = 1
		c.BoardCapW = c.SKU.TDPWatts
		c.ClockCapMHz = c.SKU.MaxClockMHz
		c.ThermalResistFactor = 1
	case DefectStall:
		// A chronically sick node. Two coupled symptoms, matching the
		// paper's c002 signature: (1) the chip's V/F curve is at the far
		// bad tail, so power-capped workloads settle at visibly lower
		// clocks — yet stay ON the frequency-performance line, which is
		// why Longhorn's SGEMM correlation stays near −0.97 even with
		// these chips included (Fig. 3c); (2) the node's host side
		// starves the input pipeline (see sim.Device.HostStallFrac),
		// which is what turns them into the 3.5×-slower, 76 W ResNet
		// stragglers at a pinned 1530 MHz (§V-A).
		c.VoltFactor *= 1 + r.TruncGaussian(0.055, 0.02, 0.03, 0.10)
	case DefectPowerBrake:
		// Board firmware pins the clock near a fixed reduced state. The
		// Summit row-H outliers all complete in ~2510 ms (same clock,
		// ~1312 MHz) while drawing 250–285 W depending on each chip's
		// V/F quality and leakage (paper Appendix B, Fig. 25: frequency
		// locked at 1312 MHz across runs while power wanders).
		frac := r.TruncGaussian(0.858, 0.006, 0.845, 0.875)
		c.ClockCapMHz = c.SKU.QuantizeClock(c.SKU.MaxClockMHz * frac)
		c.BoardCapW = c.SKU.TDPWatts
	case DefectCooling:
		// Thermal resistance 1.7–2.4× nominal. On Corona's hot air path
		// this pins the MI60 at its slowdown threshold and forces deep
		// throttling (c115: 99 °C at 165 W, ~1.4× slower, §IV-D); on a
		// water loop the same defect yields only a temperature anomaly
		// with no performance or power outlier — exactly the Summit
		// rowH-col36-n02 signature (Appendix B).
		c.ThermalResistFactor = r.TruncGaussian(2.0, 0.15, 1.7, 2.4)
	case DefectClockStuck:
		// Clock pinned at 55–70% of max: much slower, cooler, and lower
		// power all at once.
		frac := r.TruncGaussian(0.62, 0.05, 0.55, 0.70)
		c.ClockCapMHz = c.SKU.QuantizeClock(c.SKU.MaxClockMHz * frac)
	default:
		panic(fmt.Sprintf("gpu: unknown defect kind %d", kind))
	}
}

// Healthy reports whether the chip has no injected defect.
func (c *Chip) Healthy() bool { return c.Defect == DefectNone }

// DefectGen returns the number of defect injections this chip has seen,
// for cache invalidation in the simulation layer.
func (c *Chip) DefectGen() uint32 { return c.defectGen }

// EffMemBWGBs returns the chip's effective DRAM bandwidth.
func (c *Chip) EffMemBWGBs() float64 { return c.SKU.MemBWGBs * c.MemBWFac }

// MaxUsableClockMHz returns the highest clock DVFS may select on this
// chip (SKU max unless clock-stuck).
func (c *Chip) MaxUsableClockMHz() float64 {
	if c.ClockCapMHz < c.SKU.MaxClockMHz {
		return c.ClockCapMHz
	}
	return c.SKU.MaxClockMHz
}

// PowerCapW returns the power limit the DVFS controller must respect:
// the board cap (possibly braked) or an administrative limit adminCapW
// if positive and lower. adminCapW models `nvidia-smi -pl` (paper §VI-B).
func (c *Chip) PowerCapW(adminCapW float64) float64 {
	cap := c.BoardCapW
	if adminCapW > 0 && adminCapW < cap {
		cap = adminCapW
	}
	return cap
}
