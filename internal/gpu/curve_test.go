package gpu

import (
	"testing"
	"testing/quick"

	"gpuvar/internal/rng"
)

func TestPowerCurveMonotone(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	curve := c.PowerCurve(sgemmAct, 60)
	if len(curve) < 10 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FreqMHz <= curve[i-1].FreqMHz {
			t.Fatal("frequency not ascending")
		}
		if curve[i].PowerW <= curve[i-1].PowerW {
			t.Fatalf("power not ascending at %v MHz", curve[i].FreqMHz)
		}
		if curve[i].VoltV < curve[i-1].VoltV {
			t.Fatalf("voltage decreasing at %v MHz", curve[i].FreqMHz)
		}
	}
	if curve[len(curve)-1].FreqMHz != c.SKU.MaxClockMHz {
		t.Fatal("curve does not reach max clock")
	}
}

func TestPowerCurveCoarse(t *testing.T) {
	c := NewChip(MI60(), "g", VariationModel{}, nil)
	curve := c.PowerCurve(sgemmAct, 70)
	if len(curve) != len(c.SKU.ClockStatesMHz) {
		t.Fatalf("coarse curve has %d points, want %d", len(curve), len(c.SKU.ClockStatesMHz))
	}
}

func TestCapCrossingBracketsCap(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	under, over, ok := c.CapCrossing(300, 60, sgemmAct)
	if !ok {
		t.Fatal("SGEMM on V100 must cross the 300 W cap")
	}
	if under.PowerW > 300 || over.PowerW <= 300 {
		t.Fatalf("crossing wrong: under %v W, over %v W", under.PowerW, over.PowerW)
	}
	// The crossing must agree with MaxClockUnderCap.
	f, _ := c.MaxClockUnderCap(300, 60, sgemmAct)
	if f != under.FreqMHz {
		t.Fatalf("crossing %v MHz disagrees with MaxClockUnderCap %v", under.FreqMHz, f)
	}
}

func TestCapCrossingNoCrossing(t *testing.T) {
	c := NewChip(V100SXM2(), "g", VariationModel{}, nil)
	lowAct := Activity{Compute: 0.15, Memory: 0.5}
	_, _, ok := c.CapCrossing(300, 50, lowAct)
	if ok {
		t.Fatal("memory-bound activity should not cross the cap")
	}
}

// Property: a worse chip's curve dominates a better chip's at every
// clock (more power everywhere), so its cap crossing is never higher.
func TestCurveDominanceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		good := NewChip(V100SXM2(), "g", VariationModel{}, nil)
		bad := NewChip(V100SXM2(), "b", VariationModel{}, nil)
		bad.VoltFactor = 1 + 0.01 + r.Float64()*0.05
		gc := good.PowerCurve(sgemmAct, 60)
		bc := bad.PowerCurve(sgemmAct, 60)
		for i := range gc {
			if bc[i].PowerW < gc[i].PowerW {
				return false
			}
		}
		fg, _ := good.MaxClockUnderCap(300, 60, sgemmAct)
		fb, _ := bad.MaxClockUnderCap(300, 60, sgemmAct)
		return fb <= fg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
