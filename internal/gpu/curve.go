package gpu

// CurvePoint is one row of a chip's operating-curve table.
type CurvePoint struct {
	FreqMHz float64
	VoltV   float64
	PowerW  float64
}

// PowerCurve tabulates the chip's total power across its clock grid at
// the given temperature and activity — the per-chip V/F/P table a
// PM-information standard would expose (and the quickest way to see why
// two "identical" chips settle at different clocks under one cap).
func (c *Chip) PowerCurve(act Activity, tempC float64) []CurvePoint {
	var out []CurvePoint
	s := c.SKU
	f := s.ClockFloorMHz()
	for {
		out = append(out, CurvePoint{
			FreqMHz: f,
			VoltV:   c.Voltage(f),
			PowerW:  c.TotalPower(f, tempC, act),
		})
		next := s.StepUp(f)
		if next <= f {
			break
		}
		f = next
	}
	return out
}

// CapCrossing returns the clock grid's boundary around a power cap: the
// highest point at or under the cap and the first point above it. ok is
// false when the whole curve sits under the cap (no crossing).
func (c *Chip) CapCrossing(capW, tempC float64, act Activity) (under, over CurvePoint, ok bool) {
	curve := c.PowerCurve(act, tempC)
	for i, p := range curve {
		if p.PowerW > capW {
			if i == 0 {
				return curve[0], curve[0], true
			}
			return curve[i-1], p, true
		}
	}
	last := curve[len(curve)-1]
	return last, last, false
}
