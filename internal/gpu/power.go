package gpu

import "math"

// Activity describes how hard a running kernel drives the chip's power
// rails. Both factors are in [0, 1]: Compute is the arithmetic
// functional-unit activity (the paper's "FU utilization" divided by 10),
// Memory is DRAM activity. A kernel that stalls on memory dependencies
// has low Compute even while nominally resident.
type Activity struct {
	Compute float64
	Memory  float64
}

// clamp01 clamps x into [0, 1].
func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// memPowerWeight is the fraction of the dynamic-power coefficient
// attributable to the memory subsystem at full memory activity. DRAM and
// the memory controller draw real power, but far less than saturated
// FP units — this is why memory-bound workloads run well under TDP
// (paper §V-C: LAMMPS ≤ 180 W on a 300 W part).
const memPowerWeight = 0.16

// Voltage returns the chip's required core voltage at frequency fMHz.
// The SKU curve is quadratic in the clock fraction — real V/F curves are
// convex, shallow at low clocks and steep in the boost region, which is
// what makes the top few hundred MHz so power-expensive. The chip-quality
// factor scales the curve, so worse chips need more volts per clock.
func (c *Chip) Voltage(fMHz float64) float64 {
	s := c.SKU
	span := s.MaxClockMHz - s.IdleClockMHz
	frac := 0.0
	if span > 0 {
		frac = (fMHz - s.IdleClockMHz) / span
	}
	frac = clamp01(frac)
	e := s.VFExponent
	if e == 0 {
		e = 2
	}
	v := s.VoltMinV + (s.VoltMaxV-s.VoltMinV)*math.Pow(frac, e)
	return v * c.VoltFactor
}

// DynamicPower returns the activity-dependent power in watts at clock
// fMHz: A · act_eff · (f/fmax) · (V/Vmax)². The quadratic voltage term is
// what turns a small chip-quality spread into a visible frequency spread
// under a fixed power cap.
func (c *Chip) DynamicPower(fMHz float64, act Activity) float64 {
	s := c.SKU
	v := c.Voltage(fMHz)
	vn := v / s.VoltMaxV
	fn := fMHz / s.MaxClockMHz
	actEff := (1-memPowerWeight)*clamp01(act.Compute) + memPowerWeight*clamp01(act.Memory)
	return s.DynCoeffW * actEff * fn * vn * vn
}

// LeakagePower returns static leakage in watts at die temperature tempC.
// Leakage grows exponentially with temperature (the classic subthreshold
// model); this couples cooling quality into the power budget and hence
// into DVFS headroom on air-cooled clusters.
func (c *Chip) LeakagePower(tempC float64) float64 {
	const refC, scaleC = 25.0, 48.0
	return c.SKU.LeakRefWatts * c.LeakFactor * math.Exp((tempC-refC)/scaleC)
}

// TotalPower returns idle + leakage + dynamic power in watts.
func (c *Chip) TotalPower(fMHz, tempC float64, act Activity) float64 {
	return c.SKU.IdleWatts + c.LeakagePower(tempC) + c.DynamicPower(fMHz, act)
}

// IdlePower returns the power with no kernel resident (clocks parked).
func (c *Chip) IdlePower(tempC float64) float64 {
	return c.SKU.IdleWatts + c.LeakagePower(tempC)
}

// MaxClockUnderCap returns the highest quantized clock whose total power
// at the given temperature and activity stays at or below capW, together
// with that power. It never returns a clock below the SKU floor: real
// DVFS cannot stop the part, so at the floor the cap may be exceeded.
//
// This is the analytic core used by both the transient DVFS controller
// (as its target) and the steady-state solver.
func (c *Chip) MaxClockUnderCap(capW, tempC float64, act Activity) (fMHz, powerW float64) {
	f := c.SKU.QuantizeClock(c.MaxUsableClockMHz())
	for {
		p := c.TotalPower(f, tempC, act)
		if p <= capW {
			return f, p
		}
		next := c.SKU.StepDown(f)
		if next >= f { // at floor
			return f, p
		}
		f = next
	}
}
