package sim

import (
	"testing"
	"testing/quick"

	"gpuvar/internal/dvfs"
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// Property: raising the administrative power cap never slows a
// compute-bound run (performance is monotone in the power budget).
func TestCapMonotonicityProperty(t *testing.T) {
	wl := workload.SGEMM(25536, gpu.V100SXM2())
	wl.Iterations = 3
	f := func(seed uint64) bool {
		r := rng.New(seed)
		capLo := 140 + r.Float64()*100
		capHi := capLo + 20 + r.Float64()*100

		mk := func(capW float64) *Device {
			parent := rng.New(seed)
			chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.Split("chip"))
			node := thermal.NewNode(thermal.AirParams(), 0.5, parent.Split("node"))
			return NewDevice(chip, node, dvfs.DefaultConfig(), capW, parent.Split("sys"))
		}
		lo := RunSteady([]*Device{mk(capLo)}, wl, rng.New(1), Options{})[0].PerfMs
		hi := RunSteady([]*Device{mk(capHi)}, wl, rng.New(1), Options{})[0].PerfMs
		return hi <= lo+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: at any FIXED clock, degrading compute efficiency slows the
// kernel and lowers its power draw. (End-to-end the ordering can invert:
// a mildly stalling chip draws less power, dodges the cap, boosts
// higher, and may beat a throttled healthy chip — so the clean
// monotonicity only holds per clock, which is what this checks.)
func TestComputeEffMonotonicityProperty(t *testing.T) {
	k := workload.SGEMM(25536, gpu.V100SXM2()).Kernels[0]
	f := func(seed uint64) bool {
		r := rng.New(seed)
		eff := 0.4 + r.Float64()*0.55
		fMHz := 1200 + r.Float64()*330

		mk := func(ce float64) *gpu.Chip {
			chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), rng.New(seed))
			chip.ComputeEff = ce
			return chip
		}
		healthy, degraded := mk(1), mk(eff)
		if progressRate(degraded, k, fMHz) >= progressRate(healthy, k, fMHz) {
			return false
		}
		hp := healthy.DynamicPower(fMHz, effActivity(healthy, k))
		dp := degraded.DynamicPower(fMHz, effActivity(degraded, k))
		return dp <= hp+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every steady-run result validates and respects physical
// bounds (power under cap + sensor noise, frequency within the SKU
// grid, temperature above ambient) across random fleets and workloads.
func TestSteadyPhysicalBoundsProperty(t *testing.T) {
	sku := gpu.V100SXM2()
	wls := []workload.Workload{
		workload.SGEMM(25536, sku),
		workload.LAMMPS(8, 16, 16, sku),
		workload.PageRank(643994, 6250000, sku),
	}
	for i := range wls {
		wls[i].Iterations = 3
	}
	f := func(seed uint64, which uint8) bool {
		wl := wls[int(which)%len(wls)]
		parent := rng.New(seed)
		chip := gpu.NewChip(sku, "g", gpu.DefaultVariation(), parent.Split("chip"))
		node := thermal.NewNode(thermal.AirParams(), parent.Split("p").Float64(), parent.Split("node"))
		dev := NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.Split("sys"))
		r := RunSteady([]*Device{dev}, wl, rng.New(seed), Options{})[0]
		if r.Validate() != nil {
			return false
		}
		if r.MedianFreqMHz < sku.ClockFloorMHz() || r.MedianFreqMHz > sku.MaxClockMHz {
			return false
		}
		// Sensor noise is ±~5 W worst case; physics stays under cap.
		if r.MedianPowerW > sku.TDPWatts+8 {
			return false
		}
		return r.MedianTempC > node.AmbientC-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: multi-GPU jobs always report identical iteration times on
// all their GPUs (bulk-synchronous semantics), for arbitrary fleets.
func TestBulkSyncAgreementProperty(t *testing.T) {
	wl := workload.ResNet50(4, 64, gpu.V100SXM2())
	wl.Iterations = 4
	wl.WarmupIters = 0
	f := func(seed uint64) bool {
		devs := make([]*Device, 4)
		parent := rng.New(seed)
		for i := range devs {
			chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.SplitIndex("c", i))
			node := thermal.NewNode(thermal.AirParams(), float64(i)/3, parent.SplitIndex("n", i))
			devs[i] = NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.SplitIndex("s", i))
		}
		rs := RunSteady(devs, wl, rng.New(seed), Options{})
		for i := 1; i < 4; i++ {
			if rs[i].PerfMs != rs[0].PerfMs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
