package sim

import (
	"math"
	"testing"

	"gpuvar/internal/dvfs"
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// newJob builds n devices with manufacturing spread.
func newJob(t *testing.T, n int, seed uint64) []*Device {
	t.Helper()
	devs := make([]*Device, n)
	for i := range devs {
		devs[i] = newV100Device(t, "g", seed+uint64(i)*31, thermal.AirParams(), gpu.DefaultVariation())
	}
	return devs
}

func TestMultiGPUSteadyMatchesTransient(t *testing.T) {
	wl := workload.ResNet50(4, 64, gpu.V100SXM2())
	wl.Iterations = 8
	wl.WarmupIters = 1

	mkDevs := func() []*Device { return newJob(t, 4, 900) }
	rt := RunTransient(mkDevs(), wl, rng.New(7), Options{})
	rs := RunSteady(mkDevs(), wl, rng.New(7), Options{})

	for i := 0; i < 4; i++ {
		tr, st := rt.Results[i], rs[i]
		if rel := math.Abs(tr.PerfMs-st.PerfMs) / tr.PerfMs; rel > 0.08 {
			t.Errorf("gpu %d: iteration time transient %v vs steady %v (%.1f%%)",
				i, tr.PerfMs, st.PerfMs, rel*100)
		}
		// Both paths must report frequency pinned at max (ResNet does
		// not throttle).
		if tr.MedianFreqMHz != 1530 || st.MedianFreqMHz != 1530 {
			t.Errorf("gpu %d: freq transient %v steady %v, want 1530",
				i, tr.MedianFreqMHz, st.MedianFreqMHz)
		}
	}
}

func TestBERTRunsOnBothPaths(t *testing.T) {
	wl := workload.BERT(4, 64, gpu.V100SXM2())
	wl.Iterations = 6
	wl.WarmupIters = 1
	mkDevs := func() []*Device { return newJob(t, 4, 1300) }
	rt := RunTransient(mkDevs(), wl, rng.New(9), Options{})
	rs := RunSteady(mkDevs(), wl, rng.New(9), Options{})
	for i := 0; i < 4; i++ {
		if err := rt.Results[i].Validate(); err != nil {
			t.Fatal(err)
		}
		if err := rs[i].Validate(); err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(rt.Results[i].PerfMs-rs[i].PerfMs) / rt.Results[i].PerfMs; rel > 0.10 {
			t.Errorf("gpu %d: BERT iteration transient %v vs steady %v",
				i, rt.Results[i].PerfMs, rs[i].PerfMs)
		}
	}
}

func TestCommSpreadVariesAcrossJobs(t *testing.T) {
	// Different jobs draw different NCCL topologies: their iteration
	// times must differ even on identical hardware.
	wl := workload.ResNet50(4, 64, gpu.V100SXM2())
	wl.Iterations = 6
	wl.WarmupIters = 1
	a := RunSteady(newJob(t, 4, 500), wl, rng.New(1), Options{})[0].PerfMs
	b := RunSteady(newJob(t, 4, 500), wl, rng.New(2), Options{})[0].PerfMs
	if a == b {
		t.Fatal("job-level comm jitter missing: identical iteration times")
	}
}

func TestEnergyAccountingConsistent(t *testing.T) {
	// Integrate the transient trace: energy must equal avg power × time
	// within tolerance, and the median power must sit near the cap for
	// SGEMM.
	dev := newV100Device(t, "g0", 42, thermal.WaterParams(), gpu.VariationModel{})
	res := RunTransient([]*Device{dev}, shortSGEMM(4), rng.New(3), Options{})
	a := res.Traces[0].Analyze(30)
	if a.EnergyJ <= 0 {
		t.Fatal("no energy integrated")
	}
	implied := a.EnergyJ / (a.DurationMs / 1000)
	if math.Abs(implied-a.AvgPowerW) > 0.5 {
		t.Fatalf("energy bookkeeping inconsistent: %v vs %v", implied, a.AvgPowerW)
	}
	// SGEMM rides the cap: average power within [0.9, 1.01] × 300.
	if a.AvgPowerW < 260 || a.AvgPowerW > 303 {
		t.Fatalf("average power %v implausible for capped SGEMM", a.AvgPowerW)
	}
}

func TestThrottleEventsAppearOnCapCrossing(t *testing.T) {
	// The boost-overshoot-throttle cycle at kernel start must register
	// as throttle events in the trace analysis (Fig. 11's shape).
	dev := newV100Device(t, "g0", 43, thermal.WaterParams(), gpu.VariationModel{})
	res := RunTransient([]*Device{dev}, shortSGEMM(4), rng.New(5), Options{})
	a := res.Traces[0].Analyze(60)
	if len(a.ThrottleEvents) == 0 {
		t.Fatal("no throttle events detected on a power-capped workload")
	}
	for _, e := range a.ThrottleEvents {
		if e.FromMHz <= e.ToMHz {
			t.Fatalf("throttle event not descending: %v -> %v", e.FromMHz, e.ToMHz)
		}
	}
}

func TestMemoryBoundNoThrottleEvents(t *testing.T) {
	dev := newV100Device(t, "g0", 44, thermal.WaterParams(), gpu.VariationModel{})
	wl := workload.LAMMPS(8, 16, 16, gpu.V100SXM2())
	wl.Iterations = 4
	res := RunTransient([]*Device{dev}, wl, rng.New(6), Options{})
	a := res.Traces[0].Analyze(60)
	// After the initial boost the clock pins at max; no sustained drops.
	for _, e := range a.ThrottleEvents {
		if e.StartMs > 2000 {
			t.Fatalf("memory-bound workload throttled at %v ms: %v -> %v MHz",
				e.StartMs, e.FromMHz, e.ToMHz)
		}
	}
}

func TestDPMDitherRepeatability(t *testing.T) {
	// MI60 chips dither one state between runs (the Corona Fig. 8
	// mechanism): across several runs a chip's perf takes at least two
	// distinct values, and the spread matches one state gap.
	parent := rng.New(77)
	chip := gpu.NewChip(gpu.MI60(), "g", gpu.DefaultVariation(), parent.Split("chip"))
	node := thermal.NewNode(thermal.AirParams(), 0.5, parent.Split("node"))
	dev := NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.Split("sys"))
	wl := workload.SGEMMForCluster(gpu.MI60())
	wl.Iterations = 5

	distinct := map[float64]bool{}
	for run := 0; run < 8; run++ {
		r := RunSteady([]*Device{dev}, wl, rng.New(11), Options{Run: run})[0]
		distinct[r.MedianFreqMHz] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("coarse-state part never dithered across runs: %v", distinct)
	}
	if len(distinct) > 3 {
		t.Fatalf("dither spans %d states, want adjacent pair", len(distinct))
	}
}

func TestV100NoDither(t *testing.T) {
	// Fine-stepping parts do not carry the DPM dither: run-to-run
	// frequency changes stay within a few steps (ambient-driven).
	dev := newV100Device(t, "g0", 45, thermal.WaterParams(), gpu.DefaultVariation())
	wl := shortSGEMM(5)
	var lo, hi float64 = math.Inf(1), 0
	for run := 0; run < 6; run++ {
		r := RunSteady([]*Device{dev}, wl, rng.New(12), Options{Run: run})[0]
		lo = math.Min(lo, r.MedianFreqMHz)
		hi = math.Max(hi, r.MedianFreqMHz)
	}
	if hi-lo > 40 {
		t.Fatalf("V100 run-to-run frequency swing %v MHz too large", hi-lo)
	}
}
