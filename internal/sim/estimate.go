package sim

import (
	"gpuvar/internal/dvfs"
	"gpuvar/internal/gpu"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// NominalSteady is the closed-form converged operating point of a
// nominal device: RunSteady with every random factor pinned to its
// distribution mean and the iteration loop collapsed. Kernel durations
// are constants, so the medians the run path would compute degenerate
// to the constants themselves — no per-iteration loop, no RNG.
type NominalSteady struct {
	// PerfMs is the workload's performance metric for the nominal
	// device (median kernel, iteration duration, or long-kernel sum,
	// per the workload's Metric).
	PerfMs float64
	// FreqMHz and PowerW are the duration-weighted median clock and
	// power over one iteration's phases, exactly as steadyPoint.medians
	// reports them for a jitter-free device.
	FreqMHz float64
	PowerW  float64
	// TempC is the equilibrium die temperature under the blended
	// activity.
	TempC float64
	// ThermallyLimited reports whether any kernel's clock had to step
	// down to stay under the slowdown temperature.
	ThermallyLimited bool
}

// EstimateNominalSteady solves the steady operating point of a NOMINAL
// device — callers construct the chip with a nil RNG stream (every
// manufacturing factor 1, no defect) and the thermal node at the
// cooling model's mean parameters — under an administrative power cap
// and ambient offset. It shares solveSteady with the run path, so the
// physics (DVFS fixed point, per-kernel cap search, thermal step-down)
// cannot drift from the simulator; only the jitter synthesis is
// dropped. The coarse-P-state dither is never applied: dither is a
// per-run Bernoulli draw, and the nominal device is the no-draw mean.
func EstimateNominalSteady(chip *gpu.Chip, node *thermal.Node, wl workload.Workload, adminCapW, ambientOffsetC float64) NominalSteady {
	d := &Device{Chip: chip, Node: node, Ctl: dvfs.New(chip, dvfs.DefaultConfig(), adminCapW)}
	ki := newKernelIndex(wl.Kernels)
	sp := solveSteady(d, wl, ki, Options{AdminCapW: adminCapW, AmbientOffsetC: ambientOffsetC}, false)

	// Rebuild one iteration from the constant kernel durations, using
	// RunSteady's partition: comm kernels run in lockstep only on
	// multi-GPU jobs (a job of identical nominal devices has zero
	// barrier wait, so lockstep is just the kernel's own duration).
	multi := wl.MultiGPU()
	hostF := 0.0
	if wl.HostStallMean > 0 {
		hostF = wl.HostStallMean // the lognormal jitter factor has mean 1
	}
	var iterMs, nominal float64
	for _, k := range wl.Kernels {
		di := ki.of(k.Name)
		if k.Comm && multi {
			iterMs += sp.kernelMs[di]
			continue
		}
		iterMs += sp.kernelMs[di] + wl.LaunchGapMs
		nominal += k.NominalMs
	}
	hostMs := nominal * hostF
	iterMs += hostMs

	var perf float64
	switch wl.Metric {
	case workload.MetricIterationDuration:
		perf = iterMs
	case workload.MetricSumLongKernels:
		for _, k := range wl.Kernels {
			if k.NominalMs >= wl.LongKernelMinMs {
				perf += sp.kernelMs[ki.of(k.Name)]
			}
		}
	default: // MetricMedianKernel — the paper measures the compute kernel
		var ds []float64
		for _, k := range wl.Kernels {
			if !k.Comm {
				ds = append(ds, sp.kernelMs[ki.of(k.Name)])
			}
		}
		if len(ds) == 0 {
			for _, k := range wl.Kernels {
				ds = append(ds, sp.kernelMs[ki.of(k.Name)])
			}
		}
		perf = medianFloat(ds)
	}

	ones := make([]float64, ki.n())
	for i := range ones {
		ones[i] = 1
	}
	f, p, t := sp.medians(d, wl, ki, ones, hostMs, 0)
	return NominalSteady{
		PerfMs:           perf,
		FreqMHz:          f,
		PowerW:           p,
		TempC:            t,
		ThermallyLimited: sp.thermal,
	}
}
