package sim

import (
	"math"
	"testing"

	"gpuvar/internal/dvfs"
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// newV100Device builds one healthy or seeded V100 device.
func newV100Device(t *testing.T, id string, seed uint64, cooling thermal.Params, vm gpu.VariationModel) *Device {
	t.Helper()
	parent := rng.New(seed)
	chip := gpu.NewChip(gpu.V100SXM2(), id, vm, parent.Split("chip"))
	node := thermal.NewNode(cooling, 0.5, parent.Split("node"))
	return NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.Split("sys"))
}

// shortSGEMM is the paper's SGEMM with fewer repetitions for test speed.
func shortSGEMM(iters int) workload.Workload {
	wl := workload.SGEMM(25536, gpu.V100SXM2())
	wl.Iterations = iters
	return wl
}

func TestTransientSGEMMKernelBand(t *testing.T) {
	// Paper Figs. 2–3: V100 SGEMM kernels measure 2300–2700 ms.
	dev := newV100Device(t, "g0", 1, thermal.AirParams(), gpu.VariationModel{})
	res := RunTransient([]*Device{dev}, shortSGEMM(8), rng.New(2), Options{})
	r := res.Results[0]
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.PerfMs < 2300 || r.PerfMs > 2800 {
		t.Fatalf("SGEMM kernel duration %v ms outside paper band", r.PerfMs)
	}
	if r.MedianFreqMHz < 1280 || r.MedianFreqMHz > 1470 {
		t.Fatalf("median frequency %v outside paper band", r.MedianFreqMHz)
	}
	if r.MedianPowerW < 280 || r.MedianPowerW > 302 {
		t.Fatalf("median power %v should ride the 300 W cap", r.MedianPowerW)
	}
}

func TestTransientTraceShape(t *testing.T) {
	// Fig. 11 shape: on kernel launch the clock ramps and power rises to
	// the cap, then DVFS pulls frequency down. Verify the trace contains
	// a power sample above 299 followed by a frequency below the boost.
	dev := newV100Device(t, "g0", 3, thermal.WaterParams(), gpu.VariationModel{})
	res := RunTransient([]*Device{dev}, shortSGEMM(3), rng.New(4), Options{})
	tr := res.Traces[0]
	if len(tr.Samples) < 1000 {
		t.Fatalf("trace too short: %d samples", len(tr.Samples))
	}
	crossed := false
	var minFreqAfterCross float64 = 1e9
	for _, s := range tr.Samples {
		if s.PowerW >= 299 {
			crossed = true
		}
		if crossed && s.FreqMHz < minFreqAfterCross {
			minFreqAfterCross = s.FreqMHz
		}
	}
	if !crossed {
		t.Fatal("power never approached the cap")
	}
	if minFreqAfterCross >= 1530 {
		t.Fatal("no frequency throttle after the cap was hit")
	}
}

func TestSteadyMatchesTransientSGEMM(t *testing.T) {
	// The analytic path must agree with the tick-level path on every
	// reported metric for a spread of chips.
	for i := 0; i < 6; i++ {
		seed := uint64(100 + i)
		devT := newV100Device(t, "g", seed, thermal.AirParams(), gpu.DefaultVariation())
		devS := newV100Device(t, "g", seed, thermal.AirParams(), gpu.DefaultVariation())
		wl := shortSGEMM(6)
		rt := RunTransient([]*Device{devT}, wl, rng.New(9), Options{}).Results[0]
		rs := RunSteady([]*Device{devS}, wl, rng.New(9), Options{})[0]

		if rel := math.Abs(rt.PerfMs-rs.PerfMs) / rt.PerfMs; rel > 0.03 {
			t.Errorf("chip %d: perf transient %v vs steady %v (%.1f%%)", i, rt.PerfMs, rs.PerfMs, rel*100)
		}
		if d := math.Abs(rt.MedianFreqMHz - rs.MedianFreqMHz); d > 40 {
			t.Errorf("chip %d: freq transient %v vs steady %v", i, rt.MedianFreqMHz, rs.MedianFreqMHz)
		}
		if d := math.Abs(rt.MedianPowerW - rs.MedianPowerW); d > 10 {
			t.Errorf("chip %d: power transient %v vs steady %v", i, rt.MedianPowerW, rs.MedianPowerW)
		}
		if d := math.Abs(rt.MedianTempC - rs.MedianTempC); d > 4 {
			t.Errorf("chip %d: temp transient %v vs steady %v", i, rt.MedianTempC, rs.MedianTempC)
		}
	}
}

func TestSteadyMatchesTransientMemoryBound(t *testing.T) {
	devT := newV100Device(t, "g", 55, thermal.AirParams(), gpu.DefaultVariation())
	devS := newV100Device(t, "g", 55, thermal.AirParams(), gpu.DefaultVariation())
	wl := workload.LAMMPS(8, 16, 16, gpu.V100SXM2())
	wl.Iterations = 10
	rt := RunTransient([]*Device{devT}, wl, rng.New(9), Options{}).Results[0]
	rs := RunSteady([]*Device{devS}, wl, rng.New(9), Options{})[0]
	if rel := math.Abs(rt.PerfMs-rs.PerfMs) / rt.PerfMs; rel > 0.04 {
		t.Errorf("perf transient %v vs steady %v", rt.PerfMs, rs.PerfMs)
	}
	// Memory-bound: both paths must report max clock and low power.
	if rt.MedianFreqMHz != 1530 || rs.MedianFreqMHz != 1530 {
		t.Errorf("LAMMPS should pin at 1530: transient %v steady %v", rt.MedianFreqMHz, rs.MedianFreqMHz)
	}
	if rt.MedianPowerW > 200 || rs.MedianPowerW > 200 {
		t.Errorf("LAMMPS power too high: transient %v steady %v", rt.MedianPowerW, rs.MedianPowerW)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() GPURunResult {
		dev := newV100Device(t, "g0", 42, thermal.AirParams(), gpu.DefaultVariation())
		return RunSteady([]*Device{dev}, shortSGEMM(10), rng.New(7), Options{Run: 3})[0]
	}
	a, b := run(), run()
	if a.PerfMs != b.PerfMs || a.MedianPowerW != b.MedianPowerW {
		t.Fatal("same seeds should reproduce identical results")
	}
}

func TestRunIndexChangesJitter(t *testing.T) {
	dev := newV100Device(t, "g0", 42, thermal.AirParams(), gpu.DefaultVariation())
	a := RunSteady([]*Device{dev}, shortSGEMM(10), rng.New(7), Options{Run: 1})[0]
	b := RunSteady([]*Device{dev}, shortSGEMM(10), rng.New(7), Options{Run: 2})[0]
	if a.PerfMs == b.PerfMs {
		t.Fatal("different run indices should draw different jitter")
	}
	// But only slightly: SGEMM run-to-run variation is sub-percent
	// (paper Fig. 8: per-GPU medians 0.44%/0.12%).
	if rel := math.Abs(a.PerfMs-b.PerfMs) / a.PerfMs; rel > 0.02 {
		t.Fatalf("run-to-run variation %.2f%% too large for SGEMM", rel*100)
	}
}

func TestMultiGPUBulkSyncStraggler(t *testing.T) {
	// A 4-GPU ResNet job with one stall-defect GPU must run every GPU's
	// iterations at the straggler's pace (paper §V-A: "multi-GPU jobs
	// with a bulk synchronous pattern end up running as fast as the
	// slowest GPU").
	wl := workload.ResNet50(4, 64, gpu.V100SXM2())
	wl.Iterations = 12
	wl.WarmupIters = 1

	mk := func(defect bool) []*Device {
		devs := make([]*Device, 4)
		for i := range devs {
			devs[i] = newV100Device(t, "g", uint64(200+i), thermal.AirParams(), gpu.DefaultVariation())
		}
		if defect {
			devs[2].Chip.InjectDefect(gpu.DefectStall, rng.New(5))
			// Pin a severe stall for a deterministic assertion (the
			// sampled severity range is 10–65%).
			devs[2].Chip.ComputeEff = 0.45
		}
		return devs
	}
	healthy := RunSteady(mk(false), wl, rng.New(11), Options{})
	defective := RunSteady(mk(true), wl, rng.New(11), Options{})

	// All four GPUs in a job report the same iteration duration.
	for i := 1; i < 4; i++ {
		if math.Abs(defective[i].PerfMs-defective[0].PerfMs) > 1e-9 {
			t.Fatalf("bulk-sync GPUs disagree on iteration time: %v vs %v",
				defective[i].PerfMs, defective[0].PerfMs)
		}
	}
	// The defective job is much slower than the healthy one.
	if defective[0].PerfMs < 1.4*healthy[0].PerfMs {
		t.Fatalf("straggler did not slow the job: %v vs %v", defective[0].PerfMs, healthy[0].PerfMs)
	}
	// The straggler itself draws less power at full clocks — the c002
	// signature (§V-A: slow runs consuming as little as 76 W).
	if defective[2].MedianPowerW >= healthy[2].MedianPowerW {
		t.Fatalf("stall chip power %v should be below healthy %v",
			defective[2].MedianPowerW, healthy[2].MedianPowerW)
	}
}

func TestResNetFrequencyPinned(t *testing.T) {
	// Paper Fig. 14a: ResNet runs at the max 1530 MHz (no throttling).
	devs := make([]*Device, 4)
	for i := range devs {
		devs[i] = newV100Device(t, "g", uint64(300+i), thermal.AirParams(), gpu.DefaultVariation())
	}
	wl := workload.ResNet50(4, 64, gpu.V100SXM2())
	wl.Iterations = 10
	wl.WarmupIters = 1
	for _, r := range RunSteady(devs, wl, rng.New(13), Options{}) {
		if r.MedianFreqMHz < 1500 {
			t.Fatalf("ResNet median frequency %v; should pin near max", r.MedianFreqMHz)
		}
	}
}

func TestPowerBrakeSignatureEndToEnd(t *testing.T) {
	// Summit row-H: braked chip at ~2510 ms, 250–285 W, pinned clock,
	// no temperature anomaly under water cooling (paper Appendix B).
	braked := newV100Device(t, "brk", 77, thermal.WaterParams(), gpu.VariationModel{})
	braked.Chip.InjectDefect(gpu.DefectPowerBrake, rng.New(21))
	healthy := newV100Device(t, "ok", 77, thermal.WaterParams(), gpu.VariationModel{})

	wl := shortSGEMM(8)
	rb := RunSteady([]*Device{braked}, wl, rng.New(3), Options{})[0]
	rh := RunSteady([]*Device{healthy}, wl, rng.New(3), Options{})[0]

	if rb.PerfMs <= rh.PerfMs {
		t.Fatalf("braked chip should be slower: %v vs %v", rb.PerfMs, rh.PerfMs)
	}
	if rb.MedianPowerW >= 290 {
		t.Fatalf("braked chip power %v should be a sub-290 W outlier", rb.MedianPowerW)
	}
	if rb.MedianTempC >= rh.MedianTempC+3 {
		t.Fatalf("braked chip shows a temperature anomaly: %v vs %v", rb.MedianTempC, rh.MedianTempC)
	}
}

func TestAdminPowerCapSlowsSGEMM(t *testing.T) {
	// Paper Fig. 22: kernel durations increase as the power limit drops.
	parent := rng.New(99)
	mk := func(capW float64) *Device {
		chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.VariationModel{}, parent.Split("chip"))
		node := thermal.NewNode(thermal.AirParams(), 0.5, nil)
		return NewDevice(chip, node, dvfs.DefaultConfig(), capW, parent.Split("sys"))
	}
	wl := shortSGEMM(6)
	p300 := RunSteady([]*Device{mk(0)}, wl, rng.New(1), Options{})[0].PerfMs
	p200 := RunSteady([]*Device{mk(200)}, wl, rng.New(1), Options{})[0].PerfMs
	p150 := RunSteady([]*Device{mk(150)}, wl, rng.New(1), Options{})[0].PerfMs
	if !(p150 > p200 && p200 > p300) {
		t.Fatalf("durations should grow as cap drops: %v %v %v", p300, p200, p150)
	}
}

func TestAmbientOffsetWarmerIsSlower(t *testing.T) {
	// Warmer facility air → more leakage → less DVFS headroom → slower
	// compute-bound kernels.
	mk := func() *Device {
		return newV100Device(t, "g", 123, thermal.AirParams(), gpu.VariationModel{})
	}
	wl := shortSGEMM(6)
	cool := RunSteady([]*Device{mk()}, wl, rng.New(1), Options{AmbientOffsetC: -5})[0]
	warm := RunSteady([]*Device{mk()}, wl, rng.New(1), Options{AmbientOffsetC: +8})[0]
	if warm.PerfMs <= cool.PerfMs {
		t.Fatalf("warmer ambient should be slower: %v vs %v", warm.PerfMs, cool.PerfMs)
	}
}

func TestValidateRejectsGarbage(t *testing.T) {
	if (GPURunResult{GPUID: "g", PerfMs: 0}).Validate() == nil {
		t.Fatal("zero perf should fail validation")
	}
	if (GPURunResult{GPUID: "g", PerfMs: 5, MedianPowerW: -1}).Validate() == nil {
		t.Fatal("negative power should fail validation")
	}
}

func TestWeightedMedian(t *testing.T) {
	if m := weightedMedian([]float64{1, 10}, []float64{9, 1}); m != 1 {
		t.Fatalf("weightedMedian = %v, want 1", m)
	}
	if m := weightedMedian([]float64{1, 10}, []float64{1, 9}); m != 10 {
		t.Fatalf("weightedMedian = %v, want 10", m)
	}
	if m := weightedMedian(nil, nil); m != 0 {
		t.Fatalf("empty weightedMedian = %v", m)
	}
}

func TestGPUCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched device count did not panic")
		}
	}()
	dev := newV100Device(t, "g", 1, thermal.AirParams(), gpu.VariationModel{})
	RunSteady([]*Device{dev}, workload.ResNet50(4, 64, gpu.V100SXM2()), rng.New(1), Options{})
}

func BenchmarkRunSteadySGEMM(b *testing.B) {
	parent := rng.New(1)
	chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.Split("chip"))
	node := thermal.NewNode(thermal.AirParams(), 0.5, parent.Split("node"))
	dev := NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.Split("sys"))
	wl := workload.SGEMM(25536, gpu.V100SXM2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSteady([]*Device{dev}, wl, rng.New(2), Options{Run: i})
	}
}

func BenchmarkRunTransientSGEMM(b *testing.B) {
	wl := workload.SGEMM(25536, gpu.V100SXM2())
	wl.Iterations = 2
	wl.WarmupIters = 0
	for i := 0; i < b.N; i++ {
		parent := rng.New(1)
		chip := gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.Split("chip"))
		node := thermal.NewNode(thermal.AirParams(), 0.5, parent.Split("node"))
		dev := NewDevice(chip, node, dvfs.DefaultConfig(), 0, parent.Split("sys"))
		RunTransient([]*Device{dev}, wl, rng.New(2), Options{})
	}
}
