// Package sim executes workloads on modeled GPUs. It offers two
// execution paths with the same result schema:
//
//   - Transient: a 1 ms tick loop coupling kernel progress, the DVFS
//     controller, the RC thermal model, and the telemetry sampler. This
//     is the ground truth, used for time-series figures (paper Figs. 11
//     and 25) and for validating the fast path.
//   - Steady: an analytic evaluation of the converged operating point
//     per kernel class, used for fleet-scale experiments (Summit has
//     27,648 GPUs; ticking each for hundreds of seconds is wasteful
//     when the equilibrium is computable directly).
//
// Multi-GPU jobs run bulk-synchronously: every iteration ends with a
// barrier, so the job advances at the pace of its slowest GPU — the
// amplification mechanism behind the paper's multi-GPU findings (§V-A,
// §VII "Impact on Users").
package sim

import (
	"fmt"

	"gpuvar/internal/dvfs"
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// Device is one simulated GPU: immutable chip parameters plus its
// thermal environment, PM controller, and private noise stream.
//
// A Device is confined to a single goroutine: its noise stream and its
// steady-point memo are stateful and unsynchronized. The concurrent
// layers above respect this by construction — internal/core builds a
// fresh device set per job inside the job's goroutine, and
// internal/campaign reuses devices only within one (single-goroutine)
// Simulate call — so devices are never shared across goroutines, and
// the whole stack stays race-free without a lock on the simulation hot
// path.
type Device struct {
	Chip *gpu.Chip
	Node *thermal.Node
	Ctl  *dvfs.Controller

	// sys is the device's deterministic noise stream; per-workload
	// system factors are split from it by workload name.
	sys *rng.Source

	// steady memoizes solved operating points (see steadyPlan), allocated
	// lazily on first solve. The key identifies the workload by Name, so
	// the memo assumes (a) one workload definition per name within the
	// device's lifetime — true for every current caller, where a device
	// lives inside a single experiment or campaign — and (b) the chip is
	// not mutated behind the device's back: defect injection through
	// Chip.InjectDefect bumps the chip's defect generation, which is part
	// of the key, but direct field writes are not detected.
	steady map[steadyKey]*steadyPoint
}

// NewDevice assembles a device. adminCapW is the administrative power
// limit (0 = TDP). The sys stream must be unique per device (split from
// the experiment seed by GPU index).
func NewDevice(chip *gpu.Chip, node *thermal.Node, cfg dvfs.Config, adminCapW float64, sys *rng.Source) *Device {
	return &Device{
		Chip: chip,
		Node: node,
		Ctl:  dvfs.New(chip, cfg, adminCapW),
		sys:  sys,
	}
}

// SysFactor returns the device's persistent non-PM slowdown factor for
// one kernel of a workload: cuDNN algorithm selection and code-path
// differences are per kernel class, so each (device, workload, kernel)
// triple gets its own lognormal factor with spread wl.SysSpread. This
// both perturbs the iteration mix (destabilizing sampled power medians
// on phase-balanced workloads like BERT) and partially averages out in
// total iteration time.
func (d *Device) SysFactor(wl workload.Workload, kernelName string) float64 {
	if wl.SysSpread <= 0 {
		return 1
	}
	return d.sys.Split("sys:"+wl.Name+":"+kernelName).LogNormalMeanSpread(1, wl.SysSpread)
}

// sysFactors samples the per-kernel system factors for a workload.
func sysFactors(d *Device, wl workload.Workload) map[string]float64 {
	out := make(map[string]float64, len(wl.Kernels))
	for _, k := range wl.Kernels {
		out[k.Name] = d.SysFactor(wl, k.Name)
	}
	return out
}

// sysFactorsIndexed samples the same per-kernel system factors into a
// dense slice addressed by the workload's kernel index (the steady
// path's allocation-lean equivalent of sysFactors). Kernels sharing a
// name share a slot and draw from the same split stream, so the values
// coincide with the map version's.
func sysFactorsIndexed(d *Device, wl workload.Workload, ki *kernelIndex) []float64 {
	out := make([]float64, ki.n())
	for _, k := range wl.Kernels {
		out[ki.of(k.Name)] = d.SysFactor(wl, k.Name)
	}
	return out
}

// HostStallFrac returns the device's persistent host/input-pipeline
// stall fraction for a workload: extra wall time per iteration as a
// fraction of GPU compute time, during which the GPU idles at low
// activity. Per-GPU spread models node-local input pipelines.
func (d *Device) HostStallFrac(wl workload.Workload) float64 {
	if wl.HostStallMean <= 0 {
		return 0
	}
	f := wl.HostStallMean * d.sys.Split("host:"+wl.Name).LogNormalMeanSpread(1, wl.HostStallSpread)
	// A stalling chip's node is sick across the stack: its host side
	// starves too, which is what turns a 1.3× SGEMM outlier into the
	// 3.5×-slower, 76 W ResNet straggler of paper §V-A.
	if d.Chip.Defect == gpu.DefectStall {
		f *= 8
	}
	return f
}

// powerNoiseW returns this run's power-sensor offset: board telemetry
// quantizes and averages internally, so repeated medians differ by a
// watt or two even at identical operating points.
func (d *Device) powerNoiseW(run int) float64 {
	return d.sys.SplitIndex("pnoise", run).Gaussian(0, 1.8)
}

// kernelWorkMs returns the effective work of one kernel instance in
// nominal milliseconds after system and run factors.
func kernelWorkMs(k workload.Kernel, sysF, runF, iterF float64) float64 {
	return k.NominalMs * sysF * runF * iterF
}

// progressRate returns the kernel's instantaneous progress in nominal
// milliseconds per wall millisecond at the given clock: the harmonic
// blend of the frequency-scaled compute portion (degraded by stall
// defects) and the bandwidth-scaled memory portion.
func progressRate(chip *gpu.Chip, k workload.Kernel, freqMHz float64) float64 {
	fn := freqMHz / chip.SKU.MaxClockMHz
	if fn <= 0 {
		return 0
	}
	ce := chip.ComputeEff
	cPart := k.ComputeFrac / (fn * ce)
	mPart := (1 - k.ComputeFrac) / chip.MemBWFac
	denom := cPart + mPart
	if denom <= 0 {
		return 0
	}
	return 1 / denom
}

// effActivity returns the power activity of a kernel on this chip:
// stall defects reduce achieved compute activity (the chip is resident
// but idle-cycling), which is what makes Longhorn's c002 stragglers
// both slow AND low-power (§V-A).
func effActivity(chip *gpu.Chip, k workload.Kernel) gpu.Activity {
	return gpu.Activity{
		Compute: k.Act.Compute * chip.ComputeEff,
		Memory:  k.Act.Memory,
	}
}

// waitActivity is the power activity of a GPU spinning at a bulk-sync
// barrier (NCCL busy-wait: low FU activity, light memory polling).
var waitActivity = gpu.Activity{Compute: 0.04, Memory: 0.08}

// gapActivity is the activity between kernel launches (host gap).
var gapActivity = gpu.Activity{Compute: 0.02, Memory: 0.04}

// GPURunResult is one GPU's measurements for one run — the per-GPU,
// per-run record the paper's analysis aggregates.
type GPURunResult struct {
	GPUID string

	// PerfMs is the run's performance number per the workload's metric.
	PerfMs float64
	// IterationsMs are the per-iteration durations (barrier to barrier).
	IterationsMs []float64

	MedianFreqMHz float64
	MedianPowerW  float64
	MedianTempC   float64
	MaxPowerW     float64
	MaxTempC      float64

	// ThermallyLimited reports whether the GPU hit thermal throttling.
	ThermallyLimited bool
}

// Validate sanity-checks a result.
func (r GPURunResult) Validate() error {
	if r.PerfMs <= 0 {
		return fmt.Errorf("sim: non-positive perf %v for %s", r.PerfMs, r.GPUID)
	}
	if r.MedianPowerW < 0 || r.MedianTempC < -50 {
		return fmt.Errorf("sim: implausible medians for %s", r.GPUID)
	}
	return nil
}

// Options configures a run.
type Options struct {
	// AdminCapW is recorded for reference; the cap itself lives in each
	// device's controller (set at NewDevice time).
	AdminCapW float64
	// AmbientOffsetC shifts every device's inlet temperature for this
	// run (day-of-week / time-of-day facility drift, §VI-A).
	AmbientOffsetC float64
	// Run identifies the run for jitter sampling; runs with different
	// indices draw different run-level factors.
	Run int
	// DtMs is the transient tick (default 1 ms).
	DtMs float64
	// ColdStart begins the transient run at ambient temperature instead
	// of the warmed-up equilibrium (used for startup-ramp timelines).
	ColdStart bool
	// SampleIntervalMs is the telemetry sampling interval (default 1 ms,
	// the profiler floor).
	SampleIntervalMs float64
}

func (o Options) dt() float64 {
	if o.DtMs <= 0 {
		return 1
	}
	return o.DtMs
}

func (o Options) sampleInterval() float64 {
	if o.SampleIntervalMs <= 0 {
		return 1
	}
	return o.SampleIntervalMs
}

// runFactor returns the run-level jitter factor for a device.
func (d *Device) runFactor(wl workload.Workload, run int) float64 {
	if wl.RunJitter <= 0 {
		return 1
	}
	return d.sys.SplitIndex("run:"+wl.Name, run).LogNormalMeanSpread(1, wl.RunJitter)
}

// iterStream returns the per-run stream for iteration-level noise.
func (d *Device) iterStream(wl workload.Workload, run int) *rng.Source {
	return d.sys.SplitIndex("iter:"+wl.Name, run)
}

// commStream returns the job-shared stream for communication jitter.
// It must be identical across devices of the same job, so it derives
// from the workload and run only; the caller passes the job's stream.
func commStream(jobSeed *rng.Source, wl workload.Workload, run int) *rng.Source {
	return jobSeed.SplitIndex("comm:"+wl.Name, run)
}

// weightedMedian returns the value at the 50% cumulative weight of the
// (value, weight) pairs — how a fixed-interval sampler's median relates
// to time-weighted states.
func weightedMedian(vals, weights []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// Insertion sort by value (tiny n).
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && vals[idx[j]] < vals[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	half := total / 2
	var acc float64
	for _, i := range idx {
		acc += weights[i]
		if acc >= half {
			return vals[i]
		}
	}
	return vals[idx[len(idx)-1]]
}
