package sim

import (
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/workload"
)

// kernelIndex interns a workload's kernel names to dense indices, so the
// steady-state hot loop addresses per-kernel state by slice index instead
// of string-keyed map lookups. Kernels sharing a name share one slot
// (matching the map semantics the index replaced).
type kernelIndex struct {
	names  []string
	byName map[string]int
}

func newKernelIndex(ks []workload.Kernel) *kernelIndex {
	ki := &kernelIndex{byName: make(map[string]int, len(ks))}
	for _, k := range ks {
		if _, ok := ki.byName[k.Name]; !ok {
			ki.byName[k.Name] = len(ki.names)
			ki.names = append(ki.names, k.Name)
		}
	}
	return ki
}

func (ki *kernelIndex) n() int             { return len(ki.names) }
func (ki *kernelIndex) of(name string) int { return ki.byName[name] }

// planKernel pairs a kernel with its dense index so the iteration loop
// never touches the name map.
type planKernel struct {
	k  workload.Kernel
	di int
}

// RunSteady executes one run of wl on devs analytically: it solves each
// device's converged DVFS/thermal operating point per kernel class and
// synthesizes the same per-run measurements the transient path produces.
// It is ~10⁴× faster and validated against RunTransient in tests.
//
// jobStream seeds job-shared jitter exactly as in RunTransient.
func RunSteady(devs []*Device, wl workload.Workload, jobStream *rng.Source, opt Options) []GPURunResult {
	if len(devs) != wl.GPUsPerJob {
		panic("sim: device count does not match workload GPUsPerJob")
	}
	comm := commStream(jobStream, wl, opt.Run)
	jobCommF := 1.0
	if wl.CommSpread > 0 {
		jobCommF = comm.LogNormalMeanSpread(1, wl.CommSpread)
	}

	ki := newKernelIndex(wl.Kernels)

	type devPlan struct {
		st    *steadyPoint
		sysF  []float64 // dense kernel index → persistent system factor
		runF  float64
		hostF float64
		iter  *rng.Source
	}
	plans := make([]*devPlan, len(devs))
	for i, d := range devs {
		plans[i] = &devPlan{
			st:    d.steadyPlan(wl, ki, opt),
			sysF:  sysFactorsIndexed(d, wl, ki),
			runF:  d.runFactor(wl, opt.Run),
			hostF: d.HostStallFrac(wl),
			iter:  d.iterStream(wl, opt.Run),
		}
	}

	// Partition kernels once, carrying dense indices into the loop.
	var computeKs, commKs []planKernel
	recordsPerIter := make([]int, ki.n())
	for _, k := range wl.Kernels {
		pk := planKernel{k: k, di: ki.of(k.Name)}
		if k.Comm && wl.MultiGPU() {
			commKs = append(commKs, pk)
		} else {
			computeKs = append(computeKs, pk)
		}
		recordsPerIter[pk.di]++
	}

	// Synthesize iterations. Accumulators are preallocated to their exact
	// final sizes: each kernel slot records once per sharing kernel per
	// recorded iteration.
	results := make([]GPURunResult, len(devs))
	type perDev struct {
		kernelDur [][]float64 // dense kernel index → recorded durations
		iters     []float64
	}
	accum := make([]perDev, len(devs))
	for i := range accum {
		accum[i].kernelDur = make([][]float64, ki.n())
		for di, nrec := range recordsPerIter {
			accum[i].kernelDur[di] = make([]float64, 0, nrec*wl.Iterations)
		}
		accum[i].iters = make([]float64, 0, wl.Iterations)
	}

	// Per-device compute scratch, hoisted out of the iteration loop.
	computeMs := make([]float64, len(devs))

	// Warmup iterations consume the same jitter draws as the transient
	// path would, keeping streams aligned conceptually (values need not
	// match the transient's, but warmups must not be free).
	totalIters := wl.WarmupIters + wl.Iterations
	for it := 0; it < totalIters; it++ {
		recording := it >= wl.WarmupIters
		// Per-device compute time this iteration.
		for i, p := range plans {
			var t, nominal float64
			for _, pk := range computeKs {
				iterF := 1.0
				if wl.RunJitter > 0 {
					iterF = p.iter.LogNormalMeanSpread(1, wl.RunJitter/2)
				}
				d := p.st.kernelMs[pk.di] * p.sysF[pk.di] * p.runF * iterF
				t += d + wl.LaunchGapMs
				nominal += pk.k.NominalMs
				if recording {
					accum[i].kernelDur[pk.di] = append(accum[i].kernelDur[pk.di], d)
				}
			}
			// Host/input-pipeline stall, matching the transient path.
			if p.hostF > 0 {
				t += nominal * p.hostF * p.iter.LogNormalMeanSpread(1, 0.20)
			}
			computeMs[i] = t
		}
		// Barrier: iteration compute phase is the max across the job.
		maxCompute := 0.0
		for _, t := range computeMs {
			if t > maxCompute {
				maxCompute = t
			}
		}
		// Comm kernels in lockstep.
		var commMs float64
		for _, pk := range commKs {
			durF := jobCommF
			if wl.RunJitter > 0 {
				durF *= comm.LogNormalMeanSpread(1, wl.RunJitter)
			}
			// Comm kernels progress at each device's own rate; lockstep
			// completion means the slowest device sets the pace.
			worst := 0.0
			for i := range devs {
				d := pk.k.NominalMs * durF / progressRateAt(devs[i].Chip, pk.k, plans[i].st.freqMHz[pk.di])
				if d > worst {
					worst = d
				}
			}
			commMs += worst
			if recording {
				for i := range devs {
					accum[i].kernelDur[pk.di] = append(accum[i].kernelDur[pk.di], worst)
				}
			}
		}
		if recording {
			iterMs := maxCompute + commMs
			for i := range devs {
				accum[i].iters = append(accum[i].iters, iterMs)
			}
		}
	}

	// Mean per-iteration phase budget per device, for the sampled-median
	// model: kernel time, host-stall time, and barrier wait (iteration
	// minus own busy time).
	for i, d := range devs {
		p := plans[i]
		a := accum[i]
		r := GPURunResult{
			GPUID:            d.Chip.ID,
			IterationsMs:     a.iters,
			ThermallyLimited: p.st.thermal,
		}
		// Flatten kernel durations for the metric.
		var total int
		for _, ds := range a.kernelDur {
			total += len(ds)
		}
		all := make([]float64, 0, total)
		for _, ds := range a.kernelDur {
			all = append(all, ds...)
		}
		r.PerfMs = perfFromPlan(wl, ki, all, a.kernelDur, a.iters)

		var kernelMs, nominal float64
		for _, pk := range computeKs {
			kernelMs += p.st.kernelMs[pk.di] * p.sysF[pk.di] * p.runF
			nominal += pk.k.NominalMs
		}
		for _, pk := range commKs {
			kernelMs += p.st.kernelMs[pk.di]
		}
		hostMs := nominal * p.hostF
		iterMs := meanOf(a.iters)
		waitMs := iterMs - kernelMs - hostMs - wl.LaunchGapMs*float64(len(computeKs))
		if waitMs < 0 {
			waitMs = 0
		}
		r.MedianFreqMHz, r.MedianPowerW, r.MedianTempC = p.st.medians(d, wl, ki, p.sysF, hostMs, waitMs)
		r.MedianPowerW += d.powerNoiseW(opt.Run)
		r.MaxPowerW = p.st.maxPower
		r.MaxTempC = p.st.tempC
		results[i] = r
	}
	return results
}

// perfFromPlan derives the workload's performance metric from the dense
// accumulators. It is the single metric implementation: the transient
// path reaches it through perfFromMeasurements.
func perfFromPlan(wl workload.Workload, ki *kernelIndex, kernelMs []float64, byIdx [][]float64, itersMs []float64) float64 {
	switch wl.Metric {
	case workload.MetricIterationDuration:
		return medianFloat(itersMs)
	case workload.MetricSumLongKernels:
		// Per the paper (§V-C): sum of long-kernel durations within one
		// iteration; aggregate across iterations by median. Approximate
		// by summing per-kernel medians of long kernels.
		var sum float64
		for _, k := range wl.Kernels {
			if k.NominalMs >= wl.LongKernelMinMs {
				sum += medianFloat(byIdx[ki.of(k.Name)])
			}
		}
		return sum
	default: // MetricMedianKernel
		// Exclude comm kernels: the paper measures the compute kernel.
		var total int
		for _, k := range wl.Kernels {
			if !k.Comm {
				total += len(byIdx[ki.of(k.Name)])
			}
		}
		ds := make([]float64, 0, total)
		for _, k := range wl.Kernels {
			if k.Comm {
				continue
			}
			ds = append(ds, byIdx[ki.of(k.Name)]...)
		}
		if len(ds) == 0 {
			ds = kernelMs
		}
		return medianFloat(ds)
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// steadyPoint is a device's converged operating state per kernel class.
// The per-kernel slices are indexed by the workload's kernelIndex. A
// steadyPoint is immutable once solved, so devices memoize and share it
// across runs (see Device.steadyPlan).
type steadyPoint struct {
	tempC    float64
	maxPower float64
	thermal  bool
	// Per dense kernel index: equilibrium clock, power, and duration.
	freqMHz  []float64
	powerW   []float64
	kernelMs []float64
}

// steadyKey identifies a converged operating point. The workload is
// identified by Name — callers must not reuse one Device across two
// different workload definitions sharing a name (see Device.steady).
// The defect generation invalidates memoized points when a defect is
// injected mid-stream (campaign simulations).
type steadyKey struct {
	wlName    string
	ambientC  float64
	dither    bool
	defectGen uint32
}

// steadyPlan returns the device's converged operating point for this
// workload and run, memoized per device. The coarse-P-state dither draw
// happens before the lookup, so the RNG stream consumption is identical
// whether or not the memo hits — and the dither outcome is part of the
// key, so runs that park one state lower get their own solution.
func (d *Device) steadyPlan(wl workload.Workload, ki *kernelIndex, opt Options) *steadyPoint {
	dither := false
	if len(d.Chip.SKU.ClockStatesMHz) > 0 {
		dither = d.sys.SplitIndex("dpm", opt.Run).Bernoulli(0.35)
	}
	key := steadyKey{
		wlName:    wl.Name,
		ambientC:  opt.AmbientOffsetC,
		dither:    dither,
		defectGen: d.Chip.DefectGen(),
	}
	if sp, ok := d.steady[key]; ok {
		return sp
	}
	sp := solveSteady(d, wl, ki, opt, dither)
	if d.steady == nil {
		d.steady = make(map[steadyKey]*steadyPoint, 4)
	}
	d.steady[key] = sp
	return sp
}

// solveSteady computes the converged operating point of one device.
// dpmDither is drawn by the caller (see steadyPlan) so the memo key and
// the solution stay consistent.
func solveSteady(d *Device, wl workload.Workload, ki *kernelIndex, opt Options, dpmDither bool) *steadyPoint {
	chip := d.Chip
	ambientShift := opt.AmbientOffsetC
	steadyTemp := func(powerW float64) float64 {
		return d.Node.SteadyTempC(powerW, chip.ThermalResistFactor) + ambientShift
	}

	// Thermal equilibrium under the blended (time-weighted) activity.
	blended := wl.BlendedActivity()
	blendedEff := gpu.Activity{Compute: blended.Compute * chip.ComputeEff, Memory: blended.Memory}
	_, pEq, tEq := d.Ctl.SteadyState(blendedEff, steadyTemp)

	sp := &steadyPoint{
		tempC:    tEq,
		freqMHz:  make([]float64, ki.n()),
		powerW:   make([]float64, ki.n()),
		kernelMs: make([]float64, ki.n()),
	}
	slowdownStart := chip.SKU.SlowdownTempC - 2

	for _, k := range wl.Kernels {
		act := effActivity(chip, k)
		f, p := chip.MaxClockUnderCap(d.Ctl.CapW(), tEq, act)
		// Coarse-P-state parts (AMD DPM) show run-to-run state hysteresis:
		// the same chip parks one state lower on some runs depending on the
		// controller's probe timing. This is the dominant term in Corona's
		// large per-GPU repeat variation (paper Fig. 8: 6.06% median, versus
		// 0.44%/0.12% on the fine-stepping V100 clusters) and part of why
		// Corona's frequency-performance correlation is weaker (−0.76).
		if dpmDither && f < chip.MaxUsableClockMHz() {
			f = chip.SKU.StepDown(f)
			p = chip.TotalPower(f, tEq, act)
		}
		// Thermal constraint at this kernel's own sustained power.
		for steadyTemp(p) >= slowdownStart {
			next := chip.SKU.StepDown(f)
			if next >= f {
				break
			}
			f = next
			p = chip.TotalPower(f, tEq, act)
			sp.thermal = true
		}
		di := ki.of(k.Name)
		sp.freqMHz[di] = f
		sp.powerW[di] = p
		sp.kernelMs[di] = k.NominalMs / progressRateAt(chip, k, f)
		if p > sp.maxPower {
			sp.maxPower = p
		}
	}
	if pEq > sp.maxPower {
		sp.maxPower = pEq
	}
	return sp
}

// progressRateAt is progressRate with an explicit clock.
func progressRateAt(chip *gpu.Chip, k workload.Kernel, freqMHz float64) float64 {
	return progressRate(chip, k, freqMHz)
}

// medians computes the sampled-median frequency, power, and temperature
// over one iteration's phases: kernels weighted by their durations plus
// the host-stall and barrier-wait phases (the profilers sample
// continuously, so low-activity time pulls the medians down — the
// mechanism behind the wide ML power spreads of paper Figs. 14–17).
func (s *steadyPoint) medians(d *Device, wl workload.Workload, ki *kernelIndex, sysF []float64, hostMs, waitMs float64) (fMHz, powerW, tempC float64) {
	n := len(wl.Kernels) + 2
	vals := make([]float64, 0, n)
	weights := make([]float64, 0, n)
	pvals := make([]float64, 0, n)
	for _, k := range wl.Kernels {
		di := ki.of(k.Name)
		dur := s.kernelMs[di] * sysF[di]
		vals = append(vals, s.freqMHz[di])
		pvals = append(pvals, s.powerW[di])
		weights = append(weights, dur)
	}
	maxClock := d.Chip.SKU.QuantizeClock(d.Chip.MaxUsableClockMHz())
	if hostMs > 0 {
		// Host stall: clock stays boosted (the controller sees headroom),
		// power drops to near idle.
		vals = append(vals, maxClock)
		pvals = append(pvals, d.Chip.TotalPower(maxClock, s.tempC, gapActivity))
		weights = append(weights, hostMs)
	}
	if waitMs > 0 {
		vals = append(vals, maxClock)
		pvals = append(pvals, d.Chip.TotalPower(maxClock, s.tempC, waitActivity))
		weights = append(weights, waitMs)
	}
	fMHz = weightedMedian(vals, weights)
	powerW = weightedMedian(pvals, weights)
	return fMHz, powerW, s.tempC
}
