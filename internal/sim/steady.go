package sim

import (
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/workload"
)

// RunSteady executes one run of wl on devs analytically: it solves each
// device's converged DVFS/thermal operating point per kernel class and
// synthesizes the same per-run measurements the transient path produces.
// It is ~10⁴× faster and validated against RunTransient in tests.
//
// jobStream seeds job-shared jitter exactly as in RunTransient.
func RunSteady(devs []*Device, wl workload.Workload, jobStream *rng.Source, opt Options) []GPURunResult {
	if len(devs) != wl.GPUsPerJob {
		panic("sim: device count does not match workload GPUsPerJob")
	}
	comm := commStream(jobStream, wl, opt.Run)
	jobCommF := 1.0
	if wl.CommSpread > 0 {
		jobCommF = comm.LogNormalMeanSpread(1, wl.CommSpread)
	}

	type devPlan struct {
		st    *steadyPoint
		sysF  map[string]float64
		runF  float64
		hostF float64
		iter  *rng.Source
	}
	plans := make([]*devPlan, len(devs))
	for i, d := range devs {
		plans[i] = &devPlan{
			st:    solveSteady(d, wl, opt),
			sysF:  sysFactors(d, wl),
			runF:  d.runFactor(wl, opt.Run),
			hostF: d.HostStallFrac(wl),
			iter:  d.iterStream(wl, opt.Run),
		}
	}

	// Synthesize iterations.
	results := make([]GPURunResult, len(devs))
	type perDev struct {
		kernelDur map[string][]float64
		iters     []float64
	}
	accum := make([]perDev, len(devs))
	for i := range accum {
		accum[i].kernelDur = map[string][]float64{}
	}

	var computeKs, commKs []workload.Kernel
	for _, k := range wl.Kernels {
		if k.Comm && wl.MultiGPU() {
			commKs = append(commKs, k)
		} else {
			computeKs = append(computeKs, k)
		}
	}

	// Warmup iterations consume the same jitter draws as the transient
	// path would, keeping streams aligned conceptually (values need not
	// match the transient's, but warmups must not be free).
	totalIters := wl.WarmupIters + wl.Iterations
	for it := 0; it < totalIters; it++ {
		recording := it >= wl.WarmupIters
		// Per-device compute time this iteration.
		computeMs := make([]float64, len(devs))
		for i, p := range plans {
			var t, nominal float64
			for _, k := range computeKs {
				iterF := 1.0
				if wl.RunJitter > 0 {
					iterF = p.iter.LogNormalMeanSpread(1, wl.RunJitter/2)
				}
				d := p.st.kernelMs[k.Name] * p.sysF[k.Name] * p.runF * iterF
				t += d + wl.LaunchGapMs
				nominal += k.NominalMs
				if recording {
					accum[i].kernelDur[k.Name] = append(accum[i].kernelDur[k.Name], d)
				}
			}
			// Host/input-pipeline stall, matching the transient path.
			if p.hostF > 0 {
				t += nominal * p.hostF * p.iter.LogNormalMeanSpread(1, 0.20)
			}
			computeMs[i] = t
		}
		// Barrier: iteration compute phase is the max across the job.
		maxCompute := 0.0
		for _, t := range computeMs {
			if t > maxCompute {
				maxCompute = t
			}
		}
		// Comm kernels in lockstep.
		var commMs float64
		for _, ck := range commKs {
			durF := jobCommF
			if wl.RunJitter > 0 {
				durF *= comm.LogNormalMeanSpread(1, wl.RunJitter)
			}
			// Comm kernels progress at each device's own rate; lockstep
			// completion means the slowest device sets the pace.
			worst := 0.0
			for i := range devs {
				d := ck.NominalMs * durF / progressRateAt(devs[i].Chip, ck, plans[i].st.freqFor(ck))
				if d > worst {
					worst = d
				}
			}
			commMs += worst
			if recording {
				for i := range devs {
					accum[i].kernelDur[ck.Name] = append(accum[i].kernelDur[ck.Name], worst)
				}
			}
		}
		if recording {
			iterMs := maxCompute + commMs
			for i := range devs {
				accum[i].iters = append(accum[i].iters, iterMs)
			}
		}
	}

	// Mean per-iteration phase budget per device, for the sampled-median
	// model: kernel time, host-stall time, and barrier wait (iteration
	// minus own busy time).
	for i, d := range devs {
		p := plans[i]
		a := accum[i]
		r := GPURunResult{
			GPUID:            d.Chip.ID,
			IterationsMs:     a.iters,
			ThermallyLimited: p.st.thermal,
		}
		// Flatten kernel durations for the metric.
		var all []float64
		for _, ds := range a.kernelDur {
			all = append(all, ds...)
		}
		r.PerfMs = perfFromMeasurements(wl, all, a.kernelDur, a.iters)

		var kernelMs, nominal float64
		for _, k := range computeKs {
			kernelMs += p.st.kernelMs[k.Name] * p.sysF[k.Name] * p.runF
			nominal += k.NominalMs
		}
		for _, ck := range commKs {
			kernelMs += p.st.kernelMs[ck.Name]
		}
		hostMs := nominal * p.hostF
		iterMs := meanOf(a.iters)
		waitMs := iterMs - kernelMs - hostMs - wl.LaunchGapMs*float64(len(computeKs))
		if waitMs < 0 {
			waitMs = 0
		}
		r.MedianFreqMHz, r.MedianPowerW, r.MedianTempC = p.st.medians(d, wl, p.sysF, hostMs, waitMs)
		r.MedianPowerW += d.powerNoiseW(opt.Run)
		r.MaxPowerW = p.st.maxPower
		r.MaxTempC = p.st.tempC
		results[i] = r
	}
	return results
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// steadyPoint is a device's converged operating state per kernel class.
type steadyPoint struct {
	tempC    float64
	maxPower float64
	thermal  bool
	// Per kernel name: equilibrium clock, power, and duration.
	freqMHz  map[string]float64
	powerW   map[string]float64
	kernelMs map[string]float64
}

func (s *steadyPoint) freqFor(k workload.Kernel) float64 { return s.freqMHz[k.Name] }

// solveSteady computes the converged operating point of one device.
func solveSteady(d *Device, wl workload.Workload, opt Options) *steadyPoint {
	chip := d.Chip
	ambientShift := opt.AmbientOffsetC
	steadyTemp := func(powerW float64) float64 {
		return d.Node.SteadyTempC(powerW, chip.ThermalResistFactor) + ambientShift
	}

	// Thermal equilibrium under the blended (time-weighted) activity.
	blended := wl.BlendedActivity()
	blendedEff := gpu.Activity{Compute: blended.Compute * chip.ComputeEff, Memory: blended.Memory}
	_, pEq, tEq := d.Ctl.SteadyState(blendedEff, steadyTemp)

	sp := &steadyPoint{
		tempC:    tEq,
		freqMHz:  map[string]float64{},
		powerW:   map[string]float64{},
		kernelMs: map[string]float64{},
	}
	slowdownStart := chip.SKU.SlowdownTempC - 2

	// Coarse-P-state parts (AMD DPM) show run-to-run state hysteresis:
	// the same chip parks one state lower on some runs depending on the
	// controller's probe timing. This is the dominant term in Corona's
	// large per-GPU repeat variation (paper Fig. 8: 6.06% median, versus
	// 0.44%/0.12% on the fine-stepping V100 clusters) and part of why
	// Corona's frequency-performance correlation is weaker (−0.76).
	dpmDither := false
	if len(chip.SKU.ClockStatesMHz) > 0 {
		dpmDither = d.sys.SplitIndex("dpm", opt.Run).Bernoulli(0.35)
	}

	for _, k := range wl.Kernels {
		act := effActivity(chip, k)
		f, p := chip.MaxClockUnderCap(d.Ctl.CapW(), tEq, act)
		if dpmDither && f < chip.MaxUsableClockMHz() {
			f = chip.SKU.StepDown(f)
			p = chip.TotalPower(f, tEq, act)
		}
		// Thermal constraint at this kernel's own sustained power.
		for steadyTemp(p) >= slowdownStart {
			next := chip.SKU.StepDown(f)
			if next >= f {
				break
			}
			f = next
			p = chip.TotalPower(f, tEq, act)
			sp.thermal = true
		}
		sp.freqMHz[k.Name] = f
		sp.powerW[k.Name] = p
		sp.kernelMs[k.Name] = k.NominalMs / progressRateAt(chip, k, f)
		if p > sp.maxPower {
			sp.maxPower = p
		}
	}
	if pEq > sp.maxPower {
		sp.maxPower = pEq
	}
	return sp
}

// progressRateAt is progressRate with an explicit clock.
func progressRateAt(chip *gpu.Chip, k workload.Kernel, freqMHz float64) float64 {
	return progressRate(chip, k, freqMHz)
}

// medians computes the sampled-median frequency, power, and temperature
// over one iteration's phases: kernels weighted by their durations plus
// the host-stall and barrier-wait phases (the profilers sample
// continuously, so low-activity time pulls the medians down — the
// mechanism behind the wide ML power spreads of paper Figs. 14–17).
func (s *steadyPoint) medians(d *Device, wl workload.Workload, sysF map[string]float64, hostMs, waitMs float64) (fMHz, powerW, tempC float64) {
	var vals, weights, pvals []float64
	for _, k := range wl.Kernels {
		dur := s.kernelMs[k.Name]
		if f, ok := sysF[k.Name]; ok {
			dur *= f
		}
		vals = append(vals, s.freqMHz[k.Name])
		pvals = append(pvals, s.powerW[k.Name])
		weights = append(weights, dur)
	}
	maxClock := d.Chip.SKU.QuantizeClock(d.Chip.MaxUsableClockMHz())
	if hostMs > 0 {
		// Host stall: clock stays boosted (the controller sees headroom),
		// power drops to near idle.
		vals = append(vals, maxClock)
		pvals = append(pvals, d.Chip.TotalPower(maxClock, s.tempC, gapActivity))
		weights = append(weights, hostMs)
	}
	if waitMs > 0 {
		vals = append(vals, maxClock)
		pvals = append(pvals, d.Chip.TotalPower(maxClock, s.tempC, waitActivity))
		weights = append(weights, waitMs)
	}
	fMHz = weightedMedian(vals, weights)
	powerW = weightedMedian(pvals, weights)
	return fMHz, powerW, s.tempC
}
