package sim

import (
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/telemetry"
	"gpuvar/internal/workload"
)

// devState tracks one device's execution position inside a transient job.
type devState struct {
	dev *Device
	rec *telemetry.Recorder

	sysF  map[string]float64 // per-kernel persistent system factor
	runF  float64
	hostF float64 // persistent host-stall fraction
	iter  *rng.Source

	kernelIdx  int     // index into the iteration's kernel list
	progress   float64 // nominal ms completed of the current kernel
	workMs     float64 // total nominal ms of the current kernel instance
	gapLeftMs  float64 // remaining host launch gap
	hostLeftMs float64 // remaining input-pipeline stall this iteration
	marked     bool    // BeginKernel recorded for the current kernel
	atBarrier  bool    // finished compute kernels, waiting for peers
	iterStart  float64
	thermalHit bool
	pNoise     float64

	result GPURunResult // accumulates iteration records during the run
}

// TransientResult bundles per-GPU results with their full traces.
type TransientResult struct {
	Results []GPURunResult
	Traces  []*telemetry.Trace
}

// RunTransient executes one run of wl on devs (len must equal
// wl.GPUsPerJob) with the full tick-level physics, returning per-GPU
// results and telemetry traces. jobStream seeds job-shared jitter
// (communication time); it must differ between jobs.
func RunTransient(devs []*Device, wl workload.Workload, jobStream *rng.Source, opt Options) TransientResult {
	if len(devs) != wl.GPUsPerJob {
		panic("sim: device count does not match workload GPUsPerJob")
	}
	dt := opt.dt()
	comm := commStream(jobStream, wl, opt.Run)
	// Communication time has a per-job, per-run component (NCCL ring
	// construction, link routing) plus small per-iteration jitter.
	jobCommF := 1.0
	if wl.CommSpread > 0 {
		jobCommF = comm.LogNormalMeanSpread(1, wl.CommSpread)
	}

	// Partition kernels: compute kernels run per-GPU, comm kernels run
	// after the barrier.
	var computeKs, commKs []workload.Kernel
	for _, k := range wl.Kernels {
		if k.Comm && wl.MultiGPU() {
			commKs = append(commKs, k)
		} else {
			computeKs = append(computeKs, k)
		}
	}

	ki := newKernelIndex(wl.Kernels)
	states := make([]*devState, len(devs))
	for i, d := range devs {
		st := &devState{
			dev:    d,
			rec:    telemetry.NewRecorder(d.Chip.ID, opt.sampleInterval()),
			sysF:   sysFactors(d, wl),
			runF:   d.runFactor(wl, opt.Run),
			hostF:  d.HostStallFrac(wl),
			iter:   d.iterStream(wl, opt.Run),
			pNoise: d.powerNoiseW(opt.Run),
		}
		// Warm start: the paper measures after a full warm-up run, by
		// which time the die sits at its sustained-load equilibrium (the
		// air-cooled RC constant is ~20 s; a cold start would bias the
		// first minute of samples).
		if opt.ColdStart {
			d.Node.TempC = d.Node.AmbientC + opt.AmbientOffsetC
		} else {
			d.Node.TempC = d.steadyPlan(wl, ki, opt).tempC
		}
		states[i] = st
	}

	totalIters := wl.WarmupIters + wl.Iterations
	tMs := 0.0
	for iter := 0; iter < totalIters; iter++ {
		recording := iter >= wl.WarmupIters
		// Iteration noise must come from the same draw count whether or
		// not recording, so warmups don't shift the stream.
		for _, st := range states {
			st.kernelIdx = 0
			st.atBarrier = false
			st.iterStart = tMs
			st.hostLeftMs = st.sampleHostStall(computeKs, wl)
			st.startKernel(computeKs, wl, recording, tMs)
		}
		// Phase 1: per-GPU compute kernels until all reach the barrier.
		for !allAtBarrier(states) {
			tMs += dt
			for _, st := range states {
				st.tick(dt, tMs, computeKs, wl, recording, opt)
			}
		}
		// Phase 2: communication kernels execute in lockstep on all
		// GPUs with job-shared duration jitter.
		for _, ck := range commKs {
			durF := jobCommF
			if wl.RunJitter > 0 {
				durF *= comm.LogNormalMeanSpread(1, wl.RunJitter)
			}
			work := ck.NominalMs * durF
			for _, st := range states {
				st.workMs = work
				st.progress = 0
				if recording {
					st.rec.BeginKernel(ck.Name, tMs)
				}
			}
			done := false
			for !done {
				tMs += dt
				done = true
				for _, st := range states {
					if st.progress < st.workMs {
						st.progress += dt * progressRate(st.dev.Chip, ck, st.dev.Ctl.FreqMHz())
						st.tickPhysics(dt, tMs, effActivity(st.dev.Chip, ck), true, opt)
						if st.progress < st.workMs {
							done = false
						} else if recording {
							st.rec.EndKernel(tMs)
						}
					} else {
						st.tickPhysics(dt, tMs, waitActivity, true, opt)
					}
				}
			}
		}
		if recording {
			iterMs := tMs - states[0].iterStart
			for _, st := range states {
				st.recordIteration(iterMs)
			}
		}
	}
	for _, st := range states {
		st.dev.Ctl.Park()
	}

	res := TransientResult{}
	for _, st := range states {
		res.Results = append(res.Results, st.finish(wl))
		res.Traces = append(res.Traces, st.rec.Trace())
	}
	return res
}

// iterationsMs accumulates on devState via recordIteration.
func (st *devState) recordIteration(iterMs float64) {
	st.result.IterationsMs = append(st.result.IterationsMs, iterMs)
}

// startKernel begins the kernel at kernelIdx, sampling its work. The
// telemetry mark is deferred until the host launch gap elapses so the
// measured duration covers device execution only.
func (st *devState) startKernel(ks []workload.Kernel, wl workload.Workload, recording bool, tMs float64) {
	if st.kernelIdx >= len(ks) {
		st.atBarrier = true
		return
	}
	k := ks[st.kernelIdx]
	iterF := 1.0
	if wl.RunJitter > 0 {
		iterF = st.iter.LogNormalMeanSpread(1, wl.RunJitter/2)
	}
	st.workMs = kernelWorkMs(k, st.sysF[k.Name], st.runF, iterF)
	st.progress = 0
	st.gapLeftMs = wl.LaunchGapMs
	st.marked = false
}

// tick advances one device by dt within the compute phase.
func (st *devState) tick(dt, tMs float64, ks []workload.Kernel, wl workload.Workload, recording bool, opt Options) {
	if st.atBarrier {
		st.tickPhysics(dt, tMs, waitActivity, true, opt)
		return
	}
	if st.hostLeftMs > 0 {
		// Input-pipeline / framework stall: the GPU idles at low
		// activity with the clock still boosted.
		st.hostLeftMs -= dt
		st.tickPhysics(dt, tMs, gapActivity, true, opt)
		return
	}
	k := ks[st.kernelIdx]
	if st.gapLeftMs > 0 {
		// Host-side launch gap before the kernel body executes.
		st.gapLeftMs -= dt
		st.tickPhysics(dt, tMs, gapActivity, true, opt)
		return
	}
	if !st.marked && recording {
		st.rec.BeginKernel(k.Name, tMs)
	}
	st.marked = true
	st.progress += dt * progressRate(st.dev.Chip, k, st.dev.Ctl.FreqMHz())
	st.tickPhysics(dt, tMs, effActivity(st.dev.Chip, k), true, opt)
	if st.progress >= st.workMs {
		if recording {
			st.rec.EndKernel(tMs)
		}
		st.kernelIdx++
		st.startKernel(ks, wl, recording, tMs)
	}
}

// tickPhysics advances power, thermal, DVFS, and telemetry by dt.
func (st *devState) tickPhysics(dt, tMs float64, act gpu.Activity, busy bool, opt Options) {
	d := st.dev
	f := d.Ctl.FreqMHz()
	p := d.Chip.TotalPower(f, d.Node.TempC, act)
	d.Node.Step(dt/1000, p, d.Chip.ThermalResistFactor)
	d.Ctl.Tick(dt, p, d.Node.TempC, busy)
	if d.Ctl.ThermallyLimited() {
		st.thermalHit = true
	}
	st.rec.Record(tMs, f, p, d.Node.TempC)
}

// sampleHostStall draws this iteration's host stall time in wall ms:
// the compute kernels' nominal total scaled by the persistent per-GPU
// stall fraction and per-iteration input jitter.
func (st *devState) sampleHostStall(ks []workload.Kernel, wl workload.Workload) float64 {
	if st.hostF <= 0 {
		return 0
	}
	var nominal float64
	for _, k := range ks {
		nominal += k.NominalMs
	}
	jitter := st.iter.LogNormalMeanSpread(1, 0.20)
	return nominal * st.hostF * jitter
}

// finish computes the per-run aggregates from the trace. Metric medians
// cover the whole sample stream — the vendor profilers sample power,
// frequency, and temperature continuously, not per kernel.
func (st *devState) finish(wl workload.Workload) GPURunResult {
	tr := st.rec.Trace()
	r := st.result
	r.GPUID = st.dev.Chip.ID
	r.MedianFreqMHz = tr.MedianFreqMHz()
	r.MedianPowerW = tr.MedianPowerW() + st.pNoise
	r.MedianTempC = tr.MedianTempC()
	r.MaxPowerW = tr.MaxPowerW()
	r.MaxTempC = tr.MaxTempC()
	r.ThermallyLimited = st.thermalHit
	r.PerfMs = perfFromMeasurements(wl, tr.KernelDurationsMs(), tr.KernelDurationsByName(), r.IterationsMs)
	return r
}

// perfFromMeasurements derives the workload's performance metric from
// name-keyed durations by viewing them through a kernel index and
// delegating to perfFromPlan — one metric implementation for both the
// steady and transient paths.
func perfFromMeasurements(wl workload.Workload, kernelMs []float64, byName map[string][]float64, itersMs []float64) float64 {
	ki := newKernelIndex(wl.Kernels)
	byIdx := make([][]float64, ki.n())
	for name, ds := range byName {
		if di, ok := ki.byName[name]; ok {
			byIdx[di] = ds
		}
	}
	return perfFromPlan(wl, ki, kernelMs, byIdx, itersMs)
}

func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	// Insertion sort is fine for per-run sizes; runs have ≤ a few
	// hundred kernels.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func allAtBarrier(states []*devState) bool {
	for _, st := range states {
		if !st.atBarrier {
			return false
		}
	}
	return true
}
