package core

import (
	"context"
	"fmt"
	"sort"

	"gpuvar/internal/rng"
	"gpuvar/internal/sched"
	"gpuvar/internal/workload"
)

// SchedulerStudy quantifies the paper's §VII proposal ("modify
// schedulers to assign medium- and high-compute intensity workloads on
// nodes with less variation; memory-bound applications can be run on
// higher-variation nodes without incurring significant performance
// loss"): the same job stream placed by a variability-blind policy
// versus a variability-aware one, with job durations taken from the
// fleet's measured per-node performance.

// SchedOutcome is one policy's result over the job stream.
type SchedOutcome struct {
	Policy sched.Policy
	// MakespanS is the completion time of the last job.
	MakespanS float64
	// MeanJobS is the average effective job duration (nominal duration
	// scaled by the assigned node's slowdown for compute-bound jobs).
	MeanJobS float64
	// SlowNodeHits counts compute-bound jobs placed on a node whose
	// benchmarked performance is >6% off the fleet's fastest node.
	SlowNodeHits int
}

// SchedStudyConfig describes the synthetic job stream.
type SchedStudyConfig struct {
	// ComputeJobs and MemoryJobs are the counts of each class.
	ComputeJobs int
	MemoryJobs  int
	// JobS is the nominal job duration at the fastest node.
	JobS float64
	// ArrivalGapS is the submission spacing.
	ArrivalGapS float64
	// GPUsPerJob is the allocation size.
	GPUsPerJob int
}

func (c SchedStudyConfig) withDefaults() SchedStudyConfig {
	if c.ComputeJobs <= 0 {
		c.ComputeJobs = 40
	}
	if c.MemoryJobs < 0 {
		c.MemoryJobs = 0
	}
	if c.JobS <= 0 {
		c.JobS = 600
	}
	if c.ArrivalGapS <= 0 {
		c.ArrivalGapS = 5
	}
	if c.GPUsPerJob <= 0 {
		c.GPUsPerJob = 4
	}
	return c
}

// SchedulerStudy benchmarks the fleet with the experiment's workload,
// scores each node by its slowest GPU, then replays the job stream under
// each policy. Compute-bound jobs run at the assigned node's pace;
// memory-bound jobs are insensitive to it (the paper's classification
// insight).
func SchedulerStudy(exp Experiment, cfg SchedStudyConfig, policies []sched.Policy) ([]SchedOutcome, error) {
	return SchedulerStudyCtx(context.Background(), exp, cfg, policies)
}

// SchedulerStudyCtx is SchedulerStudy with cooperative cancellation of
// the fleet benchmark (the replay itself is microseconds).
func SchedulerStudyCtx(ctx context.Context, exp Experiment, cfg SchedStudyConfig, policies []sched.Policy) ([]SchedOutcome, error) {
	cfg = cfg.withDefaults()
	bench, err := RunCtx(ctx, exp)
	if err != nil {
		return nil, fmt.Errorf("core: scheduler study benchmark: %w", err)
	}
	if workload.Classify(exp.Workload.Profile) == workload.MemoryBound {
		return nil, fmt.Errorf("core: benchmark the fleet with a compute-bound workload")
	}

	// Node score: slowest GPU's benchmarked duration (the pace a
	// bulk-synchronous job on that node runs at).
	nodePerf := map[string]float64{}
	gpusByNode := map[string][]string{}
	fastest := 0.0
	for _, m := range bench.PerAG {
		id := m.Loc.NodeID()
		if m.PerfMs > nodePerf[id] {
			nodePerf[id] = m.PerfMs
		}
		gpusByNode[id] = append(gpusByNode[id], m.GPUID)
		if fastest == 0 || m.PerfMs < fastest {
			fastest = m.PerfMs
		}
	}
	fastestNode := 0.0
	for _, p := range nodePerf {
		if fastestNode == 0 || p < fastestNode {
			fastestNode = p
		}
	}

	var nodes []sched.Node
	nodeIDs := make([]string, 0, len(nodePerf))
	for id := range nodePerf {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Strings(nodeIDs)
	for _, id := range nodeIDs {
		gpus := gpusByNode[id]
		sort.Strings(gpus)
		nodes = append(nodes, sched.Node{
			ID:        id,
			GPUs:      gpus,
			PerfScore: -nodePerf[id], // higher = faster
		})
	}

	mkJobs := func() []sched.Job {
		var jobs []sched.Job
		id := 0
		for i := 0; i < cfg.ComputeJobs; i++ {
			jobs = append(jobs, sched.Job{
				ID: id, Name: "compute", GPUs: cfg.GPUsPerJob,
				SubmitS: float64(id) * cfg.ArrivalGapS, DurS: cfg.JobS,
			})
			id++
		}
		for i := 0; i < cfg.MemoryJobs; i++ {
			jobs = append(jobs, sched.Job{
				ID: id, Name: "memory", GPUs: cfg.GPUsPerJob,
				SubmitS: float64(id) * cfg.ArrivalGapS, DurS: cfg.JobS,
			})
			id++
		}
		return jobs
	}

	var out []SchedOutcome
	for _, policy := range policies {
		s := sched.New(nodes, policy, rng.New(exp.Seed).Split("schedstudy"))
		// Two-pass replay: schedule with nominal durations, then scale
		// compute jobs by the node slowdown and recompute aggregates.
		jobs := s.Schedule(mkJobs())
		var totalJobS float64
		slowHits := 0
		makespan := 0.0
		for _, j := range jobs {
			if j.Rejected {
				continue
			}
			dur := j.DurS
			slowdown := nodePerf[j.NodeID] / fastestNode
			if j.Name == "compute" {
				dur *= slowdown
				if slowdown > 1.06 {
					slowHits++
				}
			}
			totalJobS += dur
			if end := j.StartS + dur; end > makespan {
				makespan = end
			}
		}
		n := cfg.ComputeJobs + cfg.MemoryJobs
		out = append(out, SchedOutcome{
			Policy:       policy,
			MakespanS:    makespan,
			MeanJobS:     totalJobS / float64(n),
			SlowNodeHits: slowHits,
		})
	}
	return out, nil
}
