package core

import (
	"testing"

	"gpuvar/internal/cluster"
	"gpuvar/internal/sched"
	"gpuvar/internal/workload"
)

func TestSchedulerStudyAwareBeatsRandom(t *testing.T) {
	exp := sgemmExp(cluster.Longhorn(), 8)
	outcomes, err := SchedulerStudy(exp,
		SchedStudyConfig{ComputeJobs: 30, GPUsPerJob: 4, JobS: 600, ArrivalGapS: 5},
		[]sched.Policy{sched.Random, sched.BestPerf})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[sched.Policy]SchedOutcome{}
	for _, o := range outcomes {
		byPolicy[o.Policy] = o
	}
	random, aware := byPolicy[sched.Random], byPolicy[sched.BestPerf]
	if aware.SlowNodeHits >= random.SlowNodeHits {
		t.Fatalf("variability-aware placement should hit fewer slow nodes: %d vs %d",
			aware.SlowNodeHits, random.SlowNodeHits)
	}
	if aware.MeanJobS >= random.MeanJobS {
		t.Fatalf("aware mean job time %v should beat random %v",
			aware.MeanJobS, random.MeanJobS)
	}
}

func TestSchedulerStudyMemoryJobsInsensitive(t *testing.T) {
	// Memory-bound jobs run at nominal duration on any node — the paper's
	// rationale for sending them to high-variation nodes.
	exp := sgemmExp(cluster.Longhorn(), 8)
	outcomes, err := SchedulerStudy(exp,
		SchedStudyConfig{ComputeJobs: 1, MemoryJobs: 30, GPUsPerJob: 4, JobS: 500},
		[]sched.Policy{sched.WorstPerf})
	if err != nil {
		t.Fatal(err)
	}
	// Nearly all jobs are memory-bound, so the mean stays near nominal
	// even on the worst nodes.
	if o := outcomes[0]; o.MeanJobS > 520 {
		t.Fatalf("memory-bound stream mean %v should stay near the 500 s nominal", o.MeanJobS)
	}
}

func TestSchedulerStudyRejectsMemoryBenchmark(t *testing.T) {
	exp := sgemmExp(cluster.Longhorn(), 4)
	exp.Workload = workload.PageRank(643994, 6250000, cluster.Longhorn().SKU())
	exp.Workload.Iterations = 4
	if _, err := SchedulerStudy(exp, SchedStudyConfig{}, []sched.Policy{sched.Random}); err == nil {
		t.Fatal("memory-bound benchmark should be rejected")
	}
}
