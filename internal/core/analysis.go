package core

import (
	"fmt"
	"sort"

	"gpuvar/internal/sched"
	"gpuvar/internal/stats"
)

// Metric selects one of the study's four measured quantities.
type Metric int

// The four metrics of the study (§III "Measurement").
const (
	Perf Metric = iota
	Freq
	Power
	Temp
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case Perf:
		return "performance"
	case Freq:
		return "frequency"
	case Power:
		return "power"
	case Temp:
		return "temperature"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Of extracts the metric's value from a measurement.
func (m Metric) Of(meas Measurement) float64 {
	switch m {
	case Perf:
		return meas.PerfMs
	case Freq:
		return meas.FreqMHz
	case Power:
		return meas.PowerW
	case Temp:
		return meas.TempC
	default:
		panic("core: unknown metric")
	}
}

// Values returns the metric across all measured GPUs, in fleet order.
func (r *Result) Values(m Metric) []float64 {
	out := make([]float64, len(r.PerAG))
	for i, meas := range r.PerAG {
		out[i] = m.Of(meas)
	}
	return out
}

// Box returns the box-plot summary of a metric across the fleet.
func (r *Result) Box(m Metric) (stats.BoxPlot, error) {
	return stats.NewBoxPlot(r.Values(m))
}

// Variation returns the paper's variability number for a metric:
// whisker range divided by median, outliers excluded.
func (r *Result) Variation(m Metric) float64 {
	return stats.Variation(r.Values(m))
}

// NormalizedPerf returns per-GPU performance normalized to a median of
// 1 (paper Fig. 1).
func (r *Result) NormalizedPerf() []float64 {
	return stats.Normalize(r.Values(Perf))
}

// BoxByGroup returns per-group box plots of a metric, grouped by the
// cluster's plot grouping (cabinet, or row on Summit).
func (r *Result) BoxByGroup(m Metric) map[string]stats.BoxPlot {
	grouped := map[string][]float64{}
	for _, meas := range r.PerAG {
		g := meas.Loc.Group()
		grouped[g] = append(grouped[g], m.Of(meas))
	}
	out := map[string]stats.BoxPlot{}
	for g, xs := range grouped {
		if bp, err := stats.NewBoxPlot(xs); err == nil {
			out[g] = bp
		}
	}
	return out
}

// GroupLabels returns the sorted group labels present in the result.
func (r *Result) GroupLabels() []string {
	seen := map[string]bool{}
	var out []string
	for _, meas := range r.PerAG {
		g := meas.Loc.Group()
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// Correlations bundles the Pearson coefficients the paper reports for
// every cluster (Figs. 3, 5, 7, 10, 13, 15).
type Correlations struct {
	PerfTemp  float64
	PerfPower float64
	PerfFreq  float64
	PowerTemp float64
}

// Correlate computes the four metric-pair correlations.
func (r *Result) Correlate() Correlations {
	perf := r.Values(Perf)
	return Correlations{
		PerfTemp:  stats.Pearson(perf, r.Values(Temp)),
		PerfPower: stats.Pearson(perf, r.Values(Power)),
		PerfFreq:  stats.Pearson(perf, r.Values(Freq)),
		PowerTemp: stats.Pearson(r.Values(Power), r.Values(Temp)),
	}
}

// PerGPUVariation returns each GPU's repeat-run variation
// (t_max − t_min)/t_median — paper Fig. 8. Requires Runs ≥ 2.
func (r *Result) PerGPUVariation() []float64 {
	var out []float64
	for _, meas := range r.PerAG {
		if len(meas.PerRunPerfMs) < 2 {
			continue
		}
		med := stats.Median(meas.PerRunPerfMs)
		if med == 0 {
			continue
		}
		out = append(out, (stats.Max(meas.PerRunPerfMs)-stats.Min(meas.PerRunPerfMs))/med)
	}
	return out
}

// UserImpact reproduces the §VII "Impact on Users" numbers: the
// fraction of GPUs at least threshold slower than the fastest, and the
// probability that 1- and k-GPU allocations include one.
type UserImpact struct {
	Threshold    float64
	SlowFraction float64
	PSingleGPU   float64
	PMultiGPU    float64
	MultiGPUSize int
}

// Impact computes the slow-GPU allocation odds at the given slowness
// threshold (the paper uses ~6%) and multi-GPU job size.
func (r *Result) Impact(threshold float64, multiGPU int) UserImpact {
	frac, p1 := sched.SlowGPUOdds(r.Values(Perf), threshold, 1)
	_, pk := sched.SlowGPUOdds(r.Values(Perf), threshold, multiGPU)
	return UserImpact{
		Threshold:    threshold,
		SlowFraction: frac,
		PSingleGPU:   p1,
		PMultiGPU:    pk,
		MultiGPUSize: multiGPU,
	}
}

// ProjectedVariationAt projects the performance variation to a larger
// fleet size via the fitted-normal whisker model (§IV-D's comparison of
// Longhorn scaled to Summit size).
func (r *Result) ProjectedVariationAt(n int) float64 {
	return stats.ProjectedVariationAtScale(r.Values(Perf), n)
}

// Filter returns a Result restricted to measurements satisfying keep.
func (r *Result) Filter(keep func(Measurement) bool) *Result {
	out := &Result{Exp: r.Exp}
	for _, m := range r.PerAG {
		if keep(m) {
			out.PerAG = append(out.PerAG, m)
		}
	}
	return out
}

// Summary condenses the result into the numbers the paper reports per
// experiment.
type Summary struct {
	Cluster   string
	Workload  string
	GPUs      int
	PerfVar   float64
	FreqVar   float64
	PowerVar  float64
	TempVar   float64
	MedianMs  float64
	Corr      Correlations
	NOutliers int
}

// Summarize produces the experiment's headline numbers.
func (r *Result) Summarize() Summary {
	s := Summary{
		Cluster:  r.Exp.Cluster.Name,
		Workload: r.Exp.Workload.Name,
		GPUs:     len(r.PerAG),
		PerfVar:  r.Variation(Perf),
		FreqVar:  r.Variation(Freq),
		PowerVar: r.Variation(Power),
		TempVar:  r.Variation(Temp),
		Corr:     r.Correlate(),
	}
	if bp, err := r.Box(Perf); err == nil {
		s.MedianMs = bp.Q2
		s.NOutliers = len(bp.Outliers)
	}
	return s
}
