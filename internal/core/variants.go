package core

import (
	"context"
	"fmt"
	"math"

	"gpuvar/internal/engine"
)

// A VariantAxis names the experiment knob a sweep varies. The paper's
// §VI-B power-limit sweep is one instance of a more general shape —
// "run the same experiment once per value of one knob" — that also
// covers fleet-seed sweeps (uncertainty bands), ambient-temperature
// sweeps (facility what-ifs), and coverage-fraction ladders
// (cost/accuracy trades). VariantSweepCtx implements that shape once;
// every axis shares the same engine job graph, validation, and result
// schema.
type VariantAxis string

const (
	// AxisPowerCap sweeps the administrative power limit in watts
	// (0 = TDP). Values must be >= 0.
	AxisPowerCap VariantAxis = "powercap"
	// AxisSeed sweeps the fleet instantiation seed. Values must be
	// non-negative integers (exactly representable in a float64).
	AxisSeed VariantAxis = "seed"
	// AxisAmbient sweeps the facility inlet-temperature offset in °C.
	// Values must lie in [-25, 25].
	AxisAmbient VariantAxis = "ambient"
	// AxisFraction sweeps the fraction of observed GPUs measured.
	// Values must lie in (0, 1].
	AxisFraction VariantAxis = "fraction"
)

// VariantAxes lists every axis, in a stable order for error messages
// and docs.
func VariantAxes() []VariantAxis {
	return []VariantAxis{AxisPowerCap, AxisSeed, AxisAmbient, AxisFraction}
}

// ParseVariantAxis resolves an axis name.
func ParseVariantAxis(s string) (VariantAxis, error) {
	for _, a := range VariantAxes() {
		if s == string(a) {
			return a, nil
		}
	}
	return "", fmt.Errorf("unknown sweep axis %q (known: %v)", s, VariantAxes())
}

// maxSeedValue is the largest float64-representable integer (2^53):
// seeds arrive as JSON numbers, so anything larger would already have
// lost precision in transit.
const maxSeedValue = 1 << 53

// Validate checks that v is a legal setting for the axis.
func (a VariantAxis) Validate(v float64) error {
	switch a {
	case AxisPowerCap:
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bad %s value %v: want a cap in watts >= 0 (0 = TDP)", a, v)
		}
	case AxisSeed:
		if v < 0 || v != math.Trunc(v) || v > maxSeedValue {
			return fmt.Errorf("bad %s value %v: want a non-negative integer <= 2^53", a, v)
		}
	case AxisAmbient:
		if math.IsNaN(v) || v < -25 || v > 25 {
			return fmt.Errorf("bad %s value %v: want an offset in °C within [-25, 25]", a, v)
		}
	case AxisFraction:
		if !(v > 0 && v <= 1) { // written so NaN fails too
			return fmt.Errorf("bad %s value %v: want a fraction 0 < f <= 1", a, v)
		}
	default:
		return fmt.Errorf("unknown sweep axis %q (known: %v)", a, VariantAxes())
	}
	return nil
}

// apply sets the axis's knob on the experiment. Values must already be
// validated.
func (a VariantAxis) apply(e *Experiment, v float64) {
	switch a {
	case AxisPowerCap:
		e.AdminCapW = v
	case AxisSeed:
		e.Seed = uint64(v)
	case AxisAmbient:
		e.AmbientOffsetC = v
	case AxisFraction:
		e.Fraction = v
	}
}

// VariantPoint is one variant's outcome: the axis value it ran at and
// the same summary statistics the power-limit sweep has always
// reported.
type VariantPoint struct {
	Axis      VariantAxis
	Value     float64
	PerfVar   float64
	MedianMs  float64
	NOutliers int
	GPUs      int
	Result    *Result

	// Estimated marks a point answered by the analytical estimator
	// (EstimateSweepCtx, or a screened-out variant of AdaptiveSweepCtx)
	// instead of full simulation; Bound is then the estimator's
	// relative error bound on MedianMs, and Result is nil.
	Estimated bool
	Bound     float64
}

// VariantSweep runs the sweep without cancellation.
func VariantSweep(exp Experiment, axis VariantAxis, values []float64) ([]VariantPoint, error) {
	return VariantSweepCtx(context.Background(), exp, axis, values)
}

// VariantSweepCtx runs the experiment once per value of the axis as one
// engine job graph: every variant is a shard, the variants' own per-GPU
// jobs nest inside, and results keep values order. Axes that leave the
// fleet untouched (powercap, ambient, fraction) share a single cached
// instantiation; the seed axis instantiates one fleet per value, which
// is exactly the case the fleet cache's LRU bound exists for. For
// AxisPowerCap this is bit-identical to PowerLimitSweepCtx, which is
// now a façade over it.
func VariantSweepCtx(ctx context.Context, exp Experiment, axis VariantAxis, values []float64) ([]VariantPoint, error) {
	for _, v := range values {
		if err := axis.Validate(v); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	return engine.Map(ctx, len(values), 0, func(ctx context.Context, i int) (VariantPoint, error) {
		return runVariant(ctx, exp, axis, values[i])
	})
}

// RunVariantCtx runs exactly one variant — the shard body
// VariantSweepCtx fans out — validated and addressable on its own, so
// an out-of-process dispatcher (internal/dispatch) can execute single
// shards on another replica with bit-identical results.
func RunVariantCtx(ctx context.Context, exp Experiment, axis VariantAxis, v float64) (VariantPoint, error) {
	if err := axis.Validate(v); err != nil {
		return VariantPoint{}, fmt.Errorf("core: %w", err)
	}
	return runVariant(ctx, exp, axis, v)
}

// FleetSeed returns the fleet-instantiation seed the variant actually
// runs with: the axis value on seed sweeps, the experiment's seed
// otherwise. It is the seed half of the (spec, seed) fleet-cache key,
// which is what cache-affinity routing hashes on.
func FleetSeed(exp Experiment, axis VariantAxis, v float64) uint64 {
	if axis == AxisSeed {
		return uint64(v)
	}
	return exp.Seed
}

// runVariant is the one full-simulation shard body shared by
// VariantSweepCtx and AdaptiveSweepCtx — sharing it is what keeps an
// adaptive sweep's simulated points bit-identical to the plain sweep's.
func runVariant(ctx context.Context, exp Experiment, axis VariantAxis, v float64) (VariantPoint, error) {
	e := exp
	axis.apply(&e, v)
	r, err := RunCtx(ctx, e)
	if err != nil {
		return VariantPoint{}, fmt.Errorf("core: %s %v: %w", axis, v, err)
	}
	p := VariantPoint{Axis: axis, Value: v, PerfVar: r.Variation(Perf), GPUs: len(r.PerAG), Result: r}
	if bp, err := r.Box(Perf); err == nil {
		p.MedianMs = bp.Q2
		p.NOutliers = len(bp.Outliers)
	}
	return p, nil
}
