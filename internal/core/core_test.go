package core

import (
	"math"
	"strings"
	"testing"

	"gpuvar/internal/cluster"
	"gpuvar/internal/gpu"
	"gpuvar/internal/workload"
)

const testSeed = 2022

// sgemmExp builds a quick SGEMM experiment on a cluster (reduced
// repetitions keep the suite fast; the equilibrium measurements do not
// depend on the repetition count).
func sgemmExp(spec cluster.Spec, iters int) Experiment {
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = iters
	return Experiment{Cluster: spec, Workload: wl, Seed: testSeed}
}

func mustRun(t *testing.T, exp Experiment) *Result {
	t.Helper()
	r, err := Run(exp)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunCoversFleet(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 10))
	if len(r.PerAG) != 416 {
		t.Fatalf("measured %d GPUs, want all 416", len(r.PerAG))
	}
}

func TestRunDeterministic(t *testing.T) {
	a := mustRun(t, sgemmExp(cluster.Vortex(), 10))
	b := mustRun(t, sgemmExp(cluster.Vortex(), 10))
	for i := range a.PerAG {
		if a.PerAG[i].PerfMs != b.PerAG[i].PerfMs || a.PerAG[i].PowerW != b.PerAG[i].PowerW {
			t.Fatalf("GPU %d differs between identical runs", i)
		}
	}
}

func TestFractionSubsampling(t *testing.T) {
	exp := sgemmExp(cluster.Longhorn(), 10)
	exp.Fraction = 0.25
	r := mustRun(t, exp)
	if n := len(r.PerAG); n != 104 {
		t.Fatalf("fraction 0.25 measured %d GPUs, want 104", n)
	}
}

func TestVortexObservedSubset(t *testing.T) {
	// Paper §IV-E: 184 of Vortex's 216 GPUs observed.
	r := mustRun(t, sgemmExp(cluster.Vortex(), 10))
	if len(r.PerAG) != 184 {
		t.Fatalf("Vortex measured %d GPUs, want 184", len(r.PerAG))
	}
}

func TestSGEMMVariationBands(t *testing.T) {
	// Paper headline numbers: Longhorn 9%, Vortex 9%, Summit 8%,
	// Corona 7%, Frontera 5% performance variation. We assert generous
	// shape bands around each (the substrate is a simulator, not the
	// authors' testbed; EXPERIMENTS.md records exact measured values).
	cases := []struct {
		spec     cluster.Spec
		fraction float64
		lo, hi   float64
	}{
		{cluster.Longhorn(), 1, 0.05, 0.15},
		{cluster.Vortex(), 1, 0.05, 0.13},
		{cluster.Summit(), 0.06, 0.05, 0.13},
		{cluster.Corona(), 1, 0.05, 0.26},
		{cluster.Frontera(), 1, 0.04, 0.14},
	}
	for _, c := range cases {
		exp := sgemmExp(c.spec, 10)
		exp.Fraction = c.fraction
		r := mustRun(t, exp)
		v := r.Variation(Perf)
		if v < c.lo || v > c.hi {
			t.Errorf("%s SGEMM perf variation %.1f%% outside [%v, %v]",
				c.spec.Name, v*100, c.lo*100, c.hi*100)
		}
	}
}

func TestLonghornCorrelationSigns(t *testing.T) {
	// Paper Fig. 3: ρ(perf,temp)=0.46, ρ(perf,power)=−0.35,
	// ρ(perf,freq)=−0.97, ρ(power,temp)=−0.1.
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 10))
	c := r.Correlate()
	if c.PerfFreq > -0.9 {
		t.Errorf("Longhorn ρ(perf,freq) = %.2f, want strongly negative", c.PerfFreq)
	}
	if c.PerfTemp < 0.2 || c.PerfTemp > 0.75 {
		t.Errorf("Longhorn ρ(perf,temp) = %.2f, want weakly positive", c.PerfTemp)
	}
	if math.Abs(c.PowerTemp) > 0.4 {
		t.Errorf("Longhorn ρ(power,temp) = %.2f, want near zero", c.PowerTemp)
	}
}

func TestWaterCoolingDecorrelatesTemp(t *testing.T) {
	// Paper Fig. 10: on water-cooled Vortex, ρ(perf,temp) ≈ 0.04 while
	// ρ(perf,freq) ≈ −0.98.
	r := mustRun(t, sgemmExp(cluster.Vortex(), 10))
	c := r.Correlate()
	if math.Abs(c.PerfTemp) > 0.25 {
		t.Errorf("Vortex ρ(perf,temp) = %.2f, want ~0", c.PerfTemp)
	}
	if c.PerfFreq > -0.9 {
		t.Errorf("Vortex ρ(perf,freq) = %.2f, want ~-0.98", c.PerfFreq)
	}
}

func TestCoolingTemperatureOrdering(t *testing.T) {
	// Takeaway 3 + §IV-F: air-cooled clusters have much wider temperature
	// ranges than water; performance and power variation do NOT improve
	// with better cooling.
	long := mustRun(t, sgemmExp(cluster.Longhorn(), 10)) // air
	vort := mustRun(t, sgemmExp(cluster.Vortex(), 10))   // water

	lt, _ := long.Box(Temp)
	vt, _ := vort.Box(Temp)
	if lt.Range() < 2*vt.Range() {
		t.Errorf("air temp range %.1f should dwarf water %.1f", lt.Range(), vt.Range())
	}
	if lt.Range() < 30 {
		t.Errorf("Longhorn temp range %.1f °C, paper reports ≥ 30", lt.Range())
	}
	// Perf variation must NOT shrink with water cooling (both ~8-10%).
	lp, vp := long.Variation(Perf), vort.Variation(Perf)
	if vp < lp/2 {
		t.Errorf("water cooling should not halve perf variation: %v vs %v", vp, lp)
	}
}

func TestSummitPowerOutliersConcentrated(t *testing.T) {
	// Takeaway 2: Summit has sub-290 W power outliers concentrated in a
	// few rows (A, D, F, H).
	exp := sgemmExp(cluster.Summit(), 8)
	exp.Fraction = 0.12
	r := mustRun(t, exp)
	lowPower := map[string]int{}
	for _, m := range r.PerAG {
		if m.PowerW < 290 {
			lowPower[m.Loc.Row]++
		}
	}
	affected := lowPower["A"] + lowPower["D"] + lowPower["F"] + lowPower["H"]
	other := lowPower["B"] + lowPower["C"] + lowPower["E"] + lowPower["G"]
	if affected == 0 {
		t.Fatal("no sub-290 W outliers found on Summit")
	}
	if other > affected/3 {
		t.Errorf("outliers not concentrated: affected rows %d vs others %d", affected, other)
	}
}

func TestBrakedChipsHaveNoTempAnomaly(t *testing.T) {
	// Appendix B: power-braked Summit nodes show no temperature outliers.
	exp := sgemmExp(cluster.Summit(), 8)
	exp.Fraction = 0.12
	r := mustRun(t, exp)
	tb, _ := r.Box(Temp)
	for _, m := range r.PerAG {
		if m.Defect == gpu.DefectPowerBrake && m.TempC > tb.UpperWhisker {
			t.Errorf("braked chip %s is also a temperature outlier (%.1f °C)", m.GPUID, m.TempC)
		}
	}
}

func TestApplicationOrdering(t *testing.T) {
	// §V: multi-GPU ResNet has the highest perf variation, then
	// single-GPU ResNet, then BERT ≈ SGEMM, then the memory-bound pair
	// at ~1-3%.
	sku := gpu.V100SXM2()
	shorten := func(w workload.Workload, it int) workload.Workload {
		w.Iterations = it
		w.WarmupIters = 1
		return w
	}
	rows, err := ApplicationStudy(Experiment{Cluster: cluster.Longhorn(), Seed: testSeed},
		[]workload.Workload{
			shorten(workload.SGEMMForCluster(sku), 10),
			shorten(workload.ResNet50(4, 64, sku), 25),
			shorten(workload.ResNet50(1, 16, sku), 25),
			shorten(workload.BERT(4, 64, sku), 25),
			shorten(workload.LAMMPS(8, 16, 16, sku), 12),
			shorten(workload.PageRank(643994, 6250000, sku), 15),
		})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AppStudyRow{}
	for _, row := range rows {
		byName[row.Workload] = row
	}
	multi := byName["ResNet50-4gpu-b64"]
	single := byName["ResNet50-1gpu-b16"]
	lammps := byName["LAMMPS-8-16-16"]
	pagerank := byName["PageRank-643994v"]
	sgemm := byName["SGEMM-25536"]

	if !(multi.PerfVar > single.PerfVar && single.PerfVar > sgemm.PerfVar) {
		t.Errorf("perf variation ordering wrong: multi %v single %v sgemm %v",
			multi.PerfVar, single.PerfVar, sgemm.PerfVar)
	}
	if lammps.PerfVar > 0.04 || pagerank.PerfVar > 0.05 {
		t.Errorf("memory-bound workloads should vary ~1-3%%: %v %v",
			lammps.PerfVar, pagerank.PerfVar)
	}
	// §V-A: ResNet frequency-performance correlation vanishes.
	if math.Abs(multi.PerfFreq) > 0.3 {
		t.Errorf("ResNet ρ(perf,freq) = %v, want ~0", multi.PerfFreq)
	}
	// ML power variability dwarfs the compute benchmark's.
	if multi.PowerVar < 5*sgemm.PowerVar {
		t.Errorf("ResNet power var %v should dwarf SGEMM's %v", multi.PowerVar, sgemm.PowerVar)
	}
	// Classification matches §VII's scheduler discussion.
	if multi.Class != workload.Balanced || lammps.Class != workload.MemoryBound {
		t.Error("workload classes wrong")
	}
}

func TestPerGPURepeatability(t *testing.T) {
	// Fig. 8: per-GPU repeat variation medians 0.44% (Longhorn), 0.12%
	// (Summit), 6.06% (Corona) — V100 clusters are highly repeatable,
	// the coarse-state MI60s are not.
	runExp := func(spec cluster.Spec, frac float64) []float64 {
		exp := sgemmExp(spec, 8)
		exp.Runs = 3
		exp.Fraction = frac
		return mustRun(t, exp).PerGPUVariation()
	}
	med := func(xs []float64) float64 {
		if len(xs) == 0 {
			return math.NaN()
		}
		s := append([]float64(nil), xs...)
		for i := 1; i < len(s); i++ {
			for j := i; j > 0 && s[j] < s[j-1]; j-- {
				s[j], s[j-1] = s[j-1], s[j]
			}
		}
		return s[len(s)/2]
	}
	longhorn := med(runExp(cluster.Longhorn(), 1))
	summit := med(runExp(cluster.Summit(), 0.04))
	corona := med(runExp(cluster.Corona(), 1))

	if longhorn > 0.02 {
		t.Errorf("Longhorn per-GPU variation %v, want sub-2%%", longhorn)
	}
	if summit > longhorn {
		t.Errorf("Summit (water) %v should be at most Longhorn (air) %v", summit, longhorn)
	}
	if corona < 0.02 {
		t.Errorf("Corona per-GPU variation %v, want several %%", corona)
	}
	if corona < 3*longhorn {
		t.Errorf("Corona %v should dwarf Longhorn %v", corona, longhorn)
	}
}

func TestWeekStudyConsistent(t *testing.T) {
	// §VI-A: variability holds across days of the week.
	exp := sgemmExp(cluster.Vortex(), 6)
	days, err := WeekStudy(exp)
	if err != nil {
		t.Fatal(err)
	}
	if len(days) != 7 {
		t.Fatalf("week study returned %d days", len(days))
	}
	var lo, hi float64 = math.Inf(1), 0
	for _, d := range days {
		v := d.Variation(Perf)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 2.2*lo {
		t.Errorf("day-to-day variation unstable: %v..%v", lo, hi)
	}
}

func TestPowerLimitSweep(t *testing.T) {
	// Fig. 22: durations grow and variability rises as the cap drops
	// from 300 W to 150 W (9% → 18% in the paper).
	exp := sgemmExp(cluster.CloudLab(), 10)
	exp.Runs = 2
	points, err := PowerLimitSweep(exp, []float64{300, 250, 200, 150})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].MedianMs <= points[i-1].MedianMs {
			t.Errorf("median at %vW (%v ms) should exceed %vW (%v ms)",
				points[i].CapW, points[i].MedianMs, points[i-1].CapW, points[i-1].MedianMs)
		}
	}
	if points[3].PerfVar <= points[0].PerfVar {
		t.Errorf("150 W variability %v should exceed 300 W %v",
			points[3].PerfVar, points[0].PerfVar)
	}
}

func TestOutlierReportFindsPlantedDefects(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Frontera(), 10))
	sus := r.OutlierReport()
	found := 0
	for _, s := range sus {
		if s.TruthDefect == "clock-stuck" {
			found++
			if !strings.Contains(s.Diagnosis, "clock") && !strings.Contains(s.Diagnosis, "power") {
				t.Errorf("stuck clock misdiagnosed: %q", s.Diagnosis)
			}
			if !strings.HasPrefix(s.NodeID, "c197") {
				t.Errorf("stuck clock flagged outside c197: %s", s.NodeID)
			}
		}
	}
	if found != 2 {
		t.Errorf("flagged %d of 2 planted Frontera defects", found)
	}
}

func TestOutlierReportCoronaHotNode(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Corona(), 10))
	sus := r.OutlierReport()
	hot := 0
	for _, s := range sus {
		if s.TruthDefect == "cooling" {
			hot++
		}
	}
	if hot == 0 {
		t.Error("Corona cooling-defect node not flagged")
	}
}

func TestFormatSuspects(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Frontera(), 8))
	out := FormatSuspects(r.OutlierReport())
	if !strings.Contains(out, "DIAGNOSIS") {
		t.Fatalf("report missing header: %q", out)
	}
	if FormatSuspects(nil) != "no outliers flagged\n" {
		t.Fatal("empty report wrong")
	}
}

func TestUserImpact(t *testing.T) {
	// §VII: on Longhorn ~18% of GPUs are 6%+ slower than the fastest;
	// 4-GPU allocations hit one 40-55% of the time. Assert the
	// qualitative structure: multi-GPU odds well above single-GPU odds.
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 10))
	imp := r.Impact(0.06, 4)
	if imp.SlowFraction <= 0.02 || imp.SlowFraction >= 0.9 {
		t.Errorf("slow fraction %v implausible", imp.SlowFraction)
	}
	if imp.PMultiGPU <= imp.PSingleGPU {
		t.Error("4-GPU job should be more likely to draw a slow GPU")
	}
	want := 1 - math.Pow(1-imp.SlowFraction, 4)
	if math.Abs(imp.PMultiGPU-want) > 1e-9 {
		t.Errorf("multi-GPU odds %v, want %v", imp.PMultiGPU, want)
	}
}

func TestSampleSizeMethodology(t *testing.T) {
	// §III: measuring nearly every GPU gives a large margin over the
	// recommended sample size (the paper reports 2.9×).
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 10))
	chk := r.CheckSampleSize(0.005, 0.95)
	if chk.Recommended <= 0 {
		t.Fatal("no recommendation computed")
	}
	if chk.MarginX < 1 {
		t.Errorf("full coverage should exceed the recommendation: margin %vx", chk.MarginX)
	}
}

func TestProjectedVariationAtScale(t *testing.T) {
	// §IV-D: Longhorn's spread projected to Summit size grows slightly
	// (9% → 9.4% in the paper).
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 10))
	own := r.Variation(Perf)
	projected := r.ProjectedVariationAt(27648)
	if projected <= own*0.9 {
		t.Errorf("projection %v should not shrink much below measured %v", projected, own)
	}
	if projected > own*1.5 {
		t.Errorf("projection %v implausibly far above measured %v", projected, own)
	}
}

func TestAblationAttributesVariation(t *testing.T) {
	exp := sgemmExp(cluster.Vortex(), 8)
	rows, err := Ablation(exp)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, row := range rows {
		byName[row.Name] = row.PerfVar
	}
	full := byName["full model"]
	noVF := byName["no V/F-curve spread"]
	none := byName["no manufacturing spread at all"]
	if noVF >= full {
		t.Errorf("removing V/F spread should reduce variation: %v vs %v", noVF, full)
	}
	if none >= full/2 {
		t.Errorf("removing all spread should collapse variation: %v vs %v", none, full)
	}
}

func TestBoxByGroupCoversCabinets(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 8))
	groups := r.BoxByGroup(Perf)
	if len(groups) != 8 {
		t.Fatalf("got %d cabinet groups, want 8", len(groups))
	}
	labels := r.GroupLabels()
	if len(labels) != 8 || labels[0] != "c002" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestFilter(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 8))
	c002 := r.Filter(func(m Measurement) bool { return m.Loc.Cabinet == "c002" })
	if len(c002.PerAG) != 52 {
		t.Fatalf("c002 has %d GPUs, want 52", len(c002.PerAG))
	}
}

func TestNormalizedPerfMedianOne(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Vortex(), 8))
	norm := r.NormalizedPerf()
	med := Median(norm)
	if math.Abs(med-1) > 1e-9 {
		t.Fatalf("normalized median = %v", med)
	}
}

// Median helper for tests.
func Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

func TestRejectsOversizedWorkload(t *testing.T) {
	exp := Experiment{
		Cluster:  cluster.Longhorn(), // 4 GPUs per node
		Workload: workload.ResNet50(4, 64, gpu.V100SXM2()),
		Seed:     1,
	}
	exp.Workload.GPUsPerJob = 8
	if _, err := Run(exp); err == nil {
		t.Fatal("8-GPU job on 4-GPU nodes should fail")
	}
}

func TestTransientPathOnSmallCluster(t *testing.T) {
	// The tick-level path must work end to end through the harness.
	exp := sgemmExp(cluster.CloudLab(), 3)
	exp.Transient = true
	r := mustRun(t, exp)
	if len(r.PerAG) != 12 {
		t.Fatalf("CloudLab measured %d GPUs", len(r.PerAG))
	}
	for _, m := range r.PerAG {
		if m.PerfMs < 2000 || m.PerfMs > 3500 {
			t.Errorf("transient perf %v ms implausible for %s", m.PerfMs, m.GPUID)
		}
	}
}

func TestSteadyTransientAgreeAtHarnessLevel(t *testing.T) {
	steady := mustRun(t, sgemmExp(cluster.CloudLab(), 4))
	exp := sgemmExp(cluster.CloudLab(), 4)
	exp.Transient = true
	transient := mustRun(t, exp)
	for i := range steady.PerAG {
		s, tr := steady.PerAG[i], transient.PerAG[i]
		if rel := math.Abs(s.PerfMs-tr.PerfMs) / tr.PerfMs; rel > 0.04 {
			t.Errorf("%s: steady %v vs transient %v (%.1f%%)", s.GPUID, s.PerfMs, tr.PerfMs, rel*100)
		}
	}
}

func BenchmarkRunLonghornSGEMM(b *testing.B) {
	exp := sgemmExp(cluster.Longhorn(), 10)
	for i := 0; i < b.N; i++ {
		if _, err := Run(exp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunSummitFullSGEMM(b *testing.B) {
	exp := sgemmExp(cluster.Summit(), 10)
	for i := 0; i < b.N; i++ {
		if _, err := Run(exp); err != nil {
			b.Fatal(err)
		}
	}
}
