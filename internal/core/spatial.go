package core

import (
	"context"
	"fmt"

	"gpuvar/internal/cluster"
	"gpuvar/internal/dvfs"
	"gpuvar/internal/engine"
	"gpuvar/internal/rng"
	"gpuvar/internal/sim"
	"gpuvar/internal/stats"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// The paper's measurements eliminated spatial and temporal effects by
// exclusive allocation and staggered runs, and §VII explicitly defers
// studying them ("We plan to study both spatial and temporal
// (i.e., variability due to a preceding job run on the same GPU)
// effects in the future"). This file implements both studies on the
// model, for the cloud/enterprise sharing scenario the paper names.

// neighborCouplingC is the ambient-temperature rise at a GPU per fully
// loaded neighbor on the same node, by cooling technology. Air shares
// chassis airflow; liquid loops isolate the GPUs almost completely.
func neighborCouplingC(c thermal.Cooling) float64 {
	switch c {
	case thermal.Air:
		return 2.8
	case thermal.MineralOil:
		return 1.1
	default: // water
		return 0.35
	}
}

// SpatialPoint is the fleet outcome with a fixed number of busy
// neighbors per node.
type SpatialPoint struct {
	BusyNeighbors int
	MedianMs      float64
	PerfVar       float64
	MedianTempC   float64
}

// SpatialStudy reruns the experiment with 0..maxNeighbors co-located
// jobs heating each measured GPU's inlet air, quantifying how shared
// nodes would bias the paper's numbers in a cloud-style (non-exclusive)
// allocation.
func SpatialStudy(exp Experiment, maxNeighbors int) ([]SpatialPoint, error) {
	return SpatialStudyCtx(context.Background(), exp, maxNeighbors)
}

// SpatialStudyCtx runs the neighbor variants as one engine job, results
// in neighbor-count order.
func SpatialStudyCtx(ctx context.Context, exp Experiment, maxNeighbors int) ([]SpatialPoint, error) {
	if maxNeighbors < 0 || maxNeighbors >= exp.Cluster.GPUsPerNode {
		return nil, fmt.Errorf("core: neighbors must be in [0, %d)", exp.Cluster.GPUsPerNode)
	}
	coupling := neighborCouplingC(exp.Cluster.Cooling.Cooling)
	return engine.Map(ctx, maxNeighbors+1, 0, func(ctx context.Context, n int) (SpatialPoint, error) {
		e := exp
		// Neighbor heat enters as an inlet offset; each busy neighbor
		// is assumed near its TDP (the worst case the paper's exclusive
		// allocations avoid).
		e.AmbientOffsetC = exp.AmbientOffsetC + coupling*float64(n)
		r, err := RunCtx(ctx, e)
		if err != nil {
			return SpatialPoint{}, fmt.Errorf("core: spatial point %d: %w", n, err)
		}
		p := SpatialPoint{BusyNeighbors: n, PerfVar: r.Variation(Perf)}
		if bp, err := r.Box(Perf); err == nil {
			p.MedianMs = bp.Q2
		}
		if bp, err := r.Box(Temp); err == nil {
			p.MedianTempC = bp.Q2
		}
		return p, nil
	})
}

// TemporalPoint contrasts a measurement taken right after a preceding
// job (die still hot) with one taken on an idle-cooled GPU.
type TemporalPoint struct {
	GPUID string
	// ColdFirstKernelMs is the first kernel's duration starting from
	// ambient temperature.
	ColdFirstKernelMs float64
	// HotFirstKernelMs is the first kernel's duration starting from the
	// preceding job's equilibrium temperature.
	HotFirstKernelMs float64
	// SteadyKernelMs is the settled duration (independent of history).
	SteadyKernelMs float64
}

// CarryoverPenalty returns the fractional first-kernel slowdown caused
// by the preceding job's heat.
func (p TemporalPoint) CarryoverPenalty() float64 {
	if p.ColdFirstKernelMs == 0 {
		return 0
	}
	return p.HotFirstKernelMs/p.ColdFirstKernelMs - 1
}

// TemporalStudy measures thermal carryover on a sample of the cluster's
// GPUs using the transient simulator: the same kernel launched on a
// cold die versus one still hot from a preceding job. On air-cooled
// machines the difference persists for the RC time constant (~20 s) and
// biases short benchmarks; the paper's staggered, warmed-up methodology
// sidesteps it.
func TemporalStudy(spec cluster.Spec, seed uint64, sample int) ([]TemporalPoint, error) {
	return TemporalStudyCtx(context.Background(), spec, seed, sample)
}

// TemporalStudyCtx runs the sampled cold/hot probes as one engine job,
// preserving sample order.
func TemporalStudyCtx(ctx context.Context, spec cluster.Spec, seed uint64, sample int) ([]TemporalPoint, error) {
	if sample < 1 {
		sample = 1
	}
	// The study only reads members (each probe gets a private thermal-node
	// copy), so it can share the process-wide fleet cache.
	fleet, err := cluster.DefaultFleetCache.Get(ctx, spec, seed)
	if err != nil {
		return nil, err
	}
	if sample > len(fleet.Members) {
		sample = len(fleet.Members)
	}
	wl := workload.SGEMMForCluster(spec.SKU())
	wl.Iterations = 3
	wl.WarmupIters = 0

	parent := rng.New(seed).Split("temporal")
	points, err := engine.Map(ctx, sample, 0, func(_ context.Context, i int) (*TemporalPoint, error) {
		m := fleet.Members[i*len(fleet.Members)/sample]
		run := func(cold bool) []float64 {
			node := *m.Therm
			dev := sim.NewDevice(m.Chip, &node, dvfs.DefaultConfig(), 0, parent.SplitIndex("sys", i))
			res := sim.RunTransient([]*sim.Device{dev}, wl, parent.SplitIndex("job", i),
				sim.Options{ColdStart: cold})
			return res.Traces[0].KernelDurationsMs()
		}
		coldKs := run(true)
		hotKs := run(false) // warm start = preceding job's equilibrium
		if len(coldKs) == 0 || len(hotKs) == 0 {
			return nil, nil // skipped samples are filtered below
		}
		return &TemporalPoint{
			GPUID:             m.Chip.ID,
			ColdFirstKernelMs: coldKs[0],
			HotFirstKernelMs:  hotKs[0],
			SteadyKernelMs:    stats.Median(hotKs),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]TemporalPoint, 0, sample)
	for _, p := range points {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out, nil
}
