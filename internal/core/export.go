package core

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"gpuvar/internal/rng"
	"gpuvar/internal/stats"
)

// WriteCSV exports the per-GPU measurements for external analysis
// (the study's raw data: one row per GPU with the four metrics,
// location, and ground-truth defect label).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"gpu_id", "node_id", "group", "perf_ms", "freq_mhz", "power_w",
		"temp_c", "max_power_w", "max_temp_c", "thermally_limited", "defect",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
	for _, m := range r.PerAG {
		rec := []string{
			m.GPUID, m.Loc.NodeID(), m.Loc.Group(),
			f(m.PerfMs), f(m.FreqMHz), f(m.PowerW), f(m.TempC),
			f(m.MaxPowerW), f(m.MaxTempC),
			strconv.FormatBool(m.ThermallyLimited), m.Defect.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// VariationCI bootstraps a confidence interval around the experiment's
// performance-variation number (see stats.BootstrapCI). Resampling uses
// a stream derived from the experiment's seed, so the interval is part
// of the reproducible record.
func (r *Result) VariationCI(m Metric, resamples int, confidence float64) stats.CI {
	src := rng.New(r.Exp.Seed).Split("bootstrap:" + m.String())
	return stats.VariationCI(r.Values(m), resamples, confidence, src)
}

// WriteSummaryText renders the experiment's headline numbers the way
// cmd/gpuvar prints them, for embedding in reports.
func (r *Result) WriteSummaryText(w io.Writer) error {
	s := r.Summarize()
	ci := r.VariationCI(Perf, 300, 0.95)
	_, err := fmt.Fprintf(w,
		"%s on %s: %d GPUs\n"+
			"  perf variation %.1f%% (95%% CI %.1f-%.1f%%), median %.1f ms, %d outliers\n"+
			"  freq %.1f%%  power %.1f%%  temp %.1f%%\n"+
			"  rho: perf-freq %+.2f  perf-temp %+.2f  perf-power %+.2f  power-temp %+.2f\n",
		s.Workload, s.Cluster, s.GPUs,
		s.PerfVar*100, ci.Lo*100, ci.Hi*100, s.MedianMs, s.NOutliers,
		s.FreqVar*100, s.PowerVar*100, s.TempVar*100,
		s.Corr.PerfFreq, s.Corr.PerfTemp, s.Corr.PerfPower, s.Corr.PowerTemp)
	return err
}
