package core

import (
	"context"
	"fmt"

	"gpuvar/internal/engine"
	"gpuvar/internal/estimate"
	"gpuvar/internal/gpu"
)

// DefaultMaxFullSim bounds how many values of an adaptive sweep may
// fall back to full simulation — the same bound the service places on a
// plain sweep's value list, so an adaptive request can never cost more
// than the largest plain sweep.
const DefaultMaxFullSim = 32

// EstimateSweepCtx answers a variant sweep analytically: every point
// comes from the calibrated closed-form estimator (internal/estimate),
// with Estimated set and Bound carrying the relative error bound. The
// only simulation spent is the handful of anchor runs behind a cold
// calibration; on a warm calibrator the whole sweep is microseconds.
func EstimateSweepCtx(ctx context.Context, exp Experiment, axis VariantAxis, values []float64) ([]VariantPoint, error) {
	for _, v := range values {
		if err := axis.Validate(v); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	model, err := estimateModel(ctx, exp, axis, values)
	if err != nil {
		return nil, err
	}
	pts := make([]VariantPoint, len(values))
	for i, p := range model.Points(values) {
		pts[i] = estimatedPoint(axis, p)
	}
	return pts, nil
}

// AdaptiveSweepCtx pre-screens the axis analytically and spends full
// simulation only where the estimator's error bound or the curve's
// local gradient exceeds threshold (a relative tolerance in (0, 1]).
// Anchor values always simulate. threshold <= 0 means zero tolerance:
// the call degenerates to VariantSweepCtx, byte-for-byte.
//
// The mixed result runs as ONE engine.Map over every value, so an
// attached stream sink sees all shards in order; estimated shards
// complete instantly, and simulated shards run runVariant — the exact
// plain-sweep shard body — which keeps them bit-identical to the
// non-adaptive sweep.
func AdaptiveSweepCtx(ctx context.Context, exp Experiment, axis VariantAxis, values []float64, threshold float64) ([]VariantPoint, error) {
	if threshold <= 0 {
		return VariantSweepCtx(ctx, exp, axis, values)
	}
	for _, v := range values {
		if err := axis.Validate(v); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	model, err := estimateModel(ctx, exp, axis, values)
	if err != nil {
		return nil, err
	}
	est := model.Points(values)
	simulate := estimate.Screen(est, model.AnchorValues(), threshold, DefaultMaxFullSim)
	return engine.Map(ctx, len(values), 0, func(ctx context.Context, i int) (VariantPoint, error) {
		if !simulate[i] {
			return estimatedPoint(axis, est[i]), nil
		}
		return runVariant(ctx, exp, axis, values[i])
	})
}

func estimatedPoint(axis VariantAxis, p estimate.Point) VariantPoint {
	return VariantPoint{
		Axis:      axis,
		Value:     p.Value,
		PerfVar:   p.PerfVar,
		MedianMs:  p.MedianMs,
		NOutliers: p.Outliers,
		GPUs:      p.GPUs,
		Estimated: true,
		Bound:     p.Bound,
	}
}

// estimateModel fetches (or fits) the calibrated model for this
// experiment context, feeding calibration anchors from VariantSweepCtx
// so anchors and real sweeps share one code path. The anchor runs are
// sink-stripped: a streaming caller's sink belongs to the Map over the
// full value list, not to calibration.
func estimateModel(ctx context.Context, exp Experiment, axis VariantAxis, values []float64) (*estimate.Model, error) {
	req := estimate.Request{
		Cluster:      exp.Cluster,
		Workload:     exp.Workload,
		Seed:         exp.Seed,
		Fraction:     exp.Fraction,
		Runs:         exp.Runs,
		BaseCapW:     exp.AdminCapW,
		BaseAmbientC: exp.AmbientOffsetC,
		Axis:         estimate.Axis(axis),
		Extra:        estimateExtra(exp),
	}
	run := func(ctx context.Context, anchorVals []float64) ([]estimate.Anchor, error) {
		pts, err := VariantSweepCtx(engine.WithSink(ctx, nil), exp, axis, anchorVals)
		if err != nil {
			return nil, err
		}
		anchors := make([]estimate.Anchor, len(pts))
		for i, p := range pts {
			anchors[i] = estimate.Anchor{
				Value:    p.Value,
				MedianMs: p.MedianMs,
				PerfVar:  p.PerfVar,
				GPUs:     p.GPUs,
				Outliers: p.NOutliers,
			}
		}
		return anchors, nil
	}
	return estimate.DefaultCalibrator.Model(ctx, req, values, run)
}

// estimateExtra fingerprints the experiment knobs the estimator has no
// explicit model for, so requests differing there never share a
// calibration. All are zero-valued on the service's sweep paths.
func estimateExtra(exp Experiment) string {
	var vm gpu.VariationModel
	hasVM := exp.VariationOverride != nil
	if hasVM {
		vm = *exp.VariationOverride
	}
	return fmt.Sprintf("day%d|transient%t|nodef%t|vm%t%+v", exp.Day, exp.Transient, exp.NoDefects, hasVM, vm)
}
