package core

import (
	"bytes"
	"strings"
	"testing"

	"gpuvar/internal/cluster"
)

func TestWriteCSV(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.CloudLab(), 6))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+12 { // header + 12 CloudLab GPUs
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "gpu_id,node_id,group,perf_ms") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "cl0-n01-g0") {
		t.Fatalf("first row = %q", lines[1])
	}
	// Every data row carries the defect label column.
	for _, l := range lines[1:] {
		if !strings.HasSuffix(l, ",none") {
			t.Fatalf("CloudLab row should be defect-free: %q", l)
		}
	}
}

func TestWriteCSVDefectLabels(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Frontera(), 6))
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "clock-stuck"); n != 2 {
		t.Fatalf("csv carries %d clock-stuck labels, want 2", n)
	}
}

func TestVariationCIBracketsPoint(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Longhorn(), 6))
	ci := r.VariationCI(Perf, 200, 0.95)
	point := r.Variation(Perf)
	if ci.Point != point {
		t.Fatalf("CI point %v != variation %v", ci.Point, point)
	}
	if !(ci.Lo <= point && point <= ci.Hi) {
		t.Fatalf("CI [%v, %v] does not bracket %v", ci.Lo, ci.Hi, point)
	}
	// Deterministic: derived from the experiment seed.
	ci2 := r.VariationCI(Perf, 200, 0.95)
	if ci.Lo != ci2.Lo || ci.Hi != ci2.Hi {
		t.Fatal("CI not reproducible")
	}
}

func TestWriteSummaryText(t *testing.T) {
	r := mustRun(t, sgemmExp(cluster.Vortex(), 6))
	var buf bytes.Buffer
	if err := r.WriteSummaryText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Vortex", "perf variation", "95% CI", "rho:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
