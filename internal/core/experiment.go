// Package core is the paper's primary contribution rebuilt as a
// library: a variability characterization suite for accelerator-rich
// clusters. It runs a workload across (nearly) every GPU of a modeled
// cluster, collects the four metrics of the study — performance,
// frequency, power, temperature — and provides the IQR/outlier
// analysis, correlation study, repeatability study, day-of-week study,
// power-limit sweep, and administrator early-warning report of the
// paper's evaluation (§IV–§VII).
package core

import (
	"context"
	"fmt"
	"sort"

	"gpuvar/internal/cluster"
	"gpuvar/internal/dvfs"
	"gpuvar/internal/engine"
	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/sim"
	"gpuvar/internal/stats"
	"gpuvar/internal/thermal"
	"gpuvar/internal/workload"
)

// Experiment describes one characterization campaign: a workload on a
// cluster, repeated Runs times per GPU.
type Experiment struct {
	Cluster  cluster.Spec
	Workload workload.Workload
	Seed     uint64

	// Fraction of observed GPUs to measure, 0 < f ≤ 1 (default 1).
	// The paper covers >90% of each cluster; fractions below 1 keep
	// exploratory runs cheap.
	Fraction float64
	// Runs is the number of measurement repetitions per GPU (default 1).
	Runs int
	// AdminCapW applies an nvidia-smi-style power limit (0 = TDP).
	AdminCapW float64
	// AmbientOffsetC shifts every GPU's inlet temperature (used by the
	// spatial-interference study; zero in all paper reproductions).
	AmbientOffsetC float64
	// Day selects a day-of-week ambient drift profile (0 = Monday … 6 =
	// Sunday, −1 = no drift) for the §VI-A study.
	Day int
	// Transient switches to the tick-level simulator (small fleets
	// only; the default analytic path is validated against it).
	Transient bool

	// NoDefects disables defect injection — an ablation knob to
	// attribute outliers (not part of the paper's runs).
	NoDefects bool
	// VariationOverride replaces the cluster's manufacturing-spread
	// model (ablation knob).
	VariationOverride *gpu.VariationModel
}

// Measurement is one GPU's aggregate over the experiment's runs, using
// the paper's median-of-runs aggregation.
type Measurement struct {
	GPUID   string
	Loc     cluster.Location
	Defect  gpu.DefectKind
	PerfMs  float64
	FreqMHz float64
	PowerW  float64
	TempC   float64

	MaxPowerW float64
	MaxTempC  float64

	// PerRunPerfMs holds each run's performance number, for the
	// per-GPU repeatability analysis (Fig. 8).
	PerRunPerfMs []float64

	ThermallyLimited bool
}

// Result is a completed experiment.
type Result struct {
	Exp   Experiment
	PerAG []Measurement // one entry per measured GPU, in fleet order
}

// Run executes the experiment. Fleet instantiation goes through the
// process-wide cluster.DefaultFleetCache: the fleet for a given
// (spec, seed) is sampled once and shared read-only across experiments
// (each job still gets private thermal-node copies, so runs cannot leak
// heat into each other). The ablation knobs (NoDefects,
// VariationOverride) rewrite the spec before the cache lookup, so each
// variant instantiates its own fleet and the base fleet is never
// mutated.
//
// Run is safe for concurrent use: the fleet cache is internally locked,
// cached fleet members are treated as read-only, and every mutable
// simulation object (sim.Device, its RNG streams, the thermal-node
// copies, aggregation scratch) is created inside the owning job's
// goroutine and never escapes it. The experiment service relies on this
// to run independent requests in parallel.
func Run(exp Experiment) (*Result, error) {
	return RunWithCache(exp, cluster.DefaultFleetCache)
}

// RunCtx is Run with cooperative cancellation: the per-job fan-out goes
// through the shared execution engine, which stops dispatching jobs and
// returns ctx.Err() as soon as ctx ends. A successful RunCtx is
// bit-identical to Run (the engine preserves job-order results).
func RunCtx(ctx context.Context, exp Experiment) (*Result, error) {
	return RunWithCacheCtx(ctx, exp, cluster.DefaultFleetCache)
}

// RunFresh executes the experiment with a freshly instantiated,
// uncached fleet. Results are bit-identical to Run's (the determinism
// tests assert this); it exists for callers that want to bound memory
// or cross-check the cache.
func RunFresh(exp Experiment) (*Result, error) {
	return RunWithCache(exp, nil)
}

// RunWithCache executes the experiment against the given fleet cache
// (nil = instantiate fresh).
func RunWithCache(exp Experiment, fleets *cluster.FleetCache) (*Result, error) {
	return RunWithCacheCtx(context.Background(), exp, fleets)
}

// RunWithCacheCtx executes the experiment against the given fleet cache
// (nil = instantiate fresh), aborting between jobs when ctx ends.
func RunWithCacheCtx(ctx context.Context, exp Experiment, fleets *cluster.FleetCache) (*Result, error) {
	if exp.Workload.GPUsPerJob < 1 {
		return nil, fmt.Errorf("core: workload %q has no GPUs per job", exp.Workload.Name)
	}
	if exp.Workload.GPUsPerJob > exp.Cluster.GPUsPerNode {
		return nil, fmt.Errorf("core: workload needs %d GPUs but %s nodes have %d",
			exp.Workload.GPUsPerJob, exp.Cluster.Name, exp.Cluster.GPUsPerNode)
	}
	if exp.Fraction <= 0 || exp.Fraction > 1 {
		exp.Fraction = 1
	}
	if exp.Runs < 1 {
		exp.Runs = 1
	}
	spec := exp.Cluster
	if exp.NoDefects {
		spec.Defects = nil
	}
	if exp.VariationOverride != nil {
		spec.Variation = *exp.VariationOverride
	}

	fleet, err := fleets.Get(ctx, spec, exp.Seed)
	if err != nil {
		return nil, err
	}
	members := subsample(fleet.Observed(), exp.Fraction, exp.Seed)

	jobs := partitionJobs(members, exp.Workload.GPUsPerJob)
	results, err := engine.Map(ctx, len(jobs), 0,
		func(_ context.Context, ji int) ([]Measurement, error) {
			return runJob(exp, spec, jobs[ji], ji), nil
		})
	if err != nil {
		return nil, err
	}

	res := &Result{Exp: exp}
	total := 0
	for _, ms := range results {
		total += len(ms)
	}
	res.PerAG = make([]Measurement, 0, total)
	for _, ms := range results {
		res.PerAG = append(res.PerAG, ms...)
	}
	return res, nil
}

// subsample deterministically selects a fraction of members.
func subsample(ms []*cluster.Member, fraction float64, seed uint64) []*cluster.Member {
	if fraction >= 1 {
		return ms
	}
	n := int(float64(len(ms)) * fraction)
	if n < 1 {
		n = 1
	}
	r := rng.New(seed).Split("subsample")
	perm := r.Perm(len(ms))
	out := make([]*cluster.Member, n)
	for i := 0; i < n; i++ {
		out[i] = ms[perm[i]]
	}
	// Restore fleet order for stable downstream grouping.
	sort.Slice(out, func(a, b int) bool { return out[a].Chip.ID < out[b].Chip.ID })
	return out
}

// partitionJobs groups members into jobs of gpusPerJob, co-located on a
// node for multi-GPU workloads (the paper trains across 4 GPUs of one
// node). Nodes without enough measured GPUs are skipped for multi-GPU
// workloads.
func partitionJobs(ms []*cluster.Member, gpusPerJob int) [][]*cluster.Member {
	if gpusPerJob == 1 {
		out := make([][]*cluster.Member, len(ms))
		for i, m := range ms {
			out[i] = []*cluster.Member{m}
		}
		return out
	}
	byNode := map[string][]*cluster.Member{}
	var order []string
	for _, m := range ms {
		id := m.Loc.NodeID()
		if _, ok := byNode[id]; !ok {
			order = append(order, id)
		}
		byNode[id] = append(byNode[id], m)
	}
	sort.Strings(order)
	var out [][]*cluster.Member
	for _, id := range order {
		group := byNode[id]
		for len(group) >= gpusPerJob {
			out = append(out, group[:gpusPerJob])
			group = group[gpusPerJob:]
		}
	}
	return out
}

// dayDriftC returns the facility ambient offset for a day-of-week
// profile: weekdays run warmer (higher cluster load from neighboring
// racks), weekends cooler. Day −1 disables drift.
func dayDriftC(day int, cooling thermal.Cooling) float64 {
	if day < 0 || day > 6 {
		return 0
	}
	// Mon..Sun. Production clusters see heavier batch load early week.
	profile := [7]float64{1.1, 0.4, 0.9, 0.2, 0.8, -0.9, -1.1}
	scale := 1.0
	switch cooling {
	case thermal.Water:
		scale = 0.3 // loop temperature is regulated
	case thermal.MineralOil:
		scale = 0.5
	}
	return profile[day] * scale
}

// runJob measures one job's GPUs across all runs.
func runJob(exp Experiment, spec cluster.Spec, job []*cluster.Member, jobIdx int) []Measurement {
	parent := rng.New(exp.Seed).SplitIndex("job:"+exp.Workload.Name, jobIdx)

	devs := make([]*sim.Device, len(job))
	for i, m := range job {
		// Each device gets a private copy of the thermal node: runs
		// must not leak heat into each other through shared state.
		node := *m.Therm
		devs[i] = sim.NewDevice(m.Chip, &node, dvfs.DefaultConfig(), exp.AdminCapW,
			parent.SplitIndex("sys", i))
	}

	perRun := make([][]sim.GPURunResult, exp.Runs)
	drift := exp.AmbientOffsetC + dayDriftC(exp.Day, spec.Cooling.Cooling)
	for run := 0; run < exp.Runs; run++ {
		runAmb := drift
		if spec.Cooling.RunDriftC > 0 {
			runAmb += parent.SplitIndex("amb", run).Gaussian(0, spec.Cooling.RunDriftC)
		}
		opt := sim.Options{
			AdminCapW:      exp.AdminCapW,
			AmbientOffsetC: runAmb,
			Run:            run,
		}
		if exp.Transient {
			perRun[run] = sim.RunTransient(devs, exp.Workload, parent.SplitIndex("jobrun", run), opt).Results
		} else {
			perRun[run] = sim.RunSteady(devs, exp.Workload, parent.SplitIndex("jobrun", run), opt)
		}
	}

	out := make([]Measurement, len(job))
	// Aggregation scratch, reused across the job's GPUs: the stats
	// helpers treat their input as read-only, so one buffer per metric
	// serves every member. PerRunPerfMs is retained by the Measurement
	// and stays a per-member allocation.
	perf := make([]float64, 0, exp.Runs)
	freq := make([]float64, 0, exp.Runs)
	power := make([]float64, 0, exp.Runs)
	temp := make([]float64, 0, exp.Runs)
	maxP := make([]float64, 0, exp.Runs)
	maxT := make([]float64, 0, exp.Runs)
	for i, m := range job {
		meas := Measurement{
			GPUID:        m.Chip.ID,
			Loc:          m.Loc,
			Defect:       m.Chip.Defect,
			PerRunPerfMs: make([]float64, 0, exp.Runs),
		}
		perf, freq, power = perf[:0], freq[:0], power[:0]
		temp, maxP, maxT = temp[:0], maxP[:0], maxT[:0]
		for run := 0; run < exp.Runs; run++ {
			r := perRun[run][i]
			meas.PerRunPerfMs = append(meas.PerRunPerfMs, r.PerfMs)
			perf = append(perf, r.PerfMs)
			freq = append(freq, r.MedianFreqMHz)
			power = append(power, r.MedianPowerW)
			temp = append(temp, r.MedianTempC)
			maxP = append(maxP, r.MaxPowerW)
			maxT = append(maxT, r.MaxTempC)
			meas.ThermallyLimited = meas.ThermallyLimited || r.ThermallyLimited
		}
		meas.PerfMs = stats.Median(perf)
		meas.FreqMHz = stats.Median(freq)
		meas.PowerW = stats.Median(power)
		meas.TempC = stats.Median(temp)
		meas.MaxPowerW = stats.Max(maxP)
		meas.MaxTempC = stats.Max(maxT)
		out[i] = meas
	}
	return out
}
