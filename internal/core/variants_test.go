package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"gpuvar/internal/cluster"
	"gpuvar/internal/workload"
)

// variantExp is a small CloudLab experiment the sweep tests share.
func variantExp() Experiment {
	wl := workload.SGEMMForCluster(cluster.CloudLab().SKU())
	wl.Iterations = 3
	return Experiment{Cluster: cluster.CloudLab(), Workload: wl, Seed: 7, Runs: 2}
}

// TestVariantSweepPowercapGolden pins the generalization contract: the
// powercap axis is bit-identical to both the PowerLimitSweep façade
// and a serial loop of RunCtx calls with AdminCapW set — the
// pre-generalization implementation.
func TestVariantSweepPowercapGolden(t *testing.T) {
	exp := variantExp()
	caps := []float64{0, 250, 150}

	pts, err := VariantSweep(exp, AxisPowerCap, caps)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := PowerLimitSweep(exp, caps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(caps) || len(legacy) != len(caps) {
		t.Fatalf("lengths: variant %d, legacy %d, want %d", len(pts), len(legacy), len(caps))
	}
	for i, capW := range caps {
		// The serial reference: exactly what the old sweep computed.
		e := exp
		e.AdminCapW = capW
		ref, err := RunCtx(context.Background(), e)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pts[i].Result.PerAG, ref.PerAG) {
			t.Fatalf("cap %v: variant sweep diverged from the serial reference", capW)
		}
		if !reflect.DeepEqual(legacy[i].Result.PerAG, pts[i].Result.PerAG) {
			t.Fatalf("cap %v: PowerLimitSweep façade diverged from VariantSweep", capW)
		}
		if legacy[i].CapW != pts[i].Value || legacy[i].MedianMs != pts[i].MedianMs ||
			legacy[i].PerfVar != pts[i].PerfVar || legacy[i].NOutliers != pts[i].NOutliers {
			t.Fatalf("cap %v: summary fields diverged: %+v vs %+v", capW, legacy[i], pts[i])
		}
	}
}

// TestVariantSweepAxesApply checks each axis actually varies its knob.
func TestVariantSweepAxesApply(t *testing.T) {
	exp := variantExp()

	t.Run("seed", func(t *testing.T) {
		pts, err := VariantSweep(exp, AxisSeed, []float64{7, 8})
		if err != nil {
			t.Fatal(err)
		}
		if pts[0].Result.Exp.Seed != 7 || pts[1].Result.Exp.Seed != 8 {
			t.Fatalf("seeds = %d, %d, want 7, 8", pts[0].Result.Exp.Seed, pts[1].Result.Exp.Seed)
		}
		if reflect.DeepEqual(pts[0].Result.PerAG, pts[1].Result.PerAG) {
			t.Fatal("different fleet seeds produced identical measurements")
		}
	})
	t.Run("fraction", func(t *testing.T) {
		pts, err := VariantSweep(exp, AxisFraction, []float64{1, 0.5})
		if err != nil {
			t.Fatal(err)
		}
		full, half := len(pts[0].Result.PerAG), len(pts[1].Result.PerAG)
		if half >= full {
			t.Fatalf("fraction 0.5 measured %d GPUs, full measured %d: want fewer", half, full)
		}
	})
	t.Run("ambient", func(t *testing.T) {
		pts, err := VariantSweep(exp, AxisAmbient, []float64{0, 10})
		if err != nil {
			t.Fatal(err)
		}
		base, hot := pts[0].Result.PerAG[0].TempC, pts[1].Result.PerAG[0].TempC
		if hot <= base {
			t.Fatalf("ambient +10°C did not raise temperatures (%v vs %v)", hot, base)
		}
	})
	t.Run("powercap", func(t *testing.T) {
		pts, err := VariantSweep(exp, AxisPowerCap, []float64{0, 120})
		if err != nil {
			t.Fatal(err)
		}
		uncapped, capped := pts[0].Result.PerAG[0].PowerW, pts[1].Result.PerAG[0].PowerW
		if capped > uncapped {
			t.Fatalf("120 W cap raised power (%v vs %v)", capped, uncapped)
		}
	})
}

// TestVariantAxisValidate pins the per-axis value rules.
func TestVariantAxisValidate(t *testing.T) {
	bad := []struct {
		axis VariantAxis
		v    float64
	}{
		{AxisPowerCap, -1},
		{AxisSeed, 1.5},
		{AxisSeed, -2},
		{AxisSeed, 1 << 54},
		{AxisAmbient, 26},
		{AxisAmbient, -26},
		{AxisFraction, 0},
		{AxisFraction, 1.1},
		{AxisFraction, -0.5},
	}
	for _, tt := range bad {
		if err := tt.axis.Validate(tt.v); err == nil {
			t.Errorf("Validate(%s, %v) accepted a bad value", tt.axis, tt.v)
		}
	}
	good := []struct {
		axis VariantAxis
		v    float64
	}{
		{AxisPowerCap, 0}, {AxisPowerCap, 300},
		{AxisSeed, 0}, {AxisSeed, 1 << 53},
		{AxisAmbient, -25}, {AxisAmbient, 25},
		{AxisFraction, 0.01}, {AxisFraction, 1},
	}
	for _, tt := range good {
		if err := tt.axis.Validate(tt.v); err != nil {
			t.Errorf("Validate(%s, %v) = %v, want ok", tt.axis, tt.v, err)
		}
	}
	if _, err := VariantSweep(variantExp(), AxisFraction, []float64{2}); err == nil {
		t.Error("VariantSweep accepted an invalid value")
	}
}

// TestParseVariantAxis resolves every known axis and rejects the rest.
func TestParseVariantAxis(t *testing.T) {
	for _, a := range VariantAxes() {
		got, err := ParseVariantAxis(string(a))
		if err != nil || got != a {
			t.Errorf("ParseVariantAxis(%q) = (%q, %v)", a, got, err)
		}
	}
	if _, err := ParseVariantAxis("voltage"); err == nil || !strings.Contains(err.Error(), "unknown sweep axis") {
		t.Errorf("ParseVariantAxis(voltage) = %v, want an unknown-axis error", err)
	}
}

// TestVariantSweepCancellation: a dead context refuses the sweep.
func TestVariantSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := VariantSweepCtx(ctx, variantExp(), AxisPowerCap, []float64{250, 200})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
