package core

import (
	"fmt"
	"sort"
	"strings"

	"gpuvar/internal/stats"
)

// OutlierFlag is one metric on which a GPU is a statistical outlier.
type OutlierFlag struct {
	Metric Metric
	Value  float64
	// Low is true for below-lower-whisker outliers.
	Low bool
}

// Suspect is a GPU flagged by the early-warning analysis, with a
// diagnosis hint derived from its outlier signature. This implements
// the paper's administrator workflow (§VII "Blacklisting, Maintenance"):
// the study's data let TACC operators identify and service problem
// nodes on Frontera and Longhorn.
type Suspect struct {
	GPUID     string
	NodeID    string
	Flags     []OutlierFlag
	Diagnosis string
	// TruthDefect is the injected ground-truth defect, available in
	// simulation for validating the diagnosis logic.
	TruthDefect string
}

// OutlierReport flags every GPU outside the whiskers on any metric and
// attaches a signature-based diagnosis.
func (r *Result) OutlierReport() []Suspect {
	boxes := map[Metric]stats.BoxPlot{}
	for _, m := range []Metric{Perf, Freq, Power, Temp} {
		if bp, err := r.Box(m); err == nil {
			boxes[m] = bp
		}
	}
	var out []Suspect
	for _, meas := range r.PerAG {
		var flags []OutlierFlag
		for _, m := range []Metric{Perf, Freq, Power, Temp} {
			bp := boxes[m]
			v := m.Of(meas)
			switch {
			case v < bp.LowerWhisker:
				flags = append(flags, OutlierFlag{Metric: m, Value: v, Low: true})
			case v > bp.UpperWhisker:
				flags = append(flags, OutlierFlag{Metric: m, Value: v})
			}
		}
		if len(flags) == 0 {
			continue
		}
		out = append(out, Suspect{
			GPUID:       meas.GPUID,
			NodeID:      meas.Loc.NodeID(),
			Flags:       flags,
			Diagnosis:   diagnose(flags, boxes, meas),
			TruthDefect: meas.Defect.String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].GPUID < out[j].GPUID })
	return out
}

// diagnose maps an outlier signature to a maintenance hint, following
// the cluster-specific signatures the paper documents:
//
//	slow + low power + normal/low temp + pinned low clock → power brake
//	slow + low power + max clock                          → stalling chip
//	slow + hot (near slowdown)                            → cooling path
//	slow + cold + low power + low clock                   → stuck clock
func diagnose(flags []OutlierFlag, boxes map[Metric]stats.BoxPlot, meas Measurement) string {
	has := func(m Metric, low bool) bool {
		for _, f := range flags {
			if f.Metric == m && f.Low == low {
				return true
			}
		}
		return false
	}
	slow := has(Perf, false)
	lowPower := has(Power, true)
	hot := has(Temp, false)
	cold := has(Temp, true)
	lowFreq := has(Freq, true)

	freqBox := boxes[Freq]
	atMaxFreq := meas.FreqMHz >= freqBox.Q2

	switch {
	case slow && hot:
		return "cooling degradation: runs near slowdown temperature; inspect airflow/pump"
	case slow && lowPower && cold && lowFreq:
		return "clock stuck low: slower, cooler, and lower power; check board PM state"
	case slow && lowPower && atMaxFreq:
		return "chip-internal stalls at full clock: candidate for replacement"
	case slow && lowPower || lowPower && lowFreq:
		return "power brake engaged below TDP: check board power delivery/firmware"
	case lowPower:
		return "power outlier: verify sensor and board cap"
	case slow:
		return "slow outlier: re-benchmark and compare against node peers"
	case hot:
		return "temperature outlier: check cooling before performance degrades"
	default:
		return "metric outlier: monitor"
	}
}

// Format renders the report as an aligned text table.
func FormatSuspects(sus []Suspect) string {
	if len(sus) == 0 {
		return "no outliers flagged\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s %-20s %-10s %s\n", "GPU", "NODE", "FLAGS", "DIAGNOSIS")
	for _, s := range sus {
		var fl []string
		for _, f := range s.Flags {
			dir := "high"
			if f.Low {
				dir = "low"
			}
			fl = append(fl, fmt.Sprintf("%s:%s", f.Metric, dir))
		}
		fmt.Fprintf(&b, "%-26s %-20s %-10s %s\n", s.GPUID, s.NodeID, strings.Join(fl, ","), s.Diagnosis)
	}
	return b.String()
}
