package core

import (
	"context"
	"encoding/json"
	"testing"

	"gpuvar/internal/cluster"
	"gpuvar/internal/estimate"
	"gpuvar/internal/workload"
)

// estimateHarnessCases is the validation harness: every variant axis on
// the fast catalog cluster, plus the powercap axis (and one other) on
// every other catalog SKU — V100 SXM2 air (CloudLab), V100 water
// (Vortex), MI60 coarse-P-state air (Corona), RTX5000 oil (Frontera).
// Large clusters run at small coverage fractions to keep the harness
// quick; the estimator has no idea which it is given.
var estimateHarnessCases = []struct {
	cluster  string
	fraction float64
	axis     VariantAxis
	values   []float64
}{
	{"CloudLab", 1, AxisPowerCap, []float64{100, 125, 150, 175, 200, 225, 250, 300}},
	{"CloudLab", 1, AxisSeed, []float64{1, 2, 3, 4, 5, 6, 7, 8}},
	{"CloudLab", 1, AxisAmbient, []float64{-8, -4, 0, 4, 8}},
	{"CloudLab", 1, AxisFraction, []float64{0.25, 0.5, 0.75, 1}},
	{"Corona", 0.25, AxisPowerCap, []float64{120, 160, 200, 250, 300}},
	{"Corona", 0.25, AxisAmbient, []float64{-6, 0, 6}},
	{"Frontera", 0.15, AxisPowerCap, []float64{120, 160, 200, 230}},
	{"Vortex", 0.25, AxisPowerCap, []float64{120, 160, 200, 250, 300}},
}

func harnessExperiment(t *testing.T, clusterName string, fraction float64) Experiment {
	t.Helper()
	spec, ok := cluster.ByName(clusterName)
	if !ok {
		t.Fatalf("unknown cluster %q", clusterName)
	}
	wl, err := workload.ByName("sgemm", spec.SKU())
	if err != nil {
		t.Fatal(err)
	}
	return Experiment{Cluster: spec, Workload: wl, Seed: 2022, Fraction: fraction, Runs: 1}
}

// TestEstimatorErrorWithinBound is the headline validation: at every
// harness point, the estimator's actual error against full simulation
// must stay within the bound it reported for itself. A model that is
// wrong is acceptable where it says so; a model that is wrong where it
// claimed confidence is a bug.
func TestEstimatorErrorWithinBound(t *testing.T) {
	ctx := context.Background()
	for _, c := range estimateHarnessCases {
		exp := harnessExperiment(t, c.cluster, c.fraction)
		est, err := EstimateSweepCtx(ctx, exp, c.axis, c.values)
		if err != nil {
			t.Fatalf("%s %s: estimate: %v", c.cluster, c.axis, err)
		}
		simPts, err := VariantSweepCtx(ctx, exp, c.axis, c.values)
		if err != nil {
			t.Fatalf("%s %s: simulate: %v", c.cluster, c.axis, err)
		}
		for i, v := range c.values {
			e, s := est[i], simPts[i]
			if !e.Estimated || e.Result != nil {
				t.Fatalf("%s %s %v: estimated point not marked (Estimated=%t Result=%v)", c.cluster, c.axis, v, e.Estimated, e.Result)
			}
			if e.Bound <= 0 {
				t.Fatalf("%s %s %v: non-positive bound %v", c.cluster, c.axis, v, e.Bound)
			}
			if s.MedianMs <= 0 {
				t.Fatalf("%s %s %v: degenerate simulated median %v", c.cluster, c.axis, v, s.MedianMs)
			}
			relErr := (e.MedianMs - s.MedianMs) / s.MedianMs
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > e.Bound {
				t.Errorf("%s %s %v: error %.4f exceeds reported bound %.4f (sim %.4f, est %.4f)",
					c.cluster, c.axis, v, relErr, e.Bound, s.MedianMs, e.MedianMs)
			}
		}
	}
}

// TestEstimatorDeterministic pins calibration determinism two ways: the
// memoized path (same request twice) and a from-scratch refit on a
// fresh Calibrator must produce bit-identical points — calibration is a
// pure function of the request, never of run history.
func TestEstimatorDeterministic(t *testing.T) {
	ctx := context.Background()
	exp := harnessExperiment(t, "CloudLab", 1)
	values := []float64{100, 150, 200, 250, 300}

	first, err := EstimateSweepCtx(ctx, exp, AxisPowerCap, values)
	if err != nil {
		t.Fatal(err)
	}
	second, err := EstimateSweepCtx(ctx, exp, AxisPowerCap, values)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(first)
	b2, _ := json.Marshal(second)
	if string(b1) != string(b2) {
		t.Fatalf("memoized estimate diverged:\n%s\n%s", b1, b2)
	}

	// A fresh calibrator refits from fresh anchor runs; the simulator is
	// deterministic, so the fit — and every point — must reproduce bits.
	fresh := &estimate.Calibrator{}
	req := estimate.Request{
		Cluster: exp.Cluster, Workload: exp.Workload,
		Seed: exp.Seed, Fraction: exp.Fraction, Runs: exp.Runs,
		Axis: estimate.AxisPowerCap,
	}
	run := func(ctx context.Context, anchorVals []float64) ([]estimate.Anchor, error) {
		pts, err := VariantSweepCtx(ctx, exp, AxisPowerCap, anchorVals)
		if err != nil {
			return nil, err
		}
		anchors := make([]estimate.Anchor, len(pts))
		for i, p := range pts {
			anchors[i] = estimate.Anchor{Value: p.Value, MedianMs: p.MedianMs, PerfVar: p.PerfVar, GPUs: p.GPUs, Outliers: p.NOutliers}
		}
		return anchors, nil
	}
	m, err := fresh.Model(ctx, req, values, run)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range m.Points(values) {
		if p.MedianMs != first[i].MedianMs || p.Bound != first[i].Bound || p.PerfVar != first[i].PerfVar {
			t.Fatalf("fresh calibrator diverged at %v: {%v %v %v} vs {%v %v %v}",
				values[i], p.MedianMs, p.Bound, p.PerfVar, first[i].MedianMs, first[i].Bound, first[i].PerfVar)
		}
	}
}

// TestAdaptiveThresholdZeroIsPlainSweep pins the degenerate case in the
// core layer: zero tolerance routes to the plain sweep, so the results
// (including Result pointers' presence) are the full-simulation ones.
func TestAdaptiveThresholdZeroIsPlainSweep(t *testing.T) {
	ctx := context.Background()
	exp := harnessExperiment(t, "CloudLab", 1)
	values := []float64{150, 200, 250}
	plain, err := VariantSweepCtx(ctx, exp, AxisPowerCap, values)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := AdaptiveSweepCtx(ctx, exp, AxisPowerCap, values, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(adaptive) != len(plain) {
		t.Fatalf("length mismatch: %d vs %d", len(adaptive), len(plain))
	}
	for i := range plain {
		if adaptive[i].Estimated {
			t.Fatalf("value %v: threshold 0 produced an estimated point", values[i])
		}
		if adaptive[i].MedianMs != plain[i].MedianMs || adaptive[i].PerfVar != plain[i].PerfVar ||
			adaptive[i].GPUs != plain[i].GPUs || adaptive[i].NOutliers != plain[i].NOutliers {
			t.Fatalf("value %v: adaptive(0) diverged from plain sweep", values[i])
		}
	}
}

// TestAdaptiveSweepMix pins the screening contract on a 64-value
// powercap axis: at most DefaultMaxFullSim values simulate (≤ 50% of
// the axis), anchors are among them, and every simulated point is
// IDENTICAL — same struct, bit for bit — to the plain sweep's point at
// that value, because both run the same shard body.
func TestAdaptiveSweepMix(t *testing.T) {
	ctx := context.Background()
	exp := harnessExperiment(t, "CloudLab", 1)
	values := make([]float64, 64)
	for i := range values {
		values[i] = 100 + float64(i)*200/63
	}
	adaptive, err := AdaptiveSweepCtx(ctx, exp, AxisPowerCap, values, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := VariantSweepCtx(ctx, exp, AxisPowerCap, values)
	if err != nil {
		t.Fatal(err)
	}
	simulated := 0
	for i := range adaptive {
		if adaptive[i].Estimated {
			if adaptive[i].Bound <= 0 {
				t.Fatalf("value %v: estimated point without a bound", values[i])
			}
			continue
		}
		simulated++
		a, p := adaptive[i], plain[i]
		if a.MedianMs != p.MedianMs || a.PerfVar != p.PerfVar || a.GPUs != p.GPUs || a.NOutliers != p.NOutliers {
			t.Errorf("value %v: simulated point diverged from plain sweep: %+v vs %+v", values[i], a, p)
		}
	}
	if simulated == 0 {
		t.Fatal("adaptive sweep simulated nothing — anchors must always simulate")
	}
	if simulated > DefaultMaxFullSim {
		t.Fatalf("adaptive sweep simulated %d values, over the %d clamp", simulated, DefaultMaxFullSim)
	}
	if simulated*2 > len(values) {
		t.Fatalf("adaptive sweep simulated %d of %d values (> 50%%)", simulated, len(values))
	}

	// A wide-open tolerance keeps only the anchors.
	loose, err := AdaptiveSweepCtx(ctx, exp, AxisPowerCap, values, 1)
	if err != nil {
		t.Fatal(err)
	}
	looseSim := 0
	for _, p := range loose {
		if !p.Estimated {
			looseSim++
		}
	}
	if looseSim == 0 || looseSim > 5 {
		t.Fatalf("threshold 1 simulated %d values; want just the anchors", looseSim)
	}
}
