package core

import (
	"context"
	"fmt"

	"gpuvar/internal/engine"
	"gpuvar/internal/gpu"
	"gpuvar/internal/stats"
	"gpuvar/internal/workload"
)

// WeekStudy runs the experiment once per day of the week (§VI-A,
// Figs. 20–21) and returns the seven results, Monday first.
func WeekStudy(exp Experiment) ([]*Result, error) {
	return WeekStudyCtx(context.Background(), exp)
}

// WeekStudyCtx is WeekStudy as one engine job: the seven day-variants
// share the cached fleet and run concurrently, each day's result landing
// at its index (Monday first, identical to the serial order).
func WeekStudyCtx(ctx context.Context, exp Experiment) ([]*Result, error) {
	out, err := engine.Map(ctx, 7, 0, func(ctx context.Context, day int) (*Result, error) {
		e := exp
		e.Day = day
		// A different run phase per day: the same GPUs measured on
		// different days draw fresh run-level jitter.
		e.Seed = exp.Seed // fleet identical across days
		r, err := RunCtx(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("core: day %d: %w", day, err)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DayNames are the week-study labels.
var DayNames = [7]string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}

// PowerSweepPoint is one power-limit setting's outcome (§VI-B, Fig. 22).
type PowerSweepPoint struct {
	CapW      float64
	PerfVar   float64
	MedianMs  float64
	NOutliers int
	Result    *Result
}

// PowerLimitSweep runs the workload at each administrative power cap.
// The paper sweeps 100–300 W on CloudLab, where the authors had root.
func PowerLimitSweep(exp Experiment, capsW []float64) ([]PowerSweepPoint, error) {
	return PowerLimitSweepCtx(context.Background(), exp, capsW)
}

// PowerLimitSweepCtx runs the sweep as one engine job graph. It is the
// AxisPowerCap instance of the generalized VariantSweepCtx (every cap
// variant is a shard sharing the same cached fleet — the cap applies at
// simulation time, not instantiation time), kept as a named façade
// because it is the paper's §VI-B study. Results keep capsW order and
// are bit-identical to the pre-generalization implementation (the
// golden test in variants_test.go pins this).
func PowerLimitSweepCtx(ctx context.Context, exp Experiment, capsW []float64) ([]PowerSweepPoint, error) {
	pts, err := VariantSweepCtx(ctx, exp, AxisPowerCap, capsW)
	if err != nil {
		return nil, err
	}
	out := make([]PowerSweepPoint, len(pts))
	for i, p := range pts {
		out[i] = PowerSweepPoint{
			CapW:      p.Value,
			PerfVar:   p.PerfVar,
			MedianMs:  p.MedianMs,
			NOutliers: p.NOutliers,
			Result:    p.Result,
		}
	}
	return out, nil
}

// AppStudyRow is one workload's variability summary on one cluster —
// the rows behind the paper's §V cross-application comparison.
type AppStudyRow struct {
	Workload string
	Class    workload.Class
	PerfVar  float64
	PowerVar float64
	FreqVar  float64
	MedianMs float64
	PerfFreq float64 // ρ(perf, freq)
}

// ApplicationStudy runs several workloads on the same cluster and fleet
// seed and summarizes each, preserving order.
func ApplicationStudy(base Experiment, wls []workload.Workload) ([]AppStudyRow, error) {
	return ApplicationStudyCtx(context.Background(), base, wls)
}

// ApplicationStudyCtx is ApplicationStudy with cooperative cancellation
// (each workload's run is an engine job that honors ctx).
func ApplicationStudyCtx(ctx context.Context, base Experiment, wls []workload.Workload) ([]AppStudyRow, error) {
	out := make([]AppStudyRow, 0, len(wls))
	for _, wl := range wls {
		e := base
		e.Workload = wl
		r, err := RunCtx(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", wl.Name, err)
		}
		row := AppStudyRow{
			Workload: wl.Name,
			Class:    workload.Classify(wl.Profile),
			PerfVar:  r.Variation(Perf),
			PowerVar: r.Variation(Power),
			FreqVar:  r.Variation(Freq),
			PerfFreq: r.Correlate().PerfFreq,
		}
		if bp, err := r.Box(Perf); err == nil {
			row.MedianMs = bp.Q2
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationRow quantifies one mechanism's contribution to variability.
type AblationRow struct {
	Name    string
	PerfVar float64
}

// Ablation reruns the experiment with individual variability mechanisms
// disabled, attributing the observed variation (an extension beyond the
// paper: DESIGN.md §5).
func Ablation(exp Experiment) ([]AblationRow, error) {
	return AblationCtx(context.Background(), exp)
}

// AblationCtx is Ablation with cooperative cancellation.
func AblationCtx(ctx context.Context, exp Experiment) ([]AblationRow, error) {
	type variant struct {
		name string
		mod  func(*Experiment)
	}
	vm := exp.Cluster.Variation
	variants := []variant{
		{"full model", func(e *Experiment) {}},
		{"no defects", func(e *Experiment) { e.NoDefects = true }},
		{"no V/F-curve spread", func(e *Experiment) {
			v := vm
			v.VoltSpread = 0
			e.VariationOverride = &v
		}},
		{"no leakage spread", func(e *Experiment) {
			v := vm
			v.LeakSpread = 0
			e.VariationOverride = &v
		}},
		{"no bandwidth spread", func(e *Experiment) {
			v := vm
			v.MemBWSpread = 0
			e.VariationOverride = &v
		}},
		{"no manufacturing spread at all", func(e *Experiment) {
			e.VariationOverride = &gpu.VariationModel{}
		}},
	}
	out := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		e := exp
		v.mod(&e)
		r, err := RunCtx(ctx, e)
		if err != nil {
			return nil, fmt.Errorf("core: ablation %q: %w", v.name, err)
		}
		out = append(out, AblationRow{Name: v.name, PerfVar: r.Variation(Perf)})
	}
	return out, nil
}

// SampleSizeCheck verifies the experiment's statistical power per the
// paper's §III methodology [31]: the number of GPUs measured versus the
// recommended sample for lambda-accurate mean power at the given
// confidence. The paper reports a 2.9× margin over the worst case.
type SampleSizeCheck struct {
	Measured    int
	Recommended int
	MarginX     float64
}

// CheckSampleSize computes the recommendation from the measured power
// coefficient of variation.
func (r *Result) CheckSampleSize(lambda, confidence float64) SampleSizeCheck {
	power := r.Values(Power)
	cv := stats.StdDev(power) / stats.Mean(power)
	rec := stats.RecommendedSampleSize(r.Exp.Cluster.NumGPUs(), cv, lambda, confidence)
	c := SampleSizeCheck{Measured: len(power), Recommended: rec}
	if rec > 0 {
		c.MarginX = float64(c.Measured) / float64(rec)
	}
	return c
}
