package core

import (
	"testing"

	"gpuvar/internal/cluster"
)

func TestSpatialStudyAirCoupling(t *testing.T) {
	// Busy neighbors heat the shared airflow: each added neighbor slows
	// the median compute-bound kernel on an air-cooled cluster.
	exp := sgemmExp(cluster.Longhorn(), 6)
	exp.Fraction = 0.5
	points, err := SpatialStudy(exp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].MedianMs <= points[i-1].MedianMs {
			t.Errorf("neighbor %d should slow the median: %v vs %v",
				points[i].BusyNeighbors, points[i].MedianMs, points[i-1].MedianMs)
		}
		if points[i].MedianTempC <= points[i-1].MedianTempC {
			t.Errorf("neighbor %d should heat the die", points[i].BusyNeighbors)
		}
	}
}

func TestSpatialStudyWaterIsolates(t *testing.T) {
	// Liquid cooling decouples the GPUs: the 3-neighbor penalty on
	// Vortex must be far smaller than on Longhorn.
	air := sgemmExp(cluster.Longhorn(), 6)
	air.Fraction = 0.5
	airPts, err := SpatialStudy(air, 3)
	if err != nil {
		t.Fatal(err)
	}
	water := sgemmExp(cluster.Vortex(), 6)
	waterPts, err := SpatialStudy(water, 3)
	if err != nil {
		t.Fatal(err)
	}
	airPenalty := airPts[3].MedianMs/airPts[0].MedianMs - 1
	waterPenalty := waterPts[3].MedianMs/waterPts[0].MedianMs - 1
	if waterPenalty > airPenalty/2 {
		t.Fatalf("water penalty %v should be well under air penalty %v", waterPenalty, airPenalty)
	}
}

func TestSpatialStudyRejectsBadNeighborCount(t *testing.T) {
	exp := sgemmExp(cluster.Longhorn(), 4)
	if _, err := SpatialStudy(exp, 4); err == nil { // nodes have 4 GPUs
		t.Fatal("4 neighbors on a 4-GPU node should be rejected")
	}
	if _, err := SpatialStudy(exp, -1); err == nil {
		t.Fatal("negative neighbors should be rejected")
	}
}

func TestTemporalCarryover(t *testing.T) {
	// A hot die from a preceding job slows the first kernel relative to
	// a cold start; the steady-state duration is history-independent.
	points, err := TemporalStudy(cluster.Longhorn(), testSeed, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no temporal points")
	}
	for _, p := range points {
		if pen := p.CarryoverPenalty(); pen <= 0 {
			t.Errorf("%s: carryover penalty %v should be positive", p.GPUID, pen)
		} else if pen > 0.25 {
			t.Errorf("%s: carryover penalty %v implausibly large", p.GPUID, pen)
		}
		// The first hot kernel is already near the steady duration; the
		// cold one is measurably faster.
		if p.ColdFirstKernelMs >= p.SteadyKernelMs {
			t.Errorf("%s: cold first kernel %v should beat steady %v",
				p.GPUID, p.ColdFirstKernelMs, p.SteadyKernelMs)
		}
	}
}
