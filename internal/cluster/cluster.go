// Package cluster describes the six computing systems of the paper's
// study (Table I) — CloudLab, TACC Longhorn, TACC Frontera, SNL Vortex,
// ORNL Summit, and LLNL Corona — and instantiates seeded fleets of
// modeled GPUs with the manufacturing spread, thermal environment, and
// defect placement calibrated to each cluster's published signatures.
package cluster

import (
	"fmt"

	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
)

// Location places a GPU within a cluster's physical topology. Summit
// uses row/column addressing (paper §IV-C breaks results down by row);
// the smaller clusters use cabinets of nodes.
type Location struct {
	Row     string // "A".."H" on Summit, "" elsewhere
	Col     int    // 1-based column within the row on Summit, 0 elsewhere
	Cabinet string // cabinet label, e.g. "c002" (Longhorn), "c197" (Frontera)
	Node    int    // 1-based node index within cabinet or row-column
	Slot    int    // 0-based GPU index within the node
	// Pos is the normalized 0..1 position across the fleet, used for
	// air-cooling gradients.
	Pos float64
}

// NodeID returns the node's unique name.
func (l Location) NodeID() string {
	if l.Row != "" {
		return fmt.Sprintf("row%s-col%02d-n%02d", l.Row, l.Col, l.Node)
	}
	return fmt.Sprintf("%s-n%02d", l.Cabinet, l.Node)
}

// GPUID returns the GPU's unique name.
func (l Location) GPUID() string { return fmt.Sprintf("%s-g%d", l.NodeID(), l.Slot) }

// Group returns the coarse grouping label used in the paper's box
// plots: cabinet for flat clusters, row for Summit.
func (l Location) Group() string {
	if l.Row != "" {
		return "row" + l.Row
	}
	return l.Cabinet
}

// DefectSpec plants one defect class into a fleet.
type DefectSpec struct {
	Kind gpu.DefectKind
	// GPUs is the number of GPUs affected.
	GPUs int
	// WholeNodes affects complete nodes (rounding GPUs up to node
	// granularity) — cooling problems are node- or cabinet-level.
	WholeNodes bool
	// Container restricts placement: a cabinet label ("c002"), a row
	// label ("rowH"), or "" for anywhere.
	Container string
}

// Spec is a cluster description sufficient to instantiate a fleet.
type Spec struct {
	Name        string
	SKU         func() *gpu.SKU
	Cooling     thermal.Params
	GPUsPerNode int

	// Flat topology (all clusters except Summit): cabinets of
	// CabinetNodes nodes named by CabinetLabels.
	CabinetLabels []string
	CabinetNodes  int

	// Summit topology: Rows × Cols × NodesPerCol nodes.
	Rows        []string
	Cols        int
	NodesPerCol int

	Variation gpu.VariationModel
	Defects   []DefectSpec

	// ObservedGPUs is how many GPUs the study measured (0 = all); the
	// paper covered >90% of each cluster, e.g. 184 of Vortex's 216.
	ObservedGPUs int
}

// NumNodes returns the total node count, honoring short last cabinets
// (Frontera's 4 cabinets hold 90 nodes, Corona's 21 hold 82).
func (s Spec) NumNodes() int {
	if len(s.Rows) > 0 {
		return len(s.Rows) * s.Cols * s.NodesPerCol
	}
	n := len(s.CabinetLabels) * s.CabinetNodes
	if cap, ok := nodeCaps[s.Name]; ok && cap < n {
		return cap
	}
	return n
}

// NumGPUs returns the total GPU count.
func (s Spec) NumGPUs() int { return s.NumNodes() * s.GPUsPerNode }

// cabinetRange builds labels like c002..c009.
func cabinetRange(prefix string, from, count int) []string {
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("%s%03d", prefix, from+i)
	}
	return out
}

// CloudLab returns the 12-GPU CloudLab slice (§III, §VI-B): 3 nodes of
// 4 air-cooled V100s, where the authors had administrator rights to
// vary the power limit.
func CloudLab() Spec {
	return Spec{
		Name:          "CloudLab",
		SKU:           gpu.V100SXM2,
		Cooling:       thermal.AirParams(),
		GPUsPerNode:   4,
		CabinetLabels: []string{"cl0"},
		CabinetNodes:  3,
		Variation:     gpu.DefaultVariation(),
	}
}

// Longhorn returns TACC's air-cooled Longhorn: 104 nodes × 4 V100s in
// cabinets c002–c009 (Fig. 2's color key). Calibrated defects: one
// full stall node in c002 (the ResNet/SGEMM straggler cabinet, §V-A)
// and a few scattered power brakes (the 250 W outliers in Fig. 2c).
func Longhorn() Spec {
	return Spec{
		Name:          "Longhorn",
		SKU:           gpu.V100SXM2,
		Cooling:       thermal.AirParams(),
		GPUsPerNode:   4,
		CabinetLabels: cabinetRange("c", 2, 8),
		CabinetNodes:  13,
		Variation:     gpu.DefaultVariation(),
		Defects: []DefectSpec{
			{Kind: gpu.DefectStall, GPUs: 4, WholeNodes: true, Container: "c002"},
			{Kind: gpu.DefectPowerBrake, GPUs: 3},
		},
	}
}

// Frontera returns TACC's mineral-oil-cooled Frontera GPU subsystem:
// 90 nodes × 4 Quadro RTX 5000s in cabinets c196–c199. Two stuck-clock
// GPUs sit in c197 (the outliers that led operators to inspect the oil
// pump, §IV-F).
func Frontera() Spec {
	return Spec{
		Name:          "Frontera",
		SKU:           gpu.RTX5000,
		Cooling:       thermal.OilParams(),
		GPUsPerNode:   4,
		CabinetLabels: cabinetRange("c", 196, 4),
		CabinetNodes:  23, // 4 cabinets cover 90 nodes; the last is short
		Variation:     gpu.DefaultVariation(),
		Defects: []DefectSpec{
			{Kind: gpu.DefectClockStuck, GPUs: 2, Container: "c197"},
		},
	}
}

// Vortex returns SNL's water-cooled Vortex: 54 nodes × 4 V100s. The
// paper observed 184 GPUs and found no power outliers (all within 5 W
// of the limit, §IV-E), so no defects are planted.
func Vortex() Spec {
	return Spec{
		Name:          "Vortex",
		SKU:           gpu.V100SXM2,
		Cooling:       thermal.WaterParams(),
		GPUsPerNode:   4,
		CabinetLabels: cabinetRange("v", 0, 18),
		CabinetNodes:  3,
		Variation:     gpu.DefaultVariation(),
		ObservedGPUs:  184,
	}
}

// Summit returns ORNL's water-cooled Summit: 8 rows × 36 columns × 16
// nodes × 6 V100s = 27,648 GPUs. Power brakes concentrate in a few
// row-column pairs (rows A/D/F/H carry most outliers; row H column 36
// alone has 7 affected nodes — Appendix B), plus a mild cooling defect
// node (rowH-col36-n02's temperature outliers).
func Summit() Spec {
	return Spec{
		Name:        "Summit",
		SKU:         gpu.V100SXM2,
		Cooling:     thermal.WaterParams(),
		GPUsPerNode: 6,
		Rows:        []string{"A", "B", "C", "D", "E", "F", "G", "H"},
		Cols:        36,
		NodesPerCol: 16,
		Variation:   gpu.DefaultVariation(),
		Defects: []DefectSpec{
			{Kind: gpu.DefectPowerBrake, GPUs: 42, Container: "rowH"},
			{Kind: gpu.DefectPowerBrake, GPUs: 22, Container: "rowA"},
			{Kind: gpu.DefectPowerBrake, GPUs: 18, Container: "rowD"},
			{Kind: gpu.DefectPowerBrake, GPUs: 16, Container: "rowF"},
			{Kind: gpu.DefectCooling, GPUs: 6, WholeNodes: true, Container: "rowH"},
		},
	}
}

// Corona returns LLNL's air-cooled Corona: 82 nodes × 4 MI60s. The air
// path runs the MI60s near their 100 °C slowdown point; node c115 has a
// cooling defect (the 165 W outlier, §IV-D). Corona's air is calibrated
// hotter than Longhorn's: its dense chassis push the MI60s toward
// slowdown at SGEMM power.
func Corona() Spec {
	cool := thermal.AirParams()
	cool.ResistCPerW = 0.175
	cool.ResistSpread = 0.07
	cool.AmbientC = 32
	cool.AmbientSpreadC = 2.0
	cool.PositionGradientC = 4
	return Spec{
		Name:          "Corona",
		SKU:           gpu.MI60,
		Cooling:       cool,
		GPUsPerNode:   4,
		CabinetLabels: cabinetRange("cab", 0, 21), // 21 cabinets × 4 nodes
		CabinetNodes:  4,                          // 82 nodes: last cabinet short
		Variation:     gpu.DefaultVariation(),
		Defects: []DefectSpec{
			{Kind: gpu.DefectCooling, GPUs: 4, WholeNodes: true},
		},
	}
}

// All returns the five large HPC clusters plus CloudLab.
func All() []Spec {
	return []Spec{CloudLab(), Longhorn(), Frontera(), Vortex(), Summit(), Corona()}
}

// WithSKU returns a copy of the spec populated with a different GPU
// model (and no planted defects, so SKU comparisons isolate the silicon):
// the substrate for next-generation what-if studies.
func (s Spec) WithSKU(name string, sku func() *gpu.SKU) Spec {
	out := s
	out.Name = name
	out.SKU = sku
	out.Defects = nil
	return out
}

// Names lists the study's cluster names in Table I order.
func Names() []string {
	specs := All()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// ByName returns the named spec (case-sensitive) or false.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// nodeCap bounds real node counts for clusters whose last cabinet is
// short (Frontera 90 of 92, Corona 82 of 84).
var nodeCaps = map[string]int{"Frontera": 90, "Corona": 82}

// Member is one instantiated GPU: chip + thermal node + location.
type Member struct {
	Chip  *gpu.Chip
	Therm *thermal.Node
	Loc   Location
}

// Fleet is an instantiated cluster.
type Fleet struct {
	Spec    Spec
	Members []*Member
	seed    uint64
}

// Seed returns the seed the fleet was instantiated with.
func (f *Fleet) Seed() uint64 { return f.seed }

// Instantiate samples every chip and thermal node of the cluster from
// the given seed, then plants the spec's defects. The same (spec, seed)
// always produces the identical fleet.
func (s Spec) Instantiate(seed uint64) *Fleet {
	parent := rng.New(seed).Split("fleet:" + s.Name)
	f := &Fleet{Spec: s, seed: seed}

	locs := s.locations()
	total := len(locs)
	for i, loc := range locs {
		loc.Pos = float64(i) / float64(max(total-1, 1))
		chipStream := parent.SplitIndex("chip", i)
		thermStream := parent.SplitIndex("therm", i)
		chip := gpu.NewChip(s.SKU(), loc.GPUID(), s.Variation, chipStream)
		node := thermal.NewNode(s.Cooling, loc.Pos, thermStream)
		f.Members = append(f.Members, &Member{Chip: chip, Therm: node, Loc: loc})
	}
	f.plantDefects(parent.Split("defects"))
	return f
}

// locations enumerates every GPU slot of the cluster in a fixed order.
func (s Spec) locations() []Location {
	var out []Location
	if len(s.Rows) > 0 {
		for _, row := range s.Rows {
			for col := 1; col <= s.Cols; col++ {
				for n := 1; n <= s.NodesPerCol; n++ {
					for g := 0; g < s.GPUsPerNode; g++ {
						out = append(out, Location{Row: row, Col: col, Node: n, Slot: g})
					}
				}
			}
		}
		return out
	}
	capNodes := nodeCaps[s.Name]
	count := 0
	for _, cab := range s.CabinetLabels {
		for n := 1; n <= s.CabinetNodes; n++ {
			if capNodes > 0 && count >= capNodes {
				break
			}
			count++
			for g := 0; g < s.GPUsPerNode; g++ {
				out = append(out, Location{Cabinet: cab, Node: n, Slot: g})
			}
		}
	}
	return out
}

// plantDefects applies the spec's defect list deterministically.
func (f *Fleet) plantDefects(r *rng.Source) {
	for di, d := range f.Spec.Defects {
		stream := r.SplitIndex("spec", di)
		candidates := f.membersIn(d.Container)
		if len(candidates) == 0 {
			continue
		}
		if d.WholeNodes {
			nodes := groupByNode(candidates)
			names := sortedKeys(nodes)
			need := (d.GPUs + f.Spec.GPUsPerNode - 1) / f.Spec.GPUsPerNode
			for _, idx := range stream.Perm(len(names)) {
				if need == 0 {
					break
				}
				for _, m := range nodes[names[idx]] {
					m.Chip.InjectDefect(d.Kind, stream)
				}
				need--
			}
			continue
		}
		perm := stream.Perm(len(candidates))
		for i := 0; i < d.GPUs && i < len(perm); i++ {
			candidates[perm[i]].Chip.InjectDefect(d.Kind, stream)
		}
	}
}

// membersIn filters members by container label ("" = all).
func (f *Fleet) membersIn(container string) []*Member {
	if container == "" {
		return f.Members
	}
	var out []*Member
	for _, m := range f.Members {
		if m.Loc.Group() == container || m.Loc.Cabinet == container {
			out = append(out, m)
		}
	}
	return out
}

func groupByNode(ms []*Member) map[string][]*Member {
	out := map[string][]*Member{}
	for _, m := range ms {
		out[m.Loc.NodeID()] = append(out[m.Loc.NodeID()], m)
	}
	return out
}

func sortedKeys(m map[string][]*Member) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: node counts are small.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Nodes groups the fleet's members by node, keyed by NodeID.
func (f *Fleet) Nodes() map[string][]*Member { return groupByNode(f.Members) }

// Groups groups the fleet's members by the paper's plot grouping
// (cabinet or row).
func (f *Fleet) Groups() map[string][]*Member {
	out := map[string][]*Member{}
	for _, m := range f.Members {
		out[m.Loc.Group()] = append(out[m.Loc.Group()], m)
	}
	return out
}

// Defective returns members with an injected defect.
func (f *Fleet) Defective() []*Member {
	var out []*Member
	for _, m := range f.Members {
		if !m.Chip.Healthy() {
			out = append(out, m)
		}
	}
	return out
}

// Observed returns the subset of the fleet the study would measure:
// ObservedGPUs members (deterministically chosen), or all when 0.
func (f *Fleet) Observed() []*Member {
	n := f.Spec.ObservedGPUs
	if n <= 0 || n >= len(f.Members) {
		return f.Members
	}
	r := rng.New(f.seed).Split("observe:" + f.Spec.Name)
	perm := r.Perm(len(f.Members))
	out := make([]*Member, n)
	for i := 0; i < n; i++ {
		out[i] = f.Members[perm[i]]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
