package cluster

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"

	"gpuvar/internal/faults"
)

// Fleet instantiation is the most expensive fixed cost of the experiment
// pipeline: Summit alone samples 27,648 chips and thermal nodes. Because
// Instantiate is a pure function of (Spec, seed), the result can be
// computed once and shared by every experiment that asks for the same
// fleet — the ablation knobs (NoDefects, VariationOverride) edit the
// spec before instantiation, so each variant hashes to its own cache
// entry and the base fleet is never mutated (copy-on-write at the spec
// level).
//
// The cache is bounded: (spec, seed) is client-controlled through the
// service, so an unbounded map would let a seed-scanning client make
// the server instantiate and retain fleets without limit. Completed
// fleets live in an LRU capped at the cache's capacity (default
// DefaultFleetCacheCap; evictions are counted and exported via
// /v1/healthz), and a detached instantiation whose every waiter is
// already gone before sampling begins is never started at all — the
// admission rule. Once sampling has begun it always runs to completion
// and is cached (the result is pure and worth keeping for the next
// request), even if the last waiter leaves mid-instantiate.
//
// Shared fleets impose one discipline on consumers: Members are
// read-only. Simulation state must live in per-run copies — internal/core
// already gives every job a private thermal-node copy, and the sim layer
// never writes through *gpu.Chip. Code that mutates chips in place
// (campaign defect injection, serialization round-trips) must keep using
// Instantiate directly.

// Fingerprint returns a deterministic key capturing every spec field
// that affects Instantiate's output, including the SKU's full parameter
// set and the planted-defect list. Two specs with equal fingerprints
// instantiate identical fleets from the same seed.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|gpn=%d|cool=%+v|var=%+v|defects=%+v|obs=%d",
		s.Name, s.GPUsPerNode, s.Cooling, s.Variation, s.Defects, s.ObservedGPUs)
	fmt.Fprintf(&b, "|cab=%v/%d|rows=%v/%d/%d",
		s.CabinetLabels, s.CabinetNodes, s.Rows, s.Cols, s.NodesPerCol)
	if s.SKU != nil {
		fmt.Fprintf(&b, "|sku=%+v", *s.SKU())
	}
	return b.String()
}

type fleetKey struct {
	fp   string
	seed uint64
}

// fleetEntry lets concurrent requests for the same fleet share one
// instantiation without serializing requests for different fleets. The
// instantiation runs on its own goroutine; waiters is the refcount of
// callers blocked on done, and the goroutine consults it exactly once,
// before sampling begins: if every waiter has already abandoned the
// entry (admission rule), the instantiation never starts and the key is
// released. After that point the sampling runs to completion and is
// cached no matter who is still listening.
type fleetEntry struct {
	key     fleetKey
	waiters int  // guarded by the cache mutex
	started bool // sampling began; guarded by the cache mutex
	done    chan struct{}
	fleet   *Fleet        // nil iff admission-skipped
	el      *list.Element // LRU position once completed
}

// FleetCacheStats is a point-in-time snapshot of the cache counters,
// exported by the service's /v1/stats and /v1/healthz.
type FleetCacheStats struct {
	// Entries counts cached fleets plus in-flight instantiations.
	Entries  int `json:"entries"`
	InFlight int `json:"in_flight"`
	// Hits counts lookups that found an entry (completed or in
	// flight); Misses counts lookups that had to create one.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Evictions counts completed fleets dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// AdmissionSkips counts instantiations never started because every
	// waiter was gone before sampling began.
	AdmissionSkips uint64 `json:"admission_skips"`
}

// DefaultFleetCacheCap is the default bound on cached fleets. Summit
// fleets weigh tens of megabytes each, so the default keeps a busy
// server's fleet working set in the hundreds of megabytes; tune with
// NewFleetCacheSize or SetCap (gpuvard -fleet-cache).
const DefaultFleetCacheCap = 16

// FleetCache memoizes Instantiate by (Spec fingerprint, seed) with an
// LRU bound on completed fleets. Safe for concurrent use. Fleets
// returned from the cache are shared: treat their members as read-only
// (see the package note above). Evicting a fleet never invalidates
// copies already handed out — callers keep their reference; the next
// request for that key re-instantiates.
type FleetCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // completed entries, front = most recently used
	fleets map[fleetKey]*fleetEntry
	stats  FleetCacheStats
}

// NewFleetCache returns an empty cache bounded at DefaultFleetCacheCap.
func NewFleetCache() *FleetCache {
	return NewFleetCacheSize(DefaultFleetCacheCap)
}

// NewFleetCacheSize returns an empty cache retaining at most max
// completed fleets (minimum 1).
func NewFleetCacheSize(max int) *FleetCache {
	if max < 1 {
		max = 1
	}
	return &FleetCache{
		max:    max,
		ll:     list.New(),
		fleets: map[fleetKey]*fleetEntry{},
	}
}

// SetCap rebounds the LRU (minimum 1), evicting immediately if the
// cache is over the new cap. gpuvard exposes it as -fleet-cache.
func (c *FleetCache) SetCap(max int) {
	if max < 1 {
		max = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = max
	c.evictLocked()
}

// DefaultFleetCache is the process-wide cache used by internal/core for
// experiment runs. Fleets are deterministic, so process-lifetime sharing
// is safe; memory is bounded by the LRU cap.
var DefaultFleetCache = NewFleetCache()

// Instantiate returns the cached fleet for (s, seed), instantiating it
// on first use. A nil cache degrades to a plain Instantiate, so callers
// can thread an optional cache without branching.
func (c *FleetCache) Instantiate(s Spec, seed uint64) *Fleet {
	if c == nil {
		return s.Instantiate(seed)
	}
	e := c.acquire(s, seed)
	<-e.done
	c.release(e)
	return e.fleet
}

// Get is the context-aware instantiate path the service stack runs on:
// it returns the cached fleet for (s, seed), sharing one in-progress
// instantiation among concurrent callers, but abandons the wait the
// moment ctx ends. An instantiation whose sampling has begun always
// runs to completion and is cached (it is pure and worth keeping for
// the next request); one abandoned by every waiter before sampling
// begins is skipped entirely (the admission rule), so a burst of
// canceled requests cannot queue up detached work nobody wants.
func (c *FleetCache) Get(ctx context.Context, s Spec, seed uint64) (*Fleet, error) {
	// Chaos seam: an armed cache.fleet.get site fails (or stalls/slows)
	// the lookup before any sharing happens. Injected errors are
	// transient, so the engine's per-shard retry policy recovers them.
	if err := faults.Inject(ctx, faults.SiteFleetGet); err != nil {
		return nil, err
	}
	if c == nil {
		// No cache to amortize into: check before paying for a full
		// instantiation, which is not interruptible.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.Instantiate(seed), nil
	}
	e := c.acquire(s, seed)
	select {
	case <-e.done:
		c.release(e)
		if e.fleet == nil {
			// Admission-skipped just as we joined (we raced the check);
			// retry with a fresh entry — our context is still live.
			return c.Get(ctx, s, seed)
		}
		return e.fleet, nil
	case <-ctx.Done():
		c.release(e)
		return nil, ctx.Err()
	}
}

// acquire returns the key's entry with this caller registered as a
// waiter, creating the entry (and launching its instantiation
// goroutine) on first use.
func (c *FleetCache) acquire(s Spec, seed uint64) *fleetEntry {
	key := fleetKey{fp: s.Fingerprint(), seed: seed}
	c.mu.Lock()
	e, ok := c.fleets[key]
	if ok {
		c.stats.Hits++
		if e.el != nil {
			c.ll.MoveToFront(e.el)
		}
		e.waiters++
		c.mu.Unlock()
		return e
	}
	c.stats.Misses++
	e = &fleetEntry{key: key, waiters: 1, done: make(chan struct{})}
	c.fleets[key] = e
	c.mu.Unlock()

	go func() {
		c.mu.Lock()
		if e.waiters == 0 {
			// Admission rule: every waiter left before sampling began,
			// so don't start work nobody wants. Release the key; the
			// next request creates a fresh entry.
			if c.fleets[key] == e {
				delete(c.fleets, key)
			}
			c.stats.AdmissionSkips++
			c.mu.Unlock()
			close(e.done)
			return
		}
		e.started = true
		c.mu.Unlock()

		f := s.Instantiate(seed)

		c.mu.Lock()
		e.fleet = f
		if c.fleets[key] == e {
			e.el = c.ll.PushFront(e)
			c.evictLocked()
		}
		c.mu.Unlock()
		close(e.done)
	}()
	return e
}

// release drops the caller's waiter registration.
func (c *FleetCache) release(e *fleetEntry) {
	c.mu.Lock()
	e.waiters--
	c.mu.Unlock()
}

// evictLocked enforces the LRU bound on completed fleets. Caller holds
// c.mu. In-flight instantiations are not evictable (their waiters hold
// them); they join the LRU on completion.
func (c *FleetCache) evictLocked() {
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		e := tail.Value.(*fleetEntry)
		c.ll.Remove(tail)
		delete(c.fleets, e.key)
		c.stats.Evictions++
	}
}

// Contains reports whether the fleet for (s, seed) is already cached or
// instantiating — a warmth probe for cache-affinity dispatch. Unlike
// Get, it does not touch the LRU order, join an in-flight entry, or
// count toward the hit/miss stats.
func (c *FleetCache) Contains(s Spec, seed uint64) bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.fleets[fleetKey{fp: s.Fingerprint(), seed: seed}]
	return ok
}

// Len returns the number of cached or in-flight fleets.
func (c *FleetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fleets)
}

// Stats snapshots the counters.
func (c *FleetCache) Stats() FleetCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.fleets)
	s.InFlight = len(c.fleets) - c.ll.Len()
	return s
}
