package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
)

// Fleet instantiation is the most expensive fixed cost of the experiment
// pipeline: Summit alone samples 27,648 chips and thermal nodes. Because
// Instantiate is a pure function of (Spec, seed), the result can be
// computed once and shared by every experiment that asks for the same
// fleet — the ablation knobs (NoDefects, VariationOverride) edit the
// spec before instantiation, so each variant hashes to its own cache
// entry and the base fleet is never mutated (copy-on-write at the spec
// level).
//
// Shared fleets impose one discipline on consumers: Members are
// read-only. Simulation state must live in per-run copies — internal/core
// already gives every job a private thermal-node copy, and the sim layer
// never writes through *gpu.Chip. Code that mutates chips in place
// (campaign defect injection, serialization round-trips) must keep using
// Instantiate directly.

// Fingerprint returns a deterministic key capturing every spec field
// that affects Instantiate's output, including the SKU's full parameter
// set and the planted-defect list. Two specs with equal fingerprints
// instantiate identical fleets from the same seed.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|gpn=%d|cool=%+v|var=%+v|defects=%+v|obs=%d",
		s.Name, s.GPUsPerNode, s.Cooling, s.Variation, s.Defects, s.ObservedGPUs)
	fmt.Fprintf(&b, "|cab=%v/%d|rows=%v/%d/%d",
		s.CabinetLabels, s.CabinetNodes, s.Rows, s.Cols, s.NodesPerCol)
	if s.SKU != nil {
		fmt.Fprintf(&b, "|sku=%+v", *s.SKU())
	}
	return b.String()
}

type fleetKey struct {
	fp   string
	seed uint64
}

// fleetEntry lets concurrent requests for the same fleet share one
// instantiation without serializing requests for different fleets. The
// instantiation runs on its own goroutine: a caller abandoning it
// (context canceled mid-instantiate) returns immediately while the
// sampling runs to completion and is cached — the result is pure, so
// only complete fleets ever enter the cache and the next request for
// the same key pays nothing.
type fleetEntry struct {
	once  sync.Once
	done  chan struct{}
	fleet *Fleet
}

// start launches the instantiation exactly once.
func (e *fleetEntry) start(s Spec, seed uint64) {
	e.once.Do(func() {
		go func() {
			e.fleet = s.Instantiate(seed)
			close(e.done)
		}()
	})
}

// FleetCache memoizes Instantiate by (Spec fingerprint, seed). Safe for
// concurrent use. Fleets returned from the cache are shared: treat their
// members as read-only (see the package note above).
type FleetCache struct {
	mu     sync.Mutex
	fleets map[fleetKey]*fleetEntry
}

// NewFleetCache returns an empty cache.
func NewFleetCache() *FleetCache {
	return &FleetCache{fleets: map[fleetKey]*fleetEntry{}}
}

// DefaultFleetCache is the process-wide cache used by internal/core for
// experiment runs. Fleets are deterministic, so process-lifetime sharing
// is safe; memory is bounded by the number of distinct (spec, seed)
// pairs a session touches.
var DefaultFleetCache = NewFleetCache()

// Instantiate returns the cached fleet for (s, seed), instantiating it
// on first use. A nil cache degrades to a plain Instantiate, so callers
// can thread an optional cache without branching.
func (c *FleetCache) Instantiate(s Spec, seed uint64) *Fleet {
	if c == nil {
		return s.Instantiate(seed)
	}
	e := c.entry(s, seed)
	<-e.done
	return e.fleet
}

// Get is the context-aware instantiate path the service stack runs on:
// it returns the cached fleet for (s, seed), sharing one in-progress
// instantiation among concurrent callers, but abandons the wait the
// moment ctx ends. The instantiation itself always runs to completion
// (it is a pure function worth caching for the next request), so a
// canceled caller never leaves a partial fleet behind.
func (c *FleetCache) Get(ctx context.Context, s Spec, seed uint64) (*Fleet, error) {
	if c == nil {
		// No cache to amortize into: check before paying for a full
		// instantiation, which is not interruptible.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return s.Instantiate(seed), nil
	}
	e := c.entry(s, seed)
	select {
	case <-e.done:
		return e.fleet, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// entry returns (creating if needed) the key's slot with its
// instantiation started.
func (c *FleetCache) entry(s Spec, seed uint64) *fleetEntry {
	key := fleetKey{fp: s.Fingerprint(), seed: seed}
	c.mu.Lock()
	e, ok := c.fleets[key]
	if !ok {
		e = &fleetEntry{done: make(chan struct{})}
		c.fleets[key] = e
	}
	c.mu.Unlock()
	e.start(s, seed)
	return e
}

// Len returns the number of cached fleets.
func (c *FleetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fleets)
}
