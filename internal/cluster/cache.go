package cluster

import (
	"fmt"
	"strings"
	"sync"
)

// Fleet instantiation is the most expensive fixed cost of the experiment
// pipeline: Summit alone samples 27,648 chips and thermal nodes. Because
// Instantiate is a pure function of (Spec, seed), the result can be
// computed once and shared by every experiment that asks for the same
// fleet — the ablation knobs (NoDefects, VariationOverride) edit the
// spec before instantiation, so each variant hashes to its own cache
// entry and the base fleet is never mutated (copy-on-write at the spec
// level).
//
// Shared fleets impose one discipline on consumers: Members are
// read-only. Simulation state must live in per-run copies — internal/core
// already gives every job a private thermal-node copy, and the sim layer
// never writes through *gpu.Chip. Code that mutates chips in place
// (campaign defect injection, serialization round-trips) must keep using
// Instantiate directly.

// Fingerprint returns a deterministic key capturing every spec field
// that affects Instantiate's output, including the SKU's full parameter
// set and the planted-defect list. Two specs with equal fingerprints
// instantiate identical fleets from the same seed.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|gpn=%d|cool=%+v|var=%+v|defects=%+v|obs=%d",
		s.Name, s.GPUsPerNode, s.Cooling, s.Variation, s.Defects, s.ObservedGPUs)
	fmt.Fprintf(&b, "|cab=%v/%d|rows=%v/%d/%d",
		s.CabinetLabels, s.CabinetNodes, s.Rows, s.Cols, s.NodesPerCol)
	if s.SKU != nil {
		fmt.Fprintf(&b, "|sku=%+v", *s.SKU())
	}
	return b.String()
}

type fleetKey struct {
	fp   string
	seed uint64
}

// fleetEntry lets concurrent requests for the same fleet share one
// instantiation without serializing requests for different fleets.
type fleetEntry struct {
	once  sync.Once
	fleet *Fleet
}

// FleetCache memoizes Instantiate by (Spec fingerprint, seed). Safe for
// concurrent use. Fleets returned from the cache are shared: treat their
// members as read-only (see the package note above).
type FleetCache struct {
	mu     sync.Mutex
	fleets map[fleetKey]*fleetEntry
}

// NewFleetCache returns an empty cache.
func NewFleetCache() *FleetCache {
	return &FleetCache{fleets: map[fleetKey]*fleetEntry{}}
}

// DefaultFleetCache is the process-wide cache used by internal/core for
// experiment runs. Fleets are deterministic, so process-lifetime sharing
// is safe; memory is bounded by the number of distinct (spec, seed)
// pairs a session touches.
var DefaultFleetCache = NewFleetCache()

// Instantiate returns the cached fleet for (s, seed), instantiating it
// on first use. A nil cache degrades to a plain Instantiate, so callers
// can thread an optional cache without branching.
func (c *FleetCache) Instantiate(s Spec, seed uint64) *Fleet {
	if c == nil {
		return s.Instantiate(seed)
	}
	key := fleetKey{fp: s.Fingerprint(), seed: seed}
	c.mu.Lock()
	e, ok := c.fleets[key]
	if !ok {
		e = &fleetEntry{}
		c.fleets[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.fleet = s.Instantiate(seed) })
	return e.fleet
}

// Len returns the number of cached fleets.
func (c *FleetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.fleets)
}
