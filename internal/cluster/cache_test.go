package cluster

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"gpuvar/internal/gpu"
)

func TestFleetCacheReturnsSameFleet(t *testing.T) {
	c := NewFleetCache()
	a := c.Instantiate(Longhorn(), 7)
	b := c.Instantiate(Longhorn(), 7)
	if a != b {
		t.Fatal("same (spec, seed) should share one cached fleet")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d fleets, want 1", c.Len())
	}
}

func TestFleetCacheDistinguishesSeeds(t *testing.T) {
	c := NewFleetCache()
	if c.Instantiate(Longhorn(), 7) == c.Instantiate(Longhorn(), 8) {
		t.Fatal("different seeds must not share a fleet")
	}
}

func TestFleetCacheDistinguishesSpecVariants(t *testing.T) {
	c := NewFleetCache()
	base := Longhorn()
	noDefects := base
	noDefects.Defects = nil
	varied := base
	varied.Variation = gpu.VariationModel{VoltSpread: 0.05}

	f0 := c.Instantiate(base, 7)
	f1 := c.Instantiate(noDefects, 7)
	f2 := c.Instantiate(varied, 7)
	if f0 == f1 || f0 == f2 || f1 == f2 {
		t.Fatal("ablation spec variants must each get their own fleet")
	}
	if len(f0.Defective()) == 0 {
		t.Fatal("base fleet lost its planted defects")
	}
	if len(f1.Defective()) != 0 {
		t.Fatal("NoDefects variant leaked defects from the base fleet")
	}
	if c.Len() != 3 {
		t.Fatalf("cache holds %d fleets, want 3", c.Len())
	}
}

func TestFleetCacheMatchesDirectInstantiate(t *testing.T) {
	cached := NewFleetCache().Instantiate(Frontera(), 42)
	fresh := Frontera().Instantiate(42)
	if len(cached.Members) != len(fresh.Members) {
		t.Fatal("member count mismatch")
	}
	for i := range cached.Members {
		if !reflect.DeepEqual(cached.Members[i], fresh.Members[i]) {
			t.Fatalf("member %d differs between cached and fresh instantiation", i)
		}
	}
}

func TestFingerprintDistinguishesSKU(t *testing.T) {
	base := Longhorn()
	swapped := base.WithSKU("Longhorn", gpu.A100SXM4)
	swapped.Defects = base.Defects // isolate the SKU difference
	if base.Fingerprint() == swapped.Fingerprint() {
		t.Fatal("fingerprint must include the SKU parameters")
	}
}

func TestFleetCacheConcurrentAccess(t *testing.T) {
	c := NewFleetCache()
	var wg sync.WaitGroup
	fleets := make([]*Fleet, 16)
	for i := range fleets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fleets[i] = c.Instantiate(Vortex(), 3)
		}(i)
	}
	wg.Wait()
	for _, f := range fleets[1:] {
		if f != fleets[0] {
			t.Fatal("concurrent requests for the same fleet must share one instance")
		}
	}
}

func TestNilFleetCacheFallsBack(t *testing.T) {
	var c *FleetCache
	f := c.Instantiate(CloudLab(), 1)
	if f == nil || len(f.Members) != CloudLab().NumGPUs() {
		t.Fatal("nil cache must degrade to a plain Instantiate")
	}
}

// TestFleetCacheGetCancellation pins the context-aware instantiate
// path: a canceled caller returns promptly with ctx.Err(), and later
// callers (ctx-bound or not) share one completed, cached fleet.
func TestFleetCacheGetCancellation(t *testing.T) {
	c := NewFleetCache()

	// Pre-canceled context: the wait is abandoned immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, Summit(), 99); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get with canceled ctx: err = %v, want context.Canceled", err)
	}

	// A fresh Get instantiates (or joins) and caches the fleet; the
	// blocking path shares it.
	f, err := c.Get(context.Background(), Summit(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if f2 := c.Instantiate(Summit(), 99); f2 != f {
		t.Fatal("Get and Instantiate must share one cached fleet")
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d fleets, want 1", c.Len())
	}
}

// TestFleetCacheAdmissionRule pins the detached-instantiate admission
// rule: when every waiter is gone before sampling begins, the
// instantiation never starts, the key is released, and the skip is
// counted. (A waiter leaving after sampling begins still lets the
// instantiation complete and cache — that path is covered by
// TestFleetCacheGetCancellation whenever the goroutine wins the race.)
func TestFleetCacheAdmissionRule(t *testing.T) {
	c := NewFleetCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The sole waiter abandons immediately; the entry's goroutine then
	// finds no one interested and must skip the instantiate.
	if _, err := c.Get(ctx, Summit(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := c.Stats()
		if s.AdmissionSkips == 1 && s.Entries == 0 {
			break
		}
		if s.AdmissionSkips == 0 && s.Entries == 0 {
			// The goroutine won the race and started sampling before the
			// waiter left — legal, but then the fleet must end up cached.
			if time.Now().After(deadline) {
				t.Fatalf("neither admission skip nor cached fleet appeared: %+v", s)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if s.Entries == 1 && s.InFlight <= 1 {
			if s.AdmissionSkips != 0 {
				t.Fatalf("both skipped and cached: %+v", s)
			}
			return // started before abandonment: ran to completion, cached
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission rule not settled: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	// Skipped: the next caller starts fresh and succeeds.
	f, err := c.Get(context.Background(), Summit(), 1)
	if err != nil || f == nil {
		t.Fatalf("post-skip Get = (%v, %v), want a fresh fleet", f, err)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("stats after recovery = %+v, want 1 entry", s)
	}
}

// TestFleetCacheLRUBound: completed fleets past the cap are evicted
// least-recently-used first, evictions are counted, and an evicted key
// re-instantiates on return.
func TestFleetCacheLRUBound(t *testing.T) {
	c := NewFleetCacheSize(2)
	f1 := c.Instantiate(CloudLab(), 1)
	c.Instantiate(CloudLab(), 2)
	c.Instantiate(CloudLab(), 1) // refresh seed 1; seed 2 is now LRU
	c.Instantiate(CloudLab(), 3) // evicts seed 2
	if c.Len() != 2 {
		t.Fatalf("cache holds %d fleets, want 2", c.Len())
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
	if got := c.Instantiate(CloudLab(), 1); got != f1 {
		t.Fatal("refreshed entry was evicted instead of the LRU one")
	}
	// Seed 2 was evicted: returning to it instantiates a fresh fleet
	// (new object) and evicts again.
	c.Instantiate(CloudLab(), 2)
	if s := c.Stats(); s.Evictions != 2 || s.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 evictions, 2 entries", s)
	}
}

// TestFleetCacheSetCap: shrinking the cap evicts immediately.
func TestFleetCacheSetCap(t *testing.T) {
	c := NewFleetCacheSize(4)
	for seed := uint64(1); seed <= 3; seed++ {
		c.Instantiate(CloudLab(), seed)
	}
	c.SetCap(1)
	if c.Len() != 1 {
		t.Fatalf("cache holds %d fleets after SetCap(1), want 1", c.Len())
	}
	if s := c.Stats(); s.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", s.Evictions)
	}
}

// TestFleetCacheStatsCounters: hits and misses are attributed per
// lookup.
func TestFleetCacheStatsCounters(t *testing.T) {
	c := NewFleetCache()
	c.Instantiate(CloudLab(), 1)
	c.Instantiate(CloudLab(), 1)
	if _, err := c.Get(context.Background(), CloudLab(), 1); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 2 || s.Entries != 1 || s.InFlight != 0 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 entry", s)
	}
}

// TestFleetCacheGetMatchesInstantiate: the ctx path returns the exact
// same fleet object as the blocking path.
func TestFleetCacheGetMatchesInstantiate(t *testing.T) {
	c := NewFleetCache()
	f1 := c.Instantiate(Vortex(), 7)
	f2, err := c.Get(context.Background(), Vortex(), 7)
	if err != nil || f2 != f1 {
		t.Fatalf("Get = (%p, %v), want the cached %p", f2, err, f1)
	}
}

// TestNilFleetCacheGetChecksContext: without a cache there is nothing
// to amortize into, so a dead context refuses to pay for instantiation.
func TestNilFleetCacheGetChecksContext(t *testing.T) {
	var c *FleetCache
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Get(ctx, CloudLab(), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	f, err := c.Get(context.Background(), CloudLab(), 1)
	if err != nil || f == nil || len(f.Members) != CloudLab().NumGPUs() {
		t.Fatalf("nil-cache Get = (%v, %v), want a fresh fleet", f, err)
	}
}
