package cluster

import (
	"strings"
	"testing"

	"gpuvar/internal/gpu"
	"gpuvar/internal/thermal"
)

func TestTableISizes(t *testing.T) {
	// Paper Table I.
	cases := []struct {
		spec  Spec
		gpus  int
		nodes int
	}{
		{CloudLab(), 12, 3},
		{Longhorn(), 416, 104},
		{Frontera(), 360, 90},
		{Vortex(), 216, 54},
		{Summit(), 27648, 4608},
		{Corona(), 328, 82},
	}
	for _, c := range cases {
		if got := c.spec.NumGPUs(); got != c.gpus {
			t.Errorf("%s: %d GPUs, want %d", c.spec.Name, got, c.gpus)
		}
		if got := c.spec.NumNodes(); got != c.nodes {
			t.Errorf("%s: %d nodes, want %d", c.spec.Name, got, c.nodes)
		}
	}
}

func TestTableICoolingAndVendor(t *testing.T) {
	if Longhorn().Cooling.Cooling != thermal.Air || Corona().Cooling.Cooling != thermal.Air {
		t.Error("Longhorn and Corona are air-cooled")
	}
	if Vortex().Cooling.Cooling != thermal.Water || Summit().Cooling.Cooling != thermal.Water {
		t.Error("Vortex and Summit are water-cooled")
	}
	if Frontera().Cooling.Cooling != thermal.MineralOil {
		t.Error("Frontera is oil-cooled")
	}
	if Corona().SKU().Vendor != gpu.AMD {
		t.Error("Corona uses AMD MI60s")
	}
	if Summit().SKU().Name != "V100-SXM2" || Frontera().SKU().Name != "RTX5000" {
		t.Error("SKU assignment wrong")
	}
}

func TestInstantiateCounts(t *testing.T) {
	f := Longhorn().Instantiate(1)
	if len(f.Members) != 416 {
		t.Fatalf("instantiated %d members", len(f.Members))
	}
	if len(f.Nodes()) != 104 {
		t.Fatalf("nodes = %d", len(f.Nodes()))
	}
	if len(f.Groups()) != 8 {
		t.Fatalf("cabinets = %d", len(f.Groups()))
	}
}

func TestInstantiateDeterministic(t *testing.T) {
	a := Longhorn().Instantiate(7)
	b := Longhorn().Instantiate(7)
	for i := range a.Members {
		if a.Members[i].Chip.VoltFactor != b.Members[i].Chip.VoltFactor ||
			a.Members[i].Chip.Defect != b.Members[i].Chip.Defect ||
			a.Members[i].Therm.AmbientC != b.Members[i].Therm.AmbientC {
			t.Fatalf("member %d differs between same-seed fleets", i)
		}
	}
	c := Longhorn().Instantiate(8)
	same := 0
	for i := range a.Members {
		if a.Members[i].Chip.VoltFactor == c.Members[i].Chip.VoltFactor {
			same++
		}
	}
	if same == len(a.Members) {
		t.Fatal("different seeds produced identical fleet")
	}
}

func TestGPUIDsUnique(t *testing.T) {
	f := Summit().Instantiate(1)
	seen := make(map[string]bool, len(f.Members))
	for _, m := range f.Members {
		if seen[m.Chip.ID] {
			t.Fatalf("duplicate GPU ID %s", m.Chip.ID)
		}
		seen[m.Chip.ID] = true
	}
}

func TestSummitTopology(t *testing.T) {
	f := Summit().Instantiate(1)
	rows := map[string]int{}
	for _, m := range f.Members {
		rows[m.Loc.Row]++
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for r, n := range rows {
		if n != 36*16*6 {
			t.Fatalf("row %s has %d GPUs, want %d", r, n, 36*16*6)
		}
	}
	// Row-H column 36 must have 16 nodes (Appendix B examines them).
	count := map[string]bool{}
	for _, m := range f.Members {
		if m.Loc.Row == "H" && m.Loc.Col == 36 {
			count[m.Loc.NodeID()] = true
		}
	}
	if len(count) != 16 {
		t.Fatalf("rowH col36 has %d nodes, want 16", len(count))
	}
}

func TestLonghornDefectPlacement(t *testing.T) {
	f := Longhorn().Instantiate(42)
	def := f.Defective()
	if len(def) != 4+3 {
		t.Fatalf("Longhorn defects = %d, want 7", len(def))
	}
	stallNodes := map[string]int{}
	for _, m := range def {
		if m.Chip.Defect == gpu.DefectStall {
			if m.Loc.Cabinet != "c002" {
				t.Fatalf("stall defect outside c002: %s", m.Loc.GPUID())
			}
			stallNodes[m.Loc.NodeID()]++
		}
	}
	if len(stallNodes) != 1 {
		t.Fatalf("stall defects span %d nodes, want exactly 1 whole node", len(stallNodes))
	}
	for _, n := range stallNodes {
		if n != 4 {
			t.Fatalf("stall node has %d defective GPUs, want all 4", n)
		}
	}
}

func TestFronteraDefectsInC197(t *testing.T) {
	f := Frontera().Instantiate(42)
	for _, m := range f.Defective() {
		if m.Chip.Defect != gpu.DefectClockStuck {
			t.Fatalf("unexpected defect kind %v", m.Chip.Defect)
		}
		if m.Loc.Cabinet != "c197" {
			t.Fatalf("stuck clock outside c197: %s", m.Loc.GPUID())
		}
	}
	if n := len(f.Defective()); n != 2 {
		t.Fatalf("Frontera defects = %d, want 2", n)
	}
}

func TestSummitBrakesConcentratedByRow(t *testing.T) {
	f := Summit().Instantiate(42)
	byRow := map[string]int{}
	brakes := 0
	for _, m := range f.Defective() {
		if m.Chip.Defect == gpu.DefectPowerBrake {
			byRow[m.Loc.Row]++
			brakes++
		}
	}
	if brakes != 42+22+18+16 {
		t.Fatalf("Summit brakes = %d", brakes)
	}
	if byRow["H"] != 42 || byRow["A"] != 22 || byRow["D"] != 18 || byRow["F"] != 16 {
		t.Fatalf("brake distribution = %v", byRow)
	}
	if byRow["B"] != 0 || byRow["C"] != 0 {
		t.Fatalf("brakes leaked into unaffected rows: %v", byRow)
	}
}

func TestVortexCleanAndObserved(t *testing.T) {
	f := Vortex().Instantiate(42)
	if len(f.Defective()) != 0 {
		t.Fatal("Vortex should have no planted defects")
	}
	obs := f.Observed()
	if len(obs) != 184 {
		t.Fatalf("Vortex observed = %d, want 184", len(obs))
	}
	// Observation subset is deterministic.
	obs2 := Vortex().Instantiate(42).Observed()
	for i := range obs {
		if obs[i].Chip.ID != obs2[i].Chip.ID {
			t.Fatal("observed subset not deterministic")
		}
	}
}

func TestCoronaWholeNodeCoolingDefect(t *testing.T) {
	f := Corona().Instantiate(42)
	def := f.Defective()
	if len(def) != 4 {
		t.Fatalf("Corona defects = %d, want 4 (one whole node)", len(def))
	}
	node := def[0].Loc.NodeID()
	for _, m := range def {
		if m.Loc.NodeID() != node {
			t.Fatal("cooling defect spans multiple nodes")
		}
		if m.Chip.Defect != gpu.DefectCooling {
			t.Fatalf("wrong defect kind %v", m.Chip.Defect)
		}
	}
}

func TestLocationNaming(t *testing.T) {
	l := Location{Row: "H", Col: 36, Node: 10, Slot: 3}
	if l.NodeID() != "rowH-col36-n10" {
		t.Fatalf("NodeID = %s", l.NodeID())
	}
	if l.GPUID() != "rowH-col36-n10-g3" {
		t.Fatalf("GPUID = %s", l.GPUID())
	}
	if l.Group() != "rowH" {
		t.Fatalf("Group = %s", l.Group())
	}
	flat := Location{Cabinet: "c002", Node: 5, Slot: 0}
	if flat.NodeID() != "c002-n05" || flat.Group() != "c002" {
		t.Fatalf("flat naming wrong: %s %s", flat.NodeID(), flat.Group())
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("Summit"); !ok || s.Name != "Summit" {
		t.Fatal("ByName(Summit) failed")
	}
	if _, ok := ByName("Nonexistent"); ok {
		t.Fatal("ByName should fail for unknown clusters")
	}
}

func TestAllContainsSixClusters(t *testing.T) {
	all := All()
	if len(all) != 6 {
		t.Fatalf("All() = %d clusters", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		names[s.Name] = true
	}
	for _, want := range []string{"CloudLab", "Longhorn", "Frontera", "Vortex", "Summit", "Corona"} {
		if !names[want] {
			t.Errorf("missing cluster %s", want)
		}
	}
}

func TestPositionsNormalized(t *testing.T) {
	f := Longhorn().Instantiate(1)
	for _, m := range f.Members {
		if m.Loc.Pos < 0 || m.Loc.Pos > 1 {
			t.Fatalf("position %v out of [0,1]", m.Loc.Pos)
		}
	}
	if f.Members[0].Loc.Pos != 0 || f.Members[len(f.Members)-1].Loc.Pos != 1 {
		t.Fatal("position endpoints wrong")
	}
}

func TestFleetGroupLabels(t *testing.T) {
	f := Frontera().Instantiate(1)
	for g := range f.Groups() {
		if !strings.HasPrefix(g, "c19") {
			t.Fatalf("unexpected Frontera cabinet %s", g)
		}
	}
}

func BenchmarkInstantiateSummit(b *testing.B) {
	spec := Summit()
	for i := 0; i < b.N; i++ {
		_ = spec.Instantiate(uint64(i))
	}
}

func TestWithSKU(t *testing.T) {
	spec := Longhorn().WithSKU("Longhorn-A100", gpu.A100SXM4)
	if spec.SKU().Name != "A100-SXM4" || spec.Name != "Longhorn-A100" {
		t.Fatalf("WithSKU wrong: %s / %s", spec.Name, spec.SKU().Name)
	}
	if len(spec.Defects) != 0 {
		t.Fatal("WithSKU should drop planted defects")
	}
	if spec.NumGPUs() != 416 {
		t.Fatal("topology must be preserved")
	}
	// The original spec is untouched.
	if Longhorn().SKU().Name != "V100-SXM2" {
		t.Fatal("WithSKU mutated the source spec")
	}
}
