package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	orig := Longhorn().Instantiate(42)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFleet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Members) != len(orig.Members) {
		t.Fatalf("member count %d vs %d", len(loaded.Members), len(orig.Members))
	}
	for i := range orig.Members {
		a, b := orig.Members[i], loaded.Members[i]
		if a.Chip.ID != b.Chip.ID {
			t.Fatalf("order changed at %d: %s vs %s", i, a.Chip.ID, b.Chip.ID)
		}
		if a.Chip.VoltFactor != b.Chip.VoltFactor ||
			a.Chip.LeakFactor != b.Chip.LeakFactor ||
			a.Chip.MemBWFac != b.Chip.MemBWFac {
			t.Fatalf("%s: manufacturing state did not round-trip", a.Chip.ID)
		}
		if a.Chip.Defect != b.Chip.Defect ||
			a.Chip.ClockCapMHz != b.Chip.ClockCapMHz ||
			a.Chip.ThermalResistFactor != b.Chip.ThermalResistFactor {
			t.Fatalf("%s: defect state did not round-trip", a.Chip.ID)
		}
		if a.Therm.AmbientC != b.Therm.AmbientC || a.Therm.ResistCPerW != b.Therm.ResistCPerW {
			t.Fatalf("%s: thermal state did not round-trip", a.Chip.ID)
		}
	}
}

func TestSnapshotDefectsEncoded(t *testing.T) {
	f := Frontera().Instantiate(42)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"defect": "clock-stuck"`) {
		t.Fatal("defect not serialized")
	}
}

func TestLoadFleetRejectsGarbage(t *testing.T) {
	if _, err := LoadFleet(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadFleet(strings.NewReader(`{"cluster":"Nope","seed":1,"gpus":[]}`)); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if _, err := LoadFleet(strings.NewReader(`{"cluster":"Vortex","seed":1,"gpus":[]}`)); err == nil {
		t.Fatal("GPU count mismatch accepted")
	}
}

func TestLoadFleetUnknownDefect(t *testing.T) {
	f := CloudLab().Instantiate(1)
	snap := f.Snapshot()
	snap.GPUs[0].Defect = "gremlins"
	enc, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFleet(bytes.NewReader(enc)); err == nil {
		t.Fatal("unknown defect kind accepted")
	}
}
