package cluster

import (
	"encoding/json"
	"fmt"
	"io"

	"gpuvar/internal/gpu"
)

// FleetSnapshot is the JSON-serializable form of an instantiated fleet:
// the sampled per-chip parameters and thermal environments. Operators
// can archive the exact hardware population an experiment ran against,
// or exchange synthetic fleets between tools.
type FleetSnapshot struct {
	Cluster string        `json:"cluster"`
	Seed    uint64        `json:"seed"`
	GPUs    []GPUSnapshot `json:"gpus"`
}

// GPUSnapshot is one GPU's sampled state.
type GPUSnapshot struct {
	ID      string `json:"id"`
	Row     string `json:"row,omitempty"`
	Col     int    `json:"col,omitempty"`
	Cabinet string `json:"cabinet,omitempty"`
	Node    int    `json:"node"`
	Slot    int    `json:"slot"`

	VoltFactor float64 `json:"volt_factor"`
	LeakFactor float64 `json:"leak_factor"`
	MemBWFac   float64 `json:"mem_bw_factor"`
	Defect     string  `json:"defect,omitempty"`

	ComputeEff          float64 `json:"compute_eff,omitempty"`
	BoardCapW           float64 `json:"board_cap_w,omitempty"`
	ClockCapMHz         float64 `json:"clock_cap_mhz,omitempty"`
	ThermalResistFactor float64 `json:"thermal_resist_factor,omitempty"`

	AmbientC    float64 `json:"ambient_c"`
	ResistCPerW float64 `json:"resist_c_per_w"`
}

// Snapshot converts the fleet to its serializable form.
func (f *Fleet) Snapshot() FleetSnapshot {
	out := FleetSnapshot{Cluster: f.Spec.Name, Seed: f.seed}
	for _, m := range f.Members {
		g := GPUSnapshot{
			ID:          m.Chip.ID,
			Row:         m.Loc.Row,
			Col:         m.Loc.Col,
			Cabinet:     m.Loc.Cabinet,
			Node:        m.Loc.Node,
			Slot:        m.Loc.Slot,
			VoltFactor:  m.Chip.VoltFactor,
			LeakFactor:  m.Chip.LeakFactor,
			MemBWFac:    m.Chip.MemBWFac,
			AmbientC:    m.Therm.AmbientC,
			ResistCPerW: m.Therm.ResistCPerW,
		}
		if !m.Chip.Healthy() {
			g.Defect = m.Chip.Defect.String()
			g.ComputeEff = m.Chip.ComputeEff
			g.BoardCapW = m.Chip.BoardCapW
			g.ClockCapMHz = m.Chip.ClockCapMHz
			g.ThermalResistFactor = m.Chip.ThermalResistFactor
		}
		out.GPUs = append(out.GPUs, g)
	}
	return out
}

// WriteJSON writes the fleet snapshot as indented JSON.
func (f *Fleet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f.Snapshot())
}

// defectFromString inverts gpu.DefectKind.String.
func defectFromString(s string) (gpu.DefectKind, error) {
	for _, k := range []gpu.DefectKind{
		gpu.DefectNone, gpu.DefectStall, gpu.DefectPowerBrake,
		gpu.DefectCooling, gpu.DefectClockStuck,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return gpu.DefectNone, fmt.Errorf("cluster: unknown defect %q", s)
}

// LoadFleet reconstructs a fleet from a snapshot. The named cluster spec
// provides the SKU and cooling context; the snapshot's sampled values
// replace fresh sampling, so the loaded fleet behaves identically to the
// one that was saved.
func LoadFleet(r io.Reader) (*Fleet, error) {
	var snap FleetSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("cluster: decode snapshot: %w", err)
	}
	spec, ok := ByName(snap.Cluster)
	if !ok {
		return nil, fmt.Errorf("cluster: snapshot references unknown cluster %q", snap.Cluster)
	}
	// Instantiate for structure, then overwrite the sampled state.
	f := spec.Instantiate(snap.Seed)
	if len(snap.GPUs) != len(f.Members) {
		return nil, fmt.Errorf("cluster: snapshot has %d GPUs, spec %d", len(snap.GPUs), len(f.Members))
	}
	byID := map[string]*Member{}
	for _, m := range f.Members {
		byID[m.Chip.ID] = m
	}
	for _, g := range snap.GPUs {
		m, ok := byID[g.ID]
		if !ok {
			return nil, fmt.Errorf("cluster: snapshot GPU %q not in spec topology", g.ID)
		}
		m.Chip.VoltFactor = g.VoltFactor
		m.Chip.LeakFactor = g.LeakFactor
		m.Chip.MemBWFac = g.MemBWFac
		m.Therm.AmbientC = g.AmbientC
		m.Therm.ResistCPerW = g.ResistCPerW
		if g.Defect == "" {
			m.Chip.Defect = gpu.DefectNone
			m.Chip.ComputeEff = 1
			m.Chip.BoardCapW = m.Chip.SKU.TDPWatts
			m.Chip.ClockCapMHz = m.Chip.SKU.MaxClockMHz
			m.Chip.ThermalResistFactor = 1
			continue
		}
		kind, err := defectFromString(g.Defect)
		if err != nil {
			return nil, err
		}
		m.Chip.Defect = kind
		m.Chip.ComputeEff = orDefault(g.ComputeEff, 1)
		m.Chip.BoardCapW = orDefault(g.BoardCapW, m.Chip.SKU.TDPWatts)
		m.Chip.ClockCapMHz = orDefault(g.ClockCapMHz, m.Chip.SKU.MaxClockMHz)
		m.Chip.ThermalResistFactor = orDefault(g.ThermalResistFactor, 1)
	}
	return f, nil
}

func orDefault(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
