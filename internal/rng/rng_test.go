package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestSplitIndependentOfDrawOrder(t *testing.T) {
	a := New(7)
	childBefore := a.Split("thermal")
	want := childBefore.Uint64()

	b := New(7)
	for i := 0; i < 57; i++ {
		b.Uint64() // draw from parent first
	}
	childAfter := b.Split("thermal")
	if got := childAfter.Uint64(); got != want {
		t.Fatalf("Split sensitive to parent draw order: got %d want %d", got, want)
	}
}

func TestSplitLabelsIndependent(t *testing.T) {
	a := New(7).Split("x")
	b := New(7).Split("y")
	if a.Uint64() == b.Uint64() {
		t.Fatal("different labels produced identical first draw")
	}
}

func TestSplitIndexDistinct(t *testing.T) {
	parent := New(3)
	seen := map[uint64]int{}
	for i := 0; i < 500; i++ {
		v := parent.SplitIndex("gpu", i).Uint64()
		if prev, ok := seen[v]; ok {
			t.Fatalf("SplitIndex %d collides with %d", i, prev)
		}
		seen[v] = i
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expect := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expect) > 5*math.Sqrt(expect) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, expect)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestGaussianMoments(t *testing.T) {
	r := New(23)
	const draws = 100000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Gaussian(5, 2)
	}
	if mean := sum / draws; math.Abs(mean-5) > 0.05 {
		t.Errorf("Gaussian(5,2) mean = %v", mean)
	}
}

func TestLogNormalMeanSpread(t *testing.T) {
	r := New(29)
	const draws = 200000
	var sum float64
	min := math.Inf(1)
	for i := 0; i < draws; i++ {
		v := r.LogNormalMeanSpread(1.0, 0.025)
		sum += v
		if v < min {
			min = v
		}
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.005 {
		t.Errorf("LogNormalMeanSpread mean = %v, want ~1", mean)
	}
	if min <= 0 {
		t.Errorf("LogNormal produced non-positive draw %v", min)
	}
}

func TestLogNormalZeroSpread(t *testing.T) {
	r := New(31)
	if v := r.LogNormalMeanSpread(3.5, 0); v != 3.5 {
		t.Fatalf("zero spread should return mean exactly, got %v", v)
	}
}

func TestTruncGaussianBounds(t *testing.T) {
	r := New(37)
	for i := 0; i < 10000; i++ {
		v := r.TruncGaussian(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("TruncGaussian out of bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		sum += r.Exp(3)
	}
	if mean := sum / draws; math.Abs(mean-3) > 0.05 {
		t.Errorf("Exp(3) mean = %v", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(43)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(47)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(53)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestChoiceWeights(t *testing.T) {
	r := New(59)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Choice(w)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("Choice ratio = %v, want ~3", ratio)
	}
}

func TestChoicePanicsOnNoWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with no positive weight did not panic")
		}
	}()
	New(1).Choice([]float64{0, -1})
}

// Property: Intn never escapes its bound for arbitrary seeds and bounds.
func TestIntnProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Split determinism — same (seed, label) pair is always the
// same stream.
func TestSplitProperty(t *testing.T) {
	f := func(seed uint64, label string) bool {
		return New(seed).Split(label).Uint64() == New(seed).Split(label).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
