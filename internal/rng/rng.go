// Package rng provides deterministic, splittable pseudo-random number
// generation for reproducible fleet instantiation and simulation.
//
// Every stochastic component of the simulator (manufacturing spread,
// defect placement, inlet temperatures, workload jitter) draws from an
// rng.Source derived from a single experiment seed, so an entire
// cluster-scale experiment is reproducible from one 64-bit value.
//
// The generator is xoshiro256**, seeded through SplitMix64 as recommended
// by its authors. Splitting derives statistically independent child
// streams from (seed, label) pairs, so adding a new consumer of
// randomness never perturbs the draws of existing consumers.
package rng

import (
	"hash/fnv"
	"math"
)

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	seed uint64 // original seed material; immutable, used by Split
	s    [4]uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via SplitMix64.
func New(seed uint64) *Source {
	src := Source{seed: seed}
	state := seed
	for i := range src.s {
		src.s[i] = splitmix64(&state)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 of any seed
	// cannot produce four zero outputs in a row, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

// Split derives an independent child stream identified by label.
// Splitting the same Source with the same label always yields the same
// child stream, regardless of how many values were drawn in between.
func (r *Source) Split(label string) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	// Mix the child from the parent's seed material, not its current
	// position, so Split is insensitive to draw order.
	return New(r.seed ^ h.Sum64())
}

// SplitIndex derives an independent child stream identified by an integer,
// convenient for per-GPU or per-node streams.
func (r *Source) SplitIndex(label string, i int) *Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	var buf [8]byte
	v := uint64(i)
	for b := 0; b < 8; b++ {
		buf[b] = byte(v >> (8 * b))
	}
	_, _ = h.Write(buf[:])
	return New(r.seed ^ h.Sum64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aLo * bHi
	return aHi*bHi + w2 + (w1 >> 32), a * b
}

// Norm returns a standard normal draw (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *Source) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Gaussian returns a normal draw with the given mean and standard
// deviation.
func (r *Source) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns a lognormal draw whose underlying normal has the
// given mu and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// LogNormalMeanSpread returns a lognormal draw parameterized by its own
// mean and a fractional spread (coefficient of variation). Convenient for
// "mean 1.0 with 2.5% chip-to-chip spread"-style manufacturing knobs.
func (r *Source) LogNormalMeanSpread(mean, spread float64) float64 {
	if spread <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + spread*spread)
	mu := math.Log(mean) - sigma2/2
	return r.LogNormal(mu, math.Sqrt(sigma2))
}

// TruncGaussian returns a normal draw clamped to [lo, hi].
func (r *Source) TruncGaussian(mean, stddev, lo, hi float64) float64 {
	v := r.Gaussian(mean, stddev)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Exp returns an exponential draw with the given mean. Used for job
// inter-arrival stagger.
func (r *Source) Exp(mean float64) float64 {
	return -mean * math.Log(1-r.Float64())
}

// Pareto returns a Pareto draw with minimum xm and shape alpha. Heavy
// tails model rare severe defects.
func (r *Source) Pareto(xm, alpha float64) float64 {
	return xm / math.Pow(1-r.Float64(), 1/alpha)
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniformly chosen index weighted by w. It panics if all
// weights are zero or negative.
func (r *Source) Choice(w []float64) int {
	var total float64
	for _, v := range w {
		if v > 0 {
			total += v
		}
	}
	if total <= 0 {
		panic("rng: Choice with no positive weights")
	}
	target := r.Float64() * total
	for i, v := range w {
		if v <= 0 {
			continue
		}
		target -= v
		if target < 0 {
			return i
		}
	}
	return len(w) - 1
}
