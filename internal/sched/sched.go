// Package sched models the cluster-level job scheduling the paper's
// methodology relies on (§III): exclusive node allocations (no
// timesharing of nodes or GPUs during collection), staggered run times,
// and FCFS queueing. It also underpins the §VII analyses: the
// probability of drawing a slow GPU, and the variability-aware placement
// policy the paper proposes for future allocation frameworks.
package sched

import (
	"fmt"
	"sort"
)

// Node is a schedulable host with its GPUs.
type Node struct {
	ID   string
	GPUs []string
	// PerfScore optionally carries a measured performance rank for
	// variability-aware placement (lower = slower GPU median).
	PerfScore float64
}

// Job is one submission.
type Job struct {
	ID       int
	Name     string
	GPUs     int     // GPUs required; allocation is whole-node exclusive
	SubmitS  float64 // submission time
	DurS     float64 // execution duration once started
	StartS   float64 // assigned by the scheduler
	EndS     float64
	NodeID   string
	GPUIDs   []string
	WaitS    float64
	Rejected bool // could not fit on any node
}

// Policy selects among free nodes.
type Policy int

// Placement policies.
const (
	// FirstFit takes the first free node in ID order (what production
	// FCFS schedulers effectively do with stable node lists).
	FirstFit Policy = iota
	// Random takes a uniformly random free node — the user-visible
	// lottery behind the paper's "18% chance of a slower GPU" analysis.
	Random
	// BestPerf places on the free node with the highest PerfScore —
	// the paper's variability-aware proposal for compute-bound jobs.
	BestPerf
	// WorstPerf places on the lowest PerfScore node — appropriate for
	// memory-bound jobs that tolerate slow GPUs (§VII).
	WorstPerf
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case FirstFit:
		return "first-fit"
	case Random:
		return "random"
	case BestPerf:
		return "best-perf"
	case WorstPerf:
		return "worst-perf"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// randSource is the minimal randomness the scheduler needs; satisfied
// by rng.Source.
type randSource interface {
	Intn(n int) int
}

// Scheduler runs an event-driven FCFS simulation with exclusive
// whole-node allocation.
type Scheduler struct {
	nodes  []Node
	policy Policy
	rand   randSource

	busyUntil map[string]float64
}

// New returns a scheduler over the given nodes. rand is required only
// for the Random policy.
func New(nodes []Node, policy Policy, rand randSource) *Scheduler {
	ns := append([]Node(nil), nodes...)
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	return &Scheduler{
		nodes:     ns,
		policy:    policy,
		rand:      rand,
		busyUntil: map[string]float64{},
	}
}

// Schedule assigns start times, nodes, and GPUs to jobs, FCFS in
// submission order. Jobs needing more GPUs than any node has are marked
// Rejected. The input slice is modified in place and returned.
func (s *Scheduler) Schedule(jobs []Job) []Job {
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].SubmitS < jobs[j].SubmitS })
	for i := range jobs {
		s.place(&jobs[i])
	}
	return jobs
}

// place assigns one job to the node where it can start earliest under
// the policy's tie-breaking among nodes free at that time.
func (s *Scheduler) place(j *Job) {
	var fits []int
	for i, n := range s.nodes {
		if len(n.GPUs) >= j.GPUs {
			fits = append(fits, i)
		}
	}
	if len(fits) == 0 {
		j.Rejected = true
		return
	}
	// Earliest possible start across fitting nodes.
	earliest := -1.0
	for _, i := range fits {
		t := s.busyUntil[s.nodes[i].ID]
		if t < j.SubmitS {
			t = j.SubmitS
		}
		if earliest < 0 || t < earliest {
			earliest = t
		}
	}
	// Candidates free at the earliest start.
	var cands []int
	for _, i := range fits {
		t := s.busyUntil[s.nodes[i].ID]
		if t < j.SubmitS {
			t = j.SubmitS
		}
		if t <= earliest {
			cands = append(cands, i)
		}
	}
	pick := cands[0]
	switch s.policy {
	case Random:
		if s.rand != nil {
			pick = cands[s.rand.Intn(len(cands))]
		}
	case BestPerf:
		for _, i := range cands[1:] {
			if s.nodes[i].PerfScore > s.nodes[pick].PerfScore {
				pick = i
			}
		}
	case WorstPerf:
		for _, i := range cands[1:] {
			if s.nodes[i].PerfScore < s.nodes[pick].PerfScore {
				pick = i
			}
		}
	}
	n := s.nodes[pick]
	j.NodeID = n.ID
	j.GPUIDs = append([]string(nil), n.GPUs[:j.GPUs]...)
	j.StartS = earliest
	j.EndS = earliest + j.DurS
	j.WaitS = j.StartS - j.SubmitS
	s.busyUntil[n.ID] = j.EndS
}

// Makespan returns the completion time of the last scheduled job.
func Makespan(jobs []Job) float64 {
	var m float64
	for _, j := range jobs {
		if !j.Rejected && j.EndS > m {
			m = j.EndS
		}
	}
	return m
}

// MeanWait returns the average queueing delay of scheduled jobs.
func MeanWait(jobs []Job) float64 {
	var sum float64
	n := 0
	for _, j := range jobs {
		if !j.Rejected {
			sum += j.WaitS
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SlowGPUOdds computes the paper's §VII user-impact numbers: given
// per-GPU performance medians and a slowness threshold (fraction above
// the fastest median, e.g. 0.06 for "6% slower than the fastest"),
// it returns the fraction of slow GPUs and the probability that a
// k-GPU node allocation contains at least one slow GPU, assuming slow
// GPUs are spread uniformly across nodes.
func SlowGPUOdds(perfMs []float64, threshold float64, k int) (slowFrac, pAtLeastOne float64) {
	if len(perfMs) == 0 || k <= 0 {
		return 0, 0
	}
	fastest := perfMs[0]
	for _, p := range perfMs[1:] {
		if p < fastest {
			fastest = p
		}
	}
	slow := 0
	for _, p := range perfMs {
		if p > fastest*(1+threshold) {
			slow++
		}
	}
	slowFrac = float64(slow) / float64(len(perfMs))
	pAtLeastOne = 1.0
	for i := 0; i < k; i++ {
		pAtLeastOne *= 1 - slowFrac
	}
	pAtLeastOne = 1 - pAtLeastOne
	return slowFrac, pAtLeastOne
}
