package sched

import (
	"math"
	"testing"

	"gpuvar/internal/rng"
)

func fourNodes() []Node {
	return []Node{
		{ID: "n1", GPUs: []string{"n1-g0", "n1-g1", "n1-g2", "n1-g3"}, PerfScore: 1.0},
		{ID: "n2", GPUs: []string{"n2-g0", "n2-g1", "n2-g2", "n2-g3"}, PerfScore: 0.9},
		{ID: "n3", GPUs: []string{"n3-g0", "n3-g1", "n3-g2", "n3-g3"}, PerfScore: 1.1},
		{ID: "n4", GPUs: []string{"n4-g0", "n4-g1", "n4-g2", "n4-g3"}, PerfScore: 0.8},
	}
}

func TestFCFSExclusive(t *testing.T) {
	s := New(fourNodes(), FirstFit, nil)
	jobs := []Job{
		{ID: 1, GPUs: 4, SubmitS: 0, DurS: 100},
		{ID: 2, GPUs: 4, SubmitS: 0, DurS: 100},
		{ID: 3, GPUs: 4, SubmitS: 0, DurS: 100},
		{ID: 4, GPUs: 4, SubmitS: 0, DurS: 100},
		{ID: 5, GPUs: 4, SubmitS: 0, DurS: 100},
	}
	out := s.Schedule(jobs)
	// First four run immediately on distinct nodes; the fifth waits.
	nodesUsed := map[string]bool{}
	for _, j := range out[:4] {
		if j.StartS != 0 {
			t.Fatalf("job %d delayed to %v", j.ID, j.StartS)
		}
		if nodesUsed[j.NodeID] {
			t.Fatalf("node %s double-booked", j.NodeID)
		}
		nodesUsed[j.NodeID] = true
	}
	if out[4].StartS != 100 || out[4].WaitS != 100 {
		t.Fatalf("fifth job should queue: start %v", out[4].StartS)
	}
}

func TestSingleGPUJobStillExclusive(t *testing.T) {
	// Exclusive allocation: a 1-GPU job occupies the whole node (the
	// paper's collection mode: "no timesharing of our allocated nodes").
	s := New(fourNodes()[:1], FirstFit, nil)
	jobs := []Job{
		{ID: 1, GPUs: 1, SubmitS: 0, DurS: 50},
		{ID: 2, GPUs: 1, SubmitS: 0, DurS: 50},
	}
	out := s.Schedule(jobs)
	if out[1].StartS != 50 {
		t.Fatalf("second job should wait for exclusive node: %v", out[1].StartS)
	}
}

func TestRejectsOversizedJobs(t *testing.T) {
	s := New(fourNodes(), FirstFit, nil)
	out := s.Schedule([]Job{{ID: 1, GPUs: 8, SubmitS: 0, DurS: 10}})
	if !out[0].Rejected {
		t.Fatal("8-GPU job on 4-GPU nodes should be rejected")
	}
}

func TestGPUAssignmentCount(t *testing.T) {
	s := New(fourNodes(), FirstFit, nil)
	out := s.Schedule([]Job{{ID: 1, GPUs: 2, SubmitS: 0, DurS: 10}})
	if len(out[0].GPUIDs) != 2 {
		t.Fatalf("assigned %d GPUs, want 2", len(out[0].GPUIDs))
	}
}

func TestBestPerfPolicy(t *testing.T) {
	s := New(fourNodes(), BestPerf, nil)
	out := s.Schedule([]Job{{ID: 1, GPUs: 4, SubmitS: 0, DurS: 10}})
	if out[0].NodeID != "n3" { // highest PerfScore 1.1
		t.Fatalf("BestPerf picked %s", out[0].NodeID)
	}
}

func TestWorstPerfPolicy(t *testing.T) {
	s := New(fourNodes(), WorstPerf, nil)
	out := s.Schedule([]Job{{ID: 1, GPUs: 4, SubmitS: 0, DurS: 10}})
	if out[0].NodeID != "n4" { // lowest PerfScore 0.8
		t.Fatalf("WorstPerf picked %s", out[0].NodeID)
	}
}

func TestRandomPolicyCoversNodes(t *testing.T) {
	r := rng.New(1)
	hit := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := New(fourNodes(), Random, r)
		out := s.Schedule([]Job{{ID: 1, GPUs: 4, SubmitS: 0, DurS: 10}})
		hit[out[0].NodeID] = true
	}
	if len(hit) != 4 {
		t.Fatalf("random policy only used %d nodes", len(hit))
	}
}

func TestSubmitOrderRespected(t *testing.T) {
	s := New(fourNodes()[:1], FirstFit, nil)
	jobs := []Job{
		{ID: 2, GPUs: 4, SubmitS: 10, DurS: 5},
		{ID: 1, GPUs: 4, SubmitS: 0, DurS: 5},
	}
	out := s.Schedule(jobs)
	if out[0].ID != 1 || out[1].ID != 2 {
		t.Fatal("FCFS order not by submission time")
	}
	if out[1].StartS != 10 {
		t.Fatalf("job 2 should start at its submit time: %v", out[1].StartS)
	}
}

func TestMakespanAndWait(t *testing.T) {
	s := New(fourNodes()[:1], FirstFit, nil)
	jobs := s.Schedule([]Job{
		{ID: 1, GPUs: 4, SubmitS: 0, DurS: 30},
		{ID: 2, GPUs: 4, SubmitS: 0, DurS: 20},
	})
	if m := Makespan(jobs); m != 50 {
		t.Fatalf("makespan = %v", m)
	}
	if w := MeanWait(jobs); w != 15 { // (0 + 30) / 2
		t.Fatalf("mean wait = %v", w)
	}
}

func TestSlowGPUOdds(t *testing.T) {
	// 18% of GPUs 6%+ slower than the fastest → paper's Longhorn user
	// impact: single-GPU job has 18% odds, 4-GPU job 40-55%.
	perf := make([]float64, 100)
	for i := range perf {
		perf[i] = 1000
	}
	for i := 0; i < 18; i++ {
		perf[i] = 1070 // 7% slower
	}
	frac, p1 := SlowGPUOdds(perf, 0.06, 1)
	if math.Abs(frac-0.18) > 1e-9 {
		t.Fatalf("slow fraction = %v", frac)
	}
	if math.Abs(p1-0.18) > 1e-9 {
		t.Fatalf("P(1 GPU slow) = %v", p1)
	}
	_, p4 := SlowGPUOdds(perf, 0.06, 4)
	want := 1 - math.Pow(0.82, 4) // ≈ 0.548
	if math.Abs(p4-want) > 1e-9 {
		t.Fatalf("P(4 GPU slow) = %v, want %v", p4, want)
	}
}

func TestSlowGPUOddsEmpty(t *testing.T) {
	if f, p := SlowGPUOdds(nil, 0.06, 4); f != 0 || p != 0 {
		t.Fatal("empty input should be zero")
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{FirstFit, Random, BestPerf, WorstPerf, Policy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}

// TestSlowGPUOddsEdgeCases pins the boundary behavior of the §VII
// user-impact computation: degenerate allocation sizes and thresholds
// outside the observed performance range.
func TestSlowGPUOddsEdgeCases(t *testing.T) {
	perf := []float64{1000, 1000, 1070, 1200} // 2 of 4 are >6% off the fastest

	// k=0: no GPUs allocated — cannot draw a slow one. The guard treats
	// it (and negative k) like the empty-input case.
	if f, p := SlowGPUOdds(perf, 0.06, 0); f != 0 || p != 0 {
		t.Errorf("k=0: got (%v, %v), want (0, 0)", f, p)
	}
	if f, p := SlowGPUOdds(perf, 0.06, -3); f != 0 || p != 0 {
		t.Errorf("k<0: got (%v, %v), want (0, 0)", f, p)
	}

	// k greater than the fleet: the model assumes sampling with
	// replacement across nodes, so the probability keeps compounding
	// toward (but never reaching) 1 and stays a valid probability.
	f, p := SlowGPUOdds(perf, 0.06, len(perf)*10)
	if f != 0.5 {
		t.Errorf("slow fraction = %v, want 0.5", f)
	}
	want := 1 - math.Pow(0.5, float64(len(perf)*10))
	if math.Abs(p-want) > 1e-12 || p < 0 || p > 1 {
		t.Errorf("k>fleet: P = %v, want %v in [0,1]", p, want)
	}

	// Threshold above the whole observed spread: nobody is slow.
	if f, p := SlowGPUOdds(perf, 10.0, 4); f != 0 || p != 0 {
		t.Errorf("huge threshold: got (%v, %v), want (0, 0)", f, p)
	}

	// Threshold zero: everything but the fastest ties is slow.
	f, p = SlowGPUOdds(perf, 0, 4)
	if f != 0.5 {
		t.Errorf("zero threshold: slow fraction = %v, want 0.5 (two at the fastest)", f)
	}
	if want := 1 - math.Pow(0.5, 4); math.Abs(p-want) > 1e-12 {
		t.Errorf("zero threshold: P = %v, want %v", p, want)
	}

	// Negative threshold: the cutoff drops below the fastest median, so
	// every GPU — including the fastest — counts slow and a 1-GPU draw
	// is certain to hit one.
	f, p = SlowGPUOdds(perf, -0.5, 1)
	if f != 1 || p != 1 {
		t.Errorf("negative threshold: got (%v, %v), want (1, 1)", f, p)
	}

	// Single-GPU fleet: it is the fastest, so nothing is slow.
	if f, p := SlowGPUOdds([]float64{1234}, 0.06, 1); f != 0 || p != 0 {
		t.Errorf("single GPU: got (%v, %v), want (0, 0)", f, p)
	}
}
