package loadgen

import (
	"encoding/json"
	"net/url"
	"testing"
)

func TestBuildMixShapes(t *testing.T) {
	// GET-only mix.
	targets, _, err := BuildMix(MixConfig{Paths: []string{"/v1/figures/fig2", "/v1/experiments/sgemm"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 || targets[0].Label != "GET /v1/figures/fig2" || targets[0].Method != "GET" {
		t.Fatalf("GET mix = %+v", targets)
	}

	// Sweep + jobs.
	sweep := `{"axis":"seed","values":[1,2]}`
	targets, _, err = BuildMix(MixConfig{Paths: []string{"/v1/figures/fig2"}, Sweep: sweep, Jobs: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 3 {
		t.Fatalf("sweep+jobs mix has %d targets, want 3", len(targets))
	}
	if targets[1].Label != SweepLabel || targets[1].Body != sweep {
		t.Errorf("sweep target = %+v", targets[1])
	}
	job := targets[2]
	if job.Method != MethodJob || job.Label != JobLabel {
		t.Errorf("job target = %+v", job)
	}
	var env struct {
		Kind  string          `json:"kind"`
		Sweep json.RawMessage `json:"sweep"`
	}
	if err := json.Unmarshal([]byte(job.Body), &env); err != nil || env.Kind != "sweep" || string(env.Sweep) != sweep {
		t.Errorf("job envelope = %s (err %v)", job.Body, err)
	}

	// Estimate adds the analytical pair and the adaptive body.
	targets, adaptive, err := BuildMix(MixConfig{Paths: []string{"/v1/figures/fig2"}, Sweep: sweep, Estimate: true, Threshold: 0.07})
	if err != nil {
		t.Fatal(err)
	}
	has := map[string]bool{}
	for _, tg := range targets {
		has[tg.Label] = true
	}
	if !has[EstimateLabel] || !has[AdaptiveLabel] {
		t.Fatalf("estimate mix targets = %+v", targets)
	}
	if has[SweepLabel] {
		t.Error("-estimate must route the sweep to the analytical tier, not the plain sweep")
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(adaptive), &m); err != nil {
		t.Fatal(err)
	}
	if m["adaptive"] != true || m["threshold"] != 0.07 {
		t.Errorf("adaptive body = %v", m)
	}
}

func TestBuildMixRejectsBadConfigs(t *testing.T) {
	cases := []MixConfig{
		{Jobs: true},     // jobs without sweep
		{Estimate: true}, // estimate without sweep
		{Sweep: `{"axis":"seed"}`, Jobs: true, Estimate: true}, // both tiers
		{}, // empty mix
	}
	for i, cfg := range cases {
		if _, _, err := BuildMix(cfg); err == nil {
			t.Errorf("case %d (%+v): accepted", i, cfg)
		}
	}
}

func TestSweepStreamURL(t *testing.T) {
	u, err := SweepStreamURL("http://h:1", `{"cluster":"CloudLab","axis":"powercap","values":[300,250,200],"seed":7}`)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := url.Parse(u)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Path != "/v1/stream/sweep" {
		t.Errorf("path = %s", parsed.Path)
	}
	q := parsed.Query()
	if q.Get("values") != "300,250,200" || q.Get("axis") != "powercap" || q.Get("cluster") != "CloudLab" || q.Get("seed") != "7" {
		t.Errorf("query = %v", q)
	}

	if _, err := SweepStreamURL("http://h:1", `{"values":["not a number"]}`); err == nil {
		t.Error("non-numeric values accepted")
	}
	if _, err := SweepStreamURL("http://h:1", `not json`); err == nil {
		t.Error("non-JSON body accepted")
	}
	if _, err := SweepStreamURL("http://h:1", `{"nested":{"x":1}}`); err == nil {
		t.Error("unstreamable nested field accepted")
	}
}

func TestAdaptiveSweepBodySelfConsistent(t *testing.T) {
	a, err := AdaptiveSweepBody(`{"axis":"seed","values":[1,2]}`, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AdaptiveSweepBody(`{"axis":"seed","values":[1,2]}`, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("adaptive body is not deterministic — the byte-identity reference would drift")
	}
	if _, err := AdaptiveSweepBody(`nope`, 0.05); err == nil {
		t.Error("non-JSON sweep body accepted")
	}
}
