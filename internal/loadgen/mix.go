package loadgen

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Mix target labels (stable report keys).
const (
	SweepLabel    = "POST /v1/sweep"
	JobLabel      = "JOB  /v1/jobs (sweep)"
	EstimateLabel = "POST /v1/estimate"
	AdaptiveLabel = "POST /v1/sweep (adaptive)"
)

// MixConfig describes the request mix cmd/loadgen's flags select.
type MixConfig struct {
	Paths     []string // GET paths
	Sweep     string   // JSON body for POST /v1/sweep ("" = none)
	Jobs      bool     // run Sweep through the async job path too
	Estimate  bool     // route Sweep to the analytical tier instead
	Threshold float64  // adaptive-sweep tolerance for Estimate
}

// BuildMix validates the config and constructs the round-robin target
// list (and, with Estimate, the adaptive request body every adaptive
// target sends).
func BuildMix(cfg MixConfig) (targets []Target, adaptiveBody string, err error) {
	if cfg.Jobs && cfg.Sweep == "" {
		return nil, "", errors.New("-jobs requires -sweep (the job payload)")
	}
	if cfg.Estimate && cfg.Sweep == "" {
		return nil, "", errors.New("-estimate requires -sweep (the request to estimate)")
	}
	if cfg.Estimate && cfg.Jobs {
		return nil, "", errors.New("-estimate routes -sweep to the analytical tier; run -jobs in a separate invocation")
	}
	for _, p := range cfg.Paths {
		targets = append(targets, Target{Label: "GET " + p, Method: "GET", Path: p})
	}
	if cfg.Sweep != "" && !cfg.Estimate {
		targets = append(targets, Target{Label: SweepLabel, Method: "POST", Path: "/v1/sweep", Body: cfg.Sweep})
	}
	if cfg.Jobs {
		targets = append(targets, Target{Label: JobLabel, Method: MethodJob, Path: "/v1/jobs",
			Body: `{"kind":"sweep","sweep":` + cfg.Sweep + `}`})
	}
	if cfg.Estimate {
		adaptiveBody, err = AdaptiveSweepBody(cfg.Sweep, cfg.Threshold)
		if err != nil {
			return nil, "", err
		}
		targets = append(targets,
			Target{Label: EstimateLabel, Method: "POST", Path: "/v1/estimate", Body: cfg.Sweep},
			Target{Label: AdaptiveLabel, Method: "POST", Path: "/v1/sweep", Body: adaptiveBody})
	}
	if len(targets) == 0 {
		return nil, "", errors.New("the mix is empty: give -paths or -sweep")
	}
	return targets, adaptiveBody, nil
}

// AdaptiveSweepBody turns a sweep body into its adaptive spelling.
// json.Marshal reorders the keys, but the body only needs to be
// self-consistent: every adaptive request in the run sends these exact
// bytes, so the byte-identity machinery still has a fixed reference.
func AdaptiveSweepBody(body string, threshold float64) (string, error) {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return "", fmt.Errorf("parsing -sweep body: %v", err)
	}
	m["adaptive"] = true
	m["threshold"] = threshold
	out, err := json.Marshal(m)
	return string(out), err
}

// SweepStreamURL converts a sweep JSON body into the streaming
// endpoint's query-parameter spelling (values/caps_w comma-joined), so
// both spellings describe the identical normalized request.
func SweepStreamURL(base, body string) (string, error) {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return "", fmt.Errorf("parsing -sweep body: %v", err)
	}
	num := func(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }
	q := url.Values{}
	for k, v := range m {
		switch vv := v.(type) {
		case string:
			q.Set(k, vv)
		case float64:
			q.Set(k, num(vv))
		case []any:
			parts := make([]string, len(vv))
			for i, e := range vv {
				f, ok := e.(float64)
				if !ok {
					return "", fmt.Errorf("-sweep field %q element %d is not a number", k, i)
				}
				parts[i] = num(f)
			}
			q.Set(k, strings.Join(parts, ","))
		default:
			return "", fmt.Errorf("-sweep field %q has unstreamable type %T", k, v)
		}
	}
	return base + "/v1/stream/sweep?" + q.Encode(), nil
}
