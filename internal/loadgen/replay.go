package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gpuvar/internal/traffic"
)

// ReplayOptions configures a trace replay.
type ReplayOptions struct {
	// Bases is the replica list; record i goes to Bases[i % len].
	Bases []string
	// Concurrency bounds in-flight requests (default 16). Dispatch
	// order always follows the trace's offsets.
	Concurrency int
	// Pace selects the clock. 0 replays on a virtual clock: requests
	// dispatch as fast as ordering and Concurrency allow. A positive
	// value paces against the wall clock at recorded-time/Pace — 1.0
	// replays at recorded speed, 2.0 twice as fast.
	Pace float64
	// Verify compares each response against the record's oracle
	// (status, sha256) when the record carries one. Replay always
	// computes observed hashes either way — the digest needs them.
	Verify bool
}

// RecordResult is one replayed request's outcome.
type RecordResult struct {
	Index    int
	Kind     string
	Phase    string
	Status   int
	SHA      string // hex sha256 of the observed response bytes (result bytes for jobs)
	Latency  time.Duration
	TTFL     time.Duration // streams only
	Aborted  bool          // server-shed (504/499); excluded from verification
	Err      error
	Mismatch string // non-empty: how the response diverged from the oracle
}

// ReplayResult is a whole replay run.
type ReplayResult struct {
	Header  traffic.Header
	Records []RecordResult // in trace order
	Elapsed time.Duration
}

// Replay replays a trace. Records are sorted by offset (stable) before
// dispatch; per-request outcomes land at their trace index, so two
// replays of the same trace are comparable record by record.
func (c *Client) Replay(tr *traffic.Trace, o ReplayOptions) (*ReplayResult, error) {
	if len(o.Bases) == 0 {
		return nil, fmt.Errorf("replay: no server base URL")
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 16
	}
	recs := make([]traffic.Record, len(tr.Records))
	copy(recs, tr.Records)
	sorted := &traffic.Trace{Records: recs}
	sorted.Sort()

	out := &ReplayResult{Header: tr.Header, Records: make([]RecordResult, len(recs))}
	sem := make(chan struct{}, o.Concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for i, rec := range recs {
		if o.Pace > 0 {
			due := start.Add(time.Duration(float64(rec.OffsetUS)/o.Pace) * time.Microsecond)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, rec traffic.Record) {
			defer func() { <-sem; wg.Done() }()
			out.Records[i] = c.replayOne(i, rec, o.Bases[i%len(o.Bases)], o.Verify)
		}(i, rec)
	}
	wg.Wait()
	out.Elapsed = time.Since(start)
	return out, nil
}

func (c *Client) replayOne(i int, rec traffic.Record, base string, verify bool) RecordResult {
	res := RecordResult{Index: i, Kind: rec.Kind, Phase: rec.Phase}
	t0 := time.Now()
	switch rec.Kind {
	case traffic.KindJobs:
		body, err := c.DoJob(base, Target{Label: rec.Kind, Method: MethodJob, Path: rec.Path, Body: rec.Body}, rec.Client)
		res.Latency = time.Since(t0)
		if err != nil {
			res.Err = err
			return res
		}
		res.Status = http.StatusAccepted
		sum := sha256.Sum256(body)
		res.SHA = hex.EncodeToString(sum[:])
	case traffic.KindStream:
		sr, err := c.StreamFetch(base+rec.Path, rec.Client)
		res.Latency = time.Since(t0)
		if err != nil {
			res.Err = err
			return res
		}
		res.Status, res.SHA, res.TTFL = http.StatusOK, sr.RawSHA, sr.TTFL
	default:
		status, body, _, err := c.Raw(base, rec.Method, rec.Path, rec.Body, rec.Client)
		res.Latency = time.Since(t0)
		if err != nil {
			res.Err = err
			return res
		}
		if status == http.StatusGatewayTimeout || status == statusClientClosedRequest {
			res.Aborted = true
			return res
		}
		res.Status = status
		sum := sha256.Sum256(body)
		res.SHA = hex.EncodeToString(sum[:])
	}
	if verify {
		if rec.Status != 0 && res.Status != rec.Status {
			res.Mismatch = fmt.Sprintf("status %d, recorded %d", res.Status, rec.Status)
		} else if rec.SHA256 != "" && res.SHA != rec.SHA256 {
			res.Mismatch = fmt.Sprintf("response sha256 %s, recorded %s", res.SHA, rec.SHA256)
		}
	}
	return res
}

// Mismatches counts diverged or failed records (aborted ones excluded:
// a shed response is the server working as designed).
func (r *ReplayResult) Mismatches() int {
	n := 0
	for _, rr := range r.Records {
		if rr.Err != nil || rr.Mismatch != "" {
			n++
		}
	}
	return n
}

// Aborts counts server-shed responses.
func (r *ReplayResult) Aborts() int {
	n := 0
	for _, rr := range r.Records {
		if rr.Aborted {
			n++
		}
	}
	return n
}

// FirstBad returns the first failed or diverged record, for triage.
func (r *ReplayResult) FirstBad() *RecordResult {
	for i := range r.Records {
		if r.Records[i].Err != nil || r.Records[i].Mismatch != "" {
			return &r.Records[i]
		}
	}
	return nil
}

// Digest hashes the per-record observed (status, sha256) sequence in
// trace order. Two replays of the same trace against deterministic
// servers produce identical digests — the replay-determinism
// acceptance check — regardless of dispatch concurrency.
func (r *ReplayResult) Digest() string {
	h := sha256.New()
	for _, rr := range r.Records {
		fmt.Fprintf(h, "%d:%s\n", rr.Status, rr.SHA)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Latencies returns the sorted latencies of successful records,
// optionally filtered by phase ("" = all).
func (r *ReplayResult) Latencies(phase string) []time.Duration {
	var ds []time.Duration
	for _, rr := range r.Records {
		if rr.Err == nil && !rr.Aborted && (phase == "" || rr.Phase == phase) {
			ds = append(ds, rr.Latency)
		}
	}
	return SortDurations(ds)
}

// TTFLs returns the sorted time-to-first-line observations of stream
// records.
func (r *ReplayResult) TTFLs() []time.Duration {
	var ds []time.Duration
	for _, rr := range r.Records {
		if rr.Err == nil && rr.Kind == traffic.KindStream && rr.TTFL > 0 {
			ds = append(ds, rr.TTFL)
		}
	}
	return SortDurations(ds)
}

// Phases returns the distinct phase labels in first-appearance order.
func (r *ReplayResult) Phases() []string {
	var out []string
	seen := map[string]bool{}
	for _, rr := range r.Records {
		if !seen[rr.Phase] {
			seen[rr.Phase] = true
			out = append(out, rr.Phase)
		}
	}
	return out
}

// FillOracle returns a copy of tr (sorted by offset, matching the
// replay's record indices) with each record's status and sha256
// replaced by this replay's observations — how a generated trace
// acquires its oracle. It refuses if any record failed or aborted: an
// oracle must be complete.
func (r *ReplayResult) FillOracle(tr *traffic.Trace) (*traffic.Trace, error) {
	recs := make([]traffic.Record, len(tr.Records))
	copy(recs, tr.Records)
	out := &traffic.Trace{Header: tr.Header, Records: recs}
	out.Sort()
	if len(out.Records) != len(r.Records) {
		return nil, fmt.Errorf("replay covered %d records, trace has %d", len(r.Records), len(out.Records))
	}
	for i, rr := range r.Records {
		if rr.Err != nil {
			return nil, fmt.Errorf("record %d failed (%v): cannot build an oracle from a broken run", i, rr.Err)
		}
		if rr.Aborted {
			return nil, fmt.Errorf("record %d was server-aborted: cannot build an oracle from a shed run", i)
		}
		out.Records[i].Status = rr.Status
		out.Records[i].SHA256 = rr.SHA
	}
	return out, nil
}
