package loadgen

import (
	"testing"
	"time"
)

// TestPercentileKnownDistribution pins the exact nearest-rank
// convention on a known distribution: 1..100ms gives p50 = 50ms
// (zero-based index 49) and p99 = 99ms (index 98).
func TestPercentileKnownDistribution(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.0, 100 * time.Millisecond},
	}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(1..100ms, %g) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := PercentileMS(ds, 0.99); got != 99 {
		t.Errorf("PercentileMS p99 = %v, want 99", got)
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	if got := Percentile(nil, 0.99); got != 0 {
		t.Errorf("empty: got %v, want 0", got)
	}
	one := []time.Duration{7 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := Percentile(one, p); got != 7*time.Millisecond {
			t.Errorf("single sample p%g = %v, want the sample itself", p, got)
		}
	}
	// Out-of-range p clamps instead of panicking.
	two := []time.Duration{1, 2}
	if Percentile(two, -1) != 1 || Percentile(two, 2) != 2 {
		t.Error("out-of-range p did not clamp to the extremes")
	}
}

func TestStatsAccumulation(t *testing.T) {
	var s Stats
	s.Add(Sample{Label: "a", D: 3 * time.Millisecond, Cache: "hit"})
	s.Add(Sample{Label: "b", D: 1 * time.Millisecond, Cache: "miss"})
	s.Add(Sample{Label: "a", D: 2 * time.Millisecond, Cache: "hit"})
	ds := s.Durations()
	if len(ds) != 3 || ds[0] != 1*time.Millisecond || ds[2] != 3*time.Millisecond {
		t.Errorf("Durations = %v, want sorted 1,2,3ms", ds)
	}
	by := s.ByLabel()
	if len(by["a"]) != 2 || by["a"][0] != 2*time.Millisecond {
		t.Errorf("ByLabel[a] = %v, want sorted [2ms 3ms]", by["a"])
	}
	if s.Hits() != 2 {
		t.Errorf("Hits = %d, want 2", s.Hits())
	}
}
