// Package loadgen is the testable core of cmd/loadgen: mix
// construction, request execution (including the async job lifecycle),
// NDJSON stream reassembly, byte-identity checking, percentile math,
// and deterministic trace replay. cmd/loadgen/main.go is flag parsing
// and wiring around this package.
package loadgen

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// MethodJob marks a target that runs through the async job path
// (submit, poll, fetch result) instead of a single HTTP request.
const MethodJob = "JOB"

// Target is one request in the round-robin mix.
type Target struct {
	Label  string // method + path, used in reports and as reference key
	Method string
	Path   string
	Body   string
}

// Sample is one successful request's latency observation.
type Sample struct {
	Label string
	D     time.Duration
	Cache string // X-Cache header: hit, miss, coalesced, or ""
}

// Client executes targets against gpuvard replicas.
type Client struct {
	// HTTP is the underlying client (default: 5-minute timeout).
	HTTP *http.Client
	// PollInterval paces the async job status poll loop (default 10ms;
	// benches lower it so poll sleeps don't dominate the measurement).
	PollInterval time.Duration
	// JobDeadline bounds one job's full lifecycle — 429 backoff,
	// polling, and the result fetch share it (default 4m).
	JobDeadline time.Duration
}

func (c *Client) httpc() *http.Client {
	if c != nil && c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 5 * time.Minute}
}

func (c *Client) pollInterval() time.Duration {
	if c != nil && c.PollInterval > 0 {
		return c.PollInterval
	}
	return 10 * time.Millisecond
}

func (c *Client) jobDeadline() time.Duration {
	if c != nil && c.JobDeadline > 0 {
		return c.JobDeadline
	}
	return 4 * time.Minute
}

// statusClientClosedRequest mirrors the server's 499 convention for
// "client went away"; with 504 it marks a server-shed response.
const statusClientClosedRequest = 499

// Raw performs one HTTP request and returns the status and body
// without interpreting non-200s — the primitive Do and Replay build
// on.
func (c *Client) Raw(base string, method, path, body, key string) (status int, respBody []byte, cacheHdr string, err error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, "", err
	}
	return resp.StatusCode, respBody, resp.Header.Get("X-Cache"), nil
}

// Do performs one target. aborted reports a server-shed response — 504
// (deadline exceeded) or 499 (client canceled) — which callers account
// separately from failures.
func (c *Client) Do(base string, tg Target, key string) (body []byte, cacheHdr string, aborted bool, err error) {
	if tg.Method == MethodJob {
		body, err := c.DoJob(base, tg, key)
		return body, "job", false, err
	}
	status, body, cacheHdr, err := c.Raw(base, tg.Method, tg.Path, tg.Body, key)
	if err != nil {
		return nil, "", false, err
	}
	if status == http.StatusGatewayTimeout || status == statusClientClosedRequest {
		return nil, "", true, nil
	}
	if status != http.StatusOK {
		return nil, "", false, fmt.Errorf("%s %s: %d: %s", tg.Method, base+tg.Path, status, FirstLine(body))
	}
	return body, cacheHdr, false, nil
}

// DoJob drives one submission through the whole async lifecycle:
// submit (202 + URL, honoring 429 + Retry-After backpressure by
// retrying — shedding is the server working as designed, not a
// failure), poll status until terminal (asserting progress
// monotonicity), fetch the result.
func (c *Client) DoJob(base string, tg Target, key string) (body []byte, err error) {
	client := c.httpc()
	var sub []byte
	deadline := time.Now().Add(c.jobDeadline())
	for {
		req, err := http.NewRequest("POST", base+tg.Path, strings.NewReader(tg.Body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if key != "" {
			req.Header.Set("X-API-Key", key)
		}
		resp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		sub, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("POST %s: still shed (429) after %s", tg.Path, c.jobDeadline())
			}
			wait := 100 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
					wait = time.Duration(secs) * time.Second
				}
			}
			time.Sleep(wait)
			continue
		}
		if resp.StatusCode != http.StatusAccepted {
			return nil, fmt.Errorf("POST %s: %d: %s", tg.Path, resp.StatusCode, FirstLine(sub))
		}
		break
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Done  int64  `json:"shards_done"`
		Total int64  `json:"shards_total"`
		URL   string `json:"url"`
	}
	if err := json.Unmarshal(sub, &job); err != nil {
		return nil, fmt.Errorf("POST %s: decoding 202 body: %v", tg.Path, err)
	}

	// Poll until terminal; shard progress must never go backwards. The
	// submit deadline carries over: backpressure waits and polling
	// share one budget.
	var lastDone, lastTotal int64
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("job %s did not finish within %s", job.ID, c.jobDeadline())
		}
		resp, err := client.Get(base + job.URL)
		if err != nil {
			return nil, err
		}
		st, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("GET %s: %d: %s", job.URL, resp.StatusCode, FirstLine(st))
		}
		if err := json.Unmarshal(st, &job); err != nil {
			return nil, fmt.Errorf("GET %s: decoding status: %v", job.URL, err)
		}
		if job.Done < lastDone || job.Total < lastTotal {
			return nil, fmt.Errorf("job %s progress went backwards: %d/%d after %d/%d",
				job.ID, job.Done, job.Total, lastDone, lastTotal)
		}
		lastDone, lastTotal = job.Done, job.Total
		switch job.State {
		case "done":
			resp, err := client.Get(base + job.URL + "/result")
			if err != nil {
				return nil, err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return nil, err
			}
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("GET %s/result: %d: %s", job.URL, resp.StatusCode, FirstLine(body))
			}
			return body, nil
		case "failed", "canceled":
			return nil, fmt.Errorf("job %s ended %s", job.ID, job.State)
		}
		time.Sleep(c.pollInterval())
	}
}

// FirstLine trims a body to its first line — enough of an error
// envelope for a one-line report.
func FirstLine(b []byte) string {
	s := strings.TrimSpace(string(b))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	return s
}

// MismatchReport is the triage record for the first bad response of a
// run: which request diverged, the expected and observed hashes, and
// the head of the observed body (enough to tell a wrong result from an
// error envelope at a glance).
type MismatchReport struct {
	Request int
	Label   string
	Err     error // request failed outright (mutually exclusive with a hash divergence)
	WantSHA [32]byte
	GotSHA  [32]byte
	Body    []byte
}

// Print renders the report, one prefixed line per fact.
func (r *MismatchReport) Print(w io.Writer) {
	fmt.Fprintf(w, "loadgen: first failure: request #%d (%s)\n", r.Request, r.Label)
	if r.Err != nil {
		fmt.Fprintf(w, "loadgen:   error: %v\n", r.Err)
		return
	}
	fmt.Fprintf(w, "loadgen:   want sha256 %s\n", hex.EncodeToString(r.WantSHA[:]))
	fmt.Fprintf(w, "loadgen:   got  sha256 %s\n", hex.EncodeToString(r.GotSHA[:]))
	snippet := r.Body
	const maxSnippet = 512
	truncated := ""
	if len(snippet) > maxSnippet {
		snippet = snippet[:maxSnippet]
		truncated = fmt.Sprintf(" ... (%d bytes total)", len(r.Body))
	}
	fmt.Fprintf(w, "loadgen:   got body: %s%s\n", strings.TrimSpace(string(snippet)), truncated)
}
