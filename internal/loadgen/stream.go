package loadgen

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// StreamLine is the NDJSON line schema of the streaming endpoints (the
// subset loadgen verifies).
type StreamLine struct {
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Shards  int    `json:"shards"`
	Payload string `json:"payload"`
	Bytes   int    `json:"bytes"`
	SHA256  string `json:"sha256"`
	Error   string `json:"error"`
}

// StreamResult is one streaming fetch's reassembly outcome.
type StreamResult struct {
	TTFL  time.Duration // time to first line — the stream's reason to exist
	Total time.Duration
	Lines int
	// PayloadSHA hashes the concatenated line payloads — the bytes that
	// must equal the synchronous twin's response.
	PayloadSHA [32]byte
	// RawSHA is the hex sha256 of the raw NDJSON response bytes — what
	// a traffic-trace record's oracle hash refers to for streams.
	RawSHA string
}

// StreamFetch reads one streaming response line by line as it arrives
// and checks the stream contract: a start line, ordered shard lines,
// and a terminal summary whose declared sha256 matches the reassembled
// payload.
func (c *Client) StreamFetch(target, key string) (StreamResult, error) {
	var res StreamResult
	t0 := time.Now()
	req, err := http.NewRequest("GET", target, nil)
	if err != nil {
		return res, err
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return res, fmt.Errorf("GET %s: %d: %s", target, resp.StatusCode, FirstLine(body))
	}
	br := bufio.NewReaderSize(resp.Body, 1<<16)
	payload := sha256.New()
	raw := sha256.New()
	var last StreamLine
	nextShard := 0
	for {
		line, rerr := br.ReadBytes('\n')
		raw.Write(line)
		if len(bytes.TrimSpace(line)) > 0 {
			if res.Lines == 0 {
				res.TTFL = time.Since(t0)
			}
			res.Lines++
			var l StreamLine
			if uerr := json.Unmarshal(line, &l); uerr != nil {
				return res, fmt.Errorf("line %d is not valid JSON: %v", res.Lines, uerr)
			}
			switch l.Kind {
			case "error":
				return res, fmt.Errorf("server reported in-band error: %s", l.Error)
			case "shard":
				if l.Shard != nextShard {
					return res, fmt.Errorf("shard line out of order: got %d, want %d", l.Shard, nextShard)
				}
				nextShard++
			}
			payload.Write([]byte(l.Payload))
			last = l
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			return res, rerr
		}
	}
	res.Total = time.Since(t0)
	res.RawSHA = hex.EncodeToString(raw.Sum(nil))
	payload.Sum(res.PayloadSHA[:0])
	if last.Kind != "summary" {
		return res, fmt.Errorf("stream ended on %q, want a terminal summary line", last.Kind)
	}
	if hex.EncodeToString(res.PayloadSHA[:]) != last.SHA256 {
		return res, fmt.Errorf("summary sha256 does not match the reassembled payload")
	}
	return res, nil
}

// StreamVerify fetches a stream and additionally requires the
// reassembled payload to hash to the synchronous reference — the
// byte-identity contract between a stream and its twin.
func (c *Client) StreamVerify(target string, ref [32]byte, key string) (StreamResult, error) {
	res, err := c.StreamFetch(target, key)
	if err != nil {
		return res, err
	}
	if res.PayloadSHA != ref {
		return res, fmt.Errorf("reassembled stream diverged from the synchronous reference")
	}
	return res, nil
}
