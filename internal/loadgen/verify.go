package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// adaptiveVariant is the per-variant subset VerifyAdaptive checks,
// decoded with json.Number so numeric literals compare as the exact
// bytes the server sent, not as post-rounding floats.
type adaptiveVariant struct {
	Value    json.Number `json:"value"`
	MedianMs json.Number `json:"median_ms"`
	PerfVar  json.Number `json:"perf_variation"`
	GPUs     json.Number `json:"gpus"`
	Outliers json.Number `json:"outliers"`
	Source   string      `json:"source"`
	Bound    json.Number `json:"bound"`
}

func decodeAdaptiveVariants(body []byte) ([]adaptiveVariant, error) {
	var resp struct {
		Variants []json.RawMessage `json:"variants"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("decoding sweep response: %v", err)
	}
	out := make([]adaptiveVariant, len(resp.Variants))
	for i, raw := range resp.Variants {
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.UseNumber()
		if err := dec.Decode(&out[i]); err != nil {
			return nil, fmt.Errorf("decoding variant %d: %v", i, err)
		}
	}
	return out, nil
}

// VerifyAdaptive checks the pre-screened sweep's contract on the warm
// adaptive response: every variant declares its source, estimated
// points carry an error bound, full simulation stays under the 32-value
// clamp (and under half the axis once it is 64+ values wide), and a
// plain /v1/sweep of exactly the simulated values agrees with the
// adaptive response literal-for-literal.
func (c *Client) VerifyAdaptive(base, sweepBody, adaptiveBody, key string) (simulated, estimated int, err error) {
	status, body, _, err := c.Raw(base, "POST", "/v1/sweep", adaptiveBody, key)
	if err != nil || status != http.StatusOK {
		return 0, 0, fmt.Errorf("re-fetching the adaptive response: status=%d err=%v", status, err)
	}
	variants, err := decodeAdaptiveVariants(body)
	if err != nil {
		return 0, 0, err
	}
	var simVals []string
	byValue := make(map[string]adaptiveVariant, len(variants))
	for i, v := range variants {
		switch v.Source {
		case "simulated":
			simulated++
			simVals = append(simVals, v.Value.String())
			byValue[v.Value.String()] = v
		case "estimated":
			if v.Bound == "" {
				return 0, 0, fmt.Errorf("variant %d (value %s) is estimated but has no bound", i, v.Value)
			}
			estimated++
		default:
			return 0, 0, fmt.Errorf("variant %d (value %s) has source %q", i, v.Value, v.Source)
		}
	}
	if simulated == 0 {
		return 0, 0, fmt.Errorf("no simulated variants — the calibration anchors must always simulate")
	}
	if simulated > 32 {
		return 0, 0, fmt.Errorf("%d variants full-simulated, over the 32-value clamp", simulated)
	}
	if len(variants) >= 64 && (simulated*2 > len(variants) || estimated == 0) {
		return 0, 0, fmt.Errorf("a %d-value axis simulated %d values (want ≤ half, with an estimated remainder)", len(variants), simulated)
	}

	// Replay exactly the simulated values as a plain sweep; the adaptive
	// path runs the identical shard body, so each point must reproduce
	// its numeric literals.
	var m map[string]any
	if err := json.Unmarshal([]byte(sweepBody), &m); err != nil {
		return 0, 0, fmt.Errorf("parsing -sweep body: %v", err)
	}
	if _, legacy := m["caps_w"]; legacy {
		delete(m, "caps_w")
		m["axis"] = "powercap"
	}
	m["values"] = json.RawMessage("[" + strings.Join(simVals, ",") + "]")
	subset, err := json.Marshal(m)
	if err != nil {
		return 0, 0, err
	}
	status, plainBody, _, err := c.Raw(base, "POST", "/v1/sweep", string(subset), key)
	if err != nil || status != http.StatusOK {
		return 0, 0, fmt.Errorf("plain sweep of the simulated values: status=%d err=%v", status, err)
	}
	plain, err := decodeAdaptiveVariants(plainBody)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range plain {
		a, ok := byValue[p.Value.String()]
		if !ok {
			return 0, 0, fmt.Errorf("plain sweep returned value %s that the adaptive response did not simulate", p.Value)
		}
		if a.MedianMs != p.MedianMs || a.PerfVar != p.PerfVar || a.GPUs != p.GPUs || a.Outliers != p.Outliers {
			return 0, 0, fmt.Errorf("value %s: adaptive simulated point diverged from the plain sweep (%+v vs %+v)", p.Value, a, p)
		}
	}
	return simulated, estimated, nil
}
