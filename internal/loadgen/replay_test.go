package loadgen

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpuvar/internal/traffic"
)

// stubServer fakes just enough of gpuvard for unit-level replay tests:
// deterministic bodies per path, an NDJSON stream, and a one-poll job
// lifecycle.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var requests atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/figures/{id}", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		fmt.Fprintf(w, `{"id":%q,"output":"stable bytes for %s"}`, r.PathValue("id"), r.PathValue("id"))
	})
	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		fmt.Fprint(w, `{"variants":[{"value":1,"median_ms":2}]}`)
	})
	mux.HandleFunc("GET /v1/stream/sweep", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		payload := `{"p":1}`
		sum := sha256.Sum256([]byte(payload))
		fmt.Fprintln(w, `{"kind":"start","shards":1}`)
		fmt.Fprintf(w, `{"kind":"shard","shard":0,"payload":%q}`+"\n", payload)
		fmt.Fprintf(w, `{"kind":"summary","bytes":%d,"sha256":%q}`+"\n", len(payload), hex.EncodeToString(sum[:]))
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"id":"j-%d","state":"queued","url":"/v1/jobs/j1"}`, requests.Load())
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"j1","state":"done","shards_done":2,"shards_total":2,"url":"/v1/jobs/j1"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"variants":[{"value":1,"median_ms":2}]}`)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &requests
}

func testTrace() *traffic.Trace {
	mk := func(off int64, kind, method, path, body, phase string) traffic.Record {
		return traffic.Record{
			OffsetUS: off, Client: "t-" + kind, Kind: kind, Method: method, Path: path, Body: body,
			FP: traffic.Fingerprint(method, path, body), Phase: phase,
		}
	}
	return &traffic.Trace{
		Header: traffic.Header{Source: "generated", Seed: 1},
		Records: []traffic.Record{
			mk(0, traffic.KindFigures, "GET", "/v1/figures/fig2", "", "peak"),
			mk(100, traffic.KindSweep, "POST", "/v1/sweep", `{"axis":"seed","values":[1]}`, "peak"),
			mk(200, traffic.KindStream, "GET", "/v1/stream/sweep?axis=seed", "", "offpeak"),
			mk(300, traffic.KindJobs, "POST", "/v1/jobs", `{"kind":"sweep"}`, "offpeak"),
			mk(400, traffic.KindFigures, "GET", "/v1/figures/tab1", "", "peak"),
		},
	}
}

// TestReplayRoundTrip drives the full closed loop at unit level:
// replay a hash-less generated trace, fill its oracle from the
// observations, replay the oracle trace with verification on, and
// require zero mismatches plus a stable digest.
func TestReplayRoundTrip(t *testing.T) {
	ts, _ := stubServer(t)
	c := &Client{PollInterval: time.Millisecond}

	tr := testTrace()
	first, err := c.Replay(tr, ReplayOptions{Bases: []string{ts.URL}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := first.Mismatches(); n != 0 {
		t.Fatalf("hash-less replay reported %d mismatches: %+v", n, first.FirstBad())
	}
	oracle, err := first.FillOracle(tr)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range oracle.Records {
		if r.SHA256 == "" || r.Status == 0 {
			t.Fatalf("oracle record %d not filled: %+v", i, r)
		}
	}
	// The oracle survives an encode/decode round trip (it will live as
	// a committed file).
	decoded, stats, err := traffic.Decode(oracle.Encode())
	if err != nil || stats.SkippedRecords != 0 {
		t.Fatalf("oracle decode: err=%v stats=%+v", err, stats)
	}

	second, err := c.Replay(decoded, ReplayOptions{Bases: []string{ts.URL}, Verify: true, Concurrency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n := second.Mismatches(); n != 0 {
		bad := second.FirstBad()
		t.Fatalf("verified replay reported %d mismatches; first: %+v", n, bad)
	}
	third, err := c.Replay(decoded, ReplayOptions{Bases: []string{ts.URL}, Verify: true, Concurrency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if second.Digest() != third.Digest() {
		t.Fatal("replaying the same trace twice produced different digests")
	}
	if len(second.TTFLs()) != 1 {
		t.Errorf("TTFLs = %v, want exactly the one stream record", second.TTFLs())
	}
	if got := second.Phases(); len(got) != 2 {
		t.Errorf("Phases = %v, want peak and offpeak", got)
	}
	if len(second.Latencies("peak")) != 3 || len(second.Latencies("")) != 5 {
		t.Errorf("phase latency filtering broken: peak=%d all=%d",
			len(second.Latencies("peak")), len(second.Latencies("")))
	}
}

// TestReplayDetectsDivergence: a wrong oracle hash must surface as a
// mismatch naming both hashes, and a wrong status as a status
// mismatch.
func TestReplayDetectsDivergence(t *testing.T) {
	ts, _ := stubServer(t)
	c := &Client{PollInterval: time.Millisecond}
	tr := testTrace()
	tr.Records = tr.Records[:2]
	tr.Records[0].SHA256 = strings.Repeat("0", 64)
	tr.Records[1].Status = 418

	res, err := c.Replay(tr, ReplayOptions{Bases: []string{ts.URL}, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches() != 2 {
		t.Fatalf("mismatches = %d, want 2", res.Mismatches())
	}
	if bad := res.FirstBad(); bad == nil || !strings.Contains(bad.Mismatch, "sha256") {
		t.Errorf("first bad = %+v, want a sha256 mismatch", bad)
	}
	if !strings.Contains(res.Records[1].Mismatch, "status") {
		t.Errorf("record 1 mismatch = %q, want a status mismatch", res.Records[1].Mismatch)
	}
	// A broken run must refuse to become an oracle.
	if _, err := res.FillOracle(tr); err != nil {
		t.Log("FillOracle accepted a mismatched (but successful) run — fine, mismatch ≠ failure")
	}
}

// TestReplayPacing: wall-clock pacing must stretch a replay to at
// least the trace's virtual span divided by the pace factor, and the
// virtual clock must not.
func TestReplayPacing(t *testing.T) {
	ts, _ := stubServer(t)
	c := &Client{PollInterval: time.Millisecond}
	tr := &traffic.Trace{Records: []traffic.Record{
		{OffsetUS: 0, Kind: traffic.KindFigures, Method: "GET", Path: "/v1/figures/fig2"},
		{OffsetUS: 200_000, Kind: traffic.KindFigures, Method: "GET", Path: "/v1/figures/fig2"},
	}}
	t0 := time.Now()
	if _, err := c.Replay(tr, ReplayOptions{Bases: []string{ts.URL}, Pace: 2}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 90*time.Millisecond {
		t.Errorf("pace=2 replay of a 200ms trace took %v, want ≥ ~100ms", d)
	}
	t0 = time.Now()
	if _, err := c.Replay(tr, ReplayOptions{Bases: []string{ts.URL}}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d > 90*time.Millisecond {
		t.Errorf("virtual-clock replay took %v, should ignore recorded offsets", d)
	}
}

func TestStreamFetchContract(t *testing.T) {
	ts, _ := stubServer(t)
	c := &Client{}
	res, err := c.StreamFetch(ts.URL+"/v1/stream/sweep", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Lines != 3 || res.TTFL <= 0 || res.TTFL > res.Total {
		t.Errorf("stream result = %+v", res)
	}
	payload := sha256.Sum256([]byte(`{"p":1}`))
	if res.PayloadSHA != payload {
		t.Error("payload hash does not match the shard payloads")
	}
	if res.RawSHA == "" || res.RawSHA == hex.EncodeToString(payload[:]) {
		t.Error("raw hash should cover the NDJSON lines, not the payload")
	}
	// StreamVerify accepts the right reference and rejects a wrong one.
	if _, err := c.StreamVerify(ts.URL+"/v1/stream/sweep", payload, ""); err != nil {
		t.Errorf("StreamVerify with the correct reference: %v", err)
	}
	if _, err := c.StreamVerify(ts.URL+"/v1/stream/sweep", [32]byte{1}, ""); err == nil {
		t.Error("StreamVerify accepted a wrong reference")
	}
}

// TestStreamFetchRejectsBrokenStreams: out-of-order shards, a missing
// summary, and a lying summary hash must all fail.
func TestStreamFetchRejectsBrokenStreams(t *testing.T) {
	cases := map[string]string{
		"out of order":  `{"kind":"shard","shard":1,"payload":"x"}` + "\n",
		"no summary":    `{"kind":"start","shards":1}` + "\n" + `{"kind":"shard","shard":0,"payload":"x"}` + "\n",
		"bad summary":   `{"kind":"shard","shard":0,"payload":"x"}` + "\n" + `{"kind":"summary","sha256":"00"}` + "\n",
		"in-band error": `{"kind":"error","error":"boom"}` + "\n",
		"not json":      "garbage\n",
	}
	for name, body := range cases {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, body)
		}))
		c := &Client{}
		if _, err := c.StreamFetch(ts.URL, ""); err == nil {
			t.Errorf("%s: accepted", name)
		}
		ts.Close()
	}
}

func TestDoJobLifecycle(t *testing.T) {
	ts, _ := stubServer(t)
	c := &Client{PollInterval: time.Millisecond}
	body, err := c.DoJob(ts.URL, Target{Method: MethodJob, Path: "/v1/jobs", Body: `{"kind":"sweep"}`}, "key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "variants") {
		t.Errorf("job result = %s", body)
	}
}

// TestDoJobHonors429 verifies the backpressure path: a server that
// sheds the first submission with Retry-After must see a retry, not a
// failure.
func TestDoJobHonors429(t *testing.T) {
	var submissions atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if submissions.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full","code":"queue_full"}`)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprint(w, `{"id":"j1","state":"queued","url":"/v1/jobs/j1"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id":"j1","state":"done","url":"/v1/jobs/j1"}`)
	})
	mux.HandleFunc("GET /v1/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `result`)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{PollInterval: time.Millisecond}
	if _, err := c.DoJob(ts.URL, Target{Method: MethodJob, Path: "/v1/jobs"}, ""); err != nil {
		t.Fatal(err)
	}
	if submissions.Load() != 2 {
		t.Errorf("submissions = %d, want a shed then a retry", submissions.Load())
	}
}

func TestDoAbortedStatuses(t *testing.T) {
	for _, status := range []int{http.StatusGatewayTimeout, 499} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(status)
		}))
		c := &Client{}
		_, _, aborted, err := c.Do(ts.URL, Target{Method: "GET", Path: "/"}, "")
		if err != nil || !aborted {
			t.Errorf("status %d: aborted=%t err=%v, want aborted", status, aborted, err)
		}
		ts.Close()
	}
}
