package loadgen

import (
	"sort"
	"time"
)

// Percentile returns the p-quantile of ds by rank (nearest-rank on the
// zero-based index int(p·(n−1)), the convention loadgen has always
// reported): an empty slice yields 0, a single sample yields itself.
// ds must be sorted ascending.
func Percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return ds[int(p*float64(len(ds)-1))]
}

// PercentileMS is Percentile in fractional milliseconds, the report
// unit.
func PercentileMS(ds []time.Duration, p float64) float64 {
	return float64(Percentile(ds, p).Microseconds()) / 1000
}

// SortDurations sorts in place and returns ds, for chaining into
// Percentile.
func SortDurations(ds []time.Duration) []time.Duration {
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds
}

// Stats accumulates samples from a run and answers the report's
// questions. Not concurrency-safe: callers collect samples under their
// own lock (the hot pass) or single-threaded (replay summaries).
type Stats struct {
	Samples []Sample
}

// Add appends one observation.
func (s *Stats) Add(sm Sample) { s.Samples = append(s.Samples, sm) }

// Durations returns all latencies, sorted.
func (s *Stats) Durations() []time.Duration {
	ds := make([]time.Duration, len(s.Samples))
	for i, sm := range s.Samples {
		ds[i] = sm.D
	}
	return SortDurations(ds)
}

// ByLabel groups latencies per target label, each sorted.
func (s *Stats) ByLabel() map[string][]time.Duration {
	out := make(map[string][]time.Duration)
	for _, sm := range s.Samples {
		out[sm.Label] = append(out[sm.Label], sm.D)
	}
	for _, ds := range out {
		SortDurations(ds)
	}
	return out
}

// Hits counts X-Cache: hit samples.
func (s *Stats) Hits() int {
	n := 0
	for _, sm := range s.Samples {
		if sm.Cache == "hit" {
			n++
		}
	}
	return n
}
