package globalpm

import (
	"math"
	"testing"

	"gpuvar/internal/gpu"
	"gpuvar/internal/rng"
	"gpuvar/internal/thermal"
)

var sgemmAct = gpu.Activity{Compute: 1.0, Memory: 0.6}

const sgemmCF = 0.97

// fleet samples n V100s with manufacturing spread under water cooling.
func fleet(n int, seed uint64) []Member {
	parent := rng.New(seed)
	out := make([]Member, n)
	for i := range out {
		out[i] = Member{
			Chip:  gpu.NewChip(gpu.V100SXM2(), "g", gpu.DefaultVariation(), parent.SplitIndex("c", i)),
			Therm: thermal.NewNode(thermal.WaterParams(), float64(i)/float64(n), parent.SplitIndex("t", i)),
		}
	}
	return out
}

func TestLocalOnlyShowsSpread(t *testing.T) {
	members := fleet(32, 1)
	res := LocalOnly(members, 32*300, sgemmAct, sgemmCF)
	if v := res.Variation(); v < 0.02 {
		t.Fatalf("local-only fleet should vary: %v", v)
	}
}

func TestCoordinateReducesVariation(t *testing.T) {
	// The paper's thesis: a global budget allocator can compress the
	// performance spread at the same total power. The interesting regime
	// is a power-constrained facility (§VI-B: "future exascale machines
	// operating under a varying power budget"), where the per-GPU share
	// sits below TDP and the coordinator has headroom to shift watts
	// toward the worse chips.
	members := fleet(32, 1)
	budget := 32.0 * 280 // facility-capped below 32×TDP
	local := LocalOnly(members, budget, sgemmAct, sgemmCF)
	global, err := Coordinate(members, budget, sgemmAct, sgemmCF, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if global.Variation() >= local.Variation() {
		t.Fatalf("coordination did not help: global %v vs local %v",
			global.Variation(), local.Variation())
	}
	if global.Variation() > 0.7*local.Variation() {
		t.Logf("note: modest improvement %v -> %v", local.Variation(), global.Variation())
	}
}

func TestCoordinateNoRoomAtTDPBudget(t *testing.T) {
	// With every GPU already at its TDP ceiling there is nothing to
	// exchange: the coordinator must gracefully return the local
	// allocation instead of violating board limits.
	members := fleet(8, 9)
	budget := 8.0 * 300
	local := LocalOnly(members, budget, sgemmAct, sgemmCF)
	global, err := Coordinate(members, budget, sgemmAct, sgemmCF, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(global.Variation()-local.Variation()) > 1e-9 {
		t.Fatalf("TDP-bounded coordination should match local: %v vs %v",
			global.Variation(), local.Variation())
	}
}

func TestCoordinateRespectsBudget(t *testing.T) {
	members := fleet(16, 2)
	budget := 16.0 * 280
	global, err := Coordinate(members, budget, sgemmAct, sgemmCF, Config{MaxCapW: 330})
	if err != nil {
		t.Fatal(err)
	}
	var capSum float64
	for _, a := range global.Allocations {
		capSum += a.CapW
	}
	if capSum > budget+1e-6 {
		t.Fatalf("cap sum %v exceeds budget %v", capSum, budget)
	}
	if global.TotalPowerW() > budget+1e-6 {
		t.Fatalf("power %v exceeds budget %v", global.TotalPowerW(), budget)
	}
}

func TestCoordinateRespectsBounds(t *testing.T) {
	members := fleet(16, 3)
	cfg := Config{MinCapW: 200, MaxCapW: 320, StepW: 4}
	global, err := Coordinate(members, 16*280, sgemmAct, sgemmCF, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range global.Allocations {
		if a.CapW < 200-1e-9 || a.CapW > 320+1e-9 {
			t.Fatalf("cap %v outside [200, 320]", a.CapW)
		}
	}
}

func TestCoordinateMedianNotSacrificed(t *testing.T) {
	// Compression must come from lifting the tail, not tanking the
	// median: median performance stays within a few percent of local.
	members := fleet(32, 4)
	budget := 32.0 * 300
	local := LocalOnly(members, budget, sgemmAct, sgemmCF)
	global, err := Coordinate(members, budget, sgemmAct, sgemmCF, Config{MaxCapW: 340})
	if err != nil {
		t.Fatal(err)
	}
	if global.MedianPerf() < 0.95*local.MedianPerf() {
		t.Fatalf("median perf collapsed: %v vs %v", global.MedianPerf(), local.MedianPerf())
	}
}

func TestCoordinateEmptyAndBadInput(t *testing.T) {
	if res, err := Coordinate(nil, 300, sgemmAct, sgemmCF, Config{}); err != nil || len(res.Allocations) != 0 {
		t.Fatal("empty fleet should be a no-op")
	}
	if _, err := Coordinate(fleet(2, 5), -1, sgemmAct, sgemmCF, Config{}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestOperatingPointConsistency(t *testing.T) {
	m := fleet(1, 6)[0]
	a := operatingPoint(m, 300, sgemmAct, sgemmCF)
	if a.PowerW > 300+1e-6 {
		t.Fatalf("operating point exceeds cap: %v", a.PowerW)
	}
	if a.FreqMHz <= 0 || a.PerfScale <= 0 || a.PerfScale > 1.2 {
		t.Fatalf("implausible operating point: %+v", a)
	}
	// Lower cap → slower.
	b := operatingPoint(m, 200, sgemmAct, sgemmCF)
	if b.PerfScale >= a.PerfScale {
		t.Fatalf("200 W point %v should be slower than 300 W %v", b.PerfScale, a.PerfScale)
	}
}

func TestVariationMetric(t *testing.T) {
	r := &Result{Allocations: []Allocation{
		{PerfScale: 0.9}, {PerfScale: 1.0}, {PerfScale: 1.1},
	}}
	if v := r.Variation(); math.Abs(v-0.2) > 1e-12 {
		t.Fatalf("variation = %v", v)
	}
	if (&Result{}).Variation() != 0 {
		t.Fatal("empty variation should be 0")
	}
}
